// Sleep-cycled single-radio node — the §1 strawman BCP is motivated
// against: "One solution is to sleep cycle the radio, alternating the
// state of the radio between sleep and idle. However, such sleep cycling
// cannot reduce the idling energy sufficiently for use in sensor
// networks."
//
// An idealized power-save mode: every node wakes on a network-synchronized
// schedule (`period`, `duty` fraction on), exchanges queued traffic during
// the on-window, and sleeps otherwise. Synchronization is free (no beacon
// or ATIM cost is charged), timers are perfect, and the radio is allowed
// to finish an in-flight exchange past the window edge — every
// simplification favours the sleep-cycled network, which is exactly what
// makes the §1 claim meaningful when BCP still beats it.
#pragma once

#include <memory>

#include "app/nodes.hpp"
#include "energy/radio_model.hpp"
#include "mac/csma_mac.hpp"
#include "net/routing.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"
#include "util/sliding_queue.hpp"

namespace bcp::app {

class DutyCycledWifiNode {
 public:
  struct Schedule {
    util::Seconds period = 1.0;  ///< wake-up interval
    double duty = 0.1;           ///< fraction of the period spent awake
  };

  DutyCycledWifiNode(sim::Simulator& sim, phy::Channel& channel,
                     const net::Router& routes, net::NodeId self,
                     net::NodeId sink,
                     const energy::RadioEnergyModel& radio_model,
                     Schedule schedule, std::uint64_t seed,
                     DeliverySink* delivery);

  /// Entry point for locally generated packets; queued until the next
  /// on-window. While the node is down, packets are dropped with reason
  /// "node-down".
  void send(const net::DataPacket& packet);

  /// Battery-death teardown (duty nodes never appear in fault plans, so
  /// unlike the other assemblies there is no recover()): kills the radio
  /// mid-whatever, discards queued traffic, and permanently ends the
  /// wake-window chain. Idempotent.
  void crash();
  bool up() const { return up_; }

  phy::Radio& radio() { return radio_; }
  const phy::Radio& radio() const { return radio_; }
  mac::CsmaCaMac& mac() { return mac_; }
  std::size_t queued() const { return pending_.size(); }

 private:
  void on_window_open();
  void on_window_close();
  void pump();
  void on_rx(const net::Message& msg, net::NodeId from);
  void forward(const net::Message& msg);

  sim::Simulator& sim_;
  const net::Router& routes_;
  net::NodeId self_;
  net::NodeId sink_;
  Schedule schedule_;
  DeliverySink* delivery_;
  bool up_ = true;
  phy::Radio radio_;
  mac::CsmaCaMac mac_;
  util::SlidingQueue<net::Message> pending_;  ///< waiting for the next window
  bool window_open_ = false;
  bool awaiting_quiesce_ = false;  ///< window closed, MAC still draining
  std::uint64_t window_generation_ = 0;  ///< guards stale close events
};

}  // namespace bcp::app

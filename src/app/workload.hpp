// Traffic generators.
//
// CbrWorkload — constant bit rate sensing (§4.1: 0.2 and 2 Kbps per
// sender), one fixed-size packet every packet_bits/rate seconds with a
// random initial phase so senders do not synchronize.
//
// BurstyWorkload — an EnviroMic-style acoustic source (the paper's §1
// motivating application): exponentially distributed talk/silence periods;
// during a talk period packets are produced at a high rate. Used by the
// examples and robustness tests rather than the paper's figures.
#pragma once

#include <cstdint>
#include <functional>

#include "net/message.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace bcp::app {

/// Emits net::DataPacket to a sink-bound consumer until stopped.
class CbrWorkload {
 public:
  using Emit = std::function<void(net::DataPacket)>;

  /// Packets of `packet_bits` from `origin` to `destination` at `rate_bps`.
  CbrWorkload(sim::Simulator& sim, net::NodeId origin,
              net::NodeId destination, util::Bits packet_bits,
              double rate_bps, std::uint64_t seed, Emit emit);

  /// Schedules the first packet (random phase within one interval).
  void start();

  std::int64_t generated() const { return generated_; }
  util::Bits generated_bits() const { return generated_ * packet_bits_; }

 private:
  void emit_and_reschedule();

  sim::Simulator& sim_;
  net::NodeId origin_;
  net::NodeId destination_;
  util::Bits packet_bits_;
  util::Seconds interval_;
  util::Xoshiro256 rng_;
  Emit emit_;
  std::uint32_t next_seq_ = 1;
  std::int64_t generated_ = 0;
};

/// On/off (talkspurt/silence) source with exponential period lengths.
class BurstyWorkload {
 public:
  using Emit = std::function<void(net::DataPacket)>;

  struct Params {
    util::Bits packet_bits = util::bytes(32);
    double on_rate_bps = 8000;          ///< rate while talking
    util::Seconds mean_on = 2.0;        ///< mean talk duration
    util::Seconds mean_off = 10.0;      ///< mean silence duration
  };

  BurstyWorkload(sim::Simulator& sim, net::NodeId origin,
                 net::NodeId destination, Params params, std::uint64_t seed,
                 Emit emit);

  void start();

  std::int64_t generated() const { return generated_; }
  util::Bits generated_bits() const {
    return generated_ * params_.packet_bits;
  }

 private:
  void begin_on_period();
  void emit_packet();

  sim::Simulator& sim_;
  net::NodeId origin_;
  net::NodeId destination_;
  Params params_;
  util::Xoshiro256 rng_;
  Emit emit_;
  std::uint32_t next_seq_ = 1;
  std::int64_t generated_ = 0;
  util::Seconds on_ends_ = 0;
};

}  // namespace bcp::app

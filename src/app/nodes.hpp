// Node assemblies for the three §4.1 evaluation models.
//
// ForwardingNode — a single-radio node (Sensor or pure-802.11 model):
//   workload/relayed packets are queued straight into the MAC toward the
//   sink, hop by hop along a static routing table.
//
// DualRadioNode — a dual-radio node running BCP: the sensor radio carries
//   the routed wake-up handshake (relayed below BCP by this class), the
//   802.11 radio carries bulk frames, and core::BcpAgent does the rest.
//   This class is the simulator's implementation of core::BcpHost.
#pragma once

#include <functional>
#include <memory>

#include "core/bcp_agent.hpp"
#include "core/bcp_host.hpp"
#include "mac/csma_mac.hpp"
#include "mac/mac.hpp"
#include "mac/mac_spec.hpp"
#include "net/routing.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"
#include "util/sliding_queue.hpp"

namespace bcp::mac {
struct TdmaSchedule;
}

namespace bcp::app {

class DutyCycledWifiNode;

/// Where delivered packets and drop notices end up (owned by the scenario).
struct DeliverySink {
  std::function<void(const net::DataPacket&)> delivered;
  std::function<void(const net::DataPacket&, const char*)> dropped;
};

/// Which concrete MAC a node assembly instantiates behind the mac::Mac
/// seam. The default (kAuto family + the class MacParams) is the
/// historical CSMA/CA engine, bit-for-bit. A kTdma choice needs resolved
/// TdmaParams and a schedule that outlives the node (the scenario owns
/// both).
struct MacChoice {
  mac::MacParams csma;
  mac::MacFamily family = mac::MacFamily::kAuto;
  mac::TdmaParams tdma;
  const mac::TdmaSchedule* schedule = nullptr;
};

/// Instantiates the chosen family. CSMA choices consume `seed` exactly as
/// the pre-seam concrete members did (the byte-identical contract); TDMA
/// draws its per-node clock drift from it.
std::unique_ptr<mac::Mac> make_mac(sim::Simulator& sim, phy::Radio& radio,
                                   const MacChoice& choice,
                                   std::uint64_t seed);

/// Single-radio store-and-forward node.
class ForwardingNode {
 public:
  ForwardingNode(sim::Simulator& sim, phy::Channel& channel,
                 const net::Router& routes, net::NodeId self,
                 net::NodeId sink, const energy::RadioEnergyModel& radio_model,
                 phy::OverhearMode overhear, const MacChoice& mac_choice,
                 std::uint64_t seed, DeliverySink* delivery);

  /// Entry point for locally generated packets. While the node is down,
  /// packets are dropped with reason "node-down".
  void send(const net::DataPacket& packet);

  /// Fault injection: crash kills the radio mid-whatever (cancelling all
  /// pending MAC timers, truncating an in-flight frame) and silently
  /// discards queued traffic; recover reboots with empty state (the radio
  /// pays its wake-up charge). Both are idempotent.
  void crash();
  void recover();
  bool up() const { return up_; }

  phy::Radio& radio() { return radio_; }
  const phy::Radio& radio() const { return radio_; }
  mac::Mac& mac() { return *mac_; }
  const mac::Mac& mac() const { return *mac_; }
  net::NodeId self() const { return self_; }

 private:
  void forward(const net::Message& msg);
  void on_rx(const net::Message& msg, net::NodeId from);

  sim::Simulator& sim_;
  const net::Router& routes_;
  net::NodeId self_;
  net::NodeId sink_;
  DeliverySink* delivery_;
  bool up_ = true;
  phy::Radio radio_;
  // Behind the seam: which family lives here is a MacChoice decision made
  // once per run at construction (not hot-path state).
  std::unique_ptr<mac::Mac> mac_;
};

/// Dual-radio node: sensor radio + CSMA MAC for control, 802.11 radio +
/// DCF MAC for bulk data, and a BcpAgent in between.
class DualRadioNode final : public core::BcpHost {
 public:
  DualRadioNode(sim::Simulator& sim, phy::Channel& low_channel,
                phy::Channel& high_channel, const net::Router& low_routes,
                const net::Router& high_routes, net::NodeId self,
                const energy::RadioEnergyModel& sensor_model,
                const energy::RadioEnergyModel& wifi_model,
                const core::BcpConfig& bcp_config,
                phy::OverhearMode wifi_overhear, std::uint64_t seed,
                DeliverySink* delivery,
                const MacChoice& low_mac = MacChoice{mac::sensor_mac_params(),
                                                     mac::MacFamily::kAuto,
                                                     {},
                                                     nullptr},
                const MacChoice& high_mac = MacChoice{mac::dcf_mac_params(),
                                                      mac::MacFamily::kAuto,
                                                      {},
                                                      nullptr});

  /// Entry point for locally generated packets (goes through BCP). While
  /// the node is down, packets are dropped with reason "node-down".
  void send(const net::DataPacket& packet);

  /// Fault injection: crash cancels every pending BCP host timer and MAC
  /// timer, truncates in-flight frames, loses buffered bursts, and forces
  /// both radios dark; recover reboots with a clean protocol state (the
  /// sensor radio pays its wake-up, the 802.11 radio stays off until BCP
  /// next needs it). Both are idempotent.
  void crash();
  void recover();
  bool up() const { return up_; }

  core::BcpAgent& agent() { return agent_; }
  const core::BcpAgent& agent() const { return agent_; }
  phy::Radio& sensor_radio() { return low_radio_; }
  const phy::Radio& sensor_radio() const { return low_radio_; }
  phy::Radio& wifi_radio() { return high_radio_; }
  const phy::Radio& wifi_radio() const { return high_radio_; }
  mac::Mac& sensor_mac() { return *low_mac_; }
  const mac::Mac& sensor_mac() const { return *low_mac_; }
  mac::Mac& wifi_mac() { return *high_mac_; }
  const mac::Mac& wifi_mac() const { return *high_mac_; }

  // core::BcpHost:
  net::NodeId self() const override { return self_; }
  util::Seconds now() const override { return sim_.now(); }
  TimerId set_timer(util::Seconds delay,
                    core::BcpHost::TimerCallback callback) override;
  void cancel_timer(TimerId id) override;
  void send_low(net::MessageRef msg) override;
  void send_high(net::MessageRef msg, net::NodeId peer,
                 core::BcpHost::SendDone done) override;
  void high_radio_on() override;
  void high_radio_off() override;
  bool high_radio_ready() const override;
  net::NodeId high_next_hop(net::NodeId dest) const override;
  bool high_link_exists(net::NodeId peer) const override;
  void deliver(const net::DataPacket& packet) override;
  void packet_dropped(const net::DataPacket& packet,
                      const char* reason) override;

 private:
  void on_low_rx(const net::Message& msg, net::NodeId from);
  void on_high_rx(const net::Message& msg, net::NodeId from);
  void try_power_off();

  sim::Simulator& sim_;
  const phy::Channel& high_channel_;
  const net::Router& low_routes_;
  const net::Router& high_routes_;
  net::NodeId self_;
  DeliverySink* delivery_;
  bool up_ = true;
  // Constructed in declaration order (radios before MACs before the
  // agent, which binds to *this as its BcpHost).
  phy::Radio low_radio_;
  phy::Radio high_radio_;
  std::unique_ptr<mac::Mac> low_mac_;
  std::unique_ptr<mac::Mac> high_mac_;
  core::BcpAgent agent_;
  /// Completion callbacks for in-flight high-radio sends, FIFO with the
  /// MAC's single queue.
  util::SlidingQueue<core::BcpHost::SendDone> high_done_;
};

/// The one crash teardown shared by fault-plan crashes and battery
/// deaths: crash the node assembly (exactly one of `fwd`/`dual`/`duty`
/// is non-null — whichever the scenario's evaluation model built for
/// `node`) and take the node down in every non-null LinkState so
/// channels stop delivering to it and routing re-converges. Idempotent,
/// like the crash() members it funnels into.
void crash_node(ForwardingNode* fwd, DualRadioNode* dual,
                DutyCycledWifiNode* duty, net::NodeId node,
                net::LinkState* low_links, net::LinkState* high_links);

}  // namespace bcp::app

// The config.shards > 1 path of run_scenario: one simulation advanced by
// sim::ShardedSimulator over phy::ShardedMedium partitions.
//
// Node/shard lifecycle discipline: pooled message payloads
// (net::MessagePool) are thread-local, so everything a shard owns —
// nodes, workloads, channel partitions, pending events — is constructed,
// run, and destroyed on the shard's pinned worker thread via
// for_each_shard phases (setup → run → teardown). Metrics are read on
// the caller's thread between the run and teardown phases (the engine's
// barriers order those reads) and merged in ascending shard order, so
// the result is a pure function of (config, shard count) — sim_threads
// never changes a byte of output.
//
// Membership epochs: fault/churn and finite batteries mutate LinkState
// membership mid-run, which a single shared LinkState cannot survive
// under real threads. Instead every shard owns a LinkState *replica* per
// radio class. The shard that owns a node executes its crash / recover /
// depletion at the exact event instant against its own replica (through
// the same app::crash_node teardown the single-queue engine uses, so
// local timing is unchanged), queues the mutation as a
// net::MembershipDelta, and the coordinator broadcasts the accumulated
// batch to every replica at the window barrier, applied in deterministic
// (time, shard, node) order — a remote shard sees a membership change at
// most one exchange window late, the same staleness bound the
// boundary-frame mailboxes already carry. A coordinator-owned replica
// pair receives the same global delta sequence and answers the
// sink-partition checks exactly at each death's event time. Delivered
// counts referenced by the "bits until first death / partition" metrics
// are read at the publishing barrier (≤ one window after the event).
#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "app/scenario.hpp"
#include "app/scenario_detail.hpp"
#include "app/workload.hpp"
#include "energy/battery.hpp"
#include "mac/mac_params.hpp"
#include "net/link_state.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "phy/sharded_channel.hpp"
#include "sim/fault_plan.hpp"
#include "sim/sharded_simulator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace bcp::app {

namespace {

/// A membership mutation queued by its owning shard during a window,
/// drained by the coordinator at the next barrier.
struct PendingDelta {
  net::MembershipDelta delta;
  /// Battery depletions drive the lifetime metrics (first death,
  /// sink-partition check); fault-plan mutations do not.
  bool battery_death = false;
};

/// Everything one shard owns. Node-indexed vectors are stripe-local:
/// length owned_count(s), indexed by ShardMap::local_of — O(n/shards)
/// per partition, and emit hooks stay O(1) lookups. Only the battery
/// vector keeps null holes (radio classes without a budget).
struct ShardState {
  RunMetrics m;
  double delay_sum = 0;
  DeliverySink delivery;
  std::vector<std::unique_ptr<ForwardingNode>> fwd;
  std::vector<std::unique_ptr<DualRadioNode>> dual;
  std::vector<std::unique_ptr<DutyCycledWifiNode>> duty;
  std::vector<std::unique_ptr<CbrWorkload>> workloads;

  // Membership-epoch state (engaged only for fault/battery runs). The
  // replicas feed this shard's channel partitions and DynamicRouting;
  // the delta queue is written on the shard's pinned thread and drained
  // by the coordinator between phase barriers.
  std::optional<net::LinkState> low_links;
  std::optional<net::LinkState> high_links;
  std::unique_ptr<net::Router> low_routes;
  std::unique_ptr<net::Router> high_routes;
  const net::DynamicRouting* low_dyn = nullptr;
  const net::DynamicRouting* high_dyn = nullptr;
  std::vector<std::unique_ptr<energy::Battery>> batteries;
  std::vector<PendingDelta> deltas;
  /// Stable callable targets for event captures (the vector of states is
  /// never resized, so &st members are stable for the whole run).
  std::function<void(const sim::FaultEvent&)> apply_fault;
  std::function<void(net::NodeId)> on_battery_death;
};

void merge_energy(RadioEnergyTotals& total, const RadioEnergyTotals& part) {
  total.tx += part.tx;
  total.rx += part.rx;
  total.overhear += part.overhear;
  total.idle += part.idle;
  total.wakeup += part.wakeup;
}

}  // namespace

namespace detail {

void merge_metrics(RunMetrics& total, const RunMetrics& part) {
  // Field-coverage tripwire: adding a RunMetrics field changes this size,
  // and the build fails here until the field gets a merge rule below (and
  // a case in the merge-coverage test). Update the expected size last.
  static_assert(sizeof(void*) != 8 || sizeof(RunMetrics) == 448,
                "RunMetrics changed: give every new field a merge rule in "
                "detail::merge_metrics and tests/sharded_sim_test.cpp's "
                "coverage case, then update this expected size");

  // Traffic counters: sum.
  total.generated += part.generated;
  total.delivered += part.delivered;
  total.dropped_buffer += part.dropped_buffer;
  total.dropped_queue += part.dropped_queue;
  total.dropped_mac += part.dropped_mac;
  total.dropped_no_route += part.dropped_no_route;
  total.dropped_node_down += part.dropped_node_down;

  // goodput, mean_delay, normalized_energy{,_sensor_ideal,_sensor_header}
  // are derived ratios: recomputed from the merged sums by
  // detail::finalize_metrics, never merged.

  merge_energy(total.sensor_energy, part.sensor_energy);
  merge_energy(total.wifi_energy, part.wifi_energy);

  // Protocol/MAC counters: sum.
  total.mac_tx_attempts += part.mac_tx_attempts;
  total.mac_tx_failed += part.mac_tx_failed;
  total.bcp_wakeups += part.bcp_wakeups;
  total.bcp_handshakes_failed += part.bcp_handshakes_failed;
  total.bcp_sender_sessions += part.bcp_sender_sessions;
  total.bcp_receiver_timeouts += part.bcp_receiver_timeouts;
  total.wifi_wakeup_transitions += part.wifi_wakeup_transitions;
  total.wifi_on_seconds += part.wifi_on_seconds;

  total.events_processed += part.events_processed;

  // Fault/churn counters: sum (each fault event is counted by exactly
  // one shard — the one owning the event's primary node).
  total.fault_node_crashes += part.fault_node_crashes;
  total.fault_node_recoveries += part.fault_node_recoveries;
  total.fault_recoveries_refused += part.fault_recoveries_refused;
  total.fault_link_downs += part.fault_link_downs;
  total.fault_link_ups += part.fault_link_ups;
  total.route_rebuilds += part.route_rebuilds;
  total.bcp_packets_lost_to_crash += part.bcp_packets_lost_to_crash;
  total.mac_crash_drops += part.mac_crash_drops;

  // Channel conservation counters: sum (the law holds per partition and
  // over the sum).
  total.chan_frames += part.chan_frames;
  total.chan_rx_starts += part.chan_rx_starts;
  total.chan_rx_ends += part.chan_rx_ends;
  total.chan_rx_live_at_end += part.chan_rx_live_at_end;

  // TDMA schedule health: sum.
  total.tdma_beacons_sent += part.tdma_beacons_sent;
  total.tdma_beacons_heard += part.tdma_beacons_heard;
  total.tdma_slots_skipped += part.tdma_slots_skipped;

  // Lifetime metrics. Deaths sum; the time-to-first-* fields take the
  // earliest non-sentinel value (-1 = never happened); the drawn
  // fraction takes the max over all batteries.
  total.battery_deaths += part.battery_deaths;
  if (part.time_to_first_death >= 0 &&
      (total.time_to_first_death < 0 ||
       part.time_to_first_death < total.time_to_first_death))
    total.time_to_first_death = part.time_to_first_death;
  if (part.time_to_sink_partition >= 0 &&
      (total.time_to_sink_partition < 0 ||
       part.time_to_sink_partition < total.time_to_sink_partition))
    total.time_to_sink_partition = part.time_to_sink_partition;
  total.delivered_bits_until_first_death +=
      part.delivered_bits_until_first_death;
  total.delivered_bits_until_partition +=
      part.delivered_bits_until_partition;
  total.battery_max_drawn_fraction = std::max(
      total.battery_max_drawn_fraction, part.battery_max_drawn_fraction);

  // Sharded-engine visibility: per-shard event counts concatenate; the
  // boundary export count sums.
  total.shard_events.insert(total.shard_events.end(),
                            part.shard_events.begin(),
                            part.shard_events.end());
  total.boundary_frames += part.boundary_frames;
}

}  // namespace detail

RunMetrics run_scenario_sharded(const ScenarioConfig& config) {
  BCP_REQUIRE(config.shards >= 2);
  BCP_REQUIRE(config.topology.node_count() >= 2);
  BCP_REQUIRE(config.duration > 0);
  BCP_REQUIRE(config.rate_bps > 0);
  BCP_REQUIRE(config.packet_bits > 0);
  BCP_REQUIRE(config.burst_packets > 0);
  BCP_REQUIRE(config.shard_window > 0);
  // Bound checks that need no topology construction come first: a
  // misconfigured 100k-node run must fail before full placement build.
  BCP_REQUIRE_MSG(config.n_senders >= 1 &&
                      config.n_senders <= config.topology.node_count() - 1,
                  "sender count must be in [1, nodes-1]");
  // ShardMap::stripes would clamp a too-large shard count silently; a
  // scenario asking for more stripes than nodes is a configuration error
  // and fails loudly instead (benches that sweep node counts clamp
  // per cell and record the effective count in their meta).
  BCP_REQUIRE_MSG(config.shards <= config.topology.node_count(),
                  "shard count must not exceed the node count");
  config.sensor_mac.validate();
  config.wifi_mac.validate();
  BCP_REQUIRE_MSG(!config.sensor_mac.is_tdma() && !config.wifi_mac.is_tdma(),
                  "TDMA is not supported on the sharded engine (beacon "
                  "relay across stripes would race the slot clock)");
  const bool has_faults = !config.faults.empty();
  BCP_REQUIRE_MSG(!has_faults || config.model != EvalModel::kWifiDutyCycled,
                  "fault injection is not supported for the duty-cycled "
                  "802.11 strawman");
  config.battery.validate();
  const bool has_battery = config.battery.enabled;
  BCP_REQUIRE_MSG(
      config.route_policy == net::RoutePolicy::kShortestPath || has_battery,
      "lifetime-aware routing requires an enabled battery");
  // Membership changes flow through per-shard LinkState replicas kept in
  // sync by epoch deltas at window barriers (see the file header).
  const bool has_links = has_faults || has_battery;
  const bool lifetime_routing =
      config.route_policy == net::RoutePolicy::kLifetimeAware;

  const net::Topology topo = config.topology.build();
  const net::NodeId sink = topo.sink;
  const int n = topo.node_count();

  const bool needs_low = config.model == EvalModel::kSensor ||
                         config.model == EvalModel::kDualRadio;
  const bool needs_high = config.model != EvalModel::kSensor;
  const bool all_pairs =
      config.routing == RoutingMode::kAllPairs ||
      (config.routing == RoutingMode::kAuto && n <= kAllPairsNodeLimit);
  const util::Metres wifi_range = config.wifi_range_override > 0
                                      ? config.wifi_range_override
                                      : config.wifi_radio.range;
  if (config.model == EvalModel::kWifiDutyCycled) {
    BCP_REQUIRE_MSG(config.duty_cycle > 0 && config.duty_cycle <= 1.0,
                    "duty cycle must be in (0, 1]");
    BCP_REQUIRE_MSG(config.duty_period > 0, "duty period must be positive");
  }

  const phy::ShardMap map = phy::ShardMap::stripes(topo.positions,
                                                   config.shards);
  const int shard_count = map.count;

  // Shared read-only structures: one connectivity graph per radio class
  // (each partition holds a reference, not a copy — O(n + e) once). With
  // static membership one Router per class is shared too
  // (RoutingTable/ConvergecastRouting queries are const and
  // thread-safe); fault/battery runs instead build one DynamicRouting
  // per shard in the setup phase, since its lazy rebuild cache mutates
  // on query and must key off the shard's own replica revision.
  std::shared_ptr<const net::ConnectivityGraph> low_graph;
  std::shared_ptr<const net::ConnectivityGraph> high_graph;
  std::unique_ptr<net::Router> low_routes;
  std::unique_ptr<net::Router> high_routes;
  const net::DynamicRouting* unused_dyn = nullptr;
  if (needs_low) {
    low_graph = std::make_shared<net::ConnectivityGraph>(
        topo.positions, config.sensor_radio.range);
    if (!has_links)
      low_routes = detail::build_routes(*low_graph, sink, all_pairs,
                                        "sensor", nullptr, &unused_dyn);
  }
  if (needs_high) {
    high_graph =
        std::make_shared<net::ConnectivityGraph>(topo.positions, wifi_range);
    if (!has_links)
      high_routes = detail::build_routes(*high_graph, sink, all_pairs,
                                         "wifi", nullptr, &unused_dyn);
  }

  // The fault plan is expanded once on the caller; each shard schedules
  // only the events it must act on (a node event goes to the node's
  // owner; a link event to both endpoints' owners).
  std::vector<sim::FaultEvent> fault_events;
  if (has_faults) {
    std::vector<std::vector<std::int32_t>> adjacency;
    if (config.faults.link_flaps > 0) {
      const net::ConnectivityGraph& fault_graph =
          needs_low ? *low_graph : *high_graph;
      adjacency.reserve(static_cast<std::size_t>(n));
      for (net::NodeId id = 0; id < n; ++id)
        adjacency.push_back(fault_graph.neighbors(id));
    }
    fault_events =
        sim::FaultPlan(config.faults, n, sink, config.duration,
                       config.faults.link_flaps > 0 ? &adjacency : nullptr)
            .events();
  }

  core::BcpConfig bcp = config.bcp;
  bcp.set_burst_packets(config.burst_packets, config.packet_bits);

  const std::vector<net::NodeId> senders =
      detail::pick_senders(config.seed, n, sink, config.n_senders);

  // Lifetime-aware route costs read this shared drawn/capacity snapshot,
  // refreshed by the coordinator at barriers on the reroute_period grid —
  // never live battery state, so every shard prices relays identically
  // regardless of thread count. Declared before `states`: the per-shard
  // cost functions stored inside DynamicRouting reference it.
  std::vector<double> battery_fraction;
  if (lifetime_routing) battery_fraction.assign(static_cast<std::size_t>(n), 0.0);

  // States are declared before the engine/mediums so teardown (which
  // runs as engine phases) happens before either is destroyed.
  std::vector<ShardState> states(static_cast<std::size_t>(shard_count));

  // Coordinator-owned replicas receive the global delta sequence exactly
  // once, in (time, shard, node) order — the membership ground truth the
  // sink-partition checks run against. They stay dense (two O(n) byte
  // arrays total); the per-shard replicas are stripe-local instead: dense
  // over the owned stripe plus the halo of boundary neighbors the shard's
  // channels can name in a link_up query (union over both radio graphs),
  // sparse for everything else a broadcast delta mentions.
  std::optional<net::LinkState> low_coord;
  std::optional<net::LinkState> high_coord;
  if (has_links) {
    std::vector<const net::ConnectivityGraph*> radio_graphs;
    if (needs_low) radio_graphs.push_back(low_graph.get());
    if (needs_high) radio_graphs.push_back(high_graph.get());
    const auto halos = map.halos(radio_graphs);
    for (int s = 0; s < shard_count; ++s) {
      ShardState& st = states[static_cast<std::size_t>(s)];
      // One shared domain per stripe across both radio-class replicas.
      const auto domain = map.domain(s, halos[static_cast<std::size_t>(s)]);
      if (needs_low) st.low_links.emplace(domain);
      if (needs_high) st.high_links.emplace(domain);
    }
    if (needs_low) low_coord.emplace(n);
    if (needs_high) high_coord.emplace(n);
  }

  sim::ShardedSimulator::Params engine_params;
  engine_params.shards = shard_count;
  engine_params.threads = config.sim_threads;
  engine_params.window = config.shard_window;
  sim::ShardedSimulator engine(engine_params);

  std::optional<phy::ShardedMedium> low_medium;
  std::optional<phy::ShardedMedium> high_medium;
  if (needs_low)
    low_medium.emplace(engine, low_graph, map,
                       detail::channel_params(config, config.sensor_radio),
                       util::substream(config.seed, 1, 0x4C4348u));
  if (needs_high)
    high_medium.emplace(engine, high_graph, map,
                        detail::channel_params(config, config.wifi_radio),
                        util::substream(config.seed, 2, 0x484348u));
  if (has_links) {
    // Each partition hears through its own replica: exact for owned
    // nodes, ≤ one window stale for remote ones.
    for (int s = 0; s < shard_count; ++s) {
      ShardState& st = states[static_cast<std::size_t>(s)];
      if (low_medium) low_medium->shard(s).set_link_state(&*st.low_links);
      if (high_medium) high_medium->shard(s).set_link_state(&*st.high_links);
    }
  }
  for (int s = 0; s < shard_count; ++s)
    engine.set_drain(s, [&low_medium, &high_medium, s](std::int64_t window) {
      if (low_medium) low_medium->drain(s, window);
      if (high_medium) high_medium->drain(s, window);
    });

  // ---- Epoch coordinator (caller thread, between phase barriers).
  std::vector<PendingDelta> batch;
  std::int64_t first_death_bits = -1;
  double partition_time = -1;
  std::int64_t partition_bits = -1;
  double next_reroute = config.battery.reroute_period;
  if (has_links) {
    engine.set_barrier_hook([&](std::int64_t, util::Seconds barrier_time) {
      batch.clear();
      for (auto& st : states) {
        batch.insert(batch.end(), st.deltas.begin(), st.deltas.end());
        st.deltas.clear();
      }
      std::sort(batch.begin(), batch.end(),
                [](const PendingDelta& a, const PendingDelta& b) {
                  return net::MembershipDelta::before(a.delta, b.delta);
                });
      for (const PendingDelta& pd : batch) {
        for (auto& st : states) {
          if (st.low_links) st.low_links->apply(pd.delta);
          if (st.high_links) st.high_links->apply(pd.delta);
        }
        if (low_coord) low_coord->apply(pd.delta);
        if (high_coord) high_coord->apply(pd.delta);
        if (!pd.battery_death) continue;
        // Delivered counts are only current as of this barrier — the
        // "bits until" metrics are therefore late by < one window, the
        // same bound as every other cross-shard observation.
        std::int64_t delivered = 0;
        for (const auto& st : states) delivered += st.m.delivered;
        if (first_death_bits < 0)
          first_death_bits = delivered * config.packet_bits;
        if (partition_time < 0) {
          const net::ConnectivityGraph& graph =
              needs_low ? *low_graph : *high_graph;
          const net::LinkState& links =
              needs_low ? *low_coord : *high_coord;
          if (!net::unreachable_alive(graph, sink, links).empty()) {
            partition_time = pd.delta.time;
            partition_bits = delivered * config.packet_bits;
          }
        }
      }
      if (lifetime_routing) {
        // The single-queue engine re-prices relays every reroute_period;
        // here the refresh lands on the first barrier at or past each
        // grid point. Workers are quiescent, so reading live battery
        // draw and touching every replica is race-free, and the refresh
        // schedule is a pure function of (config, shard count).
        while (next_reroute <= barrier_time) {
          for (int s = 0; s < shard_count; ++s) {
            const ShardState& st = states[static_cast<std::size_t>(s)];
            const auto& ids = map.owned_nodes(s);
            for (std::size_t l = 0; l < ids.size(); ++l) {
              const auto& b = st.batteries[l];
              if (b != nullptr)
                battery_fraction[static_cast<std::size_t>(ids[l])] =
                    b->drawn() / b->capacity();
            }
          }
          for (auto& st : states) {
            if (st.low_links) st.low_links->touch();
            if (st.high_links) st.high_links->touch();
          }
          next_reroute += config.battery.reroute_period;
        }
      }
    });
  }

  // ---- Setup phase: each shard builds its nodes on its pinned thread.
  engine.for_each_shard([&](int s) {
    ShardState& st = states[static_cast<std::size_t>(s)];
    sim::Simulator& ssim = engine.shard(s);
    st.delivery.delivered = [&st, sim = &ssim](const net::DataPacket& p) {
      ++st.m.delivered;
      st.delay_sum += sim->now() - p.created_at;
    };
    st.delivery.dropped = [&st](const net::DataPacket&, const char* reason) {
      detail::classify_drop(st.m, reason);
    };
    const auto owned = [&](net::NodeId id) {
      return map.shard_of[static_cast<std::size_t>(id)] == s;
    };
    // Stripe-local indexing: this shard's node-indexed vectors are sized
    // by its own population and indexed through the shared local-id map.
    const std::vector<net::NodeId>& owned_ids = map.owned_nodes(s);
    const std::size_t owned_n = owned_ids.size();
    const std::int32_t* lid_of = map.local_of.data();
    if (has_links) {
      net::NodeCostFn cost;
      if (lifetime_routing)
        cost = [&battery_fraction, weight = config.battery.lifetime_weight](
                   net::NodeId v) {
          return weight * battery_fraction[static_cast<std::size_t>(v)];
        };
      if (needs_low)
        st.low_routes = detail::build_routes(
            *low_graph, sink, all_pairs, "sensor", &*st.low_links,
            &st.low_dyn, config.route_policy, cost);
      if (needs_high)
        st.high_routes = detail::build_routes(
            *high_graph, sink, all_pairs, "wifi", &*st.high_links,
            &st.high_dyn, config.route_policy, cost);
    }
    const net::Router* low_r = has_links ? st.low_routes.get()
                                         : low_routes.get();
    const net::Router* high_r = has_links ? st.high_routes.get()
                                          : high_routes.get();
    switch (config.model) {
      case EvalModel::kSensor: {
        const MacChoice choice{mac::sensor_mac_params(),
                               config.sensor_mac.family,
                               {},
                               nullptr};
        st.fwd.resize(owned_n);
        for (std::size_t l = 0; l < owned_n; ++l) {
          st.fwd[l] = std::make_unique<ForwardingNode>(
              ssim, low_medium->shard(s), *low_r, owned_ids[l], sink,
              config.sensor_radio, phy::OverhearMode::kHeaderOnly, choice,
              config.seed, &st.delivery);
        }
        break;
      }
      case EvalModel::kWifi: {
        const MacChoice choice{mac::dcf_mac_params(),
                               config.wifi_mac.family,
                               {},
                               nullptr};
        st.fwd.resize(owned_n);
        for (std::size_t l = 0; l < owned_n; ++l) {
          st.fwd[l] = std::make_unique<ForwardingNode>(
              ssim, high_medium->shard(s), *high_r, owned_ids[l], sink,
              config.wifi_radio, phy::OverhearMode::kFull, choice,
              config.seed, &st.delivery);
        }
        break;
      }
      case EvalModel::kWifiDutyCycled: {
        DutyCycledWifiNode::Schedule schedule;
        schedule.period = config.duty_period;
        schedule.duty = config.duty_cycle;
        st.duty.resize(owned_n);
        for (std::size_t l = 0; l < owned_n; ++l) {
          st.duty[l] = std::make_unique<DutyCycledWifiNode>(
              ssim, high_medium->shard(s), *high_r, owned_ids[l], sink,
              config.wifi_radio, schedule, config.seed, &st.delivery);
        }
        break;
      }
      case EvalModel::kDualRadio: {
        const MacChoice low_choice{mac::sensor_mac_params(),
                                   config.sensor_mac.family,
                                   {},
                                   nullptr};
        const MacChoice high_choice{mac::dcf_mac_params(),
                                    mac::MacFamily::kAuto,
                                    {},
                                    nullptr};
        st.dual.resize(owned_n);
        for (std::size_t l = 0; l < owned_n; ++l) {
          st.dual[l] = std::make_unique<DualRadioNode>(
              ssim, low_medium->shard(s), high_medium->shard(s), *low_r,
              *high_r, owned_ids[l], config.sensor_radio,
              config.wifi_radio, bcp,
              config.wifi_promiscuous ? phy::OverhearMode::kFull
                                      : phy::OverhearMode::kNone,
              config.seed, &st.delivery, low_choice, high_choice);
        }
        break;
      }
    }

    // ---- Finite batteries (owned nodes only): same capacity rules and
    // death teardown as the single-queue engine, with the depletion
    // event firing in the owning shard at its exact analytic instant.
    if (has_battery) {
      st.batteries.resize(owned_n);
      st.on_battery_death = [&st, s, lid_of, sim = &ssim](net::NodeId node) {
        const auto l = static_cast<std::size_t>(
            lid_of[static_cast<std::size_t>(node)]);
        crash_node(st.fwd.empty() ? nullptr : st.fwd[l].get(),
                   st.dual.empty() ? nullptr : st.dual[l].get(),
                   st.duty.empty() ? nullptr : st.duty[l].get(), node,
                   st.low_links ? &*st.low_links : nullptr,
                   st.high_links ? &*st.high_links : nullptr);
        ++st.m.battery_deaths;
        if (st.m.battery_deaths == 1)
          st.m.time_to_first_death = sim->now();
        st.deltas.push_back(
            {net::MembershipDelta{sim->now(), s, node, net::NodeId{-1},
                                  net::MembershipDelta::Kind::kNodeDown},
             /*battery_death=*/true});
      };
      for (std::size_t l = 0; l < owned_n; ++l) {
        const net::NodeId id = owned_ids[l];
        util::Joules capacity = 0;
        if (config.model == EvalModel::kSensor ||
            config.model == EvalModel::kDualRadio)
          capacity += config.battery.sensor_initial_j;
        if (config.model != EvalModel::kSensor)
          capacity += config.battery.wifi_initial_j;
        if (capacity <= 0) continue;  // all owned classes unbudgeted
        auto battery = std::make_unique<energy::Battery>(
            ssim, capacity,
            [fn = &st.on_battery_death, id] { (*fn)(id); });
        energy::Battery* b = battery.get();
        const auto watch = [b](phy::Radio& radio) {
          b->attach(&radio.meter());
          radio.set_energy_observer([b] { b->rearm(); });
        };
        if (!st.fwd.empty())
          watch(st.fwd[l]->radio());
        else if (!st.duty.empty())
          watch(st.duty[l]->radio());
        else {
          watch(st.dual[l]->sensor_radio());
          watch(st.dual[l]->wifi_radio());
        }
        battery->rearm();  // arm against the boot power state
        st.batteries[l] = std::move(battery);
      }
    }

    // ---- Fault/churn schedule: the owning shard executes the event at
    // its exact instant against its replica and queues the epoch delta;
    // for link events the other endpoint's shard also flips its own
    // replica at the exact time, but only the node-owner counts the
    // event and broadcasts it.
    if (has_faults) {
      st.apply_fault = [&st, &map, lid_of, s, sim = &ssim](
                           const sim::FaultEvent& ev) {
        const auto node = static_cast<net::NodeId>(ev.node);
        const auto peer = static_cast<net::NodeId>(ev.peer);
        const bool owns_node =
            map.shard_of[static_cast<std::size_t>(ev.node)] == s;
        // Node crash/recover events are scheduled on the owner only, so
        // the stripe-local index is valid wherever it is used below.
        const auto l =
            static_cast<std::size_t>(lid_of[static_cast<std::size_t>(node)]);
        const auto queue = [&](net::MembershipDelta::Kind kind) {
          st.deltas.push_back(
              {net::MembershipDelta{sim->now(), s, node,
                                    ev.peer >= 0 ? peer : net::NodeId{-1},
                                    kind},
               /*battery_death=*/false});
        };
        switch (ev.kind) {
          case sim::FaultKind::kNodeCrash:
            crash_node(st.fwd.empty() ? nullptr : st.fwd[l].get(),
                       st.dual.empty() ? nullptr : st.dual[l].get(),
                       nullptr,  // duty nodes reject fault plans
                       node, st.low_links ? &*st.low_links : nullptr,
                       st.high_links ? &*st.high_links : nullptr);
            ++st.m.fault_node_crashes;
            queue(net::MembershipDelta::Kind::kNodeDown);
            break;
          case sim::FaultKind::kNodeRecover: {
            // Battery death is final: a recovery scheduled for a node
            // that has since depleted is refused (and counted).
            const energy::Battery* battery =
                st.batteries.empty() ? nullptr : st.batteries[l].get();
            if (battery != nullptr && battery->depleted()) {
              ++st.m.fault_recoveries_refused;
              break;
            }
            if (st.low_links) st.low_links->set_node_up(node, true);
            if (st.high_links) st.high_links->set_node_up(node, true);
            if (!st.fwd.empty())
              st.fwd[l]->recover();
            else
              st.dual[l]->recover();
            ++st.m.fault_node_recoveries;
            queue(net::MembershipDelta::Kind::kNodeUp);
            break;
          }
          case sim::FaultKind::kLinkDown:
            if (st.low_links) st.low_links->set_link_up(node, peer, false);
            if (st.high_links)
              st.high_links->set_link_up(node, peer, false);
            if (owns_node) {
              ++st.m.fault_link_downs;
              queue(net::MembershipDelta::Kind::kLinkDown);
            }
            break;
          case sim::FaultKind::kLinkUp:
            if (st.low_links) st.low_links->set_link_up(node, peer, true);
            if (st.high_links) st.high_links->set_link_up(node, peer, true);
            if (owns_node) {
              ++st.m.fault_link_ups;
              queue(net::MembershipDelta::Kind::kLinkUp);
            }
            break;
        }
      };
      for (const sim::FaultEvent& ev : fault_events) {
        const bool node_owned =
            map.shard_of[static_cast<std::size_t>(ev.node)] == s;
        const bool link_event = ev.kind == sim::FaultKind::kLinkDown ||
                                ev.kind == sim::FaultKind::kLinkUp;
        const bool peer_owned =
            link_event &&
            map.shard_of[static_cast<std::size_t>(ev.peer)] == s;
        if (!node_owned && !peer_owned) continue;
        ssim.schedule_at(ev.at,
                         [fn = &st.apply_fault, ev] { (*fn)(ev); });
      }
    }

    for (const net::NodeId sender : senders) {
      if (!owned(sender)) continue;
      const auto l = static_cast<std::size_t>(
          lid_of[static_cast<std::size_t>(sender)]);
      auto emit = [&st, &config, l](net::DataPacket p) {
        if (config.model == EvalModel::kDualRadio)
          st.dual[l]->send(p);
        else if (config.model == EvalModel::kWifiDutyCycled)
          st.duty[l]->send(p);
        else
          st.fwd[l]->send(p);
      };
      st.workloads.push_back(std::make_unique<CbrWorkload>(
          ssim, sender, sink, config.packet_bits, config.rate_bps,
          util::substream(config.seed, static_cast<std::uint64_t>(sender),
                          0x574Bu),
          std::move(emit)));
      st.workloads.back()->start();
    }
  });

  engine.run(config.duration);

  // ---- Collect on the caller's thread (the run's final barrier ordered
  // every shard's state before us), in ascending shard order.
  RunMetrics total;
  double delay_sum = 0;
  for (int s = 0; s < shard_count; ++s) {
    ShardState& st = states[static_cast<std::size_t>(s)];
    // Memory-model invariant: exactly one node family is populated, and
    // every per-shard node-indexed vector is stripe-local, not global.
    BCP_ENSURE(st.fwd.size() + st.dual.size() + st.duty.size() ==
               static_cast<std::size_t>(map.owned_count(s)));
    BCP_ENSURE(!has_battery ||
               st.batteries.size() ==
                   static_cast<std::size_t>(map.owned_count(s)));
    st.m.events_processed = engine.shard(s).processed_count();
    st.m.route_rebuilds =
        (st.low_dyn != nullptr ? st.low_dyn->rebuild_count() : 0) +
        (st.high_dyn != nullptr ? st.high_dyn->rebuild_count() : 0);
    for (const auto& w : st.workloads) st.m.generated += w->generated();
    if (low_medium) detail::add_channel_stats(st.m, low_medium->shard(s));
    if (high_medium) detail::add_channel_stats(st.m, high_medium->shard(s));
    const util::Seconds end = config.duration;
    for (const auto& node : st.fwd)
      if (node)
        detail::collect_forwarding(st.m, *node,
                                   config.model == EvalModel::kSensor, end);
    for (const auto& node : st.duty)
      if (node) detail::collect_duty(st.m, *node, end);
    for (const auto& node : st.dual)
      if (node) detail::collect_dual(st.m, *node, end);
    for (const auto& battery : st.batteries) {
      if (battery == nullptr) continue;
      st.m.battery_max_drawn_fraction =
          std::max(st.m.battery_max_drawn_fraction,
                   battery->drawn() / battery->capacity());
    }
    detail::merge_metrics(total, st.m);
    total.shard_events.push_back(st.m.events_processed);
    delay_sum += st.delay_sum;
  }
  total.boundary_frames =
      (low_medium ? low_medium->boundary_exports() : 0) +
      (high_medium ? high_medium->boundary_exports() : 0);
  if (has_battery) {
    // The coordinator resolved the cross-shard lifetime metrics at the
    // barriers; "until first death / partition" degenerate to the whole
    // run's deliveries when the event never happened.
    total.delivered_bits_until_first_death =
        first_death_bits >= 0 ? first_death_bits
                              : total.delivered * config.packet_bits;
    total.time_to_sink_partition = partition_time;
    total.delivered_bits_until_partition =
        partition_bits >= 0 ? partition_bits
                            : total.delivered * config.packet_bits;
  }
  detail::finalize_metrics(total, config, delay_sum);

  // ---- Teardown phase: release every shard's pooled payloads (node
  // queues, in-flight channel records, pending event captures) on the
  // thread whose pool owns them, before the workers exit with the
  // engine. Batteries hold event handles into the shard simulator, so
  // they die here too.
  engine.for_each_shard([&](int s) {
    ShardState& st = states[static_cast<std::size_t>(s)];
    st.batteries.clear();
    st.workloads.clear();
    st.fwd.clear();
    st.duty.clear();
    st.dual.clear();
    if (low_medium) low_medium->reset_shard(s);
    if (high_medium) high_medium->reset_shard(s);
    engine.shard(s).clear();
  });
  return total;
}

}  // namespace bcp::app

// The config.shards > 1 path of run_scenario: one simulation advanced by
// sim::ShardedSimulator over phy::ShardedMedium partitions.
//
// Node/shard lifecycle discipline: pooled message payloads
// (net::MessagePool) are thread-local, so everything a shard owns —
// nodes, workloads, channel partitions, pending events — is constructed,
// run, and destroyed on the shard's pinned worker thread via
// for_each_shard phases (setup → run → teardown). Metrics are read on
// the caller's thread between the run and teardown phases (the engine's
// barriers order those reads) and merged in ascending shard order, so
// the result is a pure function of (config, shard count) — sim_threads
// never changes a byte of output.
#include <memory>
#include <optional>
#include <vector>

#include "app/scenario.hpp"
#include "app/scenario_detail.hpp"
#include "app/workload.hpp"
#include "mac/mac_params.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "phy/sharded_channel.hpp"
#include "sim/sharded_simulator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace bcp::app {

namespace {

/// Everything one shard owns. Vectors are indexed by node id with null
/// holes at non-owned nodes, so sender emit hooks stay O(1) lookups.
struct ShardState {
  RunMetrics m;
  double delay_sum = 0;
  DeliverySink delivery;
  std::vector<std::unique_ptr<ForwardingNode>> fwd;
  std::vector<std::unique_ptr<DualRadioNode>> dual;
  std::vector<std::unique_ptr<DutyCycledWifiNode>> duty;
  std::vector<std::unique_ptr<CbrWorkload>> workloads;
};

void merge_energy(RadioEnergyTotals& total, const RadioEnergyTotals& part) {
  total.tx += part.tx;
  total.rx += part.rx;
  total.overhear += part.overhear;
  total.idle += part.idle;
  total.wakeup += part.wakeup;
}

/// Adds every additive counter of `part` into `total` (the derived
/// ratios — goodput, delays, normalized energies — are recomputed from
/// the merged sums by detail::finalize_metrics).
void merge_metrics(RunMetrics& total, const RunMetrics& part) {
  total.generated += part.generated;
  total.delivered += part.delivered;
  total.dropped_buffer += part.dropped_buffer;
  total.dropped_queue += part.dropped_queue;
  total.dropped_mac += part.dropped_mac;
  total.dropped_no_route += part.dropped_no_route;
  total.dropped_node_down += part.dropped_node_down;
  merge_energy(total.sensor_energy, part.sensor_energy);
  merge_energy(total.wifi_energy, part.wifi_energy);
  total.mac_tx_attempts += part.mac_tx_attempts;
  total.mac_tx_failed += part.mac_tx_failed;
  total.bcp_wakeups += part.bcp_wakeups;
  total.bcp_handshakes_failed += part.bcp_handshakes_failed;
  total.bcp_sender_sessions += part.bcp_sender_sessions;
  total.bcp_receiver_timeouts += part.bcp_receiver_timeouts;
  total.wifi_wakeup_transitions += part.wifi_wakeup_transitions;
  total.wifi_on_seconds += part.wifi_on_seconds;
  total.mac_crash_drops += part.mac_crash_drops;
  total.chan_frames += part.chan_frames;
  total.chan_rx_starts += part.chan_rx_starts;
  total.chan_rx_ends += part.chan_rx_ends;
  total.chan_rx_live_at_end += part.chan_rx_live_at_end;
}

}  // namespace

RunMetrics run_scenario_sharded(const ScenarioConfig& config) {
  BCP_REQUIRE(config.shards >= 2);
  BCP_REQUIRE(config.topology.node_count() >= 2);
  BCP_REQUIRE(config.duration > 0);
  BCP_REQUIRE(config.rate_bps > 0);
  BCP_REQUIRE(config.packet_bits > 0);
  BCP_REQUIRE(config.burst_packets > 0);
  BCP_REQUIRE(config.shard_window > 0);
  BCP_REQUIRE_MSG(config.faults.empty(),
                  "fault injection is not supported on the sharded engine "
                  "(DynamicRouting/LinkState are single-threaded)");
  config.sensor_mac.validate();
  config.wifi_mac.validate();
  BCP_REQUIRE_MSG(!config.sensor_mac.is_tdma() && !config.wifi_mac.is_tdma(),
                  "TDMA is not supported on the sharded engine (beacon "
                  "relay across stripes would race the slot clock)");
  BCP_REQUIRE_MSG(!config.battery.enabled,
                  "finite batteries are not supported on the sharded engine "
                  "(death/LinkState membership changes are single-threaded; "
                  "see ROADMAP's membership-epoch follow-on)");
  BCP_REQUIRE_MSG(config.route_policy == net::RoutePolicy::kShortestPath,
                  "lifetime-aware routing is not supported on the sharded "
                  "engine");

  const net::Topology topo = config.topology.build();
  const net::NodeId sink = topo.sink;
  const int n = topo.node_count();
  BCP_REQUIRE_MSG(config.n_senders >= 1 && config.n_senders <= n - 1,
                  "sender count must be in [1, nodes-1]");

  const bool needs_low = config.model == EvalModel::kSensor ||
                         config.model == EvalModel::kDualRadio;
  const bool needs_high = config.model != EvalModel::kSensor;
  const bool all_pairs =
      config.routing == RoutingMode::kAllPairs ||
      (config.routing == RoutingMode::kAuto && n <= kAllPairsNodeLimit);
  const util::Metres wifi_range = config.wifi_range_override > 0
                                      ? config.wifi_range_override
                                      : config.wifi_radio.range;
  if (config.model == EvalModel::kWifiDutyCycled) {
    BCP_REQUIRE_MSG(config.duty_cycle > 0 && config.duty_cycle <= 1.0,
                    "duty cycle must be in (0, 1]");
    BCP_REQUIRE_MSG(config.duty_period > 0, "duty period must be positive");
  }

  const phy::ShardMap map = phy::ShardMap::stripes(topo.positions,
                                                   config.shards);
  const int shard_count = map.count;

  // Shared read-only structures: one connectivity graph per radio class
  // (each partition holds a reference, not a copy — O(n + e) once) and
  // one Router per class (RoutingTable/ConvergecastRouting queries are
  // const and thread-safe).
  std::shared_ptr<const net::ConnectivityGraph> low_graph;
  std::shared_ptr<const net::ConnectivityGraph> high_graph;
  std::unique_ptr<net::Router> low_routes;
  std::unique_ptr<net::Router> high_routes;
  const net::DynamicRouting* unused_dyn = nullptr;
  if (needs_low) {
    low_graph = std::make_shared<net::ConnectivityGraph>(
        topo.positions, config.sensor_radio.range);
    low_routes = detail::build_routes(*low_graph, sink, all_pairs, "sensor",
                                      nullptr, &unused_dyn);
  }
  if (needs_high) {
    high_graph =
        std::make_shared<net::ConnectivityGraph>(topo.positions, wifi_range);
    high_routes = detail::build_routes(*high_graph, sink, all_pairs, "wifi",
                                       nullptr, &unused_dyn);
  }

  core::BcpConfig bcp = config.bcp;
  bcp.set_burst_packets(config.burst_packets, config.packet_bits);

  const std::vector<net::NodeId> senders =
      detail::pick_senders(config.seed, n, sink, config.n_senders);

  // States are declared before the engine/mediums so teardown (which
  // runs as engine phases) happens before either is destroyed.
  std::vector<ShardState> states(static_cast<std::size_t>(shard_count));

  sim::ShardedSimulator::Params engine_params;
  engine_params.shards = shard_count;
  engine_params.threads = config.sim_threads;
  engine_params.window = config.shard_window;
  sim::ShardedSimulator engine(engine_params);

  std::optional<phy::ShardedMedium> low_medium;
  std::optional<phy::ShardedMedium> high_medium;
  if (needs_low)
    low_medium.emplace(engine, low_graph, map,
                       detail::channel_params(config, config.sensor_radio),
                       util::substream(config.seed, 1, 0x4C4348u));
  if (needs_high)
    high_medium.emplace(engine, high_graph, map,
                        detail::channel_params(config, config.wifi_radio),
                        util::substream(config.seed, 2, 0x484348u));
  for (int s = 0; s < shard_count; ++s)
    engine.set_drain(s, [&low_medium, &high_medium, s](std::int64_t window) {
      if (low_medium) low_medium->drain(s, window);
      if (high_medium) high_medium->drain(s, window);
    });

  // ---- Setup phase: each shard builds its nodes on its pinned thread.
  engine.for_each_shard([&](int s) {
    ShardState& st = states[static_cast<std::size_t>(s)];
    sim::Simulator& ssim = engine.shard(s);
    st.delivery.delivered = [&st, sim = &ssim](const net::DataPacket& p) {
      ++st.m.delivered;
      st.delay_sum += sim->now() - p.created_at;
    };
    st.delivery.dropped = [&st](const net::DataPacket&, const char* reason) {
      detail::classify_drop(st.m, reason);
    };
    const auto owned = [&](net::NodeId id) {
      return map.shard_of[static_cast<std::size_t>(id)] == s;
    };
    switch (config.model) {
      case EvalModel::kSensor: {
        const MacChoice choice{mac::sensor_mac_params(),
                               config.sensor_mac.family,
                               {},
                               nullptr};
        st.fwd.resize(static_cast<std::size_t>(n));
        for (net::NodeId id = 0; id < n; ++id) {
          if (!owned(id)) continue;
          st.fwd[static_cast<std::size_t>(id)] =
              std::make_unique<ForwardingNode>(
                  ssim, low_medium->shard(s), *low_routes, id, sink,
                  config.sensor_radio, phy::OverhearMode::kHeaderOnly,
                  choice, config.seed, &st.delivery);
        }
        break;
      }
      case EvalModel::kWifi: {
        const MacChoice choice{mac::dcf_mac_params(),
                               config.wifi_mac.family,
                               {},
                               nullptr};
        st.fwd.resize(static_cast<std::size_t>(n));
        for (net::NodeId id = 0; id < n; ++id) {
          if (!owned(id)) continue;
          st.fwd[static_cast<std::size_t>(id)] =
              std::make_unique<ForwardingNode>(
                  ssim, high_medium->shard(s), *high_routes, id, sink,
                  config.wifi_radio, phy::OverhearMode::kFull, choice,
                  config.seed, &st.delivery);
        }
        break;
      }
      case EvalModel::kWifiDutyCycled: {
        DutyCycledWifiNode::Schedule schedule;
        schedule.period = config.duty_period;
        schedule.duty = config.duty_cycle;
        st.duty.resize(static_cast<std::size_t>(n));
        for (net::NodeId id = 0; id < n; ++id) {
          if (!owned(id)) continue;
          st.duty[static_cast<std::size_t>(id)] =
              std::make_unique<DutyCycledWifiNode>(
                  ssim, high_medium->shard(s), *high_routes, id, sink,
                  config.wifi_radio, schedule, config.seed, &st.delivery);
        }
        break;
      }
      case EvalModel::kDualRadio: {
        const MacChoice low_choice{mac::sensor_mac_params(),
                                   config.sensor_mac.family,
                                   {},
                                   nullptr};
        const MacChoice high_choice{mac::dcf_mac_params(),
                                    mac::MacFamily::kAuto,
                                    {},
                                    nullptr};
        st.dual.resize(static_cast<std::size_t>(n));
        for (net::NodeId id = 0; id < n; ++id) {
          if (!owned(id)) continue;
          st.dual[static_cast<std::size_t>(id)] =
              std::make_unique<DualRadioNode>(
                  ssim, low_medium->shard(s), high_medium->shard(s),
                  *low_routes, *high_routes, id, config.sensor_radio,
                  config.wifi_radio, bcp,
                  config.wifi_promiscuous ? phy::OverhearMode::kFull
                                          : phy::OverhearMode::kNone,
                  config.seed, &st.delivery, low_choice, high_choice);
        }
        break;
      }
    }
    for (const net::NodeId sender : senders) {
      if (!owned(sender)) continue;
      auto emit = [&st, &config, sender](net::DataPacket p) {
        if (config.model == EvalModel::kDualRadio)
          st.dual[static_cast<std::size_t>(sender)]->send(p);
        else if (config.model == EvalModel::kWifiDutyCycled)
          st.duty[static_cast<std::size_t>(sender)]->send(p);
        else
          st.fwd[static_cast<std::size_t>(sender)]->send(p);
      };
      st.workloads.push_back(std::make_unique<CbrWorkload>(
          ssim, sender, sink, config.packet_bits, config.rate_bps,
          util::substream(config.seed, static_cast<std::uint64_t>(sender),
                          0x574Bu),
          std::move(emit)));
      st.workloads.back()->start();
    }
  });

  engine.run(config.duration);

  // ---- Collect on the caller's thread (the run's final barrier ordered
  // every shard's state before us), in ascending shard order.
  RunMetrics total;
  double delay_sum = 0;
  for (int s = 0; s < shard_count; ++s) {
    ShardState& st = states[static_cast<std::size_t>(s)];
    st.m.events_processed = engine.shard(s).processed_count();
    for (const auto& w : st.workloads) st.m.generated += w->generated();
    if (low_medium) detail::add_channel_stats(st.m, low_medium->shard(s));
    if (high_medium) detail::add_channel_stats(st.m, high_medium->shard(s));
    const util::Seconds end = config.duration;
    for (const auto& node : st.fwd)
      if (node)
        detail::collect_forwarding(st.m, *node,
                                   config.model == EvalModel::kSensor, end);
    for (const auto& node : st.duty)
      if (node) detail::collect_duty(st.m, *node, end);
    for (const auto& node : st.dual)
      if (node) detail::collect_dual(st.m, *node, end);
    merge_metrics(total, st.m);
    total.shard_events.push_back(st.m.events_processed);
    total.events_processed += st.m.events_processed;
    delay_sum += st.delay_sum;
  }
  total.boundary_frames =
      (low_medium ? low_medium->boundary_exports() : 0) +
      (high_medium ? high_medium->boundary_exports() : 0);
  detail::finalize_metrics(total, config, delay_sum);

  // ---- Teardown phase: release every shard's pooled payloads (node
  // queues, in-flight channel records, pending event captures) on the
  // thread whose pool owns them, before the workers exit with the engine.
  engine.for_each_shard([&](int s) {
    ShardState& st = states[static_cast<std::size_t>(s)];
    st.workloads.clear();
    st.fwd.clear();
    st.duty.clear();
    st.dual.clear();
    if (low_medium) low_medium->reset_shard(s);
    if (high_medium) high_medium->reset_shard(s);
    engine.shard(s).clear();
  });
  return total;
}

}  // namespace bcp::app

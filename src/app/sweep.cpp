#include "app/sweep.hpp"

#include <atomic>
#include <cmath>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "util/assert.hpp"

namespace bcp::app {

double SweepPoint::get(const std::string& name) const {
  for (const auto& [n, v] : params_)
    if (n == name) return v;
  BCP_REQUIRE_MSG(false, "no such sweep axis: " + name);
  throw std::logic_error("unreachable");
}

double SweepPoint::get_or(const std::string& name, double fallback) const {
  for (const auto& [n, v] : params_)
    if (n == name) return v;
  return fallback;
}

int SweepPoint::get_int(const std::string& name) const {
  return static_cast<int>(std::lround(get(name)));
}

SweepGrid& SweepGrid::axis(std::string name, std::vector<double> values) {
  BCP_REQUIRE_MSG(!values.empty(), "axis needs at least one value");
  for (const auto& a : axes_)
    BCP_REQUIRE_MSG(a.name != name, "duplicate axis: " + name);
  axes_.push_back(Axis{std::move(name), std::move(values)});
  return *this;
}

SweepGrid& SweepGrid::axis_ints(std::string name,
                                const std::vector<int>& values) {
  std::vector<double> v;
  v.reserve(values.size());
  for (const int x : values) v.push_back(static_cast<double>(x));
  return axis(std::move(name), std::move(v));
}

SweepGrid& SweepGrid::constant(std::string name, double value) {
  return axis(std::move(name), {value});
}

const std::string& SweepGrid::axis_name(std::size_t a) const {
  BCP_REQUIRE(a < axes_.size());
  return axes_[a].name;
}

const std::vector<double>& SweepGrid::axis_values(
    const std::string& name) const {
  for (const auto& a : axes_)
    if (a.name == name) return a.values;
  BCP_REQUIRE_MSG(false, "no such sweep axis: " + name);
  throw std::logic_error("unreachable");
}

std::size_t SweepGrid::size() const {
  if (axes_.empty()) return 0;
  std::size_t n = 1;
  for (const auto& a : axes_) n *= a.values.size();
  return n;
}

SweepPoint SweepGrid::point(std::size_t i) const {
  BCP_REQUIRE(i < size());
  SweepPoint::Params params(axes_.size());
  // Mixed-radix decode, last axis fastest.
  std::size_t rest = i;
  for (std::size_t a = axes_.size(); a-- > 0;) {
    const Axis& ax = axes_[a];
    params[a] = {ax.name, ax.values[rest % ax.values.size()]};
    rest /= ax.values.size();
  }
  return SweepPoint(i, std::move(params));
}

std::size_t SweepGrid::index_of(const std::vector<std::size_t>& digits) const {
  BCP_REQUIRE(digits.size() == axes_.size());
  std::size_t i = 0;
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    BCP_REQUIRE(digits[a] < axes_[a].values.size());
    i = i * axes_[a].values.size() + digits[a];
  }
  return i;
}

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {
  BCP_REQUIRE(options_.replications >= 1);
  BCP_REQUIRE(options_.threads >= 0);
}

int SweepRunner::effective_threads(std::size_t jobs) const {
  int n = options_.threads;
  if (n == 0) n = static_cast<int>(std::thread::hardware_concurrency());
  if (n < 1) n = 1;
  if (static_cast<std::size_t>(n) > jobs) n = static_cast<int>(jobs);
  return n;
}

stats::ResultSink SweepRunner::run(const SweepGrid& grid,
                                   const SweepFn& fn) const {
  BCP_REQUIRE(fn != nullptr);
  const std::size_t points = grid.size();
  const std::size_t reps = static_cast<std::size_t>(options_.replications);
  const std::size_t jobs = points * reps;

  stats::ResultSink sink;
  if (jobs == 0) return sink;

  // Parallel phase: workers claim job indices from a shared counter and
  // write into their own slot, so no result ever moves between threads
  // mid-aggregation. Job j = (point j / reps, replication j % reps).
  std::vector<stats::ResultSink::Metrics> rows(jobs);
  std::atomic<std::size_t> next{0};
  std::exception_ptr failure;
  std::mutex failure_mutex;

  const auto worker = [&] {
    for (;;) {
      const std::size_t j = next.fetch_add(1);
      if (j >= jobs) return;
      const int rep = static_cast<int>(j % reps);
      try {
        SweepJob job{grid.point(j / reps), rep,
                     options_.base_seed + static_cast<std::uint64_t>(rep)};
        rows[j] = fn(job);
      } catch (...) {
        std::lock_guard<std::mutex> lock(failure_mutex);
        if (!failure) failure = std::current_exception();
        next.store(jobs);  // drain remaining work
        return;
      }
    }
  };

  const int n_threads = effective_threads(jobs);
  if (n_threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(n_threads));
    for (int t = 0; t < n_threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  if (failure) std::rethrow_exception(failure);

  // Sequential merge in job order: output is a pure function of the grid,
  // the job function, and the options — never of the thread count.
  for (std::size_t p = 0; p < points; ++p) {
    const SweepPoint point = grid.point(p);
    for (std::size_t r = 0; r < reps; ++r)
      sink.add(p, point.params(), rows[p * reps + r]);
  }
  return sink;
}

}  // namespace bcp::app

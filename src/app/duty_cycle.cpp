#include "app/duty_cycle.hpp"

#include "mac/mac_params.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace bcp::app {

DutyCycledWifiNode::DutyCycledWifiNode(
    sim::Simulator& sim, phy::Channel& channel,
    const net::Router& routes, net::NodeId self, net::NodeId sink,
    const energy::RadioEnergyModel& radio_model, Schedule schedule,
    std::uint64_t seed, DeliverySink* delivery)
    : sim_(sim),
      routes_(routes),
      self_(self),
      sink_(sink),
      schedule_(schedule),
      delivery_(delivery),
      radio_(sim, channel, self, radio_model, phy::OverhearMode::kFull,
             /*start_on=*/false),
      mac_(sim, radio_, mac::dcf_mac_params(),
           util::substream(seed, static_cast<std::uint64_t>(self),
                           0x445459u)) {
  BCP_REQUIRE(delivery != nullptr);
  BCP_REQUIRE(schedule_.period > 0);
  BCP_REQUIRE(schedule_.duty > 0 && schedule_.duty <= 1.0);
  mac_.set_rx_callback(
      [this](const net::Message& m, net::NodeId from) { on_rx(m, from); });
  mac_.set_tx_done_callback([this](const net::Message& m, net::NodeId,
                                    bool success) {
    if (!success && m.is_data())
      delivery_->dropped(std::get<net::DataPacket>(m.body), "mac-failed");
    if (awaiting_quiesce_ && mac_.idle()) on_window_close();
  });
  // The usable window begins once the radio's off->on transition finishes
  // (a PSM radio starts waking ahead of the window; equivalently, the
  // window here is wake + duty*period of usable air time).
  radio_.callbacks().wake_complete = [this] {
    window_open_ = true;
    pump();
  };
  // All nodes share the synchronized schedule, first window at t=0.
  sim_.schedule_in(0.0, [this] { on_window_open(); });
}

void DutyCycledWifiNode::crash() {
  if (!up_) return;
  up_ = false;
  window_open_ = false;
  awaiting_quiesce_ = false;
  // The open chain re-schedules itself with no stored handle, so it
  // cannot be cancelled here; instead the next pending open fires once,
  // sees the up_ gate, and the chain ends. Bumping the generation kills
  // any in-flight close the same way it kills overrun closes.
  ++window_generation_;
  pending_.clear();
  mac_.reset_on_crash();
  radio_.force_off();
}

void DutyCycledWifiNode::send(const net::DataPacket& packet) {
  if (!up_) {
    delivery_->dropped(packet, "node-down");
    return;
  }
  net::Message msg;
  msg.src = self_;
  msg.dst = packet.destination;
  msg.body = packet;
  if (msg.dst == self_) {
    delivery_->delivered(packet);
    return;
  }
  pending_.push_back(std::move(msg));
  if (window_open_) pump();
}

void DutyCycledWifiNode::on_window_open() {
  if (!up_) return;  // dead: let the self-rescheduling chain end here
  awaiting_quiesce_ = false;
  ++window_generation_;
  const std::uint64_t generation = window_generation_;
  radio_.power_on();  // charges the wake-up lump; wake_complete opens
  // A close that lands after the next window already opened is stale
  // (high duty factors make wake + usable time overrun the period; at
  // duty = 1 the radio is effectively always on).
  sim_.schedule_in(radio_.model().t_wakeup +
                       schedule_.period * schedule_.duty,
                   [this, generation] {
                     if (generation == window_generation_)
                       on_window_close();
                   });
  sim_.schedule_in(schedule_.period, [this] { on_window_open(); });
}

void DutyCycledWifiNode::on_window_close() {
  window_open_ = false;
  if (!mac_.idle() || radio_.state() == phy::RadioState::kTx) {
    // Let the in-flight exchange finish; tx_done re-checks.
    awaiting_quiesce_ = true;
    return;
  }
  awaiting_quiesce_ = false;
  if (radio_.state() != phy::RadioState::kOff) radio_.power_off();
}

void DutyCycledWifiNode::pump() {
  while (!pending_.empty()) {
    net::Message msg = std::move(pending_.front());
    pending_.pop_front();
    forward(msg);
  }
}

void DutyCycledWifiNode::forward(const net::Message& msg) {
  const net::NodeId next = routes_.next_hop(self_, msg.dst);
  if (next == net::kInvalidNode) {
    if (msg.is_data())
      delivery_->dropped(std::get<net::DataPacket>(msg.body), "no-route");
    return;
  }
  if (!mac_.enqueue(msg, next)) {
    if (msg.is_data())
      delivery_->dropped(std::get<net::DataPacket>(msg.body), "queue-full");
  }
}

void DutyCycledWifiNode::on_rx(const net::Message& msg, net::NodeId) {
  if (msg.dst == self_) {
    if (msg.is_data())
      delivery_->delivered(std::get<net::DataPacket>(msg.body));
    return;
  }
  // Relay; if the window just closed the MAC still drains this frame
  // before the radio sleeps (quiesce path above).
  if (window_open_)
    forward(msg);
  else
    pending_.push_back(msg);
}

}  // namespace bcp::app

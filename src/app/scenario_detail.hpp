// Internal shared pieces of the scenario harness, used by both engines:
// run_scenario (single event queue, the golden-protected path) and
// run_scenario_sharded (the parallel engine). Not part of the public app
// API — the split exists so the sharded harness accumulates per-node
// metrics with exactly the same arithmetic as the historical path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "app/duty_cycle.hpp"
#include "app/nodes.hpp"
#include "app/scenario.hpp"
#include "net/routing.hpp"
#include "phy/channel.hpp"

namespace bcp::app::detail {

void accumulate(RadioEnergyTotals& t, const energy::EnergyMeter& meter);

double per_kbit(util::Joules e, util::Bits delivered_bits);

/// Maps a DeliverySink drop reason onto its RunMetrics counter.
void classify_drop(RunMetrics& m, const char* reason);

/// Builds one radio graph's routes, rejecting placements where any node
/// is cut off from the sink — a silent kInvalidNode route at runtime
/// would just bleed packets as "no-route" drops. A non-null `links`
/// (fault-injection and battery runs) swaps in the membership-aware
/// DynamicRouting, reported back through `dyn_out` for rebuild
/// accounting; `policy`/`cost` select its scoring (lifetime-aware runs).
std::unique_ptr<net::Router> build_routes(
    const net::ConnectivityGraph& graph, net::NodeId sink, bool all_pairs,
    const char* radio_name, const net::LinkState* links,
    const net::DynamicRouting** dyn_out,
    net::RoutePolicy policy = net::RoutePolicy::kShortestPath,
    net::NodeCostFn cost = nullptr);

/// The seed-determined sender subset (sorted node ids, sink excluded).
std::vector<net::NodeId> pick_senders(std::uint64_t seed, int n,
                                      net::NodeId sink, int n_senders);

/// Channel parameters for one radio class: the config's loss/propagation/
/// capture knobs with the radio's datasheet noise floor.
phy::Channel::Params channel_params(const ScenarioConfig& config,
                                    const energy::RadioEnergyModel& radio);

void add_channel_stats(RunMetrics& m, const phy::Channel& channel);
void add_tdma_stats(RunMetrics& m, const mac::Mac& mc);

// Per-node metric collection: finalizes the node's meter(s) at `end` and
// accumulates energies/MAC/protocol counters. One call per node, in node
// id order, reproduces the historical accumulation arithmetic exactly.
void collect_forwarding(RunMetrics& m, ForwardingNode& node,
                        bool charge_sensor, util::Seconds end);
void collect_duty(RunMetrics& m, DutyCycledWifiNode& node, util::Seconds end);
void collect_dual(RunMetrics& m, DualRadioNode& node, util::Seconds end);

/// Goodput, mean delay and the normalized-energy family, computed from
/// the accumulated sums.
void finalize_metrics(RunMetrics& m, const ScenarioConfig& config,
                      double delay_sum);

/// Folds one shard's metrics into the run total: counters sum,
/// time-to-first-* fields take the earliest non-sentinel value,
/// battery_max_drawn_fraction takes the max, per-shard event vectors
/// concatenate, and the derived ratios (goodput, delays, normalized
/// energies) are left for finalize_metrics to recompute from the merged
/// sums. A static_assert on sizeof(RunMetrics) at the definition plus the
/// field-coverage test pin that every RunMetrics field has a merge rule —
/// a new metric cannot be dropped silently.
void merge_metrics(RunMetrics& total, const RunMetrics& part);

}  // namespace bcp::app::detail

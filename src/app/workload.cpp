#include "app/workload.hpp"

#include <utility>

#include "util/assert.hpp"

namespace bcp::app {

CbrWorkload::CbrWorkload(sim::Simulator& sim, net::NodeId origin,
                         net::NodeId destination, util::Bits packet_bits,
                         double rate_bps, std::uint64_t seed, Emit emit)
    : sim_(sim),
      origin_(origin),
      destination_(destination),
      packet_bits_(packet_bits),
      interval_(static_cast<double>(packet_bits) / rate_bps),
      rng_(seed),
      emit_(std::move(emit)) {
  BCP_REQUIRE(packet_bits > 0);
  BCP_REQUIRE(rate_bps > 0);
  BCP_REQUIRE(emit_ != nullptr);
}

void CbrWorkload::start() {
  sim_.schedule_in(rng_.uniform(0.0, interval_),
                   [this] { emit_and_reschedule(); });
}

void CbrWorkload::emit_and_reschedule() {
  net::DataPacket p;
  p.origin = origin_;
  p.destination = destination_;
  p.seq = next_seq_++;
  p.payload_bits = packet_bits_;
  p.created_at = sim_.now();
  ++generated_;
  emit_(p);
  sim_.schedule_in(interval_, [this] { emit_and_reschedule(); });
}

BurstyWorkload::BurstyWorkload(sim::Simulator& sim, net::NodeId origin,
                               net::NodeId destination, Params params,
                               std::uint64_t seed, Emit emit)
    : sim_(sim),
      origin_(origin),
      destination_(destination),
      params_(params),
      rng_(seed),
      emit_(std::move(emit)) {
  BCP_REQUIRE(params_.packet_bits > 0);
  BCP_REQUIRE(params_.on_rate_bps > 0);
  BCP_REQUIRE(params_.mean_on > 0 && params_.mean_off > 0);
  BCP_REQUIRE(emit_ != nullptr);
}

void BurstyWorkload::start() {
  sim_.schedule_in(rng_.exponential(params_.mean_off),
                   [this] { begin_on_period(); });
}

void BurstyWorkload::begin_on_period() {
  on_ends_ = sim_.now() + rng_.exponential(params_.mean_on);
  emit_packet();
}

void BurstyWorkload::emit_packet() {
  if (sim_.now() >= on_ends_) {
    sim_.schedule_in(rng_.exponential(params_.mean_off),
                     [this] { begin_on_period(); });
    return;
  }
  net::DataPacket p;
  p.origin = origin_;
  p.destination = destination_;
  p.seq = next_seq_++;
  p.payload_bits = params_.packet_bits;
  p.created_at = sim_.now();
  ++generated_;
  emit_(p);
  const util::Seconds interval =
      static_cast<double>(params_.packet_bits) / params_.on_rate_bps;
  sim_.schedule_in(interval, [this] { emit_packet(); });
}

}  // namespace bcp::app

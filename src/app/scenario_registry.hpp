// Named scenario construction for the sweep engine.
//
// A ScenarioRegistry maps a variant name ("mh/dual", "sh/sensor",
// "mh/wifi-duty", ...) to a builder that turns one SweepPoint into a full
// ScenarioConfig. Bench drivers and tests then describe a figure as
// "these variants x these axes" instead of hand-rolling construction
// loops, and new workload variants become one registration instead of a
// new driver.
//
// The built-in catalog covers the paper's §4.1 evaluation matrix on the
// grid plus generated-placement variants of the sh/mh × model matrix
// ("sh-rand/dual", "mh-line/sensor", ...), lossy-channel variants under
// the log-distance + shadowing propagation model ("lossy-mh/dual", ...),
// and node-churn variants with deterministic crash/recover schedules
// ("churn-mh/dual", ...). Common axes read by every builder (all optional
// unless noted):
//
//   senders     — CBR sender count (required by all variants)
//   burst       — α·s* in 32 B packets (dual-radio variants; default 500)
//   rate_bps    — per-sender offered load; <= 0 keeps the preset rate
//   duration    — simulated seconds (default 5000, as in the paper)
//   loss        — extra Bernoulli frame-loss probability (default 0)
//   nodes/area/topo_seed — placement axes of the generated variants
//
// Variant-specific axes are documented per variant in the catalog
// (scenario_registry.cpp): "duty" / "duty_period_s" for the sleep-cycled
// 802.11 strawman, "deadline_s" for the delay-policy variants.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "app/scenario.hpp"
#include "app/sweep.hpp"

namespace bcp::app {

class ScenarioRegistry {
 public:
  using Builder = std::function<ScenarioConfig(const SweepPoint&)>;

  /// Registers a variant; names must be unique.
  void add(std::string name, std::string description, Builder builder);

  bool contains(const std::string& name) const;

  /// Builds the named variant's config from one grid point; throws on an
  /// unknown name.
  ScenarioConfig make(const std::string& name, const SweepPoint& point) const;

  const std::string& description(const std::string& name) const;

  /// Registered names in registration order.
  std::vector<std::string> names() const;

  /// The built-in §4.1 catalog (single-hop/multi-hop x evaluation model,
  /// plus duty-cycled 802.11, delay-policy and radio-pair variants).
  static const ScenarioRegistry& builtin();

 private:
  struct Variant {
    std::string name;
    std::string description;
    Builder build;
  };
  const Variant* find(const std::string& name) const;

  std::vector<Variant> variants_;
};

/// The canonical RunMetrics -> named-metric mapping every scenario sweep
/// reports (goodput, normalized energies, delay, traffic and protocol
/// counters). Metric names are part of the BENCH_*.json format.
stats::ResultSink::Metrics standard_metrics(const RunMetrics& m);

/// A SweepFn that reads the integer axis "variant" as an index into
/// `variants`, builds that variant's config from the point (overriding the
/// seed with the job's), runs the scenario, and reports standard_metrics.
SweepFn scenario_sweep_fn(const ScenarioRegistry& registry,
                          std::vector<std::string> variants);

}  // namespace bcp::app

#include "app/scenario.hpp"

#include <algorithm>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>

#include "app/duty_cycle.hpp"
#include "app/nodes.hpp"
#include "app/scenario_detail.hpp"
#include "app/workload.hpp"
#include "mac/mac_params.hpp"
#include "mac/tdma_mac.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "phy/channel.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace bcp::app {

const char* to_string(EvalModel m) {
  switch (m) {
    case EvalModel::kSensor:         return "Sensor";
    case EvalModel::kWifi:           return "802.11";
    case EvalModel::kWifiDutyCycled: return "802.11-DutyCycled";
    case EvalModel::kDualRadio:      return "DualRadio";
  }
  return "?";
}

ScenarioConfig ScenarioConfig::single_hop(EvalModel model, int senders,
                                          int burst_packets) {
  ScenarioConfig cfg;
  cfg.model = model;
  cfg.n_senders = senders;
  cfg.burst_packets = burst_packets;
  cfg.sensor_radio = energy::mica();
  cfg.wifi_radio = energy::lucent_11mbps();  // sensor-radio range: same hops
  cfg.rate_bps = 200.0;                      // §4.1.1 runs at 0.2 Kbps
  return cfg;
}

ScenarioConfig ScenarioConfig::multi_hop(EvalModel model, int senders,
                                         int burst_packets) {
  ScenarioConfig cfg;
  cfg.model = model;
  cfg.n_senders = senders;
  cfg.burst_packets = burst_packets;
  cfg.sensor_radio = energy::mica();
  cfg.wifi_radio = energy::cabletron_2mbps();
  // A corner sink is up to ~283 m from the far corner; stretch the
  // Cabletron disc so "the IEEE 802.11 radio is able to reach the sink in
  // one hop" (§4.1.2) holds for every sender.
  cfg.wifi_range_override = 300.0;
  cfg.rate_bps = 2000.0;  // §4.1.2 presents the 2 Kbps graphs
  return cfg;
}

namespace detail {

void accumulate(RadioEnergyTotals& t, const energy::EnergyMeter& meter) {
  using energy::EnergyCategory;
  t.tx += meter.energy(EnergyCategory::kTx);
  t.rx += meter.energy(EnergyCategory::kRx);
  t.overhear += meter.energy(EnergyCategory::kOverhear);
  t.idle += meter.energy(EnergyCategory::kIdle);
  t.wakeup += meter.energy(EnergyCategory::kWaking);
}

double per_kbit(util::Joules e, util::Bits delivered_bits) {
  if (delivered_bits <= 0) return 0.0;
  return e / (static_cast<double>(delivered_bits) / 1000.0);
}

void classify_drop(RunMetrics& m, const char* reason) {
  if (std::strcmp(reason, "buffer-full") == 0)
    ++m.dropped_buffer;
  else if (std::strcmp(reason, "queue-full") == 0)
    ++m.dropped_queue;
  else if (std::strcmp(reason, "mac-failed") == 0)
    ++m.dropped_mac;
  else if (std::strcmp(reason, "node-down") == 0)
    ++m.dropped_node_down;
  else
    ++m.dropped_no_route;
}

std::unique_ptr<net::Router> build_routes(
    const net::ConnectivityGraph& graph, net::NodeId sink, bool all_pairs,
    const char* radio_name, const net::LinkState* links,
    const net::DynamicRouting** dyn_out, net::RoutePolicy policy,
    net::NodeCostFn cost) {
  const std::vector<net::NodeId> stranded =
      net::unreachable_from(graph, sink);
  BCP_REQUIRE_MSG(stranded.empty(),
                  std::string(radio_name) +
                      "-radio topology is disconnected: " +
                      std::to_string(stranded.size()) +
                      " node(s) cannot reach sink " + std::to_string(sink) +
                      ": " + net::format_node_list(stranded));
  if (links != nullptr) {
    auto dyn = std::make_unique<net::DynamicRouting>(
        graph, sink, *links, all_pairs, policy, std::move(cost));
    *dyn_out = dyn.get();
    return dyn;
  }
  if (all_pairs)
    return std::make_unique<net::RoutingTable>(graph);
  return std::make_unique<net::ConvergecastRouting>(graph, sink);
}

std::vector<net::NodeId> pick_senders(std::uint64_t seed, int n,
                                      net::NodeId sink, int n_senders) {
  std::vector<net::NodeId> candidates;
  for (net::NodeId id = 0; id < n; ++id)
    if (id != sink) candidates.push_back(id);
  util::Xoshiro256 pick_rng(util::substream(seed, 3, 0x53454Eu));
  for (std::size_t i = candidates.size(); i > 1; --i)
    std::swap(candidates[i - 1], candidates[pick_rng.uniform_int(i)]);
  candidates.resize(static_cast<std::size_t>(n_senders));
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

phy::Channel::Params channel_params(const ScenarioConfig& config,
                                    const energy::RadioEnergyModel& radio) {
  phy::Channel::Params params{config.frame_loss_prob, config.propagation};
  params.capture.enabled = config.capture_enabled;
  params.capture.threshold_db = config.capture_threshold_db;
  params.capture.noise_floor_dbm = radio.noise_floor_dbm;
  return params;
}

void add_channel_stats(RunMetrics& m, const phy::Channel& channel) {
  m.chan_frames += channel.stats().frames;
  m.chan_rx_starts += channel.stats().rx_starts;
  m.chan_rx_ends += channel.stats().deliveries_clean +
                    channel.stats().deliveries_corrupt;
  m.chan_rx_live_at_end += channel.live_arrivals();
}

void add_tdma_stats(RunMetrics& m, const mac::Mac& mc) {
  if (const auto* tdma = dynamic_cast<const mac::TdmaMac*>(&mc)) {
    m.tdma_beacons_sent += tdma->stats().beacons_sent;
    m.tdma_beacons_heard += tdma->stats().beacons_heard;
    m.tdma_slots_skipped += tdma->stats().slots_skipped_unsynced;
  }
}

void collect_forwarding(RunMetrics& m, ForwardingNode& node,
                        bool charge_sensor, util::Seconds end) {
  energy::EnergyMeter& meter = node.radio().meter();
  meter.finalize(end);
  accumulate(charge_sensor ? m.sensor_energy : m.wifi_energy, meter);
  m.mac_tx_attempts += node.mac().stats().tx_attempts;
  m.mac_tx_failed += node.mac().stats().tx_failed;
  m.mac_crash_drops += node.mac().stats().crash_drops;
  add_tdma_stats(m, node.mac());
}

void collect_duty(RunMetrics& m, DutyCycledWifiNode& node,
                  util::Seconds end) {
  energy::EnergyMeter& meter = node.radio().meter();
  meter.finalize(end);
  accumulate(m.wifi_energy, meter);
  m.mac_tx_attempts += node.mac().stats().tx_attempts;
  m.mac_tx_failed += node.mac().stats().tx_failed;
  m.wifi_wakeup_transitions += meter.wakeup_count();
  using energy::EnergyCategory;
  m.wifi_on_seconds += meter.duration(EnergyCategory::kIdle) +
                       meter.duration(EnergyCategory::kRx) +
                       meter.duration(EnergyCategory::kOverhear) +
                       meter.duration(EnergyCategory::kTx);
}

void collect_dual(RunMetrics& m, DualRadioNode& node, util::Seconds end) {
  node.sensor_radio().meter().finalize(end);
  node.wifi_radio().meter().finalize(end);
  accumulate(m.sensor_energy, node.sensor_radio().meter());
  accumulate(m.wifi_energy, node.wifi_radio().meter());
  m.mac_tx_attempts += node.sensor_mac().stats().tx_attempts +
                       node.wifi_mac().stats().tx_attempts;
  m.mac_tx_failed += node.sensor_mac().stats().tx_failed +
                     node.wifi_mac().stats().tx_failed;
  m.mac_crash_drops += node.sensor_mac().stats().crash_drops +
                       node.wifi_mac().stats().crash_drops;
  add_tdma_stats(m, node.sensor_mac());
  const auto& astats = node.agent().stats();
  m.bcp_packets_lost_to_crash += astats.packets_lost_to_crash;
  m.bcp_wakeups += astats.wakeups_sent;
  m.bcp_handshakes_failed += astats.handshakes_failed;
  m.bcp_sender_sessions += astats.sender_sessions_completed;
  m.bcp_receiver_timeouts += astats.receiver_sessions_timed_out;
  m.wifi_wakeup_transitions += node.wifi_radio().meter().wakeup_count();
  using energy::EnergyCategory;
  const auto& wm = node.wifi_radio().meter();
  m.wifi_on_seconds += wm.duration(EnergyCategory::kIdle) +
                       wm.duration(EnergyCategory::kRx) +
                       wm.duration(EnergyCategory::kOverhear) +
                       wm.duration(EnergyCategory::kTx);
}

void finalize_metrics(RunMetrics& m, const ScenarioConfig& config,
                      double delay_sum) {
  m.goodput = m.generated > 0
                  ? static_cast<double>(m.delivered) /
                        static_cast<double>(m.generated)
                  : 0.0;
  m.mean_delay = m.delivered > 0
                     ? delay_sum / static_cast<double>(m.delivered)
                     : 0.0;
  const util::Bits delivered_bits = m.delivered * config.packet_bits;
  m.normalized_energy_sensor_ideal =
      per_kbit(m.sensor_energy.ideal(), delivered_bits);
  m.normalized_energy_sensor_header = per_kbit(
      m.sensor_energy.ideal() + m.sensor_energy.overhear, delivered_bits);
  switch (config.model) {
    case EvalModel::kSensor:
      m.normalized_energy = m.normalized_energy_sensor_ideal;
      break;
    case EvalModel::kWifi:
    case EvalModel::kWifiDutyCycled:
      m.normalized_energy = per_kbit(m.wifi_energy.full(), delivered_bits);
      break;
    case EvalModel::kDualRadio:
      // Sensor radio at its ideal (tx+rx) charge + 802.11 fully charged.
      m.normalized_energy = per_kbit(
          m.sensor_energy.ideal() + m.wifi_energy.full(), delivered_bits);
      break;
  }
}

}  // namespace detail

RunMetrics run_scenario(const ScenarioConfig& config) {
  if (config.shards > 1) return run_scenario_sharded(config);
  BCP_REQUIRE(config.topology.node_count() >= 2);
  BCP_REQUIRE(config.duration > 0);
  BCP_REQUIRE(config.rate_bps > 0);
  BCP_REQUIRE(config.packet_bits > 0);
  BCP_REQUIRE(config.burst_packets > 0);
  // Checked against the spec's exact node count BEFORE build(): a bad
  // sender count must not first pay for a 100k-node placement.
  BCP_REQUIRE_MSG(config.n_senders >= 1 &&
                      config.n_senders <= config.topology.node_count() - 1,
                  "sender count must be in [1, nodes-1]");

  sim::Simulator simulator;
  const net::Topology topo = config.topology.build();
  const net::NodeId sink = topo.sink;
  const int n = topo.node_count();

  const util::Metres wifi_range = config.wifi_range_override > 0
                                      ? config.wifi_range_override
                                      : config.wifi_radio.range;

  RunMetrics m;
  double delay_sum = 0;
  DeliverySink delivery;
  delivery.delivered = [&](const net::DataPacket& p) {
    ++m.delivered;
    delay_sum += simulator.now() - p.created_at;
  };
  delivery.dropped = [&](const net::DataPacket&, const char* reason) {
    detail::classify_drop(m, reason);
  };

  const bool needs_low = config.model == EvalModel::kSensor ||
                         config.model == EvalModel::kDualRadio;
  const bool needs_high = config.model != EvalModel::kSensor;

  const bool all_pairs =
      config.routing == RoutingMode::kAllPairs ||
      (config.routing == RoutingMode::kAuto && n <= kAllPairsNodeLimit);

  const bool has_faults = !config.faults.empty();
  BCP_REQUIRE_MSG(!has_faults || config.model != EvalModel::kWifiDutyCycled,
                  "fault injection is not supported for the duty-cycled "
                  "802.11 strawman");

  config.battery.validate();
  const bool has_battery = config.battery.enabled;
  BCP_REQUIRE_MSG(
      config.route_policy == net::RoutePolicy::kShortestPath || has_battery,
      "lifetime-aware routing requires an enabled battery");
  // Channels must stop delivering to dead nodes and routing must
  // re-converge around them, so battery runs share the fault machinery's
  // LinkStates even when the fault plan is empty.
  const bool has_links = has_faults || has_battery;

  // MAC family selection per radio class. Validation first (bad TDMA
  // knobs throw before any simulation state exists); the slotted family
  // presumes a radio that is awake for its slots, which the BCP-managed
  // 802.11 radio and the duty-cycled strawman are not.
  config.sensor_mac.validate();
  config.wifi_mac.validate();
  BCP_REQUIRE_MSG(!config.wifi_mac.is_tdma() ||
                      config.model == EvalModel::kWifi,
                  "TDMA on the 802.11 radio requires the always-on kWifi "
                  "model");

  // TDMA slot schedules (one per radio class that asked for the family),
  // derived from each class's convergecast tree once routes exist.
  // Declared before the node vectors: nodes hold references into them.
  std::optional<mac::TdmaSchedule> low_schedule;
  std::optional<mac::TdmaSchedule> high_schedule;

  std::optional<net::LinkState> low_links;
  std::optional<net::LinkState> high_links;
  const net::DynamicRouting* low_dyn = nullptr;
  const net::DynamicRouting* high_dyn = nullptr;
  std::optional<phy::Channel> low_channel;
  std::optional<phy::Channel> high_channel;

  // Finite batteries, one per node (null = that node draws from an
  // infinite source). Declared before the routers: the lifetime-aware
  // cost function below is stored inside DynamicRouting and reads
  // battery fractions at every rebuild, so the vector must outlive them.
  std::vector<std::unique_ptr<energy::Battery>> batteries(
      static_cast<std::size_t>(n));
  net::NodeCostFn lifetime_cost;
  if (config.route_policy == net::RoutePolicy::kLifetimeAware) {
    lifetime_cost = [&batteries,
                     weight = config.battery.lifetime_weight](net::NodeId v) {
      const auto& b = batteries[static_cast<std::size_t>(v)];
      if (b == nullptr) return 0.0;
      return weight * (b->drawn() / b->capacity());
    };
  }

  std::unique_ptr<net::Router> low_routes;
  std::unique_ptr<net::Router> high_routes;
  // Routes are built on each channel's own connectivity graph — same
  // positions, same range, one spatial-hash build instead of two. Fault
  // runs additionally share one LinkState per radio class between the
  // channel (hearing) and the router (convergecast tree). Each channel's
  // capture (SINR) noise floor is its radio's datasheet value.
  if (needs_low) {
    low_channel.emplace(
        simulator, topo.positions, config.sensor_radio.range,
        detail::channel_params(config, config.sensor_radio),
        util::substream(config.seed, 1, 0x4C4348u));
    if (has_links) {
      low_links.emplace(n);
      low_channel->set_link_state(&*low_links);
    }
    low_routes = detail::build_routes(
        low_channel->graph(), sink, all_pairs, "sensor",
        has_links ? &*low_links : nullptr, &low_dyn, config.route_policy,
        lifetime_cost);
  }
  if (needs_high) {
    high_channel.emplace(
        simulator, topo.positions, wifi_range,
        detail::channel_params(config, config.wifi_radio),
        util::substream(config.seed, 2, 0x484348u));
    if (has_links) {
      high_links.emplace(n);
      high_channel->set_link_state(&*high_links);
    }
    high_routes = detail::build_routes(
        high_channel->graph(), sink, all_pairs, "wifi",
        has_links ? &*high_links : nullptr, &high_dyn, config.route_policy,
        lifetime_cost);
  }

  core::BcpConfig bcp = config.bcp;
  bcp.set_burst_packets(config.burst_packets, config.packet_bits);

  // Resolve each radio class's MacChoice: CSMA keeps the exact historical
  // MacParams + seed path; TDMA builds the shared schedule from the class
  // tree and fills zero (class-default) knobs, auto-tightening the beacon
  // period to the slot span.
  const auto resolve_choice =
      [&](const mac::MacSpec& spec, mac::MacParams csma_defaults,
          mac::TdmaParams tdma_defaults, const net::Router& routes,
          util::BitsPerSecond rate,
          std::optional<mac::TdmaSchedule>& schedule_out) {
        MacChoice choice;
        choice.csma = csma_defaults;
        choice.family = spec.family;
        if (spec.is_tdma()) {
          schedule_out.emplace(
              mac::TdmaSchedule::from_tree(routes, sink, n));
          BCP_REQUIRE_MSG(schedule_out->slot_count > 0,
                          "TDMA schedule is empty: no node reaches the sink");
          const mac::TdmaParams base =
              spec.tdma.is_default() ? tdma_defaults : spec.tdma;
          choice.tdma = base.resolved_for(schedule_out->slot_count, rate);
          choice.schedule = &*schedule_out;
        }
        return choice;
      };

  std::vector<std::unique_ptr<ForwardingNode>> fwd_nodes;
  std::vector<std::unique_ptr<DualRadioNode>> dual_nodes;
  std::vector<std::unique_ptr<DutyCycledWifiNode>> duty_nodes;
  switch (config.model) {
    case EvalModel::kSensor: {
      const MacChoice choice = resolve_choice(
          config.sensor_mac, mac::sensor_mac_params(),
          mac::tdma_sensor_params(), *low_routes, config.sensor_radio.rate,
          low_schedule);
      for (net::NodeId id = 0; id < n; ++id)
        fwd_nodes.push_back(std::make_unique<ForwardingNode>(
            simulator, *low_channel, *low_routes, id, sink,
            config.sensor_radio, phy::OverhearMode::kHeaderOnly, choice,
            config.seed, &delivery));
      break;
    }
    case EvalModel::kWifi: {
      const MacChoice choice = resolve_choice(
          config.wifi_mac, mac::dcf_mac_params(), mac::tdma_wifi_params(),
          *high_routes, config.wifi_radio.rate, high_schedule);
      for (net::NodeId id = 0; id < n; ++id)
        fwd_nodes.push_back(std::make_unique<ForwardingNode>(
            simulator, *high_channel, *high_routes, id, sink,
            config.wifi_radio, phy::OverhearMode::kFull, choice,
            config.seed, &delivery));
      break;
    }
    case EvalModel::kWifiDutyCycled: {
      BCP_REQUIRE_MSG(config.duty_cycle > 0 && config.duty_cycle <= 1.0,
                      "duty cycle must be in (0, 1]");
      BCP_REQUIRE_MSG(config.duty_period > 0, "duty period must be positive");
      DutyCycledWifiNode::Schedule schedule;
      schedule.period = config.duty_period;
      schedule.duty = config.duty_cycle;
      for (net::NodeId id = 0; id < n; ++id)
        duty_nodes.push_back(std::make_unique<DutyCycledWifiNode>(
            simulator, *high_channel, *high_routes, id, sink,
            config.wifi_radio, schedule, config.seed, &delivery));
      break;
    }
    case EvalModel::kDualRadio: {
      const MacChoice low_choice = resolve_choice(
          config.sensor_mac, mac::sensor_mac_params(),
          mac::tdma_sensor_params(), *low_routes, config.sensor_radio.rate,
          low_schedule);
      const MacChoice high_choice{mac::dcf_mac_params(),
                                  mac::MacFamily::kAuto,
                                  {},
                                  nullptr};
      for (net::NodeId id = 0; id < n; ++id)
        dual_nodes.push_back(std::make_unique<DualRadioNode>(
            simulator, *low_channel, *high_channel, *low_routes, *high_routes,
            id, config.sensor_radio, config.wifi_radio, bcp,
            config.wifi_promiscuous ? phy::OverhearMode::kFull
                                    : phy::OverhearMode::kNone,
            config.seed, &delivery, low_choice, high_choice));
      break;
    }
  }

  // ---- Finite batteries ----
  // One battery per node, drained by every radio the node owns; death is
  // the fault plan's crash teardown (crash_node), minus the possibility
  // of recovery. The death instant is always a scheduled event: Battery
  // re-arms it from the radios' energy observer on every power-state
  // change, so no polling is involved and depletion lands at its exact
  // analytic time.
  std::function<void(net::NodeId)> on_battery_death =
      [&](net::NodeId node) {
        crash_node(
            fwd_nodes.empty()
                ? nullptr
                : fwd_nodes[static_cast<std::size_t>(node)].get(),
            dual_nodes.empty()
                ? nullptr
                : dual_nodes[static_cast<std::size_t>(node)].get(),
            duty_nodes.empty()
                ? nullptr
                : duty_nodes[static_cast<std::size_t>(node)].get(),
            node, low_links ? &*low_links : nullptr,
            high_links ? &*high_links : nullptr);
        ++m.battery_deaths;
        if (m.battery_deaths == 1) {
          m.time_to_first_death = simulator.now();
          m.delivered_bits_until_first_death =
              m.delivered * config.packet_bits;
        }
        // Membership just changed: check whether some survivor lost its
        // last path to the sink (the graceful-degradation knee).
        if (m.time_to_sink_partition < 0) {
          const net::ConnectivityGraph& graph =
              needs_low ? low_channel->graph() : high_channel->graph();
          const net::LinkState& links =
              needs_low ? *low_links : *high_links;
          if (!net::unreachable_alive(graph, sink, links).empty()) {
            m.time_to_sink_partition = simulator.now();
            m.delivered_bits_until_partition =
                m.delivered * config.packet_bits;
          }
        }
      };
  if (has_battery) {
    for (net::NodeId id = 0; id < n; ++id) {
      util::Joules capacity = 0;
      if (config.model == EvalModel::kSensor ||
          config.model == EvalModel::kDualRadio)
        capacity += config.battery.sensor_initial_j;
      if (config.model != EvalModel::kSensor)
        capacity += config.battery.wifi_initial_j;
      if (capacity <= 0) continue;  // all owned classes unbudgeted
      auto battery = std::make_unique<energy::Battery>(
          simulator, capacity,
          [&on_battery_death, id] { on_battery_death(id); });
      energy::Battery* b = battery.get();
      const auto watch = [b](phy::Radio& radio) {
        b->attach(&radio.meter());
        radio.set_energy_observer([b] { b->rearm(); });
      };
      if (!fwd_nodes.empty())
        watch(fwd_nodes[static_cast<std::size_t>(id)]->radio());
      else if (!duty_nodes.empty())
        watch(duty_nodes[static_cast<std::size_t>(id)]->radio());
      else {
        watch(dual_nodes[static_cast<std::size_t>(id)]->sensor_radio());
        watch(dual_nodes[static_cast<std::size_t>(id)]->wifi_radio());
      }
      battery->rearm();  // arm against the boot power state
      batteries[static_cast<std::size_t>(id)] = std::move(battery);
    }
  }

  // Lifetime-aware routes go stale as fractions drift between deaths;
  // refresh them on a fixed cadence by bumping the LinkState revisions
  // (DynamicRouting then re-reads every battery at its next query).
  std::function<void()> reroute_tick;
  if (has_battery &&
      config.route_policy == net::RoutePolicy::kLifetimeAware) {
    reroute_tick = [&] {
      if (low_links) low_links->touch();
      if (high_links) high_links->touch();
      simulator.schedule_in(config.battery.reroute_period,
                            [&reroute_tick] { reroute_tick(); });
    };
    simulator.schedule_in(config.battery.reroute_period,
                          [&reroute_tick] { reroute_tick(); });
  }

  // Pick the senders: a seed-determined subset of the non-sink nodes.
  const std::vector<net::NodeId> candidates =
      detail::pick_senders(config.seed, n, sink, config.n_senders);

  std::vector<std::unique_ptr<CbrWorkload>> workloads;
  for (const net::NodeId sender : candidates) {
    auto emit = [&, sender](net::DataPacket p) {
      if (config.model == EvalModel::kDualRadio)
        dual_nodes[static_cast<std::size_t>(sender)]->send(p);
      else if (config.model == EvalModel::kWifiDutyCycled)
        duty_nodes[static_cast<std::size_t>(sender)]->send(p);
      else
        fwd_nodes[static_cast<std::size_t>(sender)]->send(p);
    };
    workloads.push_back(std::make_unique<CbrWorkload>(
        simulator, sender, sink, config.packet_bits, config.rate_bps,
        util::substream(config.seed, static_cast<std::uint64_t>(sender),
                        0x574Bu),
        std::move(emit)));
    workloads.back()->start();
  }

  // ---- Fault/churn schedule ----
  // One simulator event per fault. Crash/recover act on the node assembly
  // (cancelling its timers, forcing radios dark) AND on the LinkStates, so
  // the channels stop delivering to dead nodes and DynamicRouting
  // re-converges on the alive subgraph at its next query.
  const auto apply_fault = [&](const sim::FaultEvent& ev) {
    const auto node = static_cast<net::NodeId>(ev.node);
    const auto peer = static_cast<net::NodeId>(ev.peer);
    switch (ev.kind) {
      case sim::FaultKind::kNodeCrash:
        crash_node(fwd_nodes.empty()
                       ? nullptr
                       : fwd_nodes[static_cast<std::size_t>(node)].get(),
                   dual_nodes.empty()
                       ? nullptr
                       : dual_nodes[static_cast<std::size_t>(node)].get(),
                   nullptr,  // duty nodes reject fault plans
                   node, low_links ? &*low_links : nullptr,
                   high_links ? &*high_links : nullptr);
        ++m.fault_node_crashes;
        break;
      case sim::FaultKind::kNodeRecover: {
        // Battery death is final: a recovery scheduled for a node that
        // has since depleted is refused (counted, so churn+battery cells
        // can audit how much of the plan executed).
        const auto& battery = batteries[static_cast<std::size_t>(node)];
        if (battery != nullptr && battery->depleted()) {
          ++m.fault_recoveries_refused;
          break;
        }
        if (low_links) low_links->set_node_up(node, true);
        if (high_links) high_links->set_node_up(node, true);
        if (!fwd_nodes.empty())
          fwd_nodes[static_cast<std::size_t>(node)]->recover();
        else
          dual_nodes[static_cast<std::size_t>(node)]->recover();
        ++m.fault_node_recoveries;
        break;
      }
      case sim::FaultKind::kLinkDown:
        if (low_links) low_links->set_link_up(node, peer, false);
        if (high_links) high_links->set_link_up(node, peer, false);
        ++m.fault_link_downs;
        break;
      case sim::FaultKind::kLinkUp:
        if (low_links) low_links->set_link_up(node, peer, true);
        if (high_links) high_links->set_link_up(node, peer, true);
        ++m.fault_link_ups;
        break;
    }
  };
  std::vector<sim::FaultEvent> fault_events;
  if (has_faults) {
    // FaultPlan only consults adjacency to aim link flaps at real links;
    // crash-only plans skip the per-node list copy entirely.
    std::vector<std::vector<std::int32_t>> adjacency;
    if (config.faults.link_flaps > 0) {
      const net::ConnectivityGraph& fault_graph =
          needs_low ? low_channel->graph() : high_channel->graph();
      adjacency.reserve(static_cast<std::size_t>(n));
      for (net::NodeId id = 0; id < n; ++id)
        adjacency.push_back(fault_graph.neighbors(id));
    }
    fault_events =
        sim::FaultPlan(config.faults, n, sink, config.duration,
                       config.faults.link_flaps > 0 ? &adjacency : nullptr)
            .events();
    for (const sim::FaultEvent& ev : fault_events)
      simulator.schedule_at(ev.at,
                            [&apply_fault, ev] { apply_fault(ev); });
  }

  simulator.run_until(config.duration);

  // ---- Metrics ----
  m.events_processed = simulator.processed_count();
  m.route_rebuilds = (low_dyn != nullptr ? low_dyn->rebuild_count() : 0) +
                     (high_dyn != nullptr ? high_dyn->rebuild_count() : 0);
  if (low_channel) detail::add_channel_stats(m, *low_channel);
  if (high_channel) detail::add_channel_stats(m, *high_channel);
  for (const auto& w : workloads) m.generated += w->generated();

  const util::Seconds end = config.duration;
  for (const auto& node : fwd_nodes)
    detail::collect_forwarding(m, *node,
                               config.model == EvalModel::kSensor, end);
  for (const auto& node : duty_nodes) detail::collect_duty(m, *node, end);
  for (const auto& node : dual_nodes) detail::collect_dual(m, *node, end);

  if (has_battery) {
    for (const auto& battery : batteries) {
      if (battery == nullptr) continue;
      m.battery_max_drawn_fraction =
          std::max(m.battery_max_drawn_fraction,
                   battery->drawn() / battery->capacity());
    }
    // "Until first death / partition" degenerate to the whole run's
    // deliveries when the event never happened.
    if (m.time_to_first_death < 0)
      m.delivered_bits_until_first_death = m.delivered * config.packet_bits;
    if (m.time_to_sink_partition < 0)
      m.delivered_bits_until_partition = m.delivered * config.packet_bits;
  }

  detail::finalize_metrics(m, config, delay_sum);
  return m;
}

std::vector<RunMetrics> run_replications(ScenarioConfig config, int runs) {
  BCP_REQUIRE(runs >= 1);
  std::vector<RunMetrics> out;
  out.reserve(static_cast<std::size_t>(runs));
  for (int r = 0; r < runs; ++r) {
    config.seed = config.seed + (r == 0 ? 0 : 1);
    out.push_back(run_scenario(config));
  }
  return out;
}

}  // namespace bcp::app

#include "app/nodes.hpp"

#include <utility>

#include "app/duty_cycle.hpp"
#include "mac/mac_params.hpp"
#include "mac/tdma_mac.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace bcp::app {

std::unique_ptr<mac::Mac> make_mac(sim::Simulator& sim, phy::Radio& radio,
                                   const MacChoice& choice,
                                   std::uint64_t seed) {
  if (choice.family == mac::MacFamily::kTdma) {
    BCP_REQUIRE_MSG(choice.schedule != nullptr,
                    "a TDMA MacChoice needs the shared slot schedule");
    return std::make_unique<mac::TdmaMac>(sim, radio, choice.tdma,
                                          *choice.schedule, seed);
  }
  return std::make_unique<mac::CsmaCaMac>(sim, radio, choice.csma, seed);
}

// ---------------------------------------------------------- ForwardingNode

ForwardingNode::ForwardingNode(sim::Simulator& sim, phy::Channel& channel,
                               const net::Router& routes,
                               net::NodeId self, net::NodeId sink,
                               const energy::RadioEnergyModel& radio_model,
                               phy::OverhearMode overhear,
                               const MacChoice& mac_choice,
                               std::uint64_t seed, DeliverySink* delivery)
    : sim_(sim), routes_(routes), self_(self), sink_(sink),
      delivery_(delivery),
      radio_(sim, channel, self, radio_model, overhear, /*start_on=*/true),
      mac_(make_mac(sim, radio_, mac_choice,
                    util::substream(seed, static_cast<std::uint64_t>(self),
                                    0x4D4143u))) {
  BCP_REQUIRE(delivery != nullptr);
  mac_->set_rx_callback(
      [this](const net::Message& m, net::NodeId from) { on_rx(m, from); });
  mac_->set_tx_done_callback([this](const net::Message& m, net::NodeId,
                                    bool success) {
    if (!success && m.is_data())
      delivery_->dropped(std::get<net::DataPacket>(m.body), "mac-failed");
  });
}

void ForwardingNode::send(const net::DataPacket& packet) {
  if (!up_) {
    delivery_->dropped(packet, "node-down");
    return;
  }
  net::Message msg;
  msg.src = self_;
  msg.dst = packet.destination;
  msg.body = packet;
  forward(msg);
}

void ForwardingNode::crash() {
  if (!up_) return;
  up_ = false;
  mac_->reset_on_crash();
  radio_.force_off();
}

void ForwardingNode::recover() {
  if (up_) return;
  up_ = true;
  radio_.power_on();
  mac_->on_recover();
}

void ForwardingNode::forward(const net::Message& msg) {
  if (msg.dst == self_) {
    if (msg.is_data()) delivery_->delivered(std::get<net::DataPacket>(msg.body));
    return;
  }
  const net::NodeId next = routes_.next_hop(self_, msg.dst);
  if (next == net::kInvalidNode) {
    if (msg.is_data())
      delivery_->dropped(std::get<net::DataPacket>(msg.body), "no-route");
    return;
  }
  if (!mac_->enqueue(msg, next)) {
    if (msg.is_data())
      delivery_->dropped(std::get<net::DataPacket>(msg.body), "queue-full");
  }
}

void ForwardingNode::on_rx(const net::Message& msg, net::NodeId /*from*/) {
  forward(msg);
}

// ----------------------------------------------------------- DualRadioNode

DualRadioNode::DualRadioNode(
    sim::Simulator& sim, phy::Channel& low_channel, phy::Channel& high_channel,
    const net::Router& low_routes, const net::Router& high_routes,
    net::NodeId self, const energy::RadioEnergyModel& sensor_model,
    const energy::RadioEnergyModel& wifi_model,
    const core::BcpConfig& bcp_config, phy::OverhearMode wifi_overhear,
    std::uint64_t seed, DeliverySink* delivery, const MacChoice& low_mac,
    const MacChoice& high_mac)
    : sim_(sim),
      high_channel_(high_channel),
      low_routes_(low_routes),
      high_routes_(high_routes),
      self_(self),
      delivery_(delivery),
      // The sensor radio is always on (§2.1: its idling is a base cost); it
      // pays header-only overhearing so the "Sensor-header"-style charge can
      // be read from the meter if wanted. The 802.11 radio starts off; BCP
      // powers it per session.
      low_radio_(sim, low_channel, self, sensor_model,
                 phy::OverhearMode::kHeaderOnly, /*start_on=*/true),
      high_radio_(sim, high_channel, self, wifi_model, wifi_overhear,
                  /*start_on=*/false),
      low_mac_(make_mac(sim, low_radio_, low_mac,
                        util::substream(seed,
                                        static_cast<std::uint64_t>(self),
                                        0x4C4F57u))),
      high_mac_(make_mac(sim, high_radio_, high_mac,
                         util::substream(seed,
                                         static_cast<std::uint64_t>(self),
                                         0x484957u))),
      agent_(*this, bcp_config) {
  BCP_REQUIRE(delivery != nullptr);

  low_mac_->set_rx_callback(
      [this](const net::Message& m, net::NodeId from) { on_low_rx(m, from); });
  low_mac_->set_tx_done_callback([this](const net::Message& m, net::NodeId,
                                        bool success) {
    // Only data rides the low radio when the kFallbackLow delay policy is
    // active; account its link-layer losses like the forwarding models do.
    if (!success && m.is_data())
      delivery_->dropped(std::get<net::DataPacket>(m.body), "mac-failed");
  });
  high_mac_->set_rx_callback(
      [this](const net::Message& m, net::NodeId from) { on_high_rx(m, from); });
  high_mac_->set_tx_done_callback(
      [this](const net::Message&, net::NodeId, bool success) {
        BCP_ENSURE_MSG(!high_done_.empty(),
                       "high-radio completion without a pending send");
        auto done = std::move(high_done_.front());
        high_done_.pop_front();
        if (done) done(success);
      });
  high_radio_.callbacks().wake_complete = [this] {
    agent_.on_high_radio_ready();
  };
  high_radio_.callbacks().frame_overheard = [this](const phy::Frame& f) {
    if (f.message && f.message->is_bulk())
      agent_.on_bulk_frame_overheard(std::get<net::BulkFrame>(f.message->body));
  };
}

void DualRadioNode::send(const net::DataPacket& packet) {
  if (!up_) {
    delivery_->dropped(packet, "node-down");
    return;
  }
  agent_.submit(packet);
}

void DualRadioNode::crash() {
  if (!up_) return;
  up_ = false;
  // Order matters: the agent's timers go first (so nothing fires into a
  // half-reset node), then the MACs drop their queues silently (the
  // agent's completion expectations died with it), then the radios go
  // dark, truncating anything mid-air.
  agent_.crash();
  low_mac_->reset_on_crash();
  high_mac_->reset_on_crash();
  high_done_.clear();
  low_radio_.force_off();
  high_radio_.force_off();
}

void DualRadioNode::recover() {
  if (up_) return;
  up_ = true;
  // The sensor radio is always-on for a live node; the 802.11 radio stays
  // off until the (freshly reset) agent next acquires it.
  low_radio_.power_on();
  low_mac_->on_recover();
}

core::BcpHost::TimerId DualRadioNode::set_timer(
    util::Seconds delay, core::BcpHost::TimerCallback callback) {
  // TimerCallback IS the simulator's callback type — no re-wrapping.
  return sim_.schedule_in(delay, std::move(callback)).id;
}

void DualRadioNode::cancel_timer(TimerId id) {
  sim_.cancel(sim::Simulator::EventHandle{id});
}

void DualRadioNode::send_low(net::MessageRef msg) {
  BCP_REQUIRE(msg->dst != self_);
  const net::NodeId next = low_routes_.next_hop(self_, msg->dst);
  if (next == net::kInvalidNode) return;  // unreachable peer: handshake fails
  low_mac_->enqueue(std::move(msg), next);
}

void DualRadioNode::send_high(net::MessageRef msg, net::NodeId peer,
                              core::BcpHost::SendDone done) {
  BCP_REQUIRE(peer != self_);
  if (!high_mac_->enqueue(std::move(msg), peer)) {
    // Queue full (pathological): report failure asynchronously so the
    // caller's state machine is not reentered from inside send_high.
    sim_.schedule_in(0.0, [done = std::move(done)] { done(false); });
    return;
  }
  high_done_.push_back(std::move(done));
}

void DualRadioNode::high_radio_on() { high_radio_.power_on(); }

void DualRadioNode::try_power_off() {
  // Never yank the radio mid-transmission (a link ack may be going out);
  // retry just after it drains.
  if (high_radio_.state() == phy::RadioState::kTx) {
    sim_.schedule_in(0.001, [this] {
      if (agent_.radio_hold_count() == 0) try_power_off();
    });
    return;
  }
  high_radio_.power_off();
}

void DualRadioNode::high_radio_off() { try_power_off(); }

bool DualRadioNode::high_radio_ready() const {
  // "Ready" for BCP means powered with the wake transition finished — NOT
  // "able to transmit this instant". The radio may be mid-TX (e.g. sending
  // a link ack for a concurrent receiver session) when a wake-up ack
  // arrives; the MAC's carrier sense absorbs that. Requiring Radio::ready()
  // here would strand the sender session waiting for a wake_complete that
  // never fires (the radio is already awake).
  const phy::RadioState s = high_radio_.state();
  return s != phy::RadioState::kOff && s != phy::RadioState::kWaking;
}

net::NodeId DualRadioNode::high_next_hop(net::NodeId dest) const {
  return high_routes_.next_hop(self_, dest);
}

bool DualRadioNode::high_link_exists(net::NodeId peer) const {
  // Disc-model adjacency — exactly "one high-radio hop away", but
  // answerable in O(1) without an all-pairs table (the convergecast
  // routing scenarios use cannot rank arbitrary peers).
  return high_channel_.in_range(self_, peer);
}

void DualRadioNode::deliver(const net::DataPacket& packet) {
  delivery_->delivered(packet);
}

void DualRadioNode::packet_dropped(const net::DataPacket& packet,
                                   const char* reason) {
  delivery_->dropped(packet, reason);
}

void DualRadioNode::on_low_rx(const net::Message& msg, net::NodeId /*from*/) {
  if (msg.dst == self_) {
    agent_.on_low_message(msg);
    return;
  }
  // Relay the control message one more low-radio hop (below BCP, §3).
  const net::NodeId next = low_routes_.next_hop(self_, msg.dst);
  if (next == net::kInvalidNode) return;
  low_mac_->enqueue(msg, next);
}

void DualRadioNode::on_high_rx(const net::Message& msg,
                               net::NodeId /*from*/) {
  if (const auto* frame = std::get_if<net::BulkFrame>(&msg.body)) {
    agent_.on_bulk_frame(*frame);
  }
  // Anything else over the high radio is ignored: BCP only ships bulk
  // frames there.
}

void crash_node(ForwardingNode* fwd, DualRadioNode* dual,
                DutyCycledWifiNode* duty, net::NodeId node,
                net::LinkState* low_links, net::LinkState* high_links) {
  BCP_REQUIRE_MSG((fwd != nullptr) + (dual != nullptr) + (duty != nullptr) ==
                      1,
                  "crash_node takes exactly one node assembly");
  if (fwd != nullptr) fwd->crash();
  if (dual != nullptr) dual->crash();
  if (duty != nullptr) duty->crash();
  if (low_links != nullptr) low_links->set_node_up(node, false);
  if (high_links != nullptr) high_links->set_node_up(node, false);
}

}  // namespace bcp::app

// Parallel scenario-sweep engine.
//
// The paper's results are parameter sweeps (senders x burst size x radio
// pair x ...; Figs. 1-12), and the bench harnesses all share the same
// shape: enumerate a cartesian grid, run each point `replications` times
// with consecutive seeds, aggregate per-point statistics. This module
// makes that shape first-class:
//
//   SweepGrid    — named axes, cartesian product, stable point ordering
//                  (first axis slowest, last axis fastest);
//   SweepRunner  — fans (point, replication) jobs out across a thread
//                  pool; every job gets a deterministic seed, every worker
//                  builds its own Simulator (the sim kernel itself is
//                  single-threaded by design), and results are merged into
//                  a stats::ResultSink in job order, so the output is
//                  byte-identical at any thread count.
//
// The job function is generic — simulation points call app::run_scenario,
// the analytic figures evaluate closed forms, the prototype figures call
// emul::run_prototype — so every bench driver is a declarative grid plus a
// point-evaluator.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "stats/result_sink.hpp"

namespace bcp::app {

/// One point of a cartesian parameter grid: named double values, one per
/// axis, in axis declaration order.
class SweepPoint {
 public:
  using Params = std::vector<std::pair<std::string, double>>;

  SweepPoint(std::size_t index, Params params)
      : index_(index), params_(std::move(params)) {}

  /// Position in the grid's enumeration order.
  std::size_t index() const { return index_; }

  const Params& params() const { return params_; }

  /// Value of the named axis; throws if the grid has no such axis.
  double get(const std::string& name) const;

  /// Like get(), but returns `fallback` when the axis does not exist.
  double get_or(const std::string& name, double fallback) const;

  /// get() rounded to the nearest integer (axes often carry counts).
  int get_int(const std::string& name) const;

 private:
  std::size_t index_;
  Params params_;
};

/// A cartesian parameter grid. Axes enumerate in declaration order with
/// the last-declared axis varying fastest, so point(i) is a stable
/// function of the grid definition alone.
class SweepGrid {
 public:
  /// Appends an axis. Name must be unique, values non-empty.
  SweepGrid& axis(std::string name, std::vector<double> values);

  /// Convenience: integer axis values.
  SweepGrid& axis_ints(std::string name, const std::vector<int>& values);

  /// Convenience: a one-value axis (a constant recorded in every point).
  SweepGrid& constant(std::string name, double value);

  std::size_t axis_count() const { return axes_.size(); }
  const std::string& axis_name(std::size_t a) const;
  const std::vector<double>& axis_values(const std::string& name) const;

  /// Number of grid points (product of axis sizes); 0 for an empty grid.
  std::size_t size() const;

  /// The i-th point in enumeration order.
  SweepPoint point(std::size_t i) const;

  /// Point index from one value-index per axis (declaration order).
  std::size_t index_of(const std::vector<std::size_t>& digits) const;

 private:
  struct Axis {
    std::string name;
    std::vector<double> values;
  };
  std::vector<Axis> axes_;
};

/// One unit of work: a grid point plus a replication number and the seed
/// that replication must use. Seeds are `base_seed + replication`, the
/// same ladder app::run_replications climbs, so engine results match the
/// legacy hand-rolled loops run for run.
struct SweepJob {
  SweepPoint point;
  int replication = 0;
  std::uint64_t seed = 1;
};

struct SweepOptions {
  /// Replications per grid point (seeded base_seed, base_seed+1, ...).
  int replications = 1;
  std::uint64_t base_seed = 1;
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  int threads = 0;
};

/// Evaluates one job to a set of named metric values.
using SweepFn = std::function<stats::ResultSink::Metrics(const SweepJob&)>;

/// Runs every (point, replication) job of a grid across a thread pool.
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  const SweepOptions& options() const { return options_; }

  /// Executes the full grid and merges all rows into the returned sink in
  /// (point, replication) order — independent of thread count or
  /// completion order. A job that throws aborts the sweep and rethrows on
  /// the calling thread.
  stats::ResultSink run(const SweepGrid& grid, const SweepFn& fn) const;

  /// Worker count actually used for a grid of `jobs` jobs.
  int effective_threads(std::size_t jobs) const;

 private:
  SweepOptions options_;
};

}  // namespace bcp::app

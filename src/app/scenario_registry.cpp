#include "app/scenario_registry.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/assert.hpp"

namespace bcp::app {

void ScenarioRegistry::add(std::string name, std::string description,
                           Builder builder) {
  BCP_REQUIRE(builder != nullptr);
  BCP_REQUIRE_MSG(!contains(name), "duplicate scenario variant: " + name);
  variants_.push_back(
      Variant{std::move(name), std::move(description), std::move(builder)});
}

const ScenarioRegistry::Variant* ScenarioRegistry::find(
    const std::string& name) const {
  for (const auto& v : variants_)
    if (v.name == name) return &v;
  return nullptr;
}

bool ScenarioRegistry::contains(const std::string& name) const {
  return find(name) != nullptr;
}

ScenarioConfig ScenarioRegistry::make(const std::string& name,
                                      const SweepPoint& point) const {
  const Variant* v = find(name);
  BCP_REQUIRE_MSG(v != nullptr, "unknown scenario variant: " + name);
  return v->build(point);
}

const std::string& ScenarioRegistry::description(
    const std::string& name) const {
  const Variant* v = find(name);
  BCP_REQUIRE_MSG(v != nullptr, "unknown scenario variant: " + name);
  return v->description;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(variants_.size());
  for (const auto& v : variants_) out.push_back(v.name);
  return out;
}

namespace {

/// Shared axis handling for every built-in variant.
ScenarioConfig base_config(bool multi_hop, EvalModel model,
                           const SweepPoint& p) {
  const int senders = p.get_int("senders");
  const int burst = static_cast<int>(p.get_or("burst", 500));
  ScenarioConfig cfg =
      multi_hop
          ? ScenarioConfig::multi_hop(model, senders,
                                      model == EvalModel::kDualRadio ? burst
                                                                    : 1)
          : ScenarioConfig::single_hop(model, senders,
                                       model == EvalModel::kDualRadio ? burst
                                                                      : 1);
  const double rate = p.get_or("rate_bps", 0);
  if (rate > 0) cfg.rate_bps = rate;
  cfg.duration = p.get_or("duration", cfg.duration);
  cfg.frame_loss_prob = p.get_or("loss", 0.0);
  return cfg;
}

/// Shared placement-axis handling for the non-grid variants: builds the
/// base config, then swaps in a generated topology. The placement seed is
/// advanced to the first sink-connected one under the tightest radio
/// range the model routes over, so every registered point is runnable.
ScenarioConfig placed_config(bool multi_hop, EvalModel model,
                             net::TopologyKind kind, const SweepPoint& p) {
  ScenarioConfig cfg = base_config(multi_hop, model, p);
  net::TopologySpec spec;
  spec.kind = kind;
  spec.nodes = static_cast<int>(p.get_or("nodes", 36));
  spec.area = p.get_or("area", 200.0);
  spec.seed = static_cast<std::uint64_t>(p.get_or("topo_seed", 1));
  const util::Metres wifi_range = cfg.wifi_range_override > 0
                                      ? cfg.wifi_range_override
                                      : cfg.wifi_radio.range;
  const util::Metres required_range =
      model == EvalModel::kWifi || model == EvalModel::kWifiDutyCycled
          ? wifi_range
          : std::min(cfg.sensor_radio.range, wifi_range);
  cfg.topology = net::first_connected(spec, required_range);
  return cfg;
}

ScenarioRegistry make_builtin() {
  ScenarioRegistry r;
  struct Preset {
    const char* prefix;
    bool multi_hop;
  };
  for (const Preset preset : {Preset{"sh", false}, Preset{"mh", true}}) {
    const bool mh = preset.multi_hop;
    const std::string px = preset.prefix;
    const char* kind = mh ? "multi-hop (§4.1.2)" : "single-hop (§4.1.1)";
    r.add(px + "/sensor",
          std::string("pure sensor network, ") + kind,
          [mh](const SweepPoint& p) {
            return base_config(mh, EvalModel::kSensor, p);
          });
    r.add(px + "/wifi",
          std::string("pure always-on 802.11 network, ") + kind,
          [mh](const SweepPoint& p) {
            return base_config(mh, EvalModel::kWifi, p);
          });
    r.add(px + "/dual",
          std::string("dual-radio BCP, ") + kind,
          [mh](const SweepPoint& p) {
            return base_config(mh, EvalModel::kDualRadio, p);
          });
    r.add(px + "/wifi-duty",
          std::string("sleep-cycled 802.11 strawman (§1), ") + kind +
              "; axes: duty (required), duty_period_s",
          [mh](const SweepPoint& p) {
            ScenarioConfig cfg =
                base_config(mh, EvalModel::kWifiDutyCycled, p);
            cfg.duty_cycle = p.get("duty");
            cfg.duty_period = p.get_or("duty_period_s", 1.0);
            return cfg;
          });
  }
  // Generated-placement variants of the sh/mh × model matrix. Placement
  // axes (all optional): nodes (default 36), area (square side / corridor
  // length, default 200 m), topo_seed (default 1; auto-advanced to a
  // sink-connected placement).
  struct Placement {
    const char* token;
    net::TopologyKind kind;
  };
  for (const Placement placement :
       {Placement{"rand", net::TopologyKind::kUniformRandom},
        Placement{"cluster", net::TopologyKind::kGaussianClusters},
        Placement{"line", net::TopologyKind::kLineCorridor}}) {
    for (const Preset preset : {Preset{"sh", false}, Preset{"mh", true}}) {
      const bool mh = preset.multi_hop;
      const net::TopologyKind kind = placement.kind;
      const std::string px =
          std::string(preset.prefix) + "-" + placement.token;
      const std::string kind_desc =
          std::string(" on a ") + net::to_string(kind) +
          " placement; axes: nodes, area, topo_seed";
      r.add(px + "/sensor", "pure sensor network" + kind_desc,
            [mh, kind](const SweepPoint& p) {
              return placed_config(mh, EvalModel::kSensor, kind, p);
            });
      r.add(px + "/wifi", "pure always-on 802.11 network" + kind_desc,
            [mh, kind](const SweepPoint& p) {
              return placed_config(mh, EvalModel::kWifi, kind, p);
            });
      r.add(px + "/dual", "dual-radio BCP" + kind_desc,
            [mh, kind](const SweepPoint& p) {
              return placed_config(mh, EvalModel::kDualRadio, kind, p);
            });
    }
  }
  // Lossy-channel variants: the sh/mh × model matrix on the paper grid
  // with the log-distance + shadowing propagation model instead of the
  // idealized unit disc. Axes (all optional): ple (path-loss exponent,
  // default 3), shadow_db (per-link shadowing σ, default 4), margin_db
  // (fade margin at the disc edge, default 6), loss (extra Bernoulli).
  {
    const auto lossy_config = [](bool mh, EvalModel model,
                                 const SweepPoint& p) {
      ScenarioConfig cfg = base_config(mh, model, p);
      cfg.propagation.kind = phy::PropagationKind::kLogDistance;
      cfg.propagation.path_loss_exponent = p.get_or("ple", 3.0);
      cfg.propagation.shadowing_sigma_db = p.get_or("shadow_db", 4.0);
      cfg.propagation.fade_margin_db = p.get_or("margin_db", 6.0);
      return cfg;
    };
    for (const Preset preset : {Preset{"sh", false}, Preset{"mh", true}}) {
      const bool mh = preset.multi_hop;
      const std::string px = std::string("lossy-") + preset.prefix;
      const char* desc_tail =
          " under log-distance + shadowing links; axes: ple, shadow_db, "
          "margin_db";
      r.add(px + "/sensor",
            std::string("pure sensor network") + desc_tail,
            [mh, lossy_config](const SweepPoint& p) {
              return lossy_config(mh, EvalModel::kSensor, p);
            });
      r.add(px + "/wifi",
            std::string("pure always-on 802.11 network") + desc_tail,
            [mh, lossy_config](const SweepPoint& p) {
              return lossy_config(mh, EvalModel::kWifi, p);
            });
      r.add(px + "/dual",
            std::string("dual-radio BCP") + desc_tail,
            [mh, lossy_config](const SweepPoint& p) {
              return lossy_config(mh, EvalModel::kDualRadio, p);
            });
    }
  }
  // SINR-capture variants: collisions resolved by received-power margin
  // instead of the all-overlaps-corrupt rule. Axes (all optional):
  // capture_db (SINR threshold, default 10), loss. The lossy flavours
  // compose the log-distance channel (whose per-link powers make capture
  // actually discriminate — unit-disc collisions are equal-power ties)
  // and accept its ple / shadow_db / margin_db axes too.
  {
    const auto capture_config = [](bool mh, EvalModel model, bool lossy,
                                   const SweepPoint& p) {
      ScenarioConfig cfg = base_config(mh, model, p);
      if (lossy) {
        cfg.propagation.kind = phy::PropagationKind::kLogDistance;
        cfg.propagation.path_loss_exponent = p.get_or("ple", 3.0);
        cfg.propagation.shadowing_sigma_db = p.get_or("shadow_db", 4.0);
        cfg.propagation.fade_margin_db = p.get_or("margin_db", 6.0);
      }
      cfg.capture_enabled = true;
      cfg.capture_threshold_db = p.get_or("capture_db", 10.0);
      return cfg;
    };
    const char* capture_tail =
        " with SINR/capture reception; axes: capture_db";
    const char* capture_lossy_tail =
        " with SINR/capture reception over log-distance links; axes: "
        "capture_db, ple, shadow_db, margin_db";
    r.add("capture-sh/dual",
          std::string("dual-radio BCP, single-hop") + capture_tail,
          [capture_config](const SweepPoint& p) {
            return capture_config(false, EvalModel::kDualRadio, false, p);
          });
    r.add("capture-mh/dual",
          std::string("dual-radio BCP, multi-hop") + capture_tail,
          [capture_config](const SweepPoint& p) {
            return capture_config(true, EvalModel::kDualRadio, false, p);
          });
    r.add("capture-mh/sensor",
          std::string("pure sensor network, multi-hop") + capture_tail,
          [capture_config](const SweepPoint& p) {
            return capture_config(true, EvalModel::kSensor, false, p);
          });
    r.add("capture-lossy-sh/dual",
          std::string("dual-radio BCP, single-hop") + capture_lossy_tail,
          [capture_config](const SweepPoint& p) {
            return capture_config(false, EvalModel::kDualRadio, true, p);
          });
    r.add("capture-lossy-mh/dual",
          std::string("dual-radio BCP, multi-hop") + capture_lossy_tail,
          [capture_config](const SweepPoint& p) {
            return capture_config(true, EvalModel::kDualRadio, true, p);
          });
  }
  // TDMA MAC-family variants: the sink-coordinated slotted MAC replaces
  // CSMA/CA on the model's data radio, slot/guard/beacon timing on the
  // sweep axis. Axes (all optional, class defaults otherwise): slot_ms,
  // guard_ms, beacon_s (0 = auto-tight superframe), drift_ppm.
  {
    const auto tdma_config = [](bool mh, EvalModel model,
                                const SweepPoint& p) {
      ScenarioConfig cfg = base_config(mh, model, p);
      mac::MacSpec& spec = model == EvalModel::kWifi ? cfg.wifi_mac
                                                     : cfg.sensor_mac;
      spec.family = mac::MacFamily::kTdma;
      mac::TdmaParams knobs = model == EvalModel::kWifi
                                  ? mac::tdma_wifi_params()
                                  : mac::tdma_sensor_params();
      knobs.slot_len =
          util::milliseconds(p.get_or("slot_ms", knobs.slot_len / 1e-3));
      knobs.guard =
          util::milliseconds(p.get_or("guard_ms", knobs.guard / 1e-3));
      knobs.beacon_period = p.get_or("beacon_s", 0.0);
      knobs.sync_drift = p.get_or("drift_ppm", knobs.sync_drift * 1e6) * 1e-6;
      spec.tdma = knobs;
      return cfg;
    };
    const char* tdma_tail =
        " under sink-coordinated TDMA; axes: slot_ms, guard_ms, beacon_s, "
        "drift_ppm";
    for (const Preset preset : {Preset{"sh", false}, Preset{"mh", true}}) {
      const bool mh = preset.multi_hop;
      const std::string px = std::string("tdma-") + preset.prefix;
      r.add(px + "/sensor",
            std::string("pure sensor network") + tdma_tail,
            [mh, tdma_config](const SweepPoint& p) {
              return tdma_config(mh, EvalModel::kSensor, p);
            });
      r.add(px + "/wifi",
            std::string("pure always-on 802.11 network") + tdma_tail,
            [mh, tdma_config](const SweepPoint& p) {
              return tdma_config(mh, EvalModel::kWifi, p);
            });
    }
  }
  // Node-churn variants: deterministic crash/recover schedules on the
  // paper grid. Axes (all optional): crashes (default 4), downtime_s
  // (mean, default 60), link_flaps (default 0), fault_seed (default 1),
  // loss.
  {
    const auto churn_config = [](bool mh, EvalModel model,
                                 const SweepPoint& p) {
      ScenarioConfig cfg = base_config(mh, model, p);
      cfg.faults.node_crashes = static_cast<int>(p.get_or("crashes", 4));
      cfg.faults.mean_downtime = p.get_or("downtime_s", 60.0);
      cfg.faults.link_flaps = static_cast<int>(p.get_or("link_flaps", 0));
      cfg.faults.seed =
          static_cast<std::uint64_t>(p.get_or("fault_seed", 1));
      return cfg;
    };
    const char* churn_tail =
        " under node churn; axes: crashes, downtime_s, link_flaps, "
        "fault_seed";
    r.add("churn-mh/sensor",
          std::string("pure sensor network, multi-hop") + churn_tail,
          [churn_config](const SweepPoint& p) {
            return churn_config(true, EvalModel::kSensor, p);
          });
    r.add("churn-mh/dual",
          std::string("dual-radio BCP, multi-hop") + churn_tail,
          [churn_config](const SweepPoint& p) {
            return churn_config(true, EvalModel::kDualRadio, p);
          });
    r.add("churn-sh/dual",
          std::string("dual-radio BCP, single-hop") + churn_tail,
          [churn_config](const SweepPoint& p) {
            return churn_config(false, EvalModel::kDualRadio, p);
          });
  }
  // Finite-battery lifetime variants: every node starts with a per-radio-
  // class energy budget and dies unrecoverably at its exact depletion
  // instant (see ScenarioConfig::battery); the lossy flavours compose the
  // log-distance channel and accept its ple / shadow_db / margin_db axes.
  // Axes (all optional): sensor_j (default 150), wifi_j (default 600),
  // lifetime_routing (non-zero switches DynamicRouting to the battery-
  // fraction cost), weight, reroute_s, loss; wifi-duty adds duty /
  // duty_period_s.
  {
    const auto lifetime_config = [](bool mh, EvalModel model, bool lossy,
                                    const SweepPoint& p) {
      ScenarioConfig cfg = base_config(mh, model, p);
      if (lossy) {
        cfg.propagation.kind = phy::PropagationKind::kLogDistance;
        cfg.propagation.path_loss_exponent = p.get_or("ple", 3.0);
        cfg.propagation.shadowing_sigma_db = p.get_or("shadow_db", 4.0);
        cfg.propagation.fade_margin_db = p.get_or("margin_db", 6.0);
      }
      cfg.battery.enabled = true;
      cfg.battery.sensor_initial_j = p.get_or("sensor_j", 150.0);
      cfg.battery.wifi_initial_j = p.get_or("wifi_j", 600.0);
      cfg.battery.lifetime_weight = p.get_or("weight", 4.0);
      cfg.battery.reroute_period = p.get_or("reroute_s", 30.0);
      if (p.get_or("lifetime_routing", 0.0) != 0.0)
        cfg.route_policy = net::RoutePolicy::kLifetimeAware;
      if (model == EvalModel::kWifiDutyCycled) {
        cfg.duty_cycle = p.get_or("duty", 0.1);
        cfg.duty_period = p.get_or("duty_period_s", 1.0);
      }
      return cfg;
    };
    const char* lifetime_tail =
        " with finite batteries; axes: sensor_j, wifi_j, lifetime_routing, "
        "weight, reroute_s";
    r.add("lifetime-mh/dual",
          std::string("dual-radio BCP, multi-hop") + lifetime_tail,
          [lifetime_config](const SweepPoint& p) {
            return lifetime_config(true, EvalModel::kDualRadio, false, p);
          });
    r.add("lifetime-mh/wifi",
          std::string("pure always-on 802.11 network, multi-hop") +
              lifetime_tail,
          [lifetime_config](const SweepPoint& p) {
            return lifetime_config(true, EvalModel::kWifi, false, p);
          });
    r.add("lifetime-mh/sensor",
          std::string("pure sensor network, multi-hop") + lifetime_tail,
          [lifetime_config](const SweepPoint& p) {
            return lifetime_config(true, EvalModel::kSensor, false, p);
          });
    r.add("lifetime-mh/wifi-duty",
          std::string("sleep-cycled 802.11 strawman, multi-hop") +
              lifetime_tail + ", duty, duty_period_s",
          [lifetime_config](const SweepPoint& p) {
            return lifetime_config(true, EvalModel::kWifiDutyCycled, false,
                                   p);
          });
    r.add("lifetime-lossy-mh/dual",
          std::string("dual-radio BCP, multi-hop, log-distance links") +
              lifetime_tail + ", ple, shadow_db, margin_db",
          [lifetime_config](const SweepPoint& p) {
            return lifetime_config(true, EvalModel::kDualRadio, true, p);
          });
    r.add("lifetime-lossy-mh/wifi",
          std::string(
              "pure always-on 802.11 network, multi-hop, log-distance "
              "links") +
              lifetime_tail + ", ple, shadow_db, margin_db",
          [lifetime_config](const SweepPoint& p) {
            return lifetime_config(true, EvalModel::kWifi, true, p);
          });
  }
  // Sharded parallel-engine variants: the same scenarios on the
  // spatially-sharded single-run engine (its own metrics contract — see
  // ScenarioConfig::shards). Axes (all optional): shards (default 4),
  // sim_threads (default 0 = auto), shard_window_s (default 0.02),
  // nodes/area/topo_seed for the grid placement.
  {
    const auto sharded_config = [](bool mh, EvalModel model,
                                   const SweepPoint& p) {
      ScenarioConfig cfg = base_config(mh, model, p);
      const int nodes = static_cast<int>(p.get_or("nodes", 0));
      if (nodes > 0) {
        net::TopologySpec spec;
        spec.kind = net::TopologyKind::kGrid;
        spec.nodes = nodes;
        const int side = static_cast<int>(
            std::lround(std::sqrt(static_cast<double>(nodes))));
        spec.grid_side = side;
        spec.area = p.get_or("area", cfg.sensor_radio.range * (side - 1));
        cfg.topology = spec;
      }
      cfg.shards = static_cast<int>(p.get_or("shards", 4));
      cfg.sim_threads = static_cast<int>(p.get_or("sim_threads", 0));
      cfg.shard_window = p.get_or("shard_window_s", 0.02);
      return cfg;
    };
    const char* sharded_tail =
        " on the sharded parallel engine; axes: shards, sim_threads, "
        "shard_window_s, nodes, area";
    r.add("sharded-sh/dual",
          std::string("dual-radio BCP, single-hop") + sharded_tail,
          [sharded_config](const SweepPoint& p) {
            return sharded_config(false, EvalModel::kDualRadio, p);
          });
    r.add("sharded-mh/dual",
          std::string("dual-radio BCP, multi-hop") + sharded_tail,
          [sharded_config](const SweepPoint& p) {
            return sharded_config(true, EvalModel::kDualRadio, p);
          });
    r.add("sharded-mh/sensor",
          std::string("pure sensor network, multi-hop") + sharded_tail,
          [sharded_config](const SweepPoint& p) {
            return sharded_config(true, EvalModel::kSensor, p);
          });
  }
  // §5 delay-constrained buffering policies (the open-question ablation).
  r.add("mh/dual-flush-high",
        "dual-radio BCP, deadline flushes a sub-threshold burst over the "
        "802.11 radio; axes: deadline_s",
        [](const SweepPoint& p) {
          ScenarioConfig cfg = base_config(true, EvalModel::kDualRadio, p);
          cfg.bcp.delay_policy = core::DelayPolicy::kFlushHigh;
          cfg.bcp.max_buffering_delay = p.get_or("deadline_s", 60.0);
          return cfg;
        });
  r.add("mh/dual-fallback-low",
        "dual-radio BCP, deadline falls expired packets back to the sensor "
        "radio; axes: deadline_s",
        [](const SweepPoint& p) {
          ScenarioConfig cfg = base_config(true, EvalModel::kDualRadio, p);
          cfg.bcp.delay_policy = core::DelayPolicy::kFallbackLow;
          cfg.bcp.max_buffering_delay = p.get_or("deadline_s", 60.0);
          return cfg;
        });
  // §3 route optimization via shortcut learning.
  r.add("mh/dual-shortcuts",
        "dual-radio BCP with shortcut learning enabled",
        [](const SweepPoint& p) {
          ScenarioConfig cfg = base_config(true, EvalModel::kDualRadio, p);
          cfg.bcp.enable_shortcuts = true;
          return cfg;
        });
  // Alternative high-power radio pairings for the single-hop case.
  r.add("sh/dual-lucent2",
        "dual-radio BCP with the Lucent 2 Mbps card",
        [](const SweepPoint& p) {
          ScenarioConfig cfg = base_config(false, EvalModel::kDualRadio, p);
          cfg.wifi_radio = energy::lucent_2mbps();
          return cfg;
        });
  r.add("sh/dual-cabletron",
        "dual-radio BCP with the Cabletron 2 Mbps card",
        [](const SweepPoint& p) {
          ScenarioConfig cfg = base_config(false, EvalModel::kDualRadio, p);
          cfg.wifi_radio = energy::cabletron_2mbps();
          return cfg;
        });
  return r;
}

}  // namespace

const ScenarioRegistry& ScenarioRegistry::builtin() {
  static const ScenarioRegistry registry = make_builtin();
  return registry;
}

stats::ResultSink::Metrics standard_metrics(const RunMetrics& m) {
  return {
      {"goodput", m.goodput},
      {"normalized_energy", m.normalized_energy},
      {"normalized_energy_sensor_ideal", m.normalized_energy_sensor_ideal},
      {"normalized_energy_sensor_header", m.normalized_energy_sensor_header},
      {"mean_delay_s", m.mean_delay},
      {"generated", static_cast<double>(m.generated)},
      {"delivered", static_cast<double>(m.delivered)},
      {"dropped_buffer", static_cast<double>(m.dropped_buffer)},
      {"dropped_queue", static_cast<double>(m.dropped_queue)},
      {"dropped_mac", static_cast<double>(m.dropped_mac)},
      {"mac_tx_attempts", static_cast<double>(m.mac_tx_attempts)},
      {"mac_tx_failed", static_cast<double>(m.mac_tx_failed)},
      {"bcp_wakeups", static_cast<double>(m.bcp_wakeups)},
      {"wifi_wakeup_transitions",
       static_cast<double>(m.wifi_wakeup_transitions)},
      {"wifi_on_seconds", m.wifi_on_seconds},
      {"sensor_energy_ideal_J", m.sensor_energy.ideal()},
      {"wifi_energy_full_J", m.wifi_energy.full()},
  };
}

SweepFn scenario_sweep_fn(const ScenarioRegistry& registry,
                          std::vector<std::string> variants) {
  BCP_REQUIRE(!variants.empty());
  for (const auto& v : variants)
    BCP_REQUIRE_MSG(registry.contains(v), "unknown scenario variant: " + v);
  // Copy the registry into the closure: the returned SweepFn routinely
  // outlives caller-built registries.
  return [registry, variants = std::move(variants)](const SweepJob& job) {
    const auto idx = static_cast<std::size_t>(job.point.get_int("variant"));
    BCP_REQUIRE(idx < variants.size());
    ScenarioConfig cfg = registry.make(variants[idx], job.point);
    cfg.seed = job.seed;
    return standard_metrics(run_scenario(cfg));
  };
}

}  // namespace bcp::app

#include "app/scenario_registry.hpp"

#include <utility>

#include "util/assert.hpp"

namespace bcp::app {

void ScenarioRegistry::add(std::string name, std::string description,
                           Builder builder) {
  BCP_REQUIRE(builder != nullptr);
  BCP_REQUIRE_MSG(!contains(name), "duplicate scenario variant: " + name);
  variants_.push_back(
      Variant{std::move(name), std::move(description), std::move(builder)});
}

const ScenarioRegistry::Variant* ScenarioRegistry::find(
    const std::string& name) const {
  for (const auto& v : variants_)
    if (v.name == name) return &v;
  return nullptr;
}

bool ScenarioRegistry::contains(const std::string& name) const {
  return find(name) != nullptr;
}

ScenarioConfig ScenarioRegistry::make(const std::string& name,
                                      const SweepPoint& point) const {
  const Variant* v = find(name);
  BCP_REQUIRE_MSG(v != nullptr, "unknown scenario variant: " + name);
  return v->build(point);
}

const std::string& ScenarioRegistry::description(
    const std::string& name) const {
  const Variant* v = find(name);
  BCP_REQUIRE_MSG(v != nullptr, "unknown scenario variant: " + name);
  return v->description;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(variants_.size());
  for (const auto& v : variants_) out.push_back(v.name);
  return out;
}

namespace {

/// Shared axis handling for every built-in variant.
ScenarioConfig base_config(bool multi_hop, EvalModel model,
                           const SweepPoint& p) {
  const int senders = p.get_int("senders");
  const int burst = static_cast<int>(p.get_or("burst", 500));
  ScenarioConfig cfg =
      multi_hop
          ? ScenarioConfig::multi_hop(model, senders,
                                      model == EvalModel::kDualRadio ? burst
                                                                    : 1)
          : ScenarioConfig::single_hop(model, senders,
                                       model == EvalModel::kDualRadio ? burst
                                                                      : 1);
  const double rate = p.get_or("rate_bps", 0);
  if (rate > 0) cfg.rate_bps = rate;
  cfg.duration = p.get_or("duration", cfg.duration);
  cfg.frame_loss_prob = p.get_or("loss", 0.0);
  return cfg;
}

ScenarioRegistry make_builtin() {
  ScenarioRegistry r;
  struct Preset {
    const char* prefix;
    bool multi_hop;
  };
  for (const Preset preset : {Preset{"sh", false}, Preset{"mh", true}}) {
    const bool mh = preset.multi_hop;
    const std::string px = preset.prefix;
    const char* kind = mh ? "multi-hop (§4.1.2)" : "single-hop (§4.1.1)";
    r.add(px + "/sensor",
          std::string("pure sensor network, ") + kind,
          [mh](const SweepPoint& p) {
            return base_config(mh, EvalModel::kSensor, p);
          });
    r.add(px + "/wifi",
          std::string("pure always-on 802.11 network, ") + kind,
          [mh](const SweepPoint& p) {
            return base_config(mh, EvalModel::kWifi, p);
          });
    r.add(px + "/dual",
          std::string("dual-radio BCP, ") + kind,
          [mh](const SweepPoint& p) {
            return base_config(mh, EvalModel::kDualRadio, p);
          });
    r.add(px + "/wifi-duty",
          std::string("sleep-cycled 802.11 strawman (§1), ") + kind +
              "; axes: duty (required), duty_period_s",
          [mh](const SweepPoint& p) {
            ScenarioConfig cfg =
                base_config(mh, EvalModel::kWifiDutyCycled, p);
            cfg.duty_cycle = p.get("duty");
            cfg.duty_period = p.get_or("duty_period_s", 1.0);
            return cfg;
          });
  }
  // §5 delay-constrained buffering policies (the open-question ablation).
  r.add("mh/dual-flush-high",
        "dual-radio BCP, deadline flushes a sub-threshold burst over the "
        "802.11 radio; axes: deadline_s",
        [](const SweepPoint& p) {
          ScenarioConfig cfg = base_config(true, EvalModel::kDualRadio, p);
          cfg.bcp.delay_policy = core::DelayPolicy::kFlushHigh;
          cfg.bcp.max_buffering_delay = p.get_or("deadline_s", 60.0);
          return cfg;
        });
  r.add("mh/dual-fallback-low",
        "dual-radio BCP, deadline falls expired packets back to the sensor "
        "radio; axes: deadline_s",
        [](const SweepPoint& p) {
          ScenarioConfig cfg = base_config(true, EvalModel::kDualRadio, p);
          cfg.bcp.delay_policy = core::DelayPolicy::kFallbackLow;
          cfg.bcp.max_buffering_delay = p.get_or("deadline_s", 60.0);
          return cfg;
        });
  // §3 route optimization via shortcut learning.
  r.add("mh/dual-shortcuts",
        "dual-radio BCP with shortcut learning enabled",
        [](const SweepPoint& p) {
          ScenarioConfig cfg = base_config(true, EvalModel::kDualRadio, p);
          cfg.bcp.enable_shortcuts = true;
          return cfg;
        });
  // Alternative high-power radio pairings for the single-hop case.
  r.add("sh/dual-lucent2",
        "dual-radio BCP with the Lucent 2 Mbps card",
        [](const SweepPoint& p) {
          ScenarioConfig cfg = base_config(false, EvalModel::kDualRadio, p);
          cfg.wifi_radio = energy::lucent_2mbps();
          return cfg;
        });
  r.add("sh/dual-cabletron",
        "dual-radio BCP with the Cabletron 2 Mbps card",
        [](const SweepPoint& p) {
          ScenarioConfig cfg = base_config(false, EvalModel::kDualRadio, p);
          cfg.wifi_radio = energy::cabletron_2mbps();
          return cfg;
        });
  return r;
}

}  // namespace

const ScenarioRegistry& ScenarioRegistry::builtin() {
  static const ScenarioRegistry registry = make_builtin();
  return registry;
}

stats::ResultSink::Metrics standard_metrics(const RunMetrics& m) {
  return {
      {"goodput", m.goodput},
      {"normalized_energy", m.normalized_energy},
      {"normalized_energy_sensor_ideal", m.normalized_energy_sensor_ideal},
      {"normalized_energy_sensor_header", m.normalized_energy_sensor_header},
      {"mean_delay_s", m.mean_delay},
      {"generated", static_cast<double>(m.generated)},
      {"delivered", static_cast<double>(m.delivered)},
      {"dropped_buffer", static_cast<double>(m.dropped_buffer)},
      {"dropped_queue", static_cast<double>(m.dropped_queue)},
      {"dropped_mac", static_cast<double>(m.dropped_mac)},
      {"mac_tx_attempts", static_cast<double>(m.mac_tx_attempts)},
      {"mac_tx_failed", static_cast<double>(m.mac_tx_failed)},
      {"bcp_wakeups", static_cast<double>(m.bcp_wakeups)},
      {"wifi_wakeup_transitions",
       static_cast<double>(m.wifi_wakeup_transitions)},
      {"wifi_on_seconds", m.wifi_on_seconds},
      {"sensor_energy_ideal_J", m.sensor_energy.ideal()},
      {"wifi_energy_full_J", m.wifi_energy.full()},
  };
}

SweepFn scenario_sweep_fn(const ScenarioRegistry& registry,
                          std::vector<std::string> variants) {
  BCP_REQUIRE(!variants.empty());
  for (const auto& v : variants)
    BCP_REQUIRE_MSG(registry.contains(v), "unknown scenario variant: " + v);
  // Copy the registry into the closure: the returned SweepFn routinely
  // outlives caller-built registries.
  return [registry, variants = std::move(variants)](const SweepJob& job) {
    const auto idx = static_cast<std::size_t>(job.point.get_int("variant"));
    BCP_REQUIRE(idx < variants.size());
    ScenarioConfig cfg = registry.make(variants[idx], job.point);
    cfg.seed = job.seed;
    return standard_metrics(run_scenario(cfg));
  };
}

}  // namespace bcp::app

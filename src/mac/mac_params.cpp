#include "mac/mac_params.hpp"

#include "util/units.hpp"

namespace bcp::mac {

using util::bytes;
using util::microseconds;
using util::milliseconds;

MacParams sensor_mac_params() {
  MacParams p;
  p.slot = microseconds(500);
  p.sifs = microseconds(300);     // CC2420-class rx/tx turnaround
  p.difs = milliseconds(1);
  p.cw_min = 31;
  p.cw_max = 31;                  // fixed window — no BEB
  p.exponential_backoff = false;
  p.retry_limit = 3;
  p.max_queue = 5000;             // the paper's 5000-packet node buffer
  p.header_bits = bytes(11);      // 802.15.4 MAC header + FCS
  p.ack_bits = bytes(11);
  p.preamble = 0;                 // sync bytes folded into the header
  p.ack_guard = milliseconds(2);
  return p;
}

MacParams dcf_mac_params() {
  MacParams p;
  p.slot = microseconds(20);
  p.sifs = microseconds(10);
  p.difs = microseconds(50);
  p.cw_min = 31;
  p.cw_max = 1023;
  p.exponential_backoff = true;
  p.retry_limit = 7;
  p.max_queue = 1000;
  p.header_bits = bytes(28);      // MAC header 24 + FCS 4
  p.ack_bits = bytes(14);
  p.preamble = microseconds(96);  // 802.11b short PLCP preamble
  p.ack_guard = microseconds(20);
  return p;
}

}  // namespace bcp::mac

#include "mac/csma_mac.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace bcp::mac {

CsmaCaMac::CsmaCaMac(sim::Simulator& sim, phy::Radio& radio, MacParams params,
                     std::uint64_t seed)
    : sim_(sim),
      radio_(radio),
      params_(params),
      rng_(seed),
      backoff_timer_(sim, [this] { on_backoff_expired(); }),
      ack_timer_(sim, [this] { on_ack_timeout(); }),
      ack_tx_timer_(sim, [this] {
        // Time to put the head-of-line ack on the air.
        if (pending_acks_.empty()) return;
        if (radio_.state() == phy::RadioState::kTx || !radio_.ready()) {
          // Our own transmission (or a power-down) wins; the data sender
          // will time out and retransmit.
          ++stats_.acks_suppressed;
          pending_acks_.pop_front();
          return;
        }
        const PendingAck ack = pending_acks_.front();
        pending_acks_.pop_front();
        phy::Frame f;
        f.tx_node = radio_.self();
        f.rx_node = ack.to;
        f.kind = phy::FrameKind::kAck;
        f.mac_seq = ack.seq;
        f.payload_bits = 0;
        f.header_bits = params_.ack_bits;
        f.preamble = params_.preamble;
        tx_is_ack_ = true;
        ++stats_.acks_sent;
        radio_.transmit(f);
      }) {
  BCP_REQUIRE(params_.slot > 0);
  BCP_REQUIRE(params_.cw_min >= 0 && params_.cw_max >= params_.cw_min);
  BCP_REQUIRE(params_.retry_limit >= 0);
  BCP_REQUIRE(params_.max_queue > 0);
  radio_.callbacks().tx_done = [this] { on_radio_tx_done(); };
  radio_.callbacks().frame_received = [this](const phy::Frame& f) {
    on_frame_received(f);
  };
}

bool CsmaCaMac::enqueue(net::MessageRef msg, net::NodeId next_hop) {
  BCP_REQUIRE(msg);
  BCP_REQUIRE(next_hop == net::kBroadcastNode || next_hop >= 0);
  BCP_REQUIRE(next_hop != radio_.self());
  if (queue_.size() >= params_.max_queue) {
    ++stats_.queue_drops;
    return false;
  }
  ++stats_.enqueued;
  Outgoing out;
  out.size_bits = msg->size_bits();  // once, not per retry
  out.msg = std::move(msg);
  out.next_hop = next_hop;
  out.cw = params_.cw_min;
  queue_.push_back(std::move(out));
  if (!in_flight_) start_cycle();
  return true;
}

void CsmaCaMac::start_cycle() {
  if (queue_.empty()) return;
  in_flight_ = true;
  arm_backoff(0.0);
}

void CsmaCaMac::arm_backoff(util::Seconds extra_wait) {
  const auto& head = queue_.front();
  const auto slots = rng_.uniform_int(static_cast<std::uint64_t>(head.cw) + 1);
  backoff_timer_.start(extra_wait + params_.difs +
                       static_cast<double>(slots) * params_.slot);
}

void CsmaCaMac::on_backoff_expired() {
  BCP_ENSURE(in_flight_ && !queue_.empty());
  if (!radio_.is_on() || radio_.state() == phy::RadioState::kWaking) {
    // Radio went down with traffic pending — fail the frame rather than
    // spin; the owner decides what to do with the loss.
    finish_head(false);
    return;
  }
  if (radio_.state() == phy::RadioState::kTx || radio_.channel_busy()) {
    // Medium busy: re-arm once it clears (fresh draw, see header note).
    const util::Seconds wait =
        std::max(radio_.channel_clear_at() - sim_.now(), 0.0);
    arm_backoff(wait);
    return;
  }
  transmit_head();
}

phy::Frame CsmaCaMac::make_data_frame(const Outgoing& out) const {
  phy::Frame f;
  f.tx_node = radio_.self();
  f.rx_node = out.next_hop;
  f.kind = phy::FrameKind::kData;
  f.mac_seq = out.seq;
  f.payload_bits = out.size_bits;
  f.header_bits = params_.header_bits;
  f.preamble = params_.preamble;
  f.message = out.msg;  // shares the pooled payload
  return f;
}

void CsmaCaMac::transmit_head() {
  Outgoing& head = queue_.front();
  if (head.seq == 0) head.seq = next_seq_++;  // same seq across retries
  ++head.attempts;
  ++stats_.tx_attempts;
  tx_is_ack_ = false;
  radio_.transmit(make_data_frame(head));
}

void CsmaCaMac::on_radio_tx_done() {
  if (tx_is_ack_) {
    tx_is_ack_ = false;
    if (!pending_acks_.empty()) ack_tx_timer_.start(params_.sifs);
    return;
  }
  if (!in_flight_) return;  // queue was flushed mid-transmission
  const Outgoing& head = queue_.front();
  if (head.next_hop == net::kBroadcastNode) {
    finish_head(true);
    return;
  }
  awaiting_ack_ = true;
  ack_timer_.start(params_.sifs + ack_duration() + params_.ack_guard);
}

util::Seconds CsmaCaMac::ack_duration() const {
  return params_.preamble +
         static_cast<double>(params_.ack_bits) / radio_.model().rate;
}

void CsmaCaMac::on_ack_timeout() {
  BCP_ENSURE(in_flight_ && awaiting_ack_ && !queue_.empty());
  awaiting_ack_ = false;
  Outgoing& head = queue_.front();
  if (head.attempts > params_.retry_limit) {
    finish_head(false);
    return;
  }
  if (params_.exponential_backoff)
    head.cw = std::min(2 * (head.cw + 1) - 1, params_.cw_max);
  arm_backoff(0.0);
}

void CsmaCaMac::on_frame_received(const phy::Frame& frame) {
  if (frame.kind == phy::FrameKind::kBeacon) return;  // not our family
  if (frame.kind == phy::FrameKind::kAck) {
    if (awaiting_ack_ && !queue_.empty() &&
        frame.mac_seq == queue_.front().seq &&
        frame.tx_node == queue_.front().next_hop) {
      ack_timer_.cancel();
      awaiting_ack_ = false;
      finish_head(true);
    }
    return;
  }
  // Data frame addressed to us (or broadcast).
  BCP_ENSURE(frame.message);
  const bool unicast = frame.rx_node == radio_.self();
  if (unicast) {
    pending_acks_.push_back(PendingAck{frame.tx_node, frame.mac_seq});
    if (!ack_tx_timer_.running() && radio_.state() != phy::RadioState::kTx)
      ack_tx_timer_.start(params_.sifs);
    auto& last = delivered_seq_[frame.tx_node];
    if (frame.mac_seq <= last) {
      ++stats_.rx_duplicates;  // retransmission whose ack we lost — re-ack
      return;
    }
    last = frame.mac_seq;
  }
  ++stats_.rx_delivered;
  if (rx_cb_) rx_cb_(*frame.message, frame.tx_node);
}

void CsmaCaMac::finish_head(bool success) {
  BCP_ENSURE(!queue_.empty());
  Outgoing done = std::move(queue_.front());
  queue_.pop_front();
  in_flight_ = false;
  awaiting_ack_ = false;
  backoff_timer_.cancel();
  ack_timer_.cancel();
  if (success)
    ++stats_.tx_success;
  else
    ++stats_.tx_failed;
  if (tx_done_cb_) tx_done_cb_(*done.msg, done.next_hop, success);
  if (!in_flight_ && !queue_.empty()) start_cycle();
}

void CsmaCaMac::reset_on_crash() {
  backoff_timer_.cancel();
  ack_timer_.cancel();
  ack_tx_timer_.cancel();
  in_flight_ = false;
  awaiting_ack_ = false;
  tx_is_ack_ = false;
  ++stats_.crash_resets;
  stats_.crash_drops += static_cast<std::int64_t>(queue_.size());
  queue_.clear();
  pending_acks_.clear();
  delivered_seq_.clear();
}

void CsmaCaMac::flush_queue() {
  backoff_timer_.cancel();
  ack_timer_.cancel();
  in_flight_ = false;
  awaiting_ack_ = false;
  util::SlidingQueue<Outgoing> failed;
  failed.swap(queue_);
  for (auto& out : failed) {
    ++stats_.tx_failed;
    if (tx_done_cb_) tx_done_cb_(*out.msg, out.next_hop, false);
  }
}

}  // namespace bcp::mac

#include "mac/mac_spec.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace bcp::mac {

const char* to_string(MacFamily f) {
  switch (f) {
    case MacFamily::kAuto:   return "auto";
    case MacFamily::kCsmaCa: return "csma-ca";
    case MacFamily::kTdma:   return "tdma";
  }
  return "?";
}

bool TdmaParams::is_default() const {
  return slot_len == 0 && guard == 0 && beacon_period == 0 &&
         sync_drift == 0 && beacon_bits == 0 && header_bits == 0 &&
         preamble == 0 && max_queue == 0;
}

void TdmaParams::validate() const {
  if (is_default()) return;  // class defaults stand in
  BCP_REQUIRE_MSG(std::isfinite(slot_len) && slot_len > 0,
                  "TDMA slot length must be finite and positive");
  BCP_REQUIRE_MSG(std::isfinite(guard) && guard >= 0,
                  "TDMA guard time must be finite and non-negative");
  BCP_REQUIRE_MSG(2 * guard < slot_len,
                  "TDMA guards must leave data time inside the slot");
  BCP_REQUIRE_MSG(std::isfinite(beacon_period) && beacon_period >= 0,
                  "TDMA beacon period must be finite and non-negative");
  BCP_REQUIRE_MSG(std::isfinite(sync_drift) && sync_drift >= 0 &&
                      sync_drift < 1,
                  "TDMA sync drift must be a finite rate in [0, 1)");
  BCP_REQUIRE_MSG(std::isfinite(preamble) && preamble >= 0,
                  "TDMA preamble must be finite and non-negative");
  BCP_REQUIRE_MSG(beacon_bits > 0, "TDMA beacon size must be positive");
  BCP_REQUIRE_MSG(header_bits >= 0, "TDMA header size must be non-negative");
  BCP_REQUIRE_MSG(max_queue > 0, "TDMA queue capacity must be positive");
}

TdmaParams TdmaParams::resolved_for(int slot_count,
                                    util::BitsPerSecond rate) const {
  BCP_REQUIRE(!is_default());
  BCP_REQUIRE(slot_count >= 1);
  BCP_REQUIRE(rate > 0);
  validate();
  const util::Seconds beacon_air =
      preamble + static_cast<double>(beacon_bits) / rate;
  // The beacon gets its own guard before the first slot opens.
  const util::Seconds span =
      beacon_air + guard + static_cast<double>(slot_count) * slot_len;
  TdmaParams out = *this;
  if (out.beacon_period == 0) {
    out.beacon_period = span;
  } else {
    BCP_REQUIRE_MSG(out.beacon_period >= span,
                    "TDMA beacon period is shorter than the beacon plus "
                    "slot_count x slot_len it must contain");
  }
  return out;
}

TdmaParams tdma_sensor_params() {
  TdmaParams p;
  p.slot_len = util::milliseconds(15);
  p.guard = util::milliseconds(1);
  p.beacon_period = 0;  // auto-tight
  p.sync_drift = 100e-6;
  p.beacon_bits = util::bytes(11);
  p.header_bits = util::bytes(11);   // match the CSMA sensor link header
  p.preamble = 0;
  p.max_queue = 5000;
  return p;
}

TdmaParams tdma_wifi_params() {
  TdmaParams p;
  p.slot_len = util::milliseconds(1.5);
  p.guard = util::microseconds(100);
  p.beacon_period = 0;  // auto-tight
  p.sync_drift = 100e-6;
  p.beacon_bits = util::bytes(28);
  p.header_bits = util::bytes(28);
  p.preamble = util::microseconds(96);
  p.max_queue = 1000;
  return p;
}

void MacSpec::validate() const {
  if (family == MacFamily::kTdma) tdma.validate();
}

}  // namespace bcp::mac

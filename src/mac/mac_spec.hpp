// Which MAC family a scenario runs per radio class, plus the TDMA knobs.
//
// MacSpec rides inside app::ScenarioConfig (one per radio class). The
// default — kAuto — resolves to the historical CSMA/CA engine with the
// exact per-class MacParams the figure pipeline has always used, so every
// fig01–fig12/table1 BENCH export stays byte-identical unless a scenario
// asks for something else. kTdma swaps in the sink-coordinated slotted
// MAC (mac/tdma_mac.hpp) with the knobs below.
#pragma once

#include <cstddef>

#include "util/units.hpp"

namespace bcp::mac {

enum class MacFamily {
  kAuto,    ///< historical default: CSMA/CA with the class MacParams
  kCsmaCa,  ///< explicit CSMA/CA — must behave identically to kAuto
  kTdma,    ///< sink-coordinated beacon + slot schedule
};

const char* to_string(MacFamily f);

/// TDMA timing knobs. Zeros mean "use the radio class defaults"
/// (tdma_sensor_params / tdma_wifi_params); a scenario overriding any
/// field supplies the full set (is_default() is all-or-nothing).
struct TdmaParams {
  util::Seconds slot_len = 0;      ///< per-slot budget incl. guards
  util::Seconds guard = 0;         ///< idle time at both slot edges
  /// Superframe period. 0 = auto: the tightest period that fits the
  /// beacon plus every scheduled slot (resolved by resolved_for()).
  util::Seconds beacon_period = 0;
  double sync_drift = 0;           ///< |clock error| bound, s per s
  util::Bits beacon_bits = 0;      ///< beacon frame size
  util::Bits header_bits = 0;      ///< link header on data frames
  util::Seconds preamble = 0;      ///< fixed PHY preamble per frame
  std::size_t max_queue = 0;       ///< frames; tail-drop beyond this

  bool is_default() const;

  /// Throws std::invalid_argument on non-finite or out-of-range knobs
  /// (NaN/negative guard, zero slot length, ...). An all-default (zero)
  /// spec is valid — the class defaults stand in.
  void validate() const;

  /// Fills beacon_period when 0 with the tightest superframe that fits
  /// `slot_count` slots behind the beacon at `rate` bit/s, and validates
  /// an explicit period against that floor (throws when the period cannot
  /// fit beacon + slot_count * slot_len). Pre: !is_default(), validated.
  TdmaParams resolved_for(int slot_count, util::BitsPerSecond rate) const;
};

/// Sensor-class (Mica, 40 Kbps) TDMA defaults: 15 ms slots fit a 32 B
/// payload + 11 B header frame (8.6 ms on air) plus 1 ms edge guards with
/// drift headroom; 100 ppm crystal-class sync drift.
TdmaParams tdma_sensor_params();

/// 802.11-class TDMA defaults: 1.5 ms slots (a 32 B frame at 2 Mbps with
/// the 96 us PLCP preamble is ~0.3 ms), 100 us guards.
TdmaParams tdma_wifi_params();

/// Per-radio-class MAC family selection, threaded through ScenarioConfig.
struct MacSpec {
  MacFamily family = MacFamily::kAuto;
  TdmaParams tdma;  ///< only read when family == kTdma

  bool is_tdma() const { return family == MacFamily::kTdma; }

  /// Throws std::invalid_argument on bad TDMA knobs. CSMA/auto specs are
  /// always valid (the class MacParams carry their own invariants).
  void validate() const;
};

}  // namespace bcp::mac

// MAC timing/behaviour parameter sets.
//
// One CSMA/CA engine (CsmaCaMac) covers both §4.1 MACs:
//  * the sensor radio runs "a simpler MAC layer that complies with MAC
//    protocols for sensor platforms (e.g., no RTS/CTS)" — unslotted CSMA
//    with a fixed contention window, link acks and a small retry limit
//    (B-MAC/CC2420-style);
//  * the 802.11 radio runs "full IEEE 802.11b MAC" basic access — DIFS/SIFS
//    slotted binary-exponential backoff, link acks, retry limit 7.
// Neither uses RTS/CTS, so both are hidden-terminal-prone, which is what
// drives the paper's multi-hop goodput collapse.
#pragma once

#include <cstddef>

#include "util/units.hpp"

namespace bcp::mac {

struct MacParams {
  util::Seconds slot = 0;      ///< backoff slot time
  util::Seconds sifs = 0;      ///< data->ack turnaround
  util::Seconds difs = 0;      ///< sense time before backoff countdown
  int cw_min = 0;              ///< initial contention window (slots)
  int cw_max = 0;              ///< BEB ceiling
  bool exponential_backoff = false;
  int retry_limit = 0;         ///< retransmissions per frame (excl. first tx)
  std::size_t max_queue = 0;   ///< frames; tail-drop beyond this
  util::Bits header_bits = 0;  ///< link header on data frames
  util::Bits ack_bits = 0;     ///< ack frame size
  util::Seconds preamble = 0;  ///< fixed PHY preamble per frame
  util::Seconds ack_guard = 0; ///< slack added to the ack timeout
};

/// Sensor-radio CSMA (B-MAC-like): fixed CW, 3 retransmissions, 11 B
/// headers. Timings sized for the tens-of-kbit/s sensor rates.
MacParams sensor_mac_params();

/// 802.11b DCF basic access: 20 us slots, SIFS 10 us, DIFS 50 us,
/// CW 31..1023 with binary exponential backoff, retry limit 7, 28 B MAC
/// header + 96 us PLCP preamble, 14 B acks.
MacParams dcf_mac_params();

}  // namespace bcp::mac

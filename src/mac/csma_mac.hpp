// CSMA/CA MAC with link-layer acknowledgments and retransmissions.
//
// One frame is in flight at a time. The transmit cycle:
//   head of queue -> [DIFS + U(0, CW) slots] -> carrier sense ->
//   (busy: re-arm at channel-clear + fresh backoff) ->
//   transmit -> (broadcast: done) ->
//   wait SIFS + ack airtime + guard -> ack? success : retry with
//   (optionally doubled) CW, up to retry_limit, then report failure.
//
// The backoff approximation: instead of freezing the slot countdown while
// the medium is busy (as real DCF does), a busy medium at expiry re-arms a
// fresh backoff after the medium clears. This preserves what the study
// measures — collision probability under contention, exponential penalty
// after losses — at a fraction of the event load.
//
// Receive side: clean unicast frames are acked after SIFS (unless the radio
// is mid-transmission, in which case the sender will time out and retry).
// Duplicates — retransmissions whose ack was lost — are re-acked but
// delivered only once, using a per-neighbour highest-seq filter.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "mac/mac_params.hpp"
#include "net/message.hpp"
#include "net/message_ref.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/sliding_queue.hpp"

namespace bcp::mac {

class CsmaCaMac {
 public:
  struct Stats {
    std::int64_t enqueued = 0;
    std::int64_t queue_drops = 0;    ///< tail drops (queue full)
    std::int64_t tx_attempts = 0;    ///< data frame transmissions started
    std::int64_t tx_success = 0;     ///< frames acked (or broadcast sent)
    std::int64_t tx_failed = 0;      ///< frames dropped after retry_limit
    std::int64_t crash_drops = 0;    ///< frames lost to reset_on_crash
    std::int64_t crash_resets = 0;   ///< reset_on_crash invocations
    std::int64_t acks_sent = 0;
    std::int64_t acks_suppressed = 0;///< radio busy at ack time
    std::int64_t rx_delivered = 0;
    std::int64_t rx_duplicates = 0;
  };

  /// Called for every clean frame delivered to this node.
  using RxCallback =
      std::function<void(const net::Message&, net::NodeId from)>;
  /// Called when a frame leaves the MAC: acked/broadcast (success) or
  /// dropped after exhausting retries or because the radio went down.
  using TxDoneCallback = std::function<void(
      const net::Message&, net::NodeId next_hop, bool success)>;

  CsmaCaMac(sim::Simulator& sim, phy::Radio& radio, MacParams params,
            std::uint64_t seed);

  CsmaCaMac(const CsmaCaMac&) = delete;
  CsmaCaMac& operator=(const CsmaCaMac&) = delete;

  /// Queues a message for `next_hop` (net::kBroadcastNode for broadcast).
  /// Returns false (and counts a drop) when the queue is full. The ref
  /// form is the hot path: the queue, the frame on the air and every
  /// hearer share one pooled payload.
  bool enqueue(net::MessageRef msg, net::NodeId next_hop);
  bool enqueue(net::Message msg, net::NodeId next_hop) {
    return enqueue(net::make_message(std::move(msg)), next_hop);
  }

  void set_rx_callback(RxCallback cb) { rx_cb_ = std::move(cb); }
  void set_tx_done_callback(TxDoneCallback cb) { tx_done_cb_ = std::move(cb); }

  /// True when nothing is queued or in flight.
  bool idle() const { return queue_.empty() && !in_flight_; }
  std::size_t queue_size() const { return queue_.size(); }
  const Stats& stats() const { return stats_; }
  const MacParams& params() const { return params_; }

  /// Fails every queued frame (used when the owner powers the radio down
  /// with traffic pending — BCP aborting a session).
  void flush_queue();

  /// Crash reset: cancels every pending timer and silently discards all
  /// state — queued frames (their pooled payload refs included), pending
  /// acks, the in-flight cycle, and the duplicate-suppression history (a
  /// rebooted node forgets what it delivered). Unlike flush_queue, no
  /// tx_done callbacks fire: the owner is crashing, and its upper layers
  /// are being reset with it. Counted in Stats::crash_drops/crash_resets.
  void reset_on_crash();

 private:
  struct Outgoing {
    net::MessageRef msg;
    net::NodeId next_hop = net::kInvalidNode;
    util::Bits size_bits = 0;  // msg->size_bits(), computed once at enqueue
    int attempts = 0;       // transmissions performed
    int cw = 0;             // current contention window
    std::uint32_t seq = 0;  // assigned at first transmission; 0 = unassigned
  };

  void start_cycle();                 // arm backoff for the head frame
  void arm_backoff(util::Seconds extra_wait);
  void on_backoff_expired();
  void transmit_head();
  void on_radio_tx_done();
  void on_ack_timeout();
  void on_frame_received(const phy::Frame& frame);
  void send_ack(net::NodeId to, std::uint32_t seq);
  void finish_head(bool success);
  util::Seconds ack_duration() const;
  phy::Frame make_data_frame(const Outgoing& out) const;

  sim::Simulator& sim_;
  phy::Radio& radio_;
  MacParams params_;
  util::Xoshiro256 rng_;
  Stats stats_;

  util::SlidingQueue<Outgoing> queue_;
  bool in_flight_ = false;        // head frame mid-cycle (backoff/tx/ack)
  bool awaiting_ack_ = false;
  bool tx_is_ack_ = false;        // current radio transmission is an ack
  std::uint32_t next_seq_ = 1;
  sim::Timer backoff_timer_;
  sim::Timer ack_timer_;
  // Highest seq delivered per neighbour, for duplicate suppression.
  std::unordered_map<net::NodeId, std::uint32_t> delivered_seq_;
  // Pending ack (serialized through the single radio).
  struct PendingAck {
    net::NodeId to;
    std::uint32_t seq;
  };
  util::SlidingQueue<PendingAck> pending_acks_;
  sim::Timer ack_tx_timer_;

  RxCallback rx_cb_;
  TxDoneCallback tx_done_cb_;
};

}  // namespace bcp::mac

// CSMA/CA MAC with link-layer acknowledgments and retransmissions.
//
// One frame is in flight at a time. The transmit cycle:
//   head of queue -> [DIFS + U(0, CW) slots] -> carrier sense ->
//   (busy: re-arm at channel-clear + fresh backoff) ->
//   transmit -> (broadcast: done) ->
//   wait SIFS + ack airtime + guard -> ack? success : retry with
//   (optionally doubled) CW, up to retry_limit, then report failure.
//
// The backoff approximation: instead of freezing the slot countdown while
// the medium is busy (as real DCF does), a busy medium at expiry re-arms a
// fresh backoff after the medium clears. This preserves what the study
// measures — collision probability under contention, exponential penalty
// after losses — at a fraction of the event load.
//
// Receive side: clean unicast frames are acked after SIFS (unless the radio
// is mid-transmission, in which case the sender will time out and retry).
// Duplicates — retransmissions whose ack was lost — are re-acked but
// delivered only once, using a per-neighbour highest-seq filter.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "mac/mac.hpp"
#include "mac/mac_params.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/sliding_queue.hpp"

namespace bcp::mac {

class CsmaCaMac final : public Mac {
 public:
  /// Base counters plus the ack bookkeeping only contention access has.
  struct Stats : Mac::Stats {
    std::int64_t acks_sent = 0;
    std::int64_t acks_suppressed = 0;///< radio busy at ack time
  };

  CsmaCaMac(sim::Simulator& sim, phy::Radio& radio, MacParams params,
            std::uint64_t seed);

  /// Queues a message for `next_hop` (net::kBroadcastNode for broadcast).
  /// Returns false (and counts a drop) when the queue is full.
  bool enqueue(net::MessageRef msg, net::NodeId next_hop) override;
  using Mac::enqueue;

  /// True when nothing is queued or in flight.
  bool idle() const override { return queue_.empty() && !in_flight_; }
  std::size_t queue_size() const override { return queue_.size(); }
  const Stats& stats() const override { return stats_; }
  const MacParams& params() const { return params_; }

  /// Fails every queued frame (used when the owner powers the radio down
  /// with traffic pending — BCP aborting a session).
  void flush_queue() override;

  /// Crash reset: cancels every pending timer and silently discards all
  /// state — queued frames (their pooled payload refs included), pending
  /// acks, the in-flight cycle, and the duplicate-suppression history (a
  /// rebooted node forgets what it delivered). Unlike flush_queue, no
  /// tx_done callbacks fire: the owner is crashing, and its upper layers
  /// are being reset with it. Counted in Stats::crash_drops/crash_resets.
  void reset_on_crash() override;

 private:
  struct Outgoing {
    net::MessageRef msg;
    net::NodeId next_hop = net::kInvalidNode;
    util::Bits size_bits = 0;  // msg->size_bits(), computed once at enqueue
    int attempts = 0;       // transmissions performed
    int cw = 0;             // current contention window
    std::uint32_t seq = 0;  // assigned at first transmission; 0 = unassigned
  };

  void start_cycle();                 // arm backoff for the head frame
  void arm_backoff(util::Seconds extra_wait);
  void on_backoff_expired();
  void transmit_head();
  void on_radio_tx_done();
  void on_ack_timeout();
  void on_frame_received(const phy::Frame& frame);
  void send_ack(net::NodeId to, std::uint32_t seq);
  void finish_head(bool success);
  util::Seconds ack_duration() const;
  phy::Frame make_data_frame(const Outgoing& out) const;

  sim::Simulator& sim_;
  phy::Radio& radio_;
  MacParams params_;
  util::Xoshiro256 rng_;
  Stats stats_;

  util::SlidingQueue<Outgoing> queue_;
  bool in_flight_ = false;        // head frame mid-cycle (backoff/tx/ack)
  bool awaiting_ack_ = false;
  bool tx_is_ack_ = false;        // current radio transmission is an ack
  std::uint32_t next_seq_ = 1;
  sim::Timer backoff_timer_;
  sim::Timer ack_timer_;
  // Highest seq delivered per neighbour, for duplicate suppression.
  std::unordered_map<net::NodeId, std::uint32_t> delivered_seq_;
  // Pending ack (serialized through the single radio).
  struct PendingAck {
    net::NodeId to;
    std::uint32_t seq;
  };
  util::SlidingQueue<PendingAck> pending_acks_;
  sim::Timer ack_tx_timer_;
};

}  // namespace bcp::mac

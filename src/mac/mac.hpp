// The MAC seam the node assemblies program against.
//
// Two families implement it: CsmaCaMac (contention access — B-MAC-style
// sensor CSMA and 802.11 DCF, one engine) and TdmaMac (sink-coordinated
// collision-free slotted access). The node assemblies (app/nodes.hpp)
// hold `Mac&`/`unique_ptr<Mac>` and never name a concrete family; which
// one a scenario runs is a MacSpec decision (mac/mac_spec.hpp).
//
// The seam covers exactly what the assemblies use:
//   * enqueue toward a next hop (broadcast allowed), with tail-drop;
//   * the rx / tx-done callback pair the forwarding and BCP layers hook;
//   * crash teardown (reset_on_crash) and queue abort (flush_queue), so
//     FaultPlan churn works for any family;
//   * the shared Stats block, including crash accounting. Families extend
//     Stats covariantly (CsmaCaMac adds ack counters, TdmaMac beacon/slot
//     counters); scenario aggregation reads only the base fields.
#pragma once

#include <cstdint>
#include <functional>

#include "net/message.hpp"
#include "net/message_ref.hpp"

namespace bcp::mac {

class Mac {
 public:
  /// Counters every family maintains. Concrete MACs derive from this and
  /// override stats() covariantly to expose their family-specific extras.
  struct Stats {
    std::int64_t enqueued = 0;
    std::int64_t queue_drops = 0;    ///< tail drops (queue full)
    std::int64_t tx_attempts = 0;    ///< data frame transmissions started
    std::int64_t tx_success = 0;     ///< frames delivered to the link layer
    std::int64_t tx_failed = 0;      ///< frames given up on
    std::int64_t crash_drops = 0;    ///< frames lost to reset_on_crash
    std::int64_t crash_resets = 0;   ///< reset_on_crash invocations
    std::int64_t rx_delivered = 0;
    std::int64_t rx_duplicates = 0;
  };

  /// Called for every clean frame delivered to this node.
  using RxCallback =
      std::function<void(const net::Message&, net::NodeId from)>;
  /// Called when a frame leaves the MAC: sent successfully, or dropped
  /// (retries exhausted, no slot schedule, radio down, queue flush).
  using TxDoneCallback = std::function<void(
      const net::Message&, net::NodeId next_hop, bool success)>;

  Mac() = default;
  Mac(const Mac&) = delete;
  Mac& operator=(const Mac&) = delete;
  virtual ~Mac() = default;

  /// Queues a message for `next_hop` (net::kBroadcastNode for broadcast).
  /// Returns false (and counts a drop) when the queue is full. The ref
  /// form is the hot path: the queue, the frame on the air and every
  /// hearer share one pooled payload.
  virtual bool enqueue(net::MessageRef msg, net::NodeId next_hop) = 0;
  bool enqueue(net::Message msg, net::NodeId next_hop) {
    return enqueue(net::make_message(std::move(msg)), next_hop);
  }

  void set_rx_callback(RxCallback cb) { rx_cb_ = std::move(cb); }
  void set_tx_done_callback(TxDoneCallback cb) { tx_done_cb_ = std::move(cb); }

  /// True when nothing is queued or in flight.
  virtual bool idle() const = 0;
  virtual std::size_t queue_size() const = 0;
  virtual const Stats& stats() const = 0;

  /// Fails every queued frame (used when the owner powers the radio down
  /// with traffic pending — BCP aborting a session).
  virtual void flush_queue() = 0;

  /// Crash reset: cancels every pending timer and silently discards all
  /// state — queued frames (their pooled payload refs included) and any
  /// in-progress transmit cycle. Unlike flush_queue, no tx_done callbacks
  /// fire: the owner is crashing, and its upper layers are being reset
  /// with it. Counted in Stats::crash_drops/crash_resets.
  virtual void reset_on_crash() = 0;

  /// Node recovery hook, called after the owner powers its radio back on.
  /// Contention MACs need nothing (the next enqueue restarts the cycle);
  /// schedule-driven MACs re-arm their clocks (the TDMA coordinator
  /// resumes beaconing, members wait to re-sync).
  virtual void on_recover() {}

 protected:
  RxCallback rx_cb_;
  TxDoneCallback tx_done_cb_;
};

}  // namespace bcp::mac

#include "mac/tdma_mac.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/assert.hpp"

namespace bcp::mac {

// ------------------------------------------------------------ TdmaSchedule

TdmaSchedule TdmaSchedule::from_tree(const net::Router& routes,
                                     net::NodeId sink, int node_count) {
  BCP_REQUIRE(node_count >= 1);
  BCP_REQUIRE(sink >= 0 && sink < node_count);
  TdmaSchedule s;
  s.coordinator = sink;
  s.slots_of.assign(static_cast<std::size_t>(node_count), {});
  s.relay.assign(static_cast<std::size_t>(node_count), false);

  // Tree shape from the router's convergecast answers. Stranded nodes
  // (hops < 0) get no slots — they cannot deliver anyway.
  std::vector<int> depth(static_cast<std::size_t>(node_count), -1);
  std::vector<net::NodeId> parent(static_cast<std::size_t>(node_count),
                                  net::kInvalidNode);
  for (net::NodeId id = 0; id < node_count; ++id) {
    depth[static_cast<std::size_t>(id)] = routes.hops(id, sink);
    if (id != sink && depth[static_cast<std::size_t>(id)] > 0)
      parent[static_cast<std::size_t>(id)] = routes.next_hop(id, sink);
  }
  for (net::NodeId id = 0; id < node_count; ++id) {
    const net::NodeId p = parent[static_cast<std::size_t>(id)];
    if (p != net::kInvalidNode && p != sink)
      s.relay[static_cast<std::size_t>(p)] = true;
  }

  // Proportional bandwidth (TreeMAC-style): weight = subtree size, so an
  // interior node can relay everything its descendants source in the same
  // superframe. Summing children into parents in depth-descending order
  // computes all subtree sizes in one pass.
  std::vector<net::NodeId> order;
  order.reserve(static_cast<std::size_t>(node_count));
  for (net::NodeId id = 0; id < node_count; ++id)
    if (id != sink && depth[static_cast<std::size_t>(id)] > 0)
      order.push_back(id);
  std::sort(order.begin(), order.end(),
            [&depth](net::NodeId a, net::NodeId b) {
              const int da = depth[static_cast<std::size_t>(a)];
              const int db = depth[static_cast<std::size_t>(b)];
              return da != db ? da > db : a < b;
            });
  std::vector<int> weight(static_cast<std::size_t>(node_count), 0);
  for (const net::NodeId id : order)
    weight[static_cast<std::size_t>(id)] += 1;  // the node's own source
  for (const net::NodeId id : order) {
    const net::NodeId p = parent[static_cast<std::size_t>(id)];
    if (p != net::kInvalidNode && p != sink)
      weight[static_cast<std::size_t>(p)] +=
          weight[static_cast<std::size_t>(id)];
  }

  // Wave interleave: wave w hands one slot to every node with weight > w,
  // deepest first — children transmit before parents within each wave, so
  // relayed traffic cascades sinkward inside one superframe.
  int max_weight = 0;
  for (const net::NodeId id : order)
    max_weight = std::max(max_weight, weight[static_cast<std::size_t>(id)]);
  int slot = 0;
  for (int wave = 0; wave < max_weight; ++wave)
    for (const net::NodeId id : order)
      if (weight[static_cast<std::size_t>(id)] > wave)
        s.slots_of[static_cast<std::size_t>(id)].push_back(slot++);
  s.slot_count = slot;
  return s;
}

// ----------------------------------------------------------------- TdmaMac

TdmaMac::TdmaMac(sim::Simulator& sim, phy::Radio& radio,
                 const TdmaParams& params, const TdmaSchedule& schedule,
                 std::uint64_t seed)
    : sim_(sim),
      radio_(radio),
      params_(params),
      schedule_(schedule),
      beacon_timer_(sim, [this] { on_beacon_time(); }),
      slot_timer_(sim, [this] { on_slot_start(); }) {
  BCP_REQUIRE_MSG(params_.beacon_period > 0,
                  "TdmaMac needs resolved params (see resolved_for)");
  params_.validate();
  BCP_REQUIRE(schedule_.coordinator != net::kInvalidNode);
  const auto self = static_cast<std::size_t>(radio_.self());
  BCP_REQUIRE(self < schedule_.slots_of.size());
  is_coordinator_ = radio_.self() == schedule_.coordinator;
  relay_ = schedule_.relay[self];
  my_slots_ = schedule_.slots_of[self];
  data_budget_ = params_.slot_len - 2 * params_.guard;
  // The coordinator's clock IS the schedule reference; everyone else
  // drifts at a fixed per-node rate drawn from the seed.
  if (!is_coordinator_) {
    util::Xoshiro256 rng(seed);
    drift_rate_ = rng.uniform(-params_.sync_drift, params_.sync_drift);
  }
  radio_.callbacks().tx_done = [this] { on_radio_tx_done(); };
  radio_.callbacks().frame_received = [this](const phy::Frame& f) {
    on_frame_received(f);
  };
  if (is_coordinator_) arm_beacon();
}

bool TdmaMac::synced() const {
  if (is_coordinator_) return true;
  if (!ever_synced_) return false;
  return sim_.now() < static_cast<double>(sync_superframe_ + 2) *
                          params_.beacon_period;
}

util::Seconds TdmaMac::ideal_data_start(std::uint64_t superframe,
                                        int slot) const {
  const util::Seconds beacon_air =
      params_.preamble +
      static_cast<double>(params_.beacon_bits) / radio_.model().rate;
  return static_cast<double>(superframe) * params_.beacon_period +
         beacon_air + params_.guard +
         static_cast<double>(slot) * params_.slot_len + params_.guard;
}

util::Seconds TdmaMac::airtime(util::Bits payload_bits) const {
  return params_.preamble +
         static_cast<double>(payload_bits + params_.header_bits) /
             radio_.model().rate;
}

bool TdmaMac::enqueue(net::MessageRef msg, net::NodeId next_hop) {
  BCP_REQUIRE(msg);
  BCP_REQUIRE(next_hop == net::kBroadcastNode || next_hop >= 0);
  BCP_REQUIRE(next_hop != radio_.self());
  if (queue_.size() >= params_.max_queue) {
    ++stats_.queue_drops;
    return false;
  }
  ++stats_.enqueued;
  Outgoing out;
  out.size_bits = msg->size_bits();
  out.msg = std::move(msg);
  out.next_hop = next_hop;
  queue_.push_back(std::move(out));
  return true;  // drained by the slot machinery, never inline
}

// ---- coordinator: beacons --------------------------------------------

void TdmaMac::arm_beacon() {
  // Superframe k begins at k * P on the coordinator clock (= sim time).
  const double next =
      static_cast<double>(next_beacon_seq_) * params_.beacon_period;
  beacon_timer_.start(std::max(0.0, next - sim_.now()));
}

void TdmaMac::on_beacon_time() {
  const std::uint64_t seq = next_beacon_seq_++;
  arm_beacon();  // next superframe first — beaconing never stalls
  if (!radio_.ready()) return;  // radio dark this superframe: members coast
  phy::Frame f;
  f.tx_node = radio_.self();
  f.rx_node = net::kBroadcastNode;
  f.kind = phy::FrameKind::kBeacon;
  f.mac_seq = static_cast<std::uint32_t>(seq);
  f.payload_bits = 0;
  f.header_bits = params_.beacon_bits;
  f.preamble = params_.preamble;
  tx_is_beacon_ = true;
  radio_.transmit(f);
}

// ---- member: sync + slots --------------------------------------------

void TdmaMac::arm_next_slot() {
  if (my_slots_.empty() || !ever_synced_ || in_slot_) return;
  const double now = sim_.now();
  const double P = params_.beacon_period;
  std::uint64_t j =
      static_cast<std::uint64_t>(std::max(0.0, std::floor(now / P)));
  for (int hop = 0; hop < 3; ++hop, ++j) {
    for (const int s : my_slots_) {
      const double ideal = ideal_data_start(j, s);
      // Fire on the node's own drifted clock: the error accumulated since
      // the last beacon offsets the ideal instant. The guard absorbs it
      // as long as |drift x elapsed| stays under guard. Candidates are
      // filtered on the drifted fire time — a slot whose (possibly
      // early-running) start is not strictly in the future is gone, and
      // re-arming it would spin the simulator at a fixed instant.
      const double fire = ideal + drift_rate_ * (ideal - sync_time_);
      if (fire <= now + 1e-12) continue;
      pending_superframe_ = j;
      pending_first_ = s == my_slots_.front();
      slot_timer_.start(fire - now);
      return;
    }
  }
}

void TdmaMac::on_slot_start() {
  // The missed-beacon rule: a sync older than two superframes cannot be
  // trusted — stay silent, count the skip, keep the clock running so a
  // future beacon picks scheduling back up.
  if (!synced() || pending_superframe_ >= sync_superframe_ + 2) {
    ++stats_.slots_skipped_unsynced;
    arm_next_slot();
    return;
  }
  if (!radio_.ready()) {  // radio dark/waking: slot lost, schedule goes on
    arm_next_slot();
    return;
  }
  in_slot_ = true;
  slot_end_ = sim_.now() + data_budget_;
  if (relay_ && pending_first_) {
    // Re-broadcast the beacon ahead of data so our children sync for the
    // next superframe; its airtime comes out of our data budget.
    phy::Frame f;
    f.tx_node = radio_.self();
    f.rx_node = net::kBroadcastNode;
    f.kind = phy::FrameKind::kBeacon;
    f.mac_seq = static_cast<std::uint32_t>(pending_superframe_);
    f.payload_bits = 0;
    f.header_bits = params_.beacon_bits;
    f.preamble = params_.preamble;
    tx_is_beacon_ = true;
    radio_.transmit(f);
    return;  // data continues from on_radio_tx_done
  }
  continue_slot();
}

void TdmaMac::continue_slot() {
  BCP_ENSURE(in_slot_);
  while (true) {
    if (!current_) {
      if (queue_.empty()) {
        end_slot();
        return;
      }
      current_.emplace(std::move(queue_.front()));
      queue_.pop_front();
      current_->seq = next_seq_++;
    }
    const util::Seconds air = airtime(current_->size_bits);
    if (air > data_budget_ + 1e-12) {
      // Can never fit in any slot — head-of-line deadlock otherwise.
      ++stats_.oversize_drops;
      finish_current(false);
      continue;
    }
    if (sim_.now() + air > slot_end_ + 1e-12) {
      end_slot();  // keep the frame for our next slot
      return;
    }
    ++stats_.tx_attempts;
    phy::Frame f;
    f.tx_node = radio_.self();
    f.rx_node = current_->next_hop;
    f.kind = phy::FrameKind::kData;
    f.mac_seq = current_->seq;
    f.payload_bits = current_->size_bits;
    f.header_bits = params_.header_bits;
    f.preamble = params_.preamble;
    f.message = current_->msg;
    tx_is_beacon_ = false;
    radio_.transmit(f);
    return;  // resumes in on_radio_tx_done
  }
}

void TdmaMac::end_slot() {
  in_slot_ = false;
  arm_next_slot();
}

void TdmaMac::finish_current(bool success) {
  BCP_ENSURE(current_);
  Outgoing done = std::move(*current_);
  current_.reset();
  if (success)
    ++stats_.tx_success;
  else
    ++stats_.tx_failed;
  if (tx_done_cb_) tx_done_cb_(*done.msg, done.next_hop, success);
}

void TdmaMac::on_radio_tx_done() {
  if (tx_is_beacon_) {
    tx_is_beacon_ = false;
    ++stats_.beacons_sent;
    if (in_slot_) continue_slot();  // relay beacon done — data follows
    return;
  }
  if (!current_) return;  // queue was flushed/reset mid-transmission
  // No acks, no retries: on a collision-free schedule, on-air is
  // delivered; drift-induced overlaps surface as corrupt deliveries at
  // the receiver, not as sender-side failures.
  finish_current(true);
  if (in_slot_) continue_slot();
}

void TdmaMac::on_frame_received(const phy::Frame& frame) {
  if (frame.kind == phy::FrameKind::kBeacon) {
    if (is_coordinator_) return;  // relayed copies of our own schedule
    ++stats_.beacons_heard;
    const auto seq = static_cast<std::uint64_t>(frame.mac_seq);
    if (ever_synced_ && seq < sync_superframe_) return;  // stale relay
    ever_synced_ = true;
    sync_superframe_ = seq;
    sync_time_ = sim_.now();
    arm_next_slot();
    return;
  }
  if (frame.kind != phy::FrameKind::kData) return;
  BCP_ENSURE(frame.message);
  ++stats_.rx_delivered;  // no retransmissions => no duplicates to filter
  if (rx_cb_) rx_cb_(*frame.message, frame.tx_node);
}

// ---- teardown ---------------------------------------------------------

void TdmaMac::flush_queue() {
  util::SlidingQueue<Outgoing> failed;
  failed.swap(queue_);
  if (current_) {
    ++stats_.tx_failed;
    const Outgoing done = std::move(*current_);
    current_.reset();
    if (tx_done_cb_) tx_done_cb_(*done.msg, done.next_hop, false);
  }
  for (auto& out : failed) {
    ++stats_.tx_failed;
    if (tx_done_cb_) tx_done_cb_(*out.msg, out.next_hop, false);
  }
}

void TdmaMac::reset_on_crash() {
  beacon_timer_.cancel();
  slot_timer_.cancel();
  in_slot_ = false;
  tx_is_beacon_ = false;
  ++stats_.crash_resets;
  stats_.crash_drops +=
      static_cast<std::int64_t>(queue_.size()) + (current_ ? 1 : 0);
  current_.reset();
  queue_.clear();
  // A rebooted member forgets its sync (it must hear a fresh beacon); a
  // rebooted coordinator re-arms beaconing from on_recover().
  ever_synced_ = false;
  sync_superframe_ = 0;
  sync_time_ = 0;
}

void TdmaMac::on_recover() {
  if (!is_coordinator_) return;  // members wait for the next beacon
  // Resume beaconing at the next superframe boundary strictly ahead of
  // now — the schedule's absolute timeline never moved while we were down.
  next_beacon_seq_ = static_cast<std::uint64_t>(
                         std::floor(sim_.now() / params_.beacon_period)) +
                     1;
  arm_beacon();
}

}  // namespace bcp::mac

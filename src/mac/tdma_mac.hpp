// Sink-coordinated TDMA: collision-free convergecast slotted access.
//
// The sink (slot-schedule coordinator) broadcasts a beacon at the start of
// every superframe; the schedule itself is computed offline from the
// convergecast tree (TdmaSchedule::from_tree) and shared by every node:
//
//   superframe k:  [ beacon | guard | slot 0 | slot 1 | ... | slot S-1 ]
//                  k*P                                            (k+1)*P
//
// Slot weights are TreeMAC-style proportional bandwidth: a node owns one
// slot per wave for each source in its subtree, and waves are ordered
// children-before-parents, so a packet generated at a leaf can cascade
// hop-by-hop to the sink within a single superframe. Inside its slot a
// node waits the guard time, transmits as many queued frames as fit in
// slot_len - 2*guard, and falls silent; there are no acks, no carrier
// sense and no retransmissions — the schedule is the collision control.
//
// Clock sync is beacon-driven. Nodes that hear the coordinator directly
// re-sync every superframe; interior nodes (relay[] in the schedule)
// re-broadcast the beacon at the start of their first slot, which their
// children use for the NEXT superframe (children transmit before parents,
// so the relayed beacon always lands after the child's own slots). Each
// node's clock drifts at a per-node rate bounded by TdmaParams::sync_drift;
// drift accumulated since the last beacon offsets its slot timing, and the
// guard absorbs it iff |drift x elapsed| <= guard — the overlap
// differential the tests pin down. A node whose sync is older than two
// superframes skips its slots without transmitting (missed-beacon rule).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mac/mac.hpp"
#include "mac/mac_spec.hpp"
#include "net/routing.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/sliding_queue.hpp"

namespace bcp::mac {

/// The shared slot map, computed once per radio class from the
/// convergecast tree and handed (by reference) to every TdmaMac.
struct TdmaSchedule {
  net::NodeId coordinator = net::kInvalidNode;
  int slot_count = 0;
  /// Ascending slot indices owned by each node. The sink owns none (it
  /// only beacons); nodes stranded from the sink own none either.
  std::vector<std::vector<int>> slots_of;
  /// True for nodes with tree children — they re-broadcast the beacon.
  std::vector<bool> relay;

  /// Builds the schedule from any Router that can answer tree queries
  /// (hops/next_hop toward `sink`). Deterministic: a pure function of the
  /// routing answers, independent of thread count or call order.
  static TdmaSchedule from_tree(const net::Router& routes, net::NodeId sink,
                                int node_count);
};

class TdmaMac final : public Mac {
 public:
  /// Base counters plus the schedule-health extras only TDMA has.
  struct Stats : Mac::Stats {
    std::int64_t beacons_sent = 0;
    std::int64_t beacons_heard = 0;
    /// Slots that passed untransmitted because the last beacon was too old
    /// (missed-beacon rule) — the node stayed silent rather than risk a
    /// collision on a schedule it can no longer trust.
    std::int64_t slots_skipped_unsynced = 0;
    /// Frames dropped because their airtime exceeds the slot data budget.
    std::int64_t oversize_drops = 0;
  };

  /// `params` must be resolved (beacon_period > 0; see
  /// TdmaParams::resolved_for). `schedule` is shared and must outlive the
  /// MAC. `seed` draws the node's clock-drift rate.
  TdmaMac(sim::Simulator& sim, phy::Radio& radio, const TdmaParams& params,
          const TdmaSchedule& schedule, std::uint64_t seed);

  bool enqueue(net::MessageRef msg, net::NodeId next_hop) override;
  using Mac::enqueue;

  bool idle() const override { return queue_.empty() && !current_; }
  std::size_t queue_size() const override {
    return queue_.size() + (current_ ? 1 : 0);
  }
  const Stats& stats() const override { return stats_; }
  const TdmaParams& params() const { return params_; }

  bool is_coordinator() const { return is_coordinator_; }
  /// True while the node's last-heard beacon still covers upcoming slots.
  bool synced() const;

  void flush_queue() override;
  void reset_on_crash() override;
  void on_recover() override;

 private:
  struct Outgoing {
    net::MessageRef msg;
    net::NodeId next_hop = net::kInvalidNode;
    util::Bits size_bits = 0;
    std::uint32_t seq = 0;
  };

  void arm_beacon();
  void on_beacon_time();
  void arm_next_slot();
  void on_slot_start();
  void continue_slot();
  void end_slot();
  void finish_current(bool success);
  void on_radio_tx_done();
  void on_frame_received(const phy::Frame& frame);
  util::Seconds ideal_data_start(std::uint64_t superframe, int slot) const;
  util::Seconds airtime(util::Bits payload_bits) const;

  sim::Simulator& sim_;
  phy::Radio& radio_;
  TdmaParams params_;
  const TdmaSchedule& schedule_;
  Stats stats_;

  bool is_coordinator_ = false;
  bool relay_ = false;
  std::vector<int> my_slots_;       ///< ascending slot indices
  double drift_rate_ = 0;           ///< signed s-per-s clock error
  util::Seconds data_budget_ = 0;   ///< slot_len - 2*guard

  util::SlidingQueue<Outgoing> queue_;
  std::optional<Outgoing> current_; ///< popped head, mid-slot
  std::uint32_t next_seq_ = 1;

  // Coordinator side.
  std::uint64_t next_beacon_seq_ = 0;
  sim::Timer beacon_timer_;

  // Member side: sync + the single armed slot.
  bool ever_synced_ = false;
  std::uint64_t sync_superframe_ = 0;
  util::Seconds sync_time_ = 0;
  sim::Timer slot_timer_;
  std::uint64_t pending_superframe_ = 0;
  bool pending_first_ = false;      ///< armed slot is my first this superframe
  bool in_slot_ = false;
  util::Seconds slot_end_ = 0;      ///< data window end, node clock
  bool tx_is_beacon_ = false;
};

}  // namespace bcp::mac

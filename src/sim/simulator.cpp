#include "sim/simulator.hpp"

#include <utility>

#include "util/assert.hpp"

namespace bcp::sim {

Simulator::EventHandle Simulator::schedule_at(TimePoint t, Callback cb) {
  BCP_REQUIRE_MSG(t >= now_, "cannot schedule into the past");
  BCP_REQUIRE(cb != nullptr);
  const std::uint64_t id = next_id_++;
  queue_.push(Event{t, next_seq_++, id, std::move(cb)});
  pending_ids_.insert(id);
  return EventHandle{id};
}

Simulator::EventHandle Simulator::schedule_in(util::Seconds delay,
                                              Callback cb) {
  BCP_REQUIRE_MSG(delay >= 0.0, "negative delay");
  return schedule_at(now_ + delay, std::move(cb));
}

bool Simulator::cancel(EventHandle h) {
  if (!h.valid()) return false;
  if (pending_ids_.erase(h.id) == 0) return false;
  cancelled_.insert(h.id);  // lazily skipped when popped
  return true;
}

bool Simulator::is_pending(EventHandle h) const {
  return h.valid() && pending_ids_.count(h.id) != 0;
}

void Simulator::dispatch_one() {
  Event ev = queue_.top();
  queue_.pop();
  if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
    cancelled_.erase(it);
    return;
  }
  BCP_ENSURE(ev.time >= now_);
  now_ = ev.time;
  pending_ids_.erase(ev.id);
  ++processed_;
  ev.cb();
}

void Simulator::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) dispatch_one();
}

void Simulator::run_until(TimePoint end) {
  BCP_REQUIRE(end >= now_);
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.top().time <= end)
    dispatch_one();
  if (!stopped_) now_ = end;
}

Timer::Timer(Simulator& sim, Simulator::Callback on_expire)
    : sim_(sim), on_expire_(std::move(on_expire)) {
  BCP_REQUIRE(on_expire_ != nullptr);
}

void Timer::start(util::Seconds delay) {
  cancel();
  handle_ = sim_.schedule_in(delay, [this] {
    handle_ = Simulator::EventHandle{};
    on_expire_();
  });
}

void Timer::cancel() {
  if (handle_.valid()) {
    sim_.cancel(handle_);
    handle_ = Simulator::EventHandle{};
  }
}

bool Timer::running() const { return sim_.is_pending(handle_); }

}  // namespace bcp::sim

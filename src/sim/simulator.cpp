#include "sim/simulator.hpp"

#include <utility>

#include "util/assert.hpp"

namespace bcp::sim {

void Simulator::place(Event&& ev, std::size_t i) {
  slot_of_[ev.id] = i;
  heap_[i] = std::move(ev);
}

void Simulator::sift_up(std::size_t i) {
  Event ev = std::move(heap_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!earlier(ev, heap_[parent])) break;
    place(std::move(heap_[parent]), i);
    i = parent;
  }
  place(std::move(ev), i);
}

void Simulator::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  Event ev = std::move(heap_[i]);
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && earlier(heap_[child + 1], heap_[child])) ++child;
    if (!earlier(heap_[child], ev)) break;
    place(std::move(heap_[child]), i);
    i = child;
  }
  place(std::move(ev), i);
}

Simulator::EventHandle Simulator::schedule_at(TimePoint t, Callback cb) {
  BCP_REQUIRE_MSG(t >= now_, "cannot schedule into the past");
  BCP_REQUIRE(cb != nullptr);
  const std::uint64_t id = next_id_++;
  heap_.push_back(Event{t, next_seq_++, id, std::move(cb)});
  slot_of_[id] = heap_.size() - 1;
  sift_up(heap_.size() - 1);
  return EventHandle{id};
}

Simulator::EventHandle Simulator::schedule_in(util::Seconds delay,
                                              Callback cb) {
  BCP_REQUIRE_MSG(delay >= 0.0, "negative delay");
  return schedule_at(now_ + delay, std::move(cb));
}

bool Simulator::cancel(EventHandle h) {
  if (!h.valid()) return false;
  const auto it = slot_of_.find(h.id);
  if (it == slot_of_.end()) return false;
  const std::size_t i = it->second;
  slot_of_.erase(it);
  const std::size_t last = heap_.size() - 1;
  if (i != last) {
    Event moved = std::move(heap_[last]);
    heap_.pop_back();
    const bool goes_up = earlier(moved, heap_[i]);
    place(std::move(moved), i);
    if (goes_up)
      sift_up(i);
    else
      sift_down(i);
  } else {
    heap_.pop_back();
  }
  return true;
}

bool Simulator::is_pending(EventHandle h) const {
  return h.valid() && slot_of_.count(h.id) != 0;
}

void Simulator::dispatch_one() {
  Event ev = std::move(heap_.front());
  slot_of_.erase(ev.id);
  const std::size_t last = heap_.size() - 1;
  if (last > 0) {
    place(std::move(heap_[last]), 0);
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
  BCP_ENSURE(ev.time >= now_);
  now_ = ev.time;
  ++processed_;
  ev.cb();
}

void Simulator::run() {
  stopped_ = false;
  while (!heap_.empty() && !stopped_) dispatch_one();
}

void Simulator::run_until(TimePoint end) {
  BCP_REQUIRE(end >= now_);
  stopped_ = false;
  while (!heap_.empty() && !stopped_ && heap_.front().time <= end)
    dispatch_one();
  if (!stopped_) now_ = end;
}

Timer::Timer(Simulator& sim, Simulator::Callback on_expire)
    : sim_(sim), on_expire_(std::move(on_expire)) {
  BCP_REQUIRE(on_expire_ != nullptr);
}

void Timer::start(util::Seconds delay) {
  cancel();
  handle_ = sim_.schedule_in(delay, [this] {
    handle_ = Simulator::EventHandle{};
    on_expire_();
  });
}

void Timer::cancel() {
  if (handle_.valid()) {
    sim_.cancel(handle_);
    handle_ = Simulator::EventHandle{};
  }
}

bool Timer::running() const { return sim_.is_pending(handle_); }

}  // namespace bcp::sim

#include "sim/simulator.hpp"

#include <utility>

#include "util/assert.hpp"

namespace bcp::sim {

void Simulator::place(const HeapEntry& e, std::size_t i) {
  slots_[e.slot].pos = static_cast<std::uint32_t>(i);
  heap_[i] = e;
}

void Simulator::sift_up(std::size_t i) {
  const HeapEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!earlier(e, heap_[parent])) break;
    place(heap_[parent], i);
    i = parent;
  }
  place(e, i);
}

void Simulator::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const HeapEntry e = heap_[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && earlier(heap_[child + 1], heap_[child])) ++child;
    if (!earlier(heap_[child], e)) break;
    place(heap_[child], i);
    i = child;
  }
  place(e, i);
}

void Simulator::remove_heap_entry(std::size_t i) {
  const std::size_t last = heap_.size() - 1;
  if (i != last) {
    const HeapEntry moved = heap_[last];
    heap_.pop_back();
    const bool goes_up = earlier(moved, heap_[i]);
    place(moved, i);
    if (goes_up)
      sift_up(i);
    else
      sift_down(i);
  } else {
    heap_.pop_back();
  }
}

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].pos;
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(slots_.size());
  BCP_ENSURE_MSG(slot != kNoSlot, "event slot space exhausted");
  slots_.emplace_back();
  return slot;
}

void Simulator::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  // Bump the generation so every outstanding handle to this slot is dead;
  // skip 0, which is reserved for invalid handles.
  if (++s.gen == 0) s.gen = 1;
  s.pos = free_head_;
  free_head_ = slot;
}

Simulator::EventHandle Simulator::schedule_at(TimePoint t, Callback cb) {
  BCP_REQUIRE_MSG(t >= now_, "cannot schedule into the past");
  BCP_REQUIRE(cb != nullptr);
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  s.pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(HeapEntry{t, next_seq_++, slot});
  sift_up(heap_.size() - 1);
  return EventHandle{pack(s.gen, slot)};
}

Simulator::EventHandle Simulator::schedule_in(util::Seconds delay,
                                              Callback cb) {
  BCP_REQUIRE_MSG(delay >= 0.0, "negative delay");
  return schedule_at(now_ + delay, std::move(cb));
}

bool Simulator::cancel(EventHandle h) {
  if (!h.valid()) return false;
  const std::uint32_t slot = slot_of(h.id);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (s.gen != gen_of(h.id)) return false;  // fired or cancelled already
  const std::uint32_t pos = s.pos;
  s.cb.reset();  // release captured state now, not at slot reuse
  release_slot(slot);
  remove_heap_entry(pos);
  return true;
}

bool Simulator::is_pending(EventHandle h) const {
  if (!h.valid()) return false;
  const std::uint32_t slot = slot_of(h.id);
  return slot < slots_.size() && slots_[slot].gen == gen_of(h.id);
}

void Simulator::dispatch_one() {
  const HeapEntry top = heap_.front();
  Slot& s = slots_[top.slot];
  Callback cb = std::move(s.cb);
  // Free the slot before running the callback so is_pending() on the
  // firing event's own handle is already false inside it, and the slot is
  // immediately reusable by whatever the callback schedules.
  release_slot(top.slot);
  remove_heap_entry(0);
  BCP_ENSURE(top.time >= now_);
  now_ = top.time;
  ++processed_;
  cb();
}

void Simulator::run() {
  stopped_ = false;
  while (!heap_.empty() && !stopped_) dispatch_one();
}

void Simulator::clear() {
  for (const HeapEntry& e : heap_) {
    slots_[e.slot].cb.reset();
    release_slot(e.slot);
  }
  heap_.clear();
}

void Simulator::run_until(TimePoint end) {
  BCP_REQUIRE(end >= now_);
  stopped_ = false;
  while (!heap_.empty() && !stopped_ && heap_.front().time <= end)
    dispatch_one();
  if (!stopped_) now_ = end;
}

Timer::Timer(Simulator& sim, Simulator::Callback on_expire)
    : sim_(sim), on_expire_(std::move(on_expire)) {
  BCP_REQUIRE(on_expire_ != nullptr);
}

void Timer::start(util::Seconds delay) {
  cancel();
  handle_ = sim_.schedule_in(delay, [this] {
    handle_ = Simulator::EventHandle{};
    on_expire_();
  });
}

void Timer::cancel() {
  if (handle_.valid()) {
    sim_.cancel(handle_);
    handle_ = Simulator::EventHandle{};
  }
}

bool Timer::running() const { return sim_.is_pending(handle_); }

}  // namespace bcp::sim

#include "sim/fault_plan.hpp"

#include <algorithm>
#include <tuple>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace bcp::sim {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash:   return "node_crash";
    case FaultKind::kNodeRecover: return "node_recover";
    case FaultKind::kLinkDown:    return "link_down";
    case FaultKind::kLinkUp:      return "link_up";
  }
  return "?";
}

namespace {

constexpr double kEarliestFraction = 0.05;  ///< first fault after 5% of run
constexpr double kLatestFraction = 0.70;    ///< last fault by 70% of run
constexpr double kRecoverByFraction = 0.95; ///< all recoveries inside run

/// Down/up event pair times: onset uniform in the fault window, duration
/// exponential with the given mean, clamped so the up event stays inside
/// the horizon (and at least 1 s after the down — churn, not a glitch).
std::pair<util::Seconds, util::Seconds> draw_window(util::Xoshiro256& rng,
                                                    util::Seconds duration,
                                                    util::Seconds mean_down) {
  const util::Seconds at =
      rng.uniform(kEarliestFraction * duration, kLatestFraction * duration);
  const util::Seconds max_down = kRecoverByFraction * duration - at;
  // Floor then ceiling (not std::clamp: very short runs can make the
  // window narrower than the 1 s floor, and the ceiling must win).
  const util::Seconds down =
      std::min(std::max(rng.exponential(mean_down), 1.0), max_down);
  return {at, at + down};
}

/// k distinct values from 0..n-1 excluding `exclude`, via a partial
/// Fisher-Yates over the candidate list. Order of selection is the
/// deterministic draw order, which downstream time draws key off.
std::vector<std::int32_t> sample_nodes(util::Xoshiro256& rng, int n,
                                       std::int32_t exclude, int k) {
  std::vector<std::int32_t> candidates;
  candidates.reserve(static_cast<std::size_t>(n) - 1);
  for (std::int32_t id = 0; id < n; ++id)
    if (id != exclude) candidates.push_back(id);
  BCP_REQUIRE_MSG(static_cast<std::size_t>(k) <= candidates.size(),
                  "more node crashes requested than non-sink nodes exist");
  for (int i = 0; i < k; ++i) {
    const auto j =
        i + static_cast<int>(rng.uniform_int(candidates.size() -
                                             static_cast<std::size_t>(i)));
    std::swap(candidates[static_cast<std::size_t>(i)],
              candidates[static_cast<std::size_t>(j)]);
  }
  candidates.resize(static_cast<std::size_t>(k));
  return candidates;
}

}  // namespace

FaultPlan::FaultPlan(
    const FaultPlanSpec& spec, int node_count, std::int32_t sink,
    util::Seconds duration,
    const std::vector<std::vector<std::int32_t>>* adjacency) {
  BCP_REQUIRE(node_count >= 2);
  BCP_REQUIRE(sink >= 0 && sink < node_count);
  BCP_REQUIRE(duration > 0);
  BCP_REQUIRE(spec.node_crashes >= 0);
  BCP_REQUIRE(spec.link_flaps >= 0);
  BCP_REQUIRE(spec.mean_downtime > 0);
  BCP_REQUIRE(spec.mean_link_downtime > 0);

  util::Xoshiro256 rng(util::substream(spec.seed, 0, /*salt=*/0x464C5421u));

  // Node churn: distinct victims, one down/up window each.
  const std::vector<std::int32_t> victims =
      sample_nodes(rng, node_count, sink, spec.node_crashes);
  for (const std::int32_t node : victims) {
    const auto [down_at, up_at] =
        draw_window(rng, duration, spec.mean_downtime);
    events_.push_back({down_at, FaultKind::kNodeCrash, node, -1});
    events_.push_back({up_at, FaultKind::kNodeRecover, node, -1});
  }

  // Link flaps: prefer real links (adjacency given); de-duplicate pairs so
  // overlapping windows on one link cannot interleave down/down/up.
  std::vector<std::pair<std::int32_t, std::int32_t>> picked;
  int attempts = 0;
  while (static_cast<int>(picked.size()) < spec.link_flaps &&
         attempts < spec.link_flaps * 64) {
    ++attempts;
    std::int32_t a, b;
    if (adjacency != nullptr) {
      a = static_cast<std::int32_t>(
          rng.uniform_int(static_cast<std::uint64_t>(node_count)));
      const auto& nbrs = (*adjacency)[static_cast<std::size_t>(a)];
      if (nbrs.empty()) continue;
      b = nbrs[rng.uniform_int(nbrs.size())];
    } else {
      a = static_cast<std::int32_t>(
          rng.uniform_int(static_cast<std::uint64_t>(node_count)));
      b = static_cast<std::int32_t>(
          rng.uniform_int(static_cast<std::uint64_t>(node_count)));
      if (a == b) continue;
    }
    const auto pair = std::minmax(a, b);
    if (std::find(picked.begin(), picked.end(),
                  std::pair<std::int32_t, std::int32_t>(pair.first,
                                                        pair.second)) !=
        picked.end())
      continue;
    picked.emplace_back(pair.first, pair.second);
    const auto [down_at, up_at] =
        draw_window(rng, duration, spec.mean_link_downtime);
    events_.push_back({down_at, FaultKind::kLinkDown, pair.first,
                       pair.second});
    events_.push_back({up_at, FaultKind::kLinkUp, pair.first, pair.second});
  }
  BCP_REQUIRE_MSG(static_cast<int>(picked.size()) == spec.link_flaps,
                  "could not find enough distinct links to flap");

  // Explicit extras, validated.
  for (const FaultEvent& ev : spec.events) {
    BCP_REQUIRE(ev.at >= 0);
    BCP_REQUIRE(ev.node >= 0 && ev.node < node_count);
    const bool link_event =
        ev.kind == FaultKind::kLinkDown || ev.kind == FaultKind::kLinkUp;
    if (link_event) {
      BCP_REQUIRE(ev.peer >= 0 && ev.peer < node_count);
      BCP_REQUIRE(ev.peer != ev.node);
    } else {
      BCP_REQUIRE_MSG(ev.node != sink,
                      "the sink must stay alive (crash targets the sink)");
    }
    events_.push_back(ev);
  }

  std::sort(events_.begin(), events_.end(),
            [](const FaultEvent& x, const FaultEvent& y) {
              return std::tie(x.at, x.kind, x.node, x.peer) <
                     std::tie(y.at, y.kind, y.node, y.peer);
            });
}

}  // namespace bcp::sim

// Single-threaded discrete-event simulator.
//
// Events are (time, callback) pairs processed in non-decreasing time order;
// events scheduled for the same instant run in FIFO order (a sequence number
// breaks ties), which keeps runs deterministic. Cancellation is lazy: a
// cancelled event stays in the heap and is skipped when popped.
//
// The whole library is single-threaded by design (Core Guidelines CP.1 —
// assume your code will run in a multi-threaded program only where you say
// so); simulations parallelize across *runs* in the bench harnesses, each
// with its own Simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/units.hpp"

namespace bcp::sim {

using TimePoint = util::Seconds;

class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Opaque handle to a scheduled event; value-semantic, cheap to copy.
  /// A default-constructed handle is invalid and never pending.
  struct EventHandle {
    std::uint64_t id = 0;
    bool valid() const { return id != 0; }
  };

  /// Current simulation time. Starts at 0.
  TimePoint now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (>= now).
  EventHandle schedule_at(TimePoint t, Callback cb);

  /// Schedules `cb` after `delay` (>= 0) seconds.
  EventHandle schedule_in(util::Seconds delay, Callback cb);

  /// Cancels a pending event. Returns true if it was pending (and is now
  /// guaranteed not to fire); false if already fired, cancelled, or invalid.
  bool cancel(EventHandle h);

  /// True if the event has neither fired nor been cancelled.
  bool is_pending(EventHandle h) const;

  /// Runs until the queue is empty or stop() is called.
  void run();

  /// Processes every event with time <= `end`, then advances the clock to
  /// exactly `end` (so time-integrating observers can be finalized there).
  void run_until(TimePoint end);

  /// Makes run()/run_until() return after the current callback completes.
  void stop() { stopped_ = true; }

  /// Number of callbacks executed so far (skipped cancellations excluded).
  std::uint64_t processed_count() const { return processed_; }

  /// Number of live (scheduled, not cancelled, not fired) events.
  std::size_t pending_count() const { return pending_ids_.size(); }

 private:
  struct Event {
    TimePoint time;
    std::uint64_t seq;  // FIFO tie-break for equal times
    std::uint64_t id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Pops and runs the earliest live event. Pre: queue has a live event.
  void dispatch_one();

  TimePoint now_ = 0.0;
  bool stopped_ = false;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> pending_ids_;  // live events
  std::unordered_set<std::uint64_t> cancelled_;    // awaiting lazy skip
};

/// Restartable one-shot timer bound to a Simulator. `start` reschedules
/// (cancelling any pending expiry); the callback is fixed at construction.
/// Protocol state machines (MAC retries, BCP handshake timeouts) use this.
class Timer {
 public:
  Timer(Simulator& sim, Simulator::Callback on_expire);

  // The simulator holds no reference back to the timer, but moving would
  // invalidate the `this` captured via the bound callback's closure state in
  // derived users; keep it pinned.
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re)starts the timer to fire after `delay` seconds.
  void start(util::Seconds delay);

  /// Cancels a pending expiry; no-op if not running.
  void cancel();

  /// True if an expiry is pending.
  bool running() const;

 private:
  Simulator& sim_;
  Simulator::Callback on_expire_;
  Simulator::EventHandle handle_;
};

}  // namespace bcp::sim

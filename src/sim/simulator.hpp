// Single-threaded discrete-event simulator.
//
// Events are (time, callback) pairs processed in non-decreasing time order;
// events scheduled for the same instant run in FIFO order (a sequence number
// breaks ties), which keeps runs deterministic. The queue is an *indexed*
// binary heap, so cancellation removes the event immediately (O(log n))
// instead of leaving a tombstone to skip at pop time.
//
// The hot path is allocation-free in steady state:
//   * Callback is a small-buffer inline callable (util::InlineFunction) —
//     captures live inside the event record, never on the heap, and an
//     oversized capture is a compile-time error;
//   * the id -> event mapping is a generation-stamped slot vector with an
//     intrusive free list, not a hash map: scheduling pops a slot, firing
//     or cancelling pushes it back and bumps the slot's generation so
//     stale handles can never alias a recycled slot. Handles pack
//     (generation << 32 | slot), so schedule / cancel / is_pending are
//     array indexing with no hashing and no node allocations;
//   * heap entries are 24-byte (time, seq, slot) records; the callback
//     stays put in its slot while entries sift, so reordering moves no
//     capture state.
// After warm-up (heap and slot vectors at their high-water capacity) a
// schedule/cancel/dispatch cycle performs zero allocations — see
// bench_micro_core's schedule/cancel benchmark and tests/perf_alloc_test.
//
// The whole library is single-threaded by design (Core Guidelines CP.1 —
// assume your code will run in a multi-threaded program only where you say
// so); simulations parallelize across *runs* in the sweep engine
// (app/sweep.hpp), each worker with its own Simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "util/inline_function.hpp"
#include "util/units.hpp"

namespace bcp::sim {

using TimePoint = util::Seconds;

class Simulator {
 public:
  /// Inline, move-only event callback; captures up to
  /// util::kInlineFunctionCapacity bytes, larger captures fail to compile.
  using Callback = util::InlineFunction<void()>;

  /// Opaque handle to a scheduled event; value-semantic, cheap to copy.
  /// A default-constructed handle is invalid and never pending. The id
  /// packs (generation << 32 | slot): recycling a slot bumps its
  /// generation, so handles to fired/cancelled events stay dead forever.
  struct EventHandle {
    std::uint64_t id = 0;
    bool valid() const { return id != 0; }
  };

  /// Current simulation time. Starts at 0.
  TimePoint now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (>= now).
  EventHandle schedule_at(TimePoint t, Callback cb);

  /// Schedules `cb` after `delay` (>= 0) seconds.
  EventHandle schedule_in(util::Seconds delay, Callback cb);

  /// Cancels a pending event, removing it from the queue immediately.
  /// Returns true if it was pending (and is now guaranteed not to fire);
  /// false if already fired, cancelled, or invalid.
  bool cancel(EventHandle h);

  /// True if the event has neither fired nor been cancelled.
  bool is_pending(EventHandle h) const;

  /// Runs until the queue is empty or stop() is called.
  void run();

  /// Processes every event with time <= `end`, then advances the clock to
  /// exactly `end` (so time-integrating observers can be finalized there).
  void run_until(TimePoint end);

  /// Makes run()/run_until() return after the current callback completes.
  void stop() { stopped_ = true; }

  /// Drops every pending event without running it: captured state is
  /// destroyed on the calling thread and all outstanding handles die. The
  /// clock and processed count are preserved. The sharded engine tears a
  /// shard down on its pinned worker thread — pending captures may hold
  /// thread-local pooled payloads that must be released there, not on
  /// whichever thread destroys the Simulator object.
  void clear();

  /// Number of callbacks executed so far (cancelled events excluded).
  std::uint64_t processed_count() const { return processed_; }

  /// Number of live (scheduled, not cancelled, not fired) events.
  std::size_t pending_count() const { return heap_.size(); }

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// Heap entry: ordering key plus the slot holding the callback. Sifts
  /// move 24 bytes and patch the slot's back-pointer.
  struct HeapEntry {
    TimePoint time;
    std::uint64_t seq;  // FIFO tie-break for equal times
    std::uint32_t slot;
  };

  /// One event slot. Live: `pos` is the heap index of its entry. Free:
  /// `pos` links the free list. `gen` starts at 1 and is bumped on every
  /// release; 0 is reserved so a default EventHandle can never match.
  struct Slot {
    std::uint32_t gen = 1;
    std::uint32_t pos = kNoSlot;
    Callback cb;
  };

  static std::uint64_t pack(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<std::uint64_t>(gen) << 32) | slot;
  }
  static std::uint32_t slot_of(std::uint64_t id) {
    return static_cast<std::uint32_t>(id);
  }
  static std::uint32_t gen_of(std::uint64_t id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  /// (time, seq) ordering: true if `a` fires strictly before `b`.
  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  // Indexed-heap plumbing.
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void place(const HeapEntry& e, std::size_t i);  ///< writes heap_[i] + slot pos
  void remove_heap_entry(std::size_t i);

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);

  /// Pops and runs the earliest event. Pre: queue is non-empty.
  void dispatch_one();

  TimePoint now_ = 0.0;
  bool stopped_ = false;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;  // intrusive free list through Slot::pos
};

/// Restartable one-shot timer bound to a Simulator. `start` reschedules
/// (cancelling any pending expiry); the callback is fixed at construction.
/// Protocol state machines (MAC retries, BCP handshake timeouts) use this.
class Timer {
 public:
  Timer(Simulator& sim, Simulator::Callback on_expire);

  // The simulator holds no reference back to the timer, but moving would
  // invalidate the `this` captured via the bound callback's closure state in
  // derived users; keep it pinned.
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re)starts the timer to fire after `delay` seconds.
  void start(util::Seconds delay);

  /// Cancels a pending expiry; no-op if not running.
  void cancel();

  /// True if an expiry is pending.
  bool running() const;

 private:
  Simulator& sim_;
  Simulator::Callback on_expire_;
  Simulator::EventHandle handle_;
};

}  // namespace bcp::sim

// Single-threaded discrete-event simulator.
//
// Events are (time, callback) pairs processed in non-decreasing time order;
// events scheduled for the same instant run in FIFO order (a sequence number
// breaks ties), which keeps runs deterministic. The queue is an *indexed*
// binary heap: a side table maps event ids to heap slots, so cancellation
// removes the event immediately (O(log n)) instead of leaving a tombstone to
// skip at pop time. Cancel-heavy protocol code (MAC retries, BCP timeouts
// that almost always get cancelled) no longer grows the heap with dead
// entries, which keeps per-event overhead flat across large sweeps.
//
// The whole library is single-threaded by design (Core Guidelines CP.1 —
// assume your code will run in a multi-threaded program only where you say
// so); simulations parallelize across *runs* in the sweep engine
// (app/sweep.hpp), each worker with its own Simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "util/units.hpp"

namespace bcp::sim {

using TimePoint = util::Seconds;

class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Opaque handle to a scheduled event; value-semantic, cheap to copy.
  /// A default-constructed handle is invalid and never pending.
  struct EventHandle {
    std::uint64_t id = 0;
    bool valid() const { return id != 0; }
  };

  /// Current simulation time. Starts at 0.
  TimePoint now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (>= now).
  EventHandle schedule_at(TimePoint t, Callback cb);

  /// Schedules `cb` after `delay` (>= 0) seconds.
  EventHandle schedule_in(util::Seconds delay, Callback cb);

  /// Cancels a pending event, removing it from the queue immediately.
  /// Returns true if it was pending (and is now guaranteed not to fire);
  /// false if already fired, cancelled, or invalid.
  bool cancel(EventHandle h);

  /// True if the event has neither fired nor been cancelled.
  bool is_pending(EventHandle h) const;

  /// Runs until the queue is empty or stop() is called.
  void run();

  /// Processes every event with time <= `end`, then advances the clock to
  /// exactly `end` (so time-integrating observers can be finalized there).
  void run_until(TimePoint end);

  /// Makes run()/run_until() return after the current callback completes.
  void stop() { stopped_ = true; }

  /// Number of callbacks executed so far (cancelled events excluded).
  std::uint64_t processed_count() const { return processed_; }

  /// Number of live (scheduled, not cancelled, not fired) events.
  std::size_t pending_count() const { return heap_.size(); }

 private:
  struct Event {
    TimePoint time;
    std::uint64_t seq;  // FIFO tie-break for equal times
    std::uint64_t id;
    Callback cb;
  };

  /// (time, seq) ordering: true if `a` fires strictly before `b`.
  static bool earlier(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  // Indexed-heap plumbing. `slot_of_` tracks each live event's position in
  // `heap_` so erase-by-id is a swap with the last element plus one sift.
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void place(Event&& ev, std::size_t i);  ///< writes heap_[i], updates slot_of_

  /// Pops and runs the earliest event. Pre: queue is non-empty.
  void dispatch_one();

  TimePoint now_ = 0.0;
  bool stopped_ = false;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::vector<Event> heap_;
  std::unordered_map<std::uint64_t, std::size_t> slot_of_;  // id -> heap slot
};

/// Restartable one-shot timer bound to a Simulator. `start` reschedules
/// (cancelling any pending expiry); the callback is fixed at construction.
/// Protocol state machines (MAC retries, BCP handshake timeouts) use this.
class Timer {
 public:
  Timer(Simulator& sim, Simulator::Callback on_expire);

  // The simulator holds no reference back to the timer, but moving would
  // invalidate the `this` captured via the bound callback's closure state in
  // derived users; keep it pinned.
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re)starts the timer to fire after `delay` seconds.
  void start(util::Seconds delay);

  /// Cancels a pending expiry; no-op if not running.
  void cancel();

  /// True if an expiry is pending.
  bool running() const;

 private:
  Simulator& sim_;
  Simulator::Callback on_expire_;
  Simulator::EventHandle handle_;
};

}  // namespace bcp::sim

#include "sim/sharded_simulator.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace bcp::sim {

namespace {

/// Bounded spin before yielding: phases are short (a window of events),
/// so the first iterations usually catch the flip without a syscall; the
/// yield keeps oversubscribed machines (tests run threads > cores) live.
template <typename Pred>
void spin_until(Pred&& ready) {
  int spins = 0;
  while (!ready()) {
    if (++spins >= 256) {
      std::this_thread::yield();
      spins = 0;
    }
  }
}

}  // namespace

ShardedSimulator::ShardedSimulator(Params params) {
  BCP_REQUIRE(params.shards >= 1);
  BCP_REQUIRE(params.window > 0);
  shards_ = params.shards;
  window_ = params.window;
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw <= 0) hw = 1;
  threads_ = params.threads > 0 ? params.threads
                                : std::min(hw, std::max(1, shards_ / 2));
  // More workers than ceil(shards/2) can never be simultaneously busy: a
  // parity phase exposes at most that many shards.
  threads_ = std::min(threads_, (shards_ + 1) / 2);
  sims_.reserve(static_cast<std::size_t>(shards_));
  for (int s = 0; s < shards_; ++s)
    sims_.push_back(std::make_unique<Simulator>());
  drains_.resize(static_cast<std::size_t>(shards_));
  if (threads_ > 1) {
    workers_.reserve(static_cast<std::size_t>(threads_));
    for (int w = 0; w < threads_; ++w)
      workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ShardedSimulator::~ShardedSimulator() {
  if (!workers_.empty()) {
    Job job;
    job.kind = Job::kExit;
    done_count_.store(0, std::memory_order_relaxed);
    job_ = job;
    job_epoch_.fetch_add(1, std::memory_order_release);
    for (auto& t : workers_) t.join();
  }
}

void ShardedSimulator::set_drain(int s, DrainHook hook) {
  BCP_REQUIRE(s >= 0 && s < shards_);
  drains_[static_cast<std::size_t>(s)] = std::move(hook);
}

void ShardedSimulator::worker_loop(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    spin_until([&] {
      return job_epoch_.load(std::memory_order_acquire) != seen;
    });
    ++seen;
    if (job_.kind == Job::kExit) return;  // dtor joins; no done signal needed
    const Job job = job_;
    try {
      execute(worker, job);
    } catch (...) {
      record_error();
    }
    done_count_.fetch_add(1, std::memory_order_release);
  }
}

void ShardedSimulator::record_error() {
  const std::lock_guard<std::mutex> lock(error_mutex_);
  if (!first_error_) first_error_ = std::current_exception();
}

void ShardedSimulator::execute(int worker, const Job& job) {
  for (int s = 0; s < shards_; ++s) {
    if (threads_ > 1 && owner_thread(s) != worker) continue;
    if (job.kind == Job::kPhase) {
      if ((s & 1) != job.parity) continue;
      auto& drain = drains_[static_cast<std::size_t>(s)];
      if (drain) drain(job.window);
      sims_[static_cast<std::size_t>(s)]->run_until(job.end);
    } else {
      (*job.fn)(s);
    }
  }
}

void ShardedSimulator::dispatch(const Job& job) {
  if (workers_.empty()) {
    execute(0, job);
  } else {
    done_count_.store(0, std::memory_order_relaxed);
    job_ = job;
    job_epoch_.fetch_add(1, std::memory_order_release);
    spin_until([&] {
      return done_count_.load(std::memory_order_acquire) == threads_;
    });
  }
  if (first_error_) {
    std::exception_ptr err;
    {
      const std::lock_guard<std::mutex> lock(error_mutex_);
      std::swap(err, first_error_);
    }
    std::rethrow_exception(err);
  }
}

void ShardedSimulator::for_each_shard(const std::function<void(int)>& fn) {
  Job job;
  job.kind = Job::kAll;
  job.fn = &fn;
  dispatch(job);
}

void ShardedSimulator::step_window(util::Seconds end) {
  Job job;
  job.kind = Job::kPhase;
  job.window = window_index_;
  job.end = end;
  job.parity = 0;
  dispatch(job);
  job.parity = 1;
  dispatch(job);
  if (barrier_hook_) barrier_hook_(window_index_, end);
  ++window_index_;
  time_ = end;
}

void ShardedSimulator::run(util::Seconds horizon) {
  BCP_REQUIRE(horizon >= time_);
  while (time_ < horizon) {
    const util::Seconds end = std::min(
        horizon, window_ * static_cast<double>(window_index_ + 1));
    // A shard clock can only be behind the grid when a previous run()
    // ended off-grid; the max keeps run_until monotonic.
    step_window(std::max(end, time_));
  }
  // Settlement: boundary frames emitted during the last window (and the
  // reactions they trigger) still cross; a second round catches the
  // reactions' own boundary frames. Anything later stays undelivered in
  // the mailboxes, exactly like frames still on the air at the horizon.
  step_window(horizon);
  step_window(horizon);
}

std::uint64_t ShardedSimulator::total_processed() const {
  std::uint64_t total = 0;
  for (const auto& s : sims_) total += s->processed_count();
  return total;
}

}  // namespace bcp::sim

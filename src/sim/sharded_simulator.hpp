// Spatially-sharded parallel event engine: one simulation, many queues.
//
// The single-queue Simulator dispatches ~3.6M events/s on one core and
// that is the ceiling for a *run* — sweep-level parallelism (one Simulator
// per worker, app/sweep.hpp) cannot make one 100k-node network go faster.
// ShardedSimulator splits a run into N shards, each with its own Simulator
// (event queue + clock) pinned to a worker thread, and advances them in
// bounded time windows of W seconds.
//
// Why windows and not classic conservative PDES lookahead: the phy layer
// models zero propagation delay (channel.hpp — sub-microsecond at the
// simulated scales), so the natural lookahead between spatial shards is
// zero and exact conservative synchronization degenerates to lockstep.
// Instead the engine runs a *parity-phased* window protocol over spatial
// stripes (phy::ShardMap numbers stripes left to right, so adjacent
// stripes have opposite parity):
//
//   window k:  [barrier]  even shards run [kW, (k+1)W)
//              [barrier]  odd  shards run the same interval
//              [barrier]
//
// Cross-shard traffic travels through mailboxes drained at the start of
// each shard's phase (set_drain). Because odd shards run *after* even
// shards within a window, a frame emitted by an even shard reaches an
// adjacent odd shard with its exact original timing (the odd shard's
// clock is still at kW when it drains); every other direction is replayed
// late by less than W (the channel clamps and re-times late arrivals —
// see phy::Channel::inject_remote). The relaxation is the documented
// price of parallelism: results are exactly reproducible but not
// identical to the single-queue engine's global event interleaving.
//
// Determinism contract: at a fixed shard count, each shard's execution is
// a pure function of (configuration, shard count) — per-shard RNG
// substreams, deterministic drain order (mailboxes merged by (start time,
// source shard)), and a FIFO tie-break inside each queue. The worker
// thread count only changes which OS thread runs a shard, never what the
// shard computes, so metrics and BENCH_*.json output are byte-identical
// across thread counts. The suite's sharded determinism test pins this.
//
// Threading model: shard s is pinned to worker (s/2) % threads (the /2
// keeps each worker loaded in both parity phases). All shard state —
// nodes, channels, pooled message payloads (net::MessagePool is
// thread-local) — must be created, used, and destroyed on that worker:
// run setup and teardown through for_each_shard, which executes a
// callback for every shard on its pinned thread. threads == 1 runs
// everything inline on the caller's thread in ascending shard order.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace bcp::sim {

class ShardedSimulator {
 public:
  struct Params {
    int shards = 2;
    /// Worker threads; 0 = auto (half the shard count, capped at the
    /// hardware), 1 = run every shard inline on the calling thread.
    /// Clamped to ceil(shards/2) — parity phases can never keep more
    /// workers busy than that.
    int threads = 0;
    /// Exchange window W. Smaller = tighter cross-shard timing bound,
    /// more barrier crossings per simulated second.
    util::Seconds window = 0.02;
  };

  explicit ShardedSimulator(Params params);
  ~ShardedSimulator();
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  int shard_count() const { return shards_; }
  int thread_count() const { return threads_; }
  util::Seconds window() const { return window_; }
  /// Worker a shard is pinned to (0 when running inline).
  int owner_thread(int s) const {
    return threads_ > 1 ? (s / 2) % threads_ : 0;
  }

  Simulator& shard(int s) { return *sims_[static_cast<std::size_t>(s)]; }
  const Simulator& shard(int s) const {
    return *sims_[static_cast<std::size_t>(s)];
  }

  /// Index of the window currently (or next) being executed. Stable for
  /// the whole window — both parity phases see the same value — so
  /// mailbox writers may key double-buffering off its parity.
  std::int64_t current_window() const { return window_index_; }

  /// Per-shard pre-phase hook: runs on the shard's pinned thread at the
  /// start of each of its phases, before events are dispatched, with the
  /// window index about to run. This is where cross-shard mailboxes are
  /// drained into the shard's channels.
  using DrainHook = std::function<void(std::int64_t window)>;
  void set_drain(int s, DrainHook hook);

  /// Coordinator barrier hook: runs on the calling thread after both
  /// parity phases of a window have finished and before the next window
  /// starts, with the just-completed window index and the barrier time
  /// every shard has reached. Workers are quiescent here (spinning on the
  /// job epoch), and the dispatch acquire/release pairs order all shard
  /// writes before the hook and all hook writes before the next phase —
  /// so the hook may read and mutate any shard state without extra
  /// synchronization. This is where membership epochs (fault/churn and
  /// battery-death deltas) are published to every shard's LinkState
  /// replica. Also fires after each settlement round at the horizon.
  using BarrierHook = std::function<void(std::int64_t window, util::Seconds barrier_time)>;
  void set_barrier_hook(BarrierHook hook) { barrier_hook_ = std::move(hook); }

  /// Runs fn(shard) for every shard on its pinned worker thread,
  /// concurrently across workers; returns when all shards are done. The
  /// first exception thrown by any shard is rethrown here.
  void for_each_shard(const std::function<void(int shard)>& fn);

  /// Advances every shard to `horizon` window by window, then runs two
  /// settlement rounds at the horizon so boundary frames emitted in the
  /// final windows are still delivered for end-of-run accounting.
  void run(util::Seconds horizon);

  /// Sum of per-shard dispatched event counts.
  std::uint64_t total_processed() const;

 private:
  struct Job {
    enum Kind { kPhase, kAll, kExit };
    Kind kind = kAll;
    int parity = 0;
    std::int64_t window = 0;
    util::Seconds end = 0;
    const std::function<void(int)>* fn = nullptr;
  };

  void worker_loop(int worker);
  void execute(int worker, const Job& job);
  /// Publishes `job` to the workers and blocks until all have finished it
  /// (or executes it inline when there are no workers).
  void dispatch(const Job& job);
  void step_window(util::Seconds end);
  void record_error();

  int shards_ = 0;
  int threads_ = 0;
  util::Seconds window_ = 0;
  std::int64_t window_index_ = 0;
  util::Seconds time_ = 0;  ///< barrier time all shards have reached
  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<DrainHook> drains_;
  BarrierHook barrier_hook_;

  // Worker rendezvous: the caller publishes job_ then release-bumps
  // job_epoch_; each worker acquire-spins on the epoch, runs its shards,
  // and release-bumps done_count_. The acquire/release pairs order every
  // plain field (job_, window_index_, all shard state) across the
  // barrier. Workers are only ever spinning or working between dispatch
  // calls, so the caller may freely mutate shared state in between.
  std::vector<std::thread> workers_;
  Job job_;
  std::atomic<std::uint64_t> job_epoch_{0};
  std::atomic<int> done_count_{0};
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

}  // namespace bcp::sim

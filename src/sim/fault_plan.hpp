// Deterministic fault/churn schedules for a simulation run.
//
// A FaultPlan expands a declarative FaultPlanSpec into a time-sorted list
// of node crash/recover and link down/up events. The expansion is a pure
// function of (spec, node_count, sink, duration, adjacency): the same
// inputs always yield byte-identical schedules, so churn scenarios are as
// reproducible as everything else in the simulator — the fault seed is
// part of a run's identity and is exported in bench metadata.
//
// Generation rules:
//   * `node_crashes` distinct non-sink nodes each crash once, at a time
//     uniform in [5%, 70%] of the run, and recover after an
//     exponentially-distributed downtime (mean `mean_downtime`), clamped
//     so the recovery lands before 95% of the run — every generated crash
//     is observed AND recovered within the horizon.
//   * `link_flaps` distinct links (drawn from `adjacency` when given, so
//     flaps hit real links; arbitrary node pairs otherwise) each go down
//     once and come back up, with the same time rules.
//   * Explicit `events` are merged in and validated (ids in range, no
//     sink crash, non-negative times).
//
// The plan is pure data; app::run_scenario executes it by scheduling one
// simulator event per entry (crashing node assemblies, flipping the
// net::LinkState the channels and DynamicRouting consult).
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.hpp"

namespace bcp::sim {

enum class FaultKind : std::uint8_t {
  kNodeCrash,
  kNodeRecover,
  kLinkDown,
  kLinkUp,
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  util::Seconds at = 0;
  FaultKind kind = FaultKind::kNodeCrash;
  std::int32_t node = -1;  ///< crash/recover target; link endpoint a
  std::int32_t peer = -1;  ///< link endpoint b (link events only)
};

struct FaultPlanSpec {
  int node_crashes = 0;                  ///< generated crash/recover pairs
  util::Seconds mean_downtime = 30.0;    ///< exponential node downtime mean
  int link_flaps = 0;                    ///< generated link down/up pairs
  util::Seconds mean_link_downtime = 20.0;
  std::uint64_t seed = 1;                ///< schedule randomness
  std::vector<FaultEvent> events;        ///< explicit extras, merged in

  bool empty() const {
    return node_crashes == 0 && link_flaps == 0 && events.empty();
  }
};

class FaultPlan {
 public:
  /// Expands `spec` over a `node_count`-node network whose sink is never
  /// crashed. `adjacency` (one neighbour list per node, as produced by the
  /// radio's connectivity graph) steers link flaps onto real links; pass
  /// nullptr to draw arbitrary pairs. Throws std::invalid_argument when
  /// the spec cannot be satisfied (more crashes than non-sink nodes,
  /// explicit events out of range or crashing the sink).
  FaultPlan(const FaultPlanSpec& spec, int node_count, std::int32_t sink,
            util::Seconds duration,
            const std::vector<std::vector<std::int32_t>>* adjacency = nullptr);

  /// The expanded schedule, sorted by (time, kind, node, peer).
  const std::vector<FaultEvent>& events() const { return events_; }

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace bcp::sim

// Protocol observability.
//
// BcpAgent emits a structured event stream through this interface so
// deployments can trace, debug and audit protocol behaviour without
// touching the state machines. All callbacks are optional (default no-op);
// the agent never depends on observer behaviour.
#pragma once

#include <cstdint>

#include "net/message.hpp"
#include "util/units.hpp"

namespace bcp::core {

enum class SessionEnd : std::uint8_t {
  kCompleted,       ///< all frames transferred / received
  kHandshakeFailed, ///< sender gave up waiting for the wake-up ack
  kTimedOut,        ///< receiver data timeout
  kReplaced,        ///< stale receiver session superseded by a new handshake
};

const char* to_string(SessionEnd e);

class BcpObserver {
 public:
  virtual ~BcpObserver() = default;

  virtual void on_packet_buffered(util::Seconds now, net::NodeId next_hop,
                                  const net::DataPacket& packet) {
    (void)now; (void)next_hop; (void)packet;
  }
  virtual void on_wakeup_sent(util::Seconds now, net::NodeId peer,
                              std::uint32_t handshake_id,
                              util::Bits burst_bits, int attempt) {
    (void)now; (void)peer; (void)handshake_id; (void)burst_bits;
    (void)attempt;
  }
  virtual void on_ack_sent(util::Seconds now, net::NodeId peer,
                           std::uint32_t handshake_id,
                           util::Bits granted_bits) {
    (void)now; (void)peer; (void)handshake_id; (void)granted_bits;
  }
  virtual void on_transfer_started(util::Seconds now, net::NodeId peer,
                                   std::uint32_t handshake_id,
                                   std::uint16_t frames) {
    (void)now; (void)peer; (void)handshake_id; (void)frames;
  }
  virtual void on_frame_sent(util::Seconds now, net::NodeId peer,
                             std::uint16_t index, std::uint16_t total) {
    (void)now; (void)peer; (void)index; (void)total;
  }
  virtual void on_frame_received(util::Seconds now, net::NodeId peer,
                                 std::uint16_t index, std::uint16_t total) {
    (void)now; (void)peer; (void)index; (void)total;
  }
  virtual void on_sender_session_ended(util::Seconds now, net::NodeId peer,
                                       SessionEnd how) {
    (void)now; (void)peer; (void)how;
  }
  virtual void on_receiver_session_ended(util::Seconds now,
                                         net::NodeId peer, SessionEnd how) {
    (void)now; (void)peer; (void)how;
  }
  virtual void on_radio_request(util::Seconds now, bool on) {
    (void)now; (void)on;
  }
};

}  // namespace bcp::core

// A BcpObserver that records the protocol event stream and renders it as
// a human-readable transcript or CSV — the library-level counterpart of
// §4.2's "all the events were logged in detail".
#pragma once

#include <string>
#include <vector>

#include "core/bcp_observer.hpp"

namespace bcp::core {

class TraceRecorder final : public BcpObserver {
 public:
  enum class Kind : std::uint8_t {
    kBuffered,
    kWakeupSent,
    kAckSent,
    kTransferStarted,
    kFrameSent,
    kFrameReceived,
    kSenderEnded,
    kReceiverEnded,
    kRadioRequest,
  };

  struct Record {
    util::Seconds time = 0;
    Kind kind = Kind::kBuffered;
    net::NodeId peer = net::kInvalidNode;
    std::int64_t a = 0;  ///< kind-specific (handshake id, frame index, ...)
    std::int64_t b = 0;  ///< kind-specific (bits, total, SessionEnd, ...)
  };

  const std::vector<Record>& records() const { return records_; }
  std::int64_t count(Kind kind) const;
  void clear() { records_.clear(); }

  /// One line per record: "12.340 wakeup-sent peer=5 hs=3 bits=128000".
  std::string transcript() const;

  /// Machine-readable: "time,kind,peer,a,b" with a header row.
  std::string csv() const;

  // BcpObserver:
  void on_packet_buffered(util::Seconds now, net::NodeId next_hop,
                          const net::DataPacket& packet) override;
  void on_wakeup_sent(util::Seconds now, net::NodeId peer,
                      std::uint32_t handshake_id, util::Bits burst_bits,
                      int attempt) override;
  void on_ack_sent(util::Seconds now, net::NodeId peer,
                   std::uint32_t handshake_id,
                   util::Bits granted_bits) override;
  void on_transfer_started(util::Seconds now, net::NodeId peer,
                           std::uint32_t handshake_id,
                           std::uint16_t frames) override;
  void on_frame_sent(util::Seconds now, net::NodeId peer,
                     std::uint16_t index, std::uint16_t total) override;
  void on_frame_received(util::Seconds now, net::NodeId peer,
                         std::uint16_t index, std::uint16_t total) override;
  void on_sender_session_ended(util::Seconds now, net::NodeId peer,
                               SessionEnd how) override;
  void on_receiver_session_ended(util::Seconds now, net::NodeId peer,
                                 SessionEnd how) override;
  void on_radio_request(util::Seconds now, bool on) override;

 private:
  void add(util::Seconds t, Kind k, net::NodeId peer, std::int64_t a,
           std::int64_t b);

  std::vector<Record> records_;
};

const char* to_string(TraceRecorder::Kind kind);

}  // namespace bcp::core

// Per-next-hop data accumulation (§3: "Data messages for different
// receivers are buffered separately, so messages for the same next hop can
// be combined and sent to that next hop").
//
// Capacity is shared across next hops — it models the node's RAM (§4.1's
// 5000 × 32 B buffer), not a per-queue quota.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "net/message.hpp"
#include "util/units.hpp"

namespace bcp::core {

class BulkBuffer {
 public:
  explicit BulkBuffer(util::Bits capacity_bits);

  /// Appends a packet to `next_hop`'s queue. Returns false (packet not
  /// stored) if it would exceed the shared capacity.
  bool push(net::NodeId next_hop, const net::DataPacket& packet);

  /// Removes and returns whole packets from the head of `next_hop`'s queue
  /// whose cumulative size does not exceed `budget_bits` (at least one
  /// packet is returned if the queue is non-empty and the first packet
  /// fits; a first packet larger than the budget is NOT popped).
  std::vector<net::DataPacket> pop_up_to(net::NodeId next_hop,
                                         util::Bits budget_bits);

  /// Removes and returns the oldest packet queued for `next_hop`
  /// (nullopt if none). Used by delay-constrained draining.
  std::optional<net::DataPacket> pop_front(net::NodeId next_hop);

  /// Creation time of the oldest packet queued for `next_hop`
  /// (nullopt if none) — the packet whose buffering delay is largest.
  std::optional<util::Seconds> oldest_created_at(net::NodeId next_hop) const;

  util::Bits buffered_bits(net::NodeId next_hop) const;
  util::Bits total_bits() const { return total_bits_; }
  util::Bits capacity_bits() const { return capacity_; }
  util::Bits free_bits() const { return capacity_ - total_bits_; }

  std::size_t packet_count(net::NodeId next_hop) const;
  std::size_t total_packets() const { return total_packets_; }

  /// Next hops with at least one buffered packet, in ascending id order.
  std::vector<net::NodeId> active_next_hops() const;

  /// Discards every buffered packet (crash/reset); returns how many were
  /// dropped.
  std::size_t clear();

 private:
  struct Queue {
    std::vector<net::DataPacket> packets;
    std::size_t head = 0;  // index of the first un-popped packet
    util::Bits bits = 0;
  };

  util::Bits capacity_;
  util::Bits total_bits_ = 0;
  std::size_t total_packets_ = 0;
  std::map<net::NodeId, Queue> queues_;
};

}  // namespace bcp::core

#include "core/trace_recorder.hpp"

#include <algorithm>
#include <cstdio>

namespace bcp::core {

const char* to_string(SessionEnd e) {
  switch (e) {
    case SessionEnd::kCompleted:       return "completed";
    case SessionEnd::kHandshakeFailed: return "handshake-failed";
    case SessionEnd::kTimedOut:        return "timed-out";
    case SessionEnd::kReplaced:        return "replaced";
  }
  return "?";
}

const char* to_string(TraceRecorder::Kind kind) {
  using Kind = TraceRecorder::Kind;
  switch (kind) {
    case Kind::kBuffered:        return "buffered";
    case Kind::kWakeupSent:      return "wakeup-sent";
    case Kind::kAckSent:         return "ack-sent";
    case Kind::kTransferStarted: return "transfer-started";
    case Kind::kFrameSent:       return "frame-sent";
    case Kind::kFrameReceived:   return "frame-received";
    case Kind::kSenderEnded:     return "sender-ended";
    case Kind::kReceiverEnded:   return "receiver-ended";
    case Kind::kRadioRequest:    return "radio-request";
  }
  return "?";
}

void TraceRecorder::add(util::Seconds t, Kind k, net::NodeId peer,
                        std::int64_t a, std::int64_t b) {
  records_.push_back(Record{t, k, peer, a, b});
}

std::int64_t TraceRecorder::count(Kind kind) const {
  return std::count_if(records_.begin(), records_.end(),
                       [&](const Record& r) { return r.kind == kind; });
}

std::string TraceRecorder::transcript() const {
  std::string out;
  char line[160];
  for (const auto& r : records_) {
    std::snprintf(line, sizeof line, "%10.4f  %-16s peer=%d a=%lld b=%lld\n",
                  r.time, to_string(r.kind), r.peer,
                  static_cast<long long>(r.a), static_cast<long long>(r.b));
    out += line;
  }
  return out;
}

std::string TraceRecorder::csv() const {
  std::string out = "time,kind,peer,a,b\n";
  char line[160];
  for (const auto& r : records_) {
    std::snprintf(line, sizeof line, "%.6f,%s,%d,%lld,%lld\n", r.time,
                  to_string(r.kind), r.peer, static_cast<long long>(r.a),
                  static_cast<long long>(r.b));
    out += line;
  }
  return out;
}

void TraceRecorder::on_packet_buffered(util::Seconds now,
                                       net::NodeId next_hop,
                                       const net::DataPacket& packet) {
  add(now, Kind::kBuffered, next_hop, packet.seq, packet.payload_bits);
}

void TraceRecorder::on_wakeup_sent(util::Seconds now, net::NodeId peer,
                                   std::uint32_t handshake_id,
                                   util::Bits burst_bits, int attempt) {
  (void)attempt;
  add(now, Kind::kWakeupSent, peer, handshake_id, burst_bits);
}

void TraceRecorder::on_ack_sent(util::Seconds now, net::NodeId peer,
                                std::uint32_t handshake_id,
                                util::Bits granted_bits) {
  add(now, Kind::kAckSent, peer, handshake_id, granted_bits);
}

void TraceRecorder::on_transfer_started(util::Seconds now, net::NodeId peer,
                                        std::uint32_t handshake_id,
                                        std::uint16_t frames) {
  add(now, Kind::kTransferStarted, peer, handshake_id, frames);
}

void TraceRecorder::on_frame_sent(util::Seconds now, net::NodeId peer,
                                  std::uint16_t index, std::uint16_t total) {
  add(now, Kind::kFrameSent, peer, index, total);
}

void TraceRecorder::on_frame_received(util::Seconds now, net::NodeId peer,
                                      std::uint16_t index,
                                      std::uint16_t total) {
  add(now, Kind::kFrameReceived, peer, index, total);
}

void TraceRecorder::on_sender_session_ended(util::Seconds now,
                                            net::NodeId peer,
                                            SessionEnd how) {
  add(now, Kind::kSenderEnded, peer, static_cast<std::int64_t>(how), 0);
}

void TraceRecorder::on_receiver_session_ended(util::Seconds now,
                                              net::NodeId peer,
                                              SessionEnd how) {
  add(now, Kind::kReceiverEnded, peer, static_cast<std::int64_t>(how), 0);
}

void TraceRecorder::on_radio_request(util::Seconds now, bool on) {
  add(now, Kind::kRadioRequest, net::kInvalidNode, on ? 1 : 0, 0);
}

}  // namespace bcp::core

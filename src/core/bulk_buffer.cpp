#include "core/bulk_buffer.hpp"

#include "util/assert.hpp"

namespace bcp::core {

BulkBuffer::BulkBuffer(util::Bits capacity_bits) : capacity_(capacity_bits) {
  BCP_REQUIRE(capacity_bits > 0);
}

bool BulkBuffer::push(net::NodeId next_hop, const net::DataPacket& packet) {
  BCP_REQUIRE(next_hop >= 0);
  BCP_REQUIRE(packet.payload_bits > 0);
  if (total_bits_ + packet.payload_bits > capacity_) return false;
  Queue& q = queues_[next_hop];
  q.packets.push_back(packet);
  q.bits += packet.payload_bits;
  total_bits_ += packet.payload_bits;
  ++total_packets_;
  return true;
}

std::vector<net::DataPacket> BulkBuffer::pop_up_to(net::NodeId next_hop,
                                                   util::Bits budget_bits) {
  BCP_REQUIRE(budget_bits >= 0);
  std::vector<net::DataPacket> out;
  const auto it = queues_.find(next_hop);
  if (it == queues_.end()) return out;
  Queue& q = it->second;
  // Size the result in one allocation: count the prefix that fits first
  // (index arithmetic only), then copy it.
  util::Bits used = 0;
  std::size_t take = 0;
  while (q.head + take < q.packets.size()) {
    const util::Bits bits = q.packets[q.head + take].payload_bits;
    if (used + bits > budget_bits) break;
    used += bits;
    ++take;
  }
  out.reserve(take);
  out.insert(out.end(),
             q.packets.begin() + static_cast<std::ptrdiff_t>(q.head),
             q.packets.begin() + static_cast<std::ptrdiff_t>(q.head + take));
  q.head += take;
  q.bits -= used;
  total_bits_ -= used;
  total_packets_ -= take;
  // A drained queue is reset but kept: its vector's capacity (and its map
  // node) are reused by the next burst toward this hop instead of churning
  // the allocator every push/pop cycle.
  if (q.head == q.packets.size()) {
    q.packets.clear();
    q.head = 0;
  } else if (q.head > q.packets.size() / 2) {
    q.packets.erase(q.packets.begin(),
                    q.packets.begin() + static_cast<std::ptrdiff_t>(q.head));
    q.head = 0;
  }
  return out;
}

std::optional<net::DataPacket> BulkBuffer::pop_front(net::NodeId next_hop) {
  const auto it = queues_.find(next_hop);
  if (it == queues_.end() || it->second.head >= it->second.packets.size())
    return std::nullopt;
  Queue& q = it->second;
  net::DataPacket p = q.packets[q.head];
  q.bits -= p.payload_bits;
  total_bits_ -= p.payload_bits;
  --total_packets_;
  ++q.head;
  if (q.head == q.packets.size()) {
    q.packets.clear();
    q.head = 0;
  }
  return p;
}

std::optional<util::Seconds> BulkBuffer::oldest_created_at(
    net::NodeId next_hop) const {
  const auto it = queues_.find(next_hop);
  if (it == queues_.end() || it->second.head >= it->second.packets.size())
    return std::nullopt;
  const Queue& q = it->second;
  return q.packets[q.head].created_at;
}

util::Bits BulkBuffer::buffered_bits(net::NodeId next_hop) const {
  const auto it = queues_.find(next_hop);
  return it == queues_.end() ? 0 : it->second.bits;
}

std::size_t BulkBuffer::packet_count(net::NodeId next_hop) const {
  const auto it = queues_.find(next_hop);
  return it == queues_.end() ? 0 : it->second.packets.size() - it->second.head;
}

std::size_t BulkBuffer::clear() {
  const std::size_t dropped = total_packets_;
  queues_.clear();
  total_bits_ = 0;
  total_packets_ = 0;
  return dropped;
}

std::vector<net::NodeId> BulkBuffer::active_next_hops() const {
  std::vector<net::NodeId> hops;
  hops.reserve(queues_.size());
  for (const auto& [id, q] : queues_)
    if (q.bits > 0) hops.push_back(id);
  return hops;
}

}  // namespace bcp::core

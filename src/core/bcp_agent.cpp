#include "core/bcp_agent.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace bcp::core {

namespace {

/// Packs `packets` into BulkFrames of at most `frame_payload_bits` payload
/// each, stamping sender/receiver/handshake and index/total.
std::vector<net::BulkFrame> assemble_frames(
    std::vector<net::DataPacket> packets, net::NodeId sender,
    net::NodeId receiver, std::uint32_t handshake_id,
    util::Bits frame_payload_bits) {
  std::vector<net::BulkFrame> frames;
  net::BulkFrame current;
  util::Bits used = 0;
  const auto flush = [&] {
    if (!current.packets.empty()) {
      current.cache_payload_bits();  // summed once here, O(1) ever after
      frames.push_back(std::move(current));
      current = net::BulkFrame{};
      used = 0;
    }
  };
  for (std::size_t i = 0; i < packets.size(); ++i) {
    net::DataPacket& p = packets[i];
    if (used + p.payload_bits > frame_payload_bits && used > 0) flush();
    // One allocation per frame: bound this frame's packet count by what's
    // left of the burst (frames are usually much smaller than that, but
    // over-reserving a short-lived burst vector beats re-growing it).
    if (current.packets.empty()) current.packets.reserve(packets.size() - i);
    used += p.payload_bits;
    current.packets.push_back(std::move(p));
  }
  flush();
  const auto total = static_cast<std::uint16_t>(frames.size());
  for (std::uint16_t i = 0; i < total; ++i) {
    frames[i].sender = sender;
    frames[i].receiver = receiver;
    frames[i].handshake_id = handshake_id;
    frames[i].index = i;
    frames[i].total = total;
  }
  return frames;
}

}  // namespace

BcpAgent::BcpAgent(BcpHost& host, BcpConfig config)
    : host_(host),
      config_(config),
      buffer_(config.buffer_capacity_bits) {
  config_.validate();
}

std::optional<net::NodeId> BcpAgent::shortcut_for(net::NodeId dest) const {
  const auto it = shortcuts_.find(dest);
  if (it == shortcuts_.end()) return std::nullopt;
  return it->second;
}

net::NodeId BcpAgent::route_next_hop(net::NodeId dest) const {
  if (config_.enable_shortcuts) {
    const auto it = shortcuts_.find(dest);
    if (it != shortcuts_.end()) return it->second;
  }
  return host_.high_next_hop(dest);
}

util::Bits BcpAgent::grantable_bits() const {
  const util::Bits free = buffer_.free_bits() - committed_bits_;
  return std::max<util::Bits>(free, 0);
}

// ---------------------------------------------------------------- sender --

void BcpAgent::submit(net::DataPacket packet) {
  BCP_REQUIRE(packet.payload_bits > 0);
  if (packet.destination == host_.self()) {
    ++stats_.packets_delivered;
    host_.deliver(packet);
    return;
  }
  const net::NodeId next_hop = route_next_hop(packet.destination);
  if (next_hop == net::kInvalidNode) {
    ++stats_.packets_dropped_no_route;
    host_.packet_dropped(packet, "no-route");
    return;
  }
  BCP_ENSURE(next_hop != host_.self());
  if (!buffer_.push(next_hop, packet)) {
    ++stats_.packets_dropped_buffer_full;
    host_.packet_dropped(packet, "buffer-full");
    return;
  }
  ++stats_.packets_buffered;
  if (observer_) observer_->on_packet_buffered(host_.now(), next_hop, packet);
  if (config_.delay_policy != DelayPolicy::kUnbounded)
    arm_deadline(next_hop);
  maybe_start_handshake(next_hop);
}

void BcpAgent::schedule_deadline(net::NodeId next_hop,
                                 util::Seconds delay) {
  if (deadline_timers_.count(next_hop) != 0) return;  // already pending
  deadline_timers_.emplace(
      next_hop, host_.set_timer(delay, [this, next_hop] {
        deadline_timers_.erase(next_hop);
        on_deadline(next_hop);
      }));
}

void BcpAgent::arm_deadline(net::NodeId next_hop) {
  const auto oldest = buffer_.oldest_created_at(next_hop);
  if (!oldest) return;
  schedule_deadline(next_hop,
                    std::max(*oldest + config_.max_buffering_delay -
                                 host_.now(),
                             0.0));
}

void BcpAgent::on_deadline(net::NodeId next_hop) {
  const auto oldest = buffer_.oldest_created_at(next_hop);
  if (!oldest) return;  // drained by a burst in the meantime
  if (*oldest + config_.max_buffering_delay > host_.now()) {
    arm_deadline(next_hop);  // head changed; wait for the new oldest
    return;
  }
  switch (config_.delay_policy) {
    case DelayPolicy::kUnbounded:
      return;
    case DelayPolicy::kFlushHigh:
      // Pay the wake-up for a sub-threshold burst rather than hold data
      // past its deadline. If a session is already moving this queue the
      // flush is a no-op; re-check after a full delay period instead of
      // re-arming on the (already expired) oldest packet, which would
      // spin at the current instant.
      ++stats_.deadline_flushes;
      flush(next_hop);
      schedule_deadline(next_hop, config_.max_buffering_delay);
      return;
    case DelayPolicy::kFallbackLow: {
      // Ship everything already past its deadline over the low-power
      // radio, one routed packet at a time (§5's "send immediately"
      // answer). Unexpired packets keep waiting for the threshold.
      while (true) {
        const auto head = buffer_.oldest_created_at(next_hop);
        if (!head || *head + config_.max_buffering_delay > host_.now())
          break;
        const auto packet = buffer_.pop_front(next_hop);
        BCP_ENSURE(packet.has_value());
        net::Message msg;
        msg.src = host_.self();
        msg.dst = packet->destination;
        msg.body = *packet;
        host_.send_low(net::make_message(std::move(msg)));
        ++stats_.packets_sent_low;
      }
      break;
    }
  }
  arm_deadline(next_hop);
}

void BcpAgent::flush(net::NodeId next_hop) {
  maybe_start_handshake(next_hop, /*force=*/true);
}

void BcpAgent::flush_all() {
  for (const net::NodeId next_hop : buffer_.active_next_hops())
    maybe_start_handshake(next_hop, /*force=*/true);
}

void BcpAgent::maybe_start_handshake(net::NodeId next_hop, bool force) {
  if (sender_sessions_.count(next_hop) != 0) return;
  if (buffer_.buffered_bits(next_hop) <= 0) return;
  if (!force) {
    if (cooldowns_.count(next_hop) != 0) return;
    if (buffer_.buffered_bits(next_hop) < config_.burst_threshold_bits)
      return;
  }
  SenderSession s;
  s.peer = next_hop;
  s.handshake_id = next_handshake_id_++;
  const auto [it, inserted] = sender_sessions_.emplace(next_hop, std::move(s));
  BCP_ENSURE(inserted);
  send_wakeup(it->second);
}

void BcpAgent::send_wakeup(SenderSession& s) {
  // Refresh the advertised burst: data kept arriving since the last try.
  s.offered_bits = buffer_.buffered_bits(s.peer);
  ++stats_.wakeups_sent;
  if (observer_)
    observer_->on_wakeup_sent(host_.now(), s.peer, s.handshake_id,
                              s.offered_bits, s.wakeup_attempts);
  net::Message msg;
  msg.src = host_.self();
  msg.dst = s.peer;
  msg.body = net::WakeupRequest{host_.self(), s.peer, s.handshake_id,
                                s.offered_bits};
  host_.send_low(net::make_message(std::move(msg)));
  const net::NodeId peer = s.peer;
  s.ack_timer = host_.set_timer(config_.wakeup_ack_timeout,
                                [this, peer] { on_ack_timeout(peer); });
}

void BcpAgent::on_ack_timeout(net::NodeId peer) {
  const auto it = sender_sessions_.find(peer);
  if (it == sender_sessions_.end()) return;
  SenderSession& s = it->second;
  if (s.state != SenderSession::State::kWaitAck) return;
  s.ack_timer = BcpHost::kInvalidTimer;
  if (s.wakeup_attempts < config_.max_wakeup_retries) {
    ++s.wakeup_attempts;
    ++stats_.wakeup_retries;
    send_wakeup(s);
    return;
  }
  abandon_handshake(peer);
}

void BcpAgent::abandon_handshake(net::NodeId peer) {
  // Give up; keep the data buffered and retry after a cooldown.
  const auto it = sender_sessions_.find(peer);
  BCP_ENSURE(it != sender_sessions_.end());
  host_.cancel_timer(it->second.ack_timer);
  ++stats_.handshakes_failed;
  if (observer_)
    observer_->on_sender_session_ended(host_.now(), peer,
                                       SessionEnd::kHandshakeFailed);
  sender_sessions_.erase(it);
  const BcpHost::TimerId timer =
      host_.set_timer(config_.handshake_retry_backoff, [this, peer] {
        cooldowns_.erase(peer);
        maybe_start_handshake(peer);
      });
  cooldowns_.emplace(peer, timer);
}

void BcpAgent::on_low_message(const net::Message& msg) {
  BCP_REQUIRE(msg.dst == host_.self());
  if (const auto* req = std::get_if<net::WakeupRequest>(&msg.body)) {
    on_wakeup_request(*req);
  } else if (const auto* ack = std::get_if<net::WakeupAck>(&msg.body)) {
    on_wakeup_ack(*ack);
  } else if (const auto* data = std::get_if<net::DataPacket>(&msg.body)) {
    // Data over the low radio is not part of the evaluated protocol
    // (§5 leaves it as future work) but tolerate it: treat as local input.
    submit(*data);
  } else {
    BCP_ENSURE_MSG(false, "bulk frame routed over the low-power radio");
  }
}

void BcpAgent::on_wakeup_ack(const net::WakeupAck& ack) {
  const auto it = sender_sessions_.find(ack.responder);
  if (it == sender_sessions_.end()) return;  // late ack, session gone
  SenderSession& s = it->second;
  if (s.handshake_id != ack.handshake_id ||
      s.state != SenderSession::State::kWaitAck)
    return;  // duplicate or stale ack
  host_.cancel_timer(s.ack_timer);
  s.ack_timer = BcpHost::kInvalidTimer;
  if (ack.granted_bits <= 0) {
    // Defensive: the paper's receiver stays silent instead of granting 0.
    // Treat it like a failed handshake — back off before asking again.
    abandon_handshake(ack.responder);
    return;
  }
  begin_transfer(s, ack.granted_bits);
}

void BcpAgent::begin_transfer(SenderSession& s, util::Bits granted) {
  const util::Bits budget =
      std::min(granted, buffer_.buffered_bits(s.peer));
  auto packets = buffer_.pop_up_to(s.peer, budget);
  if (packets.empty()) {
    finish_sender_session(s.peer);
    return;
  }
  s.frames = assemble_frames(std::move(packets), host_.self(), s.peer,
                             s.handshake_id, config_.frame_payload_bits);
  s.next_frame = 0;
  if (observer_)
    observer_->on_transfer_started(host_.now(), s.peer, s.handshake_id,
                                   static_cast<std::uint16_t>(s.frames.size()));
  const net::NodeId peer = s.peer;
  s.state = SenderSession::State::kWaking;
  s.holds_radio = true;
  acquire_radio();
  // acquire_radio() may signal readiness reentrantly (hosts whose radio is
  // already awake call on_high_radio_ready() from inside high_radio_on()),
  // in which case the session has advanced — or even completed and been
  // erased. Re-find before touching it.
  const auto it = sender_sessions_.find(peer);
  if (it == sender_sessions_.end()) return;
  if (it->second.state != SenderSession::State::kWaking) return;
  if (host_.high_radio_ready()) {
    it->second.state = SenderSession::State::kTransferring;
    send_next_frame(peer);
  }
  // Otherwise on_high_radio_ready() resumes the session.
}

void BcpAgent::on_high_radio_ready() {
  std::vector<net::NodeId> waking;
  for (const auto& [peer, s] : sender_sessions_)
    if (s.state == SenderSession::State::kWaking) waking.push_back(peer);
  for (const net::NodeId peer : waking) {
    const auto it = sender_sessions_.find(peer);
    if (it == sender_sessions_.end()) continue;
    it->second.state = SenderSession::State::kTransferring;
    send_next_frame(peer);
  }
}

void BcpAgent::send_next_frame(net::NodeId peer) {
  const auto it = sender_sessions_.find(peer);
  BCP_ENSURE(it != sender_sessions_.end());
  SenderSession& s = it->second;
  if (s.next_frame >= s.frames.size()) {
    finish_sender_session(peer);
    return;
  }
  ++stats_.frames_sent;
  if (observer_)
    observer_->on_frame_sent(host_.now(), peer, s.frames[s.next_frame].index,
                             s.frames[s.next_frame].total);
  net::Message msg;
  msg.src = host_.self();
  msg.dst = peer;
  // Each frame ships exactly once at this layer (the MAC owns link-layer
  // retries), so its packets move into the pooled message — the burst's
  // payload is never deep-copied between assembly and delivery.
  msg.body = std::move(s.frames[s.next_frame]);
  host_.send_high(net::make_message(std::move(msg)), peer,
                  [this, peer](bool success) {
    const auto sit = sender_sessions_.find(peer);
    if (sit == sender_sessions_.end()) return;
    if (!success) ++stats_.frames_send_failed;
    ++sit->second.next_frame;
    send_next_frame(peer);
  });
}

void BcpAgent::finish_sender_session(net::NodeId peer) {
  const auto it = sender_sessions_.find(peer);
  BCP_ENSURE(it != sender_sessions_.end());
  const bool held = it->second.holds_radio;
  host_.cancel_timer(it->second.ack_timer);
  ++stats_.sender_sessions_completed;
  if (observer_)
    observer_->on_sender_session_ended(host_.now(), peer,
                                       SessionEnd::kCompleted);
  sender_sessions_.erase(it);
  if (held) {
    if (config_.enable_shortcuts && config_.shortcut_listen_time > 0) {
      // §3 route optimization: linger to overhear the burst being
      // forwarded, then let go of the radio. The epoch guard keeps this
      // (untracked) timer from releasing a hold that a crash() already
      // zeroed.
      host_.set_timer(config_.shortcut_listen_time,
                      [this, e = epoch_] {
                        if (e == epoch_) release_radio();
                      });
    } else {
      release_radio();
    }
  }
  // Data that accumulated during the transfer may already justify the next
  // burst.
  maybe_start_handshake(peer);
}

void BcpAgent::crash() {
  for (auto& [peer, s] : sender_sessions_) host_.cancel_timer(s.ack_timer);
  sender_sessions_.clear();
  for (auto& [peer, r] : receiver_sessions_)
    host_.cancel_timer(r.data_timer);
  receiver_sessions_.clear();
  for (auto& [peer, timer] : cooldowns_) host_.cancel_timer(timer);
  cooldowns_.clear();
  for (auto& [peer, timer] : deadline_timers_) host_.cancel_timer(timer);
  deadline_timers_.clear();
  if (radio_off_timer_ != BcpHost::kInvalidTimer) {
    host_.cancel_timer(radio_off_timer_);
    radio_off_timer_ = BcpHost::kInvalidTimer;
  }
  stats_.packets_lost_to_crash +=
      static_cast<std::int64_t>(buffer_.clear());
  shortcuts_.clear();
  committed_bits_ = 0;
  radio_holds_ = 0;
  ++epoch_;
  ++stats_.crashes;
}

// -------------------------------------------------------------- receiver --

void BcpAgent::on_wakeup_request(const net::WakeupRequest& req) {
  BCP_REQUIRE(req.target == host_.self());
  const auto it = receiver_sessions_.find(req.requester);
  if (it != receiver_sessions_.end()) {
    ReceiverSession& r = it->second;
    if (r.handshake_id == req.handshake_id) {
      // Retransmitted wake-up (our ack was lost or is in flight): re-ack.
      if (r.state == ReceiverSession::State::kWaitData) send_wakeup_ack(r);
      return;
    }
    // The peer moved on to a new handshake; the old session is stale.
    finish_receiver_session(req.requester, SessionEnd::kReplaced);
  }
  const util::Bits grant = std::min(req.burst_bits, grantable_bits());
  if (grant <= 0) {
    // §3: "If the receiver's buffer is full, no ack is sent."
    ++stats_.acks_suppressed_full;
    return;
  }
  ReceiverSession r;
  r.peer = req.requester;
  r.handshake_id = req.handshake_id;
  r.granted_bits = grant;
  committed_bits_ += grant;
  const auto [rit, inserted] =
      receiver_sessions_.emplace(req.requester, std::move(r));
  BCP_ENSURE(inserted);
  acquire_radio();
  ++stats_.acks_sent;
  if (observer_)
    observer_->on_ack_sent(host_.now(), rit->second.peer,
                           rit->second.handshake_id,
                           rit->second.granted_bits);
  send_wakeup_ack(rit->second);
  const net::NodeId peer = req.requester;
  rit->second.data_timer = host_.set_timer(
      config_.first_data_timeout, [this, peer] { on_receiver_timeout(peer); });
}

void BcpAgent::send_wakeup_ack(const ReceiverSession& r) {
  net::Message msg;
  msg.src = host_.self();
  msg.dst = r.peer;
  msg.body =
      net::WakeupAck{host_.self(), r.peer, r.handshake_id, r.granted_bits};
  host_.send_low(net::make_message(std::move(msg)));
}

void BcpAgent::on_bulk_frame(const net::BulkFrame& frame) {
  BCP_REQUIRE(frame.receiver == host_.self());
  const auto it = receiver_sessions_.find(frame.sender);
  if (it == receiver_sessions_.end() ||
      it->second.handshake_id != frame.handshake_id)
    return;  // late frame from an aborted session
  ReceiverSession& r = it->second;
  ++stats_.frames_received;
  if (observer_)
    observer_->on_frame_received(host_.now(), frame.sender, frame.index,
                                 frame.total);
  r.state = ReceiverSession::State::kReceiving;
  r.frames_total = frame.total;
  ++r.frames_received;

  // Release the buffer commitment covered by this frame before re-buffering
  // its packets, so forwarding does not double-reserve.
  const util::Bits covered = std::min(r.granted_bits, frame.payload_bits());
  r.granted_bits -= covered;
  committed_bits_ -= covered;

  for (const auto& p : frame.packets) {
    if (p.destination == host_.self()) {
      ++stats_.packets_delivered;
      host_.deliver(p);
    } else {
      ++stats_.packets_forwarded;
      submit(p);
    }
  }

  const auto sit = receiver_sessions_.find(frame.sender);
  if (sit == receiver_sessions_.end()) return;  // closed reentrantly
  ReceiverSession& rr = sit->second;
  if (rr.frames_received >= frame.total) {
    // "The receiver turns off its high-power radio when it receives the
    // total number of packets advertised."
    ++stats_.receiver_sessions_completed;
    finish_receiver_session(frame.sender, SessionEnd::kCompleted);
  } else {
    host_.cancel_timer(rr.data_timer);
    const net::NodeId peer = frame.sender;
    rr.data_timer = host_.set_timer(config_.inter_frame_timeout, [this, peer] {
      on_receiver_timeout(peer);
    });
  }
}

void BcpAgent::on_receiver_timeout(net::NodeId peer) {
  const auto it = receiver_sessions_.find(peer);
  if (it == receiver_sessions_.end()) return;
  it->second.data_timer = BcpHost::kInvalidTimer;
  ++stats_.receiver_sessions_timed_out;
  finish_receiver_session(peer, SessionEnd::kTimedOut);
}

void BcpAgent::finish_receiver_session(net::NodeId peer, SessionEnd how) {
  if (observer_) observer_->on_receiver_session_ended(host_.now(), peer, how);
  const auto it = receiver_sessions_.find(peer);
  BCP_ENSURE(it != receiver_sessions_.end());
  host_.cancel_timer(it->second.data_timer);
  committed_bits_ -= it->second.granted_bits;
  BCP_ENSURE(committed_bits_ >= 0);
  receiver_sessions_.erase(it);
  release_radio();
}

// ------------------------------------------------------- radio shepherding --

void BcpAgent::acquire_radio() {
  ++radio_holds_;
  if (radio_off_timer_ != BcpHost::kInvalidTimer) {
    host_.cancel_timer(radio_off_timer_);
    radio_off_timer_ = BcpHost::kInvalidTimer;
  }
  if (observer_) observer_->on_radio_request(host_.now(), true);
  host_.high_radio_on();
}

void BcpAgent::release_radio() {
  BCP_ENSURE(radio_holds_ > 0);
  --radio_holds_;
  if (radio_holds_ > 0) return;
  // Linger briefly so an in-flight link ack for the final frame completes.
  radio_off_timer_ =
      host_.set_timer(config_.radio_off_linger, [this] {
        radio_off_timer_ = BcpHost::kInvalidTimer;
        if (radio_holds_ == 0) {
          if (observer_) observer_->on_radio_request(host_.now(), false);
          host_.high_radio_off();
        }
      });
}

// ----------------------------------------------------------------- extras --

void BcpAgent::on_bulk_frame_overheard(const net::BulkFrame& frame) {
  if (!config_.enable_shortcuts) return;
  if (frame.sender == host_.self() || frame.receiver == host_.self()) return;
  if (!host_.high_link_exists(frame.receiver)) return;  // out of our reach
  // §3: hearing our own packets forwarded — "the last node that forwards
  // the packet is set as the next-hop for the following transmissions."
  for (const auto& p : frame.packets) {
    if (p.origin != host_.self()) continue;
    const auto it = shortcuts_.find(p.destination);
    if (it == shortcuts_.end() || it->second != frame.receiver) {
      shortcuts_[p.destination] = frame.receiver;
      ++stats_.shortcuts_learned;
    }
    break;
  }
}

}  // namespace bcp::core

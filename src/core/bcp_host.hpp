// The platform abstraction BCP runs against.
//
// §3 describes BCP as a layer with interfaces to the routing layer and to
// the MAC layers of both radios. BcpHost is exactly that boundary: the
// same BcpAgent runs unmodified on the network simulator (app/sim_host)
// and on the TinyOS-like prototype emulator (emul/), mirroring the paper's
// simulation + Tmote Sky prototype split.
#pragma once

#include <cstdint>

#include "net/message.hpp"
#include "net/message_ref.hpp"
#include "util/inline_function.hpp"
#include "util/units.hpp"

namespace bcp::core {

class BcpHost {
 public:
  using TimerId = std::uint64_t;
  static constexpr TimerId kInvalidTimer = 0;

  /// Timer callbacks are inline (no heap for captures; same type as
  /// sim::Simulator::Callback, so simulator-backed hosts forward them
  /// without re-wrapping).
  using TimerCallback = util::InlineFunction<void()>;
  /// Send completions are deliberately small (24 B captures) so a host
  /// can capture one inside a TimerCallback-sized closure — capture ids
  /// and `this`, not state.
  using SendDone = util::InlineFunction<void(bool), 24>;

  virtual ~BcpHost() = default;

  /// This node's id (both radio addresses map to it; see net::DualAddressMap).
  virtual net::NodeId self() const = 0;

  virtual util::Seconds now() const = 0;

  /// One-shot timer. The callback must not fire after cancel_timer().
  virtual TimerId set_timer(util::Seconds delay, TimerCallback callback) = 0;
  virtual void cancel_timer(TimerId id) = 0;

  /// Sends a routed message over the low-power radio toward msg->dst
  /// (possibly multiple hops; intermediate nodes relay below BCP). The
  /// pooled ref is shared down the MAC/PHY chain, never deep-copied.
  virtual void send_low(net::MessageRef msg) = 0;

  /// Sends one message over the high-power radio to the adjacent `peer`.
  /// `done(success)` fires when the link layer acked the frame (true) or
  /// gave up (false). The high-power radio must be ready.
  virtual void send_high(net::MessageRef msg, net::NodeId peer,
                         SendDone done) = 0;

  /// High-power radio power management. on() is asynchronous: readiness is
  /// signalled through BcpAgent::on_high_radio_ready().
  virtual void high_radio_on() = 0;
  virtual void high_radio_off() = 0;
  virtual bool high_radio_ready() const = 0;

  /// Next hop toward `dest` over the high-power radio topology
  /// (net::kInvalidNode if unreachable).
  virtual net::NodeId high_next_hop(net::NodeId dest) const = 0;

  /// Whether `peer` is directly reachable over the high-power radio. Route
  /// shortcut learning (§3) only adopts next hops this predicate accepts —
  /// overhearing a neighbour forward a burst does not imply the forwarding
  /// *target* is within our own range. Hosts without link knowledge may
  /// keep the permissive default.
  virtual bool high_link_exists(net::NodeId peer) const {
    (void)peer;
    return true;
  }

  /// A data packet reached its final destination at this node.
  virtual void deliver(const net::DataPacket& packet) = 0;

  /// A data packet was lost at this node (buffer full, no route, ...).
  virtual void packet_dropped(const net::DataPacket& packet,
                              const char* reason) = 0;
};

}  // namespace bcp::core

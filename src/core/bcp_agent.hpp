// The Bulk Communication Protocol agent — the paper's §3.
//
// Sender side:
//   * Data packets from the routing layer are buffered per next hop
//     (BulkBuffer); control packets bypass buffering over the low radio.
//   * When a next hop's queue passes the α·s* threshold, a WAKEUP carrying
//     the burst size is sent over the low-power radio (multi-hop if the
//     high-power next hop is farther than one low-radio hop).
//   * The sender keeps its own high-power radio OFF while waiting for the
//     WAKEUP-ACK; on timeout the wake-up is resent, a bounded number of
//     times. The ack carries the receiver's grant; the sender then powers
//     its radio, assembles the granted packets into high-radio frames and
//     ships them.
// Receiver side:
//   * On WAKEUP: grant min(requested, free buffer) — or stay silent when
//     full; power the radio; ack; time out if no data arrives.
//   * Frames are disassembled into the original packets: packets for this
//     node are delivered, others re-enter the buffer toward their own next
//     hop (which is how bursts propagate hop-by-hop in the SH scenario).
//   * The radio turns off as soon as the advertised frame count arrived or
//     a timeout fired.
// The high-power radio is shared by all concurrent sessions through a
// keep-alive count; it powers off (after a short linger for in-flight link
// acks) when the last session ends.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/bcp_config.hpp"
#include "core/bcp_host.hpp"
#include "core/bcp_observer.hpp"
#include "core/bulk_buffer.hpp"
#include "net/message.hpp"

namespace bcp::core {

class BcpAgent {
 public:
  struct Stats {
    std::int64_t packets_buffered = 0;
    std::int64_t packets_dropped_buffer_full = 0;
    std::int64_t packets_dropped_no_route = 0;
    std::int64_t packets_delivered = 0;   ///< final destination was here
    std::int64_t packets_forwarded = 0;   ///< re-buffered toward next hop
    std::int64_t wakeups_sent = 0;
    std::int64_t wakeup_retries = 0;
    std::int64_t acks_sent = 0;
    std::int64_t acks_suppressed_full = 0;///< buffer full -> silent (§3)
    std::int64_t handshakes_failed = 0;   ///< no ack after all retries
    std::int64_t sender_sessions_completed = 0;
    std::int64_t receiver_sessions_completed = 0;
    std::int64_t receiver_sessions_timed_out = 0;
    std::int64_t frames_sent = 0;
    std::int64_t frames_send_failed = 0;
    std::int64_t frames_received = 0;
    std::int64_t shortcuts_learned = 0;
    std::int64_t deadline_flushes = 0;      ///< kFlushHigh deadline firings
    std::int64_t packets_sent_low = 0;      ///< kFallbackLow data over the
                                            ///< low-power radio
    std::int64_t crashes = 0;               ///< crash() invocations
    std::int64_t packets_lost_to_crash = 0; ///< buffered data lost at crash
  };

  BcpAgent(BcpHost& host, BcpConfig config);

  BcpAgent(const BcpAgent&) = delete;
  BcpAgent& operator=(const BcpAgent&) = delete;

  /// Attaches a protocol-event observer (nullptr detaches). Not owned;
  /// must outlive the agent while attached.
  void set_observer(BcpObserver* observer) { observer_ = observer; }

  // ---- Interface to routing (sender side, §3) ----

  /// A data packet to move toward packet.destination. Buffers it (or
  /// delivers it if the destination is this node).
  void submit(net::DataPacket packet);

  /// Starts a handshake toward `next_hop` even below the α·s* threshold
  /// (no-op if nothing is buffered or a session is already active). Lets an
  /// application trade energy for delay, e.g. to drain the buffer at the
  /// end of an experiment or under a deadline (§5 future work).
  void flush(net::NodeId next_hop);

  /// flush() toward every next hop with buffered data.
  void flush_all();

  /// Crash reset (fault injection): cancels every pending host timer —
  /// handshake acks, receiver data timeouts, cooldowns, buffering
  /// deadlines, the radio-off linger — abandons all sessions, discards
  /// the buffer (volatile RAM) and learned shortcuts, and zeroes the
  /// radio hold count. No protocol messages are sent; peers discover the
  /// crash through their own timeouts. The host is expected to reset its
  /// MACs and force its radios off around this call.
  void crash();

  // ---- Interface to the MACs (host upcalls) ----

  /// A low-radio message addressed to this node (wake-up handshake).
  void on_low_message(const net::Message& msg);

  /// A high-radio bulk frame addressed to this node.
  void on_bulk_frame(const net::BulkFrame& frame);

  /// The high-power radio finished its off->on transition.
  void on_high_radio_ready();

  /// A bulk frame overheard in promiscuous mode (route-shortcut learning,
  /// §3; only wired when config.enable_shortcuts).
  void on_bulk_frame_overheard(const net::BulkFrame& frame);

  // ---- Introspection ----

  const BulkBuffer& buffer() const { return buffer_; }
  const Stats& stats() const { return stats_; }
  const BcpConfig& config() const { return config_; }
  bool has_sender_session(net::NodeId peer) const {
    return sender_sessions_.count(peer) != 0;
  }
  bool has_receiver_session(net::NodeId peer) const {
    return receiver_sessions_.count(peer) != 0;
  }
  int radio_hold_count() const { return radio_holds_; }
  /// The learned shortcut next hop toward `dest`, if any.
  std::optional<net::NodeId> shortcut_for(net::NodeId dest) const;

 private:
  struct SenderSession {
    enum class State { kWaitAck, kWaking, kTransferring };
    State state = State::kWaitAck;
    std::uint32_t handshake_id = 0;
    net::NodeId peer = net::kInvalidNode;
    int wakeup_attempts = 0;
    util::Bits offered_bits = 0;
    std::vector<net::BulkFrame> frames;
    std::size_t next_frame = 0;
    BcpHost::TimerId ack_timer = BcpHost::kInvalidTimer;
    bool holds_radio = false;
  };

  struct ReceiverSession {
    enum class State { kWaitData, kReceiving };
    State state = State::kWaitData;
    std::uint32_t handshake_id = 0;
    net::NodeId peer = net::kInvalidNode;
    util::Bits granted_bits = 0;     ///< outstanding buffer commitment
    std::uint16_t frames_received = 0;
    std::optional<std::uint16_t> frames_total;
    BcpHost::TimerId data_timer = BcpHost::kInvalidTimer;
  };

  // Sender path.
  void maybe_start_handshake(net::NodeId next_hop, bool force = false);
  // Delay-constrained buffering (§5 future work).
  void schedule_deadline(net::NodeId next_hop, util::Seconds delay);
  void arm_deadline(net::NodeId next_hop);
  void on_deadline(net::NodeId next_hop);
  void send_wakeup(SenderSession& s);
  void on_wakeup_ack(const net::WakeupAck& ack);
  void on_ack_timeout(net::NodeId peer);
  void abandon_handshake(net::NodeId peer);
  void begin_transfer(SenderSession& s, util::Bits granted);
  void send_next_frame(net::NodeId peer);
  void finish_sender_session(net::NodeId peer);

  // Receiver path.
  void on_wakeup_request(const net::WakeupRequest& req);
  void send_wakeup_ack(const ReceiverSession& r);
  void on_receiver_timeout(net::NodeId peer);
  void finish_receiver_session(net::NodeId peer, SessionEnd how);

  // Shared radio management.
  void acquire_radio();
  void release_radio();

  net::NodeId route_next_hop(net::NodeId dest) const;
  util::Bits grantable_bits() const;

  BcpHost& host_;
  BcpConfig config_;
  BulkBuffer buffer_;
  Stats stats_;
  BcpObserver* observer_ = nullptr;

  std::uint32_t next_handshake_id_ = 1;
  std::map<net::NodeId, SenderSession> sender_sessions_;
  std::map<net::NodeId, ReceiverSession> receiver_sessions_;
  /// Next hops under post-failure cooldown, with the retry timer.
  std::map<net::NodeId, BcpHost::TimerId> cooldowns_;
  /// One pending buffering-deadline timer per next hop (delay policy).
  std::map<net::NodeId, BcpHost::TimerId> deadline_timers_;
  /// Sum of outstanding receiver grants, reserved against the buffer.
  util::Bits committed_bits_ = 0;
  int radio_holds_ = 0;
  BcpHost::TimerId radio_off_timer_ = BcpHost::kInvalidTimer;
  std::map<net::NodeId, net::NodeId> shortcuts_;  // dest -> next hop
  /// Bumped by crash(); untracked timers (the shortcut-listen linger)
  /// capture it and no-op when stale instead of firing into reset state.
  std::uint64_t epoch_ = 0;
};

}  // namespace bcp::core

// BCP protocol parameters (§3 of the paper).
#pragma once

#include "energy/breakeven.hpp"
#include "util/units.hpp"

namespace bcp::core {

/// What to do with data that has waited longer than max_buffering_delay
/// without its queue reaching the α·s* threshold. §5 leaves this as the
/// paper's open question ("is it best to send immediately with the
/// low-power radio or to buffer as much as allowed by the delay
/// constraints and send with the high-power radio?") — both answers are
/// implemented so they can be compared.
enum class DelayPolicy {
  kUnbounded,    ///< the paper's evaluated protocol: wait for the threshold
  kFlushHigh,    ///< deadline: wake the high radio for a sub-threshold burst
  kFallbackLow,  ///< deadline: send the expired packets over the low radio
};

const char* to_string(DelayPolicy p);

struct BcpConfig {
  /// Accumulation threshold α·s* — a node initiates the wake-up handshake
  /// once this much data is buffered for one next hop. §3: if the radio
  /// characteristics are unknown, "α-s* can be set, for instance, 10 K".
  util::Bits burst_threshold_bits = 10 * util::kilobytes(1);

  /// Total per-node buffer (§4.1 uses 5000 × 32 B).
  util::Bits buffer_capacity_bits = 5000 * util::bytes(32);

  /// Payload carried by one high-power-radio frame (§4.1 uses 1024 B).
  util::Bits frame_payload_bits = util::bytes(1024);

  /// Sender: how long to wait for the wake-up ack before resending the
  /// wake-up message ("If the sender times out before receiving an ack, a
  /// wake-up message is resent").
  util::Seconds wakeup_ack_timeout = 3.0;

  /// Sender: wake-up retransmissions before giving up on the handshake.
  int max_wakeup_retries = 3;

  /// Sender: cooldown before re-attempting a failed handshake.
  util::Seconds handshake_retry_backoff = 10.0;

  /// Receiver: radio-on to first data frame ("To avoid waiting for the
  /// sender data indefinitely, the receiver times out and turns its
  /// high-power radio off if it does not receive any data packets").
  util::Seconds first_data_timeout = 3.0;

  /// Receiver: max gap between consecutive frames of one burst.
  util::Seconds inter_frame_timeout = 1.0;

  /// Both sides: grace period between the last session ending and the
  /// radio powering off, so in-flight link-layer acks can complete.
  util::Seconds radio_off_linger = 0.01;

  /// Delay-constrained buffering (§5 future work; see DelayPolicy).
  DelayPolicy delay_policy = DelayPolicy::kUnbounded;
  /// Oldest-packet age that triggers the delay policy.
  util::Seconds max_buffering_delay = 60.0;

  /// §3 route optimization: after transmitting, keep the radio on for
  /// `shortcut_listen_time` to overhear the burst being forwarded and learn
  /// a farther next hop. Off by default (as in the paper's evaluation).
  bool enable_shortcuts = false;
  util::Seconds shortcut_listen_time = 0.25;

  /// Threshold in whole sensor packets of `packet_bits` each — how §4.1
  /// specifies burst sizes (10, 100, 500, 1000, 2500 × 32 B).
  void set_burst_packets(int packets, util::Bits packet_bits);

  /// Derives the threshold from the analytic break-even point: α·s*.
  /// Requires the pair to be feasible (s* exists).
  static BcpConfig from_analysis(const energy::DualRadioAnalysis& analysis,
                                 double alpha);

  /// Sanity-checks invariants (positive sizes, threshold <= capacity, ...).
  void validate() const;
};

}  // namespace bcp::core

#include "core/bcp_config.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace bcp::core {

const char* to_string(DelayPolicy p) {
  switch (p) {
    case DelayPolicy::kUnbounded:   return "unbounded";
    case DelayPolicy::kFlushHigh:   return "flush-high";
    case DelayPolicy::kFallbackLow: return "fallback-low";
  }
  return "?";
}

void BcpConfig::set_burst_packets(int packets, util::Bits packet_bits) {
  BCP_REQUIRE(packets > 0);
  BCP_REQUIRE(packet_bits > 0);
  burst_threshold_bits = static_cast<util::Bits>(packets) * packet_bits;
}

BcpConfig BcpConfig::from_analysis(const energy::DualRadioAnalysis& analysis,
                                   double alpha) {
  BCP_REQUIRE(alpha > 0);
  const auto s_star = analysis.break_even_bits();
  BCP_REQUIRE_MSG(s_star.has_value(),
                  "radio pair has no break-even point — the high-power "
                  "radio never saves energy on this link");
  BcpConfig cfg;
  cfg.burst_threshold_bits = static_cast<util::Bits>(
      std::ceil(alpha * static_cast<double>(*s_star)));
  return cfg;
}

void BcpConfig::validate() const {
  BCP_REQUIRE(burst_threshold_bits > 0);
  BCP_REQUIRE(buffer_capacity_bits > 0);
  BCP_REQUIRE(frame_payload_bits > 0);
  BCP_REQUIRE_MSG(burst_threshold_bits <= buffer_capacity_bits,
                  "threshold exceeds the buffer — it could never trigger");
  BCP_REQUIRE(wakeup_ack_timeout > 0);
  BCP_REQUIRE(max_wakeup_retries >= 0);
  BCP_REQUIRE(handshake_retry_backoff > 0);
  BCP_REQUIRE(first_data_timeout > 0);
  BCP_REQUIRE(inter_frame_timeout > 0);
  BCP_REQUIRE(radio_off_linger >= 0);
  BCP_REQUIRE(shortcut_listen_time >= 0);
  if (delay_policy != DelayPolicy::kUnbounded)
    BCP_REQUIRE(max_buffering_delay > 0);
}

}  // namespace bcp::core

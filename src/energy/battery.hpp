// Finite per-node energy budgets (network-lifetime experiments).
//
// EnergyMeter is an unbounded accumulator; a Battery inverts it into a
// budget. It watches one or two meters (a dual-radio node drains a single
// battery through both radios) and keeps exactly one depletion event armed
// in the simulator: because every meter category draws constant power, the
// depletion instant under the current power state is exactly computable,
// so depletion is an *event*, never a polling loop. The owner re-arms the
// battery from Radio's energy observer whenever a radio changes state.
//
// Depletion fires `on_depleted` once; the owner routes that into the same
// crash teardown fault plans use (app::crash_node), and the death is
// unrecoverable. Wake-up lump charges are indivisible, so a node that dies
// mid-wakeup can overshoot its budget by at most one e_wakeup lump.
#pragma once

#include <array>
#include <functional>

#include "energy/energy_meter.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace bcp::energy {

/// Scenario-level battery knobs (on app::ScenarioConfig). Default-off and
/// golden-protected like capture: with `enabled == false` nothing in the
/// run observes the other fields and every export is byte-identical.
struct BatterySpec {
  bool enabled = false;

  /// Initial charge per radio class, in joules. A node's battery capacity
  /// is the sum over the radio classes it actually owns; a class budget of
  /// zero means that class draws from an infinite source (no battery is
  /// created for nodes whose owned classes are all zero). Defaults are
  /// sized against Table 1: 150 J idles a Mica sensor radio (0.03 W) for
  /// ~5000 s; 600 J idles an always-on Cabletron 802.11 radio (0.83 W)
  /// for ~720 s — the asymmetry the lifetime bench measures.
  util::Joules sensor_initial_j = 150.0;
  util::Joules wifi_initial_j = 600.0;

  /// Weight of the battery fraction in the lifetime-aware route cost
  /// (net::RoutePolicy::kLifetimeAware): entering relay v costs
  /// 1 + lifetime_weight * drawn(v)/capacity(v) hops-equivalent.
  double lifetime_weight = 4.0;

  /// How often lifetime-aware routing re-reads battery fractions
  /// (LinkState::touch() cadence). Unused under kShortestPath.
  util::Seconds reroute_period = 30.0;

  void validate() const;
};

/// Runtime budget for one node. Construct with the node's total capacity
/// and a death action, attach the node's meter(s), then rearm() once after
/// the radios reach their boot state and again on every radio state change
/// (wired via Radio::set_energy_observer).
class Battery {
 public:
  Battery(sim::Simulator& sim, util::Joules capacity,
          std::function<void()> on_depleted);

  Battery(const Battery&) = delete;
  Battery& operator=(const Battery&) = delete;
  ~Battery();

  /// Registers a meter to draw from this battery (at most two).
  void attach(const EnergyMeter* meter);

  /// Recomputes the depletion event from the current draw: cancels any
  /// pending death, then (a) if the budget is already spent, schedules
  /// death *now* (deferred one event so death never runs inside a radio
  /// state-change call stack); (b) if any attached meter draws power,
  /// schedules death at the exactly-computed depletion instant; (c) if
  /// the node draws nothing, leaves no event armed.
  void rearm();

  util::Joules capacity() const { return capacity_; }

  /// Energy drawn so far (sum of attached meters at sim.now()); frozen at
  /// the death snapshot once depleted.
  util::Joules drawn() const;

  util::Joules remaining() const { return capacity_ - drawn(); }
  bool depleted() const { return depleted_; }

  /// Simulation time of depletion; -1 while alive.
  util::Seconds death_time() const { return death_time_; }

 private:
  void die();

  sim::Simulator& sim_;
  util::Joules capacity_;
  std::function<void()> on_depleted_;
  std::array<const EnergyMeter*, 2> meters_{};
  int meter_count_ = 0;
  sim::Simulator::EventHandle death_event_;
  bool depleted_ = false;
  util::Seconds death_time_ = -1.0;
  util::Joules drawn_at_death_ = 0.0;
};

}  // namespace bcp::energy

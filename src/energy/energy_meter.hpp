// Per-radio energy integration.
//
// A radio is always in exactly one energy category; the meter integrates
// power × time per category plus lump charges (wake-up transitions). The
// meter itself is policy-free: it records everything, and a ChargingPolicy
// selects which categories count toward a given evaluation model. That is
// how §4.1 charges the "ideal" sensor model only for tx/rx while charging
// the 802.11 radios for everything.
#pragma once

#include <array>
#include <cstdint>

#include "energy/radio_model.hpp"
#include "util/units.hpp"

namespace bcp::energy {

/// Energy categories. kRx is reception addressed to this node (or broadcast
/// it must process); kOverhear is reception of traffic for someone else.
enum class EnergyCategory : std::uint8_t {
  kOff = 0,
  kSleep,
  kIdle,
  kRx,
  kOverhear,
  kTx,
  kWaking,
  kCount_  // sentinel
};

constexpr std::size_t kEnergyCategoryCount =
    static_cast<std::size_t>(EnergyCategory::kCount_);

const char* to_string(EnergyCategory c);

/// Which categories a model charges for (§4.1's charging rules).
struct ChargingPolicy {
  bool tx = true;
  bool rx = true;
  bool overhear = true;
  bool idle = true;
  bool sleep = true;
  bool wakeup = true;

  /// §4.1 "ideal" sensor model: transmit and receive energy only.
  static ChargingPolicy ideal_tx_rx();
  /// Charge everything (how the 802.11 radios are always charged).
  static ChargingPolicy full();
};

class EnergyMeter {
 public:
  explicit EnergyMeter(const RadioEnergyModel& model);

  /// Moves the radio into category `c` at time `now`, charging the elapsed
  /// interval to the previous category. `now` must be non-decreasing.
  void transition(EnergyCategory c, util::Seconds now);

  EnergyCategory category() const { return current_; }

  /// Charges one off->on wake-up transition lump (model.e_wakeup).
  void add_wakeup_charge();

  /// Adds an arbitrary lump to a category (used by log-replay in emul/).
  void add_lump(EnergyCategory c, util::Joules e);

  /// Closes the current interval at `now` without changing category, so
  /// totals can be read at the end of a run.
  void finalize(util::Seconds now);

  /// Integrated energy of one category (wake-up lumps appear under kWaking).
  util::Joules energy(EnergyCategory c) const;

  /// Time spent in one category.
  util::Seconds duration(EnergyCategory c) const;

  /// Sum over the categories selected by `policy`.
  util::Joules charged_total(const ChargingPolicy& policy) const;

  /// Sum over all categories.
  util::Joules total() const { return charged_total(ChargingPolicy::full()); }

  /// Non-mutating read of total() as of `now`: the closed intervals plus
  /// the still-open one at the current category's draw. Batteries poll
  /// this between transitions without closing the meter's interval.
  util::Joules total_at(util::Seconds now) const {
    return total() + power_of(current_) * (now - last_transition_);
  }

  /// Power draw of the current category — the battery's depletion slope.
  util::Watts current_power() const { return power_of(current_); }

  /// Number of wake-up transitions charged.
  std::int64_t wakeup_count() const { return wakeups_; }

  const RadioEnergyModel& model() const { return model_; }

 private:
  util::Watts power_of(EnergyCategory c) const;

  RadioEnergyModel model_;
  EnergyCategory current_ = EnergyCategory::kOff;
  util::Seconds last_transition_ = 0.0;
  std::int64_t wakeups_ = 0;
  std::array<util::Joules, kEnergyCategoryCount> energy_{};
  std::array<util::Seconds, kEnergyCategoryCount> duration_{};
};

}  // namespace bcp::energy

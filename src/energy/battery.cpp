#include "energy/battery.hpp"

namespace bcp::energy {

void BatterySpec::validate() const {
  if (!enabled) return;
  BCP_REQUIRE_MSG(sensor_initial_j >= 0.0 && wifi_initial_j >= 0.0,
                  "battery budgets must be non-negative");
  BCP_REQUIRE_MSG(sensor_initial_j > 0.0 || wifi_initial_j > 0.0,
                  "an enabled battery needs a positive budget for at least "
                  "one radio class");
  BCP_REQUIRE_MSG(lifetime_weight >= 0.0,
                  "battery lifetime_weight must be non-negative");
  BCP_REQUIRE_MSG(reroute_period > 0.0,
                  "battery reroute_period must be positive");
}

Battery::Battery(sim::Simulator& sim, util::Joules capacity,
                 std::function<void()> on_depleted)
    : sim_(sim), capacity_(capacity), on_depleted_(std::move(on_depleted)) {
  BCP_REQUIRE_MSG(capacity > 0.0, "battery capacity must be positive");
}

Battery::~Battery() { sim_.cancel(death_event_); }

void Battery::attach(const EnergyMeter* meter) {
  BCP_REQUIRE(meter != nullptr);
  BCP_REQUIRE_MSG(meter_count_ < 2, "a battery drains at most two radios");
  meters_[static_cast<std::size_t>(meter_count_++)] = meter;
}

util::Joules Battery::drawn() const {
  if (depleted_) return drawn_at_death_;
  const util::Seconds now = sim_.now();
  util::Joules sum = 0.0;
  for (int i = 0; i < meter_count_; ++i) {
    sum += meters_[static_cast<std::size_t>(i)]->total_at(now);
  }
  return sum;
}

void Battery::rearm() {
  if (depleted_) return;
  sim_.cancel(death_event_);
  const util::Joules rem = remaining();
  if (rem <= 0.0) {
    // Already at (or, after an indivisible wake-up lump, past) the budget.
    // Defer one event so the crash never runs inside Radio::set_state.
    death_event_ = sim_.schedule_in(0.0, [this] { die(); });
    return;
  }
  util::Watts draw = 0.0;
  for (int i = 0; i < meter_count_; ++i) {
    draw += meters_[static_cast<std::size_t>(i)]->current_power();
  }
  if (draw <= 0.0) return;  // dark/asleep at zero power: no depletion ahead
  death_event_ = sim_.schedule_in(rem / draw, [this] { die(); });
}

void Battery::die() {
  if (depleted_) return;
  drawn_at_death_ = drawn();  // snapshot before the flag freezes drawn()
  depleted_ = true;
  death_time_ = sim_.now();
  if (on_depleted_) on_depleted_();
}

}  // namespace bcp::energy

#include "energy/radio_model.hpp"

#include "util/assert.hpp"

namespace bcp::energy {

using util::kbps;
using util::mbps;
using util::milliseconds;
using util::millijoules;
using util::milliwatts;

util::Joules RadioEnergyModel::per_payload_bit(util::Bits payload_bits,
                                               util::Bits header_bits) const {
  BCP_REQUIRE(payload_bits > 0);
  BCP_REQUIRE(header_bits >= 0);
  const double overhead = 1.0 + static_cast<double>(header_bits) /
                                    static_cast<double>(payload_bits);
  return (p_tx + p_rx) / rate * overhead;
}

namespace {

// The paper does not list wake-up latencies; 100 ms is representative of the
// power-up + (re)association time of the era's 802.11 NICs and is the value
// the simulator uses. Only delay (not energy) depends on it: the transition
// energy is the Table 1 Ewakeup lump.
constexpr double kWifiWakeupSeconds = 0.100;

// Noise floors for the capture (SINR) mode: thermal noise over the
// receiver bandwidth plus a typical noise figure — wide-band 802.11 DSSS
// cards land around -94 dBm (-91 for the 11 Mbps rate), the narrowband
// sensor transceivers near -104 dBm (CC2420's wider channel: -98). Only
// consulted when phy::Channel::Params::capture is enabled.
constexpr double kWifiNoiseDbm = -94.0;
constexpr double kSensorNoiseDbm = -104.0;

RadioEnergyModel make(std::string name, RadioClass cls, double rate_bps,
                      double ptx_mw, double prx_mw, double pi_mw,
                      double ewake_mj, double twake_s, double range_m,
                      double noise_dbm) {
  RadioEnergyModel m;
  m.name = std::move(name);
  m.radio_class = cls;
  m.rate = rate_bps;
  m.p_tx = milliwatts(ptx_mw);
  m.p_rx = milliwatts(prx_mw);
  m.p_idle = milliwatts(pi_mw);
  m.p_sleep = 0.0;
  m.e_wakeup = millijoules(ewake_mj);
  m.t_wakeup = twake_s;
  m.range = range_m;
  m.noise_floor_dbm = noise_dbm;
  return m;
}

}  // namespace

const RadioEnergyModel& cabletron_2mbps() {
  static const RadioEnergyModel m =
      make("Cabletron", RadioClass::kHighPower, mbps(2), 1400, 1000, 830,
           1.328, kWifiWakeupSeconds, 250, kWifiNoiseDbm);
  return m;
}

const RadioEnergyModel& lucent_2mbps() {
  static const RadioEnergyModel m =
      make("Lucent-2Mbps", RadioClass::kHighPower, mbps(2), 1327.2, 966.9,
           843.7, 0.6, kWifiWakeupSeconds, 250, kWifiNoiseDbm);
  return m;
}

const RadioEnergyModel& lucent_11mbps() {
  // §2.2: "as the rate increases, the range that can be supported by the
  // IEEE 802.11 radio decreases. Therefore, we assume Lucent (11 Mbps) has
  // the same range as the sensor radio."
  static const RadioEnergyModel m =
      make("Lucent-11Mbps", RadioClass::kHighPower, mbps(11), 1346.1, 900.6,
           739.4, 0.6, kWifiWakeupSeconds, 40, kWifiNoiseDbm + 3.0);
  return m;
}

const RadioEnergyModel& mica() {
  // Mica is the only sensor radio with a Table 1 idle power (30 mW).
  static const RadioEnergyModel m =
      make("Mica", RadioClass::kLowPower, kbps(40), 81, 30, 30, 0, 0, 40,
           kSensorNoiseDbm);
  return m;
}

const RadioEnergyModel& mica2() {
  // Idle power N/A in Table 1 — substitute Prx (listen ≈ receive).
  static const RadioEnergyModel m =
      make("Mica2", RadioClass::kLowPower, kbps(38.4), 42, 29, 29, 0, 0, 40,
           kSensorNoiseDbm);
  return m;
}

const RadioEnergyModel& micaz() {
  // Idle power N/A in Table 1 — substitute Prx (CC2420 listen = receive).
  static const RadioEnergyModel m =
      make("Micaz", RadioClass::kLowPower, kbps(250), 51, 59.1, 59.1, 0, 0, 40,
           kSensorNoiseDbm + 6.0);
  return m;
}

const std::vector<RadioEnergyModel>& radio_catalog() {
  static const std::vector<RadioEnergyModel> all = {
      cabletron_2mbps(), lucent_2mbps(), lucent_11mbps(),
      mica(),            mica2(),        micaz()};
  return all;
}

std::optional<RadioEnergyModel> find_radio(const std::string& name) {
  for (const auto& r : radio_catalog())
    if (r.name == name) return r;
  return std::nullopt;
}

}  // namespace bcp::energy

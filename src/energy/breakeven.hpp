// Break-even analysis for dual-radio systems — §2.1 and §2.2 of the paper.
//
// Implements:
//   Eq. 1  E_L(s)          — energy to move s bits over the low-power radio
//   Eq. 2  E_H(s, R_H)     — energy over the high-power radio, including the
//                            wake-up handshake and idle waiting
//   Eq. 3  s*              — the break-even data size
//   Eq. 4  E^mh_L(s)       — multi-hop low-power cost (fp hops)
//   Eq. 5  E^mh_H(s, R)    — high-power cost with a multi-hop wake-up
// plus the Fig. 4 burst-amortization model (n packets in one burst vs n
// separate wake-ups).
//
// All energies are end-to-end link costs: transmitter + receiver, as in the
// paper (per-hop in the multi-hop variants).
#pragma once

#include <optional>

#include "energy/radio_model.hpp"
#include "util/units.hpp"

namespace bcp::energy {

/// Packetization of one link: payload size ps, header size hs, and the mean
/// transmission count n_i per packet (1 = no retransmissions, the paper's
/// analytic assumption; simulations measure the real value).
struct LinkParams {
  util::Bits payload_bits = 0;     ///< ps
  util::Bits header_bits = 0;      ///< hs
  double retransmissions = 1.0;    ///< n_i >= 1
};

/// §4.1 packetization: 32 B sensor packets, 1024 B 802.11 frames. Header
/// sizes are not in the paper; we use 11 B for the sensor radio (802.15.4
/// MAC + FCS as used by TinyOS on CC2420-class radios) and 52 B for 802.11
/// (MAC 24 + LLC/SNAP 8 + FCS 4 + PLCP preamble-equivalent 16).
LinkParams default_sensor_link();
LinkParams default_wifi_link();

/// Size of one low-radio control message of the wake-up handshake,
/// including its header (wake-up request and ack are this size each).
util::Bits default_wakeup_message_bits();

/// Closed-form dual-radio energy analysis for one (low, high) radio pair.
class DualRadioAnalysis {
 public:
  struct Config {
    RadioEnergyModel low;
    RadioEnergyModel high;
    LinkParams low_link;
    LinkParams high_link;
    /// Total bits sent over the low radio to wake the peer (request + ack).
    util::Bits wakeup_handshake_bits = 0;
    /// Per-radio idle wait; E_idle = 2 · P_i(high) · idle_time (both ends).
    util::Seconds idle_time = 0;
    /// E^L_o and E^H_o — overhearing charges (0 in the paper's analysis).
    util::Joules overhear_low = 0;
    util::Joules overhear_high = 0;
  };

  explicit DualRadioAnalysis(Config cfg);

  /// Standard configuration: default links, one request + one ack wake-up
  /// handshake, no idling, no overhearing — the Fig. 1 setting.
  static DualRadioAnalysis standard(const RadioEnergyModel& low,
                                    const RadioEnergyModel& high);

  const Config& config() const { return cfg_; }

  /// Eq. 1 — low-power radio cost for s payload bits (packet-quantized).
  util::Joules energy_low(util::Bits s) const;

  /// Eq. 2 — high-power radio cost for s payload bits (packet-quantized),
  /// including E^H_wakeup (both ends), E^L_wakeup, and E_idle.
  util::Joules energy_high(util::Bits s) const;

  /// E^H_wakeup + E^L_wakeup + E_idle — the fixed cost a burst amortizes.
  util::Joules wakeup_overhead() const;

  /// E^L_wakeup — the low-radio handshake cost.
  util::Joules low_wakeup_energy() const;

  /// E_idle = 2 · P_i(high) · idle_time.
  util::Joules idle_energy() const;

  /// Effective sender+receiver energy per payload bit on each radio —
  /// the two terms of Eq. 3's denominator.
  util::Joules per_bit_low() const;
  util::Joules per_bit_high() const;

  /// Eq. 3 — break-even size s* in bits. nullopt when the high radio's
  /// per-bit cost is not lower than the low radio's (no crossover exists;
  /// e.g. Cabletron-Micaz, Lucent2-Micaz in Fig. 1).
  std::optional<util::Bits> break_even_bits() const;

  /// Eq. 4 — fp · E_L(s): the low radio takes `forward_progress` hops.
  util::Joules energy_low_multihop(util::Bits s, int forward_progress) const;

  /// Eq. 5 — E_H(s) + (fp-1) · E^L_wakeup: one high-power hop, with the
  /// wake-up message relayed over fp low-radio hops.
  util::Joules energy_high_multihop(util::Bits s, int forward_progress) const;

  /// Multi-hop break-even size; nullopt when infeasible at this progress.
  std::optional<util::Bits> break_even_bits_multihop(
      int forward_progress) const;

  /// 1 - E_H(s)/E_L(s); negative below the break-even point.
  double savings_fraction(util::Bits s) const;

  /// Fig. 4 — savings of sending n full high-radio packets in one burst
  /// versus n wake-ups of one packet each. `idle_before_off` is the time
  /// both radios linger awake after each burst (the "idle" curves use
  /// 100 ms). Returns 0 at n = 1 by construction.
  double burst_savings_fraction(int n_packets,
                                util::Seconds idle_before_off) const;

 private:
  util::Joules packet_quantized_cost(const RadioEnergyModel& radio,
                                     const LinkParams& link,
                                     util::Bits s) const;

  Config cfg_;
};

}  // namespace bcp::energy

#include "energy/breakeven.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace bcp::energy {

LinkParams default_sensor_link() {
  return LinkParams{util::bytes(32), util::bytes(11), 1.0};
}

LinkParams default_wifi_link() {
  return LinkParams{util::bytes(1024), util::bytes(52), 1.0};
}

util::Bits default_wakeup_message_bits() {
  // 16 B of control payload + 11 B sensor-radio header, per message; the
  // handshake is one request plus one ack.
  return util::bytes(16 + 11);
}

DualRadioAnalysis::DualRadioAnalysis(Config cfg) : cfg_(std::move(cfg)) {
  BCP_REQUIRE(cfg_.low.rate > 0 && cfg_.high.rate > 0);
  BCP_REQUIRE(cfg_.low_link.payload_bits > 0);
  BCP_REQUIRE(cfg_.high_link.payload_bits > 0);
  BCP_REQUIRE(cfg_.low_link.retransmissions >= 1.0);
  BCP_REQUIRE(cfg_.high_link.retransmissions >= 1.0);
  BCP_REQUIRE(cfg_.wakeup_handshake_bits >= 0);
  BCP_REQUIRE(cfg_.idle_time >= 0);
}

DualRadioAnalysis DualRadioAnalysis::standard(const RadioEnergyModel& low,
                                              const RadioEnergyModel& high) {
  Config cfg;
  cfg.low = low;
  cfg.high = high;
  cfg.low_link = default_sensor_link();
  cfg.high_link = default_wifi_link();
  cfg.wakeup_handshake_bits = 2 * default_wakeup_message_bits();
  return DualRadioAnalysis(std::move(cfg));
}

util::Joules DualRadioAnalysis::packet_quantized_cost(
    const RadioEnergyModel& radio, const LinkParams& link,
    util::Bits s) const {
  BCP_REQUIRE(s >= 0);
  if (s == 0) return 0.0;
  // ceil(s / ps) full packets of (ps + hs) bits, each transmitted n_i times,
  // paid by both the transmitter and the receiver — the summation of Eq. 1.
  const auto packets =
      (s + link.payload_bits - 1) / link.payload_bits;  // ceil
  const double on_air_bits = static_cast<double>(packets) *
                             static_cast<double>(link.payload_bits +
                                                 link.header_bits) *
                             link.retransmissions;
  return (radio.p_tx + radio.p_rx) / radio.rate * on_air_bits;
}

util::Joules DualRadioAnalysis::energy_low(util::Bits s) const {
  return packet_quantized_cost(cfg_.low, cfg_.low_link, s) +
         cfg_.overhear_low;
}

util::Joules DualRadioAnalysis::energy_high(util::Bits s) const {
  return wakeup_overhead() + cfg_.overhear_high +
         packet_quantized_cost(cfg_.high, cfg_.high_link, s);
}

util::Joules DualRadioAnalysis::low_wakeup_energy() const {
  return (cfg_.low.p_tx + cfg_.low.p_rx) / cfg_.low.rate *
         static_cast<double>(cfg_.wakeup_handshake_bits);
}

util::Joules DualRadioAnalysis::idle_energy() const {
  return 2.0 * cfg_.high.p_idle * cfg_.idle_time;
}

util::Joules DualRadioAnalysis::wakeup_overhead() const {
  // E^H_wakeup covers switching on the high-power radio at both ends.
  const util::Joules high_wakeup = 2.0 * cfg_.high.e_wakeup;
  return high_wakeup + low_wakeup_energy() + idle_energy();
}

util::Joules DualRadioAnalysis::per_bit_low() const {
  return cfg_.low.per_payload_bit(cfg_.low_link.payload_bits,
                                  cfg_.low_link.header_bits) *
         cfg_.low_link.retransmissions;
}

util::Joules DualRadioAnalysis::per_bit_high() const {
  return cfg_.high.per_payload_bit(cfg_.high_link.payload_bits,
                                   cfg_.high_link.header_bits) *
         cfg_.high_link.retransmissions;
}

std::optional<util::Bits> DualRadioAnalysis::break_even_bits() const {
  return break_even_bits_multihop(1);
}

util::Joules DualRadioAnalysis::energy_low_multihop(
    util::Bits s, int forward_progress) const {
  BCP_REQUIRE(forward_progress >= 1);
  // Eq. 4: every one of the fp low-radio hops pays the full link cost.
  return static_cast<double>(forward_progress) * energy_low(s);
}

util::Joules DualRadioAnalysis::energy_high_multihop(
    util::Bits s, int forward_progress) const {
  BCP_REQUIRE(forward_progress >= 1);
  // Eq. 5: the data crosses in one high-power hop; the wake-up message is
  // relayed over the remaining fp-1 low-radio hops.
  return energy_high(s) +
         static_cast<double>(forward_progress - 1) * low_wakeup_energy();
}

std::optional<util::Bits> DualRadioAnalysis::break_even_bits_multihop(
    int forward_progress) const {
  BCP_REQUIRE(forward_progress >= 1);
  const double fp = static_cast<double>(forward_progress);
  const double denominator = fp * per_bit_low() - per_bit_high();
  if (denominator <= 0.0) return std::nullopt;  // high radio never wins
  const double numerator =
      2.0 * cfg_.high.e_wakeup + fp * low_wakeup_energy() + idle_energy();
  return static_cast<util::Bits>(std::ceil(numerator / denominator));
}

double DualRadioAnalysis::savings_fraction(util::Bits s) const {
  const util::Joules low = energy_low(s);
  BCP_REQUIRE(low > 0.0);
  return 1.0 - energy_high(s) / low;
}

double DualRadioAnalysis::burst_savings_fraction(
    int n_packets, util::Seconds idle_before_off) const {
  BCP_REQUIRE(n_packets >= 1);
  BCP_REQUIRE(idle_before_off >= 0);
  // Fixed cost per wake-up episode: both high radios switch on, the
  // handshake crosses the low radio, and both ends linger idle before
  // switching off again.
  const util::Joules wake_cost = 2.0 * cfg_.high.e_wakeup +
                                 low_wakeup_energy() +
                                 2.0 * cfg_.high.p_idle * idle_before_off;
  const util::Joules per_packet =
      (cfg_.high.p_tx + cfg_.high.p_rx) / cfg_.high.rate *
      static_cast<double>(cfg_.high_link.payload_bits +
                          cfg_.high_link.header_bits) *
      cfg_.high_link.retransmissions;
  const double n = static_cast<double>(n_packets);
  const util::Joules burst = wake_cost + n * per_packet;
  const util::Joules separate = n * (wake_cost + per_packet);
  return 1.0 - burst / separate;
}

}  // namespace bcp::energy

#include "energy/energy_meter.hpp"

#include "util/assert.hpp"

namespace bcp::energy {

const char* to_string(EnergyCategory c) {
  switch (c) {
    case EnergyCategory::kOff:      return "off";
    case EnergyCategory::kSleep:    return "sleep";
    case EnergyCategory::kIdle:     return "idle";
    case EnergyCategory::kRx:       return "rx";
    case EnergyCategory::kOverhear: return "overhear";
    case EnergyCategory::kTx:       return "tx";
    case EnergyCategory::kWaking:   return "waking";
    case EnergyCategory::kCount_:   break;
  }
  return "?";
}

ChargingPolicy ChargingPolicy::ideal_tx_rx() {
  ChargingPolicy p;
  p.tx = p.rx = true;
  p.overhear = p.idle = p.sleep = p.wakeup = false;
  return p;
}

ChargingPolicy ChargingPolicy::full() { return ChargingPolicy{}; }

EnergyMeter::EnergyMeter(const RadioEnergyModel& model) : model_(model) {}

util::Watts EnergyMeter::power_of(EnergyCategory c) const {
  switch (c) {
    case EnergyCategory::kOff:      return 0.0;
    case EnergyCategory::kSleep:    return model_.p_sleep;
    case EnergyCategory::kIdle:     return model_.p_idle;
    case EnergyCategory::kRx:       return model_.p_rx;
    case EnergyCategory::kOverhear: return model_.p_rx;
    case EnergyCategory::kTx:       return model_.p_tx;
    // The wake-up transition is charged as the Table 1 lump, not by power
    // integration, so the waking interval itself draws nothing extra.
    case EnergyCategory::kWaking:   return 0.0;
    case EnergyCategory::kCount_:   break;
  }
  BCP_ENSURE_MSG(false, "bad category");
}

void EnergyMeter::transition(EnergyCategory c, util::Seconds now) {
  BCP_REQUIRE(c != EnergyCategory::kCount_);
  finalize(now);
  current_ = c;
}

void EnergyMeter::add_wakeup_charge() {
  energy_[static_cast<std::size_t>(EnergyCategory::kWaking)] +=
      model_.e_wakeup;
  ++wakeups_;
}

void EnergyMeter::add_lump(EnergyCategory c, util::Joules e) {
  BCP_REQUIRE(c != EnergyCategory::kCount_);
  BCP_REQUIRE(e >= 0.0);
  energy_[static_cast<std::size_t>(c)] += e;
}

void EnergyMeter::finalize(util::Seconds now) {
  BCP_REQUIRE_MSG(now >= last_transition_, "time went backwards");
  const util::Seconds dt = now - last_transition_;
  const auto idx = static_cast<std::size_t>(current_);
  energy_[idx] += power_of(current_) * dt;
  duration_[idx] += dt;
  last_transition_ = now;
}

util::Joules EnergyMeter::energy(EnergyCategory c) const {
  BCP_REQUIRE(c != EnergyCategory::kCount_);
  return energy_[static_cast<std::size_t>(c)];
}

util::Seconds EnergyMeter::duration(EnergyCategory c) const {
  BCP_REQUIRE(c != EnergyCategory::kCount_);
  return duration_[static_cast<std::size_t>(c)];
}

util::Joules EnergyMeter::charged_total(const ChargingPolicy& policy) const {
  util::Joules total = 0.0;
  if (policy.tx) total += energy(EnergyCategory::kTx);
  if (policy.rx) total += energy(EnergyCategory::kRx);
  if (policy.overhear) total += energy(EnergyCategory::kOverhear);
  if (policy.idle) total += energy(EnergyCategory::kIdle);
  if (policy.sleep) total += energy(EnergyCategory::kSleep);
  if (policy.wakeup) total += energy(EnergyCategory::kWaking);
  return total;
}

}  // namespace bcp::energy

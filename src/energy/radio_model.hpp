// Radio energy characteristics — Table 1 of the paper, plus the timing and
// range constants the analysis (§2.2) and simulation (§4.1) assume.
//
//   Table 1. Energy Characteristics (mW, mJ)
//                      Rate       Ptx     Prx     Pi      Ewakeup
//   Cabletron          2 Mbps     1400    1000    830     1.328
//   Lucent             2 Mbps     1327.2  966.9   843.7   0.6
//   Lucent             11 Mbps    1346.1  900.6   739.4   0.6
//   Mica               40 Kbps    81      30      30      —
//   Mica2              38.4 Kbps  42      29      N/A     —
//   Micaz              250 Kbps   51      59.1    N/A     —
//
// Where the paper leaves a cell N/A the catalog substitutes the radio's
// receive power (listening ≈ receiving for these transceivers); the analysis
// never reads those cells (sensor idling is a "base cost", §2.1), they only
// matter if a simulation explicitly opts into charging sensor idle energy.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace bcp::energy {

/// Whether a radio is the low-power (sensor) or high-power (802.11) class.
/// The two classes ride non-overlapping channels in the simulator (§4.1).
enum class RadioClass { kLowPower, kHighPower };

/// Static energy/timing/range description of one radio.
struct RadioEnergyModel {
  std::string name;
  RadioClass radio_class = RadioClass::kLowPower;
  util::BitsPerSecond rate = 0;  ///< bit rate (bit/s)
  util::Watts p_tx = 0;          ///< transmit power draw
  util::Watts p_rx = 0;          ///< receive power draw
  util::Watts p_idle = 0;        ///< idle (awake, not tx/rx) power draw
  util::Watts p_sleep = 0;       ///< sleep power draw (≈0 for all radios here)
  util::Joules e_wakeup = 0;     ///< energy of one off->on transition
  util::Seconds t_wakeup = 0;    ///< duration of the off->on transition
  util::Metres range = 0;        ///< nominal transmission range
  /// Receiver noise power in dBm — the N of the SINR/capture reception
  /// mode (phy::Channel::Params::capture); narrowband sensor radios sit
  /// well below the wide-band 802.11 cards. Not a Table 1 column; only
  /// consulted when capture is enabled.
  double noise_floor_dbm = -100.0;

  /// Energy to serialize `bits` on the air (transmitter side).
  util::Joules tx_energy(util::Bits bits) const {
    return p_tx * util::tx_duration(bits, rate);
  }

  /// Energy to receive `bits` off the air (receiver side).
  util::Joules rx_energy(util::Bits bits) const {
    return p_rx * util::tx_duration(bits, rate);
  }

  /// Combined sender+receiver energy per payload bit for frames of
  /// `payload_bits` carrying `header_bits` of overhead — the
  /// (Ptx+Prx)/R · (1 + hs/ps) factor of Eq. 3.
  util::Joules per_payload_bit(util::Bits payload_bits,
                               util::Bits header_bits) const;
};

/// Table 1 entries. Ranges follow §2.2: 802.11 radios reach ~250 m, sensor
/// radios ~40 m, and Lucent 11 Mbps is assumed to have sensor-radio range
/// (rate/range trade-off noted in the paper).
const RadioEnergyModel& cabletron_2mbps();
const RadioEnergyModel& lucent_2mbps();
const RadioEnergyModel& lucent_11mbps();
const RadioEnergyModel& mica();
const RadioEnergyModel& mica2();
const RadioEnergyModel& micaz();

/// All six Table 1 radios, in the table's order.
const std::vector<RadioEnergyModel>& radio_catalog();

/// Looks a radio up by catalog name ("Cabletron", "Lucent-2Mbps",
/// "Lucent-11Mbps", "Mica", "Mica2", "Micaz"); nullopt if unknown.
std::optional<RadioEnergyModel> find_radio(const std::string& name);

}  // namespace bcp::energy

// Dual-radio address mapping.
//
// §3: "BCP needs to be able to map the low-power and high-power radio
// addresses for the receiver" and "route lookups need the low-power and
// high-power radio addresses for both the source and the destination".
// In the simulator both radios use the node id on the air, but the protocol
// code goes through this map so the lookup the paper requires is explicit
// (and testable), exactly as a TinyOS port would need.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "net/message.hpp"

namespace bcp::net {

/// A 16-bit 802.15.4-style short address for the low-power radio.
using LowAddress = std::uint16_t;
/// A 48-bit 802.11-style MAC address for the high-power radio.
using HighAddress = std::uint64_t;

class DualAddressMap {
 public:
  /// Registers a node with explicit radio addresses.
  void add(NodeId node, LowAddress low, HighAddress high);

  /// Registers `count` nodes 0..count-1 with the simulator's canonical
  /// scheme: low = 0x8000 | id, high = locally-administered OUI 02:42:4350
  /// followed by the id.
  static DualAddressMap canonical(int count);

  std::optional<LowAddress> low_address(NodeId node) const;
  std::optional<HighAddress> high_address(NodeId node) const;
  std::optional<NodeId> node_of_low(LowAddress a) const;
  std::optional<NodeId> node_of_high(HighAddress a) const;

  int size() const { return static_cast<int>(by_node_.size()); }

 private:
  struct Entry {
    LowAddress low;
    HighAddress high;
  };
  std::unordered_map<NodeId, Entry> by_node_;
  std::unordered_map<LowAddress, NodeId> by_low_;
  std::unordered_map<HighAddress, NodeId> by_high_;
};

}  // namespace bcp::net

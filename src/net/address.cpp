#include "net/address.hpp"

#include "util/assert.hpp"

namespace bcp::net {

void DualAddressMap::add(NodeId node, LowAddress low, HighAddress high) {
  BCP_REQUIRE(node >= 0);
  BCP_REQUIRE_MSG(!by_node_.count(node), "node already registered");
  BCP_REQUIRE_MSG(!by_low_.count(low), "low address already registered");
  BCP_REQUIRE_MSG(!by_high_.count(high), "high address already registered");
  by_node_.emplace(node, Entry{low, high});
  by_low_.emplace(low, node);
  by_high_.emplace(high, node);
}

DualAddressMap DualAddressMap::canonical(int count) {
  BCP_REQUIRE(count >= 0 && count <= 0x7FFF);
  DualAddressMap map;
  for (NodeId id = 0; id < count; ++id) {
    const auto low = static_cast<LowAddress>(0x8000u |
                                             static_cast<unsigned>(id));
    const auto high = std::uint64_t{0x024243500000} |
                      static_cast<std::uint64_t>(static_cast<unsigned>(id));
    map.add(id, low, high);
  }
  return map;
}

std::optional<LowAddress> DualAddressMap::low_address(NodeId node) const {
  const auto it = by_node_.find(node);
  if (it == by_node_.end()) return std::nullopt;
  return it->second.low;
}

std::optional<HighAddress> DualAddressMap::high_address(NodeId node) const {
  const auto it = by_node_.find(node);
  if (it == by_node_.end()) return std::nullopt;
  return it->second.high;
}

std::optional<NodeId> DualAddressMap::node_of_low(LowAddress a) const {
  const auto it = by_low_.find(a);
  if (it == by_low_.end()) return std::nullopt;
  return it->second;
}

std::optional<NodeId> DualAddressMap::node_of_high(HighAddress a) const {
  const auto it = by_high_.find(a);
  if (it == by_high_.end()) return std::nullopt;
  return it->second;
}

}  // namespace bcp::net

// Node placement and connectivity.
//
// §4.1: "We simulate a 200×200 m^2 grid network with 36 nodes" — a 6×6 grid
// with 40 m spacing, which equals the sensor-radio range, so sensor-radio
// connectivity is exactly the 4-neighbour grid and routes are Manhattan
// paths (mean depth ≈ 5 hops to a corner sink, matching the paper's 5-hop
// linear example in §2.2).
#pragma once

#include <vector>

#include "net/message.hpp"
#include "util/units.hpp"

namespace bcp::net {

struct Position {
  util::Metres x = 0;
  util::Metres y = 0;
};

util::Metres distance(const Position& a, const Position& b);

/// A square grid of nodes with a designated sink.
class GridTopology {
 public:
  /// `side` nodes per edge spread over `area` metres (spacing =
  /// area/(side-1)); `sink` must be a valid node index.
  GridTopology(int side, util::Metres area, NodeId sink);

  /// The paper's topology: 6×6 nodes over 200 m, sink at node 0 (a corner).
  static GridTopology paper_grid();

  int node_count() const { return side_ * side_; }
  int side() const { return side_; }
  util::Metres spacing() const { return spacing_; }
  NodeId sink() const { return sink_; }
  const Position& position(NodeId id) const;
  const std::vector<Position>& positions() const { return positions_; }

 private:
  int side_;
  util::Metres spacing_;
  NodeId sink_;
  std::vector<Position> positions_;
};

/// Undirected disc-model connectivity: a and b are linked iff
/// distance(a, b) <= range.
class ConnectivityGraph {
 public:
  ConnectivityGraph(std::vector<Position> positions, util::Metres range);

  int node_count() const { return static_cast<int>(positions_.size()); }
  util::Metres range() const { return range_; }
  const std::vector<NodeId>& neighbors(NodeId id) const;
  bool connected(NodeId a, NodeId b) const;
  const Position& position(NodeId id) const;

 private:
  std::vector<Position> positions_;
  util::Metres range_;
  std::vector<std::vector<NodeId>> neighbors_;
};

}  // namespace bcp::net

// Node placement and connectivity.
//
// The paper's §4.1 study runs on one placement — "a 200×200 m^2 grid
// network with 36 nodes", a 6×6 grid with 40 m spacing equal to the
// sensor-radio range, so sensor connectivity is the 4-neighbour grid and
// routes are Manhattan paths (mean depth ≈ 5 hops to a corner sink,
// matching the 5-hop linear example in §2.2). That placement is
// `Topology::grid` / `GridTopology::paper_grid`.
//
// Everything downstream of placement (channels, routing, scenarios,
// benches) consumes the `Topology` value type, so the grid is just one of
// several deterministic seeded generators:
//
//   grid              — the paper's square lattice (unchanged numerically);
//   uniform_random    — n nodes i.i.d. uniform over the square;
//   gaussian_clusters — cluster centres uniform, members normal around
//                       them (village/field deployments);
//   line_corridor     — evenly spaced along a corridor with lateral
//                       jitter (pipeline / road-side networks, cf. the
//                       1-D broadcasting literature);
//   ring              — evenly spaced on a circle (perimeter monitoring).
//
// Generators are pure functions of their arguments: the same seed yields
// byte-identical positions, which the reproducibility tests rely on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/message.hpp"
#include "util/units.hpp"

namespace bcp::net {

struct Position {
  util::Metres x = 0;
  util::Metres y = 0;
};

util::Metres distance(const Position& a, const Position& b);

/// A node placement: positions, a designated sink, and a short name used
/// in bench metadata ("grid", "rand", ...).
struct Topology {
  std::string name;
  NodeId sink = 0;
  std::vector<Position> positions;

  int node_count() const { return static_cast<int>(positions.size()); }
  const Position& position(NodeId id) const;

  /// `side`×`side` lattice over an `area`-metre square (spacing =
  /// area/(side-1)); byte-identical to the legacy GridTopology placement.
  static Topology grid(int side, util::Metres area, NodeId sink);

  /// n nodes i.i.d. uniform over the `area` square; node 0 is the sink
  /// (drawn like the rest).
  static Topology uniform_random(int n, util::Metres area,
                                 std::uint64_t seed);

  /// `clusters` centres uniform over the square, node i normal
  /// (stddev = `spread`, clamped to the square) around centre i mod
  /// clusters. Node 0 sits exactly on the first centre and is the sink.
  static Topology gaussian_clusters(int n, util::Metres area, int clusters,
                                    util::Metres spread, std::uint64_t seed);

  /// n nodes spaced length/(n-1) apart along a corridor, each jittered
  /// uniformly across its `width`; node 0 is the sink at the corridor
  /// mouth (x = 0, mid-width).
  static Topology line_corridor(int n, util::Metres length,
                                util::Metres width, std::uint64_t seed);

  /// n nodes evenly spaced on a circle of the given radius centred at
  /// (radius, radius); node 0 is the sink at angle 0.
  static Topology ring(int n, util::Metres radius);
};

/// Which generator a TopologySpec names.
enum class TopologyKind {
  kGrid,
  kUniformRandom,
  kGaussianClusters,
  kLineCorridor,
  kRing,
};

const char* to_string(TopologyKind kind);

/// A declarative placement recipe — the form scenario configs and sweep
/// axes carry. `build()` dispatches to the Topology generators; the
/// placement `seed` is deliberately separate from the scenario's traffic
/// seed, so replications re-roll traffic on a fixed placement.
struct TopologySpec {
  TopologyKind kind = TopologyKind::kGrid;

  // kGrid: side×side lattice; every other generator places `nodes`.
  int grid_side = 6;
  int nodes = 36;

  /// Square side (grid/random/clusters), corridor length (line), or
  /// circle diameter (ring).
  util::Metres area = 200.0;

  // kLineCorridor / kGaussianClusters shape parameters.
  util::Metres corridor_width = 20.0;
  int clusters = 4;
  util::Metres cluster_spread = 25.0;

  /// kGrid only: which lattice index is the sink (generators fix node 0).
  NodeId sink = 0;

  /// Placement randomness (ignored by kGrid and kRing).
  std::uint64_t seed = 1;

  int node_count() const {
    return kind == TopologyKind::kGrid ? grid_side * grid_side : nodes;
  }

  Topology build() const;
};

/// Returns `spec` with its seed advanced to the first value, at most
/// `max_tries` ahead, whose disc graph at `range` reaches every node from
/// the sink; throws std::invalid_argument when none of the tried seeds
/// yields a connected placement. No-op for deterministic generators.
TopologySpec first_connected(TopologySpec spec, util::Metres range,
                             int max_tries = 128);

/// A square grid of nodes with a designated sink (the original paper
/// topology, kept for the small-n tests; scenarios consume Topology).
class GridTopology {
 public:
  /// `side` nodes per edge spread over `area` metres (spacing =
  /// area/(side-1)); `sink` must be a valid node index.
  GridTopology(int side, util::Metres area, NodeId sink);

  /// The paper's topology: 6×6 nodes over 200 m, sink at node 0 (a corner).
  static GridTopology paper_grid();

  int node_count() const { return side_ * side_; }
  int side() const { return side_; }
  util::Metres spacing() const { return spacing_; }
  NodeId sink() const { return sink_; }
  const Position& position(NodeId id) const;
  const std::vector<Position>& positions() const { return positions_; }

 private:
  int side_;
  util::Metres spacing_;
  NodeId sink_;
  std::vector<Position> positions_;
};

/// Undirected disc-model connectivity: a and b are linked iff
/// distance(a, b) <= range. Neighbour discovery buckets nodes into a
/// uniform spatial hash with cell size = range, so construction is O(n)
/// for bounded-density placements instead of the former O(n²) pairwise
/// scan; per-node neighbour lists are sorted ascending (the order the
/// pairwise scan produced), so downstream BFS orders are unchanged.
class ConnectivityGraph {
 public:
  ConnectivityGraph(std::vector<Position> positions, util::Metres range);

  int node_count() const { return static_cast<int>(positions_.size()); }
  util::Metres range() const { return range_; }
  const std::vector<NodeId>& neighbors(NodeId id) const;
  bool connected(NodeId a, NodeId b) const;
  const Position& position(NodeId id) const;

 private:
  std::vector<Position> positions_;
  util::Metres range_;
  std::vector<std::vector<NodeId>> neighbors_;
};

/// Connected-component label per node (labels are 0-based, assigned in
/// order of each component's lowest node id; one BFS sweep, O(n + e)).
std::vector<int> connected_components(const ConnectivityGraph& graph);

/// Nodes with no path to `root`, ascending (empty iff the graph is
/// connected as seen from `root`).
std::vector<NodeId> unreachable_from(const ConnectivityGraph& graph,
                                     NodeId root);

/// Human-readable "[3, 17, 21, ...]" list of stranded nodes for error
/// messages; truncates after `max_listed` entries.
std::string format_node_list(const std::vector<NodeId>& nodes,
                             std::size_t max_listed = 16);

}  // namespace bcp::net

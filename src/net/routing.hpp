// Static shortest-path routing over one radio's connectivity graph.
//
// §4.1: "To decouple the routing effects on performance, two separate trees
// that go over sensor and IEEE 802.11 radios are built." RoutingTable is an
// all-pairs BFS next-hop table (36 nodes, so all-pairs is trivial); the
// convergecast tree the paper describes is the slice next_hop(·, sink).
// Ties are broken deterministically: among equal-hop parents prefer the one
// geometrically closer to the destination, then the lower node id.
#pragma once

#include <vector>

#include "net/topology.hpp"

namespace bcp::net {

class RoutingTable {
 public:
  explicit RoutingTable(const ConnectivityGraph& graph);

  /// First hop on a shortest path from `from` toward `to`.
  /// Returns `to` itself when adjacent, `from` when from == to, and
  /// kInvalidNode when unreachable.
  NodeId next_hop(NodeId from, NodeId to) const;

  /// Shortest-path hop count; 0 when from == to, -1 when unreachable.
  int hops(NodeId from, NodeId to) const;

  bool reachable(NodeId from, NodeId to) const {
    return hops(from, to) >= 0;
  }

  int node_count() const { return n_; }

  /// Mean hop count from every node (other than `to`) that can reach `to` —
  /// the "forward progress" statistic of §2.2.
  double mean_hops_to(NodeId to) const;

 private:
  int index(NodeId from, NodeId to) const;

  int n_;
  std::vector<NodeId> next_hop_;  // n*n, row = from, col = to
  std::vector<int> hops_;         // n*n
};

}  // namespace bcp::net

// Static shortest-path routing over one radio's connectivity graph.
//
// §4.1: "To decouple the routing effects on performance, two separate trees
// that go over sensor and IEEE 802.11 radios are built." Two providers sit
// behind the `Router` interface the node assemblies consume:
//
//   RoutingTable       — dense all-pairs BFS next-hop/hop tables (n×n
//                        memory, one BFS per destination). Fine for the
//                        36-node paper grid and the small-n tests; O(n²)
//                        memory rules it out at scale.
//   ConvergecastRouting — the sink-rooted tree the paper actually
//                        describes: a single BFS from the sink, O(n + e)
//                        time and O(n) memory. Scenarios route every data
//                        packet to the sink, so this is what they use.
//
// Both break shortest-path ties identically: among equal-hop parents
// prefer the one geometrically closer to the destination, then the lower
// node id — so ConvergecastRouting is exactly the next_hop(·, sink) slice
// of RoutingTable, a property the tests assert.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/link_state.hpp"
#include "net/topology.hpp"

namespace bcp::net {

/// How DynamicRouting scores paths when it rebuilds.
///
///   kShortestPath  — hop count only; the historical behaviour, and the
///                    default every golden export pins byte-for-byte.
///   kLifetimeAware — hop count plus a per-relay cost from NodeCostFn
///                    (battery fraction drawn), so convergecast routes
///                    bend around nearly-depleted relays. Convergecast
///                    only: the tree is rebuilt cost-weighted on every
///                    LinkState revision move.
enum class RoutePolicy : std::uint8_t { kShortestPath, kLifetimeAware };

const char* to_string(RoutePolicy p);

/// Per-node relay cost (>= 0), folded into edge weights as
/// 1 + cost(relay) for the hop *into* `relay` (the sink costs nothing to
/// enter — delivery into it is mandatory). Must be cheap: it is consulted
/// once per node per rebuild.
using NodeCostFn = std::function<double(NodeId)>;

/// Alive (node_up) nodes other than `root` with no LinkState-masked path
/// to it — the sink-partition predicate the battery-death metrics check.
/// Empty result = every surviving node still reaches `root`. If `root`
/// itself is down, every alive node is returned.
std::vector<NodeId> unreachable_alive(const ConnectivityGraph& graph,
                                      NodeId root, const LinkState& links);

/// Next-hop provider interface the node assemblies route through.
class Router {
 public:
  virtual ~Router() = default;

  /// First hop on a shortest path from `from` toward `to`.
  /// Returns `to` itself when adjacent, `from` when from == to, and
  /// kInvalidNode when unreachable.
  virtual NodeId next_hop(NodeId from, NodeId to) const = 0;

  /// Shortest-path hop count; 0 when from == to, -1 when unreachable.
  virtual int hops(NodeId from, NodeId to) const = 0;

  virtual int node_count() const = 0;

  bool reachable(NodeId from, NodeId to) const {
    return hops(from, to) >= 0;
  }
};

/// Dense all-pairs shortest-path tables. A non-null `links` masks the
/// graph: down nodes and down links are invisible to the BFS (the
/// fault/churn path); the tables are a snapshot of that instant.
class RoutingTable final : public Router {
 public:
  explicit RoutingTable(const ConnectivityGraph& graph,
                        const LinkState* links = nullptr);

  NodeId next_hop(NodeId from, NodeId to) const override;
  int hops(NodeId from, NodeId to) const override;
  int node_count() const override { return n_; }

  /// Mean hop count from every node (other than `to`) that can reach `to` —
  /// the "forward progress" statistic of §2.2.
  double mean_hops_to(NodeId to) const;

 private:
  int index(NodeId from, NodeId to) const;

  int n_;
  std::vector<NodeId> next_hop_;  // n*n, row = from, col = to
  std::vector<int> hops_;         // n*n
};

/// Sink-rooted shortest-path tree: one BFS from the sink, parent and
/// depth per node, O(n + e) construction and O(n) memory.
///
/// Routing toward the sink follows the shortest-path tree exactly (the
/// RoutingTable slice). Other destinations — the BCP control plane sends
/// wake-up acks *away* from the sink — are routed along tree paths: up
/// to the nearest common ancestor, then down (an Euler-tour subtree test
/// plus a binary search over each node's children picks the downward
/// branch in O(log degree)). Tree paths to non-sink destinations may be
/// longer than graph-shortest paths; convergecast traffic never is.
class ConvergecastRouting final : public Router {
 public:
  /// A non-null `links` masks the graph exactly as in RoutingTable. A
  /// non-null `cost` switches the build from plain BFS to a Dijkstra over
  /// edge weights 1 + cost(next_hop) — the lifetime-aware tree; with
  /// `cost` null the build is the historical BFS, bit-for-bit.
  ConvergecastRouting(const ConnectivityGraph& graph, NodeId sink,
                      const LinkState* links = nullptr,
                      const NodeCostFn& cost = nullptr);

  NodeId sink() const { return sink_; }

  /// Next hop toward the sink (kInvalidNode when stranded; sink maps to
  /// itself).
  NodeId parent(NodeId from) const;

  /// Hops to the sink; -1 when stranded, 0 at the sink.
  int depth(NodeId from) const;

  /// Mean depth over all nodes (other than the sink) that reach it;
  /// requires at least one.
  double mean_depth() const;

  /// Nodes (other than the sink) with no path to it, ascending.
  std::vector<NodeId> stranded() const;

  // Router. next_hop/hops measure along tree paths; both endpoints must
  // be in the sink's component (else kInvalidNode / -1).
  NodeId next_hop(NodeId from, NodeId to) const override;
  int hops(NodeId from, NodeId to) const override;
  int node_count() const override {
    return static_cast<int>(parent_.size());
  }

 private:
  bool in_subtree(NodeId root, NodeId node) const;
  NodeId child_toward(NodeId from, NodeId descendant) const;

  NodeId sink_;
  std::vector<NodeId> parent_;
  std::vector<int> depth_;
  // Euler-tour order: tin/tout bracket each node's subtree; children are
  // stored contiguously, sorted by tin.
  std::vector<int> tin_;
  std::vector<int> tout_;
  std::vector<NodeId> children_;       // all children, grouped by parent
  std::vector<int> children_begin_;    // n+1 offsets into children_
};

/// Fault-aware router: rebuilds an underlying strategy (convergecast tree
/// or all-pairs tables) over the LinkState-masked graph, but only when the
/// LinkState's revision actually moved — the incremental-invalidation hook
/// the fault/churn scenarios route through. Queries between membership
/// changes are as cheap as the static providers; a crash/recover burst
/// that flips k nodes costs one rebuild at the next query, not k.
class DynamicRouting final : public Router {
 public:
  /// `graph` and `links` must outlive the router. `all_pairs` picks the
  /// dense-table strategy (small networks) over the convergecast tree.
  /// kLifetimeAware requires a non-null `cost` and always builds the
  /// cost-weighted convergecast tree (all_pairs is ignored): lifetime
  /// objectives are sink-centric, and the dense tables have no weighted
  /// form.
  DynamicRouting(const ConnectivityGraph& graph, NodeId sink,
                 const LinkState& links, bool all_pairs,
                 RoutePolicy policy = RoutePolicy::kShortestPath,
                 NodeCostFn cost = nullptr);

  NodeId next_hop(NodeId from, NodeId to) const override {
    return current().next_hop(from, to);
  }
  int hops(NodeId from, NodeId to) const override {
    return current().hops(from, to);
  }
  int node_count() const override { return graph_.node_count(); }

  /// Underlying builds performed so far (1 after the first query; +1 per
  /// effective LinkState change that a later query observed).
  std::int64_t rebuild_count() const { return rebuilds_; }

 private:
  const Router& current() const;

  const ConnectivityGraph& graph_;
  NodeId sink_;
  const LinkState& links_;
  bool all_pairs_;
  RoutePolicy policy_;
  NodeCostFn cost_;
  // Lazy cache: queries are logically const; the rebuild is bookkeeping.
  mutable std::unique_ptr<Router> impl_;
  mutable std::uint64_t built_revision_ = 0;
  mutable std::int64_t rebuilds_ = 0;
};

}  // namespace bcp::net

// Static shortest-path routing over one radio's connectivity graph.
//
// §4.1: "To decouple the routing effects on performance, two separate trees
// that go over sensor and IEEE 802.11 radios are built." Two providers sit
// behind the `Router` interface the node assemblies consume:
//
//   RoutingTable       — dense all-pairs BFS next-hop/hop tables (n×n
//                        memory, one BFS per destination). Fine for the
//                        36-node paper grid and the small-n tests; O(n²)
//                        memory rules it out at scale.
//   ConvergecastRouting — the sink-rooted tree the paper actually
//                        describes: a single BFS from the sink, O(n + e)
//                        time and O(n) memory. Scenarios route every data
//                        packet to the sink, so this is what they use.
//
// Both break shortest-path ties identically: among equal-hop parents
// prefer the one geometrically closer to the destination, then the lower
// node id — so ConvergecastRouting is exactly the next_hop(·, sink) slice
// of RoutingTable, a property the tests assert.
#pragma once

#include <vector>

#include "net/topology.hpp"

namespace bcp::net {

/// Next-hop provider interface the node assemblies route through.
class Router {
 public:
  virtual ~Router() = default;

  /// First hop on a shortest path from `from` toward `to`.
  /// Returns `to` itself when adjacent, `from` when from == to, and
  /// kInvalidNode when unreachable.
  virtual NodeId next_hop(NodeId from, NodeId to) const = 0;

  /// Shortest-path hop count; 0 when from == to, -1 when unreachable.
  virtual int hops(NodeId from, NodeId to) const = 0;

  virtual int node_count() const = 0;

  bool reachable(NodeId from, NodeId to) const {
    return hops(from, to) >= 0;
  }
};

/// Dense all-pairs shortest-path tables.
class RoutingTable final : public Router {
 public:
  explicit RoutingTable(const ConnectivityGraph& graph);

  NodeId next_hop(NodeId from, NodeId to) const override;
  int hops(NodeId from, NodeId to) const override;
  int node_count() const override { return n_; }

  /// Mean hop count from every node (other than `to`) that can reach `to` —
  /// the "forward progress" statistic of §2.2.
  double mean_hops_to(NodeId to) const;

 private:
  int index(NodeId from, NodeId to) const;

  int n_;
  std::vector<NodeId> next_hop_;  // n*n, row = from, col = to
  std::vector<int> hops_;         // n*n
};

/// Sink-rooted shortest-path tree: one BFS from the sink, parent and
/// depth per node, O(n + e) construction and O(n) memory.
///
/// Routing toward the sink follows the shortest-path tree exactly (the
/// RoutingTable slice). Other destinations — the BCP control plane sends
/// wake-up acks *away* from the sink — are routed along tree paths: up
/// to the nearest common ancestor, then down (an Euler-tour subtree test
/// plus a binary search over each node's children picks the downward
/// branch in O(log degree)). Tree paths to non-sink destinations may be
/// longer than graph-shortest paths; convergecast traffic never is.
class ConvergecastRouting final : public Router {
 public:
  ConvergecastRouting(const ConnectivityGraph& graph, NodeId sink);

  NodeId sink() const { return sink_; }

  /// Next hop toward the sink (kInvalidNode when stranded; sink maps to
  /// itself).
  NodeId parent(NodeId from) const;

  /// Hops to the sink; -1 when stranded, 0 at the sink.
  int depth(NodeId from) const;

  /// Mean depth over all nodes (other than the sink) that reach it;
  /// requires at least one.
  double mean_depth() const;

  /// Nodes (other than the sink) with no path to it, ascending.
  std::vector<NodeId> stranded() const;

  // Router. next_hop/hops measure along tree paths; both endpoints must
  // be in the sink's component (else kInvalidNode / -1).
  NodeId next_hop(NodeId from, NodeId to) const override;
  int hops(NodeId from, NodeId to) const override;
  int node_count() const override {
    return static_cast<int>(parent_.size());
  }

 private:
  bool in_subtree(NodeId root, NodeId node) const;
  NodeId child_toward(NodeId from, NodeId descendant) const;

  NodeId sink_;
  std::vector<NodeId> parent_;
  std::vector<int> depth_;
  // Euler-tour order: tin/tout bracket each node's subtree; children are
  // stored contiguously, sorted by tin.
  std::vector<int> tin_;
  std::vector<int> tout_;
  std::vector<NodeId> children_;       // all children, grouped by parent
  std::vector<int> children_begin_;    // n+1 offsets into children_
};

}  // namespace bcp::net

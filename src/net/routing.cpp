#include "net/routing.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>
#include <utility>

#include "util/assert.hpp"

namespace bcp::net {

const char* to_string(RoutePolicy p) {
  switch (p) {
    case RoutePolicy::kShortestPath:  return "shortest-path";
    case RoutePolicy::kLifetimeAware: return "lifetime-aware";
  }
  return "?";
}

namespace {

/// BFS hop counts from `root` over the graph (-1 where unreachable). A
/// non-null `links` hides down nodes and down links from the traversal.
std::vector<int> bfs_distances(const ConnectivityGraph& graph, NodeId root,
                               const LinkState* links) {
  std::vector<int> dist(static_cast<std::size_t>(graph.node_count()), -1);
  if (links != nullptr && !links->node_up(root)) return dist;
  std::deque<NodeId> queue;
  dist[static_cast<std::size_t>(root)] = 0;
  queue.push_back(root);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const NodeId v : graph.neighbors(u)) {
      if (links != nullptr && !links->link_up(u, v)) continue;
      if (dist[static_cast<std::size_t>(v)] < 0) {
        dist[static_cast<std::size_t>(v)] =
            dist[static_cast<std::size_t>(u)] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

/// The deterministic parent choice both providers share: among `from`'s
/// neighbours one hop closer to `to`, the one geometrically closest to
/// `to`, then the lowest id.
NodeId best_parent(const ConnectivityGraph& graph,
                   const std::vector<int>& dist, NodeId from, NodeId to,
                   const LinkState* links) {
  const int d = dist[static_cast<std::size_t>(from)];
  NodeId best = kInvalidNode;
  double best_dist = std::numeric_limits<double>::infinity();
  for (const NodeId v : graph.neighbors(from)) {
    if (dist[static_cast<std::size_t>(v)] != d - 1) continue;
    if (links != nullptr && !links->link_up(from, v)) continue;
    const double dv = distance(graph.position(v), graph.position(to));
    if (best == kInvalidNode || dv < best_dist ||
        (dv == best_dist && v < best)) {
      best = v;
      best_dist = dv;
    }
  }
  return best;
}

/// Weight of the hop from anywhere into `v` on the way toward `root`:
/// one hop plus the relay cost of `v` (entering the root is mandatory and
/// costs only the hop).
double step_cost(NodeId v, NodeId root, const NodeCostFn& cost) {
  return 1.0 + (v == root ? 0.0 : cost(v));
}

/// Dijkstra from `root` over edge weights step_cost(next_hop): dist[u] is
/// the cheapest cost of a path u -> root (infinity where unreachable).
/// Deterministic: the heap breaks equal-cost pops by lower node id, and
/// the parent choice below re-applies the geometric/id preference.
std::vector<double> weighted_distances(const ConnectivityGraph& graph,
                                       NodeId root, const LinkState* links,
                                       const NodeCostFn& cost) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(static_cast<std::size_t>(graph.node_count()), inf);
  if (links != nullptr && !links->node_up(root)) return dist;
  using Entry = std::pair<double, NodeId>;  // (cost, node), min-heap
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  dist[static_cast<std::size_t>(root)] = 0.0;
  heap.emplace(0.0, root);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;  // stale entry
    // Every neighbour reaching the root through u pays the same step.
    const double step = step_cost(u, root, cost);
    for (const NodeId v : graph.neighbors(u)) {
      if (links != nullptr && !links->link_up(u, v)) continue;
      const double cand = d + step;
      if (cand < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = cand;
        heap.emplace(cand, v);
      }
    }
  }
  return dist;
}

/// best_parent's weighted twin: among `from`'s neighbours on a cheapest
/// path toward `root` (within a fixed tolerance, so float noise cannot
/// flip the choice), geometrically closest to `root`, then lowest id.
NodeId best_parent_weighted(const ConnectivityGraph& graph,
                            const std::vector<double>& dist, NodeId from,
                            NodeId root, const LinkState* links,
                            const NodeCostFn& cost) {
  const double d = dist[static_cast<std::size_t>(from)];
  NodeId best = kInvalidNode;
  double best_dist = std::numeric_limits<double>::infinity();
  for (const NodeId v : graph.neighbors(from)) {
    if (links != nullptr && !links->link_up(from, v)) continue;
    const double via =
        dist[static_cast<std::size_t>(v)] + step_cost(v, root, cost);
    if (via > d + 1e-9) continue;  // not on a cheapest path
    const double dv = distance(graph.position(v), graph.position(root));
    if (best == kInvalidNode || dv < best_dist ||
        (dv == best_dist && v < best)) {
      best = v;
      best_dist = dv;
    }
  }
  return best;
}

}  // namespace

std::vector<NodeId> unreachable_alive(const ConnectivityGraph& graph,
                                      NodeId root, const LinkState& links) {
  BCP_REQUIRE(root >= 0 && root < graph.node_count());
  const std::vector<int> dist = bfs_distances(graph, root, &links);
  std::vector<NodeId> out;
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    if (v != root && links.node_up(v) && dist[static_cast<std::size_t>(v)] < 0)
      out.push_back(v);
  }
  return out;
}

// ------------------------------------------------------- RoutingTable --

RoutingTable::RoutingTable(const ConnectivityGraph& graph,
                           const LinkState* links)
    : n_(graph.node_count()),
      next_hop_(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_),
                kInvalidNode),
      hops_(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_), -1) {
  // One BFS per destination, relaxing parents with the deterministic
  // (hops, distance-to-destination, id) preference order.
  for (NodeId to = 0; to < n_; ++to) {
    const std::vector<int> dist = bfs_distances(graph, to, links);
    for (NodeId from = 0; from < n_; ++from) {
      const int d = dist[static_cast<std::size_t>(from)];
      hops_[static_cast<std::size_t>(index(from, to))] = d;
      if (from == to) {
        next_hop_[static_cast<std::size_t>(index(from, to))] = from;
        continue;
      }
      if (d < 0) continue;  // unreachable
      const NodeId best = best_parent(graph, dist, from, to, links);
      BCP_ENSURE(best != kInvalidNode);
      next_hop_[static_cast<std::size_t>(index(from, to))] = best;
    }
  }
}

int RoutingTable::index(NodeId from, NodeId to) const {
  BCP_REQUIRE(from >= 0 && from < n_);
  BCP_REQUIRE(to >= 0 && to < n_);
  return from * n_ + to;
}

NodeId RoutingTable::next_hop(NodeId from, NodeId to) const {
  return next_hop_[static_cast<std::size_t>(index(from, to))];
}

int RoutingTable::hops(NodeId from, NodeId to) const {
  return hops_[static_cast<std::size_t>(index(from, to))];
}

double RoutingTable::mean_hops_to(NodeId to) const {
  double sum = 0;
  int count = 0;
  for (NodeId from = 0; from < n_; ++from) {
    if (from == to) continue;
    const int h = hops(from, to);
    if (h < 0) continue;
    sum += h;
    ++count;
  }
  BCP_REQUIRE_MSG(count > 0, "destination unreachable from every node");
  return sum / count;
}

// ------------------------------------------------ ConvergecastRouting --

ConvergecastRouting::ConvergecastRouting(const ConnectivityGraph& graph,
                                         NodeId sink,
                                         const LinkState* links,
                                         const NodeCostFn& cost)
    : sink_(sink) {
  BCP_REQUIRE(sink >= 0 && sink < graph.node_count());
  const int n = graph.node_count();
  parent_.assign(static_cast<std::size_t>(n), kInvalidNode);
  parent_[static_cast<std::size_t>(sink)] = sink;
  if (cost == nullptr) {
    depth_ = bfs_distances(graph, sink, links);
    for (NodeId from = 0; from < n; ++from) {
      if (from == sink || depth_[static_cast<std::size_t>(from)] < 0)
        continue;
      const NodeId best = best_parent(graph, depth_, from, sink, links);
      BCP_ENSURE(best != kInvalidNode);
      parent_[static_cast<std::size_t>(from)] = best;
    }
  } else {
    // Lifetime-aware tree: cheapest-cost parents, hop-count depths along
    // the chosen tree (depth_ stays a frame/slot currency for TDMA and
    // the mean-depth statistic even when the tree is weighted).
    const std::vector<double> wdist =
        weighted_distances(graph, sink, links, cost);
    for (NodeId from = 0; from < n; ++from) {
      if (from == sink ||
          wdist[static_cast<std::size_t>(from)] ==
              std::numeric_limits<double>::infinity())
        continue;
      const NodeId best =
          best_parent_weighted(graph, wdist, from, sink, links, cost);
      BCP_ENSURE(best != kInvalidNode);
      parent_[static_cast<std::size_t>(from)] = best;
    }
    // A parent is always strictly cheaper (every step weighs >= 1), so
    // filling depths in ascending cost order sees each parent first.
    depth_.assign(static_cast<std::size_t>(n), -1);
    depth_[static_cast<std::size_t>(sink)] = 0;
    std::vector<NodeId> order;
    order.reserve(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v)
      if (v != sink && parent_[static_cast<std::size_t>(v)] != kInvalidNode)
        order.push_back(v);
    std::sort(order.begin(), order.end(), [&wdist](NodeId a, NodeId b) {
      const double da = wdist[static_cast<std::size_t>(a)];
      const double db = wdist[static_cast<std::size_t>(b)];
      return da < db || (da == db && a < b);
    });
    for (const NodeId v : order) {
      const NodeId p = parent_[static_cast<std::size_t>(v)];
      BCP_ENSURE(depth_[static_cast<std::size_t>(p)] >= 0);
      depth_[static_cast<std::size_t>(v)] =
          depth_[static_cast<std::size_t>(p)] + 1;
    }
  }

  // Group children by parent (CSR layout; ascending node order keeps each
  // group id-sorted, and the DFS below then visits them in that order, so
  // a group is also tin-sorted — the binary search in child_toward relies
  // on both).
  std::vector<int> counts(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v)
    if (v != sink && parent_[static_cast<std::size_t>(v)] != kInvalidNode)
      ++counts[static_cast<std::size_t>(
          parent_[static_cast<std::size_t>(v)])];
  children_begin_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int i = 0; i < n; ++i)
    children_begin_[static_cast<std::size_t>(i) + 1] =
        children_begin_[static_cast<std::size_t>(i)] +
        counts[static_cast<std::size_t>(i)];
  children_.resize(
      static_cast<std::size_t>(children_begin_[static_cast<std::size_t>(n)]),
      kInvalidNode);
  std::vector<int> fill(children_begin_.begin(), children_begin_.end() - 1);
  for (NodeId v = 0; v < n; ++v)
    if (v != sink && parent_[static_cast<std::size_t>(v)] != kInvalidNode)
      children_[static_cast<std::size_t>(fill[static_cast<std::size_t>(
          parent_[static_cast<std::size_t>(v)])]++)] = v;

  // Iterative DFS from the sink for the Euler-tour brackets.
  tin_.assign(static_cast<std::size_t>(n), -1);
  tout_.assign(static_cast<std::size_t>(n), -1);
  int clock = 0;
  // Stack of (node, next-child offset).
  std::vector<std::pair<NodeId, int>> stack;
  stack.emplace_back(sink, children_begin_[static_cast<std::size_t>(sink)]);
  tin_[static_cast<std::size_t>(sink)] = clock++;
  while (!stack.empty()) {
    auto& [u, next] = stack.back();
    if (next < children_begin_[static_cast<std::size_t>(u) + 1]) {
      const NodeId c = children_[static_cast<std::size_t>(next++)];
      tin_[static_cast<std::size_t>(c)] = clock++;
      stack.emplace_back(c, children_begin_[static_cast<std::size_t>(c)]);
    } else {
      tout_[static_cast<std::size_t>(u)] = clock++;
      stack.pop_back();
    }
  }
}

bool ConvergecastRouting::in_subtree(NodeId root, NodeId node) const {
  return tin_[static_cast<std::size_t>(root)] <=
             tin_[static_cast<std::size_t>(node)] &&
         tout_[static_cast<std::size_t>(node)] <=
             tout_[static_cast<std::size_t>(root)];
}

NodeId ConvergecastRouting::child_toward(NodeId from,
                                         NodeId descendant) const {
  // Children intervals partition from's interval; find the last child
  // whose tin is <= tin[descendant].
  const int lo = children_begin_[static_cast<std::size_t>(from)];
  const int hi = children_begin_[static_cast<std::size_t>(from) + 1];
  const int target = tin_[static_cast<std::size_t>(descendant)];
  int a = lo;
  int b = hi;
  while (b - a > 1) {
    const int mid = a + (b - a) / 2;
    if (tin_[static_cast<std::size_t>(
            children_[static_cast<std::size_t>(mid)])] <= target)
      a = mid;
    else
      b = mid;
  }
  const NodeId c = children_[static_cast<std::size_t>(a)];
  BCP_ENSURE(in_subtree(c, descendant));
  return c;
}

NodeId ConvergecastRouting::parent(NodeId from) const {
  BCP_REQUIRE(from >= 0 && from < node_count());
  return parent_[static_cast<std::size_t>(from)];
}

int ConvergecastRouting::depth(NodeId from) const {
  BCP_REQUIRE(from >= 0 && from < node_count());
  return depth_[static_cast<std::size_t>(from)];
}

double ConvergecastRouting::mean_depth() const {
  double sum = 0;
  int count = 0;
  for (NodeId from = 0; from < node_count(); ++from) {
    if (from == sink_) continue;
    const int d = depth_[static_cast<std::size_t>(from)];
    if (d < 0) continue;
    sum += d;
    ++count;
  }
  BCP_REQUIRE_MSG(count > 0, "sink unreachable from every node");
  return sum / count;
}

std::vector<NodeId> ConvergecastRouting::stranded() const {
  std::vector<NodeId> out;
  for (NodeId from = 0; from < node_count(); ++from)
    if (from != sink_ && depth_[static_cast<std::size_t>(from)] < 0)
      out.push_back(from);
  return out;
}

NodeId ConvergecastRouting::next_hop(NodeId from, NodeId to) const {
  BCP_REQUIRE(from >= 0 && from < node_count());
  BCP_REQUIRE(to >= 0 && to < node_count());
  if (from == to) return from;
  if (depth_[static_cast<std::size_t>(from)] < 0 ||
      depth_[static_cast<std::size_t>(to)] < 0)
    return kInvalidNode;  // one endpoint is outside the sink's component
  if (in_subtree(from, to)) return child_toward(from, to);
  return parent_[static_cast<std::size_t>(from)];
}

int ConvergecastRouting::hops(NodeId from, NodeId to) const {
  BCP_REQUIRE(from >= 0 && from < node_count());
  BCP_REQUIRE(to >= 0 && to < node_count());
  if (from == to) return 0;
  if (depth_[static_cast<std::size_t>(from)] < 0 ||
      depth_[static_cast<std::size_t>(to)] < 0)
    return -1;
  // Tree distance via the nearest common ancestor (climb pointers; depth
  // is bounded by the network diameter).
  NodeId a = from;
  NodeId b = to;
  while (depth_[static_cast<std::size_t>(a)] >
         depth_[static_cast<std::size_t>(b)])
    a = parent_[static_cast<std::size_t>(a)];
  while (depth_[static_cast<std::size_t>(b)] >
         depth_[static_cast<std::size_t>(a)])
    b = parent_[static_cast<std::size_t>(b)];
  while (a != b) {
    a = parent_[static_cast<std::size_t>(a)];
    b = parent_[static_cast<std::size_t>(b)];
  }
  return depth_[static_cast<std::size_t>(from)] +
         depth_[static_cast<std::size_t>(to)] -
         2 * depth_[static_cast<std::size_t>(a)];
}

// --------------------------------------------------- DynamicRouting --

DynamicRouting::DynamicRouting(const ConnectivityGraph& graph, NodeId sink,
                               const LinkState& links, bool all_pairs,
                               RoutePolicy policy, NodeCostFn cost)
    : graph_(graph),
      sink_(sink),
      links_(links),
      all_pairs_(all_pairs),
      policy_(policy),
      cost_(std::move(cost)) {
  BCP_REQUIRE(sink >= 0 && sink < graph.node_count());
  BCP_REQUIRE(links.node_count() == graph.node_count());
  BCP_REQUIRE_MSG(policy_ != RoutePolicy::kLifetimeAware || cost_ != nullptr,
                  "lifetime-aware routing needs a node cost function");
}

const Router& DynamicRouting::current() const {
  if (impl_ == nullptr || built_revision_ != links_.revision()) {
    if (policy_ == RoutePolicy::kLifetimeAware)
      impl_ = std::make_unique<ConvergecastRouting>(graph_, sink_, &links_,
                                                    cost_);
    else if (all_pairs_)
      impl_ = std::make_unique<RoutingTable>(graph_, &links_);
    else
      impl_ = std::make_unique<ConvergecastRouting>(graph_, sink_, &links_);
    built_revision_ = links_.revision();
    ++rebuilds_;
  }
  return *impl_;
}

}  // namespace bcp::net

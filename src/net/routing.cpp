#include "net/routing.hpp"

#include <deque>
#include <limits>

#include "util/assert.hpp"

namespace bcp::net {

RoutingTable::RoutingTable(const ConnectivityGraph& graph)
    : n_(graph.node_count()),
      next_hop_(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_),
                kInvalidNode),
      hops_(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_), -1) {
  // One BFS per destination, relaxing parents with the deterministic
  // (hops, distance-to-destination, id) preference order.
  for (NodeId to = 0; to < n_; ++to) {
    std::vector<int> dist(static_cast<std::size_t>(n_), -1);
    std::deque<NodeId> queue;
    dist[static_cast<std::size_t>(to)] = 0;
    queue.push_back(to);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (const NodeId v : graph.neighbors(u)) {
        if (dist[static_cast<std::size_t>(v)] < 0) {
          dist[static_cast<std::size_t>(v)] =
              dist[static_cast<std::size_t>(u)] + 1;
          queue.push_back(v);
        }
      }
    }
    for (NodeId from = 0; from < n_; ++from) {
      const int d = dist[static_cast<std::size_t>(from)];
      hops_[static_cast<std::size_t>(index(from, to))] = d;
      if (from == to) {
        next_hop_[static_cast<std::size_t>(index(from, to))] = from;
        continue;
      }
      if (d < 0) continue;  // unreachable
      // The next hop is the best neighbour one step closer to `to`.
      NodeId best = kInvalidNode;
      double best_dist = std::numeric_limits<double>::infinity();
      for (const NodeId v : graph.neighbors(from)) {
        if (dist[static_cast<std::size_t>(v)] != d - 1) continue;
        const double dv = distance(graph.position(v), graph.position(to));
        if (best == kInvalidNode || dv < best_dist ||
            (dv == best_dist && v < best)) {
          best = v;
          best_dist = dv;
        }
      }
      BCP_ENSURE(best != kInvalidNode);
      next_hop_[static_cast<std::size_t>(index(from, to))] = best;
    }
  }
}

int RoutingTable::index(NodeId from, NodeId to) const {
  BCP_REQUIRE(from >= 0 && from < n_);
  BCP_REQUIRE(to >= 0 && to < n_);
  return from * n_ + to;
}

NodeId RoutingTable::next_hop(NodeId from, NodeId to) const {
  return next_hop_[static_cast<std::size_t>(index(from, to))];
}

int RoutingTable::hops(NodeId from, NodeId to) const {
  return hops_[static_cast<std::size_t>(index(from, to))];
}

double RoutingTable::mean_hops_to(NodeId to) const {
  double sum = 0;
  int count = 0;
  for (NodeId from = 0; from < n_; ++from) {
    if (from == to) continue;
    const int h = hops(from, to);
    if (h < 0) continue;
    sum += h;
    ++count;
  }
  BCP_REQUIRE_MSG(count > 0, "destination unreachable from every node");
  return sum / count;
}

}  // namespace bcp::net

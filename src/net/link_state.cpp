#include "net/link_state.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace bcp::net {

LinkState::LinkState(int node_count) {
  BCP_REQUIRE(node_count > 0);
  node_up_.assign(static_cast<std::size_t>(node_count), 1);
}

std::uint64_t LinkState::key(NodeId a, NodeId b) {
  const auto lo = static_cast<std::uint64_t>(std::min(a, b));
  const auto hi = static_cast<std::uint64_t>(std::max(a, b));
  return (hi << 32) | lo;
}

bool LinkState::node_up(NodeId node) const {
  BCP_REQUIRE(node >= 0 && node < node_count());
  return node_up_[static_cast<std::size_t>(node)] != 0;
}

void LinkState::set_node_up(NodeId node, bool up) {
  BCP_REQUIRE(node >= 0 && node < node_count());
  auto& state = node_up_[static_cast<std::size_t>(node)];
  if ((state != 0) == up) return;
  state = up ? 1 : 0;
  down_nodes_ += up ? -1 : 1;
  ++revision_;
}

void LinkState::set_link_up(NodeId a, NodeId b, bool up) {
  BCP_REQUIRE(a >= 0 && a < node_count());
  BCP_REQUIRE(b >= 0 && b < node_count());
  BCP_REQUIRE(a != b);
  const std::uint64_t k = key(a, b);
  const bool changed =
      up ? down_links_.erase(k) > 0 : down_links_.insert(k).second;
  if (changed) ++revision_;
}

void LinkState::apply(const MembershipDelta& delta) {
  switch (delta.kind) {
    case MembershipDelta::Kind::kNodeDown:
      set_node_up(delta.node, false);
      break;
    case MembershipDelta::Kind::kNodeUp:
      set_node_up(delta.node, true);
      break;
    case MembershipDelta::Kind::kLinkDown:
      set_link_up(delta.node, delta.peer, false);
      break;
    case MembershipDelta::Kind::kLinkUp:
      set_link_up(delta.node, delta.peer, true);
      break;
  }
}

}  // namespace bcp::net

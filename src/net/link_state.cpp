#include "net/link_state.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace bcp::net {

LinkState::LinkState(int node_count) : node_count_(node_count) {
  BCP_REQUIRE(node_count > 0);
  node_up_.assign(static_cast<std::size_t>(node_count), 1);
}

LinkState::LinkState(std::shared_ptr<const StripeDomain> domain)
    : node_count_(domain == nullptr ? 0 : domain->node_count),
      domain_(std::move(domain)) {
  BCP_REQUIRE(domain_ != nullptr && domain_->node_count > 0);
  BCP_REQUIRE(domain_->shard_of != nullptr && domain_->local_of != nullptr);
  BCP_REQUIRE(domain_->owned > 0 &&
              domain_->dense_count() <= domain_->node_count);
  node_up_.assign(static_cast<std::size_t>(domain_->dense_count()), 1);
}

std::uint64_t LinkState::key(NodeId a, NodeId b) {
  const auto lo = static_cast<std::uint64_t>(std::min(a, b));
  const auto hi = static_cast<std::uint64_t>(std::max(a, b));
  return (hi << 32) | lo;
}

bool LinkState::node_up(NodeId node) const {
  BCP_REQUIRE(node >= 0 && node < node_count());
  if (domain_ != nullptr) {
    const std::int32_t slot = domain_->dense_slot(node);
    if (slot < 0) return down_remote_.find(node) == down_remote_.end();
    return node_up_[static_cast<std::size_t>(slot)] != 0;
  }
  return node_up_[static_cast<std::size_t>(node)] != 0;
}

void LinkState::set_node_up(NodeId node, bool up) {
  BCP_REQUIRE(node >= 0 && node < node_count());
  if (domain_ != nullptr) {
    const std::int32_t slot = domain_->dense_slot(node);
    if (slot < 0) {
      // Outside owned + halo: the sparse overflow. Same idempotence and
      // revision discipline as the dense path.
      const bool changed =
          up ? down_remote_.erase(node) > 0 : down_remote_.insert(node).second;
      if (!changed) return;
      down_nodes_ += up ? -1 : 1;
      ++revision_;
      return;
    }
    auto& state = node_up_[static_cast<std::size_t>(slot)];
    if ((state != 0) == up) return;
    state = up ? 1 : 0;
    down_nodes_ += up ? -1 : 1;
    ++revision_;
    return;
  }
  auto& state = node_up_[static_cast<std::size_t>(node)];
  if ((state != 0) == up) return;
  state = up ? 1 : 0;
  down_nodes_ += up ? -1 : 1;
  ++revision_;
}

void LinkState::set_link_up(NodeId a, NodeId b, bool up) {
  BCP_REQUIRE(a >= 0 && a < node_count());
  BCP_REQUIRE(b >= 0 && b < node_count());
  BCP_REQUIRE(a != b);
  const std::uint64_t k = key(a, b);
  const bool changed =
      up ? down_links_.erase(k) > 0 : down_links_.insert(k).second;
  if (changed) ++revision_;
}

void LinkState::apply(const MembershipDelta& delta) {
  switch (delta.kind) {
    case MembershipDelta::Kind::kNodeDown:
      set_node_up(delta.node, false);
      break;
    case MembershipDelta::Kind::kNodeUp:
      set_node_up(delta.node, true);
      break;
    case MembershipDelta::Kind::kLinkDown:
      set_link_up(delta.node, delta.peer, false);
      break;
    case MembershipDelta::Kind::kLinkUp:
      set_link_up(delta.node, delta.peer, true);
      break;
  }
}

}  // namespace bcp::net

#include "net/message.hpp"

#include "util/assert.hpp"

namespace bcp::net {

util::Bits BulkFrame::payload_bits() const {
  if (cached_payload_bits >= 0) return cached_payload_bits;
  util::Bits total_bits = 0;
  for (const auto& p : packets) total_bits += p.payload_bits;
  return total_bits;
}

void BulkFrame::cache_payload_bits() {
  cached_payload_bits = -1;  // force a fresh sum
  cached_payload_bits = payload_bits();
}

util::Bits control_body_bits() { return util::bytes(16); }

util::Bits Message::size_bits() const {
  struct Visitor {
    util::Bits operator()(const DataPacket& p) const { return p.payload_bits; }
    util::Bits operator()(const WakeupRequest&) const {
      return control_body_bits();
    }
    util::Bits operator()(const WakeupAck&) const {
      return control_body_bits();
    }
    util::Bits operator()(const BulkFrame& f) const {
      return f.payload_bits();
    }
  };
  const util::Bits bits = std::visit(Visitor{}, body);
  BCP_ENSURE(bits >= 0);
  return bits;
}

}  // namespace bcp::net

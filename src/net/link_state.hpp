// Dynamic membership and link availability over a static placement.
//
// The fault/churn subsystem flips nodes and links up and down at run time;
// everything that consumed the static ConnectivityGraph — the Channel's
// hearer loop, the routers' BFS — consults one shared LinkState per radio
// class instead of mutating the graph. Two design points:
//
//   * The hot path stays free: `link_up` answers through an all-up fast
//     path (one branch) while nothing is down, which is every frame of a
//     fault-free run.
//   * Every effective change bumps a revision counter. Routing wraps its
//     (expensive) tree/table build behind the counter (net::DynamicRouting)
//     so the convergecast tree is rebuilt only on membership change, not
//     per query and not per fault event that changed nothing.
//
// A link is up iff both endpoints are up and the (unordered) pair has not
// been taken down explicitly. Setting a state it already has is a no-op
// and does not bump the revision.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "net/message.hpp"

namespace bcp::net {

/// One membership mutation, ready to be re-applied to another replica.
///
/// The sharded engine keeps one LinkState replica per shard: the shard
/// that owns a node applies crash/recover/flap mutations to its own
/// replica at the exact event instant, queues the mutation as a delta,
/// and the coordinator broadcasts the accumulated batch to every replica
/// at the next window barrier (sorted by `before` — (time, shard, node,
/// peer, kind)), so remote shards see a membership change at most one
/// window late. Re-applying a delta to the replica that originated it is
/// a no-op by LinkState's set-idempotence, so the broadcast does not bump
/// the owner's revision a second time.
struct MembershipDelta {
  enum class Kind : std::uint8_t { kNodeDown, kNodeUp, kLinkDown, kLinkUp };
  double time = 0;       ///< event instant in the owning shard
  std::int32_t shard = 0;  ///< owning shard (deterministic tie-break)
  NodeId node = -1;
  NodeId peer = -1;  ///< second endpoint for link deltas, -1 otherwise
  Kind kind = Kind::kNodeDown;

  /// Deterministic application order: (time, shard, node, peer, kind).
  static bool before(const MembershipDelta& a, const MembershipDelta& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.shard != b.shard) return a.shard < b.shard;
    if (a.node != b.node) return a.node < b.node;
    if (a.peer != b.peer) return a.peer < b.peer;
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  }
};

class LinkState {
 public:
  explicit LinkState(int node_count);

  int node_count() const { return static_cast<int>(node_up_.size()); }

  /// True while no node and no link is down — the fast path.
  bool all_up() const { return down_nodes_ == 0 && down_links_.empty(); }

  bool node_up(NodeId node) const;

  /// Both endpoints up and the pair not explicitly down.
  bool link_up(NodeId a, NodeId b) const {
    if (all_up()) return true;
    return node_up(a) && node_up(b) &&
           down_links_.find(key(a, b)) == down_links_.end();
  }

  void set_node_up(NodeId node, bool up);
  void set_link_up(NodeId a, NodeId b, bool up);

  /// Replays one membership delta onto this replica (no-op, and no
  /// revision bump, if the state already matches — see MembershipDelta).
  void apply(const MembershipDelta& delta);

  /// Bumped on every effective change; consumers cache against it.
  std::uint64_t revision() const { return revision_; }

  /// Invalidates consumers' caches without changing membership. The
  /// lifetime-routing refresh tick uses this: battery fractions drift
  /// continuously, so between deaths no set_* call would ever prompt
  /// DynamicRouting to re-read them.
  void touch() { ++revision_; }

  int down_node_count() const { return down_nodes_; }
  std::size_t down_link_count() const { return down_links_.size(); }

 private:
  static std::uint64_t key(NodeId a, NodeId b);

  std::vector<std::uint8_t> node_up_;
  std::unordered_set<std::uint64_t> down_links_;
  std::uint64_t revision_ = 0;
  int down_nodes_ = 0;
};

}  // namespace bcp::net

// Dynamic membership and link availability over a static placement.
//
// The fault/churn subsystem flips nodes and links up and down at run time;
// everything that consumed the static ConnectivityGraph — the Channel's
// hearer loop, the routers' BFS — consults one shared LinkState per radio
// class instead of mutating the graph. Two design points:
//
//   * The hot path stays free: `link_up` answers through an all-up fast
//     path (one branch) while nothing is down, which is every frame of a
//     fault-free run.
//   * Every effective change bumps a revision counter. Routing wraps its
//     (expensive) tree/table build behind the counter (net::DynamicRouting)
//     so the convergecast tree is rebuilt only on membership change, not
//     per query and not per fault event that changed nothing.
//
// A link is up iff both endpoints are up and the (unordered) pair has not
// been taken down explicitly. Setting a state it already has is a no-op
// and does not bump the revision.
//
// Memory model: the historical constructor keeps one dense byte per node —
// right for the single-queue engine and for the coordinator replicas. A
// sharded partition instead constructs its replica over a StripeDomain:
// dense bytes only for the stripe it owns plus the halo of boundary
// neighbors it must hear (the ids its channel partition ever asks about),
// and a sparse down-set for every other node a broadcast membership delta
// names. Queries and revision bumps are semantically identical to the
// dense layout — same answers, same revisions, byte-identical downstream
// metrics — while per-partition memory drops from O(n) to
// O(n/shards + halo).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/message.hpp"

namespace bcp::net {

/// One membership mutation, ready to be re-applied to another replica.
///
/// The sharded engine keeps one LinkState replica per shard: the shard
/// that owns a node applies crash/recover/flap mutations to its own
/// replica at the exact event instant, queues the mutation as a delta,
/// and the coordinator broadcasts the accumulated batch to every replica
/// at the next window barrier (sorted by `before` — (time, shard, node,
/// peer, kind)), so remote shards see a membership change at most one
/// window late. Re-applying a delta to the replica that originated it is
/// a no-op by LinkState's set-idempotence, so the broadcast does not bump
/// the owner's revision a second time.
struct MembershipDelta {
  enum class Kind : std::uint8_t { kNodeDown, kNodeUp, kLinkDown, kLinkUp };
  double time = 0;       ///< event instant in the owning shard
  std::int32_t shard = 0;  ///< owning shard (deterministic tie-break)
  NodeId node = -1;
  NodeId peer = -1;  ///< second endpoint for link deltas, -1 otherwise
  Kind kind = Kind::kNodeDown;

  /// Deterministic application order: (time, shard, node, peer, kind).
  static bool before(const MembershipDelta& a, const MembershipDelta& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.shard != b.shard) return a.shard < b.shard;
    if (a.node != b.node) return a.node < b.node;
    if (a.peer != b.peer) return a.peer < b.peer;
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  }
};

/// Stripe-local id domain of one partition: which global node ids get a
/// dense slot in that partition's node-indexed state. Slots [0, owned)
/// are the stripe's own nodes in ascending global-id order (the same
/// contiguous local ids phy::ShardMap::local_of assigns); slots
/// [owned, owned + halo) are the halo — remote nodes adjacent to an owned
/// node in some radio graph, i.e. every id the partition's channels can
/// name in a membership query. Built once per shard (phy::ShardMap::
/// domain) and shared by that shard's replicas across radio classes.
struct StripeDomain {
  int node_count = 0;      ///< global population (bounds checks)
  std::int32_t shard = 0;  ///< which stripe this domain describes
  std::int32_t owned = 0;  ///< dense slots [0, owned)
  /// Global per-node arrays (not owned; the ShardMap outlives the run).
  const std::int32_t* shard_of = nullptr;
  const std::int32_t* local_of = nullptr;
  /// Halo ids → dense slots in [owned, owned + halo_slot.size()).
  std::unordered_map<NodeId, std::int32_t> halo_slot;

  std::int32_t dense_count() const {
    return owned + static_cast<std::int32_t>(halo_slot.size());
  }

  /// Dense slot of a global id, or -1 when the id is outside owned + halo
  /// (those fall through to a replica's sparse down-set).
  std::int32_t dense_slot(NodeId global) const {
    if (shard_of[static_cast<std::size_t>(global)] == shard)
      return local_of[static_cast<std::size_t>(global)];
    const auto it = halo_slot.find(global);
    return it == halo_slot.end() ? -1 : it->second;
  }
};

class LinkState {
 public:
  /// Dense over every node — the single-queue engine's shared state and
  /// the sharded coordinator's ground-truth replicas.
  explicit LinkState(int node_count);

  /// Stripe-local replica: dense over `domain` (owned stripe + halo),
  /// sparse beyond it. Answers and revision bumps are identical to the
  /// dense layout for any query in [0, node_count).
  explicit LinkState(std::shared_ptr<const StripeDomain> domain);

  int node_count() const { return node_count_; }

  /// True while no node and no link is down — the fast path.
  bool all_up() const { return down_nodes_ == 0 && down_links_.empty(); }

  bool node_up(NodeId node) const;

  /// Both endpoints up and the pair not explicitly down.
  bool link_up(NodeId a, NodeId b) const {
    if (all_up()) return true;
    return node_up(a) && node_up(b) &&
           down_links_.find(key(a, b)) == down_links_.end();
  }

  void set_node_up(NodeId node, bool up);
  void set_link_up(NodeId a, NodeId b, bool up);

  /// Replays one membership delta onto this replica (no-op, and no
  /// revision bump, if the state already matches — see MembershipDelta).
  void apply(const MembershipDelta& delta);

  /// Bumped on every effective change; consumers cache against it.
  std::uint64_t revision() const { return revision_; }

  /// Invalidates consumers' caches without changing membership. The
  /// lifetime-routing refresh tick uses this: battery fractions drift
  /// continuously, so between deaths no set_* call would ever prompt
  /// DynamicRouting to re-read them.
  void touch() { ++revision_; }

  int down_node_count() const { return down_nodes_; }
  std::size_t down_link_count() const { return down_links_.size(); }

  /// Dense bytes actually allocated: node_count() for the historical
  /// layout, owned + halo for a stripe-local replica (the white-box
  /// memory-model assertion the sharded tests pin).
  std::size_t dense_size() const { return node_up_.size(); }
  bool stripe_local() const { return domain_ != nullptr; }

 private:
  static std::uint64_t key(NodeId a, NodeId b);

  int node_count_ = 0;
  std::shared_ptr<const StripeDomain> domain_;  ///< null = dense layout
  std::vector<std::uint8_t> node_up_;  ///< dense part (all, or owned+halo)
  /// Stripe-local only: down nodes outside the dense domain. Bounded by
  /// the number of distinct nodes membership deltas ever name, never by n.
  std::unordered_set<NodeId> down_remote_;
  std::unordered_set<std::uint64_t> down_links_;
  std::uint64_t revision_ = 0;
  int down_nodes_ = 0;
};

}  // namespace bcp::net

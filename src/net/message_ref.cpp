#include "net/message_ref.hpp"

#include <utility>

#include "util/assert.hpp"

namespace bcp::net {

void MessageRef::reset() {
  if (node_ == nullptr) return;
  detail::MessageNode* node = node_;
  node_ = nullptr;
  BCP_ENSURE(node->refs > 0);
  if (--node->refs == 0) node->pool->release(node);
}

MessagePool& MessagePool::local() {
  thread_local MessagePool pool;
  return pool;
}

MessagePool::~MessagePool() {
  // All handles must be gone before their pool: scenario objects are
  // destroyed before thread exit, so this only trips on misuse (a ref
  // stashed in a static, or moved across threads).
  BCP_ENSURE_MSG(outstanding_ == 0,
                 "MessageRef outlived its thread's MessagePool");
  while (chunks_ != nullptr) {
    Chunk* next = chunks_->next;
    delete chunks_;
    chunks_ = next;
  }
}

void MessagePool::grow() {
  Chunk* chunk = new Chunk;
  chunk->next = chunks_;
  chunks_ = chunk;
  for (std::size_t i = 0; i < kChunkNodes; ++i) {
    detail::MessageNode& node = chunk->nodes[i];
    node.pool = this;
    node.next_free = free_;
    free_ = &node;
  }
  pooled_ += kChunkNodes;
}

MessageRef MessagePool::make(Message&& msg) {
  if (free_ == nullptr) grow();
  detail::MessageNode* node = free_;
  free_ = node->next_free;
  node->next_free = nullptr;
  --pooled_;
  ++outstanding_;
  // Move-assign over whatever body the node last carried; a reused
  // BulkFrame body is destroyed here and the caller's moved-in state
  // (including its packets vector) takes its place without a deep copy.
  node->msg = std::move(msg);
  node->refs = 1;
  return MessageRef(node);
}

void MessagePool::release(detail::MessageNode* node) {
  BCP_ENSURE(outstanding_ > 0);
  --outstanding_;
  ++pooled_;
  node->next_free = free_;
  free_ = node;
}

}  // namespace bcp::net

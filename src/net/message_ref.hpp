// Shared-immutable message payloads for the frame hot path.
//
// A transmitted message is observed in many places at once — the MAC's
// queue head, the Frame on the air, the Channel's in-flight transmission
// record, and every hearer's rx callbacks. Passing net::Message by value
// through that chain deep-copies BulkFrame::packets (a heap vector of up
// to thousands of DataPackets) four to five times per transmission.
//
// MessageRef makes the payload shared-immutable instead: the message is
// moved ONCE into a pooled node and every hop of the chain copies an
// 8-byte ref-counted handle. Nodes come from a thread-local MessagePool
// free list (arena chunks, never returned to the OS mid-run), so in
// steady state creating and releasing a message allocates nothing — the
// same fixed-cost-amortization argument the paper makes for bulk radio
// transfers, applied to allocator traffic.
//
// Single-threaded by design (like the rest of the simulator; CP.1): the
// refcount is a plain integer and a MessageRef must never cross threads.
// The sweep engine is compatible — each worker thread runs whole
// scenarios, so every ref lives and dies on its owning thread's pool.
#pragma once

#include <cstdint>

#include "net/message.hpp"

namespace bcp::net {

class MessagePool;

namespace detail {
struct MessageNode {
  Message msg;
  std::uint32_t refs = 0;
  MessageNode* next_free = nullptr;
  MessagePool* pool = nullptr;  ///< owning pool, for release
};
}  // namespace detail

/// Cheap, copyable handle to an immutable pooled Message. A default
/// constructed ref is empty (boolean false).
class MessageRef {
 public:
  MessageRef() = default;
  MessageRef(const MessageRef& other) : node_(other.node_) {
    if (node_ != nullptr) ++node_->refs;
  }
  MessageRef(MessageRef&& other) noexcept : node_(other.node_) {
    other.node_ = nullptr;
  }
  MessageRef& operator=(const MessageRef& other) {
    if (this != &other) {
      reset();
      node_ = other.node_;
      if (node_ != nullptr) ++node_->refs;
    }
    return *this;
  }
  MessageRef& operator=(MessageRef&& other) noexcept {
    if (this != &other) {
      reset();
      node_ = other.node_;
      other.node_ = nullptr;
    }
    return *this;
  }
  ~MessageRef() { reset(); }

  explicit operator bool() const { return node_ != nullptr; }
  const Message& operator*() const { return node_->msg; }
  const Message* operator->() const { return &node_->msg; }
  const Message* get() const {
    return node_ != nullptr ? &node_->msg : nullptr;
  }

  /// Drops this handle; the node returns to its pool when the last handle
  /// goes.
  void reset();

 private:
  friend class MessagePool;
  explicit MessageRef(detail::MessageNode* node) : node_(node) {}
  detail::MessageNode* node_ = nullptr;
};

/// Arena-backed free list of message nodes. One pool per thread
/// (MessagePool::local()); chunks are retained for the pool's lifetime so
/// steady-state make/release cycles never touch the allocator.
class MessagePool {
 public:
  MessagePool() = default;
  MessagePool(const MessagePool&) = delete;
  MessagePool& operator=(const MessagePool&) = delete;
  ~MessagePool();

  /// The calling thread's pool.
  static MessagePool& local();

  /// Moves `msg` into a pooled node and returns the first handle to it.
  MessageRef make(Message&& msg);

  /// Live messages (handles outstanding) — for tests and leak checks.
  std::size_t outstanding() const { return outstanding_; }
  /// Nodes sitting on the free list, ready for reuse.
  std::size_t pooled() const { return pooled_; }

 private:
  friend class MessageRef;
  static constexpr std::size_t kChunkNodes = 64;

  struct Chunk {
    detail::MessageNode nodes[kChunkNodes];
    Chunk* next = nullptr;
  };

  void release(detail::MessageNode* node);
  void grow();

  Chunk* chunks_ = nullptr;               // singly linked arena blocks
  detail::MessageNode* free_ = nullptr;   // free-list head
  std::size_t outstanding_ = 0;
  std::size_t pooled_ = 0;
};

/// Wraps `msg` in the calling thread's pool — the way messages enter the
/// MAC/PHY chain.
inline MessageRef make_message(Message&& msg) {
  return MessagePool::local().make(std::move(msg));
}

}  // namespace bcp::net

// Network-layer message types.
//
// Four message bodies cross the network (§3 of the paper):
//   DataPacket    — an application sensor reading (32 B in §4.1); subject to
//                   BCP buffering in the dual-radio model, forwarded
//                   hop-by-hop in the single-radio models.
//   WakeupRequest — BCP control: "I have `burst_bits` for you, wake up";
//                   sent over the low-power radio, possibly multi-hop.
//   WakeupAck     — BCP control: "send up to `granted_bits`"; also over the
//                   low-power radio.
//   BulkFrame     — an assembly of buffered DataPackets shipped in one
//                   high-power-radio frame (1024 B payload in §4.1).
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "util/units.hpp"

namespace bcp::net {

using NodeId = std::int32_t;
constexpr NodeId kInvalidNode = -1;
/// MAC-layer broadcast address.
constexpr NodeId kBroadcastNode = -2;

/// One application data unit. `payload_bits` is the network-layer packet
/// size (the paper's 32 B sensor packet); link headers are added per hop by
/// the MAC.
struct DataPacket {
  NodeId origin = kInvalidNode;        ///< node that generated the packet
  NodeId destination = kInvalidNode;   ///< final destination (the sink)
  std::uint32_t seq = 0;               ///< per-origin sequence number
  util::Bits payload_bits = 0;
  util::Seconds created_at = 0;        ///< generation time, for delay metrics
};

/// BCP wake-up request (§3, "Sender Side: Interface to MAC layers").
struct WakeupRequest {
  NodeId requester = kInvalidNode;
  NodeId target = kInvalidNode;
  std::uint32_t handshake_id = 0;
  util::Bits burst_bits = 0;  ///< amount of buffered data the sender holds
};

/// BCP wake-up acknowledgment carrying the receiver's grant (§3, "Receiver
/// Side"). `granted_bits` may be lower than requested when the receiver is
/// short on buffer space.
struct WakeupAck {
  NodeId responder = kInvalidNode;
  NodeId requester = kInvalidNode;
  std::uint32_t handshake_id = 0;
  util::Bits granted_bits = 0;
};

/// A bundle of DataPackets assembled into one high-power-radio frame.
/// `index`/`total` let the receiver know when the advertised burst is
/// complete (it "turns off its high-power radio when it receives the total
/// number of packets advertised or after a timeout").
struct BulkFrame {
  NodeId sender = kInvalidNode;
  NodeId receiver = kInvalidNode;
  std::uint32_t handshake_id = 0;
  std::uint16_t index = 0;  ///< 0-based frame index within the burst
  std::uint16_t total = 0;  ///< number of frames in the burst
  std::vector<DataPacket> packets;
  /// Sum of packets' payload_bits, stamped once at assembly
  /// (cache_payload_bits) so the MAC/energy hot paths don't re-sum the
  /// burst on every size query; < 0 means not cached (hand-built frames).
  util::Bits cached_payload_bits = -1;

  util::Bits payload_bits() const;

  /// Computes and stores the payload size. Call after the packet set is
  /// final — the cache is NOT invalidated by later mutation.
  void cache_payload_bits();
};

using MessageBody =
    std::variant<DataPacket, WakeupRequest, WakeupAck, BulkFrame>;

/// A routed network message: `src` originated it, `dst` must consume it.
/// Control messages relay over intermediate low-power hops; BulkFrames are
/// single-hop (src and dst adjacent on the high-power radio).
struct Message {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  MessageBody body;

  /// Network-layer size on the air (link header excluded — the MAC adds it).
  util::Bits size_bits() const;

  bool is_data() const { return std::holds_alternative<DataPacket>(body); }
  bool is_control() const {
    return std::holds_alternative<WakeupRequest>(body) ||
           std::holds_alternative<WakeupAck>(body);
  }
  bool is_bulk() const { return std::holds_alternative<BulkFrame>(body); }
};

/// Size of a WakeupRequest/WakeupAck control body (16 B, matching
/// energy::default_wakeup_message_bits() minus the link header).
util::Bits control_body_bits();

}  // namespace bcp::net

#include "net/topology.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace bcp::net {

util::Metres distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

GridTopology::GridTopology(int side, util::Metres area, NodeId sink)
    : side_(side),
      spacing_(side > 1 ? area / (side - 1) : 0.0),
      sink_(sink) {
  BCP_REQUIRE(side >= 1);
  BCP_REQUIRE(area > 0);
  BCP_REQUIRE(sink >= 0 && sink < side * side);
  positions_.reserve(static_cast<std::size_t>(side) *
                     static_cast<std::size_t>(side));
  for (int row = 0; row < side; ++row)
    for (int col = 0; col < side; ++col)
      positions_.push_back(Position{col * spacing_, row * spacing_});
}

GridTopology GridTopology::paper_grid() { return GridTopology(6, 200.0, 0); }

const Position& GridTopology::position(NodeId id) const {
  BCP_REQUIRE(id >= 0 && id < node_count());
  return positions_[static_cast<std::size_t>(id)];
}

ConnectivityGraph::ConnectivityGraph(std::vector<Position> positions,
                                     util::Metres range)
    : positions_(std::move(positions)), range_(range) {
  BCP_REQUIRE(range > 0);
  const auto n = positions_.size();
  neighbors_.resize(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (distance(positions_[a], positions_[b]) <= range_) {
        neighbors_[a].push_back(static_cast<NodeId>(b));
        neighbors_[b].push_back(static_cast<NodeId>(a));
      }
    }
  }
}

const std::vector<NodeId>& ConnectivityGraph::neighbors(NodeId id) const {
  BCP_REQUIRE(id >= 0 && id < node_count());
  return neighbors_[static_cast<std::size_t>(id)];
}

bool ConnectivityGraph::connected(NodeId a, NodeId b) const {
  BCP_REQUIRE(a >= 0 && a < node_count());
  BCP_REQUIRE(b >= 0 && b < node_count());
  if (a == b) return false;
  return distance(positions_[static_cast<std::size_t>(a)],
                  positions_[static_cast<std::size_t>(b)]) <= range_;
}

const Position& ConnectivityGraph::position(NodeId id) const {
  BCP_REQUIRE(id >= 0 && id < node_count());
  return positions_[static_cast<std::size_t>(id)];
}

}  // namespace bcp::net

#include "net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace bcp::net {

util::Metres distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

// ------------------------------------------------------------- Topology --

const Position& Topology::position(NodeId id) const {
  BCP_REQUIRE(id >= 0 && id < node_count());
  return positions[static_cast<std::size_t>(id)];
}

namespace {

/// RNG stream for placement draws, salted away from every traffic stream.
util::Xoshiro256 placement_rng(std::uint64_t seed) {
  return util::Xoshiro256(util::substream(seed, 0, /*salt=*/0x544F504Fu));
}

/// Deterministic standard normal via Box–Muller (std::normal_distribution
/// is implementation-defined, which would break byte-identical placement
/// across standard libraries).
double standard_normal(util::Xoshiro256& rng) {
  // uniform() is in [0, 1); shift off zero for the log.
  const double u1 = 1.0 - rng.uniform();
  const double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.141592653589793238462643383279502884 * u2);
}

}  // namespace

Topology Topology::grid(int side, util::Metres area, NodeId sink) {
  BCP_REQUIRE(side >= 1);
  BCP_REQUIRE(area > 0);
  BCP_REQUIRE(sink >= 0 && sink < side * side);
  const util::Metres spacing = side > 1 ? area / (side - 1) : 0.0;
  Topology t;
  t.name = "grid";
  t.sink = sink;
  t.positions.reserve(static_cast<std::size_t>(side) *
                      static_cast<std::size_t>(side));
  for (int row = 0; row < side; ++row)
    for (int col = 0; col < side; ++col)
      t.positions.push_back(Position{col * spacing, row * spacing});
  return t;
}

Topology Topology::uniform_random(int n, util::Metres area,
                                  std::uint64_t seed) {
  BCP_REQUIRE(n >= 1);
  BCP_REQUIRE(area > 0);
  util::Xoshiro256 rng = placement_rng(seed);
  Topology t;
  t.name = "rand";
  t.sink = 0;
  t.positions.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform(0.0, area);
    const double y = rng.uniform(0.0, area);
    t.positions.push_back(Position{x, y});
  }
  return t;
}

Topology Topology::gaussian_clusters(int n, util::Metres area, int clusters,
                                     util::Metres spread,
                                     std::uint64_t seed) {
  BCP_REQUIRE(n >= 1);
  BCP_REQUIRE(area > 0);
  BCP_REQUIRE(clusters >= 1);
  BCP_REQUIRE(spread > 0);
  util::Xoshiro256 rng = placement_rng(seed);
  std::vector<Position> centres;
  centres.reserve(static_cast<std::size_t>(clusters));
  // Keep centres a spread away from the boundary when the square allows.
  const double margin = std::min(spread, area / 2.0);
  for (int c = 0; c < clusters; ++c) {
    const double x = rng.uniform(margin, area - margin);
    const double y = rng.uniform(margin, area - margin);
    centres.push_back(Position{x, y});
  }
  Topology t;
  t.name = "cluster";
  t.sink = 0;
  t.positions.reserve(static_cast<std::size_t>(n));
  // Node 0 — the sink — sits exactly on the first centre (the "base
  // station at the first cluster" convention).
  t.positions.push_back(centres.front());
  for (int i = 1; i < n; ++i) {
    const Position& c =
        centres[static_cast<std::size_t>(i % clusters)];
    const double x =
        std::clamp(c.x + spread * standard_normal(rng), 0.0, area);
    const double y =
        std::clamp(c.y + spread * standard_normal(rng), 0.0, area);
    t.positions.push_back(Position{x, y});
  }
  return t;
}

Topology Topology::line_corridor(int n, util::Metres length,
                                 util::Metres width, std::uint64_t seed) {
  BCP_REQUIRE(n >= 1);
  BCP_REQUIRE(length > 0);
  BCP_REQUIRE(width > 0);
  util::Xoshiro256 rng = placement_rng(seed);
  const util::Metres spacing = n > 1 ? length / (n - 1) : 0.0;
  Topology t;
  t.name = "line";
  t.sink = 0;
  t.positions.reserve(static_cast<std::size_t>(n));
  // The sink guards the corridor mouth at mid-width; the rest keep their
  // lattice x (so a spacing <= range guarantees a connected chain) with
  // uniform lateral jitter.
  t.positions.push_back(Position{0.0, width / 2.0});
  for (int i = 1; i < n; ++i) {
    const double y = rng.uniform(0.0, width);
    t.positions.push_back(Position{i * spacing, y});
  }
  return t;
}

Topology Topology::ring(int n, util::Metres radius) {
  BCP_REQUIRE(n >= 1);
  BCP_REQUIRE(radius > 0);
  Topology t;
  t.name = "ring";
  t.sink = 0;
  t.positions.reserve(static_cast<std::size_t>(n));
  const double tau = 2.0 * 3.141592653589793238462643383279502884;
  for (int i = 0; i < n; ++i) {
    const double angle = tau * i / n;
    t.positions.push_back(Position{radius + radius * std::cos(angle),
                                   radius + radius * std::sin(angle)});
  }
  return t;
}

// --------------------------------------------------------- TopologySpec --

const char* to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kGrid:             return "grid";
    case TopologyKind::kUniformRandom:    return "rand";
    case TopologyKind::kGaussianClusters: return "cluster";
    case TopologyKind::kLineCorridor:     return "line";
    case TopologyKind::kRing:             return "ring";
  }
  return "?";
}

Topology TopologySpec::build() const {
  switch (kind) {
    case TopologyKind::kGrid:
      return Topology::grid(grid_side, area, sink);
    case TopologyKind::kUniformRandom:
      return Topology::uniform_random(nodes, area, seed);
    case TopologyKind::kGaussianClusters:
      return Topology::gaussian_clusters(nodes, area, clusters,
                                         cluster_spread, seed);
    case TopologyKind::kLineCorridor:
      return Topology::line_corridor(nodes, area, corridor_width, seed);
    case TopologyKind::kRing:
      return Topology::ring(nodes, area / 2.0);
  }
  BCP_REQUIRE_MSG(false, "unknown topology kind");
  throw std::logic_error("unreachable");
}

TopologySpec first_connected(TopologySpec spec, util::Metres range,
                             int max_tries) {
  BCP_REQUIRE(range > 0);
  BCP_REQUIRE(max_tries >= 1);
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    const Topology topo = spec.build();
    const ConnectivityGraph graph(topo.positions, range);
    if (unreachable_from(graph, topo.sink).empty()) return spec;
    ++spec.seed;
  }
  BCP_REQUIRE_MSG(false,
                  std::string("no sink-connected ") + to_string(spec.kind) +
                      " placement of " + std::to_string(spec.node_count()) +
                      " nodes at range " + std::to_string(range) +
                      " m within " + std::to_string(max_tries) + " seeds");
  throw std::logic_error("unreachable");
}

// --------------------------------------------------------- GridTopology --

GridTopology::GridTopology(int side, util::Metres area, NodeId sink)
    : side_(side),
      spacing_(side > 1 ? area / (side - 1) : 0.0),
      sink_(sink) {
  BCP_REQUIRE(side >= 1);
  BCP_REQUIRE(area > 0);
  BCP_REQUIRE(sink >= 0 && sink < side * side);
  positions_ = Topology::grid(side, area, sink).positions;
}

GridTopology GridTopology::paper_grid() { return GridTopology(6, 200.0, 0); }

const Position& GridTopology::position(NodeId id) const {
  BCP_REQUIRE(id >= 0 && id < node_count());
  return positions_[static_cast<std::size_t>(id)];
}

// ---------------------------------------------------- ConnectivityGraph --

namespace {

/// Packs a (column, row) cell coordinate into one hash key.
std::uint64_t pack_cell(std::int64_t cx, std::int64_t cy) {
  return (static_cast<std::uint64_t>(cx) << 32) ^
         (static_cast<std::uint64_t>(cy) & 0xFFFFFFFFull);
}

/// Spatial-hash cell key for a position at the given cell size.
std::uint64_t cell_key(const Position& p, util::Metres cell) {
  return pack_cell(static_cast<std::int64_t>(std::floor(p.x / cell)),
                   static_cast<std::int64_t>(std::floor(p.y / cell)));
}

}  // namespace

ConnectivityGraph::ConnectivityGraph(std::vector<Position> positions,
                                     util::Metres range)
    : positions_(std::move(positions)), range_(range) {
  BCP_REQUIRE(range > 0);
  const auto n = positions_.size();
  neighbors_.resize(n);

  // Bucket nodes into cells of side `range`: any link spans at most one
  // cell in each axis, so each node only tests candidates from its 3×3
  // cell block — O(n) total for bounded-density placements.
  std::unordered_map<std::uint64_t, std::vector<NodeId>> cells;
  cells.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    cells[cell_key(positions_[i], range_)].push_back(
        static_cast<NodeId>(i));

  for (std::size_t i = 0; i < n; ++i) {
    const Position& p = positions_[i];
    const auto cx = static_cast<std::int64_t>(std::floor(p.x / range_));
    const auto cy = static_cast<std::int64_t>(std::floor(p.y / range_));
    auto& out = neighbors_[i];
    for (std::int64_t dx = -1; dx <= 1; ++dx)
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        const auto it = cells.find(pack_cell(cx + dx, cy + dy));
        if (it == cells.end()) continue;
        for (const NodeId b : it->second) {
          if (static_cast<std::size_t>(b) == i) continue;
          if (distance(p, positions_[static_cast<std::size_t>(b)]) <=
              range_)
            out.push_back(b);
        }
      }
    // The pairwise scan this replaced produced ascending lists; keep that
    // order so every downstream BFS walks links identically.
    std::sort(out.begin(), out.end());
  }
}

const std::vector<NodeId>& ConnectivityGraph::neighbors(NodeId id) const {
  BCP_REQUIRE(id >= 0 && id < node_count());
  return neighbors_[static_cast<std::size_t>(id)];
}

bool ConnectivityGraph::connected(NodeId a, NodeId b) const {
  BCP_REQUIRE(a >= 0 && a < node_count());
  BCP_REQUIRE(b >= 0 && b < node_count());
  if (a == b) return false;
  return distance(positions_[static_cast<std::size_t>(a)],
                  positions_[static_cast<std::size_t>(b)]) <= range_;
}

const Position& ConnectivityGraph::position(NodeId id) const {
  BCP_REQUIRE(id >= 0 && id < node_count());
  return positions_[static_cast<std::size_t>(id)];
}

// ------------------------------------------------- connectivity queries --

std::vector<int> connected_components(const ConnectivityGraph& graph) {
  const int n = graph.node_count();
  std::vector<int> label(static_cast<std::size_t>(n), -1);
  int next = 0;
  std::deque<NodeId> queue;
  for (NodeId start = 0; start < n; ++start) {
    if (label[static_cast<std::size_t>(start)] >= 0) continue;
    label[static_cast<std::size_t>(start)] = next;
    queue.push_back(start);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (const NodeId v : graph.neighbors(u)) {
        if (label[static_cast<std::size_t>(v)] >= 0) continue;
        label[static_cast<std::size_t>(v)] = next;
        queue.push_back(v);
      }
    }
    ++next;
  }
  return label;
}

std::vector<NodeId> unreachable_from(const ConnectivityGraph& graph,
                                     NodeId root) {
  BCP_REQUIRE(root >= 0 && root < graph.node_count());
  const std::vector<int> label = connected_components(graph);
  const int root_label = label[static_cast<std::size_t>(root)];
  std::vector<NodeId> out;
  for (NodeId id = 0; id < graph.node_count(); ++id)
    if (label[static_cast<std::size_t>(id)] != root_label)
      out.push_back(id);
  return out;
}

std::string format_node_list(const std::vector<NodeId>& nodes,
                             std::size_t max_listed) {
  std::string out = "[";
  for (std::size_t i = 0; i < nodes.size() && i < max_listed; ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(nodes[i]);
  }
  if (nodes.size() > max_listed)
    out += ", ... (" + std::to_string(nodes.size() - max_listed) + " more)";
  out += "]";
  return out;
}

}  // namespace bcp::net

// Streaming summary statistics with Student-t confidence intervals.
//
// The paper reports "an average of 20 runs and 95% confidence intervals";
// every bench harness aggregates per-run metrics through this class.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace bcp::stats {

/// Welford-style running mean/variance.
class Summary {
 public:
  void add(double x);

  std::int64_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance (requires >= 2 samples).
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// Half-width of the two-sided confidence interval at the given level
  /// (default 95%) using the Student-t distribution. Requires >= 2 samples;
  /// with 1 sample returns 0 so single-run quick benches still print.
  double ci_half_width(double confidence = 0.95) const;

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided Student-t critical value t_{(1+confidence)/2, dof}.
/// Exact for the table of common confidences; falls back to a normal
/// approximation with the Cornish-Fisher dof correction otherwise.
double t_critical(std::int64_t dof, double confidence);

/// p-th percentile (0 <= p <= 100) with linear interpolation; the input is
/// copied and sorted. Requires a non-empty sample.
double percentile(std::vector<double> values, double p);

}  // namespace bcp::stats

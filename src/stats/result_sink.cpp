#include "stats/result_sink.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>

#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/sysinfo.hpp"

namespace bcp::stats {

namespace {

/// Shortest round-trip decimal form (std::to_chars), so JSON output is
/// readable, exact, and byte-stable.
std::string json_number(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  BCP_ENSURE(res.ec == std::errc());
  std::string s(buf, res.ptr);
  // Bare JSON has no inf/nan literals; emit null (consumers treat it as
  // "no value", which is what an empty-sample statistic is).
  if (s.find("inf") != std::string::npos ||
      s.find("nan") != std::string::npos)
    return "null";
  return s;
}

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  out += '"';
}

}  // namespace

ResultSink::PointAgg* ResultSink::find(std::size_t point_index) {
  for (auto& p : points_)
    if (p.point_index == point_index) return &p;
  return nullptr;
}

const ResultSink::PointAgg* ResultSink::find(std::size_t point_index) const {
  for (const auto& p : points_)
    if (p.point_index == point_index) return &p;
  return nullptr;
}

void ResultSink::add(std::size_t point_index, const Params& params,
                     const Metrics& metrics) {
  PointAgg* agg = find(point_index);
  if (agg == nullptr) {
    // Every point must share one schema — to_table() derives the header
    // from the first point, so a divergent row would silently misalign.
    if (!points_.empty()) {
      const PointAgg& first = points_.front();
      BCP_REQUIRE_MSG(first.params.size() == params.size() &&
                          first.metrics.size() == metrics.size(),
                      "param/metric schema differs between points");
      for (std::size_t i = 0; i < params.size(); ++i)
        BCP_REQUIRE_MSG(first.params[i].first == params[i].first,
                        "param names differ between points");
      for (std::size_t i = 0; i < metrics.size(); ++i)
        BCP_REQUIRE_MSG(first.metrics[i].first == metrics[i].first,
                        "metric names differ between points");
    }
    points_.push_back(PointAgg{point_index, {}, params, {}});
    agg = &points_.back();
    agg->metrics.reserve(metrics.size());
    for (const auto& [name, value] : metrics) {
      Summary s;
      s.add(value);
      agg->metrics.emplace_back(name, s);
    }
    return;
  }
  BCP_REQUIRE_MSG(agg->metrics.size() == metrics.size(),
                  "metric set changed between replications");
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    BCP_REQUIRE_MSG(agg->metrics[i].first == metrics[i].first,
                    "metric names changed between replications");
    agg->metrics[i].second.add(metrics[i].second);
  }
}

void ResultSink::set_meta_entry(MetaEntry entry) {
  for (auto& e : meta_) {
    if (e.key == entry.key) {
      e = std::move(entry);
      return;
    }
  }
  meta_.push_back(std::move(entry));
}

void ResultSink::set_meta(const std::string& key, std::string value) {
  set_meta_entry(MetaEntry{key, std::move(value), /*quoted=*/true});
}

void ResultSink::set_meta(const std::string& key, double value) {
  set_meta_entry(MetaEntry{key, json_number(value), /*quoted=*/false});
}

void ResultSink::set_label(std::size_t point_index, std::string label) {
  PointAgg* agg = find(point_index);
  BCP_REQUIRE_MSG(agg != nullptr, "unknown grid point");
  agg->label = std::move(label);
}

const Summary& ResultSink::metric(std::size_t point_index,
                                  const std::string& name) const {
  const PointAgg* agg = find(point_index);
  BCP_REQUIRE_MSG(agg != nullptr, "unknown grid point");
  for (const auto& [n, s] : agg->metrics)
    if (n == name) return s;
  BCP_REQUIRE_MSG(false, "unknown metric: " + name);
  // Unreachable; BCP_REQUIRE_MSG(false, ...) throws.
  throw std::logic_error("unreachable");
}

const ResultSink::Params& ResultSink::params(std::size_t point_index) const {
  const PointAgg* agg = find(point_index);
  BCP_REQUIRE_MSG(agg != nullptr, "unknown grid point");
  return agg->params;
}

TextTable ResultSink::to_table() const {
  TextTable table;
  if (points_.empty()) return table;
  bool any_label = false;
  for (const auto& p : points_) any_label |= !p.label.empty();
  std::vector<std::string> header;
  if (any_label) header.push_back("point");
  for (const auto& [name, value] : points_.front().params) {
    (void)value;
    header.push_back(name);
  }
  for (const auto& [name, s] : points_.front().metrics) {
    (void)s;
    header.push_back(name);
  }
  table.add_row(std::move(header));
  for (const auto& p : points_) {
    std::vector<std::string> row;
    if (any_label) row.push_back(p.label);
    for (const auto& [name, value] : p.params) {
      (void)name;
      row.push_back(TextTable::num(value));
    }
    for (const auto& [name, s] : p.metrics) {
      (void)name;
      // Single-replication sweeps (analytic closed forms, deterministic
      // prototype runs) have no spread worth printing.
      row.push_back(s.count() > 1
                        ? TextTable::num_ci(s.mean(), s.ci_half_width())
                        : TextTable::num(s.mean()));
    }
    table.add_row(std::move(row));
  }
  return table;
}

std::string ResultSink::to_json(const std::string& bench_name) const {
  std::string out;
  out += "{\n  \"bench\": ";
  append_quoted(out, bench_name);
  if (!meta_.empty()) {
    out += ",\n  \"meta\": {";
    bool first = true;
    bool sharded = false;
    bool has_rss = false;
    for (const auto& e : meta_) {
      if (!first) out += ", ";
      first = false;
      append_quoted(out, e.key);
      out += ": ";
      if (e.quoted)
        append_quoted(out, e.value);
      else
        out += e.value;
      sharded |= e.key == "shards" || e.key == "headline_shards" ||
                 e.key == "compare_shards";
      has_rss |= e.key == "peak_rss_mib";
    }
    // Sharded runs carry the process peak RSS in their meta automatically:
    // the O(n/shards + halo) partition memory model is only auditable if
    // every sharded BENCH_*.json records it. Sampled at export (after the
    // runs); unsharded exports stay byte-identical to the historical
    // format, so the figure/table goldens are untouched.
    if (sharded && !has_rss) {
      out += ", ";
      append_quoted(out, "peak_rss_mib");
      out += ": " + json_number(util::peak_rss_mib());
    }
    out += "}";
  }
  out += ",\n  \"points\": [";
  bool first_point = true;
  for (const auto& p : points_) {
    out += first_point ? "\n" : ",\n";
    first_point = false;
    out += "    {";
    if (!p.label.empty()) {
      out += "\"label\": ";
      append_quoted(out, p.label);
      out += ", ";
    }
    out += "\"params\": {";
    bool first = true;
    for (const auto& [name, value] : p.params) {
      if (!first) out += ", ";
      first = false;
      append_quoted(out, name);
      out += ": " + json_number(value);
    }
    out += "},\n     \"metrics\": {";
    first = true;
    for (const auto& [name, s] : p.metrics) {
      if (!first) out += ",\n                 ";
      first = false;
      append_quoted(out, name);
      out += ": {\"mean\": " + json_number(s.mean());
      out += ", \"ci95\": " + json_number(s.ci_half_width());
      out += ", \"stddev\": " + json_number(s.count() > 1 ? s.stddev() : 0.0);
      out += ", \"min\": " + json_number(s.min());
      out += ", \"max\": " + json_number(s.max());
      out += ", \"n\": " + std::to_string(s.count()) + "}";
    }
    out += "}}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool ResultSink::write_json(const std::string& bench_name,
                            const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    util::log_error("cannot open " + path + " for writing");
    return false;
  }
  f << to_json(bench_name);
  return static_cast<bool>(f);
}

}  // namespace bcp::stats

// Plain-text table/series printers shared by the bench harnesses so every
// figure reproduction prints in the same, diffable format:
//
//   # Figure 6 — SH: Normalized energy (J/Kbit)
//   senders  DualRadio-10  DualRadio-100 ...
//   5        0.031±0.002   0.012±0.001   ...
#pragma once

#include <string>
#include <vector>

namespace bcp::stats {

/// A column-aligned text table. Cells are strings; numeric helpers format
/// with a fixed precision. The first added row is the header.
class TextTable {
 public:
  void add_row(std::vector<std::string> cells);

  /// Formats `value` with `precision` significant decimal digits.
  static std::string num(double value, int precision = 4);

  /// Formats "mean+-ci" (the paper plots 95% confidence intervals).
  static std::string num_ci(double mean, double ci, int precision = 4);

  /// Renders with two-space column separation.
  std::string to_string() const;

  /// Convenience: render to stdout.
  void print() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Prints "# <title>" followed by the table.
void print_titled(const std::string& title, const TextTable& table);

}  // namespace bcp::stats

#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace bcp::stats {

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Summary::mean() const {
  BCP_REQUIRE(n_ > 0);
  return mean_;
}

double Summary::variance() const {
  BCP_REQUIRE(n_ >= 2);
  return m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::min() const {
  BCP_REQUIRE(n_ > 0);
  return min_;
}

double Summary::max() const {
  BCP_REQUIRE(n_ > 0);
  return max_;
}

double Summary::ci_half_width(double confidence) const {
  BCP_REQUIRE(n_ > 0);
  if (n_ == 1) return 0.0;
  const double se = stddev() / std::sqrt(static_cast<double>(n_));
  return t_critical(n_ - 1, confidence) * se;
}

namespace {

// Two-sided 95% Student-t critical values for dof 1..30.
constexpr double kT95[31] = {
    0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228,  2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
    2.086,  2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
    2.042};

// Inverse of the standard normal CDF (Acklam's rational approximation,
// relative error < 1.15e-9 over (0,1)).
double normal_quantile(double p) {
  BCP_REQUIRE(p > 0.0 && p < 1.0);
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > 1 - plow) {
    const double q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

}  // namespace

double t_critical(std::int64_t dof, double confidence) {
  BCP_REQUIRE(dof >= 1);
  BCP_REQUIRE(confidence > 0.0 && confidence < 1.0);
  if (confidence == 0.95 && dof <= 30) return kT95[dof];
  // Normal quantile with a second-order dof correction (Cornish-Fisher):
  // t ~ z + (z^3 + z) / (4 dof).
  const double z = normal_quantile(0.5 + confidence / 2.0);
  return z + (z * z * z + z) / (4.0 * static_cast<double>(dof));
}

double percentile(std::vector<double> values, double p) {
  BCP_REQUIRE(!values.empty());
  BCP_REQUIRE(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

}  // namespace bcp::stats

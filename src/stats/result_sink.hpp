// Sweep result aggregation and export.
//
// A ResultSink collects one Metrics row per (grid point, replication) and
// folds them into per-point, per-metric Summary statistics — the
// mean ± 95% CI numbers the paper's figures plot. Two exports:
//
//   to_table()  — a diffable text table (one row per point: params, then
//                 mean±ci per metric), the format every bench prints;
//   to_json()   — a machine-readable document the benches write as
//                 BENCH_<name>.json:
//
//   {
//     "bench": "<name>",
//     "meta": {"topology": "grid", "node_count": 36, "seed": 1, ...},
//     "points": [
//       {"params": {"senders": 5, ...},
//        "metrics": {"goodput": {"mean": ..., "ci95": ..., "stddev": ...,
//                                "min": ..., "max": ..., "n": N}, ...}},
//       ...
//     ]
//   }
//
// "meta" carries run-level scenario metadata (set_meta); the scenario
// benches record at least topology, node_count and seed there. The key is
// omitted entirely when no metadata was set, so metadata-free exports are
// byte-identical to the historical format.
//
// Rows must be added in deterministic order (the SweepRunner feeds them in
// job order after the parallel phase); given that, both exports are
// byte-identical across thread counts.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace bcp::stats {

class ResultSink {
 public:
  /// Named values; order is preserved into the exports.
  using Params = std::vector<std::pair<std::string, double>>;
  using Metrics = std::vector<std::pair<std::string, double>>;

  /// Folds one replication's metrics into the aggregate for grid point
  /// `point_index`. The first row of the whole sink fixes the param and
  /// metric name sets; every later row — same point or new — must match
  /// (same names, same order). Points may arrive in any order but each
  /// new point allocates its slot on first sight, so feed rows in job
  /// order for stable output.
  void add(std::size_t point_index, const Params& params,
           const Metrics& metrics);

  /// Attaches a human-readable label to a point (e.g. "DualRadio-500");
  /// emitted as "label" in the JSON and as the first table column. The
  /// point must have been added already.
  void set_label(std::size_t point_index, std::string label);

  /// One run-level metadata entry; `quoted` distinguishes string values
  /// from numbers in the export.
  struct MetaEntry {
    std::string key;
    std::string value;
    bool quoted = true;
  };

  /// Records one run-level metadata entry, emitted under "meta" in the
  /// JSON in insertion order (numbers unquoted, strings quoted). Setting
  /// an existing key overwrites its value.
  void set_meta(const std::string& key, std::string value);
  void set_meta(const std::string& key, double value);

  /// Metadata entries in insertion order.
  const std::vector<MetaEntry>& meta() const { return meta_; }

  /// Distinct grid points seen so far.
  std::size_t point_count() const { return points_.size(); }

  /// Aggregate for one metric of one point; throws if absent.
  const Summary& metric(std::size_t point_index,
                        const std::string& name) const;

  /// Params recorded for a point; throws if the point was never added.
  const Params& params(std::size_t point_index) const;

  /// One row per point: params, then "mean±ci" per metric.
  TextTable to_table() const;

  /// Exports with one automatic addition: when the meta names a sharded
  /// run ("shards", "headline_shards" or "compare_shards") and no
  /// explicit "peak_rss_mib" was set, the process peak RSS is sampled at
  /// export time and appended to the meta — the memory-model audit trail
  /// for every sharded cell. Meta without those keys exports exactly the
  /// entries that were set.
  std::string to_json(const std::string& bench_name) const;

  /// Writes to_json() to `path`. Returns false (and logs) on I/O failure.
  bool write_json(const std::string& bench_name,
                  const std::string& path) const;

 private:
  struct PointAgg {
    std::size_t point_index = 0;
    std::string label;
    Params params;
    std::vector<std::pair<std::string, Summary>> metrics;
  };

  PointAgg* find(std::size_t point_index);
  const PointAgg* find(std::size_t point_index) const;
  void set_meta_entry(MetaEntry entry);

  std::vector<PointAgg> points_;  // in first-seen order
  std::vector<MetaEntry> meta_;   // in insertion order
};

}  // namespace bcp::stats

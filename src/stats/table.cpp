#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>

namespace bcp::stats {

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, value);
  return buf;
}

std::string TextTable::num_ci(double mean, double ci, int precision) {
  // "+-" rather than U+00B1 so column widths (computed in bytes) stay exact.
  return num(mean, precision) + "+-" + num(ci, std::max(precision - 2, 1));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }
  std::string out;
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size())
        out.append(widths[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
  }
  return out;
}

void TextTable::print() const { std::fputs(to_string().c_str(), stdout); }

void print_titled(const std::string& title, const TextTable& table) {
  std::printf("# %s\n%s\n", title.c_str(), table.to_string().c_str());
}

}  // namespace bcp::stats

#include "emul/event_log.hpp"

#include <algorithm>
#include <map>

#include "util/assert.hpp"

namespace bcp::emul {

const char* to_string(LogEvent e) {
  switch (e) {
    case LogEvent::kWifiPowerOn:  return "wifi-power-on";
    case LogEvent::kWifiReady:    return "wifi-ready";
    case LogEvent::kWifiPowerOff: return "wifi-power-off";
    case LogEvent::kLowTxStart:   return "low-tx-start";
    case LogEvent::kLowTxEnd:     return "low-tx-end";
    case LogEvent::kLowRxStart:   return "low-rx-start";
    case LogEvent::kLowRxEnd:     return "low-rx-end";
    case LogEvent::kHighTxStart:  return "high-tx-start";
    case LogEvent::kHighTxEnd:    return "high-tx-end";
    case LogEvent::kHighRxStart:  return "high-rx-start";
    case LogEvent::kHighRxEnd:    return "high-rx-end";
    case LogEvent::kMsgGenerated: return "msg-generated";
    case LogEvent::kMsgDelivered: return "msg-delivered";
  }
  return "?";
}

void EventLog::append(util::Seconds time, net::NodeId node, LogEvent event,
                      util::Bits bits) {
  BCP_REQUIRE(time >= 0);
  entries_.push_back(LogEntry{time, node, event, bits});
}

std::int64_t EventLog::count(LogEvent event) const {
  return std::count_if(entries_.begin(), entries_.end(),
                       [&](const LogEntry& e) { return e.event == event; });
}

util::Joules energy_from_log(const EventLog& log,
                             const energy::RadioEnergyModel& sensor,
                             const energy::RadioEnergyModel& wifi,
                             util::Seconds end_time) {
  struct NodeState {
    util::Seconds low_tx_start = -1, low_rx_start = -1;
    util::Seconds high_tx_start = -1, high_rx_start = -1;
    util::Seconds wifi_on_since = -1;
    util::Seconds wifi_busy = 0;  ///< tx+rx time inside the current on-period
    util::Joules total = 0;
  };
  std::map<net::NodeId, NodeState> nodes;

  for (const auto& e : log.entries()) {
    NodeState& n = nodes[e.node];
    switch (e.event) {
      case LogEvent::kLowTxStart:
        n.low_tx_start = e.time;
        break;
      case LogEvent::kLowTxEnd:
        BCP_ENSURE(n.low_tx_start >= 0);
        n.total += sensor.p_tx * (e.time - n.low_tx_start);
        n.low_tx_start = -1;
        break;
      case LogEvent::kLowRxStart:
        n.low_rx_start = e.time;
        break;
      case LogEvent::kLowRxEnd:
        BCP_ENSURE(n.low_rx_start >= 0);
        n.total += sensor.p_rx * (e.time - n.low_rx_start);
        n.low_rx_start = -1;
        break;
      case LogEvent::kWifiPowerOn:
        n.total += wifi.e_wakeup;
        n.wifi_on_since = e.time;
        n.wifi_busy = 0;
        break;
      case LogEvent::kWifiReady:
        break;  // the transition draws only the lump
      case LogEvent::kWifiPowerOff: {
        BCP_ENSURE(n.wifi_on_since >= 0);
        // Idle = on-period minus the wake-up transition and busy time.
        const util::Seconds on = e.time - n.wifi_on_since;
        const util::Seconds idle =
            std::max(on - wifi.t_wakeup - n.wifi_busy, 0.0);
        n.total += wifi.p_idle * idle;
        n.wifi_on_since = -1;
        break;
      }
      case LogEvent::kHighTxStart:
        n.high_tx_start = e.time;
        break;
      case LogEvent::kHighTxEnd:
        BCP_ENSURE(n.high_tx_start >= 0);
        n.total += wifi.p_tx * (e.time - n.high_tx_start);
        n.wifi_busy += e.time - n.high_tx_start;
        n.high_tx_start = -1;
        break;
      case LogEvent::kHighRxStart:
        n.high_rx_start = e.time;
        break;
      case LogEvent::kHighRxEnd:
        BCP_ENSURE(n.high_rx_start >= 0);
        n.total += wifi.p_rx * (e.time - n.high_rx_start);
        n.wifi_busy += e.time - n.high_rx_start;
        n.high_rx_start = -1;
        break;
      case LogEvent::kMsgGenerated:
      case LogEvent::kMsgDelivered:
        break;
    }
  }

  util::Joules total = 0;
  for (auto& [id, n] : nodes) {
    if (n.wifi_on_since >= 0) {  // close a dangling on-period
      const util::Seconds on = end_time - n.wifi_on_since;
      n.total += wifi.p_idle * std::max(on - wifi.t_wakeup - n.wifi_busy, 0.0);
    }
    total += n.total;
  }
  return total;
}

}  // namespace bcp::emul

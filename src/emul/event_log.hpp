// Prototype event logging — §4.2's measurement methodology.
//
// "All the events (waking up of the emulated IEEE 802.11 radio,
// transmission/reception of wakeups, acks, data, etc.) were logged in
// detail. At the end of the experiments, these logs were used to calculate
// energy consumption and delay."
//
// The emulator keeps live EnergyMeters too; energy_from_log() recomputes
// energy purely from the log so the two accountings can cross-check each
// other (they agree to float tolerance — tested).
#pragma once

#include <cstdint>
#include <vector>

#include "energy/radio_model.hpp"
#include "net/message.hpp"
#include "util/units.hpp"

namespace bcp::emul {

enum class LogEvent : std::uint8_t {
  kWifiPowerOn,   ///< off->on transition begins (wake-up energy charged)
  kWifiReady,     ///< transition finished
  kWifiPowerOff,
  kLowTxStart,
  kLowTxEnd,
  kLowRxStart,
  kLowRxEnd,
  kHighTxStart,
  kHighTxEnd,
  kHighRxStart,
  kHighRxEnd,
  kMsgGenerated,
  kMsgDelivered,
};

const char* to_string(LogEvent e);

struct LogEntry {
  util::Seconds time = 0;
  net::NodeId node = net::kInvalidNode;
  LogEvent event = LogEvent::kMsgGenerated;
  util::Bits bits = 0;  ///< on-air bits for tx/rx events, payload otherwise
};

class EventLog {
 public:
  void append(util::Seconds time, net::NodeId node, LogEvent event,
              util::Bits bits = 0);

  const std::vector<LogEntry>& entries() const { return entries_; }
  std::int64_t count(LogEvent event) const;

 private:
  std::vector<LogEntry> entries_;
};

/// Recomputes total charged energy from the log alone, the way the paper's
/// prototype did: sensor radio charged for tx+rx time, emulated 802.11
/// radio charged for wake-up lumps plus tx/rx/idle over its on-periods.
/// `end_time` closes any still-open on-period.
util::Joules energy_from_log(const EventLog& log,
                             const energy::RadioEnergyModel& sensor,
                             const energy::RadioEnergyModel& wifi,
                             util::Seconds end_time);

}  // namespace bcp::emul

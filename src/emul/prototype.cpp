#include "emul/prototype.hpp"

#include <functional>
#include <utility>
#include <vector>

#include "core/bcp_agent.hpp"
#include "energy/energy_meter.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"

namespace bcp::emul {
namespace {

using energy::EnergyCategory;

/// One emulated radio: occupancy counters drive the EnergyMeter category,
/// so briefly overlapping segments cannot double-charge or under-charge.
class EmulRadio {
 public:
  EmulRadio(sim::Simulator& sim, const energy::RadioEnergyModel& model,
            bool starts_on)
      : sim_(sim), meter_(model), on_(starts_on) {
    if (starts_on) meter_.transition(EnergyCategory::kIdle, sim_.now());
  }

  void power_on(std::function<void()> ready) {
    if (on_) return;
    on_ = true;
    waking_ = true;
    meter_.add_wakeup_charge();
    refresh();
    sim_.schedule_in(meter_.model().t_wakeup, [this, cb = std::move(ready)] {
      waking_ = false;
      refresh();
      if (cb) cb();
    });
  }

  void power_off() {
    on_ = false;
    waking_ = false;
    refresh();
  }

  bool ready() const { return on_ && !waking_; }

  void tx_begin() { ++tx_; refresh(); }
  void tx_end()   { --tx_; refresh(); }
  void rx_begin() { ++rx_; refresh(); }
  void rx_end()   { --rx_; refresh(); }

  energy::EnergyMeter& meter() { return meter_; }

 private:
  void refresh() {
    EnergyCategory c = EnergyCategory::kOff;
    if (on_) {
      if (waking_)
        c = EnergyCategory::kWaking;
      else if (tx_ > 0)
        c = EnergyCategory::kTx;
      else if (rx_ > 0)
        c = EnergyCategory::kRx;
      else
        c = EnergyCategory::kIdle;
    }
    meter_.transition(c, sim_.now());
  }

  sim::Simulator& sim_;
  energy::EnergyMeter meter_;
  bool on_ = false;
  bool waking_ = false;
  int tx_ = 0;
  int rx_ = 0;
};

/// A Tmote-like node: always-on CC2420 + emulated 802.11 behind the
/// split-phase wrapper interface. Implements core::BcpHost.
class EmulNode final : public core::BcpHost {
 public:
  EmulNode(sim::Simulator& sim, net::NodeId self,
           const PrototypeConfig& config, EventLog& log,
           std::function<void(const net::DataPacket&)> deliver)
      : sim_(sim),
        self_(self),
        config_(config),
        log_(log),
        deliver_(std::move(deliver)),
        low_(sim, config.sensor_radio, /*starts_on=*/true),
        high_(sim, config.wifi_radio, /*starts_on=*/false) {
    core::BcpConfig bcp = config.bcp;
    bcp.burst_threshold_bits = config.threshold_bits;
    agent_ = std::make_unique<core::BcpAgent>(*this, bcp);
  }

  void connect(EmulNode* peer) { peer_ = peer; }

  core::BcpAgent& agent() { return *agent_; }
  EmulRadio& low_radio() { return low_; }
  EmulRadio& high_radio() { return high_; }

  // ---- core::BcpHost ----

  net::NodeId self() const override { return self_; }
  util::Seconds now() const override { return sim_.now(); }

  TimerId set_timer(util::Seconds delay,
                    core::BcpHost::TimerCallback callback) override {
    return sim_.schedule_in(delay, std::move(callback)).id;
  }
  void cancel_timer(TimerId id) override {
    sim_.cancel(sim::Simulator::EventHandle{id});
  }

  void send_low(net::MessageRef msg) override {
    BCP_ENSURE(peer_ != nullptr && msg->dst == peer_->self());
    const util::Bits bits = msg->size_bits() + config_.low_header_bits;
    const util::Seconds d =
        util::tx_duration(bits, config_.sensor_radio.rate);
    log_.append(sim_.now(), self_, LogEvent::kLowTxStart, bits);
    log_.append(sim_.now(), peer_->self(), LogEvent::kLowRxStart, bits);
    low_.tx_begin();
    peer_->low_.rx_begin();
    sim_.schedule_in(d, [this, msg = std::move(msg)] {
      low_.tx_end();
      peer_->low_.rx_end();
      log_.append(sim_.now(), self_, LogEvent::kLowTxEnd);
      log_.append(sim_.now(), peer_->self(), LogEvent::kLowRxEnd);
      peer_->agent().on_low_message(*msg);
    });
  }

  void send_high(net::MessageRef msg, net::NodeId peer,
                 core::BcpHost::SendDone done) override {
    BCP_ENSURE(peer_ != nullptr && peer == peer_->self());
    BCP_REQUIRE_MSG(high_.ready(), "send_high before the radio is ready");
    const util::Bits bits = msg->size_bits() + config_.high_header_bits;
    const util::Seconds d_data =
        util::tx_duration(bits, config_.wifi_radio.rate);
    const bool peer_listening = peer_->high_.ready();

    log_.append(sim_.now(), self_, LogEvent::kHighTxStart, bits);
    high_.tx_begin();
    if (peer_listening) {
      log_.append(sim_.now(), peer_->self(), LogEvent::kHighRxStart, bits);
      peer_->high_.rx_begin();
    }
    sim_.schedule_in(d_data, [this, msg = std::move(msg), peer_listening,
                              done = std::move(done)]() mutable {
      high_.tx_end();
      log_.append(sim_.now(), self_, LogEvent::kHighTxEnd);
      if (!peer_listening) {
        done(false);
        return;
      }
      peer_->high_.rx_end();
      log_.append(sim_.now(), peer_->self(), LogEvent::kHighRxEnd);
      if (const auto* frame = std::get_if<net::BulkFrame>(&msg->body))
        peer_->agent().on_bulk_frame(*frame);
      // Link-layer ack from the peer after SIFS.
      sim_.schedule_in(config_.high_sifs,
                       [this, done = std::move(done)]() mutable {
        if (!peer_->high_.ready() || !high_.ready()) {
          done(true);  // data made it; only the ack exchange is skipped
          return;
        }
        log_.append(sim_.now(), peer_->self(), LogEvent::kHighTxStart,
                    config_.high_ack_bits);
        log_.append(sim_.now(), self_, LogEvent::kHighRxStart,
                    config_.high_ack_bits);
        peer_->high_.tx_begin();
        high_.rx_begin();
        const util::Seconds d_ack =
            util::tx_duration(config_.high_ack_bits, config_.wifi_radio.rate);
        sim_.schedule_in(d_ack, [this, done = std::move(done)]() mutable {
          peer_->high_.tx_end();
          high_.rx_end();
          log_.append(sim_.now(), peer_->self(), LogEvent::kHighTxEnd);
          log_.append(sim_.now(), self_, LogEvent::kHighRxEnd);
          done(true);
        });
      });
    });
  }

  void high_radio_on() override {
    if (high_.ready()) return;
    log_.append(sim_.now(), self_, LogEvent::kWifiPowerOn);
    high_.power_on([this] {
      log_.append(sim_.now(), self_, LogEvent::kWifiReady);
      agent_->on_high_radio_ready();
    });
  }

  void high_radio_off() override {
    log_.append(sim_.now(), self_, LogEvent::kWifiPowerOff);
    high_.power_off();
  }

  bool high_radio_ready() const override { return high_.ready(); }

  net::NodeId high_next_hop(net::NodeId dest) const override {
    return (peer_ != nullptr && dest == peer_->self()) ? dest
                                                       : net::kInvalidNode;
  }

  void deliver(const net::DataPacket& packet) override {
    log_.append(sim_.now(), self_, LogEvent::kMsgDelivered,
                packet.payload_bits);
    deliver_(packet);
  }

  void packet_dropped(const net::DataPacket&, const char*) override {}

 private:
  sim::Simulator& sim_;
  net::NodeId self_;
  const PrototypeConfig& config_;
  EventLog& log_;
  std::function<void(const net::DataPacket&)> deliver_;
  EmulRadio low_;
  EmulRadio high_;
  EmulNode* peer_ = nullptr;
  std::unique_ptr<core::BcpAgent> agent_;
};

}  // namespace

PrototypeResult run_prototype(const PrototypeConfig& config) {
  BCP_REQUIRE(config.threshold_bits > 0);
  BCP_REQUIRE(config.message_count > 0);
  BCP_REQUIRE(config.message_interval > 0);
  BCP_REQUIRE(config.message_bits > 0);

  sim::Simulator sim;
  EventLog log;
  PrototypeResult result;
  double delay_sum = 0;

  constexpr net::NodeId kSender = 0;
  constexpr net::NodeId kReceiver = 1;

  EmulNode sender(sim, kSender, config, log, [](const net::DataPacket&) {});
  EmulNode receiver(sim, kReceiver, config, log,
                    [&](const net::DataPacket& p) {
                      ++result.delivered;
                      delay_sum += sim.now() - p.created_at;
                    });
  sender.connect(&receiver);
  receiver.connect(&sender);
  if (config.sender_observer != nullptr)
    sender.agent().set_observer(config.sender_observer);
  if (config.receiver_observer != nullptr)
    receiver.agent().set_observer(config.receiver_observer);

  // Generate the experiment's messages at the fixed interval.
  for (int i = 0; i < config.message_count; ++i) {
    sim.schedule_in(config.message_interval * (i + 1), [&, i] {
      net::DataPacket p;
      p.origin = kSender;
      p.destination = kReceiver;
      p.seq = static_cast<std::uint32_t>(i + 1);
      p.payload_bits = config.message_bits;
      p.created_at = sim.now();
      ++result.generated;
      log.append(sim.now(), kSender, LogEvent::kMsgGenerated,
                 p.payload_bits);
      sender.agent().submit(p);
    });
  }

  // Drain pump: after generation ends, flush sub-threshold leftovers until
  // the sender is empty and idle (the paper's runs end when all 500
  // messages have crossed).
  const util::Seconds gen_end =
      config.message_interval * (config.message_count + 1);
  auto pump = std::make_shared<std::function<void(int)>>();
  // The stored function must not own itself (shared_ptr cycle — the local
  // `pump` strong reference already outlives sim.run()).
  *pump = [&, weak = std::weak_ptr<std::function<void(int)>>(pump)](
              int remaining) {
    if (remaining <= 0) return;
    if (sender.agent().buffer().total_bits() == 0 &&
        sender.agent().radio_hold_count() == 0)
      return;
    sender.agent().flush_all();
    sim.schedule_in(1.0, [weak, remaining] {
      if (const auto self = weak.lock()) (*self)(remaining - 1);
    });
  };
  sim.schedule_at(gen_end, [pump] { (*pump)(10000); });

  sim.run();
  const util::Seconds end = sim.now();

  sender.low_radio().meter().finalize(end);
  sender.high_radio().meter().finalize(end);
  receiver.low_radio().meter().finalize(end);
  receiver.high_radio().meter().finalize(end);

  const auto charged = [](EmulRadio& low, EmulRadio& high) {
    const auto& lm = low.meter();
    const auto& hm = high.meter();
    const util::Joules sensor_charge =
        lm.energy(EnergyCategory::kTx) + lm.energy(EnergyCategory::kRx);
    const util::Joules wifi_charge =
        hm.energy(EnergyCategory::kTx) + hm.energy(EnergyCategory::kRx) +
        hm.energy(EnergyCategory::kIdle) +
        hm.energy(EnergyCategory::kWaking);
    return sensor_charge + wifi_charge;
  };
  result.dual_energy = charged(sender.low_radio(), sender.high_radio()) +
                       charged(receiver.low_radio(), receiver.high_radio());
  if (result.delivered > 0) {
    result.dual_energy_per_packet =
        result.dual_energy / static_cast<double>(result.delivered);
    result.mean_delay_per_packet =
        delay_sum / static_cast<double>(result.delivered);
  }

  // Baseline: each message crosses the CC2420 link immediately, alone.
  result.sensor_energy_per_packet =
      (config.sensor_radio.p_tx + config.sensor_radio.p_rx) /
      config.sensor_radio.rate *
      static_cast<double>(config.message_bits + config.low_header_bits);

  result.log_energy =
      energy_from_log(log, config.sensor_radio, config.wifi_radio, end);
  result.wifi_wakeups = log.count(LogEvent::kWifiPowerOn);
  result.bulk_frames = sender.agent().stats().frames_sent;
  result.log_entries = static_cast<std::int64_t>(log.entries().size());
  return result;
}

}  // namespace bcp::emul

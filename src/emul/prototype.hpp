// The §4.2 prototype: a single BCP sender/receiver pair on Tmote-Sky-class
// hardware with an *emulated* IEEE 802.11 radio.
//
// "The initial prototype of BCP was implemented for the Tmote Sky platform,
// which uses a single low-power radio (i.e., CC2420). ... we chose to
// emulate the high-power radio. A second MAC interface, which is basically
// a wrapper around the standard TinyOS MAC interface, was implemented to
// make the emulation of the IEEE 802.11 radio transparent to BCP."
//
// This module is the second, independent implementation of core::BcpHost
// (the first is the network simulator in app/): a split-phase, loss-free
// point-to-point link "in isolation from other external factors (e.g.,
// interference, bad channel conditions)". The same unmodified BcpAgent
// runs on both, which is the portability claim of §3.
//
// Each run sends `message_count` 32 B messages at a fixed interval and
// sweeps the accumulation threshold α·s* (Figs. 11-12 sweep 500-5000 B).
// Energy is tracked twice: by live EnergyMeters and by replaying the event
// log (energy_from_log), mirroring the paper's methodology.
#pragma once

#include <cstdint>
#include <memory>

#include "core/bcp_config.hpp"
#include "core/bcp_observer.hpp"
#include "emul/event_log.hpp"
#include "energy/radio_model.hpp"
#include "util/units.hpp"

namespace bcp::emul {

/// BCP parameters tuned for the emulated point-to-point MAC: the link ack
/// completes inside send_high, so no power-off linger is needed for ack
/// drain (the simulator's shared-medium MAC needs ~10 ms there; keeping it
/// would charge ~15 mJ of idle per burst that the prototype never spends).
inline core::BcpConfig default_prototype_bcp() {
  core::BcpConfig cfg;
  cfg.radio_off_linger = 0.001;
  return cfg;
}

struct PrototypeConfig {
  /// The accumulation threshold under test (α·s*; Fig. 11 sweeps 500-5000 B).
  util::Bits threshold_bits = util::kilobytes(2);
  int message_count = 500;              ///< §4.2: 500 messages per run
  util::Seconds message_interval = 0.2; ///< message generation period
  util::Bits message_bits = util::bytes(32);

  /// CC2420 (the Tmote Sky radio — Micaz-class characteristics).
  energy::RadioEnergyModel sensor_radio = energy::micaz();
  /// The emulated IEEE 802.11 radio behind the wrapper MAC.
  energy::RadioEnergyModel wifi_radio = energy::lucent_11mbps();

  util::Bits low_header_bits = util::bytes(11);
  util::Bits high_header_bits = util::bytes(52);
  /// Turnaround between a high-radio frame and its link ack.
  util::Seconds high_sifs = util::microseconds(10);
  util::Bits high_ack_bits = util::bytes(14);

  core::BcpConfig bcp = default_prototype_bcp();

  /// Optional protocol-event observers (e.g. core::TraceRecorder) attached
  /// to the two BCP agents for the duration of the run. Not owned.
  core::BcpObserver* sender_observer = nullptr;
  core::BcpObserver* receiver_observer = nullptr;
};

struct PrototypeResult {
  std::int64_t generated = 0;
  std::int64_t delivered = 0;

  /// Total charged energy of the dual-radio run: sensor tx+rx (its idling
  /// is the platform's base cost) + emulated 802.11 fully charged.
  util::Joules dual_energy = 0;
  util::Joules dual_energy_per_packet = 0;   ///< Fig. 11 y-axis
  /// Baseline: every message sent immediately over the CC2420 alone.
  util::Joules sensor_energy_per_packet = 0; ///< Fig. 11 flat line
  util::Seconds mean_delay_per_packet = 0;   ///< Fig. 12 x-axis

  /// Energy recomputed from the event log (cross-check; ≈ dual_energy).
  util::Joules log_energy = 0;

  std::int64_t wifi_wakeups = 0;  ///< bursts (wake-up episodes)
  std::int64_t bulk_frames = 0;   ///< 1024 B frames shipped
  std::int64_t log_entries = 0;
};

/// Runs one prototype experiment. Deterministic: no randomness is involved
/// (fixed interval, loss-free link), as in the paper's isolated setup.
PrototypeResult run_prototype(const PrototypeConfig& config);

}  // namespace bcp::emul

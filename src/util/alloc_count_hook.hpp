// Process-wide allocation counting, for the zero-allocation instruments.
//
// Including this header replaces the global operator new/delete of the
// final binary with counting versions that forward to malloc/free.
// Include it from exactly ONE translation unit of a dedicated binary
// (bench_micro_core, tests/perf_alloc_test) — never from the library:
// replaced allocation functions are program-wide, and sharing this header
// keeps both instruments counting the same way.
//
// The operators are noinline: when GCC inlines them it pairs the visible
// malloc/free with the surrounding new/delete expressions and raises
// -Wmismatched-new-delete (an error under the CI's -Werror) for what is a
// deliberate, matched replacement of both sides.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <new>

namespace bcp::util {
/// Total operator-new/new[] calls in this process since start.
inline std::uint64_t g_alloc_count = 0;
}  // namespace bcp::util

#if defined(__GNUC__) || defined(__clang__)
#define BCP_ALLOC_HOOK_NOINLINE __attribute__((noinline))
#else
#define BCP_ALLOC_HOOK_NOINLINE
#endif

BCP_ALLOC_HOOK_NOINLINE void* operator new(std::size_t n) {
  ++bcp::util::g_alloc_count;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
BCP_ALLOC_HOOK_NOINLINE void operator delete(void* p) noexcept {
  std::free(p);
}
BCP_ALLOC_HOOK_NOINLINE void operator delete(void* p, std::size_t) noexcept {
  std::free(p);
}
BCP_ALLOC_HOOK_NOINLINE void* operator new[](std::size_t n) {
  ++bcp::util::g_alloc_count;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
BCP_ALLOC_HOOK_NOINLINE void operator delete[](void* p) noexcept {
  std::free(p);
}
BCP_ALLOC_HOOK_NOINLINE void operator delete[](void* p,
                                               std::size_t) noexcept {
  std::free(p);
}

#undef BCP_ALLOC_HOOK_NOINLINE

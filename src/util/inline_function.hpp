// A small-buffer, move-only callable wrapper with NO heap fallback.
//
// std::function heap-allocates any capture larger than its tiny SSO buffer
// (16 B on libstdc++), which turns every scheduled event, MAC timer and
// channel completion into an allocation on the simulation hot path. This
// type stores the callable inline — captures up to `Capacity` bytes — and
// makes oversized captures a *compile-time* error instead of a silent
// allocation, so the event loop stays allocation-free in steady state and
// capture bloat is caught at the call site that introduced it.
//
// Differences from std::function, all deliberate:
//   * move-only (captured state such as net::MessageRef or another
//     InlineFunction need not be copyable);
//   * no heap fallback: static_assert fires when the capture exceeds
//     Capacity — shrink the capture (capture a pointer/ref or an id) or
//     widen Capacity at the alias that owns the hot path;
//   * callables must be nothrow-move-constructible (events move through
//     the scheduler's slot vector).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace bcp::util {

/// Default inline capacity, sized so every closure the protocol stack
/// schedules today — including a MessageRef plus a nested completion
/// callback — fits with headroom (captures <= ~48 B always fit).
inline constexpr std::size_t kInlineFunctionCapacity = 64;

/// Storage alignment. Pointer-aligned (not max_align_t) so a small
/// InlineFunction nested inside another closure doesn't pad the outer
/// capture past its own capacity; closures capturing ids, pointers and
/// doubles never need more.
inline constexpr std::size_t kInlineFunctionAlign = alignof(void*);

template <typename Signature, std::size_t Capacity = kInlineFunctionCapacity>
class InlineFunction;  // undefined; see the R(Args...) specialization

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "capture too large for InlineFunction — shrink the "
                  "capture (ids/pointers instead of values) or widen the "
                  "owning alias's Capacity");
    static_assert(alignof(Fn) <= kInlineFunctionAlign,
                  "over-aligned captures are not supported");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "captures must be nothrow-move-constructible");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    invoke_ = [](void* s, Args&&... args) -> R {
      return (*static_cast<Fn*>(s))(std::forward<Args>(args)...);
    };
    manage_ = [](Op op, void* self, void* other) {
      auto* fn = static_cast<Fn*>(self);
      if (op == Op::kMoveTo)
        ::new (other) Fn(std::move(*fn));
      else
        fn->~Fn();
    };
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  R operator()(Args... args) const {
    return invoke_(storage_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return invoke_ != nullptr; }

  /// Destroys the stored callable (releasing anything it captured).
  void reset() {
    if (manage_ != nullptr) manage_(Op::kDestroy, storage_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  friend bool operator==(const InlineFunction& f, std::nullptr_t) {
    return !f;
  }
  friend bool operator==(std::nullptr_t, const InlineFunction& f) {
    return !f;
  }
  friend bool operator!=(const InlineFunction& f, std::nullptr_t) {
    return static_cast<bool>(f);
  }
  friend bool operator!=(std::nullptr_t, const InlineFunction& f) {
    return static_cast<bool>(f);
  }

 private:
  enum class Op { kMoveTo, kDestroy };
  using Invoke = R (*)(void*, Args&&...);
  using Manage = void (*)(Op, void* self, void* other);

  void move_from(InlineFunction& other) noexcept {
    if (other.invoke_ == nullptr) return;
    other.manage_(Op::kMoveTo, other.storage_, storage_);
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    other.reset();  // destroys the moved-from callable, leaves other empty
  }

  alignas(kInlineFunctionAlign) mutable unsigned char storage_[Capacity];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace bcp::util

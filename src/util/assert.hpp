// Contract-checking macros used across the library.
//
// BCP_REQUIRE   — precondition on arguments; throws std::invalid_argument.
// BCP_ENSURE    — internal invariant / postcondition; throws std::logic_error.
//
// Both are always on (they guard protocol invariants whose violation would
// silently corrupt simulation results, so the cost is accepted; see
// DESIGN.md §7).
#pragma once

#include <stdexcept>
#include <string>

namespace bcp::util {

[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  throw std::invalid_argument(std::string("precondition failed: ") + expr +
                              " at " + file + ":" + std::to_string(line) +
                              (msg.empty() ? "" : (" — " + msg)));
}

[[noreturn]] inline void ensure_failed(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  throw std::logic_error(std::string("invariant violated: ") + expr + " at " +
                         file + ":" + std::to_string(line) +
                         (msg.empty() ? "" : (" — " + msg)));
}

}  // namespace bcp::util

#define BCP_REQUIRE(expr)                                              \
  do {                                                                 \
    if (!(expr)) ::bcp::util::require_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define BCP_REQUIRE_MSG(expr, msg)                                       \
  do {                                                                   \
    if (!(expr)) ::bcp::util::require_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define BCP_ENSURE(expr)                                              \
  do {                                                                \
    if (!(expr)) ::bcp::util::ensure_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define BCP_ENSURE_MSG(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) ::bcp::util::ensure_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

// Process resource introspection.
#pragma once

namespace bcp::util {

/// Peak resident set size of this process in MiB, from getrusage
/// (0.0 on platforms where it is unavailable). Monotone over the process
/// lifetime — sample it after the work being measured.
double peak_rss_mib();

}  // namespace bcp::util

// Deterministic random-number generation.
//
// Every simulation run draws all randomness from a single 64-bit seed.
// Sub-components (per-node MACs, workload generators, the channel) derive
// independent streams via `substream`, so adding a consumer never perturbs
// the draws seen by existing consumers — a property the reproducibility
// tests rely on.
#pragma once

#include <cstdint>
#include <limits>

#include "util/assert.hpp"

namespace bcp::util {

/// SplitMix64 — used to whiten seeds and derive substream seeds.
/// Reference: Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
/// Generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — the workhorse generator.
/// Satisfies UniformRandomBitGenerator so it plugs into <random>.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    BCP_REQUIRE(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Bernoulli trial with success probability p in [0, 1].
  bool chance(double p) {
    BCP_REQUIRE(p >= 0.0 && p <= 1.0);
    return uniform() < p;
  }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

/// Derives the seed of an independent substream. `stream_id` identifies the
/// consumer (e.g. node id) and `salt` the purpose (e.g. "mac" vs "workload").
std::uint64_t substream(std::uint64_t root_seed, std::uint64_t stream_id,
                        std::uint64_t salt);

}  // namespace bcp::util

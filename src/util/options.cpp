#include "util/options.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/assert.hpp"

namespace bcp::util {

Options::Options(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

Options& Options::add_flag(const std::string& name, const std::string& help) {
  BCP_REQUIRE_MSG(!decls_.count(name), "duplicate option: " + name);
  Decl d;
  d.kind = Kind::kFlag;
  d.help = help;
  d.default_text = "false";
  decls_.emplace(name, std::move(d));
  order_.push_back(name);
  return *this;
}

Options& Options::add_int(const std::string& name, std::int64_t def,
                          const std::string& help) {
  BCP_REQUIRE_MSG(!decls_.count(name), "duplicate option: " + name);
  Decl d;
  d.kind = Kind::kInt;
  d.help = help;
  d.default_text = std::to_string(def);
  d.int_value = def;
  decls_.emplace(name, std::move(d));
  order_.push_back(name);
  return *this;
}

Options& Options::add_double(const std::string& name, double def,
                             const std::string& help) {
  BCP_REQUIRE_MSG(!decls_.count(name), "duplicate option: " + name);
  Decl d;
  d.kind = Kind::kDouble;
  d.help = help;
  d.default_text = std::to_string(def);
  d.double_value = def;
  decls_.emplace(name, std::move(d));
  order_.push_back(name);
  return *this;
}

Options& Options::add_string(const std::string& name, std::string def,
                             const std::string& help) {
  BCP_REQUIRE_MSG(!decls_.count(name), "duplicate option: " + name);
  Decl d;
  d.kind = Kind::kString;
  d.help = help;
  d.default_text = def;
  d.string_value = std::move(def);
  decls_.emplace(name, std::move(d));
  order_.push_back(name);
  return *this;
}

bool Options::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument '%s'\n%s",
                   arg.c_str(), usage().c_str());
      return false;
    }
    std::string name = arg.substr(2);
    std::string inline_value;
    bool has_inline = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline = true;
    }
    auto it = decls_.find(name);
    if (it == decls_.end()) {
      std::fprintf(stderr, "unknown option '--%s'\n%s", name.c_str(),
                   usage().c_str());
      return false;
    }
    Decl& d = it->second;
    if (d.kind == Kind::kFlag) {
      if (has_inline) {
        std::fprintf(stderr, "flag '--%s' takes no value\n", name.c_str());
        return false;
      }
      d.flag_value = true;
      continue;
    }
    std::string value;
    if (has_inline) {
      value = inline_value;
    } else {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "option '--%s' expects a value\n", name.c_str());
        return false;
      }
      value = argv[++i];
    }
    try {
      switch (d.kind) {
        case Kind::kInt:
          d.int_value = std::stoll(value);
          break;
        case Kind::kDouble:
          d.double_value = std::stod(value);
          break;
        case Kind::kString:
          d.string_value = value;
          break;
        case Kind::kFlag:
          break;  // handled above
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad value '%s' for option '--%s'\n", value.c_str(),
                   name.c_str());
      return false;
    }
  }
  return true;
}

const Options::Decl& Options::lookup(const std::string& name,
                                     Kind kind) const {
  auto it = decls_.find(name);
  BCP_REQUIRE_MSG(it != decls_.end(), "undeclared option: " + name);
  BCP_REQUIRE_MSG(it->second.kind == kind, "option type mismatch: " + name);
  return it->second;
}

bool Options::flag(const std::string& name) const {
  return lookup(name, Kind::kFlag).flag_value;
}

std::int64_t Options::get_int(const std::string& name) const {
  return lookup(name, Kind::kInt).int_value;
}

double Options::get_double(const std::string& name) const {
  return lookup(name, Kind::kDouble).double_value;
}

std::string Options::get_string(const std::string& name) const {
  return lookup(name, Kind::kString).string_value;
}

std::string Options::usage() const {
  std::string out = program_ + " — " + summary_ + "\noptions:\n";
  for (const auto& name : order_) {
    const Decl& d = decls_.at(name);
    out += "  --" + name;
    if (d.kind != Kind::kFlag) out += " <value>";
    out += "  (default: " + d.default_text + ")  " + d.help + "\n";
  }
  out += "  --help  print this message\n";
  return out;
}

}  // namespace bcp::util

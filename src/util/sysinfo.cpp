#include "util/sysinfo.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace bcp::util {

double peak_rss_mib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    // macOS reports ru_maxrss in bytes; Linux and the BSDs in KiB.
    return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
  }
#endif
  return 0.0;
}

}  // namespace bcp::util

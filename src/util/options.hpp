// Minimal command-line option parser used by the bench harnesses and
// examples (`--runs 5`, `--duration 1000`, `--full`, ...).
//
// Deliberately tiny: flags are declared up front with defaults and help
// text, unknown flags are an error, and `--help` prints usage and reports
// that the caller should exit.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace bcp::util {

class Options {
 public:
  /// `program` and `summary` feed the --help text.
  Options(std::string program, std::string summary);

  /// Declare options before parse(). Each returns *this for chaining.
  Options& add_flag(const std::string& name, const std::string& help);
  Options& add_int(const std::string& name, std::int64_t def,
                   const std::string& help);
  Options& add_double(const std::string& name, double def,
                      const std::string& help);
  Options& add_string(const std::string& name, std::string def,
                      const std::string& help);

  /// Parses argv. Returns false if --help was requested (usage printed) or a
  /// parse error occurred (error printed); callers should exit in that case.
  bool parse(int argc, const char* const* argv);

  bool flag(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::string get_string(const std::string& name) const;

  std::string usage() const;

 private:
  enum class Kind { kFlag, kInt, kDouble, kString };
  struct Decl {
    Kind kind = Kind::kFlag;
    std::string help;
    std::string default_text;
    bool flag_value = false;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
  };

  const Decl& lookup(const std::string& name, Kind kind) const;

  std::string program_;
  std::string summary_;
  std::vector<std::string> order_;  // declaration order, for usage()
  std::map<std::string, Decl> decls_;
};

}  // namespace bcp::util

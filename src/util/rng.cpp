#include "util/rng.hpp"

#include <cmath>

namespace bcp::util {

std::uint64_t Xoshiro256::uniform_int(std::uint64_t n) {
  BCP_REQUIRE(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Xoshiro256::exponential(double mean) {
  BCP_REQUIRE(mean > 0.0);
  // Inversion; (1 - u) keeps the argument of log strictly positive.
  return -mean * std::log1p(-uniform());
}

std::uint64_t substream(std::uint64_t root_seed, std::uint64_t stream_id,
                        std::uint64_t salt) {
  SplitMix64 sm(root_seed ^ (0x9E3779B97F4A7C15ULL * (stream_id + 1)) ^
                (0xD1B54A32D192ED03ULL * (salt + 1)));
  // Burn a few outputs so nearby (seed, id) pairs decorrelate.
  sm.next();
  sm.next();
  return sm.next();
}

}  // namespace bcp::util

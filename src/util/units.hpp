// Unit conventions for the whole library (DESIGN.md §7):
//   time   — seconds (double)
//   energy — joules  (double)
//   power  — watts   (double)
//   size   — bits    (int64_t); helpers convert from bytes / KB
//   rate   — bits per second (double)
//   length — metres  (double)
//
// The paper quotes powers in mW, wake-up energies in mJ, sizes in bytes/KB
// and rates in Kbps/Mbps; the helpers below keep those translations explicit
// at the call site instead of burying magic factors in the models.
#pragma once

#include <cmath>
#include <cstdint>

namespace bcp::util {

using Seconds = double;
using Joules = double;
using Watts = double;
using BitsPerSecond = double;
using Metres = double;
using Bits = std::int64_t;

constexpr double kMilli = 1e-3;
constexpr double kMicro = 1e-6;

/// Bytes to bits.
constexpr Bits bytes(std::int64_t n) { return n * 8; }

/// Kilobytes (2^10 bytes, as the paper's figures use) to bits.
constexpr Bits kilobytes(std::int64_t n) { return n * 1024 * 8; }

/// Bits to (fractional) bytes.
constexpr double to_bytes(Bits bits) { return static_cast<double>(bits) / 8.0; }

/// Bits to (fractional) kilobytes.
constexpr double to_kilobytes(Bits bits) {
  return static_cast<double>(bits) / (8.0 * 1024.0);
}

/// Milliwatts to watts (Table 1 is quoted in mW).
constexpr Watts milliwatts(double mw) { return mw * kMilli; }

/// Millijoules to joules (Table 1 wake-up energies are in mJ).
constexpr Joules millijoules(double mj) { return mj * kMilli; }

/// Microjoules to joules (Figures 11-12 are in uJ).
constexpr Joules microjoules(double uj) { return uj * kMicro; }

/// Kilobits-per-second to bit/s.
constexpr BitsPerSecond kbps(double k) { return k * 1e3; }

/// Megabits-per-second to bit/s.
constexpr BitsPerSecond mbps(double m) { return m * 1e6; }

/// Milliseconds to seconds.
constexpr Seconds milliseconds(double ms) { return ms * kMilli; }

/// Microseconds to seconds.
constexpr Seconds microseconds(double us) { return us * kMicro; }

/// Serialization time of `bits` at `rate` bit/s.
constexpr Seconds tx_duration(Bits bits, BitsPerSecond rate) {
  return static_cast<double>(bits) / rate;
}

/// dBm to milliwatts. SINR bookkeeping only ever compares power *ratios*,
/// so the channel keeps linear powers in mW and never converts to watts.
inline double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }

/// dB to a linear power ratio (10 dB -> 10x).
inline double db_to_ratio(double db) { return std::pow(10.0, db / 10.0); }

}  // namespace bcp::util

// A FIFO on a sliding vector window.
//
// std::deque costs two allocations just to default-construct (block map +
// first block, on libstdc++) — real money when a 2500-node scenario holds
// four idle queues per node. This queue allocates nothing until the first
// push, retains its capacity across drain/refill cycles, and compacts the
// popped prefix lazily (amortized O(1) per element), so both idle nodes
// and steady-state churn stay off the allocator.
//
// References returned by front()/begin() are invalidated by push_back and
// pop_front (vector semantics) — copy or move the element out before
// mutating, which is how the MAC/host code uses it.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace bcp::util {

template <typename T>
class SlidingQueue {
 public:
  bool empty() const { return head_ == buf_.size(); }
  std::size_t size() const { return buf_.size() - head_; }

  T& front() {
    BCP_REQUIRE(!empty());
    return buf_[head_];
  }
  const T& front() const {
    BCP_REQUIRE(!empty());
    return buf_[head_];
  }

  void push_back(T value) { buf_.push_back(std::move(value)); }

  void pop_front() {
    BCP_REQUIRE(!empty());
    buf_[head_] = T{};  // release the element's resources now
    ++head_;
    if (head_ == buf_.size()) {
      buf_.clear();
      head_ = 0;
    } else if (head_ > buf_.size() / 2) {
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  void clear() {
    buf_.clear();
    head_ = 0;
  }

  void swap(SlidingQueue& other) {
    buf_.swap(other.buf_);
    std::swap(head_, other.head_);
  }

  // Iteration over the live range, oldest first.
  T* begin() { return buf_.data() + head_; }
  T* end() { return buf_.data() + buf_.size(); }
  const T* begin() const { return buf_.data() + head_; }
  const T* end() const { return buf_.data() + buf_.size(); }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
};

}  // namespace bcp::util

// Lightweight leveled logging.
//
// Off (kWarn) by default so simulations run silently; benches and debugging
// sessions can raise the level. Not thread-safe by design — the simulator is
// single-threaded (see sim/simulator.hpp).
#pragma once

#include <string>

namespace bcp::util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

/// Global level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes "[level] message\n" to stderr if `level` >= the global level.
void log(LogLevel level, const std::string& message);

inline void log_trace(const std::string& m) { log(LogLevel::kTrace, m); }
inline void log_debug(const std::string& m) { log(LogLevel::kDebug, m); }
inline void log_info(const std::string& m) { log(LogLevel::kInfo, m); }
inline void log_warn(const std::string& m) { log(LogLevel::kWarn, m); }
inline void log_error(const std::string& m) { log(LogLevel::kError, m); }

}  // namespace bcp::util

// Spatial sharding of a radio medium for the parallel engine.
//
// ShardMap cuts the node plane into vertical stripes of equal population
// (sorted by x, ties by id), numbered left to right — so stripe adjacency
// matches index adjacency and the parity phases of sim::ShardedSimulator
// alternate across space.
//
// ShardedMedium is one radio class's Channel, partitioned: every shard
// gets a Channel over the *shared* connectivity graph that delivers only
// to nodes the shard owns. Transmissions heard across a stripe edge are
// exported as Channel::RemoteFrame records into per-directed-pair
// mailboxes and injected into the destination shard at its next window
// drain. Mailboxes are double-buffered by window parity: with the
// engine's even-then-odd phase order, the buffer a writer appends to in
// window k is never the buffer its reader drains in window k, so the
// exchange is lock-free — the engine's phase barriers provide all the
// ordering (see the buffer-parity proof at drain()).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/link_state.hpp"
#include "net/topology.hpp"
#include "phy/channel.hpp"
#include "sim/sharded_simulator.hpp"

namespace bcp::phy {

/// Node → shard assignment as contiguous equal-count x-stripes, plus the
/// global↔local id mapping that lets each partition size its node-indexed
/// state by its own population instead of the global one. Local ids are
/// contiguous per stripe, assigned in ascending global-id order, so a
/// partition's per-node vectors of length owned_count(s) are dense and
/// the translation is one shared O(n) array (like shard_of itself), not
/// per-shard state.
struct ShardMap {
  int count = 1;
  std::vector<std::int32_t> shard_of;  ///< per node id: owning stripe
  std::vector<std::int32_t> local_of;  ///< per node id: stripe-local id
  /// Per stripe: owned global ids, ascending (the inverse of local_of —
  /// owned[s][local_of[g]] == g for every g with shard_of[g] == s).
  std::vector<std::vector<net::NodeId>> owned;

  /// Splits `positions` into min(shards, n) stripes of (near-)equal
  /// population, sorted by (x, id). Deterministic.
  static ShardMap stripes(const std::vector<net::Position>& positions,
                          int shards);

  int owned_count(int shard) const {
    return static_cast<int>(owned[static_cast<std::size_t>(shard)].size());
  }
  const std::vector<net::NodeId>& owned_nodes(int shard) const {
    return owned[static_cast<std::size_t>(shard)];
  }

  /// Per stripe: the halo — remote global ids adjacent to an owned node in
  /// any of `graphs` (union over radio classes), sorted ascending. These
  /// are exactly the ids a partition can name in a membership query whose
  /// answer must be epoch-exact, so they get dense slots in the stripe's
  /// LinkState replicas.
  std::vector<std::vector<net::NodeId>> halos(
      const std::vector<const net::ConnectivityGraph*>& graphs) const;

  /// The stripe-local id domain net::LinkState builds its replica over:
  /// dense slots [0, owned) via local_of, then one slot per halo id in the
  /// given order. The domain aliases this map's arrays — the ShardMap must
  /// outlive every replica built on it.
  std::shared_ptr<const net::StripeDomain> domain(
      int shard, const std::vector<net::NodeId>& halo) const;
};

class ShardedMedium {
 public:
  /// One Channel per engine shard over the shared graph. Shard s draws
  /// from RNG substream (seed, s) — deterministic at fixed shard count.
  ShardedMedium(sim::ShardedSimulator& engine,
                std::shared_ptr<const net::ConnectivityGraph> graph,
                const ShardMap& map, Channel::Params params,
                std::uint64_t seed);

  Channel& shard(int s) { return *channels_[static_cast<std::size_t>(s)]; }
  const Channel& shard(int s) const {
    return *channels_[static_cast<std::size_t>(s)];
  }

  /// Drains every mailbox addressed to shard s for window `window`,
  /// merging frames in deterministic (start time, source shard) order,
  /// and injects them into s's channel. Call from the engine's drain
  /// hook — i.e. on s's pinned worker thread, between phase barriers.
  void drain(int s, std::int64_t window);

  /// Destroys shard s's channel partition. Must run on s's pinned worker
  /// thread (the teardown for_each_shard phase): in-flight transmission
  /// records hold thread-local pooled payload refs.
  void reset_shard(int s);

  /// Aggregates over live (non-reset) partitions.
  Channel::Stats total_stats() const;
  std::int64_t total_live_arrivals() const;
  std::int64_t boundary_exports() const;

 private:
  struct Mailbox {
    std::vector<Channel::RemoteFrame> buf[2];
  };
  struct Tagged {
    Channel::RemoteFrame rf;
    std::int32_t src_shard;
  };

  Mailbox& mail(int src, int dst) {
    return mail_[static_cast<std::size_t>(src) *
                     static_cast<std::size_t>(count_) +
                 static_cast<std::size_t>(dst)];
  }

  sim::ShardedSimulator& engine_;
  const ShardMap& map_;  // not owned; must outlive the medium
  int count_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<Mailbox> mail_;             // src * count_ + dst
  std::vector<std::vector<Tagged>> scratch_;  // per dst shard, drain merge
};

}  // namespace bcp::phy

// The on-air unit exchanged between MACs through a Channel.
#pragma once

#include <cstdint>

#include "net/message_ref.hpp"
#include "util/units.hpp"

namespace bcp::phy {

enum class FrameKind : std::uint8_t { kData, kAck, kBeacon };

struct Frame {
  net::NodeId tx_node = net::kInvalidNode;
  /// MAC destination; net::kBroadcastNode for broadcast (no ack expected).
  net::NodeId rx_node = net::kInvalidNode;
  FrameKind kind = FrameKind::kData;
  std::uint32_t mac_seq = 0;
  util::Bits payload_bits = 0;   ///< network-layer bits (0 for acks)
  util::Bits header_bits = 0;    ///< link header bits
  util::Seconds preamble = 0;    ///< fixed-duration PHY preamble (e.g. PLCP)
  /// Present for kData frames. Shared-immutable: every copy of the Frame
  /// (MAC queue, in-flight channel record, per-hearer delivery) shares one
  /// pooled payload instead of deep-copying it.
  net::MessageRef message;

  /// Time on the air at `rate` bit/s.
  util::Seconds duration(util::BitsPerSecond rate) const {
    return preamble +
           static_cast<double>(payload_bits + header_bits) / rate;
  }

  /// Time until the link header has been received — what a header-only
  /// overhearing radio pays (§4's "Sensor-header" model).
  util::Seconds header_duration(util::BitsPerSecond rate) const {
    return preamble + static_cast<double>(header_bits) / rate;
  }
};

}  // namespace bcp::phy

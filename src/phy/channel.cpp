#include "phy/channel.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/assert.hpp"

namespace bcp::phy {

Channel::Channel(sim::Simulator& sim, std::vector<net::Position> positions,
                 util::Metres range, Params params, std::uint64_t seed)
    : Channel(sim,
              std::make_shared<net::ConnectivityGraph>(std::move(positions),
                                                       range),
              std::move(params), seed) {}

Channel::Channel(sim::Simulator& sim,
                 std::shared_ptr<const net::ConnectivityGraph> graph,
                 Params params, std::uint64_t seed)
    : sim_(sim),
      graph_(std::move(graph)),
      params_(std::move(params)),
      rng_(util::substream(seed, 0, /*salt=*/0x43484E4C)) {
  BCP_REQUIRE(graph_ != nullptr);
  // The closed interval: frame_loss_prob == 1.0 is a legitimate
  // "fully lossy link" configuration (every delivery corrupt, MAC retries
  // exhaust) — see the full-loss regression test.
  BCP_REQUIRE(params_.frame_loss_prob >= 0.0 &&
              params_.frame_loss_prob <= 1.0);
  // Capture params are validated unconditionally, mirroring the loss-prob
  // range check above: a NaN threshold or a NaN/zero/infinite noise power
  // is a configuration error whether or not the switch is on.
  BCP_REQUIRE(std::isfinite(params_.capture.threshold_db));
  noise_mw_ = util::dbm_to_mw(params_.capture.noise_floor_dbm);
  BCP_REQUIRE(std::isfinite(noise_mw_) && noise_mw_ > 0.0);
  capture_ = params_.capture.enabled;
  min_sinr_ = util::db_to_ratio(params_.capture.threshold_db);
  model_ = make_propagation_model(params_.propagation, *graph_,
                                  params_.frame_loss_prob,
                                  util::substream(seed, 7, 0x50524F50u));
  uniform_loss_ = model_->uniform();
  unit_loss_ = uniform_loss_ ? model_->loss_prob(0, 0, 0) : 0.0;
  unit_rx_mw_ = uniform_loss_ ? model_->rx_power_mw(0, 0, 0) : 0.0;
  // Sized for the global population here; a channel that becomes one
  // partition of a sharded medium re-sizes these down to its owned stripe
  // in enable_sharding, before any traffic.
  const auto n = static_cast<std::size_t>(graph_->node_count());
  listeners_.resize(n, nullptr);
  arrivals_.resize(n);
  arrival_power_mw_.resize(n, 0.0);
  transmitting_.resize(n, 0);
  own_tx_end_.resize(n, 0.0);
  own_tx_start_.resize(n, 0.0);
  arrival_max_end_.resize(n, 0.0);
}

void Channel::enable_sharding(ShardingSpec spec) {
  BCP_REQUIRE(spec.shard_of != nullptr && spec.local_of != nullptr &&
              spec.emit != nullptr);
  BCP_REQUIRE(spec.my_shard >= 0 && spec.my_shard < spec.shard_count);
  BCP_REQUIRE(spec.owned_count > 0 &&
              spec.owned_count <= graph().node_count());
  BCP_REQUIRE_MSG(stats_.frames == 0 && stats_.rx_starts == 0,
                  "enable_sharding must precede any traffic");
  shard_of_ = spec.shard_of;
  local_of_ = spec.local_of;
  my_shard_ = spec.my_shard;
  boundary_emit_ = std::move(spec.emit);
  // Stripe-local sizing: the constructor sized these for the global
  // population; swap them down to the owned stripe (swap, not resize —
  // resize would keep the O(n) capacity this refactor exists to shed).
  // From here on every access translates through li().
  const auto m = static_cast<std::size_t>(spec.owned_count);
  std::vector<ChannelListener*>(m, nullptr).swap(listeners_);
  std::vector<std::vector<Arrival>>(m).swap(arrivals_);
  std::vector<double>(m, 0.0).swap(arrival_power_mw_);
  std::vector<std::uint64_t>(m, 0).swap(transmitting_);
  std::vector<util::Seconds>(m, 0.0).swap(own_tx_end_);
  std::vector<util::Seconds>(m, 0.0).swap(own_tx_start_);
  std::vector<util::Seconds>(m, 0.0).swap(arrival_max_end_);
  remote_seen_.assign(static_cast<std::size_t>(spec.shard_count), 0);
  remote_dsts_.clear();
  remote_dsts_.reserve(static_cast<std::size_t>(spec.shard_count));
}

void Channel::attach(net::NodeId node, ChannelListener* listener) {
  BCP_REQUIRE(node >= 0 && node < graph().node_count());
  BCP_REQUIRE_MSG(owned(node), "listener node not owned by this shard");
  BCP_REQUIRE(listener != nullptr);
  BCP_REQUIRE_MSG(listeners_[li(node)] == nullptr,
                  "listener already attached");
  listeners_[li(node)] = listener;
}

std::vector<Channel::Arrival>& Channel::arrivals(net::NodeId node) {
  return arrivals_[li(node)];
}

std::uint32_t Channel::acquire_tx_slot() {
  if (tx_free_head_ != kNoSlot) {
    const std::uint32_t slot = tx_free_head_;
    tx_free_head_ = tx_slots_[slot].next_free;
    tx_slots_[slot].next_free = kNoSlot;
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(tx_slots_.size());
  BCP_ENSURE_MSG(slot != kNoSlot, "transmission slot space exhausted");
  tx_slots_.emplace_back();
  return slot;
}

void Channel::start_tx(net::NodeId src, const Frame& frame,
                       util::Seconds duration) {
  BCP_REQUIRE(src >= 0 && src < graph().node_count());
  BCP_REQUIRE_MSG(owned(src), "transmitter not owned by this shard");
  BCP_REQUIRE(duration > 0);
  BCP_REQUIRE_MSG(transmitting_[li(src)] == 0, "node already transmitting");
  BCP_REQUIRE(frame.rx_node != src);

  const std::uint32_t slot = acquire_tx_slot();
  const util::Seconds now = sim_.now();
  const util::Seconds end = now + duration;
  const std::uint64_t tx_id =
      (static_cast<std::uint64_t>(tx_slots_[slot].gen) << 32) | slot;
  // Copying the frame shares its pooled message payload — no deep copy.
  tx_slots_[slot].tx = Transmission{src, frame, end, now, false};
  transmitting_[li(src)] = tx_id;
  own_tx_end_[li(src)] = end;
  own_tx_start_[li(src)] = now;
  ++stats_.frames;

  // Half-duplex: whatever the transmitter was hearing is lost to it.
  for (auto& a : arrivals(src)) a.clean = false;

  const auto& nbrs = graph().neighbors(src);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const net::NodeId r = nbrs[i];
    // A down link (or endpoint) suppresses the hearer entirely: no
    // arrival, no callbacks, no RNG draw.
    if (links_ != nullptr && !links_->link_up(src, r)) continue;
    // A hearer owned by another shard gets the frame via that shard's
    // mailbox instead (exported once per destination shard below).
    if (shard_of_ != nullptr && !owned(r)) {
      const std::int32_t dst = shard_of_[r];
      if (!remote_seen_[static_cast<std::size_t>(dst)]) {
        remote_seen_[static_cast<std::size_t>(dst)] = 1;
        remote_dsts_.push_back(dst);
      }
      continue;
    }
    auto& at_r = arrivals(r);
    const double loss =
        uniform_loss_ ? unit_loss_ : model_->loss_prob(src, i, r);
    bool clean;
    double rx_mw = 0.0;
    double interference_mw = 0.0;
    if (!capture_) {
      // Overlap at r corrupts both the new frame and everything in flight.
      const bool overlap = !at_r.empty() || transmitting_[li(r)] != 0;
      for (auto& a : at_r) a.clean = false;
      clean = !overlap && !rng_.chance(loss);
    } else {
      // SINR mode: overlap corrupts nothing outright. The new arrival
      // raises every in-flight frame's concurrent interference; each
      // frame's fate is decided at its rx_end against the peak it saw.
      // (Half-duplex is still absolute — a transmitting hearer decodes
      // nothing and, short-circuited, consumes no loss draw; every other
      // hearer draws whether overlapped or not, so capture runs own a
      // different, denser RNG consumption than the golden-pinned default
      // path.)
      rx_mw = uniform_loss_ ? unit_rx_mw_ : model_->rx_power_mw(src, i, r);
      double& power_sum = arrival_power_mw_[li(r)];
      for (auto& a : at_r)
        a.peak_interference_mw = std::max(
            a.peak_interference_mw, power_sum - a.rx_power_mw + rx_mw);
      interference_mw = power_sum;
      power_sum += rx_mw;
      clean = transmitting_[li(r)] == 0 && !rng_.chance(loss);
    }
    at_r.push_back(Arrival{tx_id, clean, end, rx_mw, interference_mw, now});
    auto& max_end = arrival_max_end_[li(r)];
    max_end = std::max(max_end, end);
    ++stats_.rx_starts;
    if (auto* l = listeners_[li(r)]; l != nullptr)
      l->on_rx_start(tx_id, frame, duration);
  }

  if (!remote_dsts_.empty()) {
    for (const std::int32_t dst : remote_dsts_) {
      RemoteFrame rf;
      rf.src = src;
      rf.frame = frame;
      // Pooled refs are thread-local: detach and ship the payload by
      // value, one deep copy per destination shard.
      rf.frame.message = net::MessageRef{};
      if (frame.message) {
        rf.payload = *frame.message;
        rf.has_payload = true;
      }
      rf.start = now;
      rf.end = end;
      boundary_emit_(dst, std::move(rf));
      ++boundary_exports_;
      remote_seen_[static_cast<std::size_t>(dst)] = 0;
    }
    remote_dsts_.clear();
  }

  tx_slots_[slot].finish_event =
      sim_.schedule_at(end, [this, tx_id] { finish_tx(tx_id); });
}

void Channel::inject_remote(RemoteFrame rf) {
  BCP_REQUIRE(shard_of_ != nullptr);
  BCP_REQUIRE(rf.src >= 0 && rf.src < graph().node_count());
  BCP_REQUIRE(!owned(rf.src));
  BCP_REQUIRE(rf.end > rf.start);
  const std::uint32_t slot = acquire_tx_slot();
  const std::uint64_t tx_id =
      (static_cast<std::uint64_t>(tx_slots_[slot].gen) << 32) | slot;
  Transmission tx;
  tx.src = rf.src;
  tx.frame = rf.frame;
  if (rf.has_payload)
    tx.frame.message = net::make_message(std::move(rf.payload));
  tx.start = rf.start;
  tx.end = rf.end;
  tx.remote = true;
  tx_slots_[slot].tx = std::move(tx);
  if (rf.start > sim_.now()) {
    // Still in this shard's future (the exact-replay case: an even shard
    // exported it within the window the odd shard is about to run).
    tx_slots_[slot].finish_event =
        sim_.schedule_at(rf.start, [this, tx_id] { begin_remote(tx_id); });
  } else {
    begin_remote(tx_id);
  }
}

void Channel::begin_remote(std::uint64_t tx_id) {
  const auto slot = static_cast<std::uint32_t>(tx_id);
  // Copy the timing fields: finish_tx (the fully-ended case below) moves
  // the transmission out of the slot.
  const net::NodeId src = tx_slots_[slot].tx.src;
  const Frame frame = tx_slots_[slot].tx.frame;
  const util::Seconds s = tx_slots_[slot].tx.start;
  const util::Seconds e = tx_slots_[slot].tx.end;
  const util::Seconds now = sim_.now();
  const util::Seconds remaining = std::max(0.0, e - now);

  const auto& nbrs = graph().neighbors(src);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const net::NodeId r = nbrs[i];
    if (!owned(r)) continue;
    // The receiving shard's replica is exact for its own nodes: a hearer
    // this shard already knows is down (crashed locally, or via a prior
    // epoch) never hears the remote frame. The transmitter's shard also
    // masks at start_tx from its replica, which may be one window stale
    // for this link — the documented staleness bound.
    if (links_ != nullptr && !links_->link_up(src, r)) continue;
    auto& at_r = arrivals(r);
    const double loss =
        uniform_loss_ ? unit_loss_ : model_->loss_prob(src, i, r);
    // Half-duplex over the true interval: the hearer's own transmission
    // collides only if it actually shared air time with [s, e).
    const bool tx_overlap =
        transmitting_[li(r)] != 0 && own_tx_start_[li(r)] < e;
    bool clean;
    double rx_mw = 0.0;
    double interference_mw = 0.0;
    if (!capture_) {
      bool overlap = tx_overlap;
      for (auto& a : at_r) {
        if (a.start < e && s < a.end) {
          a.clean = false;
          overlap = true;
        }
      }
      clean = !overlap && !rng_.chance(loss);
    } else {
      rx_mw = uniform_loss_ ? unit_rx_mw_ : model_->rx_power_mw(src, i, r);
      double& power_sum = arrival_power_mw_[li(r)];
      for (auto& a : at_r) {
        if (a.start < e && s < a.end) {
          a.peak_interference_mw = std::max(
              a.peak_interference_mw, power_sum - a.rx_power_mw + rx_mw);
          interference_mw += a.rx_power_mw;
        }
      }
      power_sum += rx_mw;
      clean = !tx_overlap && !rng_.chance(loss);
    }
    at_r.push_back(Arrival{tx_id, clean, e, rx_mw, interference_mw, s});
    auto& max_end = arrival_max_end_[li(r)];
    max_end = std::max(max_end, e);
    ++stats_.rx_starts;
    if (auto* l = listeners_[li(r)]; l != nullptr)
      l->on_rx_start(tx_id, frame, remaining);
  }

  if (e > now)
    tx_slots_[slot].finish_event =
        sim_.schedule_at(e, [this, tx_id] { finish_tx(tx_id); });
  else
    // Fully in the past (late by < one exchange window): rx_start and
    // rx_end land back-to-back, still exactly once per hearer.
    finish_tx(tx_id);
}

void Channel::finish_tx(std::uint64_t tx_id) {
  const auto slot = static_cast<std::uint32_t>(tx_id);
  BCP_ENSURE(slot < tx_slots_.size() &&
             tx_slots_[slot].gen == static_cast<std::uint32_t>(tx_id >> 32));
  const Transmission tx = std::move(tx_slots_[slot].tx);
  tx_slots_[slot].tx = Transmission{};  // drop the stale payload ref
  if (++tx_slots_[slot].gen == 0) tx_slots_[slot].gen = 1;
  tx_slots_[slot].next_free = tx_free_head_;
  tx_free_head_ = slot;
  // Exactly-once by construction: abort_tx_of cancels the scheduled
  // completion before finishing early, so whoever reaches here is still
  // the transmission's owner. Remote frames never owned the mask.
  if (!tx.remote) {
    BCP_ENSURE(transmitting_[li(tx.src)] == tx_id);
    transmitting_[li(tx.src)] = 0;
  }

  for (const net::NodeId r : graph().neighbors(tx.src)) {
    // Sharded: hearers owned by other shards were fed from their own
    // copy of the frame (and a remote src's own-shard hearers were local
    // there) — nothing to deliver here.
    if (shard_of_ != nullptr && !owned(r)) continue;
    auto& at_r = arrivals(r);
    // Arrival order within a node's list carries no meaning (collision
    // marking and clear_at are order-independent), so swap-remove.
    std::size_t i = 0;
    while (i < at_r.size() && at_r[i].tx_id != tx_id) ++i;
    if (i >= at_r.size()) {
      // Only possible with dynamic link state: the link was down at
      // start_tx, so this hearer never got the arrival. The current state
      // is irrelevant — arrivals, not the mask, are the ground truth.
      BCP_ENSURE(links_ != nullptr);
      continue;
    }
    bool clean = at_r[i].clean;
    if (capture_) {
      const Arrival& a = at_r[i];
      // The SINR verdict for overlapped frames, against the worst
      // interference each saw. Collision-free arrivals skip it: their
      // noise/SNR story is already the propagation model's PER, and
      // judging them twice would let "capture" corrupt frames the
      // default rule delivers.
      clean = clean &&
              (a.peak_interference_mw <= 0.0 ||
               a.rx_power_mw >=
                   min_sinr_ * (noise_mw_ + a.peak_interference_mw));
      double& power_sum = arrival_power_mw_[li(r)];
      power_sum -= a.rx_power_mw;
      if (at_r.size() == 1) power_sum = 0.0;  // busy period over: drop residue
    }
    at_r[i] = at_r.back();
    at_r.pop_back();
    if (clean)
      ++stats_.deliveries_clean;
    else
      ++stats_.deliveries_corrupt;
    if (auto* l = listeners_[li(r)]; l != nullptr)
      l->on_rx_end(tx_id, tx.frame, clean);
  }
}

std::int64_t Channel::live_arrivals() const {
  std::int64_t total = 0;
  for (const auto& a : arrivals_)
    total += static_cast<std::int64_t>(a.size());
  return total;
}

void Channel::abort_tx_of(net::NodeId src) {
  BCP_REQUIRE(src >= 0 && src < graph().node_count());
  BCP_REQUIRE_MSG(owned(src), "abort of a node another shard owns");
  const std::uint64_t tx_id = transmitting_[li(src)];
  if (tx_id == 0) return;
  // Truncation corrupts the frame for every hearer this shard feeds
  // (remote hearers got their own copy of the frame in their shard)…
  for (const net::NodeId r : graph().neighbors(src)) {
    if (shard_of_ != nullptr && !owned(r)) continue;
    for (auto& a : arrivals(r))
      if (a.tx_id == tx_id) a.clean = false;
  }
  // …and the carrier dies with the node: finish the transmission NOW so
  // its interference contribution and medium occupancy end at the abort
  // time, not at the originally scheduled rx_end. finish_tx delivers the
  // (corrupt) rx_end to every hearer exactly once, keeping the
  // rx_starts == deliveries + live conservation law intact; the pending
  // completion event must die first or it would double-finish a recycled
  // slot.
  const auto slot = static_cast<std::uint32_t>(tx_id);
  sim_.cancel(tx_slots_[slot].finish_event);
  finish_tx(tx_id);
}

bool Channel::busy_at(net::NodeId node) const {
  BCP_REQUIRE(node >= 0 && node < graph().node_count());
  BCP_REQUIRE_MSG(owned(node), "carrier sense at a node another shard owns");
  const std::size_t i = li(node);
  return transmitting_[i] != 0 || !arrivals_[i].empty();
}

util::Seconds Channel::clear_at(net::NodeId node) const {
  BCP_REQUIRE(node >= 0 && node < graph().node_count());
  BCP_REQUIRE_MSG(owned(node), "carrier sense at a node another shard owns");
  const std::size_t i = li(node);
  util::Seconds t = sim_.now();
  if (transmitting_[i] != 0) t = std::max(t, own_tx_end_[i]);
  // Every arrival already removed ended at or before now, so the running
  // max is exact for the live set once clamped to now.
  return std::max(t, arrival_max_end_[i]);
}

}  // namespace bcp::phy

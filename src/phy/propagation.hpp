// Pluggable link-quality (propagation) models for the broadcast Channel.
//
// The Channel decides *who hears* a frame from the disc connectivity graph
// (every node within `range`); the PropagationModel decides *how likely a
// heard frame is lost* on each (src, dst) link, independent of collisions.
// Three deterministic, seed-driven implementations:
//
//   UnitDisc    — today's idealized channel: one global Bernoulli
//                 frame-loss probability on every link. The kAuto default
//                 resolves here, so the historical fig01–fig12/table1
//                 pipelines are bit-for-bit unchanged (same RNG stream,
//                 same draw count).
//   LogDistance — log-distance path loss with per-link log-normal
//                 shadowing frozen at topology build: each link draws one
//                 shadowing offset from a hash of its endpoint pair, so a
//                 link's PER is stable for the whole run (and independent
//                 of construction order). The dB link margin
//                     margin = fade_margin_db
//                            + 10·n·log10(range/d) + X,  X ~ N(0, σ)
//                 maps to a PER through a logistic curve,
//                     per = 1 / (1 + exp(margin / per_transition_db)),
//                 i.e. links near the disc edge or hit by a deep shadow
//                 are unreliable, close links are clean.
//   DistancePer — a piecewise-linear PER-vs-distance curve (points are
//                 fractions of the disc range) for quick what-ifs without
//                 a propagation story.
//
// Every model composes the Channel's extra Bernoulli knob
// (`frame_loss_prob`, the scenario axis that predates this seam) as an
// independent loss: p = per + extra − per·extra. For UnitDisc the per-link
// PER is zero, so p == frame_loss_prob exactly — the byte-identity
// guarantee the differential golden test pins.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/topology.hpp"

namespace bcp::phy {

enum class PropagationKind : std::uint8_t {
  kAuto,      ///< resolves to kUnitDisc (the historical behavior)
  kUnitDisc,
  kLogDistance,
  kDistancePer,
};

const char* to_string(PropagationKind kind);

/// One knot of the DistancePer curve; `distance_fraction` is d/range.
struct PerPoint {
  double distance_fraction = 0.0;
  double per = 0.0;
};

/// Declarative model recipe carried by ScenarioConfig / Channel::Params.
struct PropagationSpec {
  PropagationKind kind = PropagationKind::kAuto;

  // kLogDistance.
  double path_loss_exponent = 3.0;   ///< n in 10·n·log10(range/d)
  double shadowing_sigma_db = 4.0;   ///< per-link log-normal σ (0 = none)
  double fade_margin_db = 6.0;       ///< link margin at the disc edge
  double per_transition_db = 2.0;    ///< logistic softness of margin→PER

  // kDistancePer; empty uses kDefaultPerCurve. Knots must be sorted by
  // distance_fraction with per in [0, 1].
  std::vector<PerPoint> per_curve;

  // Received-power model backing SINR/capture reception (consulted only
  // when Channel::Params::capture is enabled; see channel.hpp). The
  // unit-disc and distance-PER models have no propagation story, so every
  // heard link gets one fixed on/off power; log-distance derives a
  // per-link power from the same path-loss + shadowing draw as its PER:
  //   rx = edge_rx_power_dbm + 10·n·log10(range/d) + X
  // (the dB margin above the disc-edge budget, anchored in dBm).
  double fixed_rx_power_dbm = -60.0;  ///< kUnitDisc / kDistancePer links
  double edge_rx_power_dbm = -80.0;   ///< kLogDistance power at the disc edge

  /// The kind this spec resolves to (kAuto → kUnitDisc).
  PropagationKind resolved() const {
    return kind == PropagationKind::kAuto ? PropagationKind::kUnitDisc : kind;
  }
  bool is_unit_disc() const {
    return resolved() == PropagationKind::kUnitDisc;
  }
};

/// The DistancePer curve used when `per_curve` is empty: clean to 60% of
/// the range, then degrading to 0.7 PER at the disc edge.
const std::vector<PerPoint>& kDefaultPerCurve();

/// Per-link loss oracle the Channel queries once per (frame, hearer).
class PropagationModel {
 public:
  virtual ~PropagationModel() = default;

  virtual PropagationKind kind() const = 0;
  const char* name() const { return to_string(kind()); }

  /// Loss probability for a frame src→dst, where dst is
  /// graph.neighbors(src)[neighbor_index] (the Channel's hearer loop
  /// already has the index, making per-link lookups O(1)). Includes the
  /// composed extra Bernoulli loss; excludes collisions.
  virtual double loss_prob(net::NodeId src, std::size_t neighbor_index,
                           net::NodeId dst) const = 0;

  /// True when loss_prob is one constant for every link (UnitDisc) — lets
  /// the Channel skip the virtual call on its hot path.
  virtual bool uniform() const { return false; }

  /// Received signal power (dBm) for a heard frame src→dst, indexed like
  /// loss_prob. Only consulted when the Channel's SINR/capture mode is on
  /// (one call per (frame, hearer) at rx_start); per-link values are
  /// frozen at model build, sharing the loss table's shadowing draws.
  virtual double rx_power_dbm(net::NodeId src, std::size_t neighbor_index,
                              net::NodeId dst) const = 0;

  /// Same power in linear mW — what the Channel's interference sums
  /// actually consume. Implementations precompute it next to the frozen
  /// dBm value so the hot path never pays a per-arrival pow().
  virtual double rx_power_mw(net::NodeId src, std::size_t neighbor_index,
                             net::NodeId dst) const = 0;
};

/// Builds the model `spec` describes over `graph`, composing `extra_loss`
/// (the Channel's frame_loss_prob) into every link. Per-link tables
/// (shadowing draws, curve evaluations) are frozen here, at topology
/// build; `seed` only feeds the per-link shadowing hash. Validates the
/// spec (throws std::invalid_argument via BCP_REQUIRE on bad parameters).
std::unique_ptr<PropagationModel> make_propagation_model(
    const PropagationSpec& spec, const net::ConnectivityGraph& graph,
    double extra_loss, std::uint64_t seed);

}  // namespace bcp::phy

// A radio device: power state machine + energy accounting + the glue
// between a MAC and the Channel.
//
// States and their energy categories:
//   kOff      — radio dark; arrivals are not heard at all.
//   kWaking   — off->on transition in progress (t_wakeup); the Table 1
//               e_wakeup lump is charged when the transition starts.
//   kIdle     — awake, listening but nothing arriving (p_idle).
//   kRx       — locked on a frame addressed to this node (p_rx).
//   kOverhear — locked on (or sampling the header of) someone else's frame.
//   kTx       — transmitting (p_tx).
//
// Overhearing is an energy/visibility policy (OverhearMode):
//   kNone       — others' frames cost nothing (the §4.1 "ideal" sensor view
//                 is obtained by *charging policy* instead, see energy/);
//   kHeaderOnly — pay p_rx for the link header, then return to idle (the
//                 "Sensor-header" model: nodes decode the header, see the
//                 frame is not theirs, and stop listening);
//   kFull       — receive the whole frame and surface it via the
//                 frame_overheard callback (needed for BCP's route-shortcut
//                 learning, §3).
#pragma once

#include <cstdint>
#include <functional>

#include "energy/energy_meter.hpp"
#include "energy/radio_model.hpp"
#include "phy/channel.hpp"
#include "phy/frame.hpp"
#include "sim/simulator.hpp"

namespace bcp::phy {

enum class RadioState : std::uint8_t {
  kOff,
  kWaking,
  kIdle,
  kRx,
  kOverhear,
  kTx
};

const char* to_string(RadioState s);

enum class OverhearMode : std::uint8_t { kNone, kHeaderOnly, kFull };

class Radio final : public ChannelListener {
 public:
  struct Callbacks {
    std::function<void()> tx_done;                    ///< own frame finished
    std::function<void(const Frame&)> frame_received; ///< clean, for me
    std::function<void(const Frame&)> frame_overheard;///< clean, for others
    std::function<void()> wake_complete;              ///< off->on finished
  };

  /// `start_on` = true puts the radio straight into kIdle with no wake-up
  /// charge (how the always-on sensor radios start).
  Radio(sim::Simulator& sim, Channel& channel, net::NodeId self,
        const energy::RadioEnergyModel& model, OverhearMode overhear,
        bool start_on);

  Radio(const Radio&) = delete;
  Radio& operator=(const Radio&) = delete;

  net::NodeId self() const { return self_; }
  RadioState state() const { return state_; }

  /// True when the radio can accept transmit() (awake and not mid-TX).
  bool ready() const {
    return state_ == RadioState::kIdle || state_ == RadioState::kRx ||
           state_ == RadioState::kOverhear;
  }
  bool is_on() const { return state_ != RadioState::kOff; }

  /// Begins the off->on transition (no-op unless kOff). Charges e_wakeup
  /// and calls wake_complete after t_wakeup.
  void power_on();

  /// Immediate shutdown. Aborts any reception in progress. Must not be
  /// called mid-transmission (the MAC drains first).
  void power_off();

  /// Crash shutdown: like power_off() but legal mid-transmission — the
  /// in-flight frame is truncated (corrupted for every hearer via
  /// Channel::abort_tx_of) and tx_done never fires. The owner must reset
  /// its MAC state alongside; this is the fault-injection path, not a
  /// protocol-level power-down.
  void force_off();

  /// Puts `frame` on the air. Requires ready(); an in-progress reception
  /// is abandoned (half-duplex). tx_done fires when the frame ends.
  void transmit(const Frame& frame);

  /// Carrier sense, delegated to the channel.
  bool channel_busy() const { return channel_.busy_at(self_); }
  util::Seconds channel_clear_at() const { return channel_.clear_at(self_); }

  const energy::RadioEnergyModel& model() const { return meter_.model(); }
  energy::EnergyMeter& meter() { return meter_; }
  const energy::EnergyMeter& meter() const { return meter_; }
  Callbacks& callbacks() { return callbacks_; }

  /// Invoked after every power-state change (so after the meter moved to
  /// the new category). Finite batteries re-arm their depletion event
  /// here; unset (the default) costs one branch and changes nothing.
  void set_energy_observer(std::function<void()> observer) {
    energy_observer_ = std::move(observer);
  }

  // ChannelListener:
  void on_rx_start(std::uint64_t tx_id, const Frame& frame,
                   util::Seconds duration) override;
  void on_rx_end(std::uint64_t tx_id, const Frame& frame,
                 bool clean) override;

 private:
  void set_state(RadioState s);
  energy::EnergyCategory category_of(RadioState s) const;

  sim::Simulator& sim_;
  Channel& channel_;
  net::NodeId self_;
  OverhearMode overhear_;
  energy::EnergyMeter meter_;
  Callbacks callbacks_;
  std::function<void()> energy_observer_;

  RadioState state_ = RadioState::kOff;
  std::uint64_t lock_tx_id_ = 0;     ///< frame we are locked on (0 = none)
  bool lock_addressed_ = false;      ///< locked frame is for us
  sim::Simulator::EventHandle wake_event_;
  sim::Simulator::EventHandle header_done_event_;
  sim::Simulator::EventHandle tx_end_event_;
};

}  // namespace bcp::phy

// Broadcast radio medium with a disc propagation model.
//
// Semantics:
//  * Every node within `range` of a transmitter hears the frame (gets
//    on_rx_start / on_rx_end callbacks); whether its radio does anything
//    with it is the radio's business.
//  * A frame is delivered **clean** to a hearer unless (a) it overlapped
//    any other transmission audible at that hearer (collision — no capture
//    effect), (b) the hearer itself transmitted during the frame
//    (half-duplex), or (c) an independent Bernoulli(frame_loss_prob) trial
//    fails (fading/noise stand-in).
//  * Carrier sense (`busy_at`) reflects what a node can hear, including its
//    own transmission. Sensing range equals reception range; nodes farther
//    apart are hidden terminals from each other — the grid scenarios rely
//    on this to reproduce the paper's multi-hop contention losses.
//  * Propagation delay is ignored (< 1 us at the 40-300 m scales simulated;
//    three orders of magnitude below every MAC timing constant).
//
// The two radio classes of §4.1 "are assumed to be operating in
// non-overlapping channels": instantiate one Channel per radio class.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/link_state.hpp"
#include "net/topology.hpp"
#include "phy/frame.hpp"
#include "phy/propagation.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace bcp::phy {

class ChannelListener {
 public:
  virtual ~ChannelListener() = default;
  /// A frame started arriving; `tx_id` identifies it through to rx_end.
  virtual void on_rx_start(std::uint64_t tx_id, const Frame& frame,
                           util::Seconds duration) = 0;
  /// The frame finished; `clean` per the rules above.
  virtual void on_rx_end(std::uint64_t tx_id, const Frame& frame,
                         bool clean) = 0;
};

class Channel {
 public:
  struct Params {
    /// Extra independent Bernoulli loss per (frame, hearer), in [0, 1],
    /// composed with whatever the propagation model says per link.
    double frame_loss_prob = 0.0;
    /// Link-quality model; the kAuto default resolves to UnitDisc, which
    /// is bit-for-bit the historical single-knob channel.
    PropagationSpec propagation;

    Params() = default;
    Params(double loss) : frame_loss_prob(loss) {}  // NOLINT(google-explicit-constructor)
    Params(double loss, PropagationSpec prop)
        : frame_loss_prob(loss), propagation(std::move(prop)) {}
  };

  struct Stats {
    std::int64_t frames = 0;             ///< transmissions started
    std::int64_t rx_starts = 0;          ///< per-hearer on_rx_start calls
    std::int64_t deliveries_clean = 0;   ///< per-hearer clean deliveries
    std::int64_t deliveries_corrupt = 0; ///< per-hearer corrupted deliveries
  };

  Channel(sim::Simulator& sim, std::vector<net::Position> positions,
          util::Metres range, Params params, std::uint64_t seed);

  /// Registers the listener for a node. At most one per node.
  void attach(net::NodeId node, ChannelListener* listener);

  /// Puts a frame on the air for `duration` seconds. The transmitter must
  /// not already be transmitting.
  void start_tx(net::NodeId src, const Frame& frame, util::Seconds duration);

  /// True if `node` can hear any ongoing transmission (or is transmitting).
  bool busy_at(net::NodeId node) const;

  /// Earliest time at which everything `node` currently hears (including
  /// its own transmission) has ended; now() if the channel is clear.
  util::Seconds clear_at(net::NodeId node) const;

  bool in_range(net::NodeId a, net::NodeId b) const {
    return graph_.connected(a, b);
  }

  /// The disc connectivity graph the channel propagates over. Routing for
  /// the same radio class builds on this instead of re-deriving an
  /// identical graph from the positions.
  const net::ConnectivityGraph& graph() const { return graph_; }

  int node_count() const { return graph_.node_count(); }
  const Stats& stats() const { return stats_; }

  /// Arrivals currently on the air (rx_start delivered, rx_end pending)
  /// summed over all hearers — with stats(), the exact conservation law
  /// rx_starts == deliveries_clean + deliveries_corrupt + live_arrivals().
  std::int64_t live_arrivals() const;

  /// The propagation model delivery draws against (never null).
  const PropagationModel& propagation() const { return *model_; }

  /// Attaches dynamic link/node availability (nullptr detaches). While a
  /// link (or either endpoint) is down, new frames are not heard across
  /// it; frames already in flight complete normally. Not owned; must
  /// outlive the channel while attached.
  void set_link_state(const net::LinkState* links) { links_ = links; }

  /// Crash support: marks the node's in-flight transmission (if any) as
  /// corrupt for every hearer — the frame is truncated mid-air. The
  /// transmission still occupies the medium until its scheduled end (the
  /// carrier dies with the node, but at fault-plan time scales the
  /// difference is nanoseconds of idle), so rx_end conservation holds.
  void abort_tx_of(net::NodeId src);

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  struct Arrival {
    std::uint64_t tx_id;
    bool clean;
    util::Seconds end;
  };

  struct Transmission {
    net::NodeId src = net::kInvalidNode;
    Frame frame;
    util::Seconds end = 0;
  };

  /// In-flight transmission slot: generation-stamped and free-listed like
  /// the simulator's event slots, so start/finish cycles reuse storage
  /// instead of hashing into a node-allocating map. tx ids pack
  /// (generation << 32 | slot); generation >= 1, so an id is never 0
  /// (0 = "not transmitting" in `transmitting_`).
  struct TxSlot {
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNoSlot;
    Transmission tx;
  };

  void finish_tx(std::uint64_t tx_id);
  std::vector<Arrival>& arrivals(net::NodeId node);

  sim::Simulator& sim_;
  net::ConnectivityGraph graph_;
  Params params_;
  util::Xoshiro256 rng_;
  Stats stats_;
  std::unique_ptr<PropagationModel> model_;
  // UnitDisc fast path: constant loss probability, no virtual call per
  // hearer (uniform_loss_ caches model_->uniform()).
  bool uniform_loss_ = true;
  double unit_loss_ = 0.0;
  const net::LinkState* links_ = nullptr;

  std::vector<TxSlot> tx_slots_;
  std::uint32_t tx_free_head_ = kNoSlot;
  std::vector<ChannelListener*> listeners_;
  // Per node: live arrivals only (each is removed by its finish_tx, so
  // busy_at's emptiness check never sees a dead entry), with capacity
  // retained across the run.
  std::vector<std::vector<Arrival>> arrivals_;
  std::vector<std::uint64_t> transmitting_;      // per node: own tx id or 0
  std::vector<util::Seconds> own_tx_end_;        // valid when transmitting_
  // Per node: running max of every arrival end ever pushed. Expired
  // arrivals are pruned lazily — entries removed at their end time can
  // only leave a stale max <= now, so clear_at() is an O(1) max instead
  // of a scan.
  std::vector<util::Seconds> arrival_max_end_;
};

}  // namespace bcp::phy

// Broadcast radio medium with a disc propagation model.
//
// Semantics:
//  * Every node within `range` of a transmitter hears the frame (gets
//    on_rx_start / on_rx_end callbacks); whether its radio does anything
//    with it is the radio's business.
//  * A frame is delivered **clean** to a hearer unless (a) it overlapped
//    any other transmission audible at that hearer (collision — resolved
//    by the all-overlaps-corrupt rule by default, or by SINR with capture
//    when Params::capture is enabled: the strongest frame survives a
//    collision it dominates), (b) the hearer itself transmitted during the
//    frame (half-duplex), or (c) an independent Bernoulli(frame_loss_prob)
//    trial fails (fading/noise stand-in).
//  * Carrier sense (`busy_at`) reflects what a node can hear, including its
//    own transmission. Sensing range equals reception range; nodes farther
//    apart are hidden terminals from each other — the grid scenarios rely
//    on this to reproduce the paper's multi-hop contention losses.
//  * Propagation delay is ignored (< 1 us at the 40-300 m scales simulated;
//    three orders of magnitude below every MAC timing constant).
//
// The two radio classes of §4.1 "are assumed to be operating in
// non-overlapping channels": instantiate one Channel per radio class.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "net/link_state.hpp"
#include "net/topology.hpp"
#include "phy/frame.hpp"
#include "phy/propagation.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace bcp::phy {

class ChannelListener {
 public:
  virtual ~ChannelListener() = default;
  /// A frame started arriving; `tx_id` identifies it through to rx_end.
  virtual void on_rx_start(std::uint64_t tx_id, const Frame& frame,
                           util::Seconds duration) = 0;
  /// The frame finished; `clean` per the rules above.
  virtual void on_rx_end(std::uint64_t tx_id, const Frame& frame,
                         bool clean) = 0;
};

class Channel {
 public:
  /// SINR-based reception with capture effect. Disabled (the default),
  /// collisions follow the historical all-overlaps-corrupt rule and the
  /// channel's behaviour is bit-for-bit unchanged — same RNG stream, same
  /// draw count (the golden-protected switch). Enabled, every arrival
  /// carries the rx power its link's propagation model assigns
  /// (PropagationModel::rx_power_dbm), the channel tracks the *peak*
  /// concurrent interference each arrival experiences, and an OVERLAPPED
  /// frame is delivered clean iff its worst-case SINR clears the
  /// threshold:
  ///     rx_power >= 10^(threshold_db/10) · (noise + peak_interference)
  /// — the strongest frame survives a collision it dominates, weaker
  /// overlaps still corrupt. Collision-free frames are untouched (their
  /// noise/SNR story is already the propagation model's PER — no double
  /// jeopardy), and half-duplex plus the Bernoulli losses apply unchanged
  /// on top.
  struct CaptureParams {
    bool enabled = false;
    /// SINR required to decode, in dB; must be finite. At >= 0 dB the
    /// usual capture contract holds: at most one frame survives a
    /// collision (the conditions p_a >= m·(N+p_b) and p_b >= m·(N+p_a)
    /// are mutually exclusive for linear m >= 1), so equal-power ties
    /// corrupt both. Negative thresholds are deliberately legal but
    /// change the regime: several overlapping frames can decode at one
    /// receiver — an idealized multi-packet-reception model, useful for
    /// leniency sweeps, not a physical single-antenna radio.
    double threshold_db = 10.0;
    /// Receiver noise power. Must convert to a positive, finite noise
    /// power (NaN / ±inf are rejected — -inf dBm would be a zero-noise
    /// receiver, which turns the SINR into a division-free comparison the
    /// validation keeps honest instead).
    double noise_floor_dbm = -100.0;
  };

  struct Params {
    /// Extra independent Bernoulli loss per (frame, hearer), in [0, 1],
    /// composed with whatever the propagation model says per link.
    double frame_loss_prob = 0.0;
    /// Link-quality model; the kAuto default resolves to UnitDisc, which
    /// is bit-for-bit the historical single-knob channel.
    PropagationSpec propagation;
    /// Collision resolution; see CaptureParams.
    CaptureParams capture;

    Params() = default;
    Params(double loss) : frame_loss_prob(loss) {}  // NOLINT(google-explicit-constructor)
    Params(double loss, PropagationSpec prop)
        : frame_loss_prob(loss), propagation(std::move(prop)) {}
  };

  struct Stats {
    std::int64_t frames = 0;             ///< transmissions started
    std::int64_t rx_starts = 0;          ///< per-hearer on_rx_start calls
    std::int64_t deliveries_clean = 0;   ///< per-hearer clean deliveries
    std::int64_t deliveries_corrupt = 0; ///< per-hearer corrupted deliveries
  };

  Channel(sim::Simulator& sim, std::vector<net::Position> positions,
          util::Metres range, Params params, std::uint64_t seed);

  /// Shared-graph constructor: several channel partitions of one sharded
  /// run (or any other co-located consumers) reuse a single connectivity
  /// graph instead of rebuilding O(n + e) adjacency per partition.
  Channel(sim::Simulator& sim,
          std::shared_ptr<const net::ConnectivityGraph> graph, Params params,
          std::uint64_t seed);

  /// Registers the listener for a node. At most one per node.
  void attach(net::NodeId node, ChannelListener* listener);

  /// Puts a frame on the air for `duration` seconds. The transmitter must
  /// not already be transmitting.
  void start_tx(net::NodeId src, const Frame& frame, util::Seconds duration);

  /// True if `node` can hear any ongoing transmission (or is transmitting).
  bool busy_at(net::NodeId node) const;

  /// Earliest time at which everything `node` currently hears (including
  /// its own transmission) has ended; now() if the channel is clear.
  util::Seconds clear_at(net::NodeId node) const;

  bool in_range(net::NodeId a, net::NodeId b) const {
    return graph().connected(a, b);
  }

  /// The disc connectivity graph the channel propagates over. Routing for
  /// the same radio class builds on this instead of re-deriving an
  /// identical graph from the positions.
  const net::ConnectivityGraph& graph() const { return *graph_; }

  int node_count() const { return graph().node_count(); }

  /// Dense per-node slots actually allocated: node_count() for an
  /// unsharded channel, the owned stripe's population after
  /// enable_sharding — the white-box memory-model assertion the sharded
  /// tests pin.
  std::size_t node_slots() const { return listeners_.size(); }

  const Stats& stats() const { return stats_; }

  /// Arrivals currently on the air (rx_start delivered, rx_end pending)
  /// summed over all hearers — with stats(), the exact conservation law
  /// rx_starts == deliveries_clean + deliveries_corrupt + live_arrivals().
  std::int64_t live_arrivals() const;

  /// The propagation model delivery draws against (never null).
  const PropagationModel& propagation() const { return *model_; }

  /// Attaches dynamic link/node availability (nullptr detaches). While a
  /// link (or either endpoint) is down, new frames are not heard across
  /// it; frames already in flight complete normally. Not owned; must
  /// outlive the channel while attached. On a sharded channel this is the
  /// shard's own LinkState *replica*: exact for nodes the shard owns,
  /// stale by at most one exchange window for remote nodes (membership
  /// deltas arrive at window barriers). Both sides mask: a transmitter
  /// skips the export when its replica has the remote hearer down, and
  /// begin_remote re-checks the receiving shard's replica.
  void set_link_state(const net::LinkState* links) { links_ = links; }

  // ---- Sharded operation (sim/sharded_simulator.hpp) ----
  //
  // A sharded run partitions the node plane: each shard owns one Channel
  // over the *shared* full graph but only delivers to nodes it owns.
  // A transmission whose hearer set crosses a shard edge is exported once
  // per remote shard as a RemoteFrame (payload deep-copied — pooled
  // MessageRefs are thread-local and must never cross shards) and
  // re-enacted in the destination shard by inject_remote at the next
  // window drain.

  /// A boundary frame crossing to another shard. `frame.message` is
  /// detached; the payload (if any) travels by value and is re-pooled on
  /// the destination shard's thread at injection.
  struct RemoteFrame {
    net::NodeId src = net::kInvalidNode;
    Frame frame;
    net::Message payload;
    bool has_payload = false;
    util::Seconds start = 0;
    util::Seconds end = 0;
  };
  using BoundaryEmit =
      std::function<void(std::int32_t dst_shard, RemoteFrame&& rf)>;

  /// How a partition maps the global id space onto its own state — see
  /// enable_sharding. `shard_of`/`local_of` are shared per-node arrays
  /// (phy::ShardMap's), not owned, and must outlive the channel.
  struct ShardingSpec {
    const std::int32_t* shard_of = nullptr;  ///< global id → owning shard
    const std::int32_t* local_of = nullptr;  ///< global id → stripe-local id
    std::int32_t my_shard = 0;
    std::int32_t shard_count = 0;
    std::int32_t owned_count = 0;  ///< population of my_shard's stripe
    BoundaryEmit emit;
  };

  /// Marks this channel as one shard of a partitioned medium: local
  /// deliveries are restricted to nodes with shard_of[id] == my_shard,
  /// and every transmission heard by other shards is handed to `emit`
  /// (once per destination shard). The per-node vectors are re-sized from
  /// the global population down to `owned_count` — every access to them
  /// translates global → stripe-local through `local_of`, so a partition's
  /// node-indexed memory is O(n/shards), not O(n) (the shared read-only
  /// graph stays global). Must be called before any attach or traffic.
  /// Composes with set_link_state: attach the shard's own LinkState
  /// replica and both the local hearer loop and remote-frame replay
  /// consult it.
  void enable_sharding(ShardingSpec spec);

  /// Re-enacts a frame exported by a neighboring shard. A frame whose
  /// start is still in this shard's future is replayed with its exact
  /// original timing; one already begun (late by less than the exchange
  /// window) is begun now over its true [start, end) interval — collision
  /// marking uses real air-time overlap, so a late frame only corrupts
  /// (and is corrupted by) transmissions it genuinely shared the air
  /// with. A frame that already ended delivers rx_start and rx_end
  /// back-to-back. Remote frames never count toward stats().frames (the
  /// origin shard counted the transmission); their arrivals land in
  /// rx_starts/deliveries/live as usual, so the per-shard conservation
  /// law rx_starts == rx_ends + live still holds exactly.
  void inject_remote(RemoteFrame rf);

  /// Boundary frames this shard exported (0 when sharding is off).
  std::int64_t boundary_exports() const { return boundary_exports_; }

  /// Crash support: the node's in-flight transmission (if any) is
  /// truncated mid-air — corrupt for every hearer, and the carrier dies
  /// *now*: hearers get their rx_end at the abort time, the medium and
  /// the frame's interference contribution end here rather than at the
  /// originally scheduled rx_end, and the scheduled completion event is
  /// cancelled. rx_start/rx_end/live conservation holds through the early
  /// teardown (every started arrival is delivered, exactly once, as
  /// corrupt).
  void abort_tx_of(net::NodeId src);

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  struct Arrival {
    std::uint64_t tx_id;
    /// Non-SINR verdict: Bernoulli loss + half-duplex + abort. In capture
    /// mode overlap does NOT clear it; the SINR test at rx_end composes
    /// on top (so a frame corrupted N ways is still counted exactly once).
    bool clean;
    util::Seconds end;
    // Capture mode only (zero otherwise): this link's rx power and the
    // running max of the concurrent interference sum (all other live
    // arrival powers at this hearer) observed over the frame's lifetime.
    double rx_power_mw = 0.0;
    double peak_interference_mw = 0.0;
    /// True air start — late-injected remote frames test real interval
    /// overlap against it (local frames start at their rx_start instant).
    util::Seconds start = 0.0;
  };

  struct Transmission {
    net::NodeId src = net::kInvalidNode;
    Frame frame;
    util::Seconds end = 0;
    util::Seconds start = 0;
    /// Injected from another shard: src is not owned here, so the
    /// transmitter-side bookkeeping (transmitting_ mask, stats_.frames,
    /// half-duplex self-corruption) is skipped.
    bool remote = false;
  };

  /// In-flight transmission slot: generation-stamped and free-listed like
  /// the simulator's event slots, so start/finish cycles reuse storage
  /// instead of hashing into a node-allocating map. tx ids pack
  /// (generation << 32 | slot); generation >= 1, so an id is never 0
  /// (0 = "not transmitting" in `transmitting_`).
  struct TxSlot {
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNoSlot;
    Transmission tx;
    /// The scheduled finish_tx event — cancelled by abort_tx_of, which
    /// finishes the transmission early instead.
    sim::Simulator::EventHandle finish_event;
  };

  void finish_tx(std::uint64_t tx_id);
  std::vector<Arrival>& arrivals(net::NodeId node);
  std::uint32_t acquire_tx_slot();
  bool owned(net::NodeId node) const {
    return shard_of_ == nullptr || shard_of_[node] == my_shard_;
  }
  /// Index of `node` into the per-node vectors: the global id unsharded,
  /// its stripe-local id after enable_sharding. Only valid for owned ids —
  /// a remote id's local_of entry indexes a *different* shard's stripe, so
  /// every caller sits behind an owned() check.
  std::size_t li(net::NodeId node) const {
    return local_of_ == nullptr
               ? static_cast<std::size_t>(node)
               : static_cast<std::size_t>(
                     local_of_[static_cast<std::size_t>(node)]);
  }
  /// Begins a remote frame's reception in this shard: records arrivals at
  /// owned hearers over the true [start, end) interval and schedules (or,
  /// for already-ended frames, performs) the finish.
  void begin_remote(std::uint64_t tx_id);

  sim::Simulator& sim_;
  std::shared_ptr<const net::ConnectivityGraph> graph_;
  Params params_;
  util::Xoshiro256 rng_;
  Stats stats_;
  std::unique_ptr<PropagationModel> model_;
  // UnitDisc fast path: constant loss probability and rx power, no
  // virtual call per hearer (uniform_loss_ caches model_->uniform()).
  bool uniform_loss_ = true;
  double unit_loss_ = 0.0;
  double unit_rx_mw_ = 0.0;
  // Capture mode, resolved once at construction: the linear SINR floor and
  // noise power the per-arrival decision compares against.
  bool capture_ = false;
  double min_sinr_ = 0.0;
  double noise_mw_ = 0.0;
  const net::LinkState* links_ = nullptr;

  std::vector<TxSlot> tx_slots_;
  std::uint32_t tx_free_head_ = kNoSlot;
  std::vector<ChannelListener*> listeners_;
  // Per node: live arrivals only (each is removed by its finish_tx, so
  // busy_at's emptiness check never sees a dead entry), with capacity
  // retained across the run.
  std::vector<std::vector<Arrival>> arrivals_;
  // Capture mode: per node, the running sum of live arrival rx powers —
  // an arrival's instantaneous interference is this sum minus its own
  // power. Reset to exactly 0 whenever the arrival list empties, so
  // floating-point residue cannot outlive a busy period.
  std::vector<double> arrival_power_mw_;
  std::vector<std::uint64_t> transmitting_;      // per node: own tx id or 0
  std::vector<util::Seconds> own_tx_end_;        // valid when transmitting_
  std::vector<util::Seconds> own_tx_start_;      // valid when transmitting_

  // Sharded operation (null/empty when off).
  const std::int32_t* shard_of_ = nullptr;
  const std::int32_t* local_of_ = nullptr;
  std::int32_t my_shard_ = 0;
  BoundaryEmit boundary_emit_;
  std::int64_t boundary_exports_ = 0;
  // start_tx scratch: destination shards of the current frame (deduped).
  std::vector<std::uint8_t> remote_seen_;
  std::vector<std::int32_t> remote_dsts_;
  // Per node: running max of every arrival end ever pushed. Expired
  // arrivals are pruned lazily — entries removed at their end time can
  // only leave a stale max <= now, so clear_at() is an O(1) max instead
  // of a scan. (An abort removes its arrivals early; the stale max then
  // keeps carrier sense conservative until the original end, never
  // optimistic.)
  std::vector<util::Seconds> arrival_max_end_;
};

}  // namespace bcp::phy

#include "phy/radio.hpp"

#include "util/assert.hpp"

namespace bcp::phy {

const char* to_string(RadioState s) {
  switch (s) {
    case RadioState::kOff:      return "off";
    case RadioState::kWaking:   return "waking";
    case RadioState::kIdle:     return "idle";
    case RadioState::kRx:       return "rx";
    case RadioState::kOverhear: return "overhear";
    case RadioState::kTx:       return "tx";
  }
  return "?";
}

Radio::Radio(sim::Simulator& sim, Channel& channel, net::NodeId self,
             const energy::RadioEnergyModel& model, OverhearMode overhear,
             bool start_on)
    : sim_(sim),
      channel_(channel),
      self_(self),
      overhear_(overhear),
      meter_(model) {
  channel_.attach(self, this);
  if (start_on) {
    state_ = RadioState::kIdle;
    meter_.transition(energy::EnergyCategory::kIdle, sim_.now());
  }
}

energy::EnergyCategory Radio::category_of(RadioState s) const {
  switch (s) {
    case RadioState::kOff:      return energy::EnergyCategory::kOff;
    case RadioState::kWaking:   return energy::EnergyCategory::kWaking;
    case RadioState::kIdle:     return energy::EnergyCategory::kIdle;
    case RadioState::kRx:       return energy::EnergyCategory::kRx;
    case RadioState::kOverhear: return energy::EnergyCategory::kOverhear;
    case RadioState::kTx:       return energy::EnergyCategory::kTx;
  }
  BCP_ENSURE_MSG(false, "bad state");
}

void Radio::set_state(RadioState s) {
  state_ = s;
  meter_.transition(category_of(s), sim_.now());
  // Every power-state change funnels through here, so this one hook is
  // enough for a finite battery to re-arm its depletion event. power_on()
  // charges its e_wakeup lump before entering kWaking, so the observer
  // always sees the lump already drawn.
  if (energy_observer_) energy_observer_();
}

void Radio::power_on() {
  if (state_ != RadioState::kOff) return;
  meter_.add_wakeup_charge();
  set_state(RadioState::kWaking);
  const auto finish = [this] {
    set_state(RadioState::kIdle);
    if (callbacks_.wake_complete) callbacks_.wake_complete();
  };
  if (model().t_wakeup <= 0.0) {
    finish();
  } else {
    wake_event_ = sim_.schedule_in(model().t_wakeup, finish);
  }
}

void Radio::power_off() {
  BCP_REQUIRE_MSG(state_ != RadioState::kTx,
                  "cannot power off mid-transmission");
  if (state_ == RadioState::kOff) return;
  sim_.cancel(wake_event_);
  sim_.cancel(header_done_event_);
  lock_tx_id_ = 0;
  lock_addressed_ = false;
  set_state(RadioState::kOff);
}

void Radio::force_off() {
  if (state_ == RadioState::kOff) return;
  if (state_ == RadioState::kTx) {
    channel_.abort_tx_of(self_);
    sim_.cancel(tx_end_event_);
  }
  sim_.cancel(wake_event_);
  sim_.cancel(header_done_event_);
  lock_tx_id_ = 0;
  lock_addressed_ = false;
  set_state(RadioState::kOff);
}

void Radio::transmit(const Frame& frame) {
  BCP_REQUIRE_MSG(ready(), "transmit on a radio that is not ready");
  BCP_REQUIRE(frame.tx_node == self_);
  // Abandon any reception in progress — half-duplex.
  lock_tx_id_ = 0;
  lock_addressed_ = false;
  sim_.cancel(header_done_event_);
  const util::Seconds duration = frame.duration(model().rate);
  set_state(RadioState::kTx);
  channel_.start_tx(self_, frame, duration);
  tx_end_event_ = sim_.schedule_in(duration, [this] {
    set_state(RadioState::kIdle);
    if (callbacks_.tx_done) callbacks_.tx_done();
  });
}

void Radio::on_rx_start(std::uint64_t tx_id, const Frame& frame,
                        util::Seconds duration) {
  (void)duration;
  if (state_ != RadioState::kIdle) return;  // off, waking, or busy
  const bool addressed = frame.rx_node == self_ ||
                         frame.rx_node == net::kBroadcastNode;
  if (addressed) {
    lock_tx_id_ = tx_id;
    lock_addressed_ = true;
    set_state(RadioState::kRx);
    return;
  }
  switch (overhear_) {
    case OverhearMode::kNone:
      return;  // stay idle; the frame costs us nothing
    case OverhearMode::kHeaderOnly: {
      // Listen to the link header, recognise the frame is not ours, and go
      // back to idle; on_rx_end for this frame is then ignored.
      lock_tx_id_ = tx_id;
      lock_addressed_ = false;
      set_state(RadioState::kOverhear);
      const util::Seconds header_time = frame.header_duration(model().rate);
      header_done_event_ = sim_.schedule_in(header_time, [this] {
        if (state_ == RadioState::kOverhear) {
          lock_tx_id_ = 0;
          set_state(RadioState::kIdle);
        }
      });
      return;
    }
    case OverhearMode::kFull:
      lock_tx_id_ = tx_id;
      lock_addressed_ = false;
      set_state(RadioState::kOverhear);
      return;
  }
}

void Radio::on_rx_end(std::uint64_t tx_id, const Frame& frame, bool clean) {
  if (lock_tx_id_ != tx_id) return;  // never locked, or lock was abandoned
  // An abort-truncated frame can end BEFORE its header-only timer fires;
  // kill the timer with the lock, or its stale expiry would clear a later
  // frame's overhear lock (it guards on state, not tx id).
  sim_.cancel(header_done_event_);
  const bool addressed = lock_addressed_;
  lock_tx_id_ = 0;
  lock_addressed_ = false;
  set_state(RadioState::kIdle);
  if (!clean) return;
  if (addressed) {
    if (callbacks_.frame_received) callbacks_.frame_received(frame);
  } else {
    // Only kFull overhearers are still locked at frame end.
    if (callbacks_.frame_overheard) callbacks_.frame_overheard(frame);
  }
}

}  // namespace bcp::phy

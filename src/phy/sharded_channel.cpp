#include "phy/sharded_channel.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace bcp::phy {

ShardMap ShardMap::stripes(const std::vector<net::Position>& positions,
                           int shards) {
  const auto n = positions.size();
  BCP_REQUIRE(n > 0);
  BCP_REQUIRE(shards >= 1);
  ShardMap map;
  map.count = std::min<int>(shards, static_cast<int>(n));
  map.shard_of.assign(n, 0);
  if (map.count == 1) return map;
  std::vector<std::int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    const auto ai = static_cast<std::size_t>(a);
    const auto bi = static_cast<std::size_t>(b);
    if (positions[ai].x != positions[bi].x)
      return positions[ai].x < positions[bi].x;
    return a < b;
  });
  for (int s = 0; s < map.count; ++s) {
    const auto lo = n * static_cast<std::size_t>(s) /
                    static_cast<std::size_t>(map.count);
    const auto hi = n * (static_cast<std::size_t>(s) + 1) /
                    static_cast<std::size_t>(map.count);
    for (std::size_t i = lo; i < hi; ++i)
      map.shard_of[static_cast<std::size_t>(order[i])] =
          static_cast<std::int32_t>(s);
  }
  return map;
}

int ShardMap::owned_count(int shard) const {
  int total = 0;
  for (const std::int32_t s : shard_of)
    if (s == shard) ++total;
  return total;
}

ShardedMedium::ShardedMedium(
    sim::ShardedSimulator& engine,
    std::shared_ptr<const net::ConnectivityGraph> graph, const ShardMap& map,
    Channel::Params params, std::uint64_t seed)
    : engine_(engine), map_(map), count_(map.count) {
  BCP_REQUIRE(count_ == engine.shard_count());
  BCP_REQUIRE(graph != nullptr &&
              graph->node_count() == static_cast<int>(map.shard_of.size()));
  mail_.resize(static_cast<std::size_t>(count_) *
               static_cast<std::size_t>(count_));
  scratch_.resize(static_cast<std::size_t>(count_));
  channels_.resize(static_cast<std::size_t>(count_));
  for (int s = 0; s < count_; ++s) {
    auto channel = std::make_unique<Channel>(
        engine.shard(s), graph, params,
        util::substream(seed, static_cast<std::uint64_t>(s), 0x53484152u));
    channel->enable_sharding(
        map_.shard_of.data(), s, count_,
        [this, s](std::int32_t dst, Channel::RemoteFrame&& rf) {
          // Double-buffered by the parity of the window being executed;
          // only shard s's pinned thread writes (src, dst) buffers.
          const auto parity =
              static_cast<std::size_t>(engine_.current_window() & 1);
          mail(s, dst).buf[parity].push_back(std::move(rf));
        });
    channels_[static_cast<std::size_t>(s)] = std::move(channel);
  }
}

void ShardedMedium::drain(int s, std::int64_t window) {
  auto& scratch = scratch_[static_cast<std::size_t>(s)];
  scratch.clear();
  for (int src = 0; src < count_; ++src) {
    if (src == s) continue;
    // Which buffer of (src → s) is quiescent while s runs window k?
    // Even writers fill buf[k&1] during the even phase of window k; an
    // odd reader draining in the same window's odd phase takes exactly
    // that buffer (the exact-timing path — the barrier between phases
    // makes it safe). Every other direction reads the previous window's
    // buffer: the writer is either running the same phase (and writing
    // buf[k&1]) or ran after the reader's parity last window — both
    // leave buf[(k-1)&1] untouched this phase. Each buffer is drained
    // exactly one window after it is filled, before its writer cycles
    // back to it.
    const std::int64_t w =
        (src % 2 == 0 && s % 2 == 1) ? window : window - 1;
    auto& buf = mail(src, s).buf[static_cast<std::size_t>(w & 1)];
    for (auto& rf : buf) scratch.push_back(Tagged{std::move(rf), src});
    buf.clear();
  }
  if (scratch.empty()) return;
  // Canonical merge order: frames from one source shard are already in
  // emission (time) order; a stable sort by (start, source shard) makes
  // the injection sequence independent of mailbox iteration details.
  std::stable_sort(scratch.begin(), scratch.end(),
                   [](const Tagged& a, const Tagged& b) {
                     if (a.rf.start != b.rf.start)
                       return a.rf.start < b.rf.start;
                     return a.src_shard < b.src_shard;
                   });
  Channel& channel = shard(s);
  for (auto& t : scratch) channel.inject_remote(std::move(t.rf));
  scratch.clear();
}

void ShardedMedium::reset_shard(int s) {
  channels_[static_cast<std::size_t>(s)].reset();
}

Channel::Stats ShardedMedium::total_stats() const {
  Channel::Stats total;
  for (const auto& c : channels_) {
    if (c == nullptr) continue;
    total.frames += c->stats().frames;
    total.rx_starts += c->stats().rx_starts;
    total.deliveries_clean += c->stats().deliveries_clean;
    total.deliveries_corrupt += c->stats().deliveries_corrupt;
  }
  return total;
}

std::int64_t ShardedMedium::total_live_arrivals() const {
  std::int64_t total = 0;
  for (const auto& c : channels_)
    if (c != nullptr) total += c->live_arrivals();
  return total;
}

std::int64_t ShardedMedium::boundary_exports() const {
  std::int64_t total = 0;
  for (const auto& c : channels_)
    if (c != nullptr) total += c->boundary_exports();
  return total;
}

}  // namespace bcp::phy

#include "phy/sharded_channel.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace bcp::phy {

ShardMap ShardMap::stripes(const std::vector<net::Position>& positions,
                           int shards) {
  const auto n = positions.size();
  BCP_REQUIRE(n > 0);
  BCP_REQUIRE(shards >= 1);
  ShardMap map;
  map.count = std::min<int>(shards, static_cast<int>(n));
  map.shard_of.assign(n, 0);
  if (map.count > 1) {
    std::vector<std::int32_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
      const auto ai = static_cast<std::size_t>(a);
      const auto bi = static_cast<std::size_t>(b);
      if (positions[ai].x != positions[bi].x)
        return positions[ai].x < positions[bi].x;
      return a < b;
    });
    for (int s = 0; s < map.count; ++s) {
      const auto lo = n * static_cast<std::size_t>(s) /
                      static_cast<std::size_t>(map.count);
      const auto hi = n * (static_cast<std::size_t>(s) + 1) /
                      static_cast<std::size_t>(map.count);
      for (std::size_t i = lo; i < hi; ++i)
        map.shard_of[static_cast<std::size_t>(order[i])] =
            static_cast<std::int32_t>(s);
    }
  }
  // Stripe-local ids: one ascending-global-id pass, so within a stripe
  // local order matches global order and owned[s] is the exact inverse.
  map.local_of.assign(n, 0);
  map.owned.resize(static_cast<std::size_t>(map.count));
  for (auto& ids : map.owned)
    ids.reserve(n / static_cast<std::size_t>(map.count) + 1);
  for (std::size_t id = 0; id < n; ++id) {
    auto& ids = map.owned[static_cast<std::size_t>(map.shard_of[id])];
    map.local_of[id] = static_cast<std::int32_t>(ids.size());
    ids.push_back(static_cast<net::NodeId>(id));
  }
  return map;
}

std::vector<std::vector<net::NodeId>> ShardMap::halos(
    const std::vector<const net::ConnectivityGraph*>& graphs) const {
  const auto n = shard_of.size();
  std::vector<std::vector<net::NodeId>> halo(
      static_cast<std::size_t>(count));
  for (const net::ConnectivityGraph* g : graphs) {
    BCP_REQUIRE(g != nullptr &&
                g->node_count() == static_cast<int>(n));
    for (std::size_t o = 0; o < n; ++o) {
      const std::int32_t s = shard_of[o];
      for (const net::NodeId r : g->neighbors(static_cast<net::NodeId>(o)))
        if (shard_of[static_cast<std::size_t>(r)] != s)
          halo[static_cast<std::size_t>(s)].push_back(r);
    }
  }
  for (auto& h : halo) {
    std::sort(h.begin(), h.end());
    h.erase(std::unique(h.begin(), h.end()), h.end());
    h.shrink_to_fit();
  }
  return halo;
}

std::shared_ptr<const net::StripeDomain> ShardMap::domain(
    int shard, const std::vector<net::NodeId>& halo) const {
  BCP_REQUIRE(shard >= 0 && shard < count);
  auto d = std::make_shared<net::StripeDomain>();
  d->node_count = static_cast<int>(shard_of.size());
  d->shard = static_cast<std::int32_t>(shard);
  d->owned = static_cast<std::int32_t>(owned_count(shard));
  d->shard_of = shard_of.data();
  d->local_of = local_of.data();
  d->halo_slot.reserve(halo.size());
  std::int32_t slot = d->owned;
  for (const net::NodeId g : halo) {
    BCP_REQUIRE(g >= 0 && g < d->node_count);
    BCP_REQUIRE_MSG(shard_of[static_cast<std::size_t>(g)] != shard,
                    "halo id owned by the stripe itself");
    d->halo_slot.emplace(g, slot++);
  }
  return d;
}

ShardedMedium::ShardedMedium(
    sim::ShardedSimulator& engine,
    std::shared_ptr<const net::ConnectivityGraph> graph, const ShardMap& map,
    Channel::Params params, std::uint64_t seed)
    : engine_(engine), map_(map), count_(map.count) {
  BCP_REQUIRE(count_ == engine.shard_count());
  BCP_REQUIRE(graph != nullptr &&
              graph->node_count() == static_cast<int>(map.shard_of.size()));
  mail_.resize(static_cast<std::size_t>(count_) *
               static_cast<std::size_t>(count_));
  scratch_.resize(static_cast<std::size_t>(count_));
  channels_.resize(static_cast<std::size_t>(count_));
  for (int s = 0; s < count_; ++s) {
    auto channel = std::make_unique<Channel>(
        engine.shard(s), graph, params,
        util::substream(seed, static_cast<std::uint64_t>(s), 0x53484152u));
    Channel::ShardingSpec spec;
    spec.shard_of = map_.shard_of.data();
    spec.local_of = map_.local_of.data();
    spec.my_shard = s;
    spec.shard_count = count_;
    spec.owned_count = map_.owned_count(s);
    spec.emit = [this, s](std::int32_t dst, Channel::RemoteFrame&& rf) {
      // Double-buffered by the parity of the window being executed;
      // only shard s's pinned thread writes (src, dst) buffers.
      const auto parity =
          static_cast<std::size_t>(engine_.current_window() & 1);
      mail(s, dst).buf[parity].push_back(std::move(rf));
    };
    channel->enable_sharding(std::move(spec));
    channels_[static_cast<std::size_t>(s)] = std::move(channel);
  }
}

namespace {

// Releases a just-drained buffer's slack. Boundary traffic is bursty: one
// loaded window used to pin its high-water capacity in every mailbox and
// scratch vector for the rest of the run. Keeping at most 2x the size the
// buffer actually serviced (with a small floor) frees the spike while a
// steady load never reallocates.
template <typename T>
void shrink_slack(std::vector<T>& v, std::size_t used) {
  constexpr std::size_t kKeepFloor = 16;
  if (v.capacity() <= std::max(kKeepFloor, 2 * used)) return;
  std::vector<T> fresh;
  fresh.reserve(used);
  v.swap(fresh);
}

}  // namespace

void ShardedMedium::drain(int s, std::int64_t window) {
  auto& scratch = scratch_[static_cast<std::size_t>(s)];
  scratch.clear();
  for (int src = 0; src < count_; ++src) {
    if (src == s) continue;
    // Which buffer of (src → s) is quiescent while s runs window k?
    // Even writers fill buf[k&1] during the even phase of window k; an
    // odd reader draining in the same window's odd phase takes exactly
    // that buffer (the exact-timing path — the barrier between phases
    // makes it safe). Every other direction reads the previous window's
    // buffer: the writer is either running the same phase (and writing
    // buf[k&1]) or ran after the reader's parity last window — both
    // leave buf[(k-1)&1] untouched this phase. Each buffer is drained
    // exactly one window after it is filled, before its writer cycles
    // back to it.
    const std::int64_t w =
        (src % 2 == 0 && s % 2 == 1) ? window : window - 1;
    auto& buf = mail(src, s).buf[static_cast<std::size_t>(w & 1)];
    const std::size_t used = buf.size();
    for (auto& rf : buf) scratch.push_back(Tagged{std::move(rf), src});
    buf.clear();
    // Reader-side shrink is safe: this buffer's writer does not touch it
    // again until the next window's opposite phase.
    shrink_slack(buf, used);
  }
  if (scratch.empty()) {
    shrink_slack(scratch, 0);
    return;
  }
  // Canonical merge order: frames from one source shard are already in
  // emission (time) order; a stable sort by (start, source shard) makes
  // the injection sequence independent of mailbox iteration details.
  std::stable_sort(scratch.begin(), scratch.end(),
                   [](const Tagged& a, const Tagged& b) {
                     if (a.rf.start != b.rf.start)
                       return a.rf.start < b.rf.start;
                     return a.src_shard < b.src_shard;
                   });
  Channel& channel = shard(s);
  const std::size_t used = scratch.size();
  for (auto& t : scratch) channel.inject_remote(std::move(t.rf));
  scratch.clear();
  shrink_slack(scratch, used);
}

void ShardedMedium::reset_shard(int s) {
  channels_[static_cast<std::size_t>(s)].reset();
}

Channel::Stats ShardedMedium::total_stats() const {
  Channel::Stats total;
  for (const auto& c : channels_) {
    if (c == nullptr) continue;
    total.frames += c->stats().frames;
    total.rx_starts += c->stats().rx_starts;
    total.deliveries_clean += c->stats().deliveries_clean;
    total.deliveries_corrupt += c->stats().deliveries_corrupt;
  }
  return total;
}

std::int64_t ShardedMedium::total_live_arrivals() const {
  std::int64_t total = 0;
  for (const auto& c : channels_)
    if (c != nullptr) total += c->live_arrivals();
  return total;
}

std::int64_t ShardedMedium::boundary_exports() const {
  std::int64_t total = 0;
  for (const auto& c : channels_)
    if (c != nullptr) total += c->boundary_exports();
  return total;
}

}  // namespace bcp::phy

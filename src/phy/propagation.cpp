#include "phy/propagation.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace bcp::phy {

const char* to_string(PropagationKind kind) {
  switch (kind) {
    case PropagationKind::kAuto:        return "auto";
    case PropagationKind::kUnitDisc:    return "unit_disc";
    case PropagationKind::kLogDistance: return "log_distance";
    case PropagationKind::kDistancePer: return "distance_per";
  }
  return "?";
}

const std::vector<PerPoint>& kDefaultPerCurve() {
  static const std::vector<PerPoint> curve = {
      {0.0, 0.0}, {0.6, 0.0}, {0.85, 0.2}, {1.0, 0.7}};
  return curve;
}

namespace {

/// Independent composition of the model's per-link PER with the channel's
/// extra Bernoulli loss. With per == 0 this returns `extra` exactly, which
/// keeps UnitDisc byte-identical to the pre-seam channel.
double compose(double per, double extra) {
  return per + extra - per * extra;
}

class UnitDiscModel final : public PropagationModel {
 public:
  UnitDiscModel(double extra_loss, double rx_power_dbm)
      : loss_(extra_loss),
        rx_power_dbm_(rx_power_dbm),
        rx_power_mw_(util::dbm_to_mw(rx_power_dbm)) {}

  PropagationKind kind() const override { return PropagationKind::kUnitDisc; }
  double loss_prob(net::NodeId, std::size_t, net::NodeId) const override {
    return loss_;
  }
  bool uniform() const override { return true; }
  double rx_power_dbm(net::NodeId, std::size_t, net::NodeId) const override {
    return rx_power_dbm_;
  }
  double rx_power_mw(net::NodeId, std::size_t, net::NodeId) const override {
    return rx_power_mw_;
  }

 private:
  double loss_;
  double rx_power_dbm_;
  double rx_power_mw_;
};

/// One link's frozen draws: composed loss probability plus the received
/// power the SINR/capture mode reads (the linear mW twin is derived once
/// at build so the Channel's interference sums never call pow()).
struct LinkBudget {
  double loss = 0.0;
  double rx_power_dbm = 0.0;
  double rx_power_mw = 0.0;
};

/// Shared implementation of the two per-link-table models: the table is
/// aligned with graph.neighbors(src), so the Channel's hearer loop reads
/// its link's loss probability (and rx power) by index.
class PerLinkModel final : public PropagationModel {
 public:
  template <typename BudgetFn>  // {per, rx_power_dbm} = fn(src, dst, distance)
  PerLinkModel(PropagationKind kind, const net::ConnectivityGraph& graph,
               double extra_loss, BudgetFn&& budget_of) : kind_(kind) {
    const int n = graph.node_count();
    links_.resize(static_cast<std::size_t>(n));
    for (net::NodeId src = 0; src < n; ++src) {
      const auto& nbrs = graph.neighbors(src);
      auto& row = links_[static_cast<std::size_t>(src)];
      row.reserve(nbrs.size());
      for (const net::NodeId dst : nbrs) {
        const double d =
            net::distance(graph.position(src), graph.position(dst));
        LinkBudget link = budget_of(src, dst, d);
        link.loss = compose(std::clamp(link.loss, 0.0, 1.0), extra_loss);
        link.rx_power_mw = util::dbm_to_mw(link.rx_power_dbm);
        row.push_back(link);
      }
    }
  }

  PropagationKind kind() const override { return kind_; }
  double loss_prob(net::NodeId src, std::size_t neighbor_index,
                   net::NodeId dst) const override {
    (void)dst;
    const auto& row = links_[static_cast<std::size_t>(src)];
    BCP_REQUIRE(neighbor_index < row.size());
    return row[neighbor_index].loss;
  }
  double rx_power_dbm(net::NodeId src, std::size_t neighbor_index,
                      net::NodeId dst) const override {
    (void)dst;
    const auto& row = links_[static_cast<std::size_t>(src)];
    BCP_REQUIRE(neighbor_index < row.size());
    return row[neighbor_index].rx_power_dbm;
  }
  double rx_power_mw(net::NodeId src, std::size_t neighbor_index,
                     net::NodeId dst) const override {
    (void)dst;
    const auto& row = links_[static_cast<std::size_t>(src)];
    BCP_REQUIRE(neighbor_index < row.size());
    return row[neighbor_index].rx_power_mw;
  }

 private:
  PropagationKind kind_;
  std::vector<std::vector<LinkBudget>> links_;
};

/// One standard-normal draw from a generator seeded per link. Box–Muller;
/// only the first variate is used, so a link's shadow depends on nothing
/// but (seed, endpoint pair).
double link_shadow_db(std::uint64_t seed, net::NodeId a, net::NodeId b,
                      double sigma_db) {
  if (sigma_db <= 0.0) return 0.0;
  const auto lo = static_cast<std::uint64_t>(std::min(a, b));
  const auto hi = static_cast<std::uint64_t>(std::max(a, b));
  util::Xoshiro256 rng(util::substream(seed, (hi << 32) | lo,
                                       /*salt=*/0x53484144u));  // "SHAD"
  // u1 in (0, 1]: flip the [0,1) draw so log(u1) is finite.
  const double u1 = 1.0 - rng.uniform();
  const double u2 = rng.uniform();
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return sigma_db * std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

double interpolate_per(const std::vector<PerPoint>& curve, double fraction) {
  if (fraction <= curve.front().distance_fraction) return curve.front().per;
  if (fraction >= curve.back().distance_fraction) return curve.back().per;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    if (fraction > curve[i].distance_fraction) continue;
    const PerPoint& a = curve[i - 1];
    const PerPoint& b = curve[i];
    const double span = b.distance_fraction - a.distance_fraction;
    if (span <= 0.0) return b.per;
    const double t = (fraction - a.distance_fraction) / span;
    return a.per + t * (b.per - a.per);
  }
  return curve.back().per;
}

}  // namespace

std::unique_ptr<PropagationModel> make_propagation_model(
    const PropagationSpec& spec, const net::ConnectivityGraph& graph,
    double extra_loss, std::uint64_t seed) {
  BCP_REQUIRE(extra_loss >= 0.0 && extra_loss <= 1.0);
  BCP_REQUIRE(std::isfinite(spec.fixed_rx_power_dbm));
  BCP_REQUIRE(std::isfinite(spec.edge_rx_power_dbm));
  switch (spec.resolved()) {
    case PropagationKind::kAuto:  // unreachable; resolved() never returns it
    case PropagationKind::kUnitDisc:
      return std::make_unique<UnitDiscModel>(extra_loss,
                                             spec.fixed_rx_power_dbm);

    case PropagationKind::kLogDistance: {
      BCP_REQUIRE(spec.path_loss_exponent > 0.0);
      BCP_REQUIRE(spec.shadowing_sigma_db >= 0.0);
      BCP_REQUIRE(spec.per_transition_db > 0.0);
      const double range = graph.range();
      BCP_REQUIRE(range > 0.0);
      return std::make_unique<PerLinkModel>(
          PropagationKind::kLogDistance, graph, extra_loss,
          [&spec, range, seed](net::NodeId a, net::NodeId b, double d) {
            // Collocated nodes have effectively infinite margin; clamp the
            // distance away from zero so log10 stays finite.
            const double dist = std::max(d, 1e-3);
            // One shadowing draw per link feeds BOTH the PER margin and
            // the capture-mode rx power — a deep shadow that makes a link
            // lossy also makes it weak in a collision.
            const double gain_db =
                10.0 * spec.path_loss_exponent * std::log10(range / dist) +
                link_shadow_db(seed, a, b, spec.shadowing_sigma_db);
            const double margin = spec.fade_margin_db + gain_db;
            return LinkBudget{
                1.0 / (1.0 + std::exp(margin / spec.per_transition_db)),
                spec.edge_rx_power_dbm + gain_db};
          });
    }

    case PropagationKind::kDistancePer: {
      const std::vector<PerPoint>& curve =
          spec.per_curve.empty() ? kDefaultPerCurve() : spec.per_curve;
      BCP_REQUIRE(!curve.empty());
      for (std::size_t i = 0; i < curve.size(); ++i) {
        BCP_REQUIRE(curve[i].per >= 0.0 && curve[i].per <= 1.0);
        BCP_REQUIRE(i == 0 || curve[i].distance_fraction >=
                                  curve[i - 1].distance_fraction);
      }
      const double range = graph.range();
      BCP_REQUIRE(range > 0.0);
      return std::make_unique<PerLinkModel>(
          PropagationKind::kDistancePer, graph, extra_loss,
          [&curve, range, &spec](net::NodeId, net::NodeId, double d) {
            // The curve is a PER story, not a power story: capture mode
            // sees the same fixed on/off power as the unit disc.
            return LinkBudget{interpolate_per(curve, d / range),
                              spec.fixed_rx_power_dbm};
          });
    }
  }
  BCP_ENSURE_MSG(false, "bad propagation kind");
}

}  // namespace bcp::phy

// Environmental monitoring: the paper's motivating deployment (§1) — slow
// periodic measurements where "a collection delay of even several days is
// not detrimental, especially if it increases system lifetime".
//
//   $ ./environmental_monitoring [--senders N] [--days D] [--burst P]
//
// Simulates a 36-node field over the paper's grid (§4.1 multi-hop setup:
// Cabletron one hop to the sink), compares the pure sensor network against
// the BCP dual-radio network, and converts the measured energy into a
// battery-lifetime estimate (2xAA ≈ 20 kJ per node).
#include <cstdio>

#include "app/scenario.hpp"
#include "util/options.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace bcp;
  util::Options opt("environmental_monitoring",
                    "sensor-vs-dual lifetime comparison for slow sensing");
  opt.add_int("senders", 12, "reporting nodes")
      .add_int("burst", 500, "BCP burst threshold in 32 B packets")
      .add_double("rate", 200.0, "per-sender data rate (bit/s)")
      .add_double("hours", 2.0, "simulated field time (hours)")
      .add_int("seed", 1, "RNG seed");
  if (!opt.parse(argc, argv)) return 1;
  const int senders = static_cast<int>(opt.get_int("senders"));
  const int burst = static_cast<int>(opt.get_int("burst"));
  const double duration = opt.get_double("hours") * 3600.0;

  const auto configure = [&](app::EvalModel model) {
    auto cfg = app::ScenarioConfig::multi_hop(model, senders, burst);
    cfg.rate_bps = opt.get_double("rate");
    cfg.duration = duration;
    cfg.seed = static_cast<std::uint64_t>(opt.get_int("seed"));
    return cfg;
  };

  std::printf("Simulating %.1f h of %d nodes reporting %.1f bit/s each...\n\n",
              duration / 3600.0, senders, opt.get_double("rate"));
  const auto sensor = app::run_scenario(configure(app::EvalModel::kSensor));
  const auto dual = app::run_scenario(configure(app::EvalModel::kDualRadio));

  const double n_nodes = 36.0;
  const double battery_joules = 20e3;  // 2x AA alkaline, usable energy
  // Radio energy per node-hour under each model's charging rules.
  const double hours = duration / 3600.0;
  const double sensor_per_node_hour =
      sensor.sensor_energy.ideal() / n_nodes / hours;
  const double dual_per_node_hour =
      (dual.sensor_energy.ideal() + dual.wifi_energy.full()) / n_nodes /
      hours;

  std::printf("                      Sensor-only      Dual-radio (BCP-%d)\n",
              burst);
  std::printf("goodput               %-16.3f %.3f\n", sensor.goodput,
              dual.goodput);
  std::printf("mean delay (s)        %-16.1f %.1f\n", sensor.mean_delay,
              dual.mean_delay);
  std::printf("energy (J/Kbit)       %-16.4f %.4f\n",
              sensor.normalized_energy, dual.normalized_energy);
  std::printf("radio J/node/hour     %-16.3f %.3f\n", sensor_per_node_hour,
              dual_per_node_hour);
  std::printf("battery life (days)*  %-16.0f %.0f\n",
              battery_joules / sensor_per_node_hour / 24.0,
              battery_joules / dual_per_node_hour / 24.0);
  std::printf(
      "\n* radio budget only, 20 kJ battery; the paper's premise: weeks of\n"
      "  extra lifetime are worth minutes-to-hours of reporting delay.\n");
  return 0;
}

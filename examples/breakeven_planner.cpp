// Break-even planner: a deployment-sizing CLI over the §2 analysis.
//
//   $ ./breakeven_planner --low Micaz --high Lucent-11Mbps --idle 0.05
//   $ ./breakeven_planner --low Mica --high Cabletron --hops 5
//
// Answers the questions §3 says a BCP deployment must answer: what is s*
// for my radios, what burst threshold should I configure (α·s*, or the
// Fig. 4 knee), and what do I save at my expected transfer sizes?
#include <cstdio>
#include <string>

#include "core/bcp_config.hpp"
#include "energy/breakeven.hpp"
#include "energy/radio_model.hpp"
#include "stats/table.hpp"
#include "util/options.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace bcp;
  util::Options opt("breakeven_planner", "size a dual-radio deployment");
  opt.add_string("low", "Micaz",
                 "low-power radio (Mica, Mica2, Micaz)")
      .add_string("high", "Lucent-11Mbps",
                  "high-power radio (Cabletron, Lucent-2Mbps, Lucent-11Mbps)")
      .add_double("idle", 0.0, "per-burst idle wait of the 802.11 radio (s)")
      .add_int("hops", 1, "sensor hops one high-power hop replaces")
      .add_double("alpha", 10.0, "burst threshold multiplier over s*");
  if (!opt.parse(argc, argv)) return 1;

  const auto low = energy::find_radio(opt.get_string("low"));
  const auto high = energy::find_radio(opt.get_string("high"));
  if (!low || !high) {
    std::fprintf(stderr, "unknown radio name; catalog:\n");
    for (const auto& r : energy::radio_catalog())
      std::fprintf(stderr, "  %s\n", r.name.c_str());
    return 1;
  }
  const int hops = static_cast<int>(opt.get_int("hops"));

  auto cfg = energy::DualRadioAnalysis::standard(*low, *high).config();
  cfg.idle_time = opt.get_double("idle");
  const energy::DualRadioAnalysis analysis(cfg);

  std::printf("pair: %s (low) + %s (high), idle %.3f s, forward progress "
              "%d hop(s)\n\n",
              low->name.c_str(), high->name.c_str(), cfg.idle_time, hops);

  const auto s_star = analysis.break_even_bits_multihop(hops);
  if (!s_star) {
    std::printf(
        "No break-even point: %s never beats %s at %d hop(s).\n"
        "Per payload bit: low %.3f uJ x %d hops vs high %.3f uJ.\n",
        high->name.c_str(), low->name.c_str(), hops,
        analysis.per_bit_low() * 1e6, hops, analysis.per_bit_high() * 1e6);
    std::printf("Try more forward progress (--hops) — see Figure 3.\n");
    return 0;
  }

  std::printf("break-even s*      : %.0f bytes (%.3f KB)\n",
              util::to_bytes(*s_star), util::to_kilobytes(*s_star));
  const auto threshold = static_cast<util::Bits>(
      opt.get_double("alpha") * static_cast<double>(*s_star));
  std::printf("burst threshold    : %.0f bytes (alpha = %.1f)\n",
              util::to_bytes(threshold), opt.get_double("alpha"));
  std::printf("fig. 4 rule of thumb: ~10 high-radio packets = %.0f bytes\n\n",
              util::to_bytes(10 * cfg.high_link.payload_bits));

  stats::TextTable t;
  t.add_row({"transfer", "low-radio (mJ)", "dual-radio (mJ)", "saving"});
  for (const auto kb : {1, 2, 4, 8, 16, 32, 64}) {
    const auto s = util::kilobytes(kb);
    const double el = analysis.energy_low_multihop(s, hops);
    const double eh = analysis.energy_high_multihop(s, hops);
    t.add_row({std::to_string(kb) + "KB",
               stats::TextTable::num(el * 1e3, 4),
               stats::TextTable::num(eh * 1e3, 4),
               stats::TextTable::num(100.0 * (1.0 - eh / el), 3) + "%"});
  }
  stats::print_titled("projected per-burst energy", t);
  return 0;
}

// Quickstart: size a dual-radio system analytically, then move real bulk
// data with BCP on the prototype harness.
//
//   $ ./quickstart
//
// Walks through the library's three layers:
//   1. energy::DualRadioAnalysis — where is the break-even point s* for my
//      radio pair? (Eq. 3 of the paper)
//   2. core::BcpConfig::from_analysis — turn α·s* into protocol settings.
//   3. emul::run_prototype — ship 500 sensor readings through BCP over an
//      emulated 802.11 link and compare against sending each reading
//      immediately over the low-power radio.
#include <cstdio>

#include "core/bcp_config.hpp"
#include "emul/prototype.hpp"
#include "energy/breakeven.hpp"
#include "energy/radio_model.hpp"
#include "util/units.hpp"

int main() {
  using namespace bcp;

  // 1. Pick the radio pair: a CC2420-class sensor radio (Micaz entry of
  //    Table 1) plus a Lucent 11 Mb/s 802.11 card.
  const auto& low = energy::micaz();
  const auto& high = energy::lucent_11mbps();
  const auto analysis = energy::DualRadioAnalysis::standard(low, high);

  const auto s_star = analysis.break_even_bits();
  if (!s_star) {
    std::printf("%s + %s: the high-power radio never saves energy.\n",
                low.name.c_str(), high.name.c_str());
    return 1;
  }
  std::printf("Radio pair     : %s + %s\n", low.name.c_str(),
              high.name.c_str());
  std::printf("Break-even s*  : %.0f bytes\n", util::to_bytes(*s_star));
  std::printf("Savings at 4KB : %.0f%%\n",
              100.0 * analysis.savings_fraction(util::kilobytes(4)));

  // 2. Configure BCP to buffer 8x the break-even point before waking the
  //    802.11 radio.
  const core::BcpConfig bcp = core::BcpConfig::from_analysis(analysis, 8.0);
  std::printf("BCP threshold  : %.0f bytes (alpha = 8)\n\n",
              util::to_bytes(bcp.burst_threshold_bits));

  // 3. Run the §4.2-style prototype: one sender, one receiver, 500
  //    32-byte readings, and compare per-packet energy.
  emul::PrototypeConfig proto;
  proto.sensor_radio = low;
  proto.wifi_radio = high;
  proto.threshold_bits = bcp.burst_threshold_bits;
  const auto result = emul::run_prototype(proto);

  std::printf("Prototype run  : %lld/%lld readings delivered, %lld bulk "
              "frames, %lld radio wake-ups\n",
              static_cast<long long>(result.delivered),
              static_cast<long long>(result.generated),
              static_cast<long long>(result.bulk_frames),
              static_cast<long long>(result.wifi_wakeups));
  std::printf("BCP (dual)     : %.0f uJ per reading, %.1f s mean delay\n",
              result.dual_energy_per_packet * 1e6,
              result.mean_delay_per_packet);
  std::printf("Sensor radio   : %.0f uJ per reading, immediate\n",
              result.sensor_energy_per_packet * 1e6);
  std::printf("Saving         : %.0f%%\n",
              100.0 * (1.0 - result.dual_energy_per_packet /
                                 result.sensor_energy_per_packet));
  return 0;
}

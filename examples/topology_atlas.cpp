// Tour of the topology subsystem: builds every placement generator,
// prints its connectivity picture (components, degree, convergecast
// depth) under the sensor radio's 40 m disc, and runs one short sensor
// scenario on a connected random placement to show generated topologies
// plug straight into the §4.1 harness.
//
//   ./examples/topology_atlas [--nodes N] [--area M] [--seed S]
#include <cstdio>
#include <vector>

#include "app/scenario.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "stats/table.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace bcp;
  util::Options opt("topology_atlas",
                    "placement generators and their connectivity");
  opt.add_int("nodes", 36, "node count per generated placement")
      .add_double("area", 200.0, "square side / corridor length (m)")
      .add_int("seed", 1, "placement seed");
  if (!opt.parse(argc, argv)) return 1;
  const int nodes = static_cast<int>(opt.get_int("nodes"));
  const double area = opt.get_double("area");
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed"));
  const double range = energy::mica().range;

  std::vector<net::TopologySpec> specs;
  for (const auto kind :
       {net::TopologyKind::kGrid, net::TopologyKind::kUniformRandom,
        net::TopologyKind::kGaussianClusters,
        net::TopologyKind::kLineCorridor, net::TopologyKind::kRing}) {
    net::TopologySpec spec;
    spec.kind = kind;
    spec.nodes = nodes;
    spec.area = area;
    spec.seed = seed;
    specs.push_back(spec);
  }

  stats::TextTable table;
  table.add_row({"topology", "nodes", "components", "stranded",
                 "mean_degree", "mean_depth"});
  for (const auto& spec : specs) {
    const net::Topology topo = spec.build();
    const net::ConnectivityGraph graph(topo.positions, range);
    const std::vector<int> labels = net::connected_components(graph);
    int components = 0;
    for (const int l : labels) components = std::max(components, l + 1);
    const auto stranded = net::unreachable_from(graph, topo.sink);
    double degree = 0;
    for (net::NodeId id = 0; id < graph.node_count(); ++id)
      degree += static_cast<double>(graph.neighbors(id).size());
    const net::ConvergecastRouting routes(graph, topo.sink);
    table.add_row({topo.name, std::to_string(topo.node_count()),
                   std::to_string(components),
                   std::to_string(stranded.size()),
                   stats::TextTable::num(degree / topo.node_count(), 2),
                   stranded.size() + 1 ==
                           static_cast<std::size_t>(topo.node_count())
                       ? std::string("-")
                       : stats::TextTable::num(routes.mean_depth(), 2)});
  }
  stats::print_titled(
      "Placement generators under the 40 m sensor disc", table);

  // A generated placement drops into the scenario harness unchanged —
  // just swap the TopologySpec (the seed auto-advances to a connected
  // placement first).
  app::ScenarioConfig cfg =
      app::ScenarioConfig::multi_hop(app::EvalModel::kSensor, 3, 1);
  cfg.topology.kind = net::TopologyKind::kUniformRandom;
  cfg.topology.nodes = nodes;
  cfg.topology.area = area;
  cfg.topology.seed = seed;
  cfg.topology = net::first_connected(cfg.topology, range);
  cfg.rate_bps = 200.0;
  cfg.duration = 300.0;
  const app::RunMetrics m = app::run_scenario(cfg);
  std::printf(
      "\nSensor scenario on rand-%d (placement seed %llu): "
      "%lld/%lld delivered, goodput %.3f, %.3f J/Kbit\n",
      nodes, static_cast<unsigned long long>(cfg.topology.seed),
      static_cast<long long>(m.delivered),
      static_cast<long long>(m.generated), m.goodput, m.normalized_energy);
  return 0;
}

// EnviroMic-style acoustic monitoring (§1): "Recent applications, such as
// EnviroMic, where audio is being transmitted through the network,
// accumulate data much faster making performance almost real-time despite
// data buffering."
//
//   $ ./enviromic_audio [--nodes-talking N] [--minutes M]
//
// Composes the library's node classes directly (the scenario harness only
// speaks CBR): DualRadioNode + BurstyWorkload on the paper's grid, with
// exponential talkspurts at 8 kbit/s. Reports how quickly audio drains
// through BCP and what it costs.
#include <cstdio>
#include <memory>
#include <vector>

#include "app/nodes.hpp"
#include "app/workload.hpp"
#include "energy/radio_model.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "phy/channel.hpp"
#include "sim/simulator.hpp"
#include "stats/summary.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace bcp;
  util::Options opt("enviromic_audio",
                    "bursty audio collection over BCP on the paper's grid");
  opt.add_int("nodes-talking", 6, "nodes with microphones")
      .add_double("minutes", 20.0, "simulated minutes")
      .add_int("burst", 500, "BCP burst threshold in 32 B packets")
      .add_int("seed", 1, "RNG seed");
  if (!opt.parse(argc, argv)) return 1;
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed"));
  const double duration = opt.get_double("minutes") * 60.0;

  sim::Simulator simulator;
  const auto topo = net::GridTopology::paper_grid();

  // Multi-hop setup: sensor radio forms the 5-hop grid, Cabletron covers
  // the field in one hop.
  phy::Channel low_ch(simulator, topo.positions(), 40.0, {0.0},
                      util::substream(seed, 1, 0x4C4348u));
  phy::Channel high_ch(simulator, topo.positions(), 300.0, {0.0},
                       util::substream(seed, 2, 0x484348u));
  const net::RoutingTable low_routes{
      net::ConnectivityGraph(topo.positions(), 40.0)};
  const net::RoutingTable high_routes{
      net::ConnectivityGraph(topo.positions(), 300.0)};

  core::BcpConfig bcp;
  bcp.set_burst_packets(static_cast<int>(opt.get_int("burst")),
                        util::bytes(32));

  std::int64_t delivered = 0;
  std::int64_t dropped = 0;
  std::vector<double> delays;
  app::DeliverySink sink;
  sink.delivered = [&](const net::DataPacket& p) {
    ++delivered;
    delays.push_back(simulator.now() - p.created_at);
  };
  sink.dropped = [&](const net::DataPacket&, const char*) { ++dropped; };

  std::vector<std::unique_ptr<app::DualRadioNode>> nodes;
  for (net::NodeId id = 0; id < topo.node_count(); ++id)
    nodes.push_back(std::make_unique<app::DualRadioNode>(
        simulator, low_ch, high_ch, low_routes, high_routes, id,
        energy::mica(), energy::cabletron_2mbps(), bcp,
        phy::OverhearMode::kFull, seed, &sink));

  // Microphones on the nodes farthest from the sink talk in exponential
  // on/off bursts at 8 kbit/s.
  app::BurstyWorkload::Params audio;
  audio.packet_bits = util::bytes(32);
  audio.on_rate_bps = 8000;
  audio.mean_on = 3.0;
  audio.mean_off = 20.0;
  std::vector<std::unique_ptr<app::BurstyWorkload>> mics;
  std::int64_t generated = 0;
  const int talking = static_cast<int>(opt.get_int("nodes-talking"));
  for (int i = 0; i < talking; ++i) {
    const net::NodeId mic = static_cast<net::NodeId>(35 - i);
    mics.push_back(std::make_unique<app::BurstyWorkload>(
        simulator, mic, topo.sink(), audio,
        util::substream(seed, static_cast<std::uint64_t>(mic), 0x4D4943u),
        [&nodes, mic, &generated](net::DataPacket p) {
          ++generated;
          nodes[static_cast<std::size_t>(mic)]->send(p);
        }));
    mics.back()->start();
  }

  simulator.run_until(duration);

  double wifi_energy = 0, sensor_energy = 0;
  for (const auto& n : nodes) {
    n->sensor_radio().meter().finalize(duration);
    n->wifi_radio().meter().finalize(duration);
    using energy::EnergyCategory;
    sensor_energy += n->sensor_radio().meter().energy(EnergyCategory::kTx) +
                     n->sensor_radio().meter().energy(EnergyCategory::kRx);
    wifi_energy += n->wifi_radio().meter().charged_total(
        energy::ChargingPolicy::full());
  }

  std::printf("audio packets: generated %lld, delivered %lld, dropped %lld "
              "(%.1f%% goodput)\n",
              static_cast<long long>(generated),
              static_cast<long long>(delivered),
              static_cast<long long>(dropped),
              generated ? 100.0 * static_cast<double>(delivered) /
                              static_cast<double>(generated)
                        : 0.0);
  if (!delays.empty()) {
    std::printf("delay: median %.1f s, p95 %.1f s, max %.1f s\n",
                stats::percentile(delays, 50), stats::percentile(delays, 95),
                stats::percentile(delays, 100));
  }
  const double kbits =
      static_cast<double>(delivered) * 32 * 8 / 1000.0;
  std::printf("energy: %.2f J total (%.2f J wifi, %.2f J sensor ctrl) = "
              "%.4f J/Kbit\n",
              wifi_energy + sensor_energy, wifi_energy, sensor_energy,
              kbits > 0 ? (wifi_energy + sensor_energy) / kbits : 0.0);
  std::printf(
      "\nAt 8 kbit/s talkspurts a 500-packet burst fills in ~16 s — BCP is\n"
      "near-real-time for audio, exactly the paper's EnviroMic argument.\n");
  return 0;
}

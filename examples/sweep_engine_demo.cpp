// Sweep-engine walkthrough: declare a parameter grid, fan it out across
// every core, and export aggregate statistics.
//
//   $ ./sweep_engine_demo [--runs N] [--jobs N]
//
// Sweeps the multi-hop dual-radio scenario over (senders x burst) — a
// miniature of Figure 9 — using the three engine pieces:
//   1. app::ScenarioRegistry — name the workload variant ("mh/dual");
//   2. app::SweepGrid + app::SweepRunner — the cartesian grid, one
//      Simulator per worker, deterministic seeds;
//   3. stats::ResultSink — per-point mean±95% CI and BENCH_*.json.
#include <cstdio>

#include "app/scenario_registry.hpp"
#include "app/sweep.hpp"
#include "stats/result_sink.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace bcp;

  util::Options opt("sweep_engine_demo",
                    "parallel scenario sweep in ~30 lines");
  opt.add_int("runs", 2, "replications per grid point")
      .add_double("duration", 1000.0, "simulated seconds per run")
      .add_int("jobs", 0, "worker threads (0 = all hardware cores)");
  if (!opt.parse(argc, argv)) return 1;

  // 1. The grid: 3 sender counts x 3 burst sizes = 9 points. Axis names
  //    are the parameters the registry's builders read.
  app::SweepGrid grid;
  grid.axis_ints("senders", {5, 15, 25})
      .axis_ints("burst", {100, 500, 1000})
      .constant("duration", opt.get_double("duration"));

  // 2. The runner: replications x points jobs, seeds base, base+1, ...
  app::SweepOptions sweep;
  sweep.replications = static_cast<int>(opt.get_int("runs"));
  sweep.threads = static_cast<int>(opt.get_int("jobs"));
  const app::SweepRunner runner(sweep);
  const auto fn = app::scenario_sweep_fn(app::ScenarioRegistry::builtin(),
                                         {"mh/dual"});

  // scenario_sweep_fn reads the axis "variant" to pick the registry
  // entry; with a single variant a constant axis pins it.
  app::SweepGrid full = grid;
  full.constant("variant", 0);

  stats::ResultSink sink = runner.run(full, fn);

  // 3. Export: aggregate table + machine-readable JSON.
  sink.to_table().print();
  sink.write_json("sweep_engine_demo", "BENCH_sweep_engine_demo.json");
  std::printf("\n%zu points x %d runs -> BENCH_sweep_engine_demo.json\n",
              sink.point_count(), sweep.replications);

  std::printf("\nRegistered scenario variants:\n");
  for (const auto& name : app::ScenarioRegistry::builtin().names())
    std::printf("  %-22s %s\n", name.c_str(),
                app::ScenarioRegistry::builtin().description(name).c_str());
  return 0;
}

// Figure 5 — single-hop (SH) case: goodput vs number of senders.
//
// Setup (§4.1.1): Lucent 11 Mbps with sensor-radio range (same hop count
// as the Mica-class sensor radio), senders at 0.2 Kbps, 36-node grid,
// bursts of 10/100/500/1000/2500 sensor packets.
//
// Paper claims: DualRadio-{10,100,500} sit near the pure-802.11 curve and
// clearly above Sensor; very large bursts degrade goodput (back-to-back
// multi-hop bursts); Sensor degrades as senders grow.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bcp;
  using namespace bcp::benchharness;
  SimOptions opt;
  if (!parse_sim_options(argc, argv, "bench_fig05_sh_goodput",
                         "Figure 5: SH goodput vs senders", &opt))
    return 1;
  auto columns = dual_columns(opt.bursts, Metric::kGoodput);
  columns.push_back(
      Column{"Sensor", app::EvalModel::kSensor, 0, Metric::kGoodput});
  columns.push_back(
      Column{"802.11", app::EvalModel::kWifi, 0, Metric::kGoodput});
  print_sender_sweep("fig05_sh_goodput",
                     "Figure 5 — SH: goodput vs number of senders",
                     /*multi_hop=*/false, opt, columns, /*rate_bps=*/0);
  return 0;
}

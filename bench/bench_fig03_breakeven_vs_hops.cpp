// Figure 3 — break-even size s* (KB) vs forward progress (1-6 sensor hops
// covered by one high-power hop; Eqs. 4-5).
//
// Paper claims: s* decreases with hops (0.15-0.75 KB at 5 hops for
// Mica-class pairs); the Micaz combinations become feasible at 3-4 hops.
#include <cstdio>
#include <string>

#include "energy/breakeven.hpp"
#include "energy/radio_model.hpp"
#include "stats/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace bcp;
  const std::pair<const energy::RadioEnergyModel*,
                  const energy::RadioEnergyModel*>
      combos[] = {
          {&energy::mica(), &energy::cabletron_2mbps()},
          {&energy::mica2(), &energy::cabletron_2mbps()},
          {&energy::micaz(), &energy::cabletron_2mbps()},
          {&energy::mica(), &energy::lucent_2mbps()},
          {&energy::mica2(), &energy::lucent_2mbps()},
          {&energy::micaz(), &energy::lucent_2mbps()},
      };

  stats::TextTable t;
  {
    std::vector<std::string> header{"hops"};
    for (const auto& [low, high] : combos)
      header.push_back(high->name + "-" + low->name);
    t.add_row(std::move(header));
  }
  for (int fp = 1; fp <= 6; ++fp) {
    std::vector<std::string> row{std::to_string(fp)};
    for (const auto& [low, high] : combos) {
      const auto a = energy::DualRadioAnalysis::standard(*low, *high);
      const auto s = a.break_even_bits_multihop(fp);
      row.push_back(s ? stats::TextTable::num(util::to_kilobytes(*s), 4)
                      : std::string("inf"));
    }
    t.add_row(std::move(row));
  }
  stats::print_titled(
      "Figure 3 — break-even data size (KB) vs forward progress (hops)", t);

  for (const auto* high :
       {&energy::cabletron_2mbps(), &energy::lucent_2mbps()}) {
    const auto a =
        energy::DualRadioAnalysis::standard(energy::micaz(), *high);
    int onset = 0;
    for (int fp = 1; fp <= 8 && onset == 0; ++fp)
      if (a.break_even_bits_multihop(fp)) onset = fp;
    std::printf("Check: %s-Micaz becomes feasible at %d hops (paper: 3-4)\n",
                high->name.c_str(), onset);
  }
  return 0;
}

// Figure 3 — break-even size s* (KB) vs forward progress (1-6 sensor hops
// covered by one high-power hop; Eqs. 4-5).
//
// Paper claims: s* decreases with hops (0.15-0.75 KB at 5 hops for
// Mica-class pairs); the Micaz combinations become feasible at 3-4 hops.
#include <cstdio>
#include <limits>
#include <string>

#include "common.hpp"
#include "energy/breakeven.hpp"
#include "energy/radio_model.hpp"
#include "util/units.hpp"

namespace {

using namespace bcp;

const std::pair<const energy::RadioEnergyModel*,
                const energy::RadioEnergyModel*>
    kCombos[] = {
        {&energy::mica(), &energy::cabletron_2mbps()},
        {&energy::mica2(), &energy::cabletron_2mbps()},
        {&energy::micaz(), &energy::cabletron_2mbps()},
        {&energy::mica(), &energy::lucent_2mbps()},
        {&energy::mica2(), &energy::lucent_2mbps()},
        {&energy::micaz(), &energy::lucent_2mbps()},
    };

}  // namespace

int main(int argc, char** argv) {
  using namespace bcp::benchharness;
  util::Options opt("bench_fig03_breakeven_vs_hops",
                    "Figure 3: s* (KB) vs forward progress (hops)");
  opt.add_int("jobs", 0, "sweep worker threads (0 = all hardware cores)");
  if (!opt.parse(argc, argv)) return 1;

  app::SweepGrid grid;
  grid.axis_ints("hops", {1, 2, 3, 4, 5, 6});
  const app::SweepFn fn = [](const app::SweepJob& job) {
    const int fp = job.point.get_int("hops");
    stats::ResultSink::Metrics metrics;
    for (const auto& [low, high] : kCombos) {
      const auto a = energy::DualRadioAnalysis::standard(*low, *high);
      const auto s = a.break_even_bits_multihop(fp);
      metrics.emplace_back(
          high->name + "-" + low->name + "_KB",
          s ? util::to_kilobytes(*s)
            : std::numeric_limits<double>::infinity());
    }
    return metrics;
  };

  app::SweepOptions sweep;
  sweep.threads = static_cast<int>(opt.get_int("jobs"));
  run_grid_bench(
      "fig03_breakeven_vs_hops",
      "Figure 3 — break-even data size (KB) vs forward progress (hops)",
      grid, fn, sweep);

  for (const auto* high :
       {&energy::cabletron_2mbps(), &energy::lucent_2mbps()}) {
    const auto a =
        energy::DualRadioAnalysis::standard(energy::micaz(), *high);
    int onset = 0;
    for (int fp = 1; fp <= 8 && onset == 0; ++fp)
      if (a.break_even_bits_multihop(fp)) onset = fp;
    std::printf("Check: %s-Micaz becomes feasible at %d hops (paper: 3-4)\n",
                high->name.c_str(), onset);
  }
  return 0;
}

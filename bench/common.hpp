// Shared plumbing for the figure-reproduction harnesses: CLI conventions,
// the (model, burst) -> run cache, and the two table shapes used by the
// §4.1 figures (metric-vs-senders and energy-vs-delay).
//
// Conventions shared by every bench binary:
//   --runs N       replications per point (default 2; paper used 20)
//   --duration S   simulated seconds (default 5000, as in the paper)
//   --full         paper-scale: 20 runs, sender counts 5,10,...,35
//   --seed S       base seed
#pragma once

#include <string>
#include <vector>

#include "app/scenario.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "util/options.hpp"

namespace bcp::benchharness {

struct SimOptions {
  std::vector<int> senders{5, 15, 25, 35};
  std::vector<int> bursts{10, 100, 500, 1000, 2500};
  int runs = 2;
  double duration = 5000.0;
  std::uint64_t seed = 1;
};

/// Parses the standard bench flags; returns false if the process should
/// exit (help/parse error).
bool parse_sim_options(int argc, const char* const* argv, const char* name,
                       const char* summary, SimOptions* out);

enum class Metric {
  kGoodput,
  kNormalizedEnergy,
  kNormalizedEnergySensorIdeal,
  kNormalizedEnergySensorHeader,
  kDelay,
};

double metric_of(const app::RunMetrics& m, Metric metric);

/// One column of a metric-vs-senders figure.
struct Column {
  std::string label;
  app::EvalModel model;
  int burst;  ///< only meaningful for the dual-radio model
  Metric metric;
};

/// The DualRadio-10 ... DualRadio-2500 column block.
std::vector<Column> dual_columns(const std::vector<int>& bursts,
                                 Metric metric);

/// Builds the scenario for one cell. `multi_hop` picks the §4.1.1/§4.1.2
/// preset; `rate_bps` overrides the preset rate when > 0.
app::ScenarioConfig make_config(bool multi_hop, app::EvalModel model,
                                int senders, int burst,
                                const SimOptions& opt, double rate_bps);

/// Runs every (model, burst) needed by `columns` across opt.senders and
/// prints the figure table (rows = sender counts, cells = mean+-95% CI).
void print_sender_sweep(const std::string& title, bool multi_hop,
                        const SimOptions& opt,
                        const std::vector<Column>& columns, double rate_bps);

/// Figs. 7/10: for each (senders, burst) cell of the dual-radio model,
/// prints mean delay vs normalized energy (one row per cell, grouped by
/// sender count — each group is one line of the paper's figure).
void print_energy_delay(const std::string& title, bool multi_hop,
                        const SimOptions& opt, double rate_bps);

}  // namespace bcp::benchharness

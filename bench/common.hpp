// Shared plumbing for the figure-reproduction harnesses, built on the
// parallel sweep engine (app/sweep.hpp): CLI conventions, the declarative
// column specs for the two §4.1 figure shapes (metric-vs-senders and
// energy-vs-delay), and the table + BENCH_*.json export every driver
// shares.
//
// Conventions shared by every simulation bench binary:
//   --runs N       replications per point (default 2; paper used 20)
//   --duration S   simulated seconds (default 5000, as in the paper)
//   --full         paper-scale: 20 runs, sender counts 5,10,...,35
//   --seed S       base seed
//   --jobs N       sweep worker threads (default 0 = all hardware cores)
//
// Every driver writes its aggregate results to BENCH_<name>.json in the
// working directory (see stats/result_sink.hpp for the format).
#pragma once

#include <string>
#include <vector>

#include "app/scenario.hpp"
#include "app/scenario_registry.hpp"
#include "app/sweep.hpp"
#include "stats/result_sink.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "util/options.hpp"

namespace bcp::benchharness {

struct SimOptions {
  std::vector<int> senders{5, 15, 25, 35};
  std::vector<int> bursts{10, 100, 500, 1000, 2500};
  int runs = 2;
  double duration = 5000.0;
  std::uint64_t seed = 1;
  int jobs = 0;  ///< sweep threads; 0 = hardware concurrency
};

/// Parses the standard bench flags; returns false if the process should
/// exit (help/parse error).
bool parse_sim_options(int argc, const char* const* argv, const char* name,
                       const char* summary, SimOptions* out);

app::SweepOptions sweep_options(const SimOptions& opt);

enum class Metric {
  kGoodput,
  kNormalizedEnergy,
  kNormalizedEnergySensorIdeal,
  kNormalizedEnergySensorHeader,
  kDelay,
};

/// The metric's name in standard_metrics / BENCH_*.json.
const char* metric_name(Metric metric);

/// One column of a metric-vs-senders figure.
struct Column {
  std::string label;
  app::EvalModel model;
  int burst;  ///< only meaningful for the dual-radio model
  Metric metric;
};

/// The DualRadio-10 ... DualRadio-2500 column block.
std::vector<Column> dual_columns(const std::vector<int>& bursts,
                                 Metric metric);

/// Runs the columns' distinct (model, burst) cells x opt.senders as ONE
/// sweep grid, prints the figure table (rows = sender counts, cells =
/// mean±95% CI) and writes BENCH_<bench_name>.json.
void print_sender_sweep(const std::string& bench_name,
                        const std::string& title, bool multi_hop,
                        const SimOptions& opt,
                        const std::vector<Column>& columns, double rate_bps);

/// Figs. 7/10: sweeps the (senders x burst) grid of the dual-radio model
/// and prints mean delay vs normalized energy (one row per cell, grouped
/// by sender count); writes BENCH_<bench_name>.json.
void print_energy_delay(const std::string& bench_name,
                        const std::string& title, bool multi_hop,
                        const SimOptions& opt, double rate_bps);

/// Generic driver for the analytic/prototype figures: runs `grid` through
/// a SweepRunner, prints the aggregate table under `title`, and writes
/// BENCH_<bench_name>.json. Returns the sink for follow-up checks.
stats::ResultSink run_grid_bench(const std::string& bench_name,
                                 const std::string& title,
                                 const app::SweepGrid& grid,
                                 const app::SweepFn& fn,
                                 const app::SweepOptions& options);

/// Writes sink JSON to BENCH_<bench_name>.json (cwd) and prints the path.
void export_json(const std::string& bench_name,
                 const stats::ResultSink& sink);

/// Stamps the run-level scenario metadata every simulation bench exports:
/// topology (generator token), node_count, and the sweep's base seed.
void set_scenario_meta(stats::ResultSink& sink,
                       const app::ScenarioConfig& config,
                       std::uint64_t base_seed);

}  // namespace bcp::benchharness

// Figure 10 — multi-hop (MH) case: normalized energy vs average delay.
//
// §4.1.2 evaluates 0.2 and 2 Kbps; the figure's key is labelled 0.2 Kbps,
// the surrounding text presents 2 Kbps — we print both sweeps.
//
// Paper claims: an L-shaped frontier; beyond bursts of ~500-1000 more
// delay buys no more energy; at 0.2 Kbps the burst-10 point saves nothing.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bcp;
  using namespace bcp::benchharness;
  SimOptions opt;
  if (!parse_sim_options(argc, argv, "bench_fig10_mh_energy_delay",
                         "Figure 10: MH energy vs delay", &opt))
    return 1;
  print_energy_delay(
      "fig10a_mh_energy_delay",
      "Figure 10a — MH: normalized energy (J/Kbit) vs average delay (s), "
      "0.2 Kbps senders",
      /*multi_hop=*/true, opt, /*rate_bps=*/200.0);
  print_energy_delay(
      "fig10b_mh_energy_delay",
      "Figure 10b — MH: normalized energy (J/Kbit) vs average delay (s), "
      "2 Kbps senders",
      /*multi_hop=*/true, opt, /*rate_bps=*/2000.0);
  return 0;
}

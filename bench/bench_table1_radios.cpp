// Table 1 — "Energy Characteristics (mW, mJ)" — plus derived per-bit
// costs and the pairwise break-even matrix the rest of the paper builds on.
#include <cstdio>
#include <limits>
#include <string>

#include "common.hpp"
#include "energy/breakeven.hpp"
#include "energy/radio_model.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace bcp;
  using namespace bcp::benchharness;
  util::Options opt("bench_table1_radios",
                    "Table 1: radio energy characteristics + break-evens");
  opt.add_int("jobs", 0, "sweep worker threads (0 = all hardware cores)");
  if (!opt.parse(argc, argv)) return 1;
  app::SweepOptions sweep;
  sweep.threads = static_cast<int>(opt.get_int("jobs"));

  std::printf(
      "Reproduction of Table 1 (ICDCS'08 'Improving Energy Conservation "
      "Using Bulk\nTransmission over High-Power Radios in Sensor "
      "Networks').\n\n");

  const auto& catalog = energy::radio_catalog();
  {
    app::SweepGrid grid;
    std::vector<int> radio_ids;
    for (std::size_t i = 0; i < catalog.size(); ++i)
      radio_ids.push_back(static_cast<int>(i));
    grid.axis_ints("radio", radio_ids);
    const app::SweepFn fn = [&catalog](const app::SweepJob& job) {
      const auto& r = catalog[static_cast<std::size_t>(
          job.point.get_int("radio"))];
      return stats::ResultSink::Metrics{
          {"rate_bps", r.rate},
          {"Ptx_mW", r.p_tx * 1e3},
          {"Prx_mW", r.p_rx * 1e3},
          {"Pidle_mW", r.p_idle * 1e3},
          {"Ewakeup_mJ", r.e_wakeup * 1e3},
          {"range_m", r.range},
          {"E_per_bit_uJ", (r.p_tx + r.p_rx) / r.rate * 1e6},
      };
    };
    const app::SweepRunner runner(sweep);
    stats::ResultSink sink = runner.run(grid, fn);
    for (std::size_t i = 0; i < catalog.size(); ++i)
      sink.set_label(i, catalog[i].name);
    stats::print_titled("Table 1 — radio energy characteristics",
                        sink.to_table());
    export_json("table1_radios", sink);
  }

  {
    const std::vector<const energy::RadioEnergyModel*> lows{
        &energy::mica(), &energy::mica2(), &energy::micaz()};
    const std::vector<const energy::RadioEnergyModel*> highs{
        &energy::cabletron_2mbps(), &energy::lucent_2mbps(),
        &energy::lucent_11mbps()};
    app::SweepGrid grid;
    grid.axis_ints("low", {0, 1, 2}).axis_ints("high", {0, 1, 2});
    const app::SweepFn fn = [&lows, &highs](const app::SweepJob& job) {
      const auto a = energy::DualRadioAnalysis::standard(
          *lows[static_cast<std::size_t>(job.point.get_int("low"))],
          *highs[static_cast<std::size_t>(job.point.get_int("high"))]);
      const auto s = a.break_even_bits();
      return stats::ResultSink::Metrics{
          {"s_star_KB", s ? util::to_kilobytes(*s)
                          : std::numeric_limits<double>::infinity()},
      };
    };
    const app::SweepRunner runner(sweep);
    stats::ResultSink sink = runner.run(grid, fn);
    for (std::size_t li = 0; li < lows.size(); ++li)
      for (std::size_t hi = 0; hi < highs.size(); ++hi)
        sink.set_label(grid.index_of({li, hi}),
                       highs[hi]->name + "-" + lows[li]->name);
    stats::print_titled(
        "Derived: single-hop break-even size s* per radio pair (idle = 0)",
        sink.to_table());
    export_json("table1_breakeven", sink);
  }

  std::printf(
      "Expected (paper): s* below 1 KB for feasible pairs; Cabletron and\n"
      "Lucent-2Mbps are infeasible with Micaz (worse energy-per-bit).\n");
  return 0;
}

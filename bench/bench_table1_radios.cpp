// Table 1 — "Energy Characteristics (mW, mJ)" — plus derived per-bit
// costs and the pairwise break-even matrix the rest of the paper builds on.
#include <cstdio>

#include "energy/breakeven.hpp"
#include "energy/radio_model.hpp"
#include "stats/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace bcp;
  std::printf(
      "Reproduction of Table 1 (ICDCS'08 'Improving Energy Conservation "
      "Using Bulk\nTransmission over High-Power Radios in Sensor "
      "Networks').\n\n");

  stats::TextTable t;
  t.add_row({"Radio", "Rate", "Ptx(mW)", "Prx(mW)", "Pi(mW)", "Ewakeup(mJ)",
             "Range(m)", "E/bit(uJ)"});
  for (const auto& r : energy::radio_catalog()) {
    const double per_bit_uj = (r.p_tx + r.p_rx) / r.rate * 1e6;
    t.add_row({r.name,
               r.rate >= 1e6 ? stats::TextTable::num(r.rate / 1e6) + "Mbps"
                             : stats::TextTable::num(r.rate / 1e3) + "Kbps",
               stats::TextTable::num(r.p_tx * 1e3),
               stats::TextTable::num(r.p_rx * 1e3),
               stats::TextTable::num(r.p_idle * 1e3),
               r.e_wakeup > 0 ? stats::TextTable::num(r.e_wakeup * 1e3)
                              : std::string("-"),
               stats::TextTable::num(r.range),
               stats::TextTable::num(per_bit_uj, 3)});
  }
  stats::print_titled("Table 1 — radio energy characteristics", t);

  stats::TextTable be;
  be.add_row({"low \\ high", "Cabletron", "Lucent-2Mbps", "Lucent-11Mbps"});
  for (const auto* low :
       {&energy::mica(), &energy::mica2(), &energy::micaz()}) {
    std::vector<std::string> row{low->name};
    for (const auto* high : {&energy::cabletron_2mbps(),
                             &energy::lucent_2mbps(),
                             &energy::lucent_11mbps()}) {
      const auto a = energy::DualRadioAnalysis::standard(*low, *high);
      const auto s = a.break_even_bits();
      row.push_back(s ? stats::TextTable::num(util::to_kilobytes(*s), 3) +
                            "KB"
                      : std::string("infeasible"));
    }
    be.add_row(std::move(row));
  }
  stats::print_titled(
      "Derived: single-hop break-even size s* per radio pair (idle = 0)",
      be);
  std::printf(
      "Expected (paper): s* below 1 KB for feasible pairs; Cabletron and\n"
      "Lucent-2Mbps are infeasible with Micaz (worse energy-per-bit).\n");
  return 0;
}

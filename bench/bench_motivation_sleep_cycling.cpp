// §1 motivation, quantified — "One solution is to sleep cycle the
// [high-power] radio... However, such sleep cycling cannot reduce the
// idling energy sufficiently for use in sensor networks."
//
// Runs the MH grid workload (10 senders, 0.2 Kbps) on:
//   * a pure 802.11 network sleep-cycled at duty 100%/10%/2% (idealized,
//     cost-free synchronization — a best case for sleep cycling), and
//   * the dual-radio network with BCP (burst 500),
// and prints delivery, delay, per-node power and the J/Kbit metric.
//
// Expected: even at 2% duty the sleep-cycled 802.11 radio burns orders of
// magnitude more than BCP (waking 36 radios every period costs idle +
// wake-up energy regardless of traffic), while BCP pays only per burst.
#include <cstdio>
#include <memory>
#include <vector>

#include "app/duty_cycle.hpp"
#include "app/scenario.hpp"
#include "app/workload.hpp"
#include "energy/radio_model.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "phy/channel.hpp"
#include "sim/simulator.hpp"
#include "stats/table.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"

namespace {

using namespace bcp;

struct Row {
  std::string label;
  double goodput;
  double delay;
  double j_per_kbit;
  double node_power_mw;
};

Row run_sleep_cycled(double duty, int senders, double duration,
                     std::uint64_t seed) {
  sim::Simulator simulator;
  const auto topo = net::GridTopology::paper_grid();
  phy::Channel channel(simulator, topo.positions(), 300.0, {0.0},
                       util::substream(seed, 2, 0x484348u));
  const net::RoutingTable routes{
      net::ConnectivityGraph(topo.positions(), 300.0)};

  std::int64_t delivered = 0, generated = 0;
  double delay_sum = 0;
  app::DeliverySink sink;
  sink.delivered = [&](const net::DataPacket& p) {
    ++delivered;
    delay_sum += simulator.now() - p.created_at;
  };
  sink.dropped = [](const net::DataPacket&, const char*) {};

  app::DutyCycledWifiNode::Schedule schedule;
  schedule.period = 1.0;
  schedule.duty = duty;
  std::vector<std::unique_ptr<app::DutyCycledWifiNode>> nodes;
  for (net::NodeId id = 0; id < topo.node_count(); ++id)
    nodes.push_back(std::make_unique<app::DutyCycledWifiNode>(
        simulator, channel, routes, id, topo.sink(),
        energy::cabletron_2mbps(), schedule, seed, &sink));

  std::vector<std::unique_ptr<app::CbrWorkload>> workloads;
  for (int i = 0; i < senders; ++i) {
    const net::NodeId s = static_cast<net::NodeId>(35 - i);
    workloads.push_back(std::make_unique<app::CbrWorkload>(
        simulator, s, topo.sink(), util::bytes(32), 200.0,
        util::substream(seed, static_cast<std::uint64_t>(s), 0x574Bu),
        [&nodes, s, &generated](net::DataPacket p) {
          ++generated;
          nodes[static_cast<std::size_t>(s)]->send(p);
        }));
    workloads.back()->start();
  }
  simulator.run_until(duration);

  double energy = 0;
  for (const auto& n : nodes) {
    n->radio().meter().finalize(duration);
    energy += n->radio().meter().charged_total(
        energy::ChargingPolicy::full());
  }
  Row row;
  char label[64];
  std::snprintf(label, sizeof label, "802.11 sleep-cycled %.0f%%",
                duty * 100);
  row.label = label;
  row.goodput = generated ? static_cast<double>(delivered) /
                                static_cast<double>(generated)
                          : 0;
  row.delay = delivered ? delay_sum / static_cast<double>(delivered) : 0;
  const double kbits = static_cast<double>(delivered) * 256 / 1000.0;
  row.j_per_kbit = kbits > 0 ? energy / kbits : 0;
  row.node_power_mw = energy / 36.0 / duration * 1e3;
  return row;
}

Row run_dual(int senders, double duration, std::uint64_t seed) {
  auto cfg = app::ScenarioConfig::multi_hop(app::EvalModel::kDualRadio,
                                            senders, 500);
  cfg.rate_bps = 200.0;
  cfg.duration = duration;
  cfg.seed = seed;
  const auto m = app::run_scenario(cfg);
  Row row;
  row.label = "Dual-radio BCP (burst 500)";
  row.goodput = m.goodput;
  row.delay = m.mean_delay;
  row.j_per_kbit = m.normalized_energy;
  row.node_power_mw = (m.sensor_energy.ideal() + m.wifi_energy.full()) /
                      36.0 / duration * 1e3;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opt("bench_motivation_sleep_cycling",
                    "sleep-cycled 802.11 vs BCP (the §1 motivation)");
  opt.add_int("senders", 10, "sender count")
      .add_double("duration", 2000.0, "simulated seconds")
      .add_int("seed", 1, "seed");
  if (!opt.parse(argc, argv)) return 1;
  const int senders = static_cast<int>(opt.get_int("senders"));
  const double duration = opt.get_double("duration");
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed"));

  stats::TextTable t;
  t.add_row({"configuration", "goodput", "delay_s", "J_per_Kbit",
             "mW_per_node"});
  for (const double duty : {1.0, 0.10, 0.02})
    if (const Row r = run_sleep_cycled(duty, senders, duration, seed); true)
      t.add_row({r.label, stats::TextTable::num(r.goodput, 3),
                 stats::TextTable::num(r.delay, 3),
                 stats::TextTable::num(r.j_per_kbit, 3),
                 stats::TextTable::num(r.node_power_mw, 3)});
  const Row dual = run_dual(senders, duration, seed);
  t.add_row({dual.label, stats::TextTable::num(dual.goodput, 3),
             stats::TextTable::num(dual.delay, 3),
             stats::TextTable::num(dual.j_per_kbit, 3),
             stats::TextTable::num(dual.node_power_mw, 3)});
  stats::print_titled(
      "Motivation (§1) — sleep-cycled 802.11 vs dual-radio BCP, MH grid, "
      "0.2 Kbps",
      t);
  std::printf(
      "Expected: per-node power of sleep-cycled 802.11 scales with duty\n"
      "(idle+wake-up dominate regardless of traffic); BCP pays per burst\n"
      "and lands orders of magnitude lower — the reason for the second\n"
      "radio.\n");
  return 0;
}

// §1 motivation, quantified — "One solution is to sleep cycle the
// [high-power] radio... However, such sleep cycling cannot reduce the
// idling energy sufficiently for use in sensor networks."
//
// Runs the MH grid workload (10 senders, 0.2 Kbps) on:
//   * a pure 802.11 network sleep-cycled at duty 100%/10%/2% (idealized,
//     cost-free synchronization — a best case for sleep cycling; the
//     registry's "mh/wifi-duty" variant), and
//   * the dual-radio network with BCP (burst 500; "mh/dual"),
// and prints delivery, delay, per-node power and the J/Kbit metric.
//
// Expected: even at 2% duty the sleep-cycled 802.11 radio burns orders of
// magnitude more than BCP (waking 36 radios every period costs idle +
// wake-up energy regardless of traffic), while BCP pays only per burst.
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "util/options.hpp"

namespace {

struct Cell {
  std::string label;
  std::string variant;
  double duty;  // only for wifi-duty
};

}  // namespace

int main(int argc, char** argv) {
  using namespace bcp;
  using namespace bcp::benchharness;
  util::Options opt("bench_motivation_sleep_cycling",
                    "sleep-cycled 802.11 vs BCP (the §1 motivation)");
  opt.add_int("senders", 10, "sender count")
      .add_double("duration", 2000.0, "simulated seconds")
      .add_int("seed", 1, "seed")
      .add_int("runs", 1, "replications per configuration")
      .add_int("jobs", 0, "sweep worker threads (0 = all hardware cores)");
  if (!opt.parse(argc, argv)) return 1;
  const int senders = static_cast<int>(opt.get_int("senders"));
  const double duration = opt.get_double("duration");

  const std::vector<Cell> cells = {
      {"802.11 sleep-cycled 100%", "mh/wifi-duty", 1.0},
      {"802.11 sleep-cycled 10%", "mh/wifi-duty", 0.10},
      {"802.11 sleep-cycled 2%", "mh/wifi-duty", 0.02},
      {"Dual-radio BCP (burst 500)", "mh/dual", 0},
  };

  app::SweepGrid grid;
  grid.axis_ints("cell", {0, 1, 2, 3});
  const app::SweepFn fn = [&cells, senders,
                           duration](const app::SweepJob& job) {
    const Cell& cell =
        cells[static_cast<std::size_t>(job.point.get_int("cell"))];
    const app::SweepPoint scenario_point(
        job.point.index(), {{"senders", static_cast<double>(senders)},
                            {"burst", 500},
                            {"rate_bps", 200.0},
                            {"duration", duration},
                            {"duty", cell.duty}});
    auto cfg =
        app::ScenarioRegistry::builtin().make(cell.variant, scenario_point);
    cfg.seed = job.seed;
    return app::standard_metrics(app::run_scenario(cfg));
  };

  app::SweepOptions sweep;
  sweep.replications = static_cast<int>(opt.get_int("runs"));
  sweep.base_seed = static_cast<std::uint64_t>(opt.get_int("seed"));
  sweep.threads = static_cast<int>(opt.get_int("jobs"));
  const app::SweepRunner runner(sweep);
  stats::ResultSink sink = runner.run(grid, fn);
  for (std::size_t i = 0; i < cells.size(); ++i)
    sink.set_label(i, cells[i].label);

  stats::TextTable t;
  t.add_row({"configuration", "goodput", "delay_s", "J_per_Kbit",
             "mW_per_node"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const double energy = sink.metric(i, "sensor_energy_ideal_J").mean() +
                          sink.metric(i, "wifi_energy_full_J").mean();
    t.add_row({cells[i].label,
               stats::TextTable::num(sink.metric(i, "goodput").mean(), 3),
               stats::TextTable::num(sink.metric(i, "mean_delay_s").mean(),
                                     3),
               stats::TextTable::num(
                   sink.metric(i, "normalized_energy").mean(), 3),
               stats::TextTable::num(energy / 36.0 / duration * 1e3, 3)});
  }
  stats::print_titled(
      "Motivation (§1) — sleep-cycled 802.11 vs dual-radio BCP, MH grid, "
      "0.2 Kbps",
      t);
  {
    const app::SweepPoint meta_point(
        0, {{"senders", static_cast<double>(senders)},
            {"burst", 500},
            {"rate_bps", 200.0},
            {"duration", duration},
            {"duty", cells.front().duty}});
    set_scenario_meta(
        sink,
        app::ScenarioRegistry::builtin().make(cells.front().variant,
                                              meta_point),
        sweep.base_seed);
  }
  export_json("motivation_sleep_cycling", sink);
  std::printf(
      "Expected: per-node power of sleep-cycled 802.11 scales with duty\n"
      "(idle+wake-up dominate regardless of traffic); BCP pays per burst\n"
      "and lands orders of magnitude lower — the reason for the second\n"
      "radio.\n");
  return 0;
}

// Capture-effect bench — what the all-overlaps-corrupt rule costs bulk
// transfer in dense bursts, measured as paired cells that differ ONLY in
// the Channel's SINR/capture switch:
//
//   sh/dual   vs capture-sh/dual         unit-disc, hidden-terminal grid
//   mh/dual   vs capture-mh/dual         unit-disc, one-hop 802.11
//   lossy-sh  vs capture-lossy-sh/dual   log-distance links (unequal
//   lossy-mh  vs capture-lossy-mh/dual   powers — where capture can win)
//
// Unit-disc collisions are equal-power ties the capture threshold cannot
// break, so those pairs bound the switch's null effect; the log-distance
// pairs are the paper-relevant cells, where a near sender's burst rides
// over a far sender's interference instead of dying with it. One table
// row per cell (standard §4.1 metrics + channel delivery counters), then
// a goodput off→on delta per pair. Writes BENCH_capture.json; its meta
// block records the capture threshold and both radios' noise floors
// (emitted only for capture runs — the conditional-meta contract).
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "util/options.hpp"

namespace {

using namespace bcp;

}  // namespace

int main(int argc, char** argv) {
  using namespace bcp::benchharness;
  util::Options opt("bench_capture",
                    "bulk goodput with vs without SINR capture");
  opt.add_int("runs", 2, "replications per cell")
      .add_double("duration", 600.0, "simulated seconds per run")
      .add_int("senders", 25, "CBR senders (dense)")
      .add_int("burst", 100, "dual-radio burst threshold in 32 B packets")
      .add_double("capture-db", 10.0, "SINR capture threshold (dB)")
      .add_int("seed", 1, "base RNG seed")
      .add_int("jobs", 0, "sweep worker threads (0 = all hardware cores)");
  if (!opt.parse(argc, argv)) return 1;
  const int runs = static_cast<int>(opt.get_int("runs"));
  const double duration = opt.get_double("duration");
  const int senders = static_cast<int>(opt.get_int("senders"));
  const int burst = static_cast<int>(opt.get_int("burst"));
  const double capture_db = opt.get_double("capture-db");
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed"));

  // Registry variant per cell, doubling as its label. Paired (baseline,
  // capture) order: cell 2k is the baseline of cell 2k+1, which the delta
  // report below relies on.
  const std::vector<const char*> cells = {
      "sh/dual",       "capture-sh/dual",
      "mh/dual",       "capture-mh/dual",
      "lossy-sh/dual", "capture-lossy-sh/dual",
      "lossy-mh/dual", "capture-lossy-mh/dual",
  };

  app::SweepGrid grid;
  std::vector<int> cell_ids;
  for (std::size_t i = 0; i < cells.size(); ++i)
    cell_ids.push_back(static_cast<int>(i));
  grid.axis_ints("cell", cell_ids);

  const app::SweepFn fn = [&](const app::SweepJob& job) {
    const char* variant =
        cells[static_cast<std::size_t>(job.point.get_int("cell"))];
    const app::SweepPoint point(
        job.point.index(),
        {{"senders", static_cast<double>(senders)},
         {"burst", static_cast<double>(burst)},
         {"duration", duration},
         {"capture_db", capture_db}});
    app::ScenarioConfig cfg =
        app::ScenarioRegistry::builtin().make(variant, point);
    cfg.seed = job.seed;
    const app::RunMetrics m = app::run_scenario(cfg);
    stats::ResultSink::Metrics metrics = app::standard_metrics(m);
    metrics.emplace_back("chan_frames", static_cast<double>(m.chan_frames));
    metrics.emplace_back("chan_rx_starts",
                         static_cast<double>(m.chan_rx_starts));
    metrics.emplace_back("chan_rx_ends",
                         static_cast<double>(m.chan_rx_ends));
    return metrics;
  };

  app::SweepOptions sweep;
  sweep.replications = runs;
  sweep.base_seed = seed;
  sweep.threads = static_cast<int>(opt.get_int("jobs"));
  const app::SweepRunner runner(sweep);
  stats::ResultSink sink = runner.run(grid, fn);
  for (std::size_t i = 0; i < cells.size(); ++i)
    sink.set_label(grid.index_of({i}), cells[i]);

  stats::print_titled(
      "Capture sweep — bulk goodput, SINR capture off vs on", sink.to_table());

  std::printf("\nGoodput, capture off -> on (threshold %.1f dB):\n",
              capture_db);
  for (std::size_t p = 0; p + 1 < cells.size(); p += 2) {
    const double off = sink.metric(grid.index_of({p}), "goodput").mean();
    const double on = sink.metric(grid.index_of({p + 1}), "goodput").mean();
    std::printf("  %-22s %.4f -> %.4f (%+.2f%%)\n", cells[p], off, on,
                off > 0 ? 100.0 * (on - off) / off : 0.0);
  }

  // Run-identity metadata from a config the capture cells actually ran:
  // propagation + PER parameters (lossy cells) and the capture
  // threshold / per-radio noise floors (conditional keys). The meta block
  // is file-level (one per BENCH export), so `meta_variant` names the
  // cell these identity keys describe — the baseline half of every pair
  // ran unit-disc and/or capture-off, as the cell labels say.
  const app::SweepPoint meta_point(
      0, {{"senders", static_cast<double>(senders)},
          {"burst", static_cast<double>(burst)},
          {"duration", duration},
          {"capture_db", capture_db}});
  sink.set_meta("meta_variant", "capture-lossy-mh/dual");
  set_scenario_meta(sink,
                    app::ScenarioRegistry::builtin().make(
                        "capture-lossy-mh/dual", meta_point),
                    seed);
  export_json("capture", sink);
  return 0;
}

// Figure 12 — prototype (§4.2): energy consumption per packet (uJ) vs
// delay per packet (ms), parametric in the threshold (same sweep as
// Fig. 11).
//
// Paper claims: energy first falls steeply as delay is admitted (bigger
// thresholds), then flattens — past a region, more delay buys little.
#include <cstdio>

#include "emul/prototype.hpp"
#include "stats/table.hpp"
#include "util/options.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace bcp;
  util::Options opt("bench_fig12_proto_energy_vs_delay",
                    "Figure 12: prototype energy/packet vs delay/packet");
  opt.add_int("messages", 500, "messages per run (paper: 500)")
      .add_int("step", 250, "threshold step in bytes")
      .add_double("interval", 0.2, "message generation interval (s)");
  if (!opt.parse(argc, argv)) return 1;

  stats::TextTable t;
  t.add_row({"threshold_B", "delay_ms_per_pkt", "dual_uJ_per_pkt"});
  for (int bytes = 500; bytes <= 5000;
       bytes += static_cast<int>(opt.get_int("step"))) {
    emul::PrototypeConfig cfg;
    cfg.threshold_bits = util::bytes(bytes);
    cfg.message_count = static_cast<int>(opt.get_int("messages"));
    cfg.message_interval = opt.get_double("interval");
    const auto r = emul::run_prototype(cfg);
    t.add_row({std::to_string(bytes),
               stats::TextTable::num(r.mean_delay_per_packet * 1e3, 5),
               stats::TextTable::num(r.dual_energy_per_packet * 1e6, 4)});
  }
  stats::print_titled(
      "Figure 12 — prototype: energy per packet (uJ) vs delay per packet "
      "(ms)",
      t);
  std::printf(
      "Expected shape: steep energy drop at small delays, then a flat "
      "tail (diminishing returns, matching Fig. 7's simulation result).\n");
  return 0;
}

// Figure 12 — prototype (§4.2): energy consumption per packet (uJ) vs
// delay per packet (ms), parametric in the threshold (same sweep as
// Fig. 11).
//
// Paper claims: energy first falls steeply as delay is admitted (bigger
// thresholds), then flattens — past a region, more delay buys little.
#include <cstdio>

#include "common.hpp"
#include "emul/prototype.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace bcp;
  using namespace bcp::benchharness;
  util::Options opt("bench_fig12_proto_energy_vs_delay",
                    "Figure 12: prototype energy/packet vs delay/packet");
  opt.add_int("messages", 500, "messages per run (paper: 500)")
      .add_int("step", 250, "threshold step in bytes")
      .add_double("interval", 0.2, "message generation interval (s)")
      .add_int("jobs", 0, "sweep worker threads (0 = all hardware cores)");
  if (!opt.parse(argc, argv)) return 1;
  const int messages = static_cast<int>(opt.get_int("messages"));
  const double interval = opt.get_double("interval");

  std::vector<int> thresholds;
  for (int bytes = 500; bytes <= 5000;
       bytes += static_cast<int>(opt.get_int("step")))
    thresholds.push_back(bytes);

  app::SweepGrid grid;
  grid.axis_ints("threshold_B", thresholds);
  const app::SweepFn fn = [messages, interval](const app::SweepJob& job) {
    emul::PrototypeConfig cfg;
    cfg.threshold_bits = util::bytes(job.point.get_int("threshold_B"));
    cfg.message_count = messages;
    cfg.message_interval = interval;
    const auto r = emul::run_prototype(cfg);
    return stats::ResultSink::Metrics{
        {"delay_ms_per_pkt", r.mean_delay_per_packet * 1e3},
        {"dual_uJ_per_pkt", r.dual_energy_per_packet * 1e6},
    };
  };

  app::SweepOptions sweep;
  sweep.threads = static_cast<int>(opt.get_int("jobs"));
  run_grid_bench(
      "fig12_proto_energy_vs_delay",
      "Figure 12 — prototype: energy per packet (uJ) vs delay per packet "
      "(ms)",
      grid, fn, sweep);
  std::printf(
      "Expected shape: steep energy drop at small delays, then a flat "
      "tail (diminishing returns, matching Fig. 7's simulation result).\n");
  return 0;
}

// Figure 11 — prototype (§4.2): energy consumption per packet (uJ) vs the
// accumulation threshold α·s* (500-5000 B), Tmote-Sky-class CC2420 +
// emulated IEEE 802.11, single sender/receiver, 500 messages per run.
//
// Paper claims: the dual-radio curve starts above the flat sensor-radio
// line, crosses it slightly above 1 KB, then keeps dropping with
// diminishing returns; it is NOT monotone — a small threshold increase can
// force an extra (mostly empty) 802.11 frame, the sawtooth in the figure.
#include <cstdio>

#include "common.hpp"
#include "emul/prototype.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace bcp;
  using namespace bcp::benchharness;
  util::Options opt("bench_fig11_proto_energy_vs_threshold",
                    "Figure 11: prototype energy/packet vs threshold");
  opt.add_int("messages", 500, "messages per run (paper: 500)")
      .add_int("step", 250, "threshold step in bytes")
      .add_double("interval", 0.2, "message generation interval (s)")
      .add_int("jobs", 0, "sweep worker threads (0 = all hardware cores)");
  if (!opt.parse(argc, argv)) return 1;
  const int messages = static_cast<int>(opt.get_int("messages"));
  const double interval = opt.get_double("interval");

  std::vector<int> thresholds;
  for (int bytes = 500; bytes <= 5000;
       bytes += static_cast<int>(opt.get_int("step")))
    thresholds.push_back(bytes);

  app::SweepGrid grid;
  grid.axis_ints("threshold_B", thresholds);
  const app::SweepFn fn = [messages, interval](const app::SweepJob& job) {
    emul::PrototypeConfig cfg;
    cfg.threshold_bits = util::bytes(job.point.get_int("threshold_B"));
    cfg.message_count = messages;
    cfg.message_interval = interval;
    const auto r = emul::run_prototype(cfg);
    return stats::ResultSink::Metrics{
        {"dual_uJ_per_pkt", r.dual_energy_per_packet * 1e6},
        {"sensor_uJ_per_pkt", r.sensor_energy_per_packet * 1e6},
        {"wakeups", static_cast<double>(r.wifi_wakeups)},
        {"frames", static_cast<double>(r.bulk_frames)},
    };
  };

  app::SweepOptions sweep;
  sweep.threads = static_cast<int>(opt.get_int("jobs"));
  const stats::ResultSink sink = run_grid_bench(
      "fig11_proto_energy_vs_threshold",
      "Figure 11 — prototype: energy per packet (uJ) vs threshold (B)",
      grid, fn, sweep);

  double crossover = -1;
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    if (sink.metric(i, "dual_uJ_per_pkt").mean() <
        sink.metric(i, "sensor_uJ_per_pkt").mean()) {
      crossover = thresholds[i];
      break;
    }
  }
  std::printf(
      "Check: dual drops below the sensor line at ~%.0f B (paper: slightly "
      "above 1 KB).\nNote: the run is deterministic (isolated loss-free "
      "link, fixed interval), so the paper's 5-run averaging is a no-op "
      "here.\n",
      crossover);
  return 0;
}

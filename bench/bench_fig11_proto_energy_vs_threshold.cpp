// Figure 11 — prototype (§4.2): energy consumption per packet (uJ) vs the
// accumulation threshold α·s* (500-5000 B), Tmote-Sky-class CC2420 +
// emulated IEEE 802.11, single sender/receiver, 500 messages per run.
//
// Paper claims: the dual-radio curve starts above the flat sensor-radio
// line, crosses it slightly above 1 KB, then keeps dropping with
// diminishing returns; it is NOT monotone — a small threshold increase can
// force an extra (mostly empty) 802.11 frame, the sawtooth in the figure.
#include <cstdio>

#include "emul/prototype.hpp"
#include "stats/table.hpp"
#include "util/options.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace bcp;
  util::Options opt("bench_fig11_proto_energy_vs_threshold",
                    "Figure 11: prototype energy/packet vs threshold");
  opt.add_int("messages", 500, "messages per run (paper: 500)")
      .add_int("step", 250, "threshold step in bytes")
      .add_double("interval", 0.2, "message generation interval (s)");
  if (!opt.parse(argc, argv)) return 1;

  stats::TextTable t;
  t.add_row({"threshold_B", "dual_uJ_per_pkt", "sensor_uJ_per_pkt",
             "wakeups", "frames"});
  double crossover = -1;
  for (int bytes = 500; bytes <= 5000;
       bytes += static_cast<int>(opt.get_int("step"))) {
    emul::PrototypeConfig cfg;
    cfg.threshold_bits = util::bytes(bytes);
    cfg.message_count = static_cast<int>(opt.get_int("messages"));
    cfg.message_interval = opt.get_double("interval");
    const auto r = emul::run_prototype(cfg);
    if (crossover < 0 &&
        r.dual_energy_per_packet < r.sensor_energy_per_packet)
      crossover = bytes;
    t.add_row({std::to_string(bytes),
               stats::TextTable::num(r.dual_energy_per_packet * 1e6, 4),
               stats::TextTable::num(r.sensor_energy_per_packet * 1e6, 4),
               std::to_string(r.wifi_wakeups),
               std::to_string(r.bulk_frames)});
  }
  stats::print_titled(
      "Figure 11 — prototype: energy per packet (uJ) vs threshold (B)", t);
  std::printf(
      "Check: dual drops below the sensor line at ~%.0f B (paper: slightly "
      "above 1 KB).\nNote: the run is deterministic (isolated loss-free "
      "link, fixed interval), so the paper's 5-run averaging is a no-op "
      "here.\n",
      crossover);
  return 0;
}

// Figure 8 — multi-hop (MH) case: goodput vs number of senders at 2 Kbps.
//
// Setup (§4.1.2): Cabletron reaches the sink in ONE hop while the sensor
// radio needs ~5; senders at 2 Kbps.
//
// Paper claims: the dual model outperforms Sensor even at burst 2500; the
// Sensor goodput collapses quickly with sender count (multi-hop contention
// and hidden-terminal losses).
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bcp;
  using namespace bcp::benchharness;
  SimOptions opt;
  if (!parse_sim_options(argc, argv, "bench_fig08_mh_goodput",
                         "Figure 8: MH goodput vs senders (2 Kbps)", &opt))
    return 1;
  auto columns = dual_columns(opt.bursts, Metric::kGoodput);
  columns.push_back(
      Column{"Sensor", app::EvalModel::kSensor, 0, Metric::kGoodput});
  columns.push_back(
      Column{"802.11", app::EvalModel::kWifi, 0, Metric::kGoodput});
  print_sender_sweep("fig08_mh_goodput",
                     "Figure 8 — MH: goodput vs number of senders (2 Kbps)",
                     /*multi_hop=*/true, opt, columns, /*rate_bps=*/0);
  return 0;
}

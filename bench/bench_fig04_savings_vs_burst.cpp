// Figure 4 — fraction of energy savings from sending n packets in one
// burst versus n single-packet wake-ups (1-1000 packets, log x-axis), with
// and without 100 ms of idling before each power-off.
//
// Paper claims: savings rise quickly up to ~10 packets (~10 KB) then
// flatten — n=10 is the rule-of-thumb burst size; the "idle" variants save
// more.
#include <cstdio>

#include "energy/breakeven.hpp"
#include "energy/radio_model.hpp"
#include "stats/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace bcp;
  const auto cab = energy::DualRadioAnalysis::standard(
      energy::micaz(), energy::cabletron_2mbps());
  const auto lu2 = energy::DualRadioAnalysis::standard(
      energy::micaz(), energy::lucent_2mbps());
  const auto lu11 = energy::DualRadioAnalysis::standard(
      energy::micaz(), energy::lucent_11mbps());

  stats::TextTable t;
  t.add_row({"packets", "Cabletron", "Lucent2", "Lucent11",
             "Cabletron-Idle", "Lucent2-Idle", "Lucent11-Idle"});
  for (const int n : {1, 2, 3, 5, 7, 10, 15, 20, 30, 50, 70, 100, 150, 200,
                      300, 500, 700, 1000}) {
    const auto f = [&](const energy::DualRadioAnalysis& a, double idle) {
      return stats::TextTable::num(a.burst_savings_fraction(n, idle), 4);
    };
    t.add_row({std::to_string(n), f(cab, 0.0), f(lu2, 0.0), f(lu11, 0.0),
               f(cab, 0.1), f(lu2, 0.1), f(lu11, 0.1)});
  }
  stats::print_titled(
      "Figure 4 — fraction of energy savings vs burst size (packets)", t);

  std::printf(
      "Check: savings at n=10 as share of n=1000 asymptote: "
      "Cabletron %.0f%%, Lucent11-Idle %.0f%% (paper: 'majority by n=10')\n",
      100.0 * cab.burst_savings_fraction(10, 0.0) /
          cab.burst_savings_fraction(1000, 0.0),
      100.0 * lu11.burst_savings_fraction(10, 0.1) /
          lu11.burst_savings_fraction(1000, 0.1));
  return 0;
}

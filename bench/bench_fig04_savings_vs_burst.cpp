// Figure 4 — fraction of energy savings from sending n packets in one
// burst versus n single-packet wake-ups (1-1000 packets, log x-axis), with
// and without 100 ms of idling before each power-off.
//
// Paper claims: savings rise quickly up to ~10 packets (~10 KB) then
// flatten — n=10 is the rule-of-thumb burst size; the "idle" variants save
// more.
#include <cstdio>

#include "common.hpp"
#include "energy/breakeven.hpp"
#include "energy/radio_model.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace bcp;
  using namespace bcp::benchharness;
  util::Options opt("bench_fig04_savings_vs_burst",
                    "Figure 4: savings fraction vs burst size");
  opt.add_int("jobs", 0, "sweep worker threads (0 = all hardware cores)");
  if (!opt.parse(argc, argv)) return 1;

  app::SweepGrid grid;
  grid.axis_ints("packets", {1, 2, 3, 5, 7, 10, 15, 20, 30, 50, 70, 100,
                             150, 200, 300, 500, 700, 1000});
  const app::SweepFn fn = [](const app::SweepJob& job) {
    const int n = job.point.get_int("packets");
    const auto cab = energy::DualRadioAnalysis::standard(
        energy::micaz(), energy::cabletron_2mbps());
    const auto lu2 = energy::DualRadioAnalysis::standard(
        energy::micaz(), energy::lucent_2mbps());
    const auto lu11 = energy::DualRadioAnalysis::standard(
        energy::micaz(), energy::lucent_11mbps());
    return stats::ResultSink::Metrics{
        {"Cabletron", cab.burst_savings_fraction(n, 0.0)},
        {"Lucent2", lu2.burst_savings_fraction(n, 0.0)},
        {"Lucent11", lu11.burst_savings_fraction(n, 0.0)},
        {"Cabletron-Idle", cab.burst_savings_fraction(n, 0.1)},
        {"Lucent2-Idle", lu2.burst_savings_fraction(n, 0.1)},
        {"Lucent11-Idle", lu11.burst_savings_fraction(n, 0.1)},
    };
  };

  app::SweepOptions sweep;
  sweep.threads = static_cast<int>(opt.get_int("jobs"));
  run_grid_bench(
      "fig04_savings_vs_burst",
      "Figure 4 — fraction of energy savings vs burst size (packets)", grid,
      fn, sweep);

  const auto cab = energy::DualRadioAnalysis::standard(
      energy::micaz(), energy::cabletron_2mbps());
  const auto lu11 = energy::DualRadioAnalysis::standard(
      energy::micaz(), energy::lucent_11mbps());
  std::printf(
      "Check: savings at n=10 as share of n=1000 asymptote: "
      "Cabletron %.0f%%, Lucent11-Idle %.0f%% (paper: 'majority by n=10')\n",
      100.0 * cab.burst_savings_fraction(10, 0.0) /
          cab.burst_savings_fraction(1000, 0.0),
      100.0 * lu11.burst_savings_fraction(10, 0.1) /
          lu11.burst_savings_fraction(1000, 0.1));
  return 0;
}

// Figure 1 — "Energy consumption" vs data size (0.1-10 KB, log-log).
//
// Lines: the three sensor radios alone (Eq. 1) and the three 802.11+Micaz
// dual combinations (Eq. 2). Paper claims: crossovers ("break-even
// points") where a dual line dips under a sensor line; Cabletron-Micaz and
// Lucent2-Micaz never cross; Lucent11-Micaz saves ~50% at ~4 KB.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "energy/breakeven.hpp"
#include "energy/radio_model.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace bcp;
  using namespace bcp::benchharness;
  util::Options opt("bench_fig01_energy_vs_size",
                    "Figure 1: energy (mJ) vs data size (KB)");
  opt.add_int("points", 25, "sample points on the log axis")
      .add_int("jobs", 0, "sweep worker threads (0 = all hardware cores)");
  if (!opt.parse(argc, argv)) return 1;
  const int points = static_cast<int>(opt.get_int("points"));

  std::vector<double> kb_axis;
  for (int i = 0; i < points; ++i)
    kb_axis.push_back(0.1 *
                      std::pow(100.0, static_cast<double>(i) / (points - 1)));

  app::SweepGrid grid;
  grid.axis("KB", kb_axis);
  const app::SweepFn fn = [](const app::SweepJob& job) {
    const auto cab = energy::DualRadioAnalysis::standard(
        energy::micaz(), energy::cabletron_2mbps());
    const auto lu2 = energy::DualRadioAnalysis::standard(
        energy::micaz(), energy::lucent_2mbps());
    const auto lu11 = energy::DualRadioAnalysis::standard(
        energy::micaz(), energy::lucent_11mbps());
    // Eq. 1 sensor-only curves reuse the same link parameters.
    const auto mica_a = energy::DualRadioAnalysis::standard(
        energy::mica(), energy::lucent_11mbps());
    const auto mica2_a = energy::DualRadioAnalysis::standard(
        energy::mica2(), energy::lucent_11mbps());
    const auto s =
        static_cast<util::Bits>(job.point.get("KB") * 8192.0);
    const auto mj = [](double joules) { return joules * 1e3; };
    return stats::ResultSink::Metrics{
        {"Mica_mJ", mj(mica_a.energy_low(s))},
        {"Mica2_mJ", mj(mica2_a.energy_low(s))},
        {"Micaz_mJ", mj(cab.energy_low(s))},
        {"Cabletron-Micaz_mJ", mj(cab.energy_high(s))},
        {"Lucent2-Micaz_mJ", mj(lu2.energy_high(s))},
        {"Lucent11-Micaz_mJ", mj(lu11.energy_high(s))},
    };
  };

  app::SweepOptions sweep;
  sweep.threads = static_cast<int>(opt.get_int("jobs"));
  run_grid_bench("fig01_energy_vs_size",
                 "Figure 1 — energy consumption (mJ) vs data size", grid, fn,
                 sweep);

  const auto cab = energy::DualRadioAnalysis::standard(
      energy::micaz(), energy::cabletron_2mbps());
  const auto lu2 = energy::DualRadioAnalysis::standard(
      energy::micaz(), energy::lucent_2mbps());
  const auto lu11 = energy::DualRadioAnalysis::standard(
      energy::micaz(), energy::lucent_11mbps());
  const auto s4 = util::kilobytes(4);
  std::printf(
      "Checks: Lucent11-Micaz saving at 4KB = %.1f%% (paper: ~50%%); "
      "Cabletron/Lucent2 vs Micaz cross: %s/%s (paper: never)\n",
      100.0 * lu11.savings_fraction(s4),
      cab.break_even_bits() ? "yes" : "no",
      lu2.break_even_bits() ? "yes" : "no");
  return 0;
}

// Figure 1 — "Energy consumption" vs data size (0.1-10 KB, log-log).
//
// Lines: the three sensor radios alone (Eq. 1) and the three 802.11+Micaz
// dual combinations (Eq. 2). Paper claims: crossovers ("break-even
// points") where a dual line dips under a sensor line; Cabletron-Micaz and
// Lucent2-Micaz never cross; Lucent11-Micaz saves ~50% at ~4 KB.
#include <cmath>
#include <cstdio>

#include "energy/breakeven.hpp"
#include "energy/radio_model.hpp"
#include "stats/table.hpp"
#include "util/options.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace bcp;
  util::Options opt("bench_fig01_energy_vs_size",
                    "Figure 1: energy (mJ) vs data size (KB)");
  opt.add_int("points", 25, "sample points on the log axis");
  if (!opt.parse(argc, argv)) return 1;
  const int points = static_cast<int>(opt.get_int("points"));

  const auto cab = energy::DualRadioAnalysis::standard(
      energy::micaz(), energy::cabletron_2mbps());
  const auto lu2 = energy::DualRadioAnalysis::standard(
      energy::micaz(), energy::lucent_2mbps());
  const auto lu11 = energy::DualRadioAnalysis::standard(
      energy::micaz(), energy::lucent_11mbps());
  // Eq. 1 sensor-only curves reuse the same link parameters.
  const auto mica_a = energy::DualRadioAnalysis::standard(
      energy::mica(), energy::lucent_11mbps());
  const auto mica2_a = energy::DualRadioAnalysis::standard(
      energy::mica2(), energy::lucent_11mbps());

  stats::TextTable t;
  t.add_row({"KB", "Mica", "Mica2", "Micaz", "Cabletron-Micaz",
             "Lucent2-Micaz", "Lucent11-Micaz"});
  for (int i = 0; i < points; ++i) {
    const double kb =
        0.1 * std::pow(100.0, static_cast<double>(i) / (points - 1));
    const auto s = static_cast<util::Bits>(kb * 8192.0);
    const auto mj = [](double joules) {
      return stats::TextTable::num(joules * 1e3, 4);
    };
    t.add_row({stats::TextTable::num(kb, 3), mj(mica_a.energy_low(s)),
               mj(mica2_a.energy_low(s)), mj(cab.energy_low(s)),
               mj(cab.energy_high(s)), mj(lu2.energy_high(s)),
               mj(lu11.energy_high(s))});
  }
  stats::print_titled("Figure 1 — energy consumption (mJ) vs data size",
                      t);

  const auto s4 = util::kilobytes(4);
  std::printf(
      "Checks: Lucent11-Micaz saving at 4KB = %.1f%% (paper: ~50%%); "
      "Cabletron/Lucent2 vs Micaz cross: %s/%s (paper: never)\n",
      100.0 * lu11.savings_fraction(s4),
      cab.break_even_bits() ? "yes" : "no",
      lu2.break_even_bits() ? "yes" : "no");
  return 0;
}

// Network-lifetime bench — the paper's energy-conservation claim turned
// into lifetime: give every node a finite battery (ScenarioConfig::battery)
// and read how long each evaluation model keeps the network alive, and
// how much data it delivers before the first node dies.
//
//   lifetime-mh/dual       dual-radio BCP (bulk transmission)
//   lifetime-mh/wifi       always-on 802.11
//   lifetime-mh/wifi-duty  sleep-cycled 802.11 strawman
//   lifetime-mh/sensor     pure sensor network
//   dual-sharded4          the dual cell on the sharded engine
//   dual+churn-sharded4    sharded + a node-crash/link-flap fault plan on
//                          top of the batteries (membership epochs carry
//                          both churn and deaths across shards)
//
// All four cells run the same topology, senders, and offered load — the
// only difference is which radios burn the battery and when. The Pareto
// table reads lifetime (time-to-first-death, capped at the run duration
// when nobody dies) against goodput and delivered-bytes-until-first-death:
// the headline result is that bulk transmission over the high-power radio
// dominates always-on 802.11 on BOTH axes, not just energy/bit. A second
// sweep repeats the dual cell with lifetime-aware routing to show the
// graceful-degradation knob. Writes BENCH_lifetime.json; battery and
// routing-policy meta keys are emitted only for non-default runs (the
// conditional-meta contract). --budget-s is the CI smoke tripwire;
// --compare-threads hard-gates sharded thread-count determinism on the
// churn+battery cell; --headline-nodes runs one 100k-node sharded
// lifetime cell and reports deaths + events/sec.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "util/options.hpp"

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bcp;
  using namespace bcp::benchharness;
  util::Options opt("bench_lifetime",
                    "network lifetime and goodput under finite batteries");
  opt.add_int("runs", 2, "replications per cell")
      .add_double("duration", 600.0, "simulated seconds per run")
      .add_double("sensor-j", 150.0, "initial sensor-radio battery (J)")
      .add_double("wifi-j", 600.0, "initial 802.11-radio battery (J)")
      .add_int("senders", 10, "sender count per cell")
      .add_int("seed", 1, "base RNG seed")
      .add_int("jobs", 0, "sweep worker threads (0 = all hardware cores)")
      .add_double("budget-s", 0,
                  "fail (exit 2) if the bench wall-clock exceeds this")
      .add_int("compare-threads", 0,
               "run the churn+battery sharded cell with 1 and 2 worker "
               "threads and fail (exit 2) unless the metrics are "
               "byte-identical (the membership-epoch determinism gate)")
      .add_int("headline-nodes", 0,
               "also run one sharded dual-radio lifetime cell with this "
               "many nodes (the 100k headline; 0 disables)")
      .add_int("headline-shards", 8, "shard count for the headline cell")
      .add_double("headline-duration", 25.0,
                  "simulated seconds for the headline cell")
      .add_double("headline-sensor-j", 0.5,
                  "headline sensor battery (J) — small enough that nodes "
                  "start dying inside the headline duration");
  if (!opt.parse(argc, argv)) return 1;
  const int runs = static_cast<int>(opt.get_int("runs"));
  const double duration = opt.get_double("duration");
  const double sensor_j = opt.get_double("sensor-j");
  const double wifi_j = opt.get_double("wifi-j");
  const int n_senders = static_cast<int>(opt.get_int("senders"));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed"));
  const auto t_bench = std::chrono::steady_clock::now();

  // One registry variant per cell; the fifth cell re-runs dual with the
  // lifetime-aware routing policy (battery-fraction link cost), and the
  // last two repeat dual on the sharded engine — alone, and under node
  // churn on top of the finite batteries (membership epochs at window
  // barriers carry both the crashes and the battery deaths).
  struct Cell {
    const char* variant;
    const char* label;
    bool lifetime_routing;
    int shards = 0;   ///< > 1 runs the cell on the sharded engine
    int crashes = 0;  ///< > 0 adds a fault plan on top of the batteries
  };
  const std::vector<Cell> cells = {
      {"lifetime-mh/dual", "dual", false},
      {"lifetime-mh/wifi", "wifi", false},
      {"lifetime-mh/wifi-duty", "wifi-duty", false},
      {"lifetime-mh/sensor", "sensor", false},
      {"lifetime-mh/dual", "dual+lifetime-routing", true},
      {"lifetime-mh/dual", "dual-sharded4", false, 4, 0},
      {"lifetime-mh/dual", "dual+churn-sharded4", false, 4, 4},
  };

  app::SweepGrid grid;
  std::vector<int> cell_ids;
  for (std::size_t i = 0; i < cells.size(); ++i)
    cell_ids.push_back(static_cast<int>(i));
  grid.axis_ints("cell", cell_ids);

  const auto scenario_point = [&](std::size_t index, const Cell& cell) {
    std::vector<std::pair<std::string, double>> axes = {
        {"senders", static_cast<double>(n_senders)},
        {"duration", duration},
        {"sensor_j", sensor_j},
        {"wifi_j", wifi_j}};
    if (cell.lifetime_routing) axes.emplace_back("lifetime_routing", 1.0);
    return app::SweepPoint(index, std::move(axes));
  };

  const app::SweepFn fn = [&](const app::SweepJob& job) {
    const Cell& cell = cells[static_cast<std::size_t>(
        job.point.get_int("cell"))];
    app::ScenarioConfig cfg = app::ScenarioRegistry::builtin().make(
        cell.variant, scenario_point(job.point.index(), cell));
    cfg.seed = job.seed;
    if (cell.shards > 1) {
      cfg.shards = cell.shards;
      cfg.sim_threads = 1;  // the sweep already saturates the cores
    }
    if (cell.crashes > 0) {
      cfg.faults.node_crashes = cell.crashes;
      cfg.faults.link_flaps = 2;
    }
    const app::RunMetrics m = app::run_scenario(cfg);
    stats::ResultSink::Metrics metrics = app::standard_metrics(m);
    // Lifetime metrics ride alongside the golden-protected standard set.
    // time_to_* stay raw (-1 = never happened) so the JSON distinguishes
    // "survived the run" from "died at t=0".
    metrics.emplace_back("time_to_first_death_s", m.time_to_first_death);
    metrics.emplace_back("battery_deaths",
                         static_cast<double>(m.battery_deaths));
    metrics.emplace_back("time_to_sink_partition_s",
                         m.time_to_sink_partition);
    metrics.emplace_back("delivered_bits_until_first_death",
                         static_cast<double>(
                             m.delivered_bits_until_first_death));
    metrics.emplace_back("delivered_bits_until_partition",
                         static_cast<double>(
                             m.delivered_bits_until_partition));
    metrics.emplace_back("battery_max_drawn_fraction",
                         m.battery_max_drawn_fraction);
    // Churn-on-batteries accounting: how much of the fault plan actually
    // executed (a recovery aimed at a battery-dead node is refused —
    // battery death is final).
    metrics.emplace_back("fault_node_crashes",
                         static_cast<double>(m.fault_node_crashes));
    metrics.emplace_back("fault_node_recoveries",
                         static_cast<double>(m.fault_node_recoveries));
    metrics.emplace_back("fault_recoveries_refused",
                         static_cast<double>(m.fault_recoveries_refused));
    return metrics;
  };

  app::SweepOptions sweep;
  sweep.replications = runs;
  sweep.base_seed = seed;
  sweep.threads = static_cast<int>(opt.get_int("jobs"));
  const app::SweepRunner runner(sweep);
  stats::ResultSink sink = runner.run(grid, fn);
  for (std::size_t ci = 0; ci < cells.size(); ++ci)
    sink.set_label(grid.index_of({ci}), cells[ci].label);

  stats::print_titled("Lifetime sweep — finite batteries, equal offered load",
                      sink.to_table());

  // The Pareto read: lifetime vs goodput per model. A model dominates
  // when it is up-and-right of another. ttfd < 0 means no node died —
  // report the run duration as a lower bound (">= duration").
  std::printf("\nLifetime vs goodput (Pareto):\n");
  std::printf("  %-22s %12s %9s %14s %8s\n", "cell", "lifetime-s",
              "goodput", "bits@1st-death", "deaths");
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    const std::size_t p = grid.index_of({ci});
    const double ttfd = sink.metric(p, "time_to_first_death_s").mean();
    const double goodput = sink.metric(p, "goodput").mean();
    const double bits =
        sink.metric(p, "delivered_bits_until_first_death").mean();
    const double deaths = sink.metric(p, "battery_deaths").mean();
    char lifetime[32];
    if (ttfd < 0)
      std::snprintf(lifetime, sizeof lifetime, ">=%.0f", duration);
    else
      std::snprintf(lifetime, sizeof lifetime, "%.1f", ttfd);
    std::printf("  %-22s %12s %9.3f %14.0f %8.1f\n", cells[ci].label,
                lifetime, goodput, bits, deaths);
  }

  // Run-identity metadata from a config the cells actually ran; the
  // lifetime-routing cell's policy keys describe only itself, as its
  // label says.
  sink.set_meta("meta_variant", "lifetime-mh/dual");
  set_scenario_meta(sink,
                    app::ScenarioRegistry::builtin().make(
                        "lifetime-mh/dual", scenario_point(0, cells.back())),
                    seed);
  // Conditional-meta contract: the refused-recovery total appears only
  // when the churn cells actually refused one.
  double refused = 0;
  for (std::size_t ci = 0; ci < cells.size(); ++ci)
    refused += sink.metric(grid.index_of({ci}), "fault_recoveries_refused")
                   .mean() * runs;
  if (refused > 0) sink.set_meta("fault_recoveries_refused", refused);

  // ---- Determinism gate: churn + batteries across worker threads ---------
  // Crashes, recoveries, link flaps, battery deaths and the lifetime
  // reroute tick all flow through membership epochs at window barriers;
  // the result must be a pure function of (config, shard count). Exit 2
  // if two thread counts disagree on a single bit.
  bool determinism_ok = true;
  if (opt.get_int("compare-threads") > 0) {
    app::ScenarioConfig cfg = app::ScenarioRegistry::builtin().make(
        "lifetime-mh/dual", scenario_point(0, cells.back()));
    cfg.seed = seed;
    cfg.faults.node_crashes = 4;
    cfg.faults.link_flaps = 2;
    cfg.shards = 4;
    cfg.sim_threads = 1;
    const app::RunMetrics a = app::run_scenario(cfg);
    cfg.sim_threads = 2;
    const app::RunMetrics b = app::run_scenario(cfg);
    determinism_ok =
        a.generated == b.generated && a.delivered == b.delivered &&
        a.events_processed == b.events_processed &&
        a.boundary_frames == b.boundary_frames &&
        a.goodput == b.goodput && a.mean_delay == b.mean_delay &&
        a.normalized_energy == b.normalized_energy &&
        a.battery_deaths == b.battery_deaths &&
        a.time_to_first_death == b.time_to_first_death &&
        a.time_to_sink_partition == b.time_to_sink_partition &&
        a.fault_node_crashes == b.fault_node_crashes &&
        a.fault_node_recoveries == b.fault_node_recoveries &&
        a.fault_recoveries_refused == b.fault_recoveries_refused &&
        a.fault_link_downs == b.fault_link_downs &&
        a.route_rebuilds == b.route_rebuilds &&
        a.shard_events == b.shard_events;
    std::printf(
        "[compare] churn+battery sharded4: %lld deaths, ttfd %.1f s, "
        "%d crashes, %d refused recoveries — thread-count determinism "
        "%s\n",
        static_cast<long long>(a.battery_deaths), a.time_to_first_death,
        static_cast<int>(a.fault_node_crashes),
        static_cast<int>(a.fault_recoveries_refused),
        determinism_ok ? "OK" : "BROKEN");
    sink.set_meta("compare_threads_determinism", determinism_ok ? 1.0 : 0.0);
  }

  // ---- Headline cell: lifetime at 100k+ nodes on the sharded engine ------
  const int headline_nodes = static_cast<int>(opt.get_int("headline-nodes"));
  if (headline_nodes > 0) {
    const int headline_shards =
        static_cast<int>(opt.get_int("headline-shards"));
    const int headline_senders =
        std::max(10, std::min(headline_nodes / 1000, headline_nodes - 1));
    app::ScenarioConfig cfg = app::ScenarioConfig::single_hop(
        app::EvalModel::kDualRadio, headline_senders, /*burst_packets=*/10);
    const int side = static_cast<int>(
        std::lround(std::sqrt(static_cast<double>(headline_nodes))));
    cfg.topology.grid_side = side;
    cfg.topology.area = cfg.sensor_radio.range * (side - 1);
    cfg.rate_bps = 2000.0;
    cfg.duration = opt.get_double("headline-duration");
    cfg.seed = seed;
    cfg.battery.enabled = true;
    cfg.battery.sensor_initial_j = opt.get_double("headline-sensor-j");
    cfg.battery.wifi_initial_j = wifi_j;
    cfg.shards = headline_shards;
    cfg.sim_threads = 0;  // auto
    const auto t0 = std::chrono::steady_clock::now();
    const app::RunMetrics m = app::run_scenario(cfg);
    const double wall_ms = ms_since(t0);
    const double events_per_sec =
        wall_ms > 0 ? static_cast<double>(m.events_processed) / (wall_ms / 1e3)
                    : 0;
    std::printf(
        "[headline] %d nodes, %d shards, %.1f s simulated with finite "
        "batteries: %.0f ms wall, %llu events (%.0f events/sec), "
        "%lld deaths, first death %.2f s, %lld bits before it\n",
        side * side, headline_shards, cfg.duration, wall_ms,
        static_cast<unsigned long long>(m.events_processed), events_per_sec,
        static_cast<long long>(m.battery_deaths), m.time_to_first_death,
        static_cast<long long>(m.delivered_bits_until_first_death));
    sink.set_meta("headline_nodes", static_cast<double>(side * side));
    sink.set_meta("headline_shards", static_cast<double>(headline_shards));
    sink.set_meta("headline_events_per_sec", events_per_sec);
    sink.set_meta("headline_wall_ms", wall_ms);
    sink.set_meta("headline_battery_deaths",
                  static_cast<double>(m.battery_deaths));
    sink.set_meta("headline_time_to_first_death_s", m.time_to_first_death);
  }
  export_json("lifetime", sink);

  const double elapsed_s = ms_since(t_bench) / 1e3;
  std::printf("[wall] %.1f s total\n", elapsed_s);
  const double budget = opt.get_double("budget-s");
  if (budget > 0 && elapsed_s > budget) {
    std::fprintf(stderr,
                 "BUDGET EXCEEDED: %.1f s > %.1f s — investigate the "
                 "battery re-arm path (one event per radio state change) "
                 "or the lifetime-routing rebuild cadence\n",
                 elapsed_s, budget);
    return 2;
  }
  if (!determinism_ok) {
    std::fprintf(stderr,
                 "DETERMINISM BROKEN: the churn+battery sharded cell "
                 "disagrees across worker thread counts — look for shared "
                 "state mutated outside the window-barrier epoch hook\n");
    return 2;
  }
  return 0;
}

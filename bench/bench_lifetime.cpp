// Network-lifetime bench — the paper's energy-conservation claim turned
// into lifetime: give every node a finite battery (ScenarioConfig::battery)
// and read how long each evaluation model keeps the network alive, and
// how much data it delivers before the first node dies.
//
//   lifetime-mh/dual       dual-radio BCP (bulk transmission)
//   lifetime-mh/wifi       always-on 802.11
//   lifetime-mh/wifi-duty  sleep-cycled 802.11 strawman
//   lifetime-mh/sensor     pure sensor network
//
// All four cells run the same topology, senders, and offered load — the
// only difference is which radios burn the battery and when. The Pareto
// table reads lifetime (time-to-first-death, capped at the run duration
// when nobody dies) against goodput and delivered-bytes-until-first-death:
// the headline result is that bulk transmission over the high-power radio
// dominates always-on 802.11 on BOTH axes, not just energy/bit. A second
// sweep repeats the dual cell with lifetime-aware routing to show the
// graceful-degradation knob. Writes BENCH_lifetime.json; battery and
// routing-policy meta keys are emitted only for non-default runs (the
// conditional-meta contract). --budget-s is the CI smoke tripwire.
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "util/options.hpp"

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bcp;
  using namespace bcp::benchharness;
  util::Options opt("bench_lifetime",
                    "network lifetime and goodput under finite batteries");
  opt.add_int("runs", 2, "replications per cell")
      .add_double("duration", 600.0, "simulated seconds per run")
      .add_double("sensor-j", 150.0, "initial sensor-radio battery (J)")
      .add_double("wifi-j", 600.0, "initial 802.11-radio battery (J)")
      .add_int("senders", 10, "sender count per cell")
      .add_int("seed", 1, "base RNG seed")
      .add_int("jobs", 0, "sweep worker threads (0 = all hardware cores)")
      .add_double("budget-s", 0,
                  "fail (exit 2) if the bench wall-clock exceeds this");
  if (!opt.parse(argc, argv)) return 1;
  const int runs = static_cast<int>(opt.get_int("runs"));
  const double duration = opt.get_double("duration");
  const double sensor_j = opt.get_double("sensor-j");
  const double wifi_j = opt.get_double("wifi-j");
  const int n_senders = static_cast<int>(opt.get_int("senders"));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed"));
  const auto t_bench = std::chrono::steady_clock::now();

  // One registry variant per cell; the last cell re-runs dual with the
  // lifetime-aware routing policy (battery-fraction link cost).
  struct Cell {
    const char* variant;
    const char* label;
    bool lifetime_routing;
  };
  const std::vector<Cell> cells = {
      {"lifetime-mh/dual", "dual", false},
      {"lifetime-mh/wifi", "wifi", false},
      {"lifetime-mh/wifi-duty", "wifi-duty", false},
      {"lifetime-mh/sensor", "sensor", false},
      {"lifetime-mh/dual", "dual+lifetime-routing", true},
  };

  app::SweepGrid grid;
  std::vector<int> cell_ids;
  for (std::size_t i = 0; i < cells.size(); ++i)
    cell_ids.push_back(static_cast<int>(i));
  grid.axis_ints("cell", cell_ids);

  const auto scenario_point = [&](std::size_t index, const Cell& cell) {
    std::vector<std::pair<std::string, double>> axes = {
        {"senders", static_cast<double>(n_senders)},
        {"duration", duration},
        {"sensor_j", sensor_j},
        {"wifi_j", wifi_j}};
    if (cell.lifetime_routing) axes.emplace_back("lifetime_routing", 1.0);
    return app::SweepPoint(index, std::move(axes));
  };

  const app::SweepFn fn = [&](const app::SweepJob& job) {
    const Cell& cell = cells[static_cast<std::size_t>(
        job.point.get_int("cell"))];
    app::ScenarioConfig cfg = app::ScenarioRegistry::builtin().make(
        cell.variant, scenario_point(job.point.index(), cell));
    cfg.seed = job.seed;
    const app::RunMetrics m = app::run_scenario(cfg);
    stats::ResultSink::Metrics metrics = app::standard_metrics(m);
    // Lifetime metrics ride alongside the golden-protected standard set.
    // time_to_* stay raw (-1 = never happened) so the JSON distinguishes
    // "survived the run" from "died at t=0".
    metrics.emplace_back("time_to_first_death_s", m.time_to_first_death);
    metrics.emplace_back("battery_deaths",
                         static_cast<double>(m.battery_deaths));
    metrics.emplace_back("time_to_sink_partition_s",
                         m.time_to_sink_partition);
    metrics.emplace_back("delivered_bits_until_first_death",
                         static_cast<double>(
                             m.delivered_bits_until_first_death));
    metrics.emplace_back("delivered_bits_until_partition",
                         static_cast<double>(
                             m.delivered_bits_until_partition));
    metrics.emplace_back("battery_max_drawn_fraction",
                         m.battery_max_drawn_fraction);
    return metrics;
  };

  app::SweepOptions sweep;
  sweep.replications = runs;
  sweep.base_seed = seed;
  sweep.threads = static_cast<int>(opt.get_int("jobs"));
  const app::SweepRunner runner(sweep);
  stats::ResultSink sink = runner.run(grid, fn);
  for (std::size_t ci = 0; ci < cells.size(); ++ci)
    sink.set_label(grid.index_of({ci}), cells[ci].label);

  stats::print_titled("Lifetime sweep — finite batteries, equal offered load",
                      sink.to_table());

  // The Pareto read: lifetime vs goodput per model. A model dominates
  // when it is up-and-right of another. ttfd < 0 means no node died —
  // report the run duration as a lower bound (">= duration").
  std::printf("\nLifetime vs goodput (Pareto):\n");
  std::printf("  %-22s %12s %9s %14s %8s\n", "cell", "lifetime-s",
              "goodput", "bits@1st-death", "deaths");
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    const std::size_t p = grid.index_of({ci});
    const double ttfd = sink.metric(p, "time_to_first_death_s").mean();
    const double goodput = sink.metric(p, "goodput").mean();
    const double bits =
        sink.metric(p, "delivered_bits_until_first_death").mean();
    const double deaths = sink.metric(p, "battery_deaths").mean();
    char lifetime[32];
    if (ttfd < 0)
      std::snprintf(lifetime, sizeof lifetime, ">=%.0f", duration);
    else
      std::snprintf(lifetime, sizeof lifetime, "%.1f", ttfd);
    std::printf("  %-22s %12s %9.3f %14.0f %8.1f\n", cells[ci].label,
                lifetime, goodput, bits, deaths);
  }

  // Run-identity metadata from a config the cells actually ran; the
  // lifetime-routing cell's policy keys describe only itself, as its
  // label says.
  sink.set_meta("meta_variant", "lifetime-mh/dual");
  set_scenario_meta(sink,
                    app::ScenarioRegistry::builtin().make(
                        "lifetime-mh/dual", scenario_point(0, cells.back())),
                    seed);
  export_json("lifetime", sink);

  const double elapsed_s = ms_since(t_bench) / 1e3;
  std::printf("[wall] %.1f s total\n", elapsed_s);
  const double budget = opt.get_double("budget-s");
  if (budget > 0 && elapsed_s > budget) {
    std::fprintf(stderr,
                 "BUDGET EXCEEDED: %.1f s > %.1f s — investigate the "
                 "battery re-arm path (one event per radio state change) "
                 "or the lifetime-routing rebuild cadence\n",
                 elapsed_s, budget);
    return 2;
  }
  return 0;
}

// Figure 7 — single-hop (SH) case: normalized energy vs average delay at
// 0.2 Kbps. One line per sender count; the points along a line are the
// burst sizes 10/100/500/1000/2500.
//
// Paper claims: burst 500 gives the best energy; burst 100 the better
// energy-delay trade-off; pushing the burst further only adds delay.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bcp;
  using namespace bcp::benchharness;
  SimOptions opt;
  if (!parse_sim_options(argc, argv, "bench_fig07_sh_energy_delay",
                         "Figure 7: SH energy vs delay (0.2 Kbps)", &opt))
    return 1;
  print_energy_delay(
      "fig07_sh_energy_delay",
      "Figure 7 — SH: normalized energy (J/Kbit) vs average delay (s), "
      "0.2 Kbps senders; rows grouped per figure line",
      /*multi_hop=*/false, opt, /*rate_bps=*/200.0);
  return 0;
}

#include "common.hpp"

#include <cstdio>
#include <map>
#include <utility>

#include "util/assert.hpp"

namespace bcp::benchharness {

bool parse_sim_options(int argc, const char* const* argv, const char* name,
                       const char* summary, SimOptions* out) {
  util::Options opt(name, summary);
  opt.add_int("runs", out->runs, "replications per data point")
      .add_double("duration", out->duration, "simulated seconds per run")
      .add_int("seed", 1, "base RNG seed")
      .add_flag("full", "paper scale: 20 runs, sender counts 5,10,...,35");
  if (!opt.parse(argc, argv)) return false;
  out->runs = static_cast<int>(opt.get_int("runs"));
  out->duration = opt.get_double("duration");
  out->seed = static_cast<std::uint64_t>(opt.get_int("seed"));
  if (opt.flag("full")) {
    out->runs = 20;
    out->senders = {5, 10, 15, 20, 25, 30, 35};
  }
  BCP_REQUIRE(out->runs >= 1);
  BCP_REQUIRE(out->duration > 0);
  return true;
}

double metric_of(const app::RunMetrics& m, Metric metric) {
  switch (metric) {
    case Metric::kGoodput:
      return m.goodput;
    case Metric::kNormalizedEnergy:
      return m.normalized_energy;
    case Metric::kNormalizedEnergySensorIdeal:
      return m.normalized_energy_sensor_ideal;
    case Metric::kNormalizedEnergySensorHeader:
      return m.normalized_energy_sensor_header;
    case Metric::kDelay:
      return m.mean_delay;
  }
  return 0;
}

std::vector<Column> dual_columns(const std::vector<int>& bursts,
                                 Metric metric) {
  std::vector<Column> cols;
  for (const int b : bursts)
    cols.push_back(Column{"DualRadio-" + std::to_string(b),
                          app::EvalModel::kDualRadio, b, metric});
  return cols;
}

app::ScenarioConfig make_config(bool multi_hop, app::EvalModel model,
                                int senders, int burst,
                                const SimOptions& opt, double rate_bps) {
  // Burst size is meaningless for the single-radio models (their columns
  // pass 0); any positive value satisfies the scenario contract.
  if (model != app::EvalModel::kDualRadio && burst <= 0) burst = 1;
  app::ScenarioConfig cfg =
      multi_hop ? app::ScenarioConfig::multi_hop(model, senders, burst)
                : app::ScenarioConfig::single_hop(model, senders, burst);
  cfg.duration = opt.duration;
  cfg.seed = opt.seed;
  if (rate_bps > 0) cfg.rate_bps = rate_bps;
  return cfg;
}

namespace {

/// Cache key: one simulated configuration (metric choice is free).
using CellKey = std::pair<int, int>;  // (model as int, burst)

std::vector<app::RunMetrics> run_cell(bool multi_hop, app::EvalModel model,
                                      int senders, int burst,
                                      const SimOptions& opt,
                                      double rate_bps) {
  return app::run_replications(
      make_config(multi_hop, model, senders, burst, opt, rate_bps),
      opt.runs);
}

}  // namespace

void print_sender_sweep(const std::string& title, bool multi_hop,
                        const SimOptions& opt,
                        const std::vector<Column>& columns, double rate_bps) {
  stats::TextTable table;
  std::vector<std::string> header{"senders"};
  for (const auto& c : columns) header.push_back(c.label);
  table.add_row(std::move(header));

  for (const int senders : opt.senders) {
    // One simulation batch per distinct (model, burst), shared by every
    // column that reads a different metric from it.
    std::map<CellKey, std::vector<app::RunMetrics>> cache;
    std::vector<std::string> row{std::to_string(senders)};
    for (const auto& c : columns) {
      const CellKey key{static_cast<int>(c.model),
                        c.model == app::EvalModel::kDualRadio ? c.burst : 0};
      auto it = cache.find(key);
      if (it == cache.end()) {
        it = cache
                 .emplace(key, run_cell(multi_hop, c.model, senders, c.burst,
                                        opt, rate_bps))
                 .first;
      }
      stats::Summary s;
      for (const auto& m : it->second) s.add(metric_of(m, c.metric));
      row.push_back(stats::TextTable::num_ci(s.mean(), s.ci_half_width()));
    }
    table.add_row(std::move(row));
    std::fflush(stdout);
  }
  stats::print_titled(title, table);
}

void print_energy_delay(const std::string& title, bool multi_hop,
                        const SimOptions& opt, double rate_bps) {
  stats::TextTable table;
  table.add_row({"senders", "burst", "delay_s", "energy_J_per_Kbit"});
  for (const int senders : opt.senders) {
    for (const int burst : opt.bursts) {
      const auto runs = run_cell(multi_hop, app::EvalModel::kDualRadio,
                                 senders, burst, opt, rate_bps);
      stats::Summary delay, energy;
      for (const auto& m : runs) {
        delay.add(m.mean_delay);
        energy.add(m.normalized_energy);
      }
      table.add_row({std::to_string(senders), std::to_string(burst),
                     stats::TextTable::num_ci(delay.mean(),
                                              delay.ci_half_width()),
                     stats::TextTable::num_ci(energy.mean(),
                                              energy.ci_half_width())});
    }
  }
  stats::print_titled(title, table);
}

}  // namespace bcp::benchharness

#include "common.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "util/assert.hpp"

namespace bcp::benchharness {

bool parse_sim_options(int argc, const char* const* argv, const char* name,
                       const char* summary, SimOptions* out) {
  util::Options opt(name, summary);
  opt.add_int("runs", out->runs, "replications per data point")
      .add_double("duration", out->duration, "simulated seconds per run")
      .add_int("seed", 1, "base RNG seed")
      .add_int("jobs", 0, "sweep worker threads (0 = all hardware cores)")
      .add_flag("full", "paper scale: 20 runs, sender counts 5,10,...,35");
  if (!opt.parse(argc, argv)) return false;
  out->runs = static_cast<int>(opt.get_int("runs"));
  out->duration = opt.get_double("duration");
  out->seed = static_cast<std::uint64_t>(opt.get_int("seed"));
  out->jobs = static_cast<int>(opt.get_int("jobs"));
  if (opt.flag("full")) {
    out->runs = 20;
    out->senders = {5, 10, 15, 20, 25, 30, 35};
  }
  BCP_REQUIRE(out->runs >= 1);
  BCP_REQUIRE(out->duration > 0);
  BCP_REQUIRE(out->jobs >= 0);
  return true;
}

app::SweepOptions sweep_options(const SimOptions& opt) {
  app::SweepOptions so;
  so.replications = opt.runs;
  so.base_seed = opt.seed;
  so.threads = opt.jobs;
  return so;
}

const char* metric_name(Metric metric) {
  switch (metric) {
    case Metric::kGoodput:
      return "goodput";
    case Metric::kNormalizedEnergy:
      return "normalized_energy";
    case Metric::kNormalizedEnergySensorIdeal:
      return "normalized_energy_sensor_ideal";
    case Metric::kNormalizedEnergySensorHeader:
      return "normalized_energy_sensor_header";
    case Metric::kDelay:
      return "mean_delay_s";
  }
  return "?";
}

std::vector<Column> dual_columns(const std::vector<int>& bursts,
                                 Metric metric) {
  std::vector<Column> cols;
  for (const int b : bursts)
    cols.push_back(Column{"DualRadio-" + std::to_string(b),
                          app::EvalModel::kDualRadio, b, metric});
  return cols;
}

void export_json(const std::string& bench_name,
                 const stats::ResultSink& sink) {
  const std::string path = "BENCH_" + bench_name + ".json";
  if (sink.write_json(bench_name, path))
    std::printf("[json] %s\n", path.c_str());
}

void set_scenario_meta(stats::ResultSink& sink,
                       const app::ScenarioConfig& config,
                       std::uint64_t base_seed) {
  sink.set_meta("topology", net::to_string(config.topology.kind));
  sink.set_meta("node_count",
                static_cast<double>(config.topology.node_count()));
  sink.set_meta("seed", static_cast<double>(base_seed));
  // Channel-model and fault-plan identity — emitted only when the run
  // departs from the default (UnitDisc, no faults), so the historical
  // fig01–fig12/table1 exports stay byte-identical.
  if (!config.propagation.is_unit_disc()) {
    sink.set_meta("propagation",
                  phy::to_string(config.propagation.resolved()));
    if (config.propagation.resolved() ==
        phy::PropagationKind::kLogDistance) {
      sink.set_meta("path_loss_exponent",
                    config.propagation.path_loss_exponent);
      sink.set_meta("shadowing_sigma_db",
                    config.propagation.shadowing_sigma_db);
      sink.set_meta("fade_margin_db", config.propagation.fade_margin_db);
      sink.set_meta("per_transition_db",
                    config.propagation.per_transition_db);
    } else {
      // kDistancePer: the curve IS the model — serialize every knot so
      // the run can be regenerated from the meta alone.
      const auto& curve = config.propagation.per_curve.empty()
                              ? phy::kDefaultPerCurve()
                              : config.propagation.per_curve;
      std::string knots;
      for (const auto& point : curve) {
        if (!knots.empty()) knots += " ";
        knots += std::to_string(point.distance_fraction) + ":" +
                 std::to_string(point.per);
      }
      sink.set_meta("per_curve", knots);
    }
  }
  // Capture (SINR) identity — again only when the run departs from the
  // default-off switch, so every historical export stays byte-identical.
  if (config.capture_enabled) {
    sink.set_meta("capture_threshold_db", config.capture_threshold_db);
    sink.set_meta("sensor_noise_floor_dbm",
                  config.sensor_radio.noise_floor_dbm);
    sink.set_meta("wifi_noise_floor_dbm", config.wifi_radio.noise_floor_dbm);
  }
  // MAC-family identity — only when a radio class departs from the kAuto
  // (historical CSMA/CA) default, keeping every CSMA export byte-identical.
  const auto mac_meta = [&sink](const char* radio, const mac::MacSpec& spec) {
    if (spec.family == mac::MacFamily::kAuto) return;
    sink.set_meta(std::string(radio) + "_mac", mac::to_string(spec.family));
    if (!spec.is_tdma()) return;
    // Zeros mean "class defaults" (resolved per-run against the schedule);
    // emit them as-is so the spec is reproducible from the meta.
    sink.set_meta(std::string(radio) + "_tdma_slot_s", spec.tdma.slot_len);
    sink.set_meta(std::string(radio) + "_tdma_guard_s", spec.tdma.guard);
    sink.set_meta(std::string(radio) + "_tdma_beacon_period_s",
                  spec.tdma.beacon_period);
    sink.set_meta(std::string(radio) + "_tdma_sync_drift",
                  spec.tdma.sync_drift);
  };
  mac_meta("sensor", config.sensor_mac);
  mac_meta("wifi", config.wifi_mac);
  // Sharded-engine identity — only when the run leaves the single-queue
  // default, so every historical export stays byte-identical.
  if (config.shards > 1) {
    sink.set_meta("shards", static_cast<double>(config.shards));
    // The engine refuses a run with more stripes than nodes; benches that
    // sweep node counts clamp per cell instead. Record the stripe count
    // that actually partitioned the plane whenever it differs from the
    // requested one, so the export is honest about what ran.
    const int effective =
        std::min(config.shards, config.topology.node_count());
    if (effective != config.shards)
      sink.set_meta("effective_shards", static_cast<double>(effective));
    sink.set_meta("sim_threads", static_cast<double>(config.sim_threads));
    sink.set_meta("shard_window_s", config.shard_window);
  }
  if (!config.faults.empty()) {
    sink.set_meta("fault_seed", static_cast<double>(config.faults.seed));
    sink.set_meta("fault_crashes",
                  static_cast<double>(config.faults.node_crashes));
    sink.set_meta("fault_mean_downtime_s", config.faults.mean_downtime);
    sink.set_meta("fault_link_flaps",
                  static_cast<double>(config.faults.link_flaps));
    if (config.faults.link_flaps > 0)
      sink.set_meta("fault_mean_link_downtime_s",
                    config.faults.mean_link_downtime);
  }
  // Finite-battery identity — only when the run departs from the
  // infinite-energy default, so every historical export stays
  // byte-identical.
  if (config.battery.enabled) {
    sink.set_meta("battery_sensor_j", config.battery.sensor_initial_j);
    sink.set_meta("battery_wifi_j", config.battery.wifi_initial_j);
    if (config.route_policy != net::RoutePolicy::kShortestPath) {
      sink.set_meta("route_policy", net::to_string(config.route_policy));
      sink.set_meta("lifetime_weight", config.battery.lifetime_weight);
      sink.set_meta("reroute_period_s", config.battery.reroute_period);
    }
  }
}

stats::ResultSink run_grid_bench(const std::string& bench_name,
                                 const std::string& title,
                                 const app::SweepGrid& grid,
                                 const app::SweepFn& fn,
                                 const app::SweepOptions& options) {
  const app::SweepRunner runner(options);
  stats::ResultSink sink = runner.run(grid, fn);
  stats::print_titled(title, sink.to_table());
  export_json(bench_name, sink);
  return sink;
}

namespace {

/// Registry name of one figure column's scenario.
std::string variant_name(bool multi_hop, app::EvalModel model) {
  const std::string prefix = multi_hop ? "mh/" : "sh/";
  switch (model) {
    case app::EvalModel::kSensor:
      return prefix + "sensor";
    case app::EvalModel::kWifi:
      return prefix + "wifi";
    case app::EvalModel::kWifiDutyCycled:
      // The wifi-duty builders require a "duty" axis the figure grids
      // don't carry; sweep it directly (see bench_motivation_sleep_cycling)
      // instead of through a sender-sweep column.
      BCP_REQUIRE_MSG(false,
                      "kWifiDutyCycled is not supported as a figure column");
      break;
    case app::EvalModel::kDualRadio:
      return prefix + "dual";
  }
  return prefix + "?";
}

/// A distinct simulated configuration; columns reading different metrics
/// off the same (model, burst) share one cell.
struct Cell {
  std::string variant;
  int burst;  // 0 for the single-radio models
};

/// SweepFn for a figure grid with axes ("cell", "senders"): decodes the
/// cell, synthesizes the registry point, runs the scenario.
app::SweepFn cell_sweep_fn(std::vector<Cell> cells, double rate_bps,
                           double duration) {
  return [cells = std::move(cells), rate_bps,
          duration](const app::SweepJob& job) {
    const auto ci = static_cast<std::size_t>(job.point.get_int("cell"));
    BCP_REQUIRE(ci < cells.size());
    const Cell& cell = cells[ci];
    const app::SweepPoint scenario_point(
        job.point.index(),
        {{"senders", job.point.get("senders")},
         {"burst", static_cast<double>(cell.burst > 0 ? cell.burst : 1)},
         {"rate_bps", rate_bps},
         {"duration", duration}});
    app::ScenarioConfig cfg =
        app::ScenarioRegistry::builtin().make(cell.variant, scenario_point);
    cfg.seed = job.seed;
    return app::standard_metrics(app::run_scenario(cfg));
  };
}

}  // namespace

void print_sender_sweep(const std::string& bench_name,
                        const std::string& title, bool multi_hop,
                        const SimOptions& opt,
                        const std::vector<Column>& columns,
                        double rate_bps) {
  // Distinct cells in column order; remember each column's cell index.
  std::vector<Cell> cells;
  std::vector<std::size_t> column_cell(columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) {
    const Cell cell{
        variant_name(multi_hop, columns[c].model),
        columns[c].model == app::EvalModel::kDualRadio ? columns[c].burst
                                                       : 0};
    std::size_t ci = 0;
    while (ci < cells.size() && (cells[ci].variant != cell.variant ||
                                 cells[ci].burst != cell.burst))
      ++ci;
    if (ci == cells.size()) cells.push_back(cell);
    column_cell[c] = ci;
  }

  app::SweepGrid grid;
  std::vector<int> cell_ids(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i)
    cell_ids[i] = static_cast<int>(i);
  grid.axis_ints("cell", cell_ids).axis_ints("senders", opt.senders);

  const app::SweepRunner runner(sweep_options(opt));
  stats::ResultSink sink =
      runner.run(grid, cell_sweep_fn(cells, rate_bps, opt.duration));

  for (std::size_t ci = 0; ci < cells.size(); ++ci)
    for (std::size_t si = 0; si < opt.senders.size(); ++si) {
      std::string label = cells[ci].variant;
      if (cells[ci].burst > 0)
        label += "-" + std::to_string(cells[ci].burst);
      sink.set_label(grid.index_of({ci, si}), label);
    }

  // Pivot to the paper's shape: rows = sender counts, one column per spec.
  stats::TextTable table;
  std::vector<std::string> header{"senders"};
  for (const auto& c : columns) header.push_back(c.label);
  table.add_row(std::move(header));
  for (std::size_t si = 0; si < opt.senders.size(); ++si) {
    std::vector<std::string> row{std::to_string(opt.senders[si])};
    for (std::size_t c = 0; c < columns.size(); ++c) {
      const stats::Summary& s =
          sink.metric(grid.index_of({column_cell[c], si}),
                      metric_name(columns[c].metric));
      row.push_back(stats::TextTable::num_ci(s.mean(), s.ci_half_width()));
    }
    table.add_row(std::move(row));
  }
  stats::print_titled(title, table);
  // Rebuild one cell's config (no simulation) to read the placement the
  // whole figure ran on.
  const app::SweepPoint meta_point(
      0, {{"senders", static_cast<double>(opt.senders.front())},
          {"burst", static_cast<double>(
               cells.front().burst > 0 ? cells.front().burst : 1)},
          {"rate_bps", rate_bps},
          {"duration", opt.duration}});
  set_scenario_meta(sink,
                    app::ScenarioRegistry::builtin().make(
                        cells.front().variant, meta_point),
                    opt.seed);
  export_json(bench_name, sink);
}

void print_energy_delay(const std::string& bench_name,
                        const std::string& title, bool multi_hop,
                        const SimOptions& opt, double rate_bps) {
  app::SweepGrid grid;
  grid.axis_ints("senders", opt.senders).axis_ints("bursts", opt.bursts);

  const std::string variant = multi_hop ? "mh/dual" : "sh/dual";
  const double duration = opt.duration;
  const app::SweepFn fn = [variant, rate_bps,
                           duration](const app::SweepJob& job) {
    const app::SweepPoint scenario_point(
        job.point.index(), {{"senders", job.point.get("senders")},
                            {"burst", job.point.get("bursts")},
                            {"rate_bps", rate_bps},
                            {"duration", duration}});
    app::ScenarioConfig cfg =
        app::ScenarioRegistry::builtin().make(variant, scenario_point);
    cfg.seed = job.seed;
    return app::standard_metrics(app::run_scenario(cfg));
  };

  const app::SweepRunner runner(sweep_options(opt));
  stats::ResultSink sink = runner.run(grid, fn);

  stats::TextTable table;
  table.add_row({"senders", "burst", "delay_s", "energy_J_per_Kbit"});
  for (std::size_t si = 0; si < opt.senders.size(); ++si)
    for (std::size_t bi = 0; bi < opt.bursts.size(); ++bi) {
      const std::size_t idx = grid.index_of({si, bi});
      const stats::Summary& delay = sink.metric(idx, "mean_delay_s");
      const stats::Summary& energy = sink.metric(idx, "normalized_energy");
      table.add_row(
          {std::to_string(opt.senders[si]), std::to_string(opt.bursts[bi]),
           stats::TextTable::num_ci(delay.mean(), delay.ci_half_width()),
           stats::TextTable::num_ci(energy.mean(),
                                    energy.ci_half_width())});
    }
  stats::print_titled(title, table);
  const app::SweepPoint meta_point(
      0, {{"senders", static_cast<double>(opt.senders.front())},
          {"burst", static_cast<double>(opt.bursts.front())},
          {"rate_bps", rate_bps},
          {"duration", duration}});
  set_scenario_meta(
      sink, app::ScenarioRegistry::builtin().make(variant, meta_point),
      opt.seed);
  export_json(bench_name, sink);
}

}  // namespace bcp::benchharness

// Scale sweep — the large-network path: topology build, connectivity
// build (spatial hash) and convergecast-routing build timed from 36 to
// 2500 nodes across the placement generators, plus a short dual-radio
// simulation point per grid size, so the scale trajectory is measurable
// run over run and an accidental O(n²) regression shows up as a blown
// wall-clock budget (--budget-s, used by the CI smoke step).
//
// Placements keep the paper grid's density (40 m spacing = sensor range)
// for the grid and line generators; random and clustered placements get
// the area that keeps the disc graph connected with high probability
// (mean degree ~ ln n + 4), with the placement seed auto-advanced to a
// sink-connected draw.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "util/options.hpp"
#include "util/sysinfo.hpp"

namespace {

using namespace bcp;

constexpr double kSensorRange = 40.0;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// The placement each (generator, node-count) cell runs on.
net::TopologySpec make_spec(net::TopologyKind kind, int nodes,
                            std::uint64_t seed) {
  net::TopologySpec spec;
  spec.kind = kind;
  spec.nodes = nodes;
  spec.seed = seed;
  switch (kind) {
    case net::TopologyKind::kGrid: {
      const int side =
          static_cast<int>(std::lround(std::sqrt(static_cast<double>(nodes))));
      spec.grid_side = side;
      spec.area = kSensorRange * (side - 1);
      break;
    }
    case net::TopologyKind::kUniformRandom:
    case net::TopologyKind::kGaussianClusters: {
      // Area keeping mean disc degree at ~ln n + 4, the classic random
      // geometric graph connectivity threshold plus slack.
      const double degree = std::log(static_cast<double>(nodes)) + 4.0;
      spec.area = std::sqrt(nodes * 3.14159265358979323846 * kSensorRange *
                            kSensorRange / degree);
      spec.clusters = std::max(4, nodes / 64);
      spec.cluster_spread = spec.area / (2.0 * std::sqrt(spec.clusters));
      break;
    }
    case net::TopologyKind::kLineCorridor:
      // 30 m spacing + 20 m width keeps every chain link under the 40 m
      // sensor range, so the corridor is connected by construction.
      spec.area = 30.0 * (nodes - 1);
      spec.corridor_width = 20.0;
      break;
    case net::TopologyKind::kRing:
      spec.area = 2.0 * kSensorRange * nodes / 6.28318530717958647692;
      break;
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bcp::benchharness;
  util::Options opt("bench_scale_nodes",
                    "topology/routing build + dual-radio simulation, 36 to "
                    "2500 nodes across placement generators");
  opt.add_int("max-nodes", 2500, "largest node count to sweep")
      .add_double("duration", 20.0, "simulated seconds per scenario point")
      .add_int("senders", 10, "CBR senders per scenario point")
      .add_int("burst", 50, "dual-radio burst threshold in 32 B packets")
      .add_int("seed", 1, "base seed")
      .add_int("jobs", 0, "sweep worker threads (0 = all hardware cores)")
      .add_double("budget-s", 0,
                  "fail (exit 2) if the whole sweep exceeds this wall "
                  "clock; 0 disables")
      .add_double("min-events-per-sec", 0,
                  "fail (exit 2) if the largest grid point's simulation "
                  "dispatches fewer events/sec; 0 disables (CI tripwire, "
                  "set a generous floor)")
      .add_int("headline-nodes", 0,
               "run one sharded dual-radio simulation on a grid of this "
               "many nodes (the 100k headline cell; 0 disables) and report "
               "events/sec + peak RSS")
      .add_int("headline-shards", 8, "shard count for the headline cell")
      .add_double("headline-duration", 5.0,
                  "simulated seconds for the headline cell")
      .add_double("headline-min-events-per-sec", 0,
                  "fail (exit 2) if the headline cell dispatches fewer "
                  "events/sec (wall clock includes scenario construction); "
                  "0 disables")
      .add_double("max-rss-mib", 0,
                  "fail (exit 2) if peak RSS after the headline cell "
                  "exceeds this many MiB — the O(n/shards + halo) "
                  "partition-memory tripwire; 0 disables")
      .add_int("compare-shards", 0,
               "re-run the largest grid point single-queue vs this many "
               "shards (sim_threads auto) and report the wall-clock "
               "speedup plus a thread-count determinism check; 0 disables");
  if (!opt.parse(argc, argv)) return 1;
  const auto t_bench = std::chrono::steady_clock::now();
  const int max_nodes = static_cast<int>(opt.get_int("max-nodes"));
  const double duration = opt.get_double("duration");
  const int senders = static_cast<int>(opt.get_int("senders"));
  const int burst = static_cast<int>(opt.get_int("burst"));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed"));

  const std::vector<net::TopologyKind> generators = {
      net::TopologyKind::kGrid, net::TopologyKind::kUniformRandom,
      net::TopologyKind::kGaussianClusters, net::TopologyKind::kLineCorridor};
  std::vector<int> sizes;
  for (const int n : {36, 100, 225, 400, 900, 1600, 2500})
    if (n <= max_nodes) sizes.push_back(n);
  if (sizes.empty()) sizes.push_back(36);

  app::SweepGrid grid;
  std::vector<int> gen_ids;
  for (std::size_t i = 0; i < generators.size(); ++i)
    gen_ids.push_back(static_cast<int>(i));
  grid.axis_ints("gen", gen_ids).axis_ints("nodes", sizes);

  const app::SweepFn fn = [&](const app::SweepJob& job) {
    const net::TopologyKind kind =
        generators[static_cast<std::size_t>(job.point.get_int("gen"))];
    const int nodes = job.point.get_int("nodes");

    auto t0 = std::chrono::steady_clock::now();
    net::TopologySpec spec = make_spec(kind, nodes, seed);
    // Grid/line are connected by construction and random placements are
    // drawn at a connected density; clustered placements fragment into
    // islands at scale (realistically so), so their cells time the builds
    // and report depth over the sink's component.
    if (kind == net::TopologyKind::kUniformRandom)
      spec = net::first_connected(spec, kSensorRange, /*max_tries=*/256);
    const net::Topology topo = spec.build();
    const double topo_ms = ms_since(t0);

    t0 = std::chrono::steady_clock::now();
    const net::ConnectivityGraph graph(topo.positions, kSensorRange);
    const double graph_ms = ms_since(t0);

    t0 = std::chrono::steady_clock::now();
    const net::ConvergecastRouting routes(graph, topo.sink);
    const double routing_ms = ms_since(t0);

    double edges = 0;
    for (net::NodeId id = 0; id < graph.node_count(); ++id)
      edges += static_cast<double>(graph.neighbors(id).size());
    // Cluster placements may strand even the sink's own island; report -1
    // rather than letting mean_depth() throw and abort the sweep.
    const std::size_t stranded = routes.stranded().size();
    const double mean_depth =
        stranded + 1 < static_cast<std::size_t>(nodes) ? routes.mean_depth()
                                                       : -1.0;

    // One short single-hop dual-radio point per grid size — the grid is
    // connected by construction at every n, so the simulation leg always
    // runs (and exercises the convergecast path above the all-pairs
    // limit).
    double sim_ms = 0;
    double delivered = 0;
    double goodput = 0;
    double events = 0;
    double events_per_sec = 0;
    double lossy_sim_ms = 0;
    double lossy_delivered = 0;
    double lossy_goodput = 0;
    if (kind == net::TopologyKind::kGrid) {
      app::ScenarioConfig cfg = app::ScenarioConfig::single_hop(
          app::EvalModel::kDualRadio, std::min(senders, nodes - 1), burst);
      cfg.topology = spec;
      cfg.rate_bps = 2000.0;
      cfg.duration = duration;
      cfg.seed = job.seed;
      t0 = std::chrono::steady_clock::now();
      const app::RunMetrics m = app::run_scenario(cfg);
      sim_ms = ms_since(t0);
      delivered = static_cast<double>(m.delivered);
      goodput = m.goodput;
      // Hot-path throughput: dispatched simulator events per wall second
      // (event counts are deterministic; the wall clock is this machine's).
      events = static_cast<double>(m.events_processed);
      if (sim_ms > 0) events_per_sec = events / (sim_ms / 1e3);

      // The lossy slice: the same point under log-distance + shadowing
      // per-link PER, so the scale trajectory of the realistic channel
      // (and any per-link-table cost at 2500 nodes) is measured run over
      // run next to the idealized one.
      cfg.propagation.kind = phy::PropagationKind::kLogDistance;
      t0 = std::chrono::steady_clock::now();
      const app::RunMetrics lossy = app::run_scenario(cfg);
      lossy_sim_ms = ms_since(t0);
      lossy_delivered = static_cast<double>(lossy.delivered);
      lossy_goodput = lossy.goodput;
    }

    return stats::ResultSink::Metrics{
        {"topo_build_ms", topo_ms},
        {"graph_build_ms", graph_ms},
        {"routing_build_ms", routing_ms},
        {"mean_degree", edges / nodes},
        {"mean_depth", mean_depth},
        {"sim_wall_ms", sim_ms},
        {"delivered", delivered},
        {"goodput", goodput},
        {"events", events},
        {"events_per_sec", events_per_sec},
        {"lossy_sim_wall_ms", lossy_sim_ms},
        {"lossy_delivered", lossy_delivered},
        {"lossy_goodput", lossy_goodput},
    };
  };

  app::SweepOptions sweep;
  sweep.replications = 1;
  sweep.base_seed = seed;
  sweep.threads = static_cast<int>(opt.get_int("jobs"));
  const app::SweepRunner runner(sweep);
  stats::ResultSink sink = runner.run(grid, fn);
  for (std::size_t gi = 0; gi < generators.size(); ++gi)
    for (std::size_t si = 0; si < sizes.size(); ++si)
      sink.set_label(grid.index_of({gi, si}),
                     std::string(net::to_string(generators[gi])) + "-" +
                         std::to_string(sizes[si]));

  stats::print_titled(
      "Scale sweep — build + routing + dual-radio simulation vs node count",
      sink.to_table());
  // The largest grid point is the headline hot-path number (and the CI
  // tripwire): its simulation leg always runs and its event count is
  // deterministic.
  const std::size_t top_grid = grid.index_of({0, sizes.size() - 1});
  const double top_events_per_sec =
      sink.metric(top_grid, "events_per_sec").mean();
  sink.set_meta("topology", "grid+rand+cluster+line");
  sink.set_meta("node_count", static_cast<double>(sizes.back()));
  sink.set_meta("seed", static_cast<double>(seed));
  sink.set_meta("events_per_sec", top_events_per_sec);
  sink.set_meta("lossy_propagation",
                to_string(phy::PropagationKind::kLogDistance));

  // ---- Sharded-vs-single comparison on the largest grid point ------------
  // Same scenario three ways: single queue, sharded with auto threads, and
  // sharded with one inline thread. The last two must agree bit-for-bit
  // (the engine's determinism contract — exit 2 if they don't); the first
  // two give the wall-clock speedup on this machine's cores.
  const int compare_shards = static_cast<int>(opt.get_int("compare-shards"));
  bool determinism_ok = true;
  if (compare_shards > 1) {
    app::ScenarioConfig cfg = app::ScenarioConfig::single_hop(
        app::EvalModel::kDualRadio, std::min(senders, sizes.back() - 1),
        burst);
    cfg.topology = make_spec(net::TopologyKind::kGrid, sizes.back(), seed);
    cfg.rate_bps = 2000.0;
    cfg.duration = duration;
    cfg.seed = seed;
    auto t0 = std::chrono::steady_clock::now();
    const app::RunMetrics single = app::run_scenario(cfg);
    const double single_ms = ms_since(t0);
    cfg.shards = compare_shards;
    cfg.sim_threads = 0;  // auto
    t0 = std::chrono::steady_clock::now();
    const app::RunMetrics sharded = app::run_scenario(cfg);
    const double sharded_ms = ms_since(t0);
    cfg.sim_threads = 1;
    const app::RunMetrics inline_run = app::run_scenario(cfg);
    determinism_ok =
        sharded.delivered == inline_run.delivered &&
        sharded.generated == inline_run.generated &&
        sharded.events_processed == inline_run.events_processed &&
        sharded.boundary_frames == inline_run.boundary_frames &&
        sharded.goodput == inline_run.goodput &&
        sharded.mean_delay == inline_run.mean_delay &&
        sharded.normalized_energy == inline_run.normalized_energy &&
        sharded.shard_events == inline_run.shard_events;
    const double speedup = sharded_ms > 0 ? single_ms / sharded_ms : 0;
    std::printf(
        "[compare] grid-%d dual-radio: single %.0f ms (%d delivered), "
        "%d shards %.0f ms (%d delivered, %lld boundary frames) — "
        "%.2fx, thread-count determinism %s\n",
        sizes.back(), single_ms, static_cast<int>(single.delivered),
        compare_shards, sharded_ms, static_cast<int>(sharded.delivered),
        static_cast<long long>(sharded.boundary_frames), speedup,
        determinism_ok ? "OK" : "BROKEN");
    sink.set_meta("compare_shards", static_cast<double>(compare_shards));
    sink.set_meta("compare_single_ms", single_ms);
    sink.set_meta("compare_sharded_ms", sharded_ms);
    sink.set_meta("compare_speedup", speedup);
  }

  // ---- Headline cell: one sharded simulation at 100k+ nodes --------------
  const int headline_nodes = static_cast<int>(opt.get_int("headline-nodes"));
  double headline_events_per_sec = 0;
  double headline_rss_mib = 0;
  if (headline_nodes > 0) {
    const int headline_shards =
        static_cast<int>(opt.get_int("headline-shards"));
    const int headline_senders =
        std::max(10, std::min(headline_nodes / 1000, headline_nodes - 1));
    // Burst threshold 10 (not --burst): a sender fills a burst every
    // 1.28 s at 2 Kbps, so even a 5 s headline run drives several full
    // wake-up/transfer cycles per sender instead of idling.
    app::ScenarioConfig cfg = app::ScenarioConfig::single_hop(
        app::EvalModel::kDualRadio, headline_senders, /*burst_packets=*/10);
    cfg.topology =
        make_spec(net::TopologyKind::kGrid, headline_nodes, seed);
    cfg.rate_bps = 2000.0;
    cfg.duration = opt.get_double("headline-duration");
    cfg.seed = seed;
    cfg.shards = headline_shards;
    cfg.sim_threads = 0;  // auto
    const auto t0 = std::chrono::steady_clock::now();
    const app::RunMetrics m = app::run_scenario(cfg);
    const double wall_ms = ms_since(t0);
    if (wall_ms > 0)
      headline_events_per_sec =
          static_cast<double>(m.events_processed) / (wall_ms / 1e3);
    const double rss = util::peak_rss_mib();
    headline_rss_mib = rss;
    std::printf(
        "[headline] %d nodes, %d shards, %.1f s simulated: %.0f ms wall, "
        "%llu events (%.0f events/sec), %lld boundary frames, %d delivered, "
        "peak RSS %.0f MiB\n",
        headline_nodes, headline_shards, cfg.duration, wall_ms,
        static_cast<unsigned long long>(m.events_processed),
        headline_events_per_sec, static_cast<long long>(m.boundary_frames),
        static_cast<int>(m.delivered), rss);
    std::printf("[headline] per-shard events:");
    for (std::size_t s = 0; s < m.shard_events.size(); ++s)
      std::printf(" %llu",
                  static_cast<unsigned long long>(m.shard_events[s]));
    std::printf("\n");
    sink.set_meta("headline_nodes", static_cast<double>(headline_nodes));
    sink.set_meta("headline_shards", static_cast<double>(headline_shards));
    sink.set_meta("headline_events_per_sec", headline_events_per_sec);
    sink.set_meta("headline_wall_ms", wall_ms);
    sink.set_meta("headline_peak_rss_mib", rss);
  }
  export_json("scale_nodes", sink);

  const double elapsed_s = ms_since(t_bench) / 1e3;
  std::printf("[wall] %.1f s total\n", elapsed_s);
  std::printf("[events/sec] %.0f at grid-%d\n", top_events_per_sec,
              sizes.back());
  const double budget = opt.get_double("budget-s");
  if (budget > 0 && elapsed_s > budget) {
    std::fprintf(stderr,
                 "BUDGET EXCEEDED: %.1f s > %.1f s — investigate a "
                 "super-linear regression in topology/graph/routing "
                 "build or the simulation hot path\n",
                 elapsed_s, budget);
    return 2;
  }
  const double floor = opt.get_double("min-events-per-sec");
  if (floor > 0 && top_events_per_sec < floor) {
    std::fprintf(stderr,
                 "EVENTS/SEC FLOOR MISSED: %.0f < %.0f at grid-%d — the "
                 "event/frame hot path regressed (allocations per event, "
                 "payload copies, or queue churn)\n",
                 top_events_per_sec, floor, sizes.back());
    return 2;
  }
  const double headline_floor = opt.get_double("headline-min-events-per-sec");
  if (headline_floor > 0 && headline_nodes > 0 &&
      headline_events_per_sec < headline_floor) {
    std::fprintf(stderr,
                 "EVENTS/SEC FLOOR MISSED: %.0f < %.0f at the %d-node "
                 "headline cell — the sharded engine (window barriers, "
                 "mailbox exchange, or the per-shard hot path) or scenario "
                 "construction at scale regressed\n",
                 headline_events_per_sec, headline_floor, headline_nodes);
    return 2;
  }
  const double rss_budget = opt.get_double("max-rss-mib");
  if (rss_budget > 0 && headline_nodes > 0 &&
      headline_rss_mib > rss_budget) {
    std::fprintf(stderr,
                 "RSS BUDGET EXCEEDED: %.0f MiB > %.0f MiB after the "
                 "%d-node headline cell — a per-partition structure is "
                 "sized by the global population again (stripe-local "
                 "node state, halo growth, or a drain buffer retaining "
                 "its high-water capacity)\n",
                 headline_rss_mib, rss_budget, headline_nodes);
    return 2;
  }
  if (!determinism_ok) {
    std::fprintf(stderr,
                 "DETERMINISM BROKEN: sharded metrics differ across "
                 "sim_threads at a fixed shard count — a cross-shard "
                 "ordering or thread-affinity bug in the parallel engine\n");
    return 2;
  }
  return 0;
}

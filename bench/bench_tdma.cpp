// TDMA MAC-family bench — what the sink-coordinated slot schedule buys
// (and costs) against CSMA/CA, measured as paired cells that differ ONLY
// in the MacSpec family on the data radio:
//
//   sh/sensor vs tdma-sh/sensor   Mica convergecast, 0.2 Kbps senders
//   mh/sensor vs tdma-mh/sensor   same tree, 2 Kbps senders (overload:
//                                 the slot schedule caps per-node rate)
//   mh/wifi   vs tdma-mh/wifi     always-on 802.11, one hop to the sink
//
// Each pair runs at two sender densities, so the table reads goodput and
// energy-per-delivered-Kbit vs density and load. CSMA pays link acks plus
// collision retries on every hop; TDMA pays the beacon tax and caps
// throughput at one frame per slot — the dense sensor cells are where
// collision-free slotting wins on J/Kbit. One table row per (cell,
// senders) plus TDMA schedule-health counters, then per-pair goodput and
// energy deltas. Writes BENCH_tdma.json; its meta block records the
// resolved family and slot/guard/beacon/drift knobs (emitted only for
// non-kAuto runs — the conditional-meta contract).
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace bcp;
  using namespace bcp::benchharness;
  util::Options opt("bench_tdma",
                    "goodput and energy, CSMA/CA vs sink-coordinated TDMA");
  opt.add_int("runs", 2, "replications per cell")
      .add_double("duration", 600.0, "simulated seconds per run")
      .add_double("slot-ms", 0.0, "TDMA slot length override (0 = default)")
      .add_double("guard-ms", 0.0, "TDMA guard override (0 = default)")
      .add_double("drift-ppm", -1.0, "TDMA sync drift override (<0 = default)")
      .add_int("seed", 1, "base RNG seed")
      .add_int("jobs", 0, "sweep worker threads (0 = all hardware cores)");
  if (!opt.parse(argc, argv)) return 1;
  const int runs = static_cast<int>(opt.get_int("runs"));
  const double duration = opt.get_double("duration");
  const double slot_ms = opt.get_double("slot-ms");
  const double guard_ms = opt.get_double("guard-ms");
  const double drift_ppm = opt.get_double("drift-ppm");
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed"));

  // Registry variant per cell, doubling as its label. Paired (CSMA, TDMA)
  // order: cell 2k is the baseline of cell 2k+1, which the delta report
  // below relies on.
  const std::vector<const char*> cells = {
      "sh/sensor", "tdma-sh/sensor",
      "mh/sensor", "tdma-mh/sensor",
      "mh/wifi",   "tdma-mh/wifi",
  };
  const std::vector<int> senders = {10, 25};

  app::SweepGrid grid;
  std::vector<int> cell_ids;
  for (std::size_t i = 0; i < cells.size(); ++i)
    cell_ids.push_back(static_cast<int>(i));
  grid.axis_ints("cell", cell_ids).axis_ints("senders", senders);

  // The TDMA knob overrides ride into the tdma-* builders as sweep axes;
  // the CSMA cells ignore them.
  const auto scenario_point = [&](std::size_t index, double n_senders) {
    std::vector<std::pair<std::string, double>> axes = {
        {"senders", n_senders}, {"duration", duration}};
    if (slot_ms > 0) axes.emplace_back("slot_ms", slot_ms);
    if (guard_ms > 0) axes.emplace_back("guard_ms", guard_ms);
    if (drift_ppm >= 0) axes.emplace_back("drift_ppm", drift_ppm);
    return app::SweepPoint(index, std::move(axes));
  };

  const app::SweepFn fn = [&](const app::SweepJob& job) {
    const char* variant =
        cells[static_cast<std::size_t>(job.point.get_int("cell"))];
    app::ScenarioConfig cfg = app::ScenarioRegistry::builtin().make(
        variant, scenario_point(job.point.index(), job.point.get("senders")));
    cfg.seed = job.seed;
    const app::RunMetrics m = app::run_scenario(cfg);
    stats::ResultSink::Metrics metrics = app::standard_metrics(m);
    metrics.emplace_back("tdma_beacons_sent",
                         static_cast<double>(m.tdma_beacons_sent));
    metrics.emplace_back("tdma_beacons_heard",
                         static_cast<double>(m.tdma_beacons_heard));
    metrics.emplace_back("tdma_slots_skipped",
                         static_cast<double>(m.tdma_slots_skipped));
    return metrics;
  };

  app::SweepOptions sweep;
  sweep.replications = runs;
  sweep.base_seed = seed;
  sweep.threads = static_cast<int>(opt.get_int("jobs"));
  const app::SweepRunner runner(sweep);
  stats::ResultSink sink = runner.run(grid, fn);
  for (std::size_t ci = 0; ci < cells.size(); ++ci)
    for (std::size_t si = 0; si < senders.size(); ++si)
      sink.set_label(grid.index_of({ci, si}),
                     std::string(cells[ci]) + "@" +
                         std::to_string(senders[si]));

  stats::print_titled("TDMA sweep — CSMA/CA vs sink-coordinated slotting",
                      sink.to_table());

  std::printf("\nCSMA -> TDMA per cell:\n");
  std::printf("  %-14s %7s  %-24s %s\n", "cell", "senders",
              "goodput", "energy J/Kbit");
  for (std::size_t p = 0; p + 1 < cells.size(); p += 2)
    for (std::size_t si = 0; si < senders.size(); ++si) {
      const std::size_t csma = grid.index_of({p, si});
      const std::size_t tdma = grid.index_of({p + 1, si});
      const double g0 = sink.metric(csma, "goodput").mean();
      const double g1 = sink.metric(tdma, "goodput").mean();
      const double e0 = sink.metric(csma, "normalized_energy").mean();
      const double e1 = sink.metric(tdma, "normalized_energy").mean();
      std::printf("  %-14s %7d  %.3f -> %.3f (%+.1f%%)  %.3f -> %.3f (%+.1f%%)\n",
                  cells[p], senders[si], g0, g1,
                  g0 > 0 ? 100.0 * (g1 - g0) / g0 : 0.0, e0, e1,
                  e0 > 0 ? 100.0 * (e1 - e0) / e0 : 0.0);
    }

  // Run-identity metadata from a config the TDMA cells actually ran: the
  // family and slot/guard/beacon/drift knobs (conditional keys). The meta
  // block is file-level, so `meta_variant` names the cell these identity
  // keys describe — the CSMA half of every pair ran the kAuto default, as
  // the cell labels say.
  sink.set_meta("meta_variant", "tdma-mh/sensor");
  set_scenario_meta(sink,
                    app::ScenarioRegistry::builtin().make(
                        "tdma-mh/sensor",
                        scenario_point(0, senders.front())),
                    seed);
  export_json("tdma", sink);
  return 0;
}

// Figure 6 — single-hop (SH) case: normalized energy (J/Kbit) vs senders.
//
// Paper claims: at burst 500 the dual-radio model is ~4-5x better than the
// (header-overhearing) sensor model and approaches the sensor model's
// *ideal* (tx+rx-only) energy; DualRadio-10 (320 B < 1 KB < s*) saves
// nothing.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bcp;
  using namespace bcp::benchharness;
  SimOptions opt;
  if (!parse_sim_options(argc, argv, "bench_fig06_sh_energy",
                         "Figure 6: SH normalized energy vs senders", &opt))
    return 1;
  auto columns = dual_columns(opt.bursts, Metric::kNormalizedEnergy);
  columns.push_back(Column{"Sensor-ideal", app::EvalModel::kSensor, 0,
                           Metric::kNormalizedEnergySensorIdeal});
  columns.push_back(Column{"Sensor-header", app::EvalModel::kSensor, 0,
                           Metric::kNormalizedEnergySensorHeader});
  print_sender_sweep(
      "fig06_sh_energy",
      "Figure 6 — SH: normalized energy (J/Kbit) vs number of senders",
      /*multi_hop=*/false, opt, columns, /*rate_bps=*/0);
  return 0;
}

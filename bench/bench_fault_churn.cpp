// Fault/churn bench — how the paper's break-even story holds up once the
// idealized channel and the static always-alive network are taken away:
//
//   * baseline        — mh/dual on the clean unit-disc channel;
//   * churn-mh/*      — node crash/recover schedules (2 and 6 victims)
//                       for the dual-radio and pure-sensor models;
//   * lossy-mh/*      — log-distance + shadowing per-link PER;
//   * churn-sh/dual   — single-hop churn: senders/relays die mid-burst
//                       (the sink — the only bulk receiver here — is
//                       always spared by FaultPlan).
//
// One table row per cell: the standard §4.1 metrics plus the fault
// counters (crashes observed, routing rebuilds, data lost to crashes).
// Writes BENCH_fault_churn.json whose meta block records the propagation
// model, its PER parameters and the fault-plan seed, so a regression in
// any number is attributable to an exact, reproducible schedule.
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "util/options.hpp"

namespace {

using namespace bcp;

struct Cell {
  const char* variant;
  int crashes;  ///< 0 keeps the variant's own default axes
  int shards = 0;  ///< > 1 runs the cell on the sharded engine
};

}  // namespace

int main(int argc, char** argv) {
  using namespace bcp::benchharness;
  util::Options opt("bench_fault_churn",
                    "goodput/energy under node churn and lossy channels");
  opt.add_int("runs", 2, "replications per cell")
      .add_double("duration", 600.0, "simulated seconds per run")
      .add_int("senders", 10, "CBR senders")
      .add_int("burst", 100, "dual-radio burst threshold in 32 B packets")
      .add_int("fault-seed", 1, "fault-plan schedule seed")
      .add_int("seed", 1, "base RNG seed")
      .add_int("jobs", 0, "sweep worker threads (0 = all hardware cores)");
  if (!opt.parse(argc, argv)) return 1;
  const int runs = static_cast<int>(opt.get_int("runs"));
  const double duration = opt.get_double("duration");
  const int senders = static_cast<int>(opt.get_int("senders"));
  const int burst = static_cast<int>(opt.get_int("burst"));
  const auto fault_seed =
      static_cast<std::uint64_t>(opt.get_int("fault-seed"));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed"));

  // The sharded cell repeats the heaviest churn schedule on the parallel
  // engine (membership epochs at window barriers) — same fault plan, same
  // metrics columns, so the two engines' churn numbers sit side by side.
  const std::vector<Cell> cells = {
      {"mh/dual", 0},         {"churn-mh/dual", 2}, {"churn-mh/dual", 6},
      {"churn-mh/sensor", 2}, {"churn-mh/sensor", 6}, {"churn-sh/dual", 4},
      {"churn-mh/dual", 6, /*shards=*/4},
      {"lossy-mh/dual", 0},   {"lossy-mh/sensor", 0},
  };

  app::SweepGrid grid;
  std::vector<int> cell_ids;
  for (std::size_t i = 0; i < cells.size(); ++i)
    cell_ids.push_back(static_cast<int>(i));
  grid.axis_ints("cell", cell_ids);

  const app::SweepFn fn = [&](const app::SweepJob& job) {
    const Cell& cell =
        cells[static_cast<std::size_t>(job.point.get_int("cell"))];
    const app::SweepPoint point(
        job.point.index(),
        {{"senders", static_cast<double>(senders)},
         {"burst", static_cast<double>(burst)},
         {"duration", duration},
         {"crashes", static_cast<double>(cell.crashes)},
         {"fault_seed", static_cast<double>(fault_seed)}});
    app::ScenarioConfig cfg =
        app::ScenarioRegistry::builtin().make(cell.variant, point);
    cfg.seed = job.seed;
    if (cell.shards > 1) {
      cfg.shards = cell.shards;
      cfg.sim_threads = 1;  // the sweep already saturates the cores
    }
    const app::RunMetrics m = app::run_scenario(cfg);
    stats::ResultSink::Metrics metrics = app::standard_metrics(m);
    metrics.emplace_back("dropped_node_down",
                         static_cast<double>(m.dropped_node_down));
    metrics.emplace_back("fault_node_crashes",
                         static_cast<double>(m.fault_node_crashes));
    metrics.emplace_back("fault_node_recoveries",
                         static_cast<double>(m.fault_node_recoveries));
    metrics.emplace_back("fault_recoveries_refused",
                         static_cast<double>(m.fault_recoveries_refused));
    metrics.emplace_back("route_rebuilds",
                         static_cast<double>(m.route_rebuilds));
    metrics.emplace_back("bcp_packets_lost_to_crash",
                         static_cast<double>(m.bcp_packets_lost_to_crash));
    metrics.emplace_back("mac_crash_drops",
                         static_cast<double>(m.mac_crash_drops));
    return metrics;
  };

  app::SweepOptions sweep;
  sweep.replications = runs;
  sweep.base_seed = seed;
  sweep.threads = static_cast<int>(opt.get_int("jobs"));
  const app::SweepRunner runner(sweep);
  stats::ResultSink sink = runner.run(grid, fn);
  for (std::size_t i = 0; i < cells.size(); ++i)
    sink.set_label(grid.index_of({i}),
                   std::string(cells[i].variant) +
                       (cells[i].crashes > 0
                            ? "-x" + std::to_string(cells[i].crashes)
                            : "") +
                       (cells[i].shards > 1
                            ? "-sharded" + std::to_string(cells[i].shards)
                            : ""));

  stats::print_titled(
      "Fault/churn sweep — bulk transfer vs crashes and lossy links",
      sink.to_table());

  // Run-identity metadata, read from the configs the cells actually ran
  // (not re-stated constants, so registry-default drift cannot desync the
  // export): the lossy cells' channel model + PER parameters via
  // set_scenario_meta, and the churn cells' fault-plan identity.
  const app::SweepPoint meta_point(
      0, {{"senders", static_cast<double>(senders)},
          {"burst", static_cast<double>(burst)},
          {"duration", duration},
          {"crashes", 4.0},
          {"fault_seed", static_cast<double>(fault_seed)}});
  const app::ScenarioConfig lossy_cfg =
      app::ScenarioRegistry::builtin().make("lossy-mh/dual", meta_point);
  set_scenario_meta(sink, lossy_cfg, seed);
  const app::ScenarioConfig churn_cfg =
      app::ScenarioRegistry::builtin().make("churn-mh/dual", meta_point);
  sink.set_meta("fault_seed",
                static_cast<double>(churn_cfg.faults.seed));
  sink.set_meta("fault_mean_downtime_s", churn_cfg.faults.mean_downtime);
  // Conditional-meta contract: the refused-recovery count appears only
  // when some run actually refused one (needs batteries, so it is zero
  // here unless a battery-enabled cell is added).
  double refused = 0;
  for (std::size_t i = 0; i < cells.size(); ++i)
    refused += sink.metric(grid.index_of({i}), "fault_recoveries_refused")
                   .mean() * runs;
  if (refused > 0) sink.set_meta("fault_recoveries_refused", refused);
  export_json("fault_churn", sink);
  return 0;
}

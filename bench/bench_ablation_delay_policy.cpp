// Ablation — the §5 open question: when data has a delay constraint, is it
// better to (a) ignore it (the evaluated BCP), (b) wake the high-power
// radio early for a sub-threshold burst, or (c) send the expired packets
// immediately over the low-power radio?
//
// Runs the multi-hop grid at 0.2 Kbps with a 500-packet threshold (which
// unbounded BCP fills in ~640 s) under deadlines of 30/60/120 s, and
// reports the goodput / energy / delay triangle for each policy — one
// sweep over the registry's "mh/dual" / "mh/dual-flush-high" /
// "mh/dual-fallback-low" variants.
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "util/options.hpp"

namespace {

struct Cell {
  std::string label;
  std::string variant;
  double deadline;  // 0 = unbounded
};

}  // namespace

int main(int argc, char** argv) {
  using namespace bcp;
  using namespace bcp::benchharness;
  util::Options opt("bench_ablation_delay_policy",
                    "delay-constrained buffering policies (§5 future work)");
  opt.add_int("runs", 2, "replications per point")
      .add_double("duration", 3000.0, "simulated seconds")
      .add_int("senders", 10, "sender count")
      .add_int("burst", 500, "threshold in 32 B packets")
      .add_int("seed", 1, "base seed")
      .add_int("jobs", 0, "sweep worker threads (0 = all hardware cores)");
  if (!opt.parse(argc, argv)) return 1;
  const int senders = static_cast<int>(opt.get_int("senders"));
  const int burst = static_cast<int>(opt.get_int("burst"));
  const double duration = opt.get_double("duration");

  std::vector<Cell> cells = {{"Unbounded", "mh/dual", 0}};
  for (const double d : {30.0, 60.0, 120.0}) {
    cells.push_back({"FlushHigh", "mh/dual-flush-high", d});
    cells.push_back({"FallbackLow", "mh/dual-fallback-low", d});
  }

  app::SweepGrid grid;
  std::vector<int> cell_ids;
  for (std::size_t i = 0; i < cells.size(); ++i)
    cell_ids.push_back(static_cast<int>(i));
  grid.axis_ints("cell", cell_ids);
  const app::SweepFn fn = [&cells, senders, burst,
                           duration](const app::SweepJob& job) {
    const Cell& cell =
        cells[static_cast<std::size_t>(job.point.get_int("cell"))];
    const app::SweepPoint scenario_point(
        job.point.index(), {{"senders", static_cast<double>(senders)},
                            {"burst", static_cast<double>(burst)},
                            {"rate_bps", 200.0},
                            {"duration", duration},
                            {"deadline_s", cell.deadline}});
    auto cfg =
        app::ScenarioRegistry::builtin().make(cell.variant, scenario_point);
    cfg.seed = job.seed;
    return app::standard_metrics(app::run_scenario(cfg));
  };

  app::SweepOptions sweep;
  sweep.replications = static_cast<int>(opt.get_int("runs"));
  sweep.base_seed = static_cast<std::uint64_t>(opt.get_int("seed"));
  sweep.threads = static_cast<int>(opt.get_int("jobs"));
  const app::SweepRunner runner(sweep);
  stats::ResultSink sink = runner.run(grid, fn);
  for (std::size_t i = 0; i < cells.size(); ++i)
    sink.set_label(i, cells[i].label);

  stats::TextTable t;
  t.add_row({"policy", "deadline_s", "goodput", "energy_J_per_Kbit",
             "delay_s", "wifi_wakeups"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& goodput = sink.metric(i, "goodput");
    const auto& energy = sink.metric(i, "normalized_energy");
    const auto& delay = sink.metric(i, "mean_delay_s");
    const auto& wakeups = sink.metric(i, "wifi_wakeup_transitions");
    t.add_row({cells[i].label,
               cells[i].deadline > 0
                   ? stats::TextTable::num(cells[i].deadline)
                   : std::string("-"),
               stats::TextTable::num_ci(goodput.mean(),
                                        goodput.ci_half_width()),
               stats::TextTable::num_ci(energy.mean(),
                                        energy.ci_half_width()),
               stats::TextTable::num_ci(delay.mean(),
                                        delay.ci_half_width()),
               stats::TextTable::num(wakeups.mean())});
  }
  stats::print_titled(
      "Ablation — delay-constrained buffering (MH, 0.2 Kbps, burst 500)", t);
  {
    const app::SweepPoint meta_point(
        0, {{"senders", static_cast<double>(senders)},
            {"burst", static_cast<double>(burst)},
            {"rate_bps", 200.0},
            {"duration", duration},
            {"deadline_s", 0.0}});
    set_scenario_meta(
        sink,
        app::ScenarioRegistry::builtin().make(cells.front().variant,
                                              meta_point),
        sweep.base_seed);
  }
  export_json("ablation_delay_policy", sink);
  std::printf(
      "Reading: Unbounded = best energy, worst delay. FlushHigh buys the\n"
      "deadline with extra wake-ups (energy rises as the deadline\n"
      "tightens). FallbackLow keeps the 802.11 radio dark but pays the\n"
      "low radio's high per-bit cost — the §5 trade-off, quantified.\n");
  return 0;
}

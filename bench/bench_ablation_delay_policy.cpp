// Ablation — the §5 open question: when data has a delay constraint, is it
// better to (a) ignore it (the evaluated BCP), (b) wake the high-power
// radio early for a sub-threshold burst, or (c) send the expired packets
// immediately over the low-power radio?
//
// Runs the multi-hop grid at 0.2 Kbps with a 500-packet threshold (which
// unbounded BCP fills in ~640 s) under deadlines of 30/60/120 s, and
// reports the goodput / energy / delay triangle for each policy.
#include <cstdio>
#include <string>

#include "app/scenario.hpp"
#include "core/bcp_config.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace bcp;
  util::Options opt("bench_ablation_delay_policy",
                    "delay-constrained buffering policies (§5 future work)");
  opt.add_int("runs", 2, "replications per point")
      .add_double("duration", 3000.0, "simulated seconds")
      .add_int("senders", 10, "sender count")
      .add_int("burst", 500, "threshold in 32 B packets")
      .add_int("seed", 1, "base seed");
  if (!opt.parse(argc, argv)) return 1;

  struct Cell {
    core::DelayPolicy policy;
    double deadline;
  };
  std::vector<Cell> cells = {{core::DelayPolicy::kUnbounded, 0}};
  for (const double d : {30.0, 60.0, 120.0}) {
    cells.push_back({core::DelayPolicy::kFlushHigh, d});
    cells.push_back({core::DelayPolicy::kFallbackLow, d});
  }

  stats::TextTable t;
  t.add_row({"policy", "deadline_s", "goodput", "energy_J_per_Kbit",
             "delay_s", "wifi_wakeups"});
  for (const auto& cell : cells) {
    auto cfg = app::ScenarioConfig::multi_hop(
        app::EvalModel::kDualRadio,
        static_cast<int>(opt.get_int("senders")),
        static_cast<int>(opt.get_int("burst")));
    cfg.rate_bps = 200.0;
    cfg.duration = opt.get_double("duration");
    cfg.seed = static_cast<std::uint64_t>(opt.get_int("seed"));
    cfg.bcp.delay_policy = cell.policy;
    if (cell.deadline > 0) cfg.bcp.max_buffering_delay = cell.deadline;
    const auto runs = app::run_replications(
        cfg, static_cast<int>(opt.get_int("runs")));
    stats::Summary goodput, energy, delay, wakeups;
    for (const auto& m : runs) {
      goodput.add(m.goodput);
      energy.add(m.normalized_energy);
      delay.add(m.mean_delay);
      wakeups.add(static_cast<double>(m.wifi_wakeup_transitions));
    }
    t.add_row({core::to_string(cell.policy),
               cell.deadline > 0 ? stats::TextTable::num(cell.deadline)
                                 : std::string("-"),
               stats::TextTable::num_ci(goodput.mean(),
                                        goodput.ci_half_width()),
               stats::TextTable::num_ci(energy.mean(),
                                        energy.ci_half_width()),
               stats::TextTable::num_ci(delay.mean(),
                                        delay.ci_half_width()),
               stats::TextTable::num(wakeups.mean())});
  }
  stats::print_titled(
      "Ablation — delay-constrained buffering (MH, 0.2 Kbps, burst 500)", t);
  std::printf(
      "Reading: kUnbounded = best energy, worst delay. kFlushHigh buys the\n"
      "deadline with extra wake-ups (energy rises as the deadline\n"
      "tightens). kFallbackLow keeps the 802.11 radio dark but pays the\n"
      "low radio's high per-bit cost — the §5 trade-off, quantified.\n");
  return 0;
}

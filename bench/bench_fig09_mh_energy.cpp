// Figure 9 — multi-hop (MH) case: normalized energy (J/Kbit) vs senders
// at 2 Kbps.
//
// Paper claims: the dual model performs close to or better than even the
// *ideal* sensor-model energy (one Cabletron hop replaces ~5 sensor hops);
// even DualRadio-10 improves; the sweet spot is bursts of 500-1000.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bcp;
  using namespace bcp::benchharness;
  SimOptions opt;
  if (!parse_sim_options(argc, argv, "bench_fig09_mh_energy",
                         "Figure 9: MH normalized energy vs senders", &opt))
    return 1;
  auto columns = dual_columns(opt.bursts, Metric::kNormalizedEnergy);
  columns.push_back(Column{"Sensor-ideal", app::EvalModel::kSensor, 0,
                           Metric::kNormalizedEnergySensorIdeal});
  columns.push_back(Column{"Sensor-header", app::EvalModel::kSensor, 0,
                           Metric::kNormalizedEnergySensorHeader});
  print_sender_sweep(
      "fig09_mh_energy",
      "Figure 9 — MH: normalized energy (J/Kbit) vs number of senders "
      "(2 Kbps)",
      /*multi_hop=*/true, opt, columns, /*rate_bps=*/0);
  return 0;
}

// Micro-benchmarks (google-benchmark) for the hot paths that the figure
// harnesses lean on: event queue churn, buffer push/pop, break-even
// solving, RNG, MAC-level frame exchange, and a full small scenario.
//
// The *SteadyState benchmarks additionally report an `allocs_per_item`
// counter from a process-wide operator-new hook: the schedule/cancel and
// bulk fan-out paths are required to run allocation-free once warm (the
// contract tests/perf_alloc_test.cpp enforces), and the counter makes a
// regression visible here as a number instead of a silent slowdown.
#include <benchmark/benchmark.h>

#include <cmath>

#include "app/scenario.hpp"
#include "core/bulk_buffer.hpp"
#include "energy/breakeven.hpp"
#include "energy/radio_model.hpp"
#include "net/message_ref.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "phy/channel.hpp"
#include "phy/frame.hpp"
#include "sim/simulator.hpp"
// Replaces this binary's global operator new/delete with counting hooks
// (covers every C++ allocation: vectors, maps, closures) — exactly what
// "0 allocations per event" must hold over.
#include "util/alloc_count_hook.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace {

using bcp::util::g_alloc_count;

using namespace bcp;

void BM_SimulatorScheduleDispatch(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    long long fired = 0;
    for (int i = 0; i < n; ++i)
      sim.schedule_at((i * 7919) % 1000, [&fired] { ++fired; });
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimulatorScheduleDispatch)->Arg(1000)->Arg(100000);

void BM_SimulatorCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::Simulator::EventHandle> handles;
    handles.reserve(10000);
    for (int i = 0; i < 10000; ++i)
      handles.push_back(sim.schedule_at(i, [] {}));
    for (std::size_t i = 0; i < handles.size(); i += 2)
      sim.cancel(handles[i]);
    sim.run();
  }
}
BENCHMARK(BM_SimulatorCancelHeavy);

// ---- Zero-allocation steady-state contracts -----------------------------
// Warm structures up outside the measured loop, then count operator-new
// calls across it. `allocs_per_item` must read 0.00 for the simulator
// benchmark; the fan-out benchmark tolerates only the pool-miss warmup.

/// One schedule / cancel / dispatch mix on a warm simulator — the MAC
/// timer pattern (arm, usually cancel, occasionally fire).
void BM_SimulatorScheduleCancelSteadyState(benchmark::State& state) {
  sim::Simulator sim;
  long long fired = 0;
  const auto cycle = [&](int n) {
    sim::Simulator::EventHandle retained[8];
    for (int i = 0; i < n; ++i) {
      const auto h =
          sim.schedule_in(1.0 + i * 0.25, [&fired] { ++fired; });
      if (i % 2 == 0)
        sim.cancel(h);  // cancelled timers: the common case
      else
        retained[i % 8] = h;
    }
    sim.run();
  };
  cycle(512);  // warm the heap and slot vectors to their high-water mark
  const std::uint64_t before = g_alloc_count;
  std::uint64_t items = 0;
  for (auto _ : state) {
    cycle(512);
    items += 512;
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<std::int64_t>(items));
  // total allocs / (iterations * events per iteration) = allocs per event
  state.counters["allocs_per_item"] = benchmark::Counter(
      static_cast<double>(g_alloc_count - before) / 512.0,
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_SimulatorScheduleCancelSteadyState);

/// Channel::start_tx fan-out of a pooled 50-packet bulk payload to N
/// hearers — the shared-immutable message path. Before MessageRef this
/// deep-copied BulkFrame::packets into the in-flight record and once more
/// per delivery.
void BM_ChannelBulkFanoutSteadyState(benchmark::State& state) {
  const int hearers = static_cast<int>(state.range(0));
  class NullListener final : public phy::ChannelListener {
   public:
    void on_rx_start(std::uint64_t, const phy::Frame&,
                     util::Seconds) override {}
    void on_rx_end(std::uint64_t, const phy::Frame&, bool clean) override {
      cleans += clean ? 1 : 0;
    }
    long long cleans = 0;
  };
  sim::Simulator sim;
  // Transmitter at the origin, hearers packed within range.
  std::vector<net::Position> positions{{0.0, 0.0}};
  for (int i = 0; i < hearers; ++i)
    positions.push_back({1.0 + 0.01 * i, 0.0});
  phy::Channel channel(sim, positions, /*range=*/50.0,
                       phy::Channel::Params{0.0}, /*seed=*/7);
  std::vector<NullListener> listeners(
      static_cast<std::size_t>(hearers) + 1);
  for (int i = 0; i <= hearers; ++i)
    channel.attach(i, &listeners[static_cast<std::size_t>(i)]);

  net::BulkFrame bulk;
  bulk.sender = 0;
  bulk.receiver = 1;
  bulk.total = 1;
  for (std::uint32_t s = 0; s < 50; ++s)
    bulk.packets.push_back(
        net::DataPacket{0, 1, s + 1, util::bytes(32), 0.0});
  bulk.cache_payload_bits();
  net::Message msg;
  msg.src = 0;
  msg.dst = 1;
  msg.body = std::move(bulk);

  const auto one_tx = [&](net::MessageRef ref) {
    phy::Frame f;
    f.tx_node = 0;
    f.rx_node = 1;
    f.payload_bits = ref->size_bits();
    f.header_bits = 272;
    f.message = std::move(ref);
    channel.start_tx(0, f, 0.001);
    sim.run();
  };
  one_tx(net::make_message(net::Message(msg)));  // warm pool + vectors
  const std::uint64_t before = g_alloc_count;
  std::uint64_t items = 0;
  for (auto _ : state) {
    // One deep copy into the pool per burst (the agent hands its copy
    // over by move); the N-hearer fan-out then shares it.
    one_tx(net::make_message(net::Message(msg)));
    items += static_cast<std::uint64_t>(hearers);
  }
  long long cleans = 0;
  for (const auto& l : listeners) cleans += l.cleans;
  benchmark::DoNotOptimize(cleans);
  state.SetItemsProcessed(static_cast<std::int64_t>(items));
  state.counters["allocs_per_item"] = benchmark::Counter(
      static_cast<double>(g_alloc_count - before) / static_cast<double>(hearers),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ChannelBulkFanoutSteadyState)->Arg(8)->Arg(64);

/// Pooled message round-trip: move a small control message in, drop the
/// last ref, reuse the node. Free-list reuse makes this allocation-free.
void BM_MessagePoolRoundTrip(benchmark::State& state) {
  net::Message proto;
  proto.src = 1;
  proto.dst = 2;
  proto.body = net::WakeupRequest{1, 2, 7, util::bytes(1600)};
  { auto warm = net::make_message(net::Message(proto)); }
  const std::uint64_t before = g_alloc_count;
  for (auto _ : state) {
    auto ref = net::make_message(net::Message(proto));
    auto shared = ref;  // second handle, as the MAC queue + frame take
    benchmark::DoNotOptimize(shared->size_bits());
  }
  state.counters["allocs_per_item"] = benchmark::Counter(
      static_cast<double>(g_alloc_count - before),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_MessagePoolRoundTrip);

void BM_BulkBufferPushPop(benchmark::State& state) {
  core::BulkBuffer buffer(1 << 24);
  net::DataPacket p{0, 1, 1, util::bytes(32), 0.0};
  for (auto _ : state) {
    for (int i = 0; i < 500; ++i) buffer.push(1, p);
    auto out = buffer.pop_up_to(1, 500 * util::bytes(32));
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_BulkBufferPushPop);

void BM_BreakEvenSolve(benchmark::State& state) {
  for (auto _ : state) {
    auto a = energy::DualRadioAnalysis::standard(energy::mica(),
                                                 energy::lucent_11mbps());
    benchmark::DoNotOptimize(a.break_even_bits());
    benchmark::DoNotOptimize(a.break_even_bits_multihop(5));
  }
}
BENCHMARK(BM_BreakEvenSolve);

void BM_Xoshiro(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  double acc = 0;
  for (auto _ : state) acc += rng.uniform();
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_Xoshiro);

// ---- Topology-layer builds (the large-network scale path) ---------------
// All three must scale ~linearly in node count for bounded-density
// placements; a 100× blow-up between the 1k and 10k args flags an O(n²)
// regression (10× nodes should cost ~10×).

/// Paper-density uniform-random placement: area chosen so the 40 m disc
/// graph keeps a constant mean degree (~12) at any n.
bcp::net::TopologySpec scale_spec(int n) {
  bcp::net::TopologySpec spec;
  spec.kind = bcp::net::TopologyKind::kUniformRandom;
  spec.nodes = n;
  spec.area = std::sqrt(n * 3.14159265358979323846 * 40.0 * 40.0 / 12.0);
  spec.seed = 7;
  return spec;
}

void BM_TopologyBuild(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const auto spec = scale_spec(n);
  for (auto _ : state) {
    const net::Topology topo = spec.build();
    benchmark::DoNotOptimize(topo.positions.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TopologyBuild)->Arg(1000)->Arg(10000);

void BM_ConnectivityGraphBuild(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const net::Topology topo = scale_spec(n).build();
  for (auto _ : state) {
    const net::ConnectivityGraph graph(topo.positions, 40.0);
    benchmark::DoNotOptimize(graph.node_count());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ConnectivityGraphBuild)->Arg(1000)->Arg(10000);

void BM_ConvergecastRoutingBuild(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const net::Topology topo = scale_spec(n).build();
  const net::ConnectivityGraph graph(topo.positions, 40.0);
  for (auto _ : state) {
    const net::ConvergecastRouting routes(graph, topo.sink);
    benchmark::DoNotOptimize(routes.node_count());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ConvergecastRoutingBuild)->Arg(1000)->Arg(10000);

void BM_ScenarioDualRadioShort(benchmark::State& state) {
  for (auto _ : state) {
    auto cfg = app::ScenarioConfig::multi_hop(app::EvalModel::kDualRadio, 5,
                                              100);
    cfg.duration = 60.0;
    cfg.seed = 7;
    auto m = app::run_scenario(cfg);
    benchmark::DoNotOptimize(m.delivered);
  }
}
BENCHMARK(BM_ScenarioDualRadioShort)->Unit(benchmark::kMillisecond);

void BM_ScenarioSensorShort(benchmark::State& state) {
  for (auto _ : state) {
    auto cfg =
        app::ScenarioConfig::multi_hop(app::EvalModel::kSensor, 5, 100);
    cfg.duration = 60.0;
    cfg.seed = 7;
    auto m = app::run_scenario(cfg);
    benchmark::DoNotOptimize(m.delivered);
  }
}
BENCHMARK(BM_ScenarioSensorShort)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

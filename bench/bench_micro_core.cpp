// Micro-benchmarks (google-benchmark) for the hot paths that the figure
// harnesses lean on: event queue churn, buffer push/pop, break-even
// solving, RNG, MAC-level frame exchange, and a full small scenario.
#include <benchmark/benchmark.h>

#include <cmath>

#include "app/scenario.hpp"
#include "core/bulk_buffer.hpp"
#include "energy/breakeven.hpp"
#include "energy/radio_model.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace {

using namespace bcp;

void BM_SimulatorScheduleDispatch(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    long long fired = 0;
    for (int i = 0; i < n; ++i)
      sim.schedule_at((i * 7919) % 1000, [&fired] { ++fired; });
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimulatorScheduleDispatch)->Arg(1000)->Arg(100000);

void BM_SimulatorCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::Simulator::EventHandle> handles;
    handles.reserve(10000);
    for (int i = 0; i < 10000; ++i)
      handles.push_back(sim.schedule_at(i, [] {}));
    for (std::size_t i = 0; i < handles.size(); i += 2)
      sim.cancel(handles[i]);
    sim.run();
  }
}
BENCHMARK(BM_SimulatorCancelHeavy);

void BM_BulkBufferPushPop(benchmark::State& state) {
  core::BulkBuffer buffer(1 << 24);
  net::DataPacket p{0, 1, 1, util::bytes(32), 0.0};
  for (auto _ : state) {
    for (int i = 0; i < 500; ++i) buffer.push(1, p);
    auto out = buffer.pop_up_to(1, 500 * util::bytes(32));
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_BulkBufferPushPop);

void BM_BreakEvenSolve(benchmark::State& state) {
  for (auto _ : state) {
    auto a = energy::DualRadioAnalysis::standard(energy::mica(),
                                                 energy::lucent_11mbps());
    benchmark::DoNotOptimize(a.break_even_bits());
    benchmark::DoNotOptimize(a.break_even_bits_multihop(5));
  }
}
BENCHMARK(BM_BreakEvenSolve);

void BM_Xoshiro(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  double acc = 0;
  for (auto _ : state) acc += rng.uniform();
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_Xoshiro);

// ---- Topology-layer builds (the large-network scale path) ---------------
// All three must scale ~linearly in node count for bounded-density
// placements; a 100× blow-up between the 1k and 10k args flags an O(n²)
// regression (10× nodes should cost ~10×).

/// Paper-density uniform-random placement: area chosen so the 40 m disc
/// graph keeps a constant mean degree (~12) at any n.
bcp::net::TopologySpec scale_spec(int n) {
  bcp::net::TopologySpec spec;
  spec.kind = bcp::net::TopologyKind::kUniformRandom;
  spec.nodes = n;
  spec.area = std::sqrt(n * 3.14159265358979323846 * 40.0 * 40.0 / 12.0);
  spec.seed = 7;
  return spec;
}

void BM_TopologyBuild(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const auto spec = scale_spec(n);
  for (auto _ : state) {
    const net::Topology topo = spec.build();
    benchmark::DoNotOptimize(topo.positions.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TopologyBuild)->Arg(1000)->Arg(10000);

void BM_ConnectivityGraphBuild(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const net::Topology topo = scale_spec(n).build();
  for (auto _ : state) {
    const net::ConnectivityGraph graph(topo.positions, 40.0);
    benchmark::DoNotOptimize(graph.node_count());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ConnectivityGraphBuild)->Arg(1000)->Arg(10000);

void BM_ConvergecastRoutingBuild(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const net::Topology topo = scale_spec(n).build();
  const net::ConnectivityGraph graph(topo.positions, 40.0);
  for (auto _ : state) {
    const net::ConvergecastRouting routes(graph, topo.sink);
    benchmark::DoNotOptimize(routes.node_count());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ConvergecastRoutingBuild)->Arg(1000)->Arg(10000);

void BM_ScenarioDualRadioShort(benchmark::State& state) {
  for (auto _ : state) {
    auto cfg = app::ScenarioConfig::multi_hop(app::EvalModel::kDualRadio, 5,
                                              100);
    cfg.duration = 60.0;
    cfg.seed = 7;
    auto m = app::run_scenario(cfg);
    benchmark::DoNotOptimize(m.delivered);
  }
}
BENCHMARK(BM_ScenarioDualRadioShort)->Unit(benchmark::kMillisecond);

void BM_ScenarioSensorShort(benchmark::State& state) {
  for (auto _ : state) {
    auto cfg =
        app::ScenarioConfig::multi_hop(app::EvalModel::kSensor, 5, 100);
    cfg.duration = 60.0;
    cfg.seed = 7;
    auto m = app::run_scenario(cfg);
    benchmark::DoNotOptimize(m.delivered);
  }
}
BENCHMARK(BM_ScenarioSensorShort)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

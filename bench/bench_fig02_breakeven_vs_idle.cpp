// Figure 2 — break-even size s* (KB) as idle time grows (1 ms - 10 s,
// log-log). Paper claim: at ~1 s of idling, s* reaches the 66-480 KB
// range — still buffer-able on newer platforms, but idling must be
// minimized.
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "common.hpp"
#include "energy/breakeven.hpp"
#include "energy/radio_model.hpp"
#include "util/units.hpp"

namespace {

using namespace bcp;

// The figure's seven feasible combinations.
const std::pair<const energy::RadioEnergyModel*,
                const energy::RadioEnergyModel*>
    kCombos[] = {
        {&energy::mica(), &energy::cabletron_2mbps()},
        {&energy::mica2(), &energy::cabletron_2mbps()},
        {&energy::mica(), &energy::lucent_2mbps()},
        {&energy::mica2(), &energy::lucent_2mbps()},
        {&energy::mica(), &energy::lucent_11mbps()},
        {&energy::mica2(), &energy::lucent_11mbps()},
        {&energy::micaz(), &energy::lucent_11mbps()},
    };

double breakeven_kb(const energy::RadioEnergyModel& low,
                    const energy::RadioEnergyModel& high, double idle) {
  auto cfg = energy::DualRadioAnalysis::standard(low, high).config();
  cfg.idle_time = idle;
  const auto s = energy::DualRadioAnalysis(cfg).break_even_bits();
  return s ? util::to_kilobytes(*s)
           : std::numeric_limits<double>::infinity();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bcp::benchharness;
  util::Options opt("bench_fig02_breakeven_vs_idle",
                    "Figure 2: s* (KB) vs idle time (s)");
  opt.add_int("points", 17, "sample points on the log axis")
      .add_int("jobs", 0, "sweep worker threads (0 = all hardware cores)");
  if (!opt.parse(argc, argv)) return 1;
  const int points = static_cast<int>(opt.get_int("points"));

  std::vector<double> idle_axis;
  for (int i = 0; i < points; ++i)
    idle_axis.push_back(
        0.001 * std::pow(10000.0, static_cast<double>(i) / (points - 1)));

  app::SweepGrid grid;
  grid.axis("idle_s", idle_axis);
  const app::SweepFn fn = [](const app::SweepJob& job) {
    const double idle = job.point.get("idle_s");
    stats::ResultSink::Metrics metrics;
    for (const auto& [low, high] : kCombos)
      metrics.emplace_back(high->name + "-" + low->name + "_KB",
                           breakeven_kb(*low, *high, idle));
    return metrics;
  };

  app::SweepOptions sweep;
  sweep.threads = static_cast<int>(opt.get_int("jobs"));
  run_grid_bench("fig02_breakeven_vs_idle",
                 "Figure 2 — break-even data size (KB) vs idle time", grid,
                 fn, sweep);

  // The paper's 1-second checkpoint.
  double lo = 1e18, hi = 0;
  for (const auto& [low, high] : kCombos) {
    const double kb = breakeven_kb(*low, *high, 1.0);
    if (!std::isfinite(kb)) continue;
    lo = std::min(lo, kb);
    hi = std::max(hi, kb);
  }
  std::printf("Check: s* range at 1 s idle = %.0f-%.0f KB (paper: 66-480 KB)\n",
              lo, hi);
  return 0;
}

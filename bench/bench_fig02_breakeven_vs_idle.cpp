// Figure 2 — break-even size s* (KB) as idle time grows (1 ms - 10 s,
// log-log). Paper claim: at ~1 s of idling, s* reaches the 66-480 KB
// range — still buffer-able on newer platforms, but idling must be
// minimized.
#include <cmath>
#include <cstdio>
#include <string>

#include "energy/breakeven.hpp"
#include "energy/radio_model.hpp"
#include "stats/table.hpp"
#include "util/options.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace bcp;
  util::Options opt("bench_fig02_breakeven_vs_idle",
                    "Figure 2: s* (KB) vs idle time (s)");
  opt.add_int("points", 17, "sample points on the log axis");
  if (!opt.parse(argc, argv)) return 1;
  const int points = static_cast<int>(opt.get_int("points"));

  // The figure's seven feasible combinations.
  const std::pair<const energy::RadioEnergyModel*,
                  const energy::RadioEnergyModel*>
      combos[] = {
          {&energy::mica(), &energy::cabletron_2mbps()},
          {&energy::mica2(), &energy::cabletron_2mbps()},
          {&energy::mica(), &energy::lucent_2mbps()},
          {&energy::mica2(), &energy::lucent_2mbps()},
          {&energy::mica(), &energy::lucent_11mbps()},
          {&energy::mica2(), &energy::lucent_11mbps()},
          {&energy::micaz(), &energy::lucent_11mbps()},
      };

  stats::TextTable t;
  {
    std::vector<std::string> header{"idle_s"};
    for (const auto& [low, high] : combos)
      header.push_back(high->name + "-" + low->name);
    t.add_row(std::move(header));
  }
  for (int i = 0; i < points; ++i) {
    const double idle =
        0.001 * std::pow(10000.0, static_cast<double>(i) / (points - 1));
    std::vector<std::string> row{stats::TextTable::num(idle, 3)};
    for (const auto& [low, high] : combos) {
      auto cfg = energy::DualRadioAnalysis::standard(*low, *high).config();
      cfg.idle_time = idle;
      const auto s = energy::DualRadioAnalysis(cfg).break_even_bits();
      row.push_back(s ? stats::TextTable::num(util::to_kilobytes(*s), 4)
                      : std::string("inf"));
    }
    t.add_row(std::move(row));
  }
  stats::print_titled("Figure 2 — break-even data size (KB) vs idle time",
                      t);

  // The paper's 1-second checkpoint.
  double lo = 1e18, hi = 0;
  for (const auto& [low, high] : combos) {
    auto cfg = energy::DualRadioAnalysis::standard(*low, *high).config();
    cfg.idle_time = 1.0;
    const auto s = energy::DualRadioAnalysis(cfg).break_even_bits();
    if (!s) continue;
    lo = std::min(lo, util::to_kilobytes(*s));
    hi = std::max(hi, util::to_kilobytes(*s));
  }
  std::printf("Check: s* range at 1 s idle = %.0f-%.0f KB (paper: 66-480 KB)\n",
              lo, hi);
  return 0;
}

// Unit + integration tests: delay-constrained buffering (§5 future work) —
// DelayPolicy::kFlushHigh and ::kFallbackLow against the fake host, plus a
// grid-scenario check that deadlines bound the buffering delay.
#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "app/scenario.hpp"
#include "core/bcp_agent.hpp"
#include "core/bcp_host.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace bcp::core {
namespace {

using util::bytes;

// A minimal scripted host (mirrors the one in bcp_agent_test.cpp).
class Host : public BcpHost {
 public:
  Host(sim::Simulator& sim, net::NodeId id) : sim_(sim), id_(id) {}
  net::NodeId self() const override { return id_; }
  util::Seconds now() const override { return sim_.now(); }
  TimerId set_timer(util::Seconds d, core::BcpHost::TimerCallback cb) override {
    return sim_.schedule_in(d, std::move(cb)).id;
  }
  void cancel_timer(TimerId id) override {
    sim_.cancel(sim::Simulator::EventHandle{id});
  }
  void send_low(net::MessageRef m) override { low_sent.push_back(*m); }
  void send_high(net::MessageRef m, net::NodeId,
                 core::BcpHost::SendDone done) override {
    high_sent.push_back(*m);
    done_cbs.push_back(std::move(done));
  }
  void high_radio_on() override {
    radio_on = true;
    if (agent) agent->on_high_radio_ready();
  }
  void high_radio_off() override { radio_on = false; }
  bool high_radio_ready() const override { return radio_on; }
  net::NodeId high_next_hop(net::NodeId dest) const override {
    const auto it = routes.find(dest);
    return it == routes.end() ? net::kInvalidNode : it->second;
  }
  void deliver(const net::DataPacket& p) override { delivered.push_back(p); }
  void packet_dropped(const net::DataPacket&, const char*) override {}

  sim::Simulator& sim_;
  net::NodeId id_;
  BcpAgent* agent = nullptr;
  bool radio_on = false;
  std::map<net::NodeId, net::NodeId> routes;
  std::vector<net::Message> low_sent;
  std::vector<net::Message> high_sent;
  std::deque<core::BcpHost::SendDone> done_cbs;
  std::vector<net::DataPacket> delivered;
};

BcpConfig policy_config(DelayPolicy policy, util::Seconds max_delay) {
  BcpConfig cfg;
  cfg.burst_threshold_bits = 10 * bytes(32);
  cfg.buffer_capacity_bits = 100 * bytes(32);
  cfg.frame_payload_bits = bytes(128);
  cfg.delay_policy = policy;
  cfg.max_buffering_delay = max_delay;
  cfg.wakeup_ack_timeout = 1.0;
  return cfg;
}

net::DataPacket pkt(std::uint32_t seq, util::Seconds created) {
  return net::DataPacket{0, 9, seq, bytes(32), created};
}

TEST(DelayPolicy, UnboundedNeverActsBelowThreshold) {
  sim::Simulator sim;
  Host host(sim, 0);
  host.routes[9] = 5;
  BcpAgent agent(host, policy_config(DelayPolicy::kUnbounded, 5.0));
  host.agent = &agent;
  agent.submit(pkt(1, 0.0));
  sim.run_until(100.0);
  EXPECT_TRUE(host.low_sent.empty());
  EXPECT_EQ(agent.buffer().total_packets(), 1u);
}

TEST(DelayPolicy, FlushHighWakesRadioAtDeadline) {
  sim::Simulator sim;
  Host host(sim, 0);
  host.routes[9] = 5;
  BcpAgent agent(host, policy_config(DelayPolicy::kFlushHigh, 5.0));
  host.agent = &agent;
  agent.submit(pkt(1, 0.0));
  agent.submit(pkt(2, 0.0));
  sim.run_until(4.9);
  EXPECT_TRUE(host.low_sent.empty());  // not expired yet
  sim.run_until(5.1);
  ASSERT_EQ(host.low_sent.size(), 1u);  // deadline fired a wake-up
  const auto& req = std::get<net::WakeupRequest>(host.low_sent[0].body);
  EXPECT_EQ(req.burst_bits, 2 * bytes(32));
  EXPECT_EQ(agent.stats().deadline_flushes, 1);
}

TEST(DelayPolicy, FlushHighDeadlineMeasuresOldestPacket) {
  sim::Simulator sim;
  Host host(sim, 0);
  host.routes[9] = 5;
  BcpAgent agent(host, policy_config(DelayPolicy::kFlushHigh, 10.0));
  host.agent = &agent;
  sim.schedule_at(3.0, [&] { agent.submit(pkt(1, 3.0)); });
  sim.run_until(12.9);  // oldest created at 3.0 -> deadline 13.0
  EXPECT_TRUE(host.low_sent.empty());
  sim.run_until(13.1);
  EXPECT_EQ(host.low_sent.size(), 1u);
}

TEST(DelayPolicy, FlushHighRechecksWithoutSpinningWhenSessionActive) {
  sim::Simulator sim;
  Host host(sim, 0);
  host.routes[9] = 5;
  BcpAgent agent(host, policy_config(DelayPolicy::kFlushHigh, 2.0));
  host.agent = &agent;
  agent.submit(pkt(1, 0.0));
  // No ack ever arrives: the handshake retries inside its own machinery;
  // the deadline must not busy-loop at one instant.
  sim.run_until(30.0);
  EXPECT_GT(agent.stats().deadline_flushes, 1);
  EXPECT_LT(agent.stats().deadline_flushes, 20);
  EXPECT_EQ(agent.buffer().total_packets(), 1u);  // data retained
}

TEST(DelayPolicy, FallbackLowSendsExpiredPacketsOverLowRadio) {
  sim::Simulator sim;
  Host host(sim, 0);
  host.routes[9] = 5;
  BcpAgent agent(host, policy_config(DelayPolicy::kFallbackLow, 5.0));
  host.agent = &agent;
  agent.submit(pkt(1, 0.0));
  agent.submit(pkt(2, 0.0));
  sim.run_until(5.1);
  ASSERT_EQ(host.low_sent.size(), 2u);
  for (const auto& m : host.low_sent) {
    EXPECT_TRUE(m.is_data());
    EXPECT_EQ(m.dst, 9);  // routed to the destination, not the next hop
  }
  EXPECT_EQ(agent.buffer().total_packets(), 0u);
  EXPECT_EQ(agent.stats().packets_sent_low, 2);
  EXPECT_FALSE(host.radio_on);  // the big radio never woke
}

TEST(DelayPolicy, FallbackLowKeepsUnexpiredPackets) {
  sim::Simulator sim;
  Host host(sim, 0);
  host.routes[9] = 5;
  BcpAgent agent(host, policy_config(DelayPolicy::kFallbackLow, 5.0));
  host.agent = &agent;
  agent.submit(pkt(1, 0.0));
  sim.schedule_at(4.0, [&] { agent.submit(pkt(2, 4.0)); });
  sim.run_until(5.5);  // only packet 1 expired
  EXPECT_EQ(agent.stats().packets_sent_low, 1);
  EXPECT_EQ(agent.buffer().total_packets(), 1u);
  sim.run_until(9.5);  // packet 2 expires at 9.0
  EXPECT_EQ(agent.stats().packets_sent_low, 2);
  EXPECT_EQ(agent.buffer().total_packets(), 0u);
}

TEST(DelayPolicy, ThresholdStillPreemptsDeadline) {
  sim::Simulator sim;
  Host host(sim, 0);
  host.routes[9] = 5;
  BcpAgent agent(host, policy_config(DelayPolicy::kFallbackLow, 50.0));
  host.agent = &agent;
  for (std::uint32_t i = 1; i <= 10; ++i) agent.submit(pkt(i, 0.0));
  // Threshold (10 packets) reached immediately: normal wake-up handshake,
  // nothing sent over the low radio as data.
  ASSERT_EQ(host.low_sent.size(), 1u);
  EXPECT_TRUE(host.low_sent[0].is_control());
  sim.run_until(0.5);
  EXPECT_EQ(agent.stats().packets_sent_low, 0);
}

TEST(DelayPolicy, ValidationRejectsNonPositiveDeadline) {
  BcpConfig cfg = policy_config(DelayPolicy::kFlushHigh, 5.0);
  cfg.max_buffering_delay = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.delay_policy = DelayPolicy::kUnbounded;
  EXPECT_NO_THROW(cfg.validate());  // deadline unused
}

TEST(DelayPolicy, Names) {
  EXPECT_STREQ(to_string(DelayPolicy::kUnbounded), "unbounded");
  EXPECT_STREQ(to_string(DelayPolicy::kFlushHigh), "flush-high");
  EXPECT_STREQ(to_string(DelayPolicy::kFallbackLow), "fallback-low");
}

// ---- grid integration ----------------------------------------------------

TEST(DelayPolicyScenario, FlushHighBoundsDeliveryDelay) {
  // Big bursts at a slow rate would buffer for ~640 s; a 60 s deadline
  // must pull the mean delay down near the deadline.
  auto base = app::ScenarioConfig::multi_hop(app::EvalModel::kDualRadio, 5,
                                             500);
  base.rate_bps = 200.0;
  base.duration = 1200.0;
  base.seed = 3;
  const auto unbounded = app::run_scenario(base);

  auto bounded = base;
  bounded.bcp.delay_policy = DelayPolicy::kFlushHigh;
  bounded.bcp.max_buffering_delay = 60.0;
  const auto flushed = app::run_scenario(bounded);

  ASSERT_GT(unbounded.delivered, 0);
  ASSERT_GT(flushed.delivered, 0);
  EXPECT_LT(flushed.mean_delay, 100.0);
  EXPECT_GT(unbounded.mean_delay, 250.0);
  // The price: more wake-ups, worse energy.
  EXPECT_GT(flushed.wifi_wakeup_transitions,
            unbounded.wifi_wakeup_transitions);
  EXPECT_GT(flushed.normalized_energy, unbounded.normalized_energy);
}

TEST(DelayPolicyScenario, FallbackLowDeliversWithoutWifi) {
  auto cfg = app::ScenarioConfig::multi_hop(app::EvalModel::kDualRadio, 5,
                                            500);
  cfg.rate_bps = 200.0;
  cfg.duration = 1200.0;
  cfg.seed = 3;
  cfg.bcp.delay_policy = DelayPolicy::kFallbackLow;
  cfg.bcp.max_buffering_delay = 30.0;
  const auto m = app::run_scenario(cfg);
  ASSERT_GT(m.delivered, 0);
  EXPECT_GT(m.goodput, 0.5);
  EXPECT_LT(m.mean_delay, 60.0);
  // Data rode the sensor radio, so sensor tx energy is substantial
  // relative to the wifi energy (few bursts ever reach the threshold).
  EXPECT_GT(m.sensor_energy.tx, 0.0);
}

}  // namespace
}  // namespace bcp::core

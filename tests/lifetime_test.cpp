// Tests for the finite-battery subsystem: BatterySpec validation, exact
// depletion timing, the crash-path/battery-death equivalence (both funnel
// through app::crash_node), lifetime-aware routing, and the lifetime-*
// registry variants end to end — including the headline acceptance check
// that bulk transmission over the high-power radio outlives always-on
// 802.11 at equal offered load.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "app/nodes.hpp"
#include "app/scenario.hpp"
#include "app/scenario_registry.hpp"
#include "app/sweep.hpp"
#include "energy/battery.hpp"
#include "energy/energy_meter.hpp"
#include "energy/radio_model.hpp"
#include "mac/mac_spec.hpp"
#include "net/link_state.hpp"
#include "net/routing.hpp"
#include "phy/channel.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace bcp {
namespace {

// ---------------------------------------------------------- BatterySpec --

TEST(BatterySpec, ValidationRejectsNonsense) {
  energy::BatterySpec spec;
  EXPECT_NO_THROW(spec.validate());  // default-off is always valid
  spec.enabled = true;
  EXPECT_NO_THROW(spec.validate());
  spec.sensor_initial_j = -1.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.sensor_initial_j = 0.0;
  spec.wifi_initial_j = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);  // all-zero budget
  spec.wifi_initial_j = 10.0;
  EXPECT_NO_THROW(spec.validate());  // one radio class funded is enough
  spec.lifetime_weight = -0.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.lifetime_weight = 0.0;
  spec.reroute_period = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.reroute_period = 30.0;
  EXPECT_NO_THROW(spec.validate());
}

// ------------------------------------- death timing & crash equivalence --

/// A minimal 2-node sensor world: node 1 in range of sink 0, no traffic
/// unless a test injects some. Identical across instances (same seed), so
/// two worlds stay in lockstep until one of them kills node 1.
struct SensorWorld {
  explicit SensorWorld(std::uint64_t seed = 7)
      : channel(sim, {{0, 0}, {30, 0}}, 50.0, phy::Channel::Params{0.0}, 5),
        routes(net::ConnectivityGraph({{0, 0}, {30, 0}}, 50.0)) {
    delivery.delivered = [this](const net::DataPacket&) { ++delivered; };
    delivery.dropped = [this](const net::DataPacket&, const char* reason) {
      last_drop_reason = reason;
      ++dropped;
    };
    const app::MacChoice mac_choice{mac::sensor_mac_params(),
                                    mac::MacFamily::kAuto,
                                    {},
                                    nullptr};
    for (net::NodeId id = 0; id < 2; ++id)
      nodes.push_back(std::make_unique<app::ForwardingNode>(
          sim, channel, routes, id, 0, energy::mica(),
          phy::OverhearMode::kNone, mac_choice, seed, &delivery));
  }

  sim::Simulator sim;
  phy::Channel channel;
  net::RoutingTable routes;
  app::DeliverySink delivery;
  std::vector<std::unique_ptr<app::ForwardingNode>> nodes;
  int delivered = 0;
  int dropped = 0;
  std::string last_drop_reason;
};

TEST(Battery, DiesAtTheExactlyComputedDepletionInstant) {
  // An idle Mica radio draws p_idle continuously, so a battery of
  // p_idle * T joules must deplete at exactly T — as one scheduled event,
  // not a polling approximation.
  SensorWorld world;
  const double kT = 50.0;
  const double capacity = energy::mica().p_idle * kT;
  int deaths = 0;
  energy::Battery battery(world.sim, capacity, [&] {
    ++deaths;
    app::crash_node(world.nodes[1].get(), nullptr, nullptr, 1, nullptr,
                    nullptr);
  });
  battery.attach(&world.nodes[1]->radio().meter());
  world.nodes[1]->radio().set_energy_observer([&] { battery.rearm(); });
  battery.rearm();

  world.sim.run_until(kT - 1e-6);
  EXPECT_EQ(deaths, 0);
  EXPECT_TRUE(world.nodes[1]->up());
  world.sim.run_until(100.0);
  EXPECT_EQ(deaths, 1);
  EXPECT_FALSE(world.nodes[1]->up());
  EXPECT_TRUE(battery.depleted());
  EXPECT_DOUBLE_EQ(battery.death_time(), capacity / energy::mica().p_idle);
  // Drawn is frozen at death and never exceeds the budget.
  EXPECT_LE(battery.drawn(), capacity * (1.0 + 1e-9));
  EXPECT_NEAR(battery.drawn(), capacity, capacity * 1e-9);
}

TEST(Battery, DeathAndFaultCrashLeaveIdenticalNodeState) {
  // The satellite contract: a battery death IS a fault-plan crash — both
  // funnel through app::crash_node, so a node dying of depletion at T and
  // a node crashed by schedule at the same T must be indistinguishable
  // afterwards (radio state, per-category energies, MAC counters, drop
  // behaviour).
  const double kT = 50.0;
  const double kEnd = 100.0;
  const double capacity = energy::mica().p_idle * kT;

  SensorWorld by_battery;
  energy::Battery battery(by_battery.sim, capacity, [&] {
    app::crash_node(by_battery.nodes[1].get(), nullptr, nullptr, 1, nullptr,
                    nullptr);
  });
  battery.attach(&by_battery.nodes[1]->radio().meter());
  by_battery.nodes[1]->radio().set_energy_observer([&] { battery.rearm(); });
  battery.rearm();

  SensorWorld by_fault;
  by_fault.sim.schedule_at(capacity / energy::mica().p_idle, [&] {
    app::crash_node(by_fault.nodes[1].get(), nullptr, nullptr, 1, nullptr,
                    nullptr);
  });

  // Traffic after death must be refused identically.
  for (SensorWorld* world : {&by_battery, &by_fault})
    world->sim.schedule_at(kT + 10.0, [world] {
      world->nodes[1]->send(
          net::DataPacket{1, 0, 1, util::bytes(32), world->sim.now()});
    });

  by_battery.sim.run_until(kEnd);
  by_fault.sim.run_until(kEnd);

  for (SensorWorld* world : {&by_battery, &by_fault}) {
    EXPECT_FALSE(world->nodes[1]->up());
    EXPECT_EQ(world->nodes[1]->radio().state(), phy::RadioState::kOff);
    EXPECT_EQ(world->delivered, 0);
    EXPECT_EQ(world->dropped, 1);
    EXPECT_EQ(world->last_drop_reason, "node-down");
  }
  auto& meter_a = by_battery.nodes[1]->radio().meter();
  auto& meter_b = by_fault.nodes[1]->radio().meter();
  meter_a.finalize(kEnd);
  meter_b.finalize(kEnd);
  for (std::size_t c = 0; c < energy::kEnergyCategoryCount; ++c) {
    const auto cat = static_cast<energy::EnergyCategory>(c);
    EXPECT_DOUBLE_EQ(meter_a.energy(cat), meter_b.energy(cat))
        << "category " << c;
    EXPECT_DOUBLE_EQ(meter_a.duration(cat), meter_b.duration(cat))
        << "category " << c;
  }
  const auto& stats_a = by_battery.nodes[1]->mac().stats();
  const auto& stats_b = by_fault.nodes[1]->mac().stats();
  EXPECT_EQ(stats_a.crash_resets, 1);
  EXPECT_EQ(stats_a.crash_resets, stats_b.crash_resets);
  EXPECT_EQ(stats_a.crash_drops, stats_b.crash_drops);
  EXPECT_EQ(stats_a.tx_attempts, stats_b.tx_attempts);
  EXPECT_EQ(stats_a.enqueued, stats_b.enqueued);
}

TEST(Battery, RejectsNonPositiveCapacity) {
  sim::Simulator sim;
  EXPECT_THROW(energy::Battery(sim, 0.0, [] {}), std::invalid_argument);
  EXPECT_THROW(energy::Battery(sim, -1.0, [] {}), std::invalid_argument);
}

// ------------------------------------------------ lifetime-aware routes --

TEST(LifetimeRouting, WeightedTreeAvoidsDepletedRelays) {
  // Diamond: sink 0 at the corner, relays 1 and 2 one hop away, source 3
  // reachable only through a relay. Shortest-path ties break to the lower
  // id (relay 1); a battery cost on relay 1 must bend the route through
  // relay 2 — and an equal cost on both must restore the historical tie.
  const net::ConnectivityGraph graph({{0, 0}, {40, 0}, {0, 40}, {40, 40}},
                                     45.0);
  const net::ConvergecastRouting plain(graph, 0);
  EXPECT_EQ(plain.next_hop(3, 0), 1);
  EXPECT_EQ(plain.hops(3, 0), 2);

  const net::NodeCostFn avoid_one = [](net::NodeId v) {
    return v == 1 ? 3.6 : 0.0;  // weight * drawn-fraction, near-depleted
  };
  const net::ConvergecastRouting weighted(graph, 0, nullptr, avoid_one);
  EXPECT_EQ(weighted.next_hop(3, 0), 2);
  EXPECT_EQ(weighted.next_hop(1, 0), 0);  // a costly relay still routes out
  EXPECT_EQ(weighted.hops(3, 0), 2);      // depth counts hops, not weight

  const net::NodeCostFn uniform = [](net::NodeId) { return 0.25; };
  const net::ConvergecastRouting balanced(graph, 0, nullptr, uniform);
  EXPECT_EQ(balanced.next_hop(3, 0), 1)
      << "uniform battery drain must reproduce the shortest-path tie-break";
}

TEST(LifetimeRouting, UnreachableAliveMasksDeadNodes) {
  // 4-node line: killing node 1 strands 2 and 3 (alive but partitioned);
  // the dead node itself must NOT be reported — it is down, not stranded.
  const net::ConnectivityGraph graph({{0, 0}, {40, 0}, {80, 0}, {120, 0}},
                                     41.0);
  net::LinkState links(4);
  EXPECT_TRUE(net::unreachable_alive(graph, 0, links).empty());
  links.set_node_up(1, false);
  const auto stranded = net::unreachable_alive(graph, 0, links);
  ASSERT_EQ(stranded.size(), 2u);
  EXPECT_EQ(stranded[0], 2);
  EXPECT_EQ(stranded[1], 3);
}

// --------------------------------------------- registry variants, e2e ----

app::ScenarioConfig lifetime_config(
    const std::string& variant, double duration, std::uint64_t seed,
    std::vector<std::pair<std::string, double>> extra = {}) {
  std::vector<std::pair<std::string, double>> axes = {
      {"senders", 5}, {"burst", 50}, {"duration", duration}};
  for (auto& kv : extra) axes.push_back(std::move(kv));
  app::ScenarioConfig cfg = app::ScenarioRegistry::builtin().make(
      variant, app::SweepPoint(0, std::move(axes)));
  cfg.seed = seed;
  return cfg;
}

TEST(LifetimeScenario, VariantsRunGreenWithDefaultBudgets) {
  // Default budgets (150 J sensor / 600 J wifi) outlast a short run: the
  // battery machinery is live but nobody dies, and the "never happened"
  // sentinels survive into the metrics.
  for (const char* name : {"lifetime-mh/dual", "lifetime-mh/sensor"}) {
    const auto m = app::run_scenario(lifetime_config(name, 120.0, 3));
    EXPECT_GT(m.generated, 0) << name;
    EXPECT_GT(m.delivered, 0) << name;
    EXPECT_EQ(m.battery_deaths, 0) << name;
    EXPECT_DOUBLE_EQ(m.time_to_first_death, -1) << name;
    EXPECT_DOUBLE_EQ(m.time_to_sink_partition, -1) << name;
    EXPECT_GT(m.battery_max_drawn_fraction, 0) << name;
    EXPECT_LE(m.battery_max_drawn_fraction, 1.0) << name;
    // Nobody died, so "bits until death/partition" covers the whole run.
    EXPECT_EQ(m.delivered_bits_until_first_death,
              m.delivered * 256 /* 32-byte packets */)
        << name;
    EXPECT_EQ(m.chan_rx_starts, m.chan_rx_ends + m.chan_rx_live_at_end)
        << name;
  }
}

TEST(LifetimeScenario, DeadNodesContributeNothingAfterDeath) {
  // A budget that kills the whole sensor grid mid-run: doubling the
  // duration afterwards must change NOTHING the dead network could have
  // produced — deliveries, channel activity, MAC attempts, energies all
  // freeze at death; only the workload generator (whose packets die as
  // node-down drops) keeps counting.
  const auto short_run = app::run_scenario(lifetime_config(
      "lifetime-mh/sensor", 150.0, 5, {{"sensor_j", 3.0}}));
  const auto long_run = app::run_scenario(lifetime_config(
      "lifetime-mh/sensor", 300.0, 5, {{"sensor_j", 3.0}}));
  ASSERT_GT(short_run.battery_deaths, 0);
  EXPECT_GT(short_run.time_to_first_death, 0);
  EXPECT_LT(short_run.time_to_first_death, 150.0);
  EXPECT_EQ(long_run.battery_deaths, short_run.battery_deaths);
  EXPECT_DOUBLE_EQ(long_run.time_to_first_death,
                   short_run.time_to_first_death);
  EXPECT_EQ(long_run.delivered, short_run.delivered);
  EXPECT_EQ(long_run.chan_rx_starts, short_run.chan_rx_starts);
  EXPECT_EQ(long_run.mac_tx_attempts, short_run.mac_tx_attempts);
  EXPECT_GT(long_run.generated, short_run.generated);
  EXPECT_GT(long_run.dropped_node_down, 0);
  // Partition ordering and byte monotonicity.
  if (short_run.time_to_sink_partition >= 0) {
    EXPECT_GE(short_run.time_to_sink_partition,
              short_run.time_to_first_death);
    EXPECT_GE(short_run.delivered_bits_until_partition,
              short_run.delivered_bits_until_first_death);
  }
  EXPECT_LE(short_run.delivered_bits_until_first_death,
            short_run.delivered * 256);
}

TEST(LifetimeScenario, TimeToFirstDeathMonotoneInInitialBudget) {
  // More joules can only postpone the first death: same seed, same
  // trajectory until the smaller battery's depletion instant.
  double previous = 0.0;
  for (const double joules : {2.0, 4.0, 8.0, 1000.0}) {
    const auto m = app::run_scenario(lifetime_config(
        "lifetime-mh/sensor", 150.0, 5, {{"sensor_j", joules}}));
    EXPECT_LE(m.battery_max_drawn_fraction, 1.0 + 1e-6);
    const double ttfd =
        m.time_to_first_death < 0 ? 1e18 : m.time_to_first_death;
    EXPECT_GE(ttfd, previous) << "sensor_j = " << joules;
    previous = ttfd;
  }
}

TEST(LifetimeScenario, BulkTransmissionOutlivesAlwaysOnWifi) {
  // The acceptance cell: a churn-free lossy-mh network at equal offered
  // load and equal 802.11 budget. Always-on 802.11 burns p_idle = 0.83 W
  // continuously and dies around 120 s; the dual-radio node keeps its
  // 802.11 radio off between bursts, so its first death lands strictly
  // later (or never, inside this horizon).
  const std::vector<std::pair<std::string, double>> budgets = {
      {"sensor_j", 100.0}, {"wifi_j", 100.0}};
  const auto wifi = app::run_scenario(
      lifetime_config("lifetime-lossy-mh/wifi", 300.0, 3, budgets));
  const auto dual = app::run_scenario(
      lifetime_config("lifetime-lossy-mh/dual", 300.0, 3, budgets));
  ASSERT_GT(wifi.battery_deaths, 0);
  ASSERT_GT(wifi.time_to_first_death, 0);
  ASSERT_LT(wifi.time_to_first_death, 300.0);
  if (dual.time_to_first_death >= 0)
    EXPECT_GT(dual.time_to_first_death, wifi.time_to_first_death);
  else
    EXPECT_EQ(dual.battery_deaths, 0);  // outlived the whole horizon
}

TEST(LifetimeScenario, LifetimeRoutingRunsGreenAndReroutes) {
  const auto m = app::run_scenario(lifetime_config(
      "lifetime-mh/dual", 120.0, 3, {{"lifetime_routing", 1.0}}));
  EXPECT_GT(m.delivered, 0);
  // The periodic refresh alone forces rebuilds even with nobody dead.
  EXPECT_GT(m.route_rebuilds, 0);
  const auto again = app::run_scenario(lifetime_config(
      "lifetime-mh/dual", 120.0, 3, {{"lifetime_routing", 1.0}}));
  EXPECT_EQ(again.delivered, m.delivered);
  EXPECT_EQ(again.events_processed, m.events_processed);
}

TEST(LifetimeScenario, LifetimeRoutingRequiresAnEnabledBattery) {
  auto cfg = lifetime_config("mh/dual", 60.0, 3);
  cfg.route_policy = net::RoutePolicy::kLifetimeAware;
  ASSERT_FALSE(cfg.battery.enabled);
  EXPECT_THROW(app::run_scenario(cfg), std::invalid_argument);
}

TEST(LifetimeScenario, FaultRecoveryOfABatteryDeadNodeIsANoOp) {
  // Churn + batteries: the fault plan wants to recover its crash victims,
  // but a node whose battery also ran dry must stay dark — battery death
  // is unrecoverable. With budgets that kill everything well before the
  // end, recoveries must come up short of crashes.
  auto cfg = lifetime_config("churn-mh/sensor", 300.0, 3);
  cfg.battery = energy::BatterySpec{};
  cfg.battery.enabled = true;
  cfg.battery.sensor_initial_j = 2.0;  // ~66 s at Mica idle
  const auto m = app::run_scenario(cfg);
  EXPECT_GT(m.battery_deaths, 0);
  EXPECT_LT(m.fault_node_recoveries, m.fault_node_crashes)
      << "at least one fault-plan recovery should have hit a battery-dead "
         "node and been refused";
  // The refusals are counted, not silent: every planned recovery either
  // executed or shows up in fault_recoveries_refused.
  EXPECT_GT(m.fault_recoveries_refused, 0);
  EXPECT_LE(m.fault_node_recoveries + m.fault_recoveries_refused,
            m.fault_node_crashes);
}

}  // namespace
}  // namespace bcp

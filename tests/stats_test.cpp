// Unit tests: stats module (summaries, CIs, percentiles, tables).
#include <gtest/gtest.h>

#include <cmath>

#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "util/rng.hpp"

namespace bcp::stats {
namespace {

TEST(Summary, MeanAndVarianceMatchClosedForm) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, SingleSampleHasZeroCi) {
  Summary s;
  s.add(3.14);
  EXPECT_DOUBLE_EQ(s.ci_half_width(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.14);
}

TEST(Summary, EmptyThrows) {
  Summary s;
  EXPECT_THROW(s.mean(), std::invalid_argument);
  EXPECT_THROW(s.min(), std::invalid_argument);
  EXPECT_THROW(s.ci_half_width(), std::invalid_argument);
}

TEST(Summary, CiHalfWidthMatchesTTable) {
  // n=20 samples, known stddev: hw = t_{0.975,19} * s/sqrt(20).
  Summary s;
  for (int i = 1; i <= 20; ++i) s.add(static_cast<double>(i));
  const double sd = s.stddev();
  const double expected = 2.093 * sd / std::sqrt(20.0);
  EXPECT_NEAR(s.ci_half_width(0.95), expected, 1e-9);
}

TEST(Summary, CiShrinksWithSamples) {
  util::Xoshiro256 rng(5);
  Summary small, large;
  for (int i = 0; i < 10; ++i) small.add(rng.uniform());
  for (int i = 0; i < 1000; ++i) large.add(rng.uniform());
  EXPECT_GT(small.ci_half_width(), large.ci_half_width());
}

TEST(Summary, CiCoversTrueMeanUsually) {
  // Property: ~95% of intervals built from N(0,1) samples contain 0.
  util::Xoshiro256 rng(1234);
  int covered = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    Summary s;
    for (int i = 0; i < 15; ++i) {
      // Box-Muller standard normal.
      const double u1 = rng.uniform();
      const double u2 = rng.uniform();
      s.add(std::sqrt(-2 * std::log(1 - u1)) *
            std::cos(2 * M_PI * u2));
    }
    const double hw = s.ci_half_width(0.95);
    if (std::abs(s.mean()) <= hw) ++covered;
  }
  const double coverage = static_cast<double>(covered) / trials;
  EXPECT_GT(coverage, 0.90);
  EXPECT_LT(coverage, 0.99);
}

TEST(TCritical, MatchesKnownValues) {
  EXPECT_NEAR(t_critical(1, 0.95), 12.706, 1e-3);
  EXPECT_NEAR(t_critical(19, 0.95), 2.093, 1e-3);
  EXPECT_NEAR(t_critical(30, 0.95), 2.042, 1e-3);
  // Large dof approaches the normal quantile 1.96.
  EXPECT_NEAR(t_critical(1000, 0.95), 1.962, 5e-3);
}

TEST(TCritical, InvalidArgumentsThrow) {
  EXPECT_THROW(t_critical(0, 0.95), std::invalid_argument);
  EXPECT_THROW(t_critical(5, 0.0), std::invalid_argument);
  EXPECT_THROW(t_critical(5, 1.0), std::invalid_argument);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 17.5);
}

TEST(Percentile, UnsortedInputHandled) {
  std::vector<double> v{40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
}

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.add_row({"a", "bb"});
  t.add_row({"ccc", "d"});
  const std::string s = t.to_string();
  EXPECT_EQ(s, "a    bb\nccc  d\n");
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(0.123456, 3), "0.123");
  EXPECT_EQ(TextTable::num(1500.0, 4), "1500");
  const std::string ci = TextTable::num_ci(0.5, 0.01, 3);
  EXPECT_NE(ci.find("0.5"), std::string::npos);
  EXPECT_NE(ci.find("+-"), std::string::npos);
}

TEST(TextTable, RaggedRowsTolerated) {
  TextTable t;
  t.add_row({"x"});
  t.add_row({"y", "z"});
  EXPECT_NO_THROW(t.to_string());
}

}  // namespace
}  // namespace bcp::stats

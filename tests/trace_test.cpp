// Tests: the protocol observer hooks and the TraceRecorder, exercised by
// running a full handshake between two agents over the prototype harness
// plus a scripted fake-host sequence.
#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/bcp_agent.hpp"
#include "core/bcp_host.hpp"
#include "core/trace_recorder.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace bcp::core {
namespace {

using util::bytes;
using Kind = TraceRecorder::Kind;

class ScriptHost : public BcpHost {
 public:
  ScriptHost(sim::Simulator& sim, net::NodeId id) : sim_(sim), id_(id) {}
  net::NodeId self() const override { return id_; }
  util::Seconds now() const override { return sim_.now(); }
  TimerId set_timer(util::Seconds d, core::BcpHost::TimerCallback cb) override {
    return sim_.schedule_in(d, std::move(cb)).id;
  }
  void cancel_timer(TimerId id) override {
    sim_.cancel(sim::Simulator::EventHandle{id});
  }
  void send_low(net::MessageRef m) override { low.push_back(*m); }
  void send_high(net::MessageRef m, net::NodeId,
                 core::BcpHost::SendDone done) override {
    high.push_back(*m);
    sim_.schedule_in(0.001, [done = std::move(done)]() mutable {
      done(true);
    });
  }
  void high_radio_on() override {
    on = true;
    if (agent) agent->on_high_radio_ready();
  }
  void high_radio_off() override { on = false; }
  bool high_radio_ready() const override { return on; }
  net::NodeId high_next_hop(net::NodeId dest) const override {
    return dest == 9 ? 5 : net::kInvalidNode;
  }
  void deliver(const net::DataPacket&) override {}
  void packet_dropped(const net::DataPacket&, const char*) override {}

  sim::Simulator& sim_;
  net::NodeId id_;
  BcpAgent* agent = nullptr;
  bool on = false;
  std::vector<net::Message> low;
  std::vector<net::Message> high;
};

BcpConfig tiny() {
  BcpConfig cfg;
  cfg.burst_threshold_bits = 4 * bytes(32);
  cfg.buffer_capacity_bits = 64 * bytes(32);
  cfg.frame_payload_bits = bytes(64);  // 2 packets per frame
  cfg.radio_off_linger = 0.01;
  return cfg;
}

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() : host_(sim_, 0), agent_(host_, tiny()) {
    host_.agent = &agent_;
    agent_.set_observer(&trace_);
  }
  void run_full_handshake() {
    for (std::uint32_t i = 1; i <= 4; ++i)
      agent_.submit(net::DataPacket{0, 9, i, bytes(32), sim_.now()});
    const auto& req = std::get<net::WakeupRequest>(host_.low[0].body);
    net::Message ack;
    ack.src = 5;
    ack.dst = 0;
    ack.body = net::WakeupAck{5, 0, req.handshake_id, req.burst_bits};
    agent_.on_low_message(ack);
    sim_.run_until(1.0);
  }
  sim::Simulator sim_;
  ScriptHost host_;
  BcpAgent agent_;
  TraceRecorder trace_;
};

TEST_F(TraceTest, SenderSideEventSequence) {
  run_full_handshake();
  EXPECT_EQ(trace_.count(Kind::kBuffered), 4);
  EXPECT_EQ(trace_.count(Kind::kWakeupSent), 1);
  EXPECT_EQ(trace_.count(Kind::kTransferStarted), 1);
  EXPECT_EQ(trace_.count(Kind::kFrameSent), 2);  // 4 pkts, 2 per frame
  EXPECT_EQ(trace_.count(Kind::kSenderEnded), 1);
  // Radio: one on request, one off request.
  EXPECT_EQ(trace_.count(Kind::kRadioRequest), 2);

  // Causal order: buffered -> wakeup -> transfer -> frames -> ended.
  std::vector<Kind> kinds;
  for (const auto& r : trace_.records()) kinds.push_back(r.kind);
  const auto pos = [&](Kind k) {
    for (std::size_t i = 0; i < kinds.size(); ++i)
      if (kinds[i] == k) return i;
    return kinds.size();
  };
  EXPECT_LT(pos(Kind::kBuffered), pos(Kind::kWakeupSent));
  EXPECT_LT(pos(Kind::kWakeupSent), pos(Kind::kTransferStarted));
  EXPECT_LT(pos(Kind::kTransferStarted), pos(Kind::kFrameSent));
  EXPECT_LT(pos(Kind::kFrameSent), pos(Kind::kSenderEnded));
}

TEST_F(TraceTest, TimesAreMonotonic) {
  run_full_handshake();
  double last = -1;
  for (const auto& r : trace_.records()) {
    EXPECT_GE(r.time, last);
    last = r.time;
  }
}

TEST_F(TraceTest, HandshakeFailureTraced) {
  for (std::uint32_t i = 1; i <= 4; ++i)
    agent_.submit(net::DataPacket{0, 9, i, bytes(32), sim_.now()});
  sim_.run_until(60.0);  // no ack ever arrives
  EXPECT_GE(trace_.count(Kind::kWakeupSent), 2);  // retries traced
  EXPECT_GE(trace_.count(Kind::kSenderEnded), 1);
  bool saw_failure = false;
  for (const auto& r : trace_.records())
    if (r.kind == Kind::kSenderEnded &&
        r.a == static_cast<int>(SessionEnd::kHandshakeFailed))
      saw_failure = true;
  EXPECT_TRUE(saw_failure);
}

TEST_F(TraceTest, ReceiverSideEventSequence) {
  net::Message wake;
  wake.src = 3;
  wake.dst = 0;
  wake.body = net::WakeupRequest{3, 0, 1, 4 * bytes(32)};
  agent_.on_low_message(wake);
  net::BulkFrame f;
  f.sender = 3;
  f.receiver = 0;
  f.handshake_id = 1;
  f.index = 0;
  f.total = 1;
  f.packets.push_back(net::DataPacket{3, 0, 1, bytes(32), 0.0});
  agent_.on_bulk_frame(f);
  sim_.run_until(1.0);
  EXPECT_EQ(trace_.count(Kind::kAckSent), 1);
  EXPECT_EQ(trace_.count(Kind::kFrameReceived), 1);
  EXPECT_EQ(trace_.count(Kind::kReceiverEnded), 1);
  bool completed = false;
  for (const auto& r : trace_.records())
    if (r.kind == Kind::kReceiverEnded &&
        r.a == static_cast<int>(SessionEnd::kCompleted))
      completed = true;
  EXPECT_TRUE(completed);
}

TEST_F(TraceTest, ReceiverTimeoutTraced) {
  net::Message wake;
  wake.src = 3;
  wake.dst = 0;
  wake.body = net::WakeupRequest{3, 0, 1, 4 * bytes(32)};
  agent_.on_low_message(wake);
  sim_.run_until(30.0);  // no data arrives
  bool timed_out = false;
  for (const auto& r : trace_.records())
    if (r.kind == Kind::kReceiverEnded &&
        r.a == static_cast<int>(SessionEnd::kTimedOut))
      timed_out = true;
  EXPECT_TRUE(timed_out);
}

TEST_F(TraceTest, TranscriptAndCsvRender) {
  run_full_handshake();
  const std::string text = trace_.transcript();
  EXPECT_NE(text.find("wakeup-sent"), std::string::npos);
  EXPECT_NE(text.find("transfer-started"), std::string::npos);
  const std::string csv = trace_.csv();
  EXPECT_EQ(csv.rfind("time,kind,peer,a,b\n", 0), 0u);
  // One CSV line per record plus the header.
  const auto lines =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, trace_.records().size() + 1);
  trace_.clear();
  EXPECT_TRUE(trace_.records().empty());
}

TEST_F(TraceTest, DetachStopsRecording) {
  agent_.set_observer(nullptr);
  run_full_handshake();
  EXPECT_TRUE(trace_.records().empty());
}

TEST(TraceNames, Stable) {
  EXPECT_STREQ(to_string(SessionEnd::kCompleted), "completed");
  EXPECT_STREQ(to_string(SessionEnd::kHandshakeFailed), "handshake-failed");
  EXPECT_STREQ(to_string(Kind::kWakeupSent), "wakeup-sent");
  EXPECT_STREQ(to_string(Kind::kRadioRequest), "radio-request");
}

}  // namespace
}  // namespace bcp::core

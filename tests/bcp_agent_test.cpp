// Unit tests: the BCP agent state machines (§3), driven through a scripted
// fake host so every protocol transition is observable and fault-injectable.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/bcp_agent.hpp"
#include "core/bcp_host.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace bcp::core {
namespace {

using util::bytes;

class FakeHost : public BcpHost {
 public:
  FakeHost(sim::Simulator& sim, net::NodeId id) : sim_(sim), id_(id) {}

  // ---- BcpHost ----
  net::NodeId self() const override { return id_; }
  util::Seconds now() const override { return sim_.now(); }
  TimerId set_timer(util::Seconds delay,
                    core::BcpHost::TimerCallback cb) override {
    return sim_.schedule_in(delay, std::move(cb)).id;
  }
  void cancel_timer(TimerId id) override {
    sim_.cancel(sim::Simulator::EventHandle{id});
  }
  void send_low(net::MessageRef msg) override { low_sent.push_back(*msg); }
  void send_high(net::MessageRef msg, net::NodeId peer,
                 core::BcpHost::SendDone done) override {
    high_sent.push_back(*msg);
    high_peers.push_back(peer);
    high_done.push_back(std::move(done));
  }
  void high_radio_on() override {
    ++power_on_calls;
    if (radio_on) return;
    radio_on = true;
    if (wake_delay <= 0) {
      radio_ready = true;
      if (agent) agent->on_high_radio_ready();
    } else {
      sim_.schedule_in(wake_delay, [this] {
        if (!radio_on) return;  // switched off again meanwhile
        radio_ready = true;
        if (agent) agent->on_high_radio_ready();
      });
    }
  }
  void high_radio_off() override {
    ++power_off_calls;
    radio_on = false;
    radio_ready = false;
  }
  bool high_radio_ready() const override { return radio_ready; }
  net::NodeId high_next_hop(net::NodeId dest) const override {
    const auto it = routes.find(dest);
    return it == routes.end() ? net::kInvalidNode : it->second;
  }
  void deliver(const net::DataPacket& p) override { delivered.push_back(p); }
  void packet_dropped(const net::DataPacket& p,
                      const char* reason) override {
    drops.emplace_back(p, reason);
  }

  /// Completes the oldest outstanding high-radio send.
  void complete_high(bool success) {
    ASSERT_FALSE(high_done.empty());
    auto done = std::move(high_done.front());
    high_done.pop_front();
    done(success);
  }

  sim::Simulator& sim_;
  net::NodeId id_;
  BcpAgent* agent = nullptr;
  util::Seconds wake_delay = 0.1;
  bool radio_on = false;
  bool radio_ready = false;
  int power_on_calls = 0;
  int power_off_calls = 0;
  std::map<net::NodeId, net::NodeId> routes;
  std::vector<net::Message> low_sent;
  std::vector<net::Message> high_sent;
  std::vector<net::NodeId> high_peers;
  std::deque<core::BcpHost::SendDone> high_done;
  std::vector<net::DataPacket> delivered;
  std::vector<std::pair<net::DataPacket, std::string>> drops;
};

BcpConfig small_config() {
  BcpConfig cfg;
  cfg.burst_threshold_bits = 10 * bytes(32);  // 10 packets
  cfg.buffer_capacity_bits = 100 * bytes(32);
  cfg.frame_payload_bits = bytes(128);  // 4 packets per frame
  cfg.wakeup_ack_timeout = 1.0;
  cfg.max_wakeup_retries = 2;
  cfg.handshake_retry_backoff = 5.0;
  cfg.first_data_timeout = 1.0;
  cfg.inter_frame_timeout = 0.5;
  cfg.radio_off_linger = 0.01;
  return cfg;
}

net::DataPacket pkt(net::NodeId origin, net::NodeId dest, std::uint32_t seq,
                    util::Seconds t = 0.0) {
  return net::DataPacket{origin, dest, seq, bytes(32), t};
}

class BcpSenderTest : public ::testing::Test {
 protected:
  BcpSenderTest() : host_(sim_, 0) {
    host_.routes[9] = 5;  // destination 9 via high-radio next hop 5
    agent_ = std::make_unique<BcpAgent>(host_, small_config());
    host_.agent = agent_.get();
  }
  void submit_n(int n, net::NodeId dest = 9) {
    for (int i = 0; i < n; ++i)
      agent_->submit(pkt(0, dest, static_cast<std::uint32_t>(i + 1)));
  }
  sim::Simulator sim_;
  FakeHost host_;
  std::unique_ptr<BcpAgent> agent_;
};

TEST_F(BcpSenderTest, BuffersBelowThresholdWithoutHandshake) {
  submit_n(9);
  EXPECT_TRUE(host_.low_sent.empty());
  EXPECT_EQ(agent_->buffer().buffered_bits(5), 9 * bytes(32));
  EXPECT_FALSE(host_.radio_on);  // radio stays off while accumulating
}

TEST_F(BcpSenderTest, ThresholdTriggersWakeupWithBurstSize) {
  submit_n(10);
  ASSERT_EQ(host_.low_sent.size(), 1u);
  const auto& msg = host_.low_sent[0];
  EXPECT_EQ(msg.dst, 5);  // wake-up goes to the high-radio next hop
  const auto& req = std::get<net::WakeupRequest>(msg.body);
  EXPECT_EQ(req.requester, 0);
  EXPECT_EQ(req.target, 5);
  EXPECT_EQ(req.burst_bits, 10 * bytes(32));
  EXPECT_FALSE(host_.radio_on);  // §3: sender waits for the ack radio-off
  EXPECT_TRUE(agent_->has_sender_session(5));
}

TEST_F(BcpSenderTest, OnlyOneHandshakePerPeer) {
  submit_n(30);
  EXPECT_EQ(host_.low_sent.size(), 1u);
}

TEST_F(BcpSenderTest, AckStartsRadioThenFramesFlow) {
  submit_n(10);
  const auto req = std::get<net::WakeupRequest>(host_.low_sent[0].body);
  net::Message ack;
  ack.src = 5;
  ack.dst = 0;
  ack.body = net::WakeupAck{5, 0, req.handshake_id, req.burst_bits};
  agent_->on_low_message(ack);
  EXPECT_TRUE(host_.radio_on);
  EXPECT_TRUE(host_.high_sent.empty());  // still waking (100 ms)
  sim_.run_until(0.2);
  // 10 packets at 4 per frame -> 3 frames, sent one at a time.
  ASSERT_EQ(host_.high_sent.size(), 1u);
  const auto& f0 = std::get<net::BulkFrame>(host_.high_sent[0].body);
  EXPECT_EQ(f0.index, 0);
  EXPECT_EQ(f0.total, 3);
  EXPECT_EQ(f0.packets.size(), 4u);
  host_.complete_high(true);
  host_.complete_high(true);
  ASSERT_EQ(host_.high_sent.size(), 3u);
  const auto& f2 = std::get<net::BulkFrame>(host_.high_sent[2].body);
  EXPECT_EQ(f2.packets.size(), 2u);  // 4+4+2
  host_.complete_high(true);
  // Session over: buffer empty, radio released after the linger.
  EXPECT_EQ(agent_->buffer().total_bits(), 0);
  EXPECT_FALSE(agent_->has_sender_session(5));
  sim_.run_until(0.3);
  EXPECT_EQ(host_.power_off_calls, 1);
  EXPECT_FALSE(host_.radio_on);
  EXPECT_EQ(agent_->stats().sender_sessions_completed, 1);
}

TEST_F(BcpSenderTest, GrantSmallerThanBurstLimitsTransfer) {
  submit_n(20);
  const auto req = std::get<net::WakeupRequest>(host_.low_sent[0].body);
  net::Message ack;
  ack.src = 5;
  ack.dst = 0;
  ack.body = net::WakeupAck{5, 0, req.handshake_id, 6 * bytes(32)};
  agent_->on_low_message(ack);
  sim_.run_until(0.2);
  // 6 granted packets -> frames of 4+2; 14 packets remain buffered.
  EXPECT_EQ(agent_->buffer().buffered_bits(5), 14 * bytes(32));
  ASSERT_FALSE(host_.high_sent.empty());
  const auto& f0 = std::get<net::BulkFrame>(host_.high_sent[0].body);
  EXPECT_EQ(f0.total, 2);
}

TEST_F(BcpSenderTest, SessionRestartsWhenBacklogStillOverThreshold) {
  submit_n(20);
  const auto req = std::get<net::WakeupRequest>(host_.low_sent[0].body);
  net::Message ack;
  ack.src = 5;
  ack.dst = 0;
  ack.body = net::WakeupAck{5, 0, req.handshake_id, 10 * bytes(32)};
  agent_->on_low_message(ack);
  sim_.run_until(0.2);
  while (!host_.high_done.empty()) host_.complete_high(true);
  // 10 packets remain = threshold -> a second wake-up goes out at once.
  EXPECT_EQ(host_.low_sent.size(), 2u);
  EXPECT_TRUE(agent_->has_sender_session(5));
}

TEST_F(BcpSenderTest, AckTimeoutResendsWakeupThenGivesUp) {
  submit_n(10);
  EXPECT_EQ(host_.low_sent.size(), 1u);
  sim_.run_until(1.1);  // first timeout
  EXPECT_EQ(host_.low_sent.size(), 2u);
  sim_.run_until(2.2);  // second timeout (max_wakeup_retries = 2)
  EXPECT_EQ(host_.low_sent.size(), 3u);
  sim_.run_until(3.3);  // gives up, enters cooldown
  EXPECT_EQ(host_.low_sent.size(), 3u);
  EXPECT_FALSE(agent_->has_sender_session(5));
  EXPECT_EQ(agent_->stats().handshakes_failed, 1);
  EXPECT_EQ(agent_->stats().wakeup_retries, 2);
  // Data is retained and the handshake retries after the backoff
  // (cooldown 5 s from the give-up at t=3 -> 4th wake-up at t=8).
  EXPECT_EQ(agent_->buffer().buffered_bits(5), 10 * bytes(32));
  sim_.run_until(8.5);
  EXPECT_EQ(host_.low_sent.size(), 4u);
}

TEST_F(BcpSenderTest, RetransmittedWakeupRefreshesBurstSize) {
  submit_n(10);
  submit_n(5);  // more data arrives while waiting for the ack
  sim_.run_until(1.1);
  ASSERT_EQ(host_.low_sent.size(), 2u);
  const auto& req2 = std::get<net::WakeupRequest>(host_.low_sent[1].body);
  EXPECT_EQ(req2.burst_bits, 15 * bytes(32));
}

TEST_F(BcpSenderTest, StaleAckIgnored) {
  submit_n(10);
  const auto req = std::get<net::WakeupRequest>(host_.low_sent[0].body);
  net::Message ack;
  ack.src = 5;
  ack.dst = 0;
  ack.body = net::WakeupAck{5, 0, req.handshake_id + 77, bytes(320)};
  agent_->on_low_message(ack);  // wrong handshake id
  EXPECT_FALSE(host_.radio_on);
  EXPECT_TRUE(agent_->has_sender_session(5));
}

TEST_F(BcpSenderTest, ZeroGrantAbortsSession) {
  submit_n(10);
  const auto req = std::get<net::WakeupRequest>(host_.low_sent[0].body);
  net::Message ack;
  ack.src = 5;
  ack.dst = 0;
  ack.body = net::WakeupAck{5, 0, req.handshake_id, 0};
  agent_->on_low_message(ack);
  EXPECT_FALSE(agent_->has_sender_session(5));
  EXPECT_FALSE(host_.radio_on);
  EXPECT_EQ(agent_->buffer().buffered_bits(5), 10 * bytes(32));
  EXPECT_EQ(agent_->stats().handshakes_failed, 1);
  // The retry waits out the cooldown instead of hammering the peer.
  sim_.run_until(1.0);
  EXPECT_EQ(host_.low_sent.size(), 1u);
  sim_.run_until(5.5);  // cooldown (5 s) elapsed, fresh wake-up sent
  EXPECT_EQ(host_.low_sent.size(), 2u);
}

TEST_F(BcpSenderTest, FrameFailureCountedButTransferContinues) {
  submit_n(10);
  const auto req = std::get<net::WakeupRequest>(host_.low_sent[0].body);
  net::Message ack;
  ack.src = 5;
  ack.dst = 0;
  ack.body = net::WakeupAck{5, 0, req.handshake_id, req.burst_bits};
  agent_->on_low_message(ack);
  sim_.run_until(0.2);
  host_.complete_high(false);  // frame 0 lost at the MAC
  host_.complete_high(true);
  host_.complete_high(true);
  EXPECT_EQ(host_.high_sent.size(), 3u);
  EXPECT_EQ(agent_->stats().frames_send_failed, 1);
  EXPECT_FALSE(agent_->has_sender_session(5));
}

TEST_F(BcpSenderTest, NoRouteDropsPacket) {
  agent_->submit(pkt(0, 77, 1));  // no route to 77
  ASSERT_EQ(host_.drops.size(), 1u);
  EXPECT_EQ(host_.drops[0].second, "no-route");
  EXPECT_EQ(agent_->stats().packets_dropped_no_route, 1);
}

TEST_F(BcpSenderTest, BufferOverflowDropsPacket) {
  submit_n(100);  // exactly capacity; threshold handshake pending unanswered
  agent_->submit(pkt(0, 9, 999));
  ASSERT_EQ(host_.drops.size(), 1u);
  EXPECT_EQ(host_.drops[0].second, "buffer-full");
  EXPECT_EQ(agent_->stats().packets_dropped_buffer_full, 1);
}

TEST_F(BcpSenderTest, PacketForSelfDeliveredImmediately) {
  agent_->submit(pkt(0, 0, 1));
  ASSERT_EQ(host_.delivered.size(), 1u);
  EXPECT_EQ(agent_->stats().packets_delivered, 1);
}

TEST_F(BcpSenderTest, FlushSendsBelowThreshold) {
  submit_n(3);
  EXPECT_TRUE(host_.low_sent.empty());
  agent_->flush_all();
  ASSERT_EQ(host_.low_sent.size(), 1u);
  const auto& req = std::get<net::WakeupRequest>(host_.low_sent[0].body);
  EXPECT_EQ(req.burst_bits, 3 * bytes(32));
}

TEST_F(BcpSenderTest, FlushWithEmptyBufferIsNoOp) {
  agent_->flush_all();
  agent_->flush(5);
  EXPECT_TRUE(host_.low_sent.empty());
}

// ------------------------------------------------------------- receiver --

class BcpReceiverTest : public ::testing::Test {
 protected:
  BcpReceiverTest() : host_(sim_, 5) {
    host_.routes[9] = 9;  // this node forwards to 9 directly if needed
    BcpConfig cfg = small_config();
    agent_ = std::make_unique<BcpAgent>(host_, cfg);
    host_.agent = agent_.get();
  }
  net::Message wakeup(net::NodeId from, std::uint32_t hs, util::Bits burst) {
    net::Message m;
    m.src = from;
    m.dst = 5;
    m.body = net::WakeupRequest{from, 5, hs, burst};
    return m;
  }
  net::BulkFrame frame(net::NodeId from, std::uint32_t hs, std::uint16_t idx,
                       std::uint16_t total, int packets,
                       net::NodeId dest = 5) {
    net::BulkFrame f;
    f.sender = from;
    f.receiver = 5;
    f.handshake_id = hs;
    f.index = idx;
    f.total = total;
    for (int i = 0; i < packets; ++i)
      f.packets.push_back(pkt(from, dest,
                              static_cast<std::uint32_t>(idx * 100 + i)));
    return f;
  }
  sim::Simulator sim_;
  FakeHost host_;
  std::unique_ptr<BcpAgent> agent_;
};

TEST_F(BcpReceiverTest, WakeupPowersRadioAndAcksWithGrant) {
  agent_->on_low_message(wakeup(0, 7, 10 * bytes(32)));
  EXPECT_TRUE(host_.radio_on);
  ASSERT_EQ(host_.low_sent.size(), 1u);
  const auto& ack = std::get<net::WakeupAck>(host_.low_sent[0].body);
  EXPECT_EQ(ack.responder, 5);
  EXPECT_EQ(ack.requester, 0);
  EXPECT_EQ(ack.handshake_id, 7u);
  EXPECT_EQ(ack.granted_bits, 10 * bytes(32));
  EXPECT_TRUE(agent_->has_receiver_session(0));
}

TEST_F(BcpReceiverTest, GrantClampedToFreeBuffer) {
  // Pre-fill 95 of 100 packet slots through the sender path.
  host_.routes[9] = 9;
  for (int i = 0; i < 95; ++i)
    agent_->submit(pkt(5, 9, static_cast<std::uint32_t>(i)));
  host_.low_sent.clear();
  agent_->on_low_message(wakeup(0, 7, 50 * bytes(32)));
  ASSERT_FALSE(host_.low_sent.empty());
  const auto& ack = std::get<net::WakeupAck>(host_.low_sent.back().body);
  EXPECT_EQ(ack.granted_bits, 5 * bytes(32));  // only 5 slots free
}

TEST_F(BcpReceiverTest, FullBufferStaysSilent) {
  for (int i = 0; i < 100; ++i)
    agent_->submit(pkt(5, 9, static_cast<std::uint32_t>(i)));
  host_.low_sent.clear();
  const int power_on_before = host_.power_on_calls;
  agent_->on_low_message(wakeup(0, 7, bytes(32)));
  EXPECT_TRUE(host_.low_sent.empty());  // §3: no ack when full
  EXPECT_EQ(host_.power_on_calls, power_on_before);
  EXPECT_FALSE(agent_->has_receiver_session(0));
  EXPECT_EQ(agent_->stats().acks_suppressed_full, 1);
}

TEST_F(BcpReceiverTest, DuplicateWakeupReAcksIdempotently) {
  agent_->on_low_message(wakeup(0, 7, 10 * bytes(32)));
  agent_->on_low_message(wakeup(0, 7, 10 * bytes(32)));
  EXPECT_EQ(host_.low_sent.size(), 2u);
  const auto& a0 = std::get<net::WakeupAck>(host_.low_sent[0].body);
  const auto& a1 = std::get<net::WakeupAck>(host_.low_sent[1].body);
  EXPECT_EQ(a0.granted_bits, a1.granted_bits);
  EXPECT_EQ(a0.handshake_id, a1.handshake_id);
  // Only one session and one grant reservation exist.
  EXPECT_EQ(agent_->stats().acks_sent, 1);  // re-ack is not a new grant
}

TEST_F(BcpReceiverTest, CompletedBurstDeliversAndTurnsRadioOff) {
  agent_->on_low_message(wakeup(0, 7, 8 * bytes(32)));
  agent_->on_bulk_frame(frame(0, 7, 0, 2, 4));
  agent_->on_bulk_frame(frame(0, 7, 1, 2, 4));
  EXPECT_EQ(host_.delivered.size(), 8u);
  EXPECT_FALSE(agent_->has_receiver_session(0));
  EXPECT_EQ(agent_->stats().receiver_sessions_completed, 1);
  sim_.run_until(1.0);
  EXPECT_FALSE(host_.radio_on);
}

TEST_F(BcpReceiverTest, ForwardedPacketsReenterTheBuffer) {
  // Frames whose packets are destined elsewhere are re-buffered toward
  // their own next hop (multi-hop over the high radio, §3).
  agent_->on_low_message(wakeup(0, 7, 8 * bytes(32)));
  agent_->on_bulk_frame(frame(0, 7, 0, 1, 4, /*dest=*/9));
  EXPECT_EQ(host_.delivered.size(), 0u);
  EXPECT_EQ(agent_->buffer().buffered_bits(9), 4 * bytes(32));
  EXPECT_EQ(agent_->stats().packets_forwarded, 4);
}

TEST_F(BcpReceiverTest, FirstDataTimeoutReleasesRadio) {
  agent_->on_low_message(wakeup(0, 7, 10 * bytes(32)));
  EXPECT_TRUE(host_.radio_on);
  sim_.run_until(2.0);  // first_data_timeout = 1 s
  EXPECT_FALSE(agent_->has_receiver_session(0));
  EXPECT_EQ(agent_->stats().receiver_sessions_timed_out, 1);
  EXPECT_FALSE(host_.radio_on);
}

TEST_F(BcpReceiverTest, InterFrameTimeoutAbortsPartialBurst) {
  agent_->on_low_message(wakeup(0, 7, 8 * bytes(32)));
  agent_->on_bulk_frame(frame(0, 7, 0, 3, 4));
  EXPECT_EQ(host_.delivered.size(), 4u);  // partial data still delivered
  sim_.run_until(5.0);                    // inter_frame_timeout = 0.5 s
  EXPECT_FALSE(agent_->has_receiver_session(0));
  EXPECT_EQ(agent_->stats().receiver_sessions_timed_out, 1);
  EXPECT_FALSE(host_.radio_on);
}

TEST_F(BcpReceiverTest, LateFrameFromAbortedSessionIgnored) {
  agent_->on_low_message(wakeup(0, 7, 8 * bytes(32)));
  sim_.run_until(2.0);  // session timed out
  agent_->on_bulk_frame(frame(0, 7, 0, 2, 4));
  EXPECT_TRUE(host_.delivered.empty());
  EXPECT_EQ(agent_->stats().frames_received, 0);
}

TEST_F(BcpReceiverTest, NewHandshakeReplacesStaleSession) {
  agent_->on_low_message(wakeup(0, 7, 10 * bytes(32)));
  agent_->on_low_message(wakeup(0, 8, 10 * bytes(32)));
  EXPECT_TRUE(agent_->has_receiver_session(0));
  // Frames for the new handshake are accepted, old ones ignored.
  agent_->on_bulk_frame(frame(0, 7, 0, 1, 4));
  EXPECT_TRUE(host_.delivered.empty());
  agent_->on_bulk_frame(frame(0, 8, 0, 1, 4));
  EXPECT_EQ(host_.delivered.size(), 4u);
}

TEST_F(BcpReceiverTest, GrantReservationReleasedOnTimeout) {
  // A timed-out grant must give its reservation back: a second wake-up
  // then sees the full buffer again.
  agent_->on_low_message(wakeup(0, 7, 100 * bytes(32)));
  const auto& a0 = std::get<net::WakeupAck>(host_.low_sent[0].body);
  EXPECT_EQ(a0.granted_bits, 100 * bytes(32));
  sim_.run_until(2.0);  // timeout, reservation released
  agent_->on_low_message(wakeup(0, 9, 100 * bytes(32)));
  const auto& a1 = std::get<net::WakeupAck>(host_.low_sent[1].body);
  EXPECT_EQ(a1.granted_bits, 100 * bytes(32));
}

TEST_F(BcpReceiverTest, ConcurrentGrantsShareTheBuffer) {
  agent_->on_low_message(wakeup(0, 1, 60 * bytes(32)));
  agent_->on_low_message(wakeup(1, 1, 60 * bytes(32)));
  ASSERT_EQ(host_.low_sent.size(), 2u);
  const auto& a0 = std::get<net::WakeupAck>(host_.low_sent[0].body);
  const auto& a1 = std::get<net::WakeupAck>(host_.low_sent[1].body);
  EXPECT_EQ(a0.granted_bits, 60 * bytes(32));
  EXPECT_EQ(a1.granted_bits, 40 * bytes(32));  // only 40 slots left
  // The radio serves both sessions; it powers off only after both end.
  sim_.run_until(0.6);
  agent_->on_bulk_frame(frame(0, 1, 0, 1, 4));
  EXPECT_TRUE(host_.radio_on);
  sim_.run_until(10.0);  // second session times out too
  EXPECT_FALSE(host_.radio_on);
  EXPECT_EQ(host_.power_off_calls, 1);
}

// ------------------------------------------------------------ shortcuts --

TEST(BcpShortcuts, OverheardForwardingLearnsFartherNextHop) {
  sim::Simulator sim;
  FakeHost host(sim, 0);
  host.routes[9] = 5;
  BcpConfig cfg = small_config();
  cfg.enable_shortcuts = true;
  BcpAgent agent(host, cfg);
  host.agent = &agent;

  // Node 5 forwards our packets onward to node 7: learn 9 -> 7.
  net::BulkFrame f;
  f.sender = 5;
  f.receiver = 7;
  f.handshake_id = 1;
  f.index = 0;
  f.total = 1;
  f.packets.push_back(pkt(0, 9, 1));
  agent.on_bulk_frame_overheard(f);
  ASSERT_TRUE(agent.shortcut_for(9).has_value());
  EXPECT_EQ(*agent.shortcut_for(9), 7);
  EXPECT_EQ(agent.stats().shortcuts_learned, 1);

  // Routing now prefers the shortcut.
  agent.submit(pkt(0, 9, 2));
  EXPECT_EQ(agent.buffer().buffered_bits(7), bytes(32));
  EXPECT_EQ(agent.buffer().buffered_bits(5), 0);
}

TEST(BcpShortcuts, IgnoredWhenDisabledOrIrrelevant) {
  sim::Simulator sim;
  FakeHost host(sim, 0);
  host.routes[9] = 5;
  BcpConfig cfg = small_config();  // shortcuts disabled
  BcpAgent agent(host, cfg);
  host.agent = &agent;

  net::BulkFrame f;
  f.sender = 5;
  f.receiver = 7;
  f.packets.push_back(pkt(0, 9, 1));
  agent.on_bulk_frame_overheard(f);
  EXPECT_FALSE(agent.shortcut_for(9).has_value());

  // Enabled, but the frame carries other nodes' packets: nothing learned.
  cfg.enable_shortcuts = true;
  FakeHost host2(sim, 0);
  host2.routes[9] = 5;
  BcpAgent agent2(host2, cfg);
  net::BulkFrame g;
  g.sender = 5;
  g.receiver = 7;
  g.packets.push_back(pkt(3, 9, 1));  // origin 3, not us
  agent2.on_bulk_frame_overheard(g);
  EXPECT_FALSE(agent2.shortcut_for(9).has_value());
}

}  // namespace
}  // namespace bcp::core

// Unit/property tests: the break-even analysis (Eqs. 1-5, Figs. 1-4).
//
// These tests pin the *paper's qualitative claims* to the implementation:
// which radio pairs have a crossover, where it roughly lies, how it moves
// with idle time and forward progress, and the burst-amortization knee.
#include <gtest/gtest.h>

#include <string>

#include "energy/breakeven.hpp"
#include "energy/radio_model.hpp"
#include "util/units.hpp"

namespace bcp::energy {
namespace {

using util::Bits;
using util::bytes;
using util::kilobytes;

TEST(BreakEven, Eq1MatchesHandComputedValue) {
  // E_L(s) for Micaz, one 32 B packet with an 11 B header:
  // (Ptx+Prx)/R * (ps+hs) = (0.051+0.0591)/250e3 * 344 bits.
  auto a = DualRadioAnalysis::standard(micaz(), lucent_11mbps());
  const double expected = (0.051 + 0.0591) / 250e3 * 344.0;
  EXPECT_NEAR(a.energy_low(bytes(32)), expected, 1e-12);
}

TEST(BreakEven, Eq1QuantizesToWholePackets) {
  auto a = DualRadioAnalysis::standard(micaz(), lucent_11mbps());
  // 33 bytes needs two 32 B packets — same cost as 64 bytes.
  EXPECT_DOUBLE_EQ(a.energy_low(bytes(33)), a.energy_low(bytes(64)));
  EXPECT_LT(a.energy_low(bytes(32)), a.energy_low(bytes(33)));
  EXPECT_DOUBLE_EQ(a.energy_low(0), 0.0);
}

TEST(BreakEven, Eq2IncludesWakeupOverheads) {
  auto a = DualRadioAnalysis::standard(micaz(), lucent_11mbps());
  // At s=0 the high radio still pays the full wake-up overhead.
  EXPECT_NEAR(a.energy_high(0), a.wakeup_overhead(), 1e-15);
  // Overhead = 2*Ewakeup(high) + handshake over the low radio (idle = 0).
  const double handshake =
      (0.051 + 0.0591) / 250e3 * (2 * 27 * 8);  // two 27 B messages
  EXPECT_NEAR(a.wakeup_overhead(), 2 * 0.6e-3 + handshake, 1e-12);
  EXPECT_DOUBLE_EQ(a.idle_energy(), 0.0);
}

TEST(BreakEven, IdleEnergyChargesBothRadios) {
  auto cfg = DualRadioAnalysis::standard(micaz(), lucent_11mbps()).config();
  cfg.idle_time = 0.5;
  DualRadioAnalysis a(cfg);
  EXPECT_NEAR(a.idle_energy(), 2 * 0.7394 * 0.5, 1e-12);
}

TEST(BreakEven, CrossoverConsistentWithEnergyCurves) {
  // Eq. 3's s* is derived from the smooth per-bit costs; the quantized
  // curves (whole 1024 B high-radio frames) cross somewhat later. Scan for
  // the actual crossing and check it brackets s* within one frame's worth
  // of slack.
  auto a = DualRadioAnalysis::standard(micaz(), lucent_11mbps());
  const auto s_star = a.break_even_bits();
  ASSERT_TRUE(s_star.has_value());
  util::Bits crossing = 0;
  for (util::Bits s = bytes(32); s <= kilobytes(16); s += bytes(32)) {
    if (a.energy_high(s) <= a.energy_low(s)) {
      crossing = s;
      break;
    }
  }
  ASSERT_GT(crossing, 0) << "quantized curves never crossed";
  EXPECT_GE(crossing, *s_star);
  EXPECT_LE(crossing, *s_star + kilobytes(1));  // one frame of slack
  EXPECT_GT(a.energy_high(*s_star / 2), a.energy_low(*s_star / 2));
}

// ---- Fig. 1 claims -------------------------------------------------------

TEST(Fig1, CabletronAndLucent2NeverBeatMicaz) {
  // "Both Cabletron and Lucent (2 Mb/s) do not provide any energy savings
  // with Micaz since Micaz has a better energy-per-bit performance."
  EXPECT_FALSE(DualRadioAnalysis::standard(micaz(), cabletron_2mbps())
                   .break_even_bits()
                   .has_value());
  EXPECT_FALSE(DualRadioAnalysis::standard(micaz(), lucent_2mbps())
                   .break_even_bits()
                   .has_value());
}

TEST(Fig1, Lucent11BeatsMicazBelowOneKB) {
  // "While s* is typically low (i.e., below 1 KB)..."
  auto a = DualRadioAnalysis::standard(micaz(), lucent_11mbps());
  const auto s_star = a.break_even_bits();
  ASSERT_TRUE(s_star.has_value());
  EXPECT_GT(*s_star, 0);
  EXPECT_LT(*s_star, kilobytes(1));
}

TEST(Fig1, Lucent11SavesRoughlyHalfAtFourKB) {
  // "Lucent (11 Mbps) achieves a 50% energy savings compared to Micaz at
  // around 4 KB."
  auto a = DualRadioAnalysis::standard(micaz(), lucent_11mbps());
  const double savings = a.savings_fraction(kilobytes(4));
  EXPECT_GT(savings, 0.40);
  EXPECT_LT(savings, 0.65);
}

TEST(Fig1, AllWifiRadiosEventuallyBeatMicaAndMica2) {
  // Mica/Mica2 have worse per-bit energy than every 802.11 radio in Table 1.
  for (const auto* low : {&mica(), &mica2()}) {
    for (const auto* high :
         {&cabletron_2mbps(), &lucent_2mbps(), &lucent_11mbps()}) {
      auto a = DualRadioAnalysis::standard(*low, *high);
      ASSERT_TRUE(a.break_even_bits().has_value())
          << low->name << " + " << high->name;
      EXPECT_LT(*a.break_even_bits(), kilobytes(2))
          << low->name << " + " << high->name;
    }
  }
}

TEST(Fig1, SavingsGrowWithDataSize) {
  auto a = DualRadioAnalysis::standard(mica(), lucent_11mbps());
  double prev = a.savings_fraction(bytes(128));
  for (Bits s = bytes(256); s <= kilobytes(64); s *= 2) {
    const double cur = a.savings_fraction(s);
    EXPECT_GE(cur, prev - 1e-9);
    prev = cur;
  }
  EXPECT_GT(prev, 0.5);  // large transfers save a lot on Mica
}

// ---- Fig. 2 claims -------------------------------------------------------

class Fig2Pairs : public ::testing::TestWithParam<
                      std::pair<const RadioEnergyModel*,
                                const RadioEnergyModel*>> {};

TEST_P(Fig2Pairs, BreakEvenGrowsMonotonicallyWithIdleTime) {
  auto cfg =
      DualRadioAnalysis::standard(*GetParam().first, *GetParam().second)
          .config();
  Bits prev = 0;
  for (const double idle : {0.001, 0.01, 0.1, 1.0, 10.0}) {
    cfg.idle_time = idle;
    DualRadioAnalysis a(cfg);
    const auto s = a.break_even_bits();
    ASSERT_TRUE(s.has_value());
    EXPECT_GT(*s, prev);
    prev = *s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFeasiblePairs, Fig2Pairs,
    ::testing::Values(std::make_pair(&mica(), &cabletron_2mbps()),
                      std::make_pair(&mica(), &lucent_2mbps()),
                      std::make_pair(&mica(), &lucent_11mbps()),
                      std::make_pair(&mica2(), &cabletron_2mbps()),
                      std::make_pair(&mica2(), &lucent_2mbps()),
                      std::make_pair(&mica2(), &lucent_11mbps()),
                      std::make_pair(&micaz(), &lucent_11mbps())),
    [](const ::testing::TestParamInfo<std::pair<const RadioEnergyModel*, const RadioEnergyModel*>>& param_info) {
      return param_info.param.first->name + "_" +
             std::string(param_info.param.second->name).substr(0, 6) +
             std::to_string(param_info.index);
    });

TEST(Fig2, OneSecondIdleLandsInTensToHundredsOfKB) {
  // "when the total idle time is around 1 s, s* is 66-480 KB."
  for (const auto* low : {&mica(), &mica2(), &micaz()}) {
    for (const auto* high :
         {&cabletron_2mbps(), &lucent_2mbps(), &lucent_11mbps()}) {
      auto cfg = DualRadioAnalysis::standard(*low, *high).config();
      cfg.idle_time = 1.0;
      DualRadioAnalysis a(cfg);
      const auto s = a.break_even_bits();
      if (!s.has_value()) continue;  // infeasible pairs stay infeasible
      EXPECT_GT(*s, kilobytes(30)) << low->name << "+" << high->name;
      EXPECT_LT(*s, kilobytes(600)) << low->name << "+" << high->name;
    }
  }
}

// ---- Fig. 3 claims -------------------------------------------------------

TEST(Fig3, BreakEvenShrinksWithForwardProgress) {
  auto a = DualRadioAnalysis::standard(mica(), cabletron_2mbps());
  Bits prev = *a.break_even_bits_multihop(1);
  for (int fp = 2; fp <= 6; ++fp) {
    const auto s = a.break_even_bits_multihop(fp);
    ASSERT_TRUE(s.has_value());
    EXPECT_LT(*s, prev);
    prev = *s;
  }
}

TEST(Fig3, MicazCombosBecomeFeasibleAtAFewHops) {
  // "the Cabletron-Micaz and the Lucent (2 Mbps)-Micaz combinations become
  // feasible with 4 hops and 3 hops, respectively" — the exact onset
  // depends on header constants; assert it is in {2..5} and that Lucent-2
  // turns feasible no later than Cabletron (it has better per-bit cost).
  auto cab = DualRadioAnalysis::standard(micaz(), cabletron_2mbps());
  auto luc = DualRadioAnalysis::standard(micaz(), lucent_2mbps());
  int cab_onset = 0, luc_onset = 0;
  for (int fp = 1; fp <= 8; ++fp) {
    if (cab_onset == 0 && cab.break_even_bits_multihop(fp)) cab_onset = fp;
    if (luc_onset == 0 && luc.break_even_bits_multihop(fp)) luc_onset = fp;
  }
  EXPECT_GE(cab_onset, 2);
  EXPECT_LE(cab_onset, 5);
  EXPECT_GE(luc_onset, 2);
  EXPECT_LE(luc_onset, 5);
  EXPECT_LE(luc_onset, cab_onset);
}

TEST(Fig3, MultihopBreakEvenIsSubKBForMicaPairs) {
  // "s* for Cabletron and Lucent (2 Mbps) radios is lower for the
  // multi-hop case (i.e., 0.15-0.75 KB)" at 5 hops with Mica-class radios.
  for (const auto* high : {&cabletron_2mbps(), &lucent_2mbps()}) {
    auto a = DualRadioAnalysis::standard(mica(), *high);
    const auto s = a.break_even_bits_multihop(5);
    ASSERT_TRUE(s.has_value());
    EXPECT_LT(*s, kilobytes(1)) << high->name;
  }
}

TEST(Fig3, MultihopEnergiesMatchEquations4And5) {
  auto a = DualRadioAnalysis::standard(mica(), cabletron_2mbps());
  const Bits s = kilobytes(4);
  EXPECT_DOUBLE_EQ(a.energy_low_multihop(s, 5), 5 * a.energy_low(s));
  EXPECT_NEAR(a.energy_high_multihop(s, 5),
              a.energy_high(s) + 4 * a.low_wakeup_energy(), 1e-15);
  EXPECT_DOUBLE_EQ(a.energy_low_multihop(s, 1), a.energy_low(s));
  EXPECT_DOUBLE_EQ(a.energy_high_multihop(s, 1), a.energy_high(s));
  EXPECT_THROW(a.energy_low_multihop(s, 0), std::invalid_argument);
}

// ---- Fig. 4 claims -------------------------------------------------------

TEST(Fig4, NoSavingsForSinglePacketBursts) {
  for (const auto* high :
       {&cabletron_2mbps(), &lucent_2mbps(), &lucent_11mbps()}) {
    auto a = DualRadioAnalysis::standard(micaz(), *high);
    EXPECT_DOUBLE_EQ(a.burst_savings_fraction(1, 0.0), 0.0) << high->name;
    EXPECT_DOUBLE_EQ(a.burst_savings_fraction(1, 0.1), 0.0) << high->name;
  }
}

TEST(Fig4, SavingsIncreaseMonotonicallyWithBurstSize) {
  auto a = DualRadioAnalysis::standard(micaz(), lucent_11mbps());
  double prev = -1;
  for (const int n : {1, 2, 5, 10, 50, 100, 1000}) {
    const double s = a.burst_savings_fraction(n, 0.0);
    EXPECT_GT(s, prev);
    EXPECT_LT(s, 1.0);
    prev = s;
  }
}

TEST(Fig4, MajorityOfSavingsReachedByTenPackets) {
  // "Since, in both cases, the majority of savings are obtained when
  // n = 10, this can be used as the rule of thumb."
  for (const double idle : {0.0, 0.1}) {
    auto a = DualRadioAnalysis::standard(micaz(), lucent_11mbps());
    const double at_10 = a.burst_savings_fraction(10, idle);
    const double at_1000 = a.burst_savings_fraction(1000, idle);
    EXPECT_GT(at_10, 0.85 * at_1000);
  }
}

TEST(Fig4, IdlingBeforeOffIncreasesSavings) {
  // "The energy savings are greater when nodes idle 100 ms before turning
  // off."
  for (const auto* high :
       {&cabletron_2mbps(), &lucent_2mbps(), &lucent_11mbps()}) {
    auto a = DualRadioAnalysis::standard(micaz(), *high);
    for (const int n : {2, 10, 100}) {
      EXPECT_GT(a.burst_savings_fraction(n, 0.1),
                a.burst_savings_fraction(n, 0.0))
          << high->name << " n=" << n;
    }
  }
}

TEST(Fig4, IdleCurvesApproachUnityForLargeBursts) {
  auto a = DualRadioAnalysis::standard(micaz(), lucent_11mbps());
  EXPECT_GT(a.burst_savings_fraction(1000, 0.1), 0.9);
}

// ---- misc ---------------------------------------------------------------

TEST(BreakEven, RetransmissionsShiftTheBalance) {
  // More low-radio retransmissions make the high radio attractive sooner.
  auto base = DualRadioAnalysis::standard(micaz(), lucent_11mbps());
  auto cfg = base.config();
  cfg.low_link.retransmissions = 2.0;
  DualRadioAnalysis noisy(cfg);
  EXPECT_LT(*noisy.break_even_bits(), *base.break_even_bits());

  // And high-radio retransmissions can destroy feasibility entirely.
  auto cfg2 = base.config();
  cfg2.high_link.retransmissions = 3.0;
  DualRadioAnalysis bad(cfg2);
  EXPECT_FALSE(bad.break_even_bits().has_value());
}

TEST(BreakEven, FromAnalysisAlphaScalesThreshold) {
  auto a = DualRadioAnalysis::standard(mica(), lucent_11mbps());
  ASSERT_TRUE(a.break_even_bits().has_value());
  const auto s = *a.break_even_bits();
  EXPECT_GT(a.energy_low(s), 0.0);
}

TEST(BreakEven, ConfigValidation) {
  auto cfg = DualRadioAnalysis::standard(micaz(), lucent_11mbps()).config();
  cfg.low_link.retransmissions = 0.5;
  EXPECT_THROW(DualRadioAnalysis{cfg}, std::invalid_argument);
  cfg = DualRadioAnalysis::standard(micaz(), lucent_11mbps()).config();
  cfg.idle_time = -1;
  EXPECT_THROW(DualRadioAnalysis{cfg}, std::invalid_argument);
  cfg = DualRadioAnalysis::standard(micaz(), lucent_11mbps()).config();
  cfg.high_link.payload_bits = 0;
  EXPECT_THROW(DualRadioAnalysis{cfg}, std::invalid_argument);
}

TEST(BreakEven, BurstSavingsRejectsBadArguments) {
  auto a = DualRadioAnalysis::standard(micaz(), lucent_11mbps());
  EXPECT_THROW(a.burst_savings_fraction(0, 0.0), std::invalid_argument);
  EXPECT_THROW(a.burst_savings_fraction(5, -0.1), std::invalid_argument);
}

}  // namespace
}  // namespace bcp::energy

// Unit tests: CSMA/CA MAC — acks, retries, duplicate suppression, queue
// behaviour, contention.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "energy/radio_model.hpp"
#include "mac/csma_mac.hpp"
#include "mac/mac_params.hpp"
#include "phy/channel.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"

namespace bcp::mac {
namespace {

using net::NodeId;

net::Message data_msg(NodeId src, NodeId dst, std::uint32_t seq = 1) {
  net::Message m;
  m.src = src;
  m.dst = dst;
  m.body = net::DataPacket{src, dst, seq, util::bytes(32), 0.0};
  return m;
}

struct Station {
  std::unique_ptr<phy::Radio> radio;
  std::unique_ptr<CsmaCaMac> mac;
  std::vector<net::Message> received;
  std::vector<bool> tx_results;
};

class MacTest : public ::testing::Test {
 protected:
  // Three stations in mutual range by default.
  void build(double loss, util::Metres spread = 10.0) {
    channel_ = std::make_unique<phy::Channel>(
        sim_, std::vector<net::Position>{{0, 0}, {spread, 0}, {2 * spread, 0}},
        45.0, phy::Channel::Params{loss}, 99);
    for (NodeId i = 0; i < 3; ++i) {
      auto& st = stations_[static_cast<std::size_t>(i)];
      st.radio = std::make_unique<phy::Radio>(sim_, *channel_, i,
                                              energy::micaz(),
                                              phy::OverhearMode::kNone, true);
      st.mac = std::make_unique<CsmaCaMac>(sim_, *st.radio,
                                           sensor_mac_params(),
                                           1000 + static_cast<std::uint64_t>(i));
      st.mac->set_rx_callback([&st](const net::Message& m, NodeId) {
        st.received.push_back(m);
      });
      st.mac->set_tx_done_callback(
          [&st](const net::Message&, NodeId, bool ok) {
            st.tx_results.push_back(ok);
          });
    }
  }
  sim::Simulator sim_;
  std::unique_ptr<phy::Channel> channel_;
  Station stations_[3];
};

TEST_F(MacTest, UnicastDeliveredAndAcked) {
  build(0.0);
  EXPECT_TRUE(stations_[0].mac->enqueue(data_msg(0, 1), 1));
  sim_.run();
  ASSERT_EQ(stations_[1].received.size(), 1u);
  ASSERT_EQ(stations_[0].tx_results.size(), 1u);
  EXPECT_TRUE(stations_[0].tx_results[0]);
  EXPECT_EQ(stations_[0].mac->stats().tx_attempts, 1);
  EXPECT_EQ(stations_[1].mac->stats().acks_sent, 1);
  EXPECT_TRUE(stations_[0].mac->idle());
}

TEST_F(MacTest, FullyLossyLinkExhaustsEveryRetry) {
  // frame_loss_prob == 1.0 (now a valid, closed-interval config): nothing
  // ever arrives clean, so the sender burns first tx + every retry and
  // reports failure; the receiver delivers (and acks) nothing.
  build(1.0);
  EXPECT_TRUE(stations_[0].mac->enqueue(data_msg(0, 1), 1));
  sim_.run();
  EXPECT_TRUE(stations_[1].received.empty());
  ASSERT_EQ(stations_[0].tx_results.size(), 1u);
  EXPECT_FALSE(stations_[0].tx_results[0]);
  const auto& stats = stations_[0].mac->stats();
  EXPECT_EQ(stats.tx_failed, 1);
  EXPECT_EQ(stats.tx_attempts,
            1 + stations_[0].mac->params().retry_limit);
  EXPECT_EQ(stations_[1].mac->stats().acks_sent, 0);
}

TEST_F(MacTest, QueueDrainsInOrder) {
  build(0.0);
  for (std::uint32_t i = 1; i <= 5; ++i)
    EXPECT_TRUE(stations_[0].mac->enqueue(data_msg(0, 1, i), 1));
  sim_.run();
  ASSERT_EQ(stations_[1].received.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    const auto& p = std::get<net::DataPacket>(
        stations_[1].received[i].body);
    EXPECT_EQ(p.seq, i + 1);
  }
}

TEST_F(MacTest, RetriesUntilSuccessUnderLoss) {
  build(0.4);  // 40% frame loss, both directions
  for (std::uint32_t i = 1; i <= 50; ++i)
    stations_[0].mac->enqueue(data_msg(0, 1, i), 1);
  sim_.run();
  // With 3 retransmissions the per-frame failure odds are tiny; most
  // frames arrive, and attempts clearly exceed successes.
  EXPECT_GT(stations_[1].received.size(), 40u);
  EXPECT_GT(stations_[0].mac->stats().tx_attempts, 55);
}

TEST_F(MacTest, GivesUpAfterRetryLimit) {
  build(0.0);
  // Receiver powered off: no acks ever come back.
  stations_[1].radio->power_off();
  stations_[0].mac->enqueue(data_msg(0, 1), 1);
  sim_.run();
  ASSERT_EQ(stations_[0].tx_results.size(), 1u);
  EXPECT_FALSE(stations_[0].tx_results[0]);
  // 1 initial + retry_limit retransmissions.
  EXPECT_EQ(stations_[0].mac->stats().tx_attempts,
            1 + sensor_mac_params().retry_limit);
  EXPECT_EQ(stations_[0].mac->stats().tx_failed, 1);
}

TEST_F(MacTest, DuplicatesSuppressedWhenAckLost) {
  // Force the data->ack direction to lose the ack once: use heavy loss and
  // verify the receiver never delivers the same seq twice.
  build(0.3);
  for (std::uint32_t i = 1; i <= 30; ++i)
    stations_[0].mac->enqueue(data_msg(0, 1, i), 1);
  sim_.run();
  std::vector<std::uint32_t> seqs;
  for (const auto& m : stations_[1].received)
    seqs.push_back(std::get<net::DataPacket>(m.body).seq);
  std::sort(seqs.begin(), seqs.end());
  EXPECT_TRUE(std::adjacent_find(seqs.begin(), seqs.end()) == seqs.end())
      << "duplicate delivery";
  // The MAC itself observed duplicates (and re-acked them) if any ack was
  // lost; that is allowed — we only assert the upper layer saw each once.
}

TEST_F(MacTest, BroadcastHasNoAckAndNoRetry) {
  build(0.0);
  net::Message m = data_msg(0, net::kBroadcastNode);
  EXPECT_TRUE(stations_[0].mac->enqueue(m, net::kBroadcastNode));
  sim_.run();
  EXPECT_EQ(stations_[0].mac->stats().tx_attempts, 1);
  EXPECT_EQ(stations_[0].mac->stats().tx_success, 1);
  // Both neighbours deliver it.
  EXPECT_EQ(stations_[1].received.size(), 1u);
  EXPECT_EQ(stations_[2].received.size(), 1u);
  EXPECT_EQ(stations_[1].mac->stats().acks_sent, 0);
}

TEST_F(MacTest, QueueFullDropsTail) {
  build(0.0);
  MacParams tiny = sensor_mac_params();
  tiny.max_queue = 2;
  // A tiny-queue MAC on station 0's radio (replaces its callbacks; fine —
  // this test only exercises enqueue admission).
  CsmaCaMac mac(sim_, *stations_[0].radio, tiny, 5);
  EXPECT_TRUE(mac.enqueue(data_msg(0, 1, 1), 1));
  EXPECT_TRUE(mac.enqueue(data_msg(0, 1, 2), 1));
  EXPECT_FALSE(mac.enqueue(data_msg(0, 1, 3), 1));
  EXPECT_EQ(mac.stats().queue_drops, 1);
}

TEST_F(MacTest, ContendingSendersBothSucceed) {
  build(0.0);
  // Stations 0 and 2 both send to 1 at the same instant; CSMA separates
  // them (or retries resolve the collision).
  stations_[0].mac->enqueue(data_msg(0, 1, 1), 1);
  stations_[2].mac->enqueue(data_msg(2, 1, 1), 1);
  sim_.run();
  EXPECT_EQ(stations_[1].received.size(), 2u);
}

TEST_F(MacTest, ManyFramesUnderContentionMostlyArrive) {
  build(0.0);
  for (std::uint32_t i = 1; i <= 40; ++i) {
    stations_[0].mac->enqueue(data_msg(0, 1, i), 1);
    stations_[2].mac->enqueue(data_msg(2, 1, i), 1);
  }
  sim_.run();
  EXPECT_GE(stations_[1].received.size(), 70u);  // near-lossless medium
}

TEST_F(MacTest, FlushQueueFailsEverythingPending) {
  build(0.0);
  stations_[1].radio->power_off();  // acks never come: frames linger
  for (std::uint32_t i = 1; i <= 4; ++i)
    stations_[0].mac->enqueue(data_msg(0, 1, i), 1);
  sim_.schedule_at(0.001, [&] { stations_[0].mac->flush_queue(); });
  sim_.run();
  EXPECT_EQ(stations_[0].tx_results.size(), 4u);
  for (const bool ok : stations_[0].tx_results) EXPECT_FALSE(ok);
  EXPECT_TRUE(stations_[0].mac->idle());
}

TEST_F(MacTest, RadioPoweredOffFailsFrameInsteadOfSpinning) {
  build(0.0);
  stations_[0].mac->enqueue(data_msg(0, 1), 1);
  stations_[0].radio->power_off();  // before backoff expires
  sim_.run();
  ASSERT_EQ(stations_[0].tx_results.size(), 1u);
  EXPECT_FALSE(stations_[0].tx_results[0]);
}

TEST_F(MacTest, EnqueueToSelfThrows) {
  build(0.0);
  EXPECT_THROW(stations_[0].mac->enqueue(data_msg(0, 0), 0),
               std::invalid_argument);
}

TEST(MacParams, SensorAndDcfShapes) {
  const auto s = sensor_mac_params();
  EXPECT_FALSE(s.exponential_backoff);
  EXPECT_EQ(s.cw_min, s.cw_max);
  EXPECT_EQ(s.retry_limit, 3);
  EXPECT_EQ(s.max_queue, 5000u);
  EXPECT_EQ(s.header_bits, util::bytes(11));

  const auto d = dcf_mac_params();
  EXPECT_TRUE(d.exponential_backoff);
  EXPECT_EQ(d.cw_min, 31);
  EXPECT_EQ(d.cw_max, 1023);
  EXPECT_EQ(d.retry_limit, 7);
  EXPECT_DOUBLE_EQ(d.slot, 20e-6);
  EXPECT_DOUBLE_EQ(d.sifs, 10e-6);
  EXPECT_DOUBLE_EQ(d.difs, 50e-6);
}

TEST(MacDcf, HighRateTransferIsFast) {
  // 80 frames of 1 KB at 11 Mb/s should take ~ 80 * (frame + overhead)
  // — well under 150 ms including DIFS/backoff/acks.
  sim::Simulator sim;
  phy::Channel ch(sim, {{0, 0}, {10, 0}}, 50.0, phy::Channel::Params{0.0},
                  3);
  phy::Radio r0(sim, ch, 0, energy::lucent_11mbps(),
                phy::OverhearMode::kNone, true);
  phy::Radio r1(sim, ch, 1, energy::lucent_11mbps(),
                phy::OverhearMode::kNone, true);
  CsmaCaMac m0(sim, r0, dcf_mac_params(), 1);
  CsmaCaMac m1(sim, r1, dcf_mac_params(), 2);
  int got = 0;
  m1.set_rx_callback([&](const net::Message&, NodeId) { ++got; });
  for (std::uint32_t i = 1; i <= 80; ++i) {
    net::Message m;
    m.src = 0;
    m.dst = 1;
    net::BulkFrame f;
    f.sender = 0;
    f.receiver = 1;
    f.index = static_cast<std::uint16_t>(i - 1);
    f.total = 80;
    for (int k = 0; k < 32; ++k)
      f.packets.push_back(net::DataPacket{0, 1, i * 100 + static_cast<std::uint32_t>(k),
                                          util::bytes(32), 0.0});
    m.body = f;
    m0.enqueue(m, 1);
  }
  sim.run();
  EXPECT_EQ(got, 80);
  EXPECT_LT(sim.now(), 0.15);
}

}  // namespace
}  // namespace bcp::mac

// Unit tests: messages, topology, routing, address mapping.
#include <gtest/gtest.h>

#include "net/address.hpp"
#include "net/message.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "util/units.hpp"

namespace bcp::net {
namespace {

using util::bytes;

TEST(Message, DataPacketSize) {
  Message m;
  m.body = DataPacket{0, 1, 1, bytes(32), 0.0};
  EXPECT_EQ(m.size_bits(), bytes(32));
  EXPECT_TRUE(m.is_data());
  EXPECT_FALSE(m.is_control());
  EXPECT_FALSE(m.is_bulk());
}

TEST(Message, ControlSizesAreSmallAndEqual) {
  Message req;
  req.body = WakeupRequest{0, 1, 7, bytes(1024)};
  Message ack;
  ack.body = WakeupAck{1, 0, 7, bytes(512)};
  EXPECT_EQ(req.size_bits(), control_body_bits());
  EXPECT_EQ(ack.size_bits(), control_body_bits());
  EXPECT_TRUE(req.is_control());
  EXPECT_TRUE(ack.is_control());
}

TEST(Message, BulkFrameSizeIsSumOfPackets) {
  BulkFrame f;
  for (int i = 0; i < 32; ++i)
    f.packets.push_back(DataPacket{2, 0, static_cast<std::uint32_t>(i),
                                   bytes(32), 0.0});
  EXPECT_EQ(f.payload_bits(), bytes(1024));
  Message m;
  m.body = f;
  EXPECT_EQ(m.size_bits(), bytes(1024));
  EXPECT_TRUE(m.is_bulk());
}

TEST(Message, BulkFrameCachedPayloadBits) {
  BulkFrame f;
  for (int i = 0; i < 8; ++i)
    f.packets.push_back(DataPacket{2, 0, static_cast<std::uint32_t>(i),
                                   bytes(32), 0.0});
  EXPECT_EQ(f.cached_payload_bits, -1);  // hand-built frames: no cache
  f.cache_payload_bits();
  EXPECT_EQ(f.cached_payload_bits, bytes(256));
  EXPECT_EQ(f.payload_bits(), bytes(256));
  // The cache is a snapshot of the assembly-time packet set: mutating the
  // frame afterwards does NOT invalidate it (assembly is final)...
  f.packets.push_back(DataPacket{2, 0, 9, bytes(32), 0.0});
  EXPECT_EQ(f.payload_bits(), bytes(256));
  // ...until the owner re-stamps it.
  f.cache_payload_bits();
  EXPECT_EQ(f.payload_bits(), bytes(288));
}

TEST(Topology, PaperGridGeometry) {
  const auto g = GridTopology::paper_grid();
  EXPECT_EQ(g.node_count(), 36);
  EXPECT_EQ(g.side(), 6);
  EXPECT_DOUBLE_EQ(g.spacing(), 40.0);
  EXPECT_EQ(g.sink(), 0);
  EXPECT_DOUBLE_EQ(g.position(0).x, 0.0);
  EXPECT_DOUBLE_EQ(g.position(5).x, 200.0);
  EXPECT_DOUBLE_EQ(g.position(35).x, 200.0);
  EXPECT_DOUBLE_EQ(g.position(35).y, 200.0);
}

TEST(Topology, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(Topology, GridValidation) {
  EXPECT_THROW(GridTopology(0, 200, 0), std::invalid_argument);
  EXPECT_THROW(GridTopology(6, 200, 36), std::invalid_argument);
  EXPECT_THROW(GridTopology(6, -5, 0), std::invalid_argument);
}

TEST(Connectivity, SensorRangeGivesFourNeighbourGrid) {
  const auto g = GridTopology::paper_grid();
  const ConnectivityGraph c(g.positions(), 40.0);
  // Corner: 2 neighbours; edge: 3; interior: 4. Diagonals (56.6 m) out.
  EXPECT_EQ(c.neighbors(0).size(), 2u);
  EXPECT_EQ(c.neighbors(1).size(), 3u);
  EXPECT_EQ(c.neighbors(7).size(), 4u);
  EXPECT_TRUE(c.connected(0, 1));
  EXPECT_TRUE(c.connected(0, 6));
  EXPECT_FALSE(c.connected(0, 7));   // diagonal
  EXPECT_FALSE(c.connected(0, 2));   // two cells away
  EXPECT_FALSE(c.connected(3, 3));   // self
}

TEST(Connectivity, WideRangeConnectsEverything) {
  const auto g = GridTopology::paper_grid();
  const ConnectivityGraph c(g.positions(), 300.0);
  EXPECT_EQ(c.neighbors(0).size(), 35u);
  EXPECT_TRUE(c.connected(0, 35));
}

TEST(Routing, HopsEqualManhattanDistanceOnTheGrid) {
  const auto g = GridTopology::paper_grid();
  const RoutingTable r{ConnectivityGraph(g.positions(), 40.0)};
  EXPECT_EQ(r.hops(0, 0), 0);
  EXPECT_EQ(r.hops(1, 0), 1);
  EXPECT_EQ(r.hops(7, 0), 2);    // (1,1): one right + one down
  EXPECT_EQ(r.hops(35, 0), 10);  // far corner: 5 + 5
  EXPECT_EQ(r.hops(0, 35), 10);  // symmetric
}

TEST(Routing, MeanDepthToCornerSinkIsFiveHops) {
  // Matches the paper's "communication through sensor radios require 5
  // hops" working point (§2.2).
  const auto g = GridTopology::paper_grid();
  const RoutingTable r{ConnectivityGraph(g.positions(), 40.0)};
  EXPECT_DOUBLE_EQ(r.mean_hops_to(0), 180.0 / 35.0);  // ≈ 5.14 hops
}

TEST(Routing, NextHopAlwaysDecreasesDistance) {
  const auto g = GridTopology::paper_grid();
  const RoutingTable r{ConnectivityGraph(g.positions(), 40.0)};
  for (NodeId from = 1; from < 36; ++from) {
    const NodeId nh = r.next_hop(from, 0);
    ASSERT_NE(nh, kInvalidNode);
    EXPECT_EQ(r.hops(nh, 0), r.hops(from, 0) - 1);
  }
}

TEST(Routing, RouteFollowsToDestinationWithoutLoops) {
  const auto g = GridTopology::paper_grid();
  const RoutingTable r{ConnectivityGraph(g.positions(), 40.0)};
  for (NodeId from = 0; from < 36; ++from) {
    NodeId cur = from;
    int steps = 0;
    while (cur != 17 && steps <= 36) {
      cur = r.next_hop(cur, 17);
      ++steps;
    }
    EXPECT_EQ(cur, 17) << "from " << from;
    EXPECT_EQ(steps, r.hops(from, 17));
  }
}

TEST(Routing, SingleWifiHopWithWideRange) {
  const auto g = GridTopology::paper_grid();
  const RoutingTable r{ConnectivityGraph(g.positions(), 300.0)};
  for (NodeId from = 1; from < 36; ++from) {
    EXPECT_EQ(r.hops(from, 0), 1);
    EXPECT_EQ(r.next_hop(from, 0), 0);
  }
}

TEST(Routing, DisconnectedNodesReportUnreachable) {
  // Two clusters 1000 m apart.
  std::vector<Position> pos{{0, 0}, {10, 0}, {1000, 0}, {1010, 0}};
  const RoutingTable r{ConnectivityGraph(pos, 50.0)};
  EXPECT_EQ(r.hops(0, 2), -1);
  EXPECT_EQ(r.next_hop(0, 2), kInvalidNode);
  EXPECT_FALSE(r.reachable(0, 3));
  EXPECT_TRUE(r.reachable(0, 1));
}

TEST(Routing, DeterministicTieBreaking) {
  const auto g = GridTopology::paper_grid();
  const RoutingTable a{ConnectivityGraph(g.positions(), 40.0)};
  const RoutingTable b{ConnectivityGraph(g.positions(), 40.0)};
  for (NodeId from = 0; from < 36; ++from)
    EXPECT_EQ(a.next_hop(from, 0), b.next_hop(from, 0));
}

TEST(AddressMap, CanonicalRoundTrips) {
  const auto map = DualAddressMap::canonical(36);
  EXPECT_EQ(map.size(), 36);
  for (NodeId id = 0; id < 36; ++id) {
    const auto low = map.low_address(id);
    const auto high = map.high_address(id);
    ASSERT_TRUE(low.has_value());
    ASSERT_TRUE(high.has_value());
    EXPECT_EQ(map.node_of_low(*low), id);
    EXPECT_EQ(map.node_of_high(*high), id);
  }
}

TEST(AddressMap, UnknownLookupsAreEmpty) {
  const auto map = DualAddressMap::canonical(4);
  EXPECT_FALSE(map.low_address(99).has_value());
  EXPECT_FALSE(map.node_of_low(0x1234).has_value());
  EXPECT_FALSE(map.node_of_high(0xDEADBEEF).has_value());
}

TEST(AddressMap, DuplicateRegistrationThrows) {
  DualAddressMap map;
  map.add(0, 0x8000, 0x1);
  EXPECT_THROW(map.add(0, 0x8001, 0x2), std::invalid_argument);
  EXPECT_THROW(map.add(1, 0x8000, 0x3), std::invalid_argument);
  EXPECT_THROW(map.add(2, 0x8002, 0x1), std::invalid_argument);
}

}  // namespace
}  // namespace bcp::net

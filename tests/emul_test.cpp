// Integration tests: the §4.2 prototype emulation (event log, threshold
// sweep behaviour, cross-checked energy accounting).
#include <gtest/gtest.h>

#include "core/trace_recorder.hpp"
#include "emul/event_log.hpp"
#include "emul/prototype.hpp"
#include "util/units.hpp"

namespace bcp::emul {
namespace {

using util::bytes;
using util::kilobytes;

PrototypeConfig quick(util::Bits threshold, int messages = 100) {
  PrototypeConfig cfg;
  cfg.threshold_bits = threshold;
  cfg.message_count = messages;
  return cfg;
}

TEST(Prototype, AllMessagesDelivered) {
  const auto r = run_prototype(quick(kilobytes(1)));
  EXPECT_EQ(r.generated, 100);
  EXPECT_EQ(r.delivered, 100);
  EXPECT_GT(r.wifi_wakeups, 0);
  EXPECT_GT(r.bulk_frames, 0);
  EXPECT_GT(r.log_entries, 0);
}

TEST(Prototype, DeterministicAcrossRuns) {
  const auto a = run_prototype(quick(kilobytes(2)));
  const auto b = run_prototype(quick(kilobytes(2)));
  EXPECT_DOUBLE_EQ(a.dual_energy, b.dual_energy);
  EXPECT_DOUBLE_EQ(a.mean_delay_per_packet, b.mean_delay_per_packet);
  EXPECT_EQ(a.wifi_wakeups, b.wifi_wakeups);
}

TEST(Prototype, LogEnergyMatchesMeterEnergy) {
  // The paper computed energy from event logs; we also meter it live.
  // The two accountings must agree (the log replay is an independent
  // implementation).
  const auto r = run_prototype(quick(kilobytes(2)));
  EXPECT_NEAR(r.log_energy, r.dual_energy, 1e-6 + 0.01 * r.dual_energy);
}

TEST(Prototype, LargerThresholdMeansFewerWakeups) {
  const auto small = run_prototype(quick(bytes(512), 200));
  const auto large = run_prototype(quick(bytes(4096), 200));
  EXPECT_GT(small.wifi_wakeups, large.wifi_wakeups);
}

TEST(Prototype, EnergyPerPacketDropsAsThresholdGrows) {
  // Fig. 11's dominant trend (sawtooth aside): bigger bursts amortize the
  // wake-up cost.
  const auto at_512 = run_prototype(quick(bytes(512), 500));
  const auto at_4k = run_prototype(quick(bytes(4096), 500));
  EXPECT_LT(at_4k.dual_energy_per_packet,
            0.8 * at_512.dual_energy_per_packet);
}

TEST(Prototype, DualBeatsSensorBaselineAtLargeThreshold) {
  // Fig. 11: the dual-radio curve falls below the flat sensor-radio line
  // once the threshold passes s* (slightly above 1 KB).
  const auto r = run_prototype(quick(bytes(4096), 500));
  EXPECT_LT(r.dual_energy_per_packet, r.sensor_energy_per_packet);
}

TEST(Prototype, SensorBaselineBeatsDualAtTinyThreshold) {
  const auto r = run_prototype(quick(bytes(128), 200));
  EXPECT_GT(r.dual_energy_per_packet, r.sensor_energy_per_packet);
}

TEST(Prototype, DelayGrowsWithThreshold) {
  // Fig. 12's x-axis: buffering delay scales with the threshold.
  const auto small = run_prototype(quick(bytes(1024), 300));
  const auto large = run_prototype(quick(bytes(4096), 300));
  EXPECT_GT(large.mean_delay_per_packet, 2.0 * small.mean_delay_per_packet);
}

TEST(Prototype, SensorBaselineMatchesClosedForm) {
  const auto r = run_prototype(quick(kilobytes(1), 50));
  // (Ptx + Prx)/R × (32 B + 11 B) for the CC2420/Micaz table entry.
  const double expected = (0.051 + 0.0591) / 250e3 * (43 * 8);
  EXPECT_NEAR(r.sensor_energy_per_packet, expected, 1e-12);
}

TEST(Prototype, WakeupCountMatchesBurstMath) {
  // 200 messages of 32 B with a 2 KB threshold = 64 messages per burst
  // -> 3 threshold bursts + 1 final flush; each burst wakes both radios.
  const auto r = run_prototype(quick(kilobytes(2), 200));
  EXPECT_EQ(r.wifi_wakeups, 2 * 4);
  EXPECT_EQ(r.delivered, 200);
}

TEST(Prototype, InvalidConfigThrows) {
  EXPECT_THROW(run_prototype(quick(0)), std::invalid_argument);
  auto cfg = quick(kilobytes(1));
  cfg.message_count = 0;
  EXPECT_THROW(run_prototype(cfg), std::invalid_argument);
  cfg = quick(kilobytes(1));
  cfg.message_interval = 0;
  EXPECT_THROW(run_prototype(cfg), std::invalid_argument);
}

TEST(Prototype, ObserversSeeBothSidesOfEveryBurst) {
  core::TraceRecorder sender_trace, receiver_trace;
  auto cfg = quick(kilobytes(2), 200);  // 64 msgs/burst -> 4 bursts
  cfg.sender_observer = &sender_trace;
  cfg.receiver_observer = &receiver_trace;
  const auto r = run_prototype(cfg);
  EXPECT_EQ(r.delivered, 200);
  using Kind = core::TraceRecorder::Kind;
  EXPECT_EQ(sender_trace.count(Kind::kWakeupSent), 4);
  EXPECT_EQ(sender_trace.count(Kind::kSenderEnded), 4);
  EXPECT_EQ(sender_trace.count(Kind::kFrameSent), r.bulk_frames);
  EXPECT_EQ(receiver_trace.count(Kind::kAckSent), 4);
  EXPECT_EQ(receiver_trace.count(Kind::kFrameReceived), r.bulk_frames);
  EXPECT_EQ(receiver_trace.count(Kind::kReceiverEnded), 4);
  // Every frame the sender traced, the receiver traced too (perfect link).
  EXPECT_FALSE(sender_trace.transcript().empty());
}

// ---------------------------------------------------------- event log ----

TEST(EventLog, AppendAndCount) {
  EventLog log;
  log.append(0.0, 0, LogEvent::kWifiPowerOn);
  log.append(0.1, 0, LogEvent::kWifiReady);
  log.append(0.2, 0, LogEvent::kWifiPowerOff);
  log.append(0.3, 0, LogEvent::kWifiPowerOn);
  EXPECT_EQ(log.count(LogEvent::kWifiPowerOn), 2);
  EXPECT_EQ(log.count(LogEvent::kWifiPowerOff), 1);
  EXPECT_EQ(log.entries().size(), 4u);
}

TEST(EventLog, EnergyFromLogHandComputed) {
  // One wake-up, 1 s idle before off, one 0.5 s high tx segment inside.
  EventLog log;
  const auto& wifi = energy::lucent_11mbps();
  const auto& sensor = energy::micaz();
  log.append(0.0, 0, LogEvent::kWifiPowerOn);
  log.append(wifi.t_wakeup, 0, LogEvent::kWifiReady);
  log.append(0.2, 0, LogEvent::kHighTxStart, 8000);
  log.append(0.7, 0, LogEvent::kHighTxEnd);
  log.append(0.0 + wifi.t_wakeup + 1.0 + 0.5, 0, LogEvent::kWifiPowerOff);
  const double expected =
      wifi.e_wakeup + wifi.p_tx * 0.5 + wifi.p_idle * 1.0;
  EXPECT_NEAR(energy_from_log(log, sensor, wifi, 10.0), expected, 1e-12);
}

TEST(EventLog, LowRadioSegmentsCharged) {
  EventLog log;
  const auto& sensor = energy::micaz();
  log.append(1.0, 3, LogEvent::kLowTxStart, 344);
  log.append(1.5, 3, LogEvent::kLowTxEnd);
  log.append(1.0, 4, LogEvent::kLowRxStart, 344);
  log.append(1.5, 4, LogEvent::kLowRxEnd);
  const double expected = sensor.p_tx * 0.5 + sensor.p_rx * 0.5;
  EXPECT_NEAR(energy_from_log(log, sensor, energy::lucent_11mbps(), 2.0),
              expected, 1e-12);
}

TEST(EventLog, DanglingOnPeriodClosedAtEndTime) {
  EventLog log;
  const auto& wifi = energy::lucent_11mbps();
  log.append(0.0, 0, LogEvent::kWifiPowerOn);
  // Never powered off; end_time = 2.0 -> idle = 2.0 - t_wakeup.
  const double expected =
      wifi.e_wakeup + wifi.p_idle * (2.0 - wifi.t_wakeup);
  EXPECT_NEAR(energy_from_log(log, energy::micaz(), wifi, 2.0), expected,
              1e-12);
}

TEST(EventLog, NamesAreStable) {
  EXPECT_STREQ(to_string(LogEvent::kWifiPowerOn), "wifi-power-on");
  EXPECT_STREQ(to_string(LogEvent::kMsgDelivered), "msg-delivered");
}

}  // namespace
}  // namespace bcp::emul

// Byte-identical determinism of the figure pipeline, pinned to a golden.
//
// The BENCH JSON written by the figure harnesses is the repo's determinism
// contract: same code + same seed = same bytes, across thread counts and
// across refactors of the event/frame hot path. This test runs a small
// fig05 slice (sh/dual, burst 10, 2 sender counts x 2 replications,
// 120 simulated seconds) through the same sweep pipeline the bench uses
// and compares the serialized ResultSink byte-for-byte against a golden
// captured before the zero-allocation hot-path rework. If an optimization
// changes scheduling order, RNG consumption, payload sizes or the
// aggregation path, the diff shows up here in seconds instead of in a
// figure regression.
#include <gtest/gtest.h>

#include <string>

#include "app/scenario.hpp"
#include "app/scenario_registry.hpp"
#include "app/sweep.hpp"
#include "stats/result_sink.hpp"

namespace bcp {
namespace {

/// Captured from the pre-rework tree (PR 2 head); regenerate ONLY for an
/// intentional physics/statistics change, never for a perf refactor.
constexpr const char* kFig05SliceGolden = R"json({
  "bench": "fig05_slice",
  "points": [
    {"label": "sh/dual-10", "params": {"cell": 0, "senders": 5},
     "metrics": {"goodput": {"mean": 0.8009476513736389, "ci95": 2.0666280923960083, "stddev": 0.23002152342575735, "min": 0.6382978723404256, "max": 0.9635974304068522, "n": 2},
                 "normalized_energy": {"mean": 0.10525805751748507, "ci95": 0.5171185912663208, "stddev": 0.05755675469259405, "min": 0.06455928597126116, "max": 0.14595682906370896, "n": 2},
                 "normalized_energy_sensor_ideal": {"mean": 0.004245583175543046, "ci95": 0.017240054682620947, "stddev": 0.0019188666101224879, "min": 0.0028887395833329926, "max": 0.0056024267677531004, "n": 2},
                 "normalized_energy_sensor_header": {"mean": 0.005815460275124616, "ci95": 0.023718922757366357, "stddev": 0.0026399828622971316, "min": 0.003948710490978043, "max": 0.00768221005927119, "n": 2},
                 "mean_delay_s": {"mean": 6.4659838105818315, "ci95": 1.8559851511342818, "stddev": 0.20657637118661892, "min": 6.319912257682864, "max": 6.612055363480799, "n": 2},
                 "generated": {"mean": 468.5, "ci95": 19.058999999999997, "stddev": 2.1213203435596424, "min": 467, "max": 470, "n": 2},
                 "delivered": {"mean": 375, "ci95": 952.9499999999999, "stddev": 106.06601717798213, "min": 300, "max": 450, "n": 2},
                 "dropped_buffer": {"mean": 0, "ci95": 0, "stddev": 0, "min": 0, "max": 0, "n": 2},
                 "dropped_queue": {"mean": 0, "ci95": 0, "stddev": 0, "min": 0, "max": 0, "n": 2},
                 "dropped_mac": {"mean": 0, "ci95": 0, "stddev": 0, "min": 0, "max": 0, "n": 2},
                 "mac_tx_attempts": {"mean": 730, "ci95": 1766.134, "stddev": 196.5756851698602, "min": 591, "max": 869, "n": 2},
                 "mac_tx_failed": {"mean": 8.5, "ci95": 108.00099999999998, "stddev": 12.020815280171307, "min": 0, "max": 17, "n": 2},
                 "bcp_wakeups": {"mean": 217, "ci95": 355.7679999999999, "stddev": 39.59797974644666, "min": 189, "max": 245, "n": 2},
                 "wifi_wakeup_transitions": {"mean": 387.5, "ci95": 501.887, "stddev": 55.86143571373726, "min": 348, "max": 427, "n": 2},
                 "wifi_on_seconds": {"mean": 11.661797867830174, "ci95": 30.82165393979001, "stddev": 3.4305368342846823, "min": 9.236042009197245, "max": 14.087553726463105, "n": 2},
                 "sensor_energy_ideal_J": {"mean": 0.3815245878816994, "ci95": 0.6193131568253719, "stddev": 0.06893129747666744, "min": 0.33278279999996074, "max": 0.4302663757634381, "n": 2},
                 "wifi_energy_full_J": {"mean": 8.941832520109369, "ci95": 23.345821131451853, "stddev": 2.598455601199088, "min": 7.104446943889325, "max": 10.77921809632941, "n": 2}}},
    {"label": "sh/dual-10", "params": {"cell": 0, "senders": 15},
     "metrics": {"goodput": {"mean": 0.7679824841555418, "ci95": 1.8733777403992877, "stddev": 0.2085122153250855, "min": 0.6205420827389444, "max": 0.9154228855721394, "n": 2},
                 "normalized_energy": {"mean": 0.11662147251154831, "ci95": 0.19629733549262526, "stddev": 0.021848445939821517, "min": 0.10117228822911283, "max": 0.1320706567939838, "n": 2},
                 "normalized_energy_sensor_ideal": {"mean": 0.0040228508576344016, "ci95": 0.010038142595563364, "stddev": 0.0011172735242940951, "min": 0.003232819172165854, "max": 0.004812882543102949, "n": 2},
                 "normalized_energy_sensor_header": {"mean": 0.0054625091140859125, "ci95": 0.01432440951793641, "stddev": 0.0015943470969031893, "min": 0.004335135470300582, "max": 0.006589882757871243, "n": 2},
                 "mean_delay_s": {"mean": 6.7903660679029745, "ci95": 1.8420949521719943, "stddev": 0.20503035294669072, "min": 6.645387714985298, "max": 6.93534442082065, "n": 2},
                 "generated": {"mean": 1404.5, "ci95": 31.765, "stddev": 3.5355339059327378, "min": 1402, "max": 1407, "n": 2},
                 "delivered": {"mean": 1079, "ci95": 2655.5539999999996, "stddev": 295.57063453597686, "min": 870, "max": 1288, "n": 2},
                 "dropped_buffer": {"mean": 0, "ci95": 0, "stddev": 0, "min": 0, "max": 0, "n": 2},
                 "dropped_queue": {"mean": 0, "ci95": 0, "stddev": 0, "min": 0, "max": 0, "n": 2},
                 "dropped_mac": {"mean": 0, "ci95": 0, "stddev": 0, "min": 0, "max": 0, "n": 2},
                 "mac_tx_attempts": {"mean": 2121.5, "ci95": 1569.1909999999998, "stddev": 174.65537495307723, "min": 1998, "max": 2245, "n": 2},
                 "mac_tx_failed": {"mean": 37, "ci95": 241.414, "stddev": 26.870057685088806, "min": 18, "max": 56, "n": 2},
                 "bcp_wakeups": {"mean": 567.5, "ci95": 108.00099999999998, "stddev": 12.020815280171307, "min": 559, "max": 576, "n": 2},
                 "wifi_wakeup_transitions": {"mean": 886.5, "ci95": 540.005, "stddev": 60.10407640085654, "min": 844, "max": 929, "n": 2},
                 "wifi_on_seconds": {"mean": 39.95003397282103, "ci95": 34.82058961829657, "stddev": 3.875629630727437, "min": 37.20954997956614, "max": 42.690517966075916, "n": 2},
                 "sensor_energy_ideal_J": {"mean": 1.0689380999998959, "ci95": 0.03795409259991138, "stddev": 0.004224397332154809, "min": 1.0659509999999028, "max": 1.071925199999889, "n": 2},
                 "wifi_energy_full_J": {"mean": 30.3181183671826, "ci95": 25.097741053851585, "stddev": 2.793449219525022, "min": 28.342851481156185, "max": 32.29338525320901, "n": 2}}}
  ]
}
)json";

stats::ResultSink run_slice(
    int threads,
    phy::PropagationKind propagation = phy::PropagationKind::kAuto,
    bool capture = false,
    mac::MacFamily sensor_family = mac::MacFamily::kAuto,
    bool battery = false) {
  app::SweepGrid grid;
  grid.axis_ints("cell", {0}).axis_ints("senders", {5, 15});
  const app::SweepFn fn = [propagation, capture, sensor_family,
                           battery](const app::SweepJob& job) {
    const app::SweepPoint scenario_point(
        job.point.index(), {{"senders", job.point.get("senders")},
                            {"burst", 10.0},
                            {"rate_bps", 0.0},
                            {"duration", 120.0}});
    app::ScenarioConfig cfg =
        app::ScenarioRegistry::builtin().make("sh/dual", scenario_point);
    cfg.seed = job.seed;
    cfg.propagation.kind = propagation;
    cfg.capture_enabled = capture;
    // A deliberately non-default threshold: with the switch off it must
    // be inert (the capture-off differential golden pins exactly that),
    // and with the switch on it is the live knob.
    cfg.capture_threshold_db = 3.0;
    cfg.sensor_mac.family = sensor_family;
    // Deliberately non-default battery budgets: with the switch off they
    // must be inert (the battery-off differential golden pins exactly
    // that); with the switch on the 0.05 J sensor budget kills nodes a
    // couple of simulated seconds in.
    cfg.battery.sensor_initial_j = 0.05;
    cfg.battery.wifi_initial_j = 2.0;
    cfg.battery.enabled = battery;
    return app::standard_metrics(app::run_scenario(cfg));
  };
  app::SweepOptions options;
  options.replications = 2;
  options.base_seed = 1;
  options.threads = threads;
  const app::SweepRunner runner(options);
  stats::ResultSink sink = runner.run(grid, fn);
  sink.set_label(grid.index_of({0, 0}), "sh/dual-10");
  sink.set_label(grid.index_of({0, 1}), "sh/dual-10");
  return sink;
}

TEST(Determinism, Fig05SliceMatchesPreReworkGoldenByteForByte) {
  const std::string json = run_slice(1).to_json("fig05_slice");
  EXPECT_EQ(json, std::string(kFig05SliceGolden))
      << "BENCH JSON drifted from the pre-rework golden — the hot path "
         "changed observable simulation behaviour";
}

TEST(Determinism, Fig05SliceIdenticalAcrossThreadCounts) {
  const std::string serial = run_slice(1).to_json("fig05_slice");
  const std::string parallel = run_slice(4).to_json("fig05_slice");
  EXPECT_EQ(serial, parallel);
}

// Differential golden for the PropagationModel refactor: requesting the
// UnitDisc model *explicitly* must reproduce the pre-seam golden byte for
// byte — proving the pluggable-model seam is pure (kAuto and kUnitDisc
// share one code path, one RNG stream, one draw count).
TEST(Determinism, ExplicitUnitDiscMatchesPreSeamGoldenByteForByte) {
  const std::string json =
      run_slice(1, phy::PropagationKind::kUnitDisc).to_json("fig05_slice");
  EXPECT_EQ(json, std::string(kFig05SliceGolden))
      << "the PropagationModel seam changed UnitDisc behaviour";
}

// And the non-trivial models must NOT match it — the seam is live, not a
// stub that quietly ignores the spec.
TEST(Determinism, LogDistanceModelActuallyChangesTheChannel) {
  const std::string logd =
      run_slice(1, phy::PropagationKind::kLogDistance).to_json("fig05_slice");
  EXPECT_NE(logd, std::string(kFig05SliceGolden));
}

// Differential golden for the SINR/capture switch: with capture DISABLED
// (the default) — even alongside a non-default threshold knob, which
// run_slice always sets — the figure pipeline must reproduce the
// pre-capture golden byte for byte. This is the CI guarantee that the
// per-arrival power bookkeeping stays entirely behind the switch: same
// RNG stream, same draw count, same collision rule.
TEST(Determinism, CaptureDisabledMatchesPreCaptureGoldenByteForByte) {
  const std::string json =
      run_slice(1, phy::PropagationKind::kAuto, /*capture=*/false)
          .to_json("fig05_slice");
  EXPECT_EQ(json, std::string(kFig05SliceGolden))
      << "the capture-off channel drifted from the pre-capture golden";
}

// …and enabled it must be live. The unit-disc slice would be a tie
// (equal-power collisions, zero Bernoulli loss — no RNG divergence), so
// the differential runs on the log-distance channel, whose per-link
// powers give capture something to decide.
TEST(Determinism, CaptureActuallyChangesTheLossyChannel) {
  const std::string base =
      run_slice(1, phy::PropagationKind::kLogDistance, /*capture=*/false)
          .to_json("fig05_slice");
  const std::string captured =
      run_slice(1, phy::PropagationKind::kLogDistance, /*capture=*/true)
          .to_json("fig05_slice");
  EXPECT_NE(captured, base);
}

// Differential golden for the finite-battery switch: with batteries
// DISABLED (the default) — even alongside non-default budget knobs, which
// run_slice always sets — the figure pipeline must reproduce the historical
// golden byte for byte. This is the CI guarantee that the battery wiring
// (EnergyMeter observers, depletion events, LinkState-backed routing)
// stays entirely behind the switch.
TEST(Determinism, BatteryDisabledMatchesHistoricalGoldenByteForByte) {
  const std::string json =
      run_slice(1, phy::PropagationKind::kAuto, /*capture=*/false,
                mac::MacFamily::kAuto, /*battery=*/false)
          .to_json("fig05_slice");
  EXPECT_EQ(json, std::string(kFig05SliceGolden))
      << "the battery-off path drifted from the historical golden";
}

// …and enabled it must be live: a 0.05 J sensor budget at Mica idle power
// (0.03 W) kills every sensor radio within the first few seconds of the
// 120 s slice, so deliveries and energies have to diverge.
TEST(Determinism, FiniteBatteriesActuallyChangeTheRun) {
  const std::string dying =
      run_slice(1, phy::PropagationKind::kAuto, /*capture=*/false,
                mac::MacFamily::kAuto, /*battery=*/true)
          .to_json("fig05_slice");
  EXPECT_NE(dying, std::string(kFig05SliceGolden));
}

// Battery depletion events and LinkState rebuilds are per-run state, so a
// battery slice must serialize identically whether the sweep ran serial
// or on 4 workers.
TEST(Determinism, BatterySliceIdenticalAcrossThreadCounts) {
  const std::string serial =
      run_slice(1, phy::PropagationKind::kAuto, /*capture=*/false,
                mac::MacFamily::kAuto, /*battery=*/true)
          .to_json("fig05_slice");
  const std::string parallel =
      run_slice(4, phy::PropagationKind::kAuto, /*capture=*/false,
                mac::MacFamily::kAuto, /*battery=*/true)
          .to_json("fig05_slice");
  EXPECT_EQ(serial, parallel);
}

// Differential golden for the mac::Mac seam: requesting CSMA/CA
// *explicitly* must reproduce the pre-seam golden byte for byte — proving
// the pluggable-MAC seam is pure (kAuto and kCsmaCa share one code path,
// one RNG stream, one draw count behind the unique_ptr<Mac> members).
TEST(Determinism, ExplicitCsmaCaMatchesPreSeamGoldenByteForByte) {
  const std::string json =
      run_slice(1, phy::PropagationKind::kAuto, /*capture=*/false,
                mac::MacFamily::kCsmaCa)
          .to_json("fig05_slice");
  EXPECT_EQ(json, std::string(kFig05SliceGolden))
      << "the mac::Mac seam changed CSMA/CA behaviour";
}

// ...and the TDMA family must NOT match it — the seam is live, not a stub
// that quietly ignores the MacSpec.
TEST(Determinism, TdmaFamilyActuallyChangesTheRun) {
  const std::string tdma =
      run_slice(1, phy::PropagationKind::kAuto, /*capture=*/false,
                mac::MacFamily::kTdma)
          .to_json("fig05_slice");
  EXPECT_NE(tdma, std::string(kFig05SliceGolden));
}

// The TDMA slot schedule is a pure function of the convergecast tree and
// every per-node drift draw comes from a substream — so a TDMA slice must
// serialize identically whether the sweep ran serial or on 4 workers.
TEST(Determinism, TdmaSliceIdenticalAcrossThreadCounts) {
  const std::string serial =
      run_slice(1, phy::PropagationKind::kAuto, /*capture=*/false,
                mac::MacFamily::kTdma)
          .to_json("fig05_slice");
  const std::string parallel =
      run_slice(4, phy::PropagationKind::kAuto, /*capture=*/false,
                mac::MacFamily::kTdma)
          .to_json("fig05_slice");
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace bcp

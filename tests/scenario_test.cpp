// Integration tests: the full §4.1 grid simulation, all three evaluation
// models, cross-model energy ordering, determinism, robustness to loss.
//
// These use shortened durations/small sender counts so the whole suite
// stays fast; the bench harnesses run the paper-scale versions.
#include <gtest/gtest.h>

#include "app/scenario.hpp"
#include "net/message_ref.hpp"
#include "util/units.hpp"

namespace bcp::app {
namespace {

ScenarioConfig quick(EvalModel model, int senders, int burst,
                     double rate = 2000.0, double duration = 300.0) {
  ScenarioConfig cfg = ScenarioConfig::multi_hop(model, senders, burst);
  cfg.rate_bps = rate;
  cfg.duration = duration;
  cfg.seed = 42;
  return cfg;
}

TEST(Scenario, SensorModelDeliversAtLightLoad) {
  // 3 senders at 0.2 Kbps over ~5 hops ≈ 3 Kb/s of a 40 Kb/s channel —
  // genuinely light (2 Kbps×5 hops×3 senders would already be near
  // saturation for hidden-terminal CSMA).
  const auto m = run_scenario(quick(EvalModel::kSensor, 3, 100, 200.0));
  EXPECT_GT(m.generated, 500);
  EXPECT_GT(m.goodput, 0.9);
  EXPECT_GT(m.mean_delay, 0.0);
  EXPECT_LT(m.mean_delay, 1.0);  // no buffering in the sensor model
  // Only sensor radios exist — no wifi energy at all.
  EXPECT_DOUBLE_EQ(m.wifi_energy.full(), 0.0);
  EXPECT_GT(m.sensor_energy.ideal(), 0.0);
  EXPECT_GT(m.normalized_energy, 0.0);
}

TEST(Scenario, SensorHeaderChargeExceedsIdeal) {
  const auto m = run_scenario(quick(EvalModel::kSensor, 5, 100));
  EXPECT_GT(m.normalized_energy_sensor_header,
            m.normalized_energy_sensor_ideal);
}

TEST(Scenario, WifiModelDeliversWellButBurnsIdleEnergy) {
  const auto m = run_scenario(quick(EvalModel::kWifi, 3, 100));
  EXPECT_GT(m.goodput, 0.95);
  // All 36 radios idle nearly the whole run: idle dominates everything.
  EXPECT_GT(m.wifi_energy.idle, 10.0 * m.wifi_energy.tx);
  EXPECT_GT(m.normalized_energy, 0.0);
}

TEST(Scenario, DualRadioDeliversBulkAndSavesEnergy) {
  const auto dual = run_scenario(quick(EvalModel::kDualRadio, 3, 100));
  EXPECT_GT(dual.goodput, 0.6);
  EXPECT_GT(dual.bcp_wakeups, 0);
  EXPECT_GT(dual.bcp_sender_sessions, 0);
  EXPECT_GT(dual.wifi_wakeup_transitions, 0);
  // The 802.11 radios were mostly off.
  EXPECT_LT(dual.wifi_on_seconds, 0.5 * 36 * 300.0);

  const auto wifi = run_scenario(quick(EvalModel::kWifi, 3, 100));
  // Dual-radio must be far cheaper than the always-on 802.11 network.
  EXPECT_LT(dual.normalized_energy, 0.2 * wifi.normalized_energy);
}

TEST(Scenario, MhDualBeatsSensorIdealEnergyAtModerateBurst) {
  // The headline §4.1.2 result: with one-hop Cabletron bursts the dual
  // model reaches (or beats) even the ideal-energy sensor model.
  const auto dual = run_scenario(quick(EvalModel::kDualRadio, 6, 500,
                                       2000.0, 600.0));
  const auto sensor = run_scenario(quick(EvalModel::kSensor, 6, 500,
                                         2000.0, 600.0));
  ASSERT_GT(dual.delivered, 0);
  ASSERT_GT(sensor.delivered, 0);
  EXPECT_LT(dual.normalized_energy, sensor.normalized_energy_sensor_ideal);
}

TEST(Scenario, BufferingDelayGrowsWithBurstSize) {
  const auto small = run_scenario(quick(EvalModel::kDualRadio, 3, 100));
  const auto large = run_scenario(quick(EvalModel::kDualRadio, 3, 500));
  ASSERT_GT(small.delivered, 0);
  ASSERT_GT(large.delivered, 0);
  EXPECT_GT(large.mean_delay, small.mean_delay);
}

TEST(Scenario, SensorGoodputCollapsesUnderLoad) {
  // §4.1.2: "the goodput degrades very fast as the number of senders
  // increases due to high contention and packet losses."
  const auto light = run_scenario(quick(EvalModel::kSensor, 3, 100));
  const auto heavy = run_scenario(quick(EvalModel::kSensor, 20, 100));
  EXPECT_LT(heavy.goodput, 0.7 * light.goodput);
  EXPECT_GT(heavy.mac_tx_failed, 0);
}

TEST(Scenario, DualRadioKeepsGoodputUnderLoad) {
  const auto dual = run_scenario(quick(EvalModel::kDualRadio, 20, 500));
  const auto sensor = run_scenario(quick(EvalModel::kSensor, 20, 500));
  EXPECT_GT(dual.goodput, sensor.goodput);
}

TEST(Scenario, DeterministicForEqualSeeds) {
  const auto a = run_scenario(quick(EvalModel::kDualRadio, 5, 100));
  const auto b = run_scenario(quick(EvalModel::kDualRadio, 5, 100));
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_DOUBLE_EQ(a.normalized_energy, b.normalized_energy);
  EXPECT_DOUBLE_EQ(a.mean_delay, b.mean_delay);
  EXPECT_EQ(a.bcp_wakeups, b.bcp_wakeups);
}

TEST(Scenario, DifferentSeedsDiffer) {
  auto cfg = quick(EvalModel::kDualRadio, 5, 100);
  const auto a = run_scenario(cfg);
  cfg.seed = 1234;
  const auto b = run_scenario(cfg);
  EXPECT_NE(a.delivered, b.delivered);
}

TEST(Scenario, ExtraFrameLossDegradesButDoesNotBreak) {
  auto cfg = quick(EvalModel::kDualRadio, 5, 100);
  cfg.frame_loss_prob = 0.2;
  const auto lossy = run_scenario(cfg);
  cfg.frame_loss_prob = 0.0;
  const auto clean = run_scenario(cfg);
  EXPECT_GT(lossy.delivered, 0);
  EXPECT_LE(lossy.goodput, clean.goodput + 0.05);
  EXPECT_GT(lossy.mac_tx_attempts, clean.mac_tx_attempts);
}

TEST(Scenario, SingleHopCaseRunsWithLucent11) {
  auto cfg = ScenarioConfig::single_hop(EvalModel::kDualRadio, 4, 100);
  cfg.duration = 1500.0;  // 0.2 Kbps needs time to fill 100-packet bursts
  cfg.seed = 7;
  const auto m = run_scenario(cfg);
  EXPECT_GT(m.delivered, 0);
  EXPECT_GT(m.bcp_sender_sessions, 0);
  EXPECT_GT(m.goodput, 0.3);
}

TEST(Scenario, EnergyConservationAccounting) {
  // Every charged joule must appear in exactly one category; categories sum
  // to the full() totals used by the normalized metrics.
  const auto m = run_scenario(quick(EvalModel::kDualRadio, 4, 100));
  const double wifi_sum = m.wifi_energy.tx + m.wifi_energy.rx +
                          m.wifi_energy.overhear + m.wifi_energy.idle +
                          m.wifi_energy.wakeup;
  EXPECT_DOUBLE_EQ(m.wifi_energy.full(), wifi_sum);
  EXPECT_GE(m.wifi_energy.tx, 0);
  EXPECT_GE(m.wifi_energy.idle, 0);
  // Dual normalized = (sensor ideal + wifi full) / delivered Kbit.
  const double kbits =
      static_cast<double>(m.delivered) * 32 * 8 / 1000.0;
  EXPECT_NEAR(m.normalized_energy,
              (m.sensor_energy.ideal() + m.wifi_energy.full()) / kbits,
              1e-9);
}

TEST(Scenario, ReplicationsVarySeedsAndCount) {
  auto cfg = quick(EvalModel::kSensor, 3, 100, 2000.0, 120.0);
  const auto runs = run_replications(cfg, 3);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_NE(runs[0].delivered, runs[1].delivered);
}

TEST(Scenario, RejectsDisconnectedTopologyNamingStrandedNodes) {
  // 10 nodes over a 5 km square are nowhere near 40 m-connected.
  auto cfg = quick(EvalModel::kSensor, 3, 100);
  cfg.topology.kind = net::TopologyKind::kUniformRandom;
  cfg.topology.nodes = 10;
  cfg.topology.area = 5000.0;
  try {
    run_scenario(cfg);
    FAIL() << "disconnected topology was not rejected";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("disconnected"), std::string::npos) << what;
    EXPECT_NE(what.find("cannot reach sink"), std::string::npos) << what;
    // The stranded-node list is spelled out.
    EXPECT_NE(what.find("["), std::string::npos) << what;
  }
}

TEST(Scenario, EveryPacketReachesSinkOnConnectedRandomTopology) {
  // The satellite property: under kSensor on a connected random
  // placement, light CBR traffic is delivered completely — nothing is
  // dropped anywhere in the stack, and only packets still in flight at
  // the horizon may be missing.
  auto cfg = quick(EvalModel::kSensor, 3, 100, 200.0, 400.0);
  cfg.topology.kind = net::TopologyKind::kUniformRandom;
  cfg.topology.nodes = 30;
  cfg.topology.area = 160.0;
  cfg.topology = net::first_connected(cfg.topology, cfg.sensor_radio.range);
  const auto m = run_scenario(cfg);
  ASSERT_GT(m.generated, 100);
  EXPECT_EQ(m.dropped_buffer, 0);
  EXPECT_EQ(m.dropped_queue, 0);
  EXPECT_EQ(m.dropped_mac, 0);
  EXPECT_EQ(m.dropped_no_route, 0);
  // Allow only the in-flight tail at the simulation horizon.
  EXPECT_GE(m.delivered, m.generated - 2 * cfg.n_senders);
}

TEST(Scenario, GeneratedTopologiesRunAllModels) {
  for (const auto kind :
       {net::TopologyKind::kUniformRandom, net::TopologyKind::kLineCorridor,
        net::TopologyKind::kRing}) {
    auto cfg = quick(EvalModel::kDualRadio, 3, 50, 2000.0, 120.0);
    cfg.topology.kind = kind;
    cfg.topology.nodes = 24;
    cfg.topology.area = 150.0;
    cfg.topology =
        net::first_connected(cfg.topology, cfg.sensor_radio.range);
    const auto m = run_scenario(cfg);
    EXPECT_GT(m.generated, 0) << net::to_string(kind);
    EXPECT_GT(m.delivered, 0) << net::to_string(kind);
  }
}

TEST(Scenario, ConvergecastModeStaysCloseToAllPairsOnTheGrid) {
  // The tree router must behave like the dense table for convergecast
  // traffic; only the multi-hop control acks may take different (tree)
  // paths, so aggregate delivery stays in the same regime.
  auto cfg = quick(EvalModel::kDualRadio, 4, 100);
  cfg.routing = RoutingMode::kAllPairs;
  const auto table = run_scenario(cfg);
  cfg.routing = RoutingMode::kConvergecast;
  const auto tree = run_scenario(cfg);
  ASSERT_GT(table.delivered, 0);
  ASSERT_GT(tree.delivered, 0);
  EXPECT_GT(tree.goodput, 0.7 * table.goodput);
  // Sensor-only traffic routes identically (pure convergecast): exact.
  auto scfg = quick(EvalModel::kSensor, 4, 100);
  scfg.routing = RoutingMode::kAllPairs;
  const auto s_table = run_scenario(scfg);
  scfg.routing = RoutingMode::kConvergecast;
  const auto s_tree = run_scenario(scfg);
  EXPECT_EQ(s_table.delivered, s_tree.delivered);
  EXPECT_DOUBLE_EQ(s_table.normalized_energy, s_tree.normalized_energy);
}

TEST(Scenario, CrashMidBulkBurstLeaksNoPoolNodesOrStaleHandles) {
  // Every non-sink node is a sender, so every crash victim holds buffered
  // bulk data and likely in-flight MAC frames when it dies. The crash
  // path must cancel all of its pending events (a stale handle firing
  // into reset state would trip a BCP_ENSURE and abort the run) and
  // release every pooled message ref: after the scenario tears down, the
  // thread's MessagePool live count must return to its baseline.
  const std::size_t baseline = net::MessagePool::local().outstanding();
  auto cfg = quick(EvalModel::kDualRadio, 35, 50, 2000.0, 300.0);
  cfg.faults.node_crashes = 6;
  cfg.faults.mean_downtime = 60.0;
  cfg.faults.link_flaps = 2;
  cfg.faults.seed = 5;
  const auto m = run_scenario(cfg);
  EXPECT_EQ(net::MessagePool::local().outstanding(), baseline);
  EXPECT_EQ(m.fault_node_crashes, 6);
  EXPECT_GT(m.delivered, 0);
  // The crashes hit live protocol state, not idle nodes: buffered bulk
  // data and/or queued MAC frames were actually lost.
  EXPECT_GT(m.bcp_packets_lost_to_crash + m.mac_crash_drops, 0);
  // Conservation survives the churn.
  EXPECT_EQ(m.chan_rx_starts, m.chan_rx_ends + m.chan_rx_live_at_end);
}

TEST(Scenario, CrashAndRecoverIsDeterministicAndKeepsDelivering) {
  auto cfg = quick(EvalModel::kDualRadio, 10, 50, 2000.0, 300.0);
  cfg.faults.node_crashes = 4;
  cfg.faults.mean_downtime = 30.0;
  cfg.faults.seed = 2;
  const auto a = run_scenario(cfg);
  const auto b = run_scenario(cfg);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.fault_node_recoveries, 4);
  EXPECT_GT(a.delivered, 0);
  EXPECT_GT(a.route_rebuilds, 0);
}

TEST(Scenario, InvalidConfigsThrow) {
  auto cfg = quick(EvalModel::kSensor, 3, 100);
  cfg.n_senders = 0;
  EXPECT_THROW(run_scenario(cfg), std::invalid_argument);
  cfg = quick(EvalModel::kSensor, 3, 100);
  cfg.n_senders = 36;
  EXPECT_THROW(run_scenario(cfg), std::invalid_argument);
  cfg = quick(EvalModel::kSensor, 3, 100);
  cfg.duration = 0;
  EXPECT_THROW(run_scenario(cfg), std::invalid_argument);
}

TEST(Scenario, SenderBoundIsCheckedBeforeTheTopologyIsBuilt) {
  // The bound uses the spec's exact node_count(): a bad sender count on a
  // million-node grid must be rejected instantly, on both engines, not
  // after paying for the placement build.
  auto cfg = quick(EvalModel::kSensor, 3, 100);
  cfg.topology.grid_side = 1000;  // 1M nodes — building this would hang
  cfg.n_senders = 1000 * 1000;
  EXPECT_THROW(run_scenario(cfg), std::invalid_argument);
  cfg.shards = 4;
  EXPECT_THROW(run_scenario(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace bcp::app

// Unit tests: discrete-event simulator (ordering, cancellation, timers).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"

namespace bcp::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
  EXPECT_EQ(s.pending_count(), 0u);
}

TEST(Simulator, ProcessesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

TEST(Simulator, EqualTimesRunFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    s.schedule_at(1.0, [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ClockAdvancesDuringCallback) {
  Simulator s;
  s.schedule_at(5.0, [&] { EXPECT_DOUBLE_EQ(s.now(), 5.0); });
  s.run();
}

TEST(Simulator, CallbackCanScheduleMore) {
  Simulator s;
  int fired = 0;
  s.schedule_at(1.0, [&] {
    ++fired;
    s.schedule_in(1.0, [&] { ++fired; });
  });
  s.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(s.now(), 2.0);
}

TEST(Simulator, ScheduleInUsesCurrentTime) {
  Simulator s;
  double fired_at = -1;
  s.schedule_at(2.0, [&] {
    s.schedule_in(0.5, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  const auto h = s.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(s.is_pending(h));
  EXPECT_TRUE(s.cancel(h));
  EXPECT_FALSE(s.is_pending(h));
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, DoubleCancelReturnsFalse) {
  Simulator s;
  const auto h = s.schedule_at(1.0, [] {});
  EXPECT_TRUE(s.cancel(h));
  EXPECT_FALSE(s.cancel(h));
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator s;
  const auto h = s.schedule_at(1.0, [] {});
  s.run();
  EXPECT_FALSE(s.cancel(h));
  EXPECT_FALSE(s.is_pending(h));
}

TEST(Simulator, InvalidHandleNeverPending) {
  Simulator s;
  EXPECT_FALSE(s.is_pending(Simulator::EventHandle{}));
  EXPECT_FALSE(s.cancel(Simulator::EventHandle{}));
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator s;
  std::vector<double> fired;
  s.schedule_at(1.0, [&] { fired.push_back(1.0); });
  s.schedule_at(2.0, [&] { fired.push_back(2.0); });
  s.schedule_at(5.0, [&] { fired.push_back(5.0); });
  s.run_until(3.0);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(s.now(), 3.0);  // clock parked at the horizon
  EXPECT_EQ(s.pending_count(), 1u);
  s.run_until(10.0);
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Simulator, EventExactlyAtHorizonRuns) {
  Simulator s;
  bool fired = false;
  s.schedule_at(3.0, [&] { fired = true; });
  s.run_until(3.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, StopHaltsProcessing) {
  Simulator s;
  int fired = 0;
  s.schedule_at(1.0, [&] {
    ++fired;
    s.stop();
  });
  s.schedule_at(2.0, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  s.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator s;
  s.schedule_at(5.0, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, NullCallbackThrows) {
  Simulator s;
  EXPECT_THROW(s.schedule_at(1.0, nullptr), std::invalid_argument);
}

TEST(Simulator, ProcessedCountSkipsCancelled) {
  Simulator s;
  const auto h = s.schedule_at(1.0, [] {});
  s.schedule_at(2.0, [] {});
  s.cancel(h);
  s.run();
  EXPECT_EQ(s.processed_count(), 1u);
}

TEST(Simulator, CancelRemovesFromQueueImmediately) {
  Simulator s;
  const auto h1 = s.schedule_at(1.0, [] {});
  const auto h2 = s.schedule_at(2.0, [] {});
  EXPECT_EQ(s.pending_count(), 2u);
  EXPECT_TRUE(s.cancel(h1));
  // The indexed heap erases on cancel — no tombstone left behind.
  EXPECT_EQ(s.pending_count(), 1u);
  EXPECT_TRUE(s.is_pending(h2));
  s.run();
  EXPECT_EQ(s.pending_count(), 0u);
}

TEST(Simulator, CancelHeadOfQueuePreservesOrdering) {
  Simulator s;
  std::vector<int> order;
  const auto head = s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.cancel(head);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{2, 3}));
}

TEST(Simulator, CancelFromWithinCallback) {
  Simulator s;
  bool fired = false;
  const auto victim = s.schedule_at(5.0, [&] { fired = true; });
  s.schedule_at(1.0, [&] { EXPECT_TRUE(s.cancel(victim)); });
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_DOUBLE_EQ(s.now(), 1.0);
}

TEST(Simulator, CancelInterleavedWithScheduling) {
  // Randomized stress against a reference model: every event either fires
  // exactly once in (time, FIFO) order or was cancelled and never fires.
  Simulator s;
  std::mt19937_64 rng(7);
  std::vector<Simulator::EventHandle> handles;
  std::vector<int> fired(4000, 0);
  std::vector<bool> cancelled(4000, false);
  for (int i = 0; i < 4000; ++i) {
    const double t = static_cast<double>(rng() % 997) / 7.0;
    handles.push_back(s.schedule_at(t, [&fired, i] { ++fired[static_cast<std::size_t>(i)]; }));
    if (i % 3 == 0) {
      const auto victim = static_cast<std::size_t>(rng() % handles.size());
      if (s.cancel(handles[victim])) cancelled[victim] = true;
    }
  }
  s.schedule_at(1e9, [] {});  // sentinel keeping the run alive to the end
  const std::size_t live = s.pending_count();
  s.run();
  std::uint64_t expected_fires = 0;
  for (int i = 0; i < 4000; ++i) {
    EXPECT_EQ(fired[static_cast<std::size_t>(i)],
              cancelled[static_cast<std::size_t>(i)] ? 0 : 1);
    if (!cancelled[static_cast<std::size_t>(i)]) ++expected_fires;
  }
  EXPECT_EQ(s.processed_count(), expected_fires + 1);  // + sentinel
  EXPECT_EQ(live, expected_fires + 1);
}

TEST(Simulator, CancelHeavyChurnKeepsHeapConsistent) {
  // Schedule/cancel/dispatch churn with many equal timestamps, verifying
  // (time, seq) order end to end.
  Simulator s;
  std::vector<std::pair<double, int>> fired;
  std::vector<Simulator::EventHandle> handles;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 40; ++i) {
      const double t = static_cast<double>((round * 40 + i) % 13);
      const int tag = round * 40 + i;
      handles.push_back(
          s.schedule_at(t, [&fired, t, tag, &s] {
            EXPECT_DOUBLE_EQ(s.now(), t);
            fired.emplace_back(t, tag);
          }));
    }
    for (std::size_t i = round; i < handles.size(); i += 7)
      s.cancel(handles[i]);
  }
  s.run();
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1].first, fired[i].first);
    if (fired[i - 1].first == fired[i].first) {
      EXPECT_LT(fired[i - 1].second, fired[i].second);  // FIFO within a time
    }
  }
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator s;
  double last = -1;
  for (int i = 0; i < 20000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000) / 10.0;
    s.schedule_at(t, [&last, &s] {
      EXPECT_GE(s.now(), last);
      last = s.now();
    });
  }
  s.run();
  EXPECT_EQ(s.processed_count(), 20000u);
}

TEST(Timer, FiresAfterDelay) {
  Simulator s;
  int fired = 0;
  Timer t(s, [&] { ++fired; });
  t.start(2.0);
  EXPECT_TRUE(t.running());
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.running());
}

TEST(Timer, RestartSupersedesPreviousDeadline) {
  Simulator s;
  double fired_at = -1;
  Timer t(s, [&] { fired_at = s.now(); });
  t.start(2.0);
  s.schedule_at(1.0, [&] { t.start(5.0); });  // re-arm before expiry
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 6.0);
}

TEST(Timer, CancelStopsExpiry) {
  Simulator s;
  int fired = 0;
  Timer t(s, [&] { ++fired; });
  t.start(2.0);
  s.schedule_at(1.0, [&] { t.cancel(); });
  s.run();
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(t.running());
}

TEST(Timer, RestartFromWithinCallback) {
  Simulator s;
  int fired = 0;
  Timer* self = nullptr;
  Timer t(s, [&] {
    if (++fired < 3) self->start(1.0);
  });
  self = &t;
  t.start(1.0);
  s.run();
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

// ---- Slot recycling / generation stamping -------------------------------
// Event ids pack (generation, slot); a recycled slot must never revive a
// stale handle. These are the cases an unordered_map side table got for
// free and the slot vector must prove.

TEST(Simulator, CancelledSlotReuseKeepsStaleHandleDead) {
  Simulator s;
  bool first_fired = false;
  bool second_fired = false;
  const auto a = s.schedule_at(1.0, [&] { first_fired = true; });
  ASSERT_TRUE(s.cancel(a));
  // The next schedule reuses a's slot (LIFO free list); its handle must be
  // distinct and a's handle must stay dead in every operation.
  const auto b = s.schedule_at(2.0, [&] { second_fired = true; });
  EXPECT_NE(a.id, b.id);
  EXPECT_FALSE(s.is_pending(a));
  EXPECT_TRUE(s.is_pending(b));
  EXPECT_FALSE(s.cancel(a));  // must NOT cancel b through a's stale handle
  s.run();
  EXPECT_FALSE(first_fired);
  EXPECT_TRUE(second_fired);
}

TEST(Simulator, FiredSlotReuseKeepsStaleHandleDead) {
  Simulator s;
  const auto a = s.schedule_at(1.0, [] {});
  s.run();
  bool fired = false;
  const auto b = s.schedule_at(2.0, [&] { fired = true; });
  EXPECT_NE(a.id, b.id);
  EXPECT_FALSE(s.cancel(a));
  EXPECT_TRUE(s.is_pending(b));
  s.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, ManyCancelRescheduleCyclesOnOneSlot) {
  Simulator s;
  std::vector<Simulator::EventHandle> stale;
  int fired = 0;
  Simulator::EventHandle live{};
  for (int i = 0; i < 1000; ++i) {
    if (live.valid()) {
      ASSERT_TRUE(s.cancel(live));
      stale.push_back(live);
    }
    live = s.schedule_at(1.0, [&] { ++fired; });
  }
  for (const auto& h : stale) {
    EXPECT_FALSE(s.is_pending(h));
    EXPECT_FALSE(s.cancel(h));
  }
  EXPECT_TRUE(s.is_pending(live));
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, IsPendingFalseForOwnEventDuringCallback) {
  Simulator s;
  Simulator::EventHandle h{};
  bool pending_inside = true;
  h = s.schedule_at(1.0, [&] { pending_inside = s.is_pending(h); });
  s.run();
  EXPECT_FALSE(pending_inside);
}

// ---- Inline-callback capture sizes --------------------------------------
// Callback is util::InlineFunction: captures up to the inline capacity run
// with no heap; an oversized capture would be a compile error (covered by
// a static_assert, so only the fitting edge cases can be runtime-tested).

TEST(Simulator, CallbackAtFullInlineCapacityRuns) {
  struct Payload {
    char bytes[util::kInlineFunctionCapacity - sizeof(int*)];
  };
  Simulator s;
  Payload p{};
  p.bytes[0] = 9;
  int out = 0;
  int* out_ptr = &out;
  s.schedule_at(1.0, [p, out_ptr] { *out_ptr = p.bytes[0]; });
  s.run();
  EXPECT_EQ(out, 9);
}

TEST(Simulator, MoveOnlyCaptureIsDestroyedExactlyOnce) {
  Simulator s;
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  int seen = 0;
  s.schedule_at(1.0, [token = std::move(token), &seen] { seen = *token; });
  EXPECT_FALSE(watch.expired());
  s.run();
  EXPECT_EQ(seen, 1);
  EXPECT_TRUE(watch.expired());  // released when the fired event's slot let go
}

TEST(Simulator, CancelledCallbackReleasesCaptureImmediately) {
  Simulator s;
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  const auto h = s.schedule_at(1.0, [token = std::move(token)] { (void)token; });
  ASSERT_TRUE(s.cancel(h));
  // The capture must not linger in the recycled slot until reuse.
  EXPECT_TRUE(watch.expired());
}

}  // namespace
}  // namespace bcp::sim

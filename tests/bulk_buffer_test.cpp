// Unit tests: BulkBuffer (per-next-hop accumulation with shared capacity).
#include <gtest/gtest.h>

#include "core/bcp_config.hpp"
#include "core/bulk_buffer.hpp"
#include "energy/breakeven.hpp"
#include "util/units.hpp"

namespace bcp::core {
namespace {

using util::bytes;

net::DataPacket pkt(net::NodeId origin, std::uint32_t seq,
                    util::Bits bits = bytes(32)) {
  return net::DataPacket{origin, 0, seq, bits, 0.0};
}

TEST(BulkBuffer, StartsEmpty) {
  BulkBuffer b(bytes(1024));
  EXPECT_EQ(b.total_bits(), 0);
  EXPECT_EQ(b.total_packets(), 0u);
  EXPECT_EQ(b.free_bits(), bytes(1024));
  EXPECT_TRUE(b.active_next_hops().empty());
  EXPECT_EQ(b.buffered_bits(3), 0);
}

TEST(BulkBuffer, PushAccumulatesPerNextHop) {
  BulkBuffer b(bytes(1024));
  EXPECT_TRUE(b.push(1, pkt(0, 1)));
  EXPECT_TRUE(b.push(1, pkt(0, 2)));
  EXPECT_TRUE(b.push(2, pkt(0, 3)));
  EXPECT_EQ(b.buffered_bits(1), bytes(64));
  EXPECT_EQ(b.buffered_bits(2), bytes(32));
  EXPECT_EQ(b.total_bits(), bytes(96));
  EXPECT_EQ(b.packet_count(1), 2u);
  EXPECT_EQ(b.active_next_hops(), (std::vector<net::NodeId>{1, 2}));
}

TEST(BulkBuffer, CapacityIsSharedAcrossNextHops) {
  BulkBuffer b(bytes(64));
  EXPECT_TRUE(b.push(1, pkt(0, 1)));
  EXPECT_TRUE(b.push(2, pkt(0, 2)));
  EXPECT_FALSE(b.push(3, pkt(0, 3)));  // full: 64 B used of 64 B
  EXPECT_EQ(b.total_bits(), bytes(64));
  EXPECT_EQ(b.free_bits(), 0);
}

TEST(BulkBuffer, RejectedPushLeavesStateUntouched) {
  BulkBuffer b(bytes(32));
  EXPECT_TRUE(b.push(1, pkt(0, 1)));
  EXPECT_FALSE(b.push(1, pkt(0, 2)));
  EXPECT_EQ(b.packet_count(1), 1u);
  EXPECT_EQ(b.total_packets(), 1u);
}

TEST(BulkBuffer, PopUpToRespectsBudgetAndFifo) {
  BulkBuffer b(bytes(1024));
  for (std::uint32_t i = 1; i <= 8; ++i) b.push(1, pkt(0, i));
  const auto out = b.pop_up_to(1, bytes(100));  // fits 3 × 32 B
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].seq, 1u);
  EXPECT_EQ(out[2].seq, 3u);
  EXPECT_EQ(b.buffered_bits(1), bytes(160));
  // Popping frees capacity.
  EXPECT_EQ(b.free_bits(), bytes(1024) - bytes(160));
}

TEST(BulkBuffer, PopEverything) {
  BulkBuffer b(bytes(1024));
  for (std::uint32_t i = 1; i <= 4; ++i) b.push(1, pkt(0, i));
  const auto out = b.pop_up_to(1, bytes(4096));
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(b.buffered_bits(1), 0);
  EXPECT_EQ(b.total_packets(), 0u);
  EXPECT_TRUE(b.active_next_hops().empty());
}

TEST(BulkBuffer, PopFromUnknownNextHopIsEmpty) {
  BulkBuffer b(bytes(1024));
  EXPECT_TRUE(b.pop_up_to(9, bytes(100)).empty());
}

TEST(BulkBuffer, FirstPacketLargerThanBudgetStays) {
  BulkBuffer b(bytes(4096));
  b.push(1, pkt(0, 1, bytes(256)));
  EXPECT_TRUE(b.pop_up_to(1, bytes(100)).empty());
  EXPECT_EQ(b.buffered_bits(1), bytes(256));
}

TEST(BulkBuffer, InterleavedPushPopKeepsOrder) {
  BulkBuffer b(bytes(4096));
  for (std::uint32_t i = 1; i <= 4; ++i) b.push(1, pkt(0, i));
  auto first = b.pop_up_to(1, bytes(64));
  for (std::uint32_t i = 5; i <= 8; ++i) b.push(1, pkt(0, i));
  auto second = b.pop_up_to(1, bytes(4096));
  ASSERT_EQ(first.size(), 2u);
  ASSERT_EQ(second.size(), 6u);
  EXPECT_EQ(second.front().seq, 3u);
  EXPECT_EQ(second.back().seq, 8u);
}

TEST(BulkBuffer, ManyPopsCompactInternally) {
  // Regression guard for the head-compaction path: repeated small pops
  // must not corrupt accounting.
  BulkBuffer b(1 << 20);
  for (std::uint32_t i = 1; i <= 1000; ++i) b.push(1, pkt(0, i));
  std::uint32_t expect = 1;
  for (int round = 0; round < 100; ++round) {
    const auto out = b.pop_up_to(1, bytes(320));  // 10 packets
    ASSERT_EQ(out.size(), 10u);
    for (const auto& p : out) EXPECT_EQ(p.seq, expect++);
  }
  EXPECT_EQ(b.total_packets(), 0u);
  EXPECT_EQ(b.total_bits(), 0);
}

TEST(BulkBuffer, InvalidArgumentsThrow) {
  EXPECT_THROW(BulkBuffer(0), std::invalid_argument);
  BulkBuffer b(bytes(64));
  EXPECT_THROW(b.push(-1, pkt(0, 1)), std::invalid_argument);
  net::DataPacket zero = pkt(0, 1, 0);
  EXPECT_THROW(b.push(1, zero), std::invalid_argument);
  EXPECT_THROW(b.pop_up_to(1, -1), std::invalid_argument);
}

TEST(BcpConfig, ValidationCatchesBadCombos) {
  BcpConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  cfg.burst_threshold_bits = cfg.buffer_capacity_bits + 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = BcpConfig{};
  cfg.frame_payload_bits = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = BcpConfig{};
  cfg.max_wakeup_retries = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(BcpConfig, BurstPacketsHelper) {
  BcpConfig cfg;
  cfg.set_burst_packets(500, util::bytes(32));
  EXPECT_EQ(cfg.burst_threshold_bits, 500 * util::bytes(32));
  EXPECT_THROW(cfg.set_burst_packets(0, util::bytes(32)),
               std::invalid_argument);
}

TEST(BcpConfig, FromAnalysisUsesAlphaTimesSStar) {
  auto analysis = energy::DualRadioAnalysis::standard(
      energy::mica(), energy::lucent_11mbps());
  const auto cfg = BcpConfig::from_analysis(analysis, 10.0);
  ASSERT_TRUE(analysis.break_even_bits().has_value());
  EXPECT_EQ(cfg.burst_threshold_bits, 10 * *analysis.break_even_bits());
}

TEST(BcpConfig, FromAnalysisRejectsInfeasiblePairs) {
  auto analysis = energy::DualRadioAnalysis::standard(
      energy::micaz(), energy::cabletron_2mbps());
  EXPECT_THROW(BcpConfig::from_analysis(analysis, 2.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace bcp::core

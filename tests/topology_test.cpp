// Unit + property tests for the topology subsystem: generator
// determinism, spatial-hash neighbour discovery vs the brute-force
// pairwise reference, component/stranded reporting, convergecast routing
// vs the all-pairs table, and tree point-to-point routing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "net/routing.hpp"
#include "net/topology.hpp"

namespace bcp::net {
namespace {

std::vector<Topology> all_generated(std::uint64_t seed) {
  return {Topology::grid(6, 200.0, 0),
          Topology::uniform_random(40, 200.0, seed),
          Topology::gaussian_clusters(40, 200.0, 4, 25.0, seed),
          Topology::line_corridor(40, 200.0, 20.0, seed),
          Topology::ring(40, 100.0)};
}

TEST(TopologyGenerators, SameSeedIsByteIdentical) {
  const auto a = all_generated(42);
  const auto b = all_generated(42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    SCOPED_TRACE(a[t].name);
    ASSERT_EQ(a[t].node_count(), b[t].node_count());
    EXPECT_EQ(a[t].sink, b[t].sink);
    for (int i = 0; i < a[t].node_count(); ++i) {
      // Bit-exact, not approximately equal.
      EXPECT_EQ(a[t].position(i).x, b[t].position(i).x);
      EXPECT_EQ(a[t].position(i).y, b[t].position(i).y);
    }
  }
}

TEST(TopologyGenerators, DifferentSeedsDiffer) {
  const auto a = Topology::uniform_random(40, 200.0, 1);
  const auto b = Topology::uniform_random(40, 200.0, 2);
  bool any_differ = false;
  for (int i = 0; i < 40; ++i)
    any_differ |= a.position(i).x != b.position(i).x;
  EXPECT_TRUE(any_differ);
}

TEST(TopologyGenerators, GridMatchesLegacyGridTopology) {
  const auto legacy = GridTopology::paper_grid();
  const auto t = Topology::grid(6, 200.0, 0);
  ASSERT_EQ(t.node_count(), legacy.node_count());
  for (int i = 0; i < t.node_count(); ++i) {
    EXPECT_EQ(t.position(i).x, legacy.position(i).x);
    EXPECT_EQ(t.position(i).y, legacy.position(i).y);
  }
}

TEST(TopologyGenerators, GeometryInvariants) {
  // Every generator stays within its bounding box and owns node 0 as sink.
  for (const auto& t : all_generated(7)) {
    SCOPED_TRACE(t.name);
    EXPECT_EQ(t.sink, 0);
    for (int i = 0; i < t.node_count(); ++i) {
      EXPECT_GE(t.position(i).x, 0.0);
      EXPECT_GE(t.position(i).y, 0.0);
    }
  }
  // Ring: all nodes exactly on the circle.
  const auto ring = Topology::ring(24, 100.0);
  for (int i = 0; i < 24; ++i) {
    const double r = distance(ring.position(i), Position{100.0, 100.0});
    EXPECT_NEAR(r, 100.0, 1e-9);
  }
  // Line corridor: lattice x positions, jitter only across the width.
  const auto line = Topology::line_corridor(21, 200.0, 20.0, 3);
  for (int i = 0; i < 21; ++i) {
    EXPECT_DOUBLE_EQ(line.position(i).x, i * 10.0);
    EXPECT_LE(line.position(i).y, 20.0);
  }
  // Clusters: clamped into the square, sink on the first centre.
  const auto cluster = Topology::gaussian_clusters(50, 200.0, 4, 25.0, 9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_LE(cluster.position(i).x, 200.0);
    EXPECT_LE(cluster.position(i).y, 200.0);
  }
}

TEST(TopologySpec, BuildDispatchesAndCounts) {
  TopologySpec spec;
  EXPECT_EQ(spec.node_count(), 36);  // default: the paper grid
  EXPECT_EQ(spec.build().name, "grid");
  EXPECT_EQ(spec.build().node_count(), 36);

  spec.kind = TopologyKind::kUniformRandom;
  spec.nodes = 50;
  EXPECT_EQ(spec.node_count(), 50);
  EXPECT_EQ(spec.build().name, "rand");
  EXPECT_EQ(spec.build().node_count(), 50);

  for (const auto kind :
       {TopologyKind::kGaussianClusters, TopologyKind::kLineCorridor,
        TopologyKind::kRing}) {
    spec.kind = kind;
    EXPECT_EQ(spec.build().name, to_string(kind));
    EXPECT_EQ(spec.build().node_count(), 50);
  }
}

TEST(SpatialHash, NeighborsMatchBruteForceOnRandomPlacements) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    for (const double range : {15.0, 40.0, 75.0, 300.0}) {
      const auto t = Topology::uniform_random(120, 200.0, seed);
      const ConnectivityGraph g(t.positions, range);
      SCOPED_TRACE("seed " + std::to_string(seed) + " range " +
                   std::to_string(range));
      for (NodeId a = 0; a < t.node_count(); ++a) {
        // Brute-force reference: ascending pairwise scan.
        std::vector<NodeId> expect;
        for (NodeId b = 0; b < t.node_count(); ++b)
          if (b != a && distance(t.position(a), t.position(b)) <= range)
            expect.push_back(b);
        ASSERT_EQ(g.neighbors(a), expect) << "node " << a;
      }
    }
  }
}

TEST(SpatialHash, HandlesCoincidentAndNegativeFreePositions) {
  // Duplicate positions are mutual neighbours at distance 0.
  const std::vector<Position> pos{{10, 10}, {10, 10}, {100, 100}};
  const ConnectivityGraph g(pos, 5.0);
  EXPECT_EQ(g.neighbors(0), std::vector<NodeId>{1});
  EXPECT_EQ(g.neighbors(1), std::vector<NodeId>{0});
  EXPECT_TRUE(g.neighbors(2).empty());
}

TEST(Components, LabelsAndUnreachable) {
  // Two clusters 1000 m apart plus one isolated node.
  const std::vector<Position> pos{{0, 0},    {10, 0},   {1000, 0},
                                  {1010, 0}, {5000, 5000}};
  const ConnectivityGraph g(pos, 50.0);
  const std::vector<int> label = connected_components(g);
  EXPECT_EQ(label, (std::vector<int>{0, 0, 1, 1, 2}));
  EXPECT_EQ(unreachable_from(g, 0), (std::vector<NodeId>{2, 3, 4}));
  EXPECT_EQ(unreachable_from(g, 2), (std::vector<NodeId>{0, 1, 4}));
  const auto t = Topology::grid(4, 90.0, 0);
  EXPECT_TRUE(
      unreachable_from(ConnectivityGraph(t.positions, 30.0), 0).empty());
}

TEST(Components, FormatNodeListTruncates) {
  EXPECT_EQ(format_node_list({}), "[]");
  EXPECT_EQ(format_node_list({3, 17}), "[3, 17]");
  EXPECT_EQ(format_node_list({1, 2, 3, 4}, 2), "[1, 2, ... (2 more)]");
}

TEST(Convergecast, MatchesAllPairsSliceOnPaperGrid) {
  const auto t = Topology::grid(6, 200.0, 0);
  const ConnectivityGraph g(t.positions, 40.0);
  const RoutingTable table(g);
  const ConvergecastRouting tree(g, t.sink);
  for (NodeId from = 0; from < t.node_count(); ++from) {
    EXPECT_EQ(tree.parent(from), table.next_hop(from, t.sink)) << from;
    EXPECT_EQ(tree.depth(from), table.hops(from, t.sink)) << from;
    EXPECT_EQ(tree.next_hop(from, t.sink), table.next_hop(from, t.sink));
  }
  EXPECT_DOUBLE_EQ(tree.mean_depth(), table.mean_hops_to(t.sink));
  EXPECT_TRUE(tree.stranded().empty());
}

TEST(Convergecast, MatchesAllPairsSliceOnRandomPlacements) {
  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    const auto t = Topology::uniform_random(80, 200.0, seed);
    const ConnectivityGraph g(t.positions, 60.0);
    const RoutingTable table(g);
    const ConvergecastRouting tree(g, t.sink);
    SCOPED_TRACE("seed " + std::to_string(seed));
    for (NodeId from = 0; from < t.node_count(); ++from) {
      EXPECT_EQ(tree.parent(from), table.next_hop(from, t.sink)) << from;
      EXPECT_EQ(tree.depth(from), table.hops(from, t.sink)) << from;
    }
  }
}

TEST(Convergecast, ReportsStrandedNodes) {
  const std::vector<Position> pos{{0, 0}, {10, 0}, {1000, 0}, {1010, 0}};
  const ConvergecastRouting tree{ConnectivityGraph(pos, 50.0), 0};
  EXPECT_EQ(tree.stranded(), (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(tree.parent(2), kInvalidNode);
  EXPECT_EQ(tree.depth(2), -1);
  EXPECT_EQ(tree.next_hop(2, 0), kInvalidNode);
  EXPECT_EQ(tree.hops(2, 0), -1);
  EXPECT_EQ(tree.next_hop(0, 3), kInvalidNode);
}

TEST(Convergecast, TreeRoutesReachEveryPair) {
  // Point-to-point routing along the tree (the BCP control plane routes
  // wake-up acks away from the sink): following next_hop from any node
  // must reach any other in exactly hops() steps, without loops.
  const auto spec = first_connected(
      [] {
        TopologySpec s;
        s.kind = TopologyKind::kUniformRandom;
        s.nodes = 60;
        s.area = 150.0;
        return s;
      }(),
      40.0);
  const auto t = spec.build();
  const ConnectivityGraph g(t.positions, 40.0);
  const ConvergecastRouting tree(g, t.sink);
  ASSERT_TRUE(tree.stranded().empty());
  for (NodeId from = 0; from < t.node_count(); ++from)
    for (NodeId to = 0; to < t.node_count(); ++to) {
      NodeId cur = from;
      int steps = 0;
      while (cur != to) {
        const NodeId next = tree.next_hop(cur, to);
        ASSERT_NE(next, kInvalidNode) << from << "->" << to;
        // Every tree hop is a physical link.
        ASSERT_TRUE(next == cur || g.connected(cur, next));
        cur = next;
        ASSERT_LE(++steps, t.node_count()) << "loop " << from << "->" << to;
      }
      EXPECT_EQ(steps, tree.hops(from, to)) << from << "->" << to;
    }
}

TEST(Convergecast, SinkIdentityMatchesRoutingTableConventions) {
  const auto t = Topology::grid(3, 80.0, 4);
  const ConnectivityGraph g(t.positions, 40.0);
  const ConvergecastRouting tree(g, 4);
  EXPECT_EQ(tree.sink(), 4);
  EXPECT_EQ(tree.next_hop(4, 4), 4);
  EXPECT_EQ(tree.hops(4, 4), 0);
  EXPECT_EQ(tree.parent(4), 4);
  EXPECT_EQ(tree.depth(4), 0);
}

TEST(FirstConnected, DeterministicAndConnected) {
  TopologySpec spec;
  spec.kind = TopologyKind::kUniformRandom;
  spec.nodes = 36;
  spec.area = 200.0;
  spec.seed = 1;
  const TopologySpec a = first_connected(spec, 40.0);
  const TopologySpec b = first_connected(spec, 40.0);
  EXPECT_EQ(a.seed, b.seed);
  const auto t = a.build();
  EXPECT_TRUE(
      unreachable_from(ConnectivityGraph(t.positions, 40.0), t.sink)
          .empty());
  // A spec that is already connected is returned unchanged.
  TopologySpec grid_spec;
  EXPECT_EQ(first_connected(grid_spec, 40.0).seed, grid_spec.seed);
}

TEST(FirstConnected, ThrowsWhenNoSeedWorks) {
  TopologySpec spec;
  spec.kind = TopologyKind::kUniformRandom;
  spec.nodes = 8;
  spec.area = 100000.0;  // 8 nodes over 100 km: never 40 m-connected
  EXPECT_THROW(first_connected(spec, 40.0, 5), std::invalid_argument);
}

}  // namespace
}  // namespace bcp::net

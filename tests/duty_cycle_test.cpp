// Tests: the sleep-cycled 802.11 node (§1 motivation baseline).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "app/duty_cycle.hpp"
#include "app/workload.hpp"
#include "energy/radio_model.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "phy/channel.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace bcp::app {
namespace {

class DutyCycleTest : public ::testing::Test {
 protected:
  // Two nodes in range; node 1 sends to node 0.
  void build(double duty, double period = 1.0) {
    channel_ = std::make_unique<phy::Channel>(
        sim_, std::vector<net::Position>{{0, 0}, {30, 0}}, 50.0,
        phy::Channel::Params{0.0}, 5);
    routes_ = std::make_unique<net::RoutingTable>(
        net::ConnectivityGraph({{0, 0}, {30, 0}}, 50.0));
    delivery_.delivered = [this](const net::DataPacket& p) {
      delivered_.push_back(p);
      delay_sum_ += sim_.now() - p.created_at;
    };
    delivery_.dropped = [this](const net::DataPacket&, const char*) {
      ++dropped_;
    };
    DutyCycledWifiNode::Schedule schedule{period, duty};
    for (net::NodeId id = 0; id < 2; ++id)
      nodes_.push_back(std::make_unique<DutyCycledWifiNode>(
          sim_, *channel_, *routes_, id, 0, energy::lucent_11mbps(),
          schedule, 7, &delivery_));
  }
  net::DataPacket pkt(std::uint32_t seq) {
    return net::DataPacket{1, 0, seq, util::bytes(32), sim_.now()};
  }

  sim::Simulator sim_;
  std::unique_ptr<phy::Channel> channel_;
  std::unique_ptr<net::RoutingTable> routes_;
  DeliverySink delivery_;
  std::vector<std::unique_ptr<DutyCycledWifiNode>> nodes_;
  std::vector<net::DataPacket> delivered_;
  double delay_sum_ = 0;
  int dropped_ = 0;
};

TEST_F(DutyCycleTest, DeliversDuringOpenWindow) {
  build(0.5);
  sim_.schedule_at(0.1, [&] { nodes_[1]->send(pkt(1)); });
  sim_.run_until(0.3);
  EXPECT_EQ(delivered_.size(), 1u);
  EXPECT_LT(delay_sum_, 0.01);  // window open: near-immediate
}

TEST_F(DutyCycleTest, QueuesDuringSleepUntilNextWindow) {
  build(0.1);  // window 0..0.1, sleep until 1.0
  sim_.schedule_at(0.5, [&] { nodes_[1]->send(pkt(1)); });
  sim_.run_until(0.9);
  EXPECT_TRUE(delivered_.empty());
  EXPECT_EQ(nodes_[1]->queued(), 1u);
  sim_.run_until(1.2);
  ASSERT_EQ(delivered_.size(), 1u);
  // Delivered right after the 1.0 s wake-up (+ 100 ms radio wake).
  EXPECT_NEAR(delay_sum_, 0.6, 0.15);
}

TEST_F(DutyCycleTest, RadioSleepsBetweenWindows) {
  build(0.1);
  sim_.run_until(9.99);  // stop just before the 11th window opens
  auto& meter = nodes_[0]->radio().meter();
  meter.finalize(9.99);
  using energy::EnergyCategory;
  const double on_time = meter.duration(EnergyCategory::kIdle) +
                         meter.duration(EnergyCategory::kRx) +
                         meter.duration(EnergyCategory::kTx) +
                         meter.duration(EnergyCategory::kWaking);
  // 10 windows of 0.1 s usable + 0.1 s wake transition each.
  EXPECT_LT(on_time, 2.3);
  EXPECT_GT(meter.duration(EnergyCategory::kOff), 7.5);
  EXPECT_EQ(meter.wakeup_count(), 10);
}

double idle_world_energy(double duty) {
  // A fresh 2-node world with no traffic, 20 simulated seconds.
  sim::Simulator sim;
  phy::Channel channel(sim, {{0, 0}, {30, 0}}, 50.0,
                       phy::Channel::Params{0.0}, 5);
  net::RoutingTable routes{net::ConnectivityGraph({{0, 0}, {30, 0}}, 50.0)};
  DeliverySink delivery;
  delivery.delivered = [](const net::DataPacket&) {};
  delivery.dropped = [](const net::DataPacket&, const char*) {};
  DutyCycledWifiNode node(sim, channel, routes, 0, 0,
                          energy::lucent_11mbps(),
                          DutyCycledWifiNode::Schedule{1.0, duty}, 7,
                          &delivery);
  sim.run_until(20.0);
  node.radio().meter().finalize(20.0);
  return node.radio().meter().charged_total(energy::ChargingPolicy::full());
}

TEST(DutyCycleEnergy, ScalesWithDutyButNeverReachesZero) {
  const double high = idle_world_energy(0.5);
  const double low = idle_world_energy(0.05);
  EXPECT_GT(high, 4.0 * low);
  EXPECT_GT(low, 0.0);  // still pays wake-ups + idle every period
}

TEST_F(DutyCycleTest, SteadyTrafficAllDelivered) {
  build(0.2);
  CbrWorkload w(sim_, 1, 0, util::bytes(32), 2000.0, 3,
                [&](net::DataPacket p) { nodes_[1]->send(p); });
  w.start();
  sim_.run_until(30.0);
  // Everything generated at least one full period before the end arrives.
  EXPECT_GT(static_cast<double>(delivered_.size()),
            0.9 * static_cast<double>(w.generated()) - 10);
  EXPECT_EQ(dropped_, 0);
}

TEST_F(DutyCycleTest, InvalidScheduleThrows) {
  channel_ = std::make_unique<phy::Channel>(
      sim_, std::vector<net::Position>{{0, 0}}, 50.0,
      phy::Channel::Params{0.0}, 5);
  routes_ = std::make_unique<net::RoutingTable>(
      net::ConnectivityGraph({{0, 0}}, 50.0));
  delivery_.delivered = [](const net::DataPacket&) {};
  delivery_.dropped = [](const net::DataPacket&, const char*) {};
  EXPECT_THROW(DutyCycledWifiNode(sim_, *channel_, *routes_, 0, 0,
                                  energy::lucent_11mbps(),
                                  DutyCycledWifiNode::Schedule{1.0, 0.0}, 1,
                                  &delivery_),
               std::invalid_argument);
  EXPECT_THROW(DutyCycledWifiNode(sim_, *channel_, *routes_, 0, 0,
                                  energy::lucent_11mbps(),
                                  DutyCycledWifiNode::Schedule{0.0, 0.5}, 1,
                                  &delivery_),
               std::invalid_argument);
}

}  // namespace
}  // namespace bcp::app

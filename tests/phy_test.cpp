// Unit tests: channel semantics (range, collisions, losses, carrier sense)
// and the radio power/reception state machine.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "energy/radio_model.hpp"
#include "net/topology.hpp"
#include "phy/channel.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"

namespace bcp::phy {
namespace {

using net::NodeId;
using net::Position;

Frame make_frame(NodeId from, NodeId to, util::Bits payload = 256,
                 util::Bits header = 88) {
  Frame f;
  f.tx_node = from;
  f.rx_node = to;
  f.kind = FrameKind::kData;
  f.mac_seq = 1;
  f.payload_bits = payload;
  f.header_bits = header;
  net::Message m;
  m.src = from;
  m.dst = to;
  m.body = net::DataPacket{from, to, 1, payload, 0.0};
  f.message = net::make_message(std::move(m));
  return f;
}

/// Records every channel callback for one node.
class Probe : public ChannelListener {
 public:
  struct Rx {
    std::uint64_t id;
    bool clean;
  };
  void on_rx_start(std::uint64_t, const Frame&, util::Seconds) override {
    ++starts;
  }
  void on_rx_end(std::uint64_t id, const Frame&, bool clean) override {
    ends.push_back(Rx{id, clean});
  }
  int starts = 0;
  std::vector<Rx> ends;
};

class ChannelTest : public ::testing::Test {
 protected:
  // Line topology: 0 -- 50m -- 1 -- 50m -- 2; range 60 m, so 0 and 2 are
  // hidden terminals with respect to each other.
  ChannelTest()
      : channel_(sim_, {{0, 0}, {50, 0}, {100, 0}}, 60.0,
                 Channel::Params{0.0}, 1) {
    for (auto& p : probes_) p = std::make_unique<Probe>();
    for (NodeId i = 0; i < 3; ++i) channel_.attach(i, probes_[i].get());
  }
  sim::Simulator sim_;
  Channel channel_;
  std::unique_ptr<Probe> probes_[3];
};

TEST_F(ChannelTest, DeliversCleanWithinRange) {
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  sim_.run();
  ASSERT_EQ(probes_[1]->ends.size(), 1u);
  EXPECT_TRUE(probes_[1]->ends[0].clean);
  EXPECT_EQ(probes_[2]->starts, 0);  // out of range of node 0
}

TEST_F(ChannelTest, NeighborsHearFramesNotAddressedToThem) {
  channel_.start_tx(1, make_frame(1, 2), 0.01);
  sim_.run();
  EXPECT_EQ(probes_[0]->starts, 1);  // in range — overhears
  EXPECT_EQ(probes_[2]->starts, 1);
}

TEST_F(ChannelTest, OverlappingTransmissionsCollideAtCommonReceiver) {
  // Hidden terminals 0 and 2 transmit simultaneously: node 1 hears both,
  // both corrupted.
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  channel_.start_tx(2, make_frame(2, 1), 0.01);
  sim_.run();
  ASSERT_EQ(probes_[1]->ends.size(), 2u);
  EXPECT_FALSE(probes_[1]->ends[0].clean);
  EXPECT_FALSE(probes_[1]->ends[1].clean);
}

TEST_F(ChannelTest, PartialOverlapAlsoCollides) {
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  sim_.schedule_at(0.009, [&] {
    channel_.start_tx(2, make_frame(2, 1), 0.01);
  });
  sim_.run();
  ASSERT_EQ(probes_[1]->ends.size(), 2u);
  EXPECT_FALSE(probes_[1]->ends[0].clean);
  EXPECT_FALSE(probes_[1]->ends[1].clean);
}

TEST_F(ChannelTest, BackToBackFramesDoNotCollide) {
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  sim_.schedule_at(0.0101, [&] {
    channel_.start_tx(2, make_frame(2, 1), 0.01);
  });
  sim_.run();
  ASSERT_EQ(probes_[1]->ends.size(), 2u);
  EXPECT_TRUE(probes_[1]->ends[0].clean);
  EXPECT_TRUE(probes_[1]->ends[1].clean);
}

TEST_F(ChannelTest, TransmitterCannotHearWhileTransmitting) {
  // Node 1 transmits; node 0's frame to 1 overlaps -> corrupted at 1.
  channel_.start_tx(1, make_frame(1, 2), 0.01);
  channel_.start_tx(0, make_frame(0, 1), 0.005);
  sim_.run();
  ASSERT_EQ(probes_[1]->ends.size(), 1u);  // hears only node 0's frame
  EXPECT_FALSE(probes_[1]->ends[0].clean);
}

TEST_F(ChannelTest, CollisionIsLocalNotGlobal) {
  // 0->1 and 2->1 collide at 1, but node 2's frame... use a different
  // pattern: 0 transmits, 2 transmits; node 1 sees collision. Node 0 and 2
  // hear nothing (out of range of each other), so no corruption there.
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  channel_.start_tx(2, make_frame(2, 1), 0.01);
  sim_.run();
  EXPECT_EQ(probes_[0]->starts, 0);
  EXPECT_EQ(probes_[2]->starts, 0);
}

TEST_F(ChannelTest, CarrierSenseTracksAudibleTraffic) {
  EXPECT_FALSE(channel_.busy_at(0));
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  EXPECT_TRUE(channel_.busy_at(0));  // own transmission
  EXPECT_TRUE(channel_.busy_at(1));
  EXPECT_FALSE(channel_.busy_at(2));  // hidden from node 0
  EXPECT_DOUBLE_EQ(channel_.clear_at(1), 0.01);
  sim_.run();
  EXPECT_FALSE(channel_.busy_at(1));
  EXPECT_DOUBLE_EQ(channel_.clear_at(1), sim_.now());
}

TEST_F(ChannelTest, StatsCountCleanAndCorrupt) {
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  sim_.run();
  EXPECT_EQ(channel_.stats().frames, 1);
  EXPECT_EQ(channel_.stats().deliveries_clean, 1);
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  channel_.start_tx(2, make_frame(2, 1), 0.01);
  sim_.run();
  EXPECT_EQ(channel_.stats().deliveries_corrupt, 2);
}

TEST_F(ChannelTest, DoubleTransmitFromSameNodeThrows) {
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  EXPECT_THROW(channel_.start_tx(0, make_frame(0, 1), 0.01),
               std::invalid_argument);
}

TEST(ChannelLoss, BernoulliLossDropsRoughlyTheConfiguredFraction) {
  sim::Simulator sim;
  Channel ch(sim, {{0, 0}, {10, 0}}, 50.0, Channel::Params{0.3}, 42);
  Probe p;
  ch.attach(1, &p);
  int clean = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    sim.schedule_at(i * 1.0, [&] { ch.start_tx(0, make_frame(0, 1), 0.01); });
  }
  sim.run();
  for (const auto& e : p.ends)
    if (e.clean) ++clean;
  EXPECT_NEAR(static_cast<double>(clean) / n, 0.7, 0.04);
}

TEST(ChannelLoss, InvalidLossProbabilityThrows) {
  sim::Simulator sim;
  EXPECT_THROW(Channel(sim, {{0, 0}}, 50.0, Channel::Params{-0.1}, 1),
               std::invalid_argument);
  EXPECT_THROW(Channel(sim, {{0, 0}}, 50.0, Channel::Params{1.01}, 1),
               std::invalid_argument);
  // The closed interval is valid: 1.0 is a fully lossy link, not an error.
  EXPECT_NO_THROW(Channel(sim, {{0, 0}}, 50.0, Channel::Params{1.0}, 1));
}

TEST(ChannelLoss, FullLossYieldsZeroCleanDeliveries) {
  sim::Simulator sim;
  Channel ch(sim, {{0, 0}, {10, 0}}, 50.0, Channel::Params{1.0}, 42);
  Probe p;
  ch.attach(1, &p);
  const int n = 50;
  for (int i = 0; i < n; ++i)
    sim.schedule_at(i * 1.0, [&] { ch.start_tx(0, make_frame(0, 1), 0.01); });
  sim.run();
  ASSERT_EQ(p.ends.size(), static_cast<std::size_t>(n));
  for (const auto& e : p.ends) EXPECT_FALSE(e.clean);
  EXPECT_EQ(ch.stats().deliveries_clean, 0);
  EXPECT_EQ(ch.stats().deliveries_corrupt, n);
}

// ---------------------------------------------------------- Propagation --

/// Neighbour index of `dst` in graph.neighbors(src) (asserts it exists).
std::size_t nbr_index(const net::ConnectivityGraph& graph, NodeId src,
                      NodeId dst) {
  const auto& nbrs = graph.neighbors(src);
  for (std::size_t i = 0; i < nbrs.size(); ++i)
    if (nbrs[i] == dst) return i;
  ADD_FAILURE() << dst << " not a neighbour of " << src;
  return 0;
}

TEST(Propagation, AutoResolvesToUnitDiscWithTheExtraLossKnob) {
  const net::ConnectivityGraph graph({{0, 0}, {10, 0}, {35, 0}}, 40.0);
  const auto model =
      make_propagation_model(PropagationSpec{}, graph, 0.25, 1);
  EXPECT_EQ(model->kind(), PropagationKind::kUnitDisc);
  EXPECT_TRUE(model->uniform());
  EXPECT_DOUBLE_EQ(model->loss_prob(0, 0, 1), 0.25);
  EXPECT_DOUBLE_EQ(model->loss_prob(1, 1, 2), 0.25);  // every link alike
}

TEST(Propagation, LogDistancePerGrowsWithDistanceAndIsSymmetric) {
  const net::ConnectivityGraph graph({{0, 0}, {10, 0}, {35, 0}}, 40.0);
  PropagationSpec spec;
  spec.kind = PropagationKind::kLogDistance;
  spec.shadowing_sigma_db = 0.0;  // isolate the distance term
  const auto model = make_propagation_model(spec, graph, 0.0, 1);
  EXPECT_FALSE(model->uniform());
  const double near = model->loss_prob(0, nbr_index(graph, 0, 1), 1);
  const double far = model->loss_prob(0, nbr_index(graph, 0, 2), 2);
  EXPECT_GE(near, 0.0);
  EXPECT_LE(far, 1.0);
  EXPECT_LT(near, far);  // 10 m link beats the 35 m link
  // Symmetric per link.
  EXPECT_DOUBLE_EQ(model->loss_prob(1, nbr_index(graph, 1, 0), 0), near);
  EXPECT_DOUBLE_EQ(model->loss_prob(2, nbr_index(graph, 2, 0), 0), far);
}

TEST(Propagation, LogDistanceShadowingIsFrozenPerLinkAndSeed) {
  const net::ConnectivityGraph graph({{0, 0}, {30, 0}, {30, 30}}, 50.0);
  PropagationSpec spec;
  spec.kind = PropagationKind::kLogDistance;
  spec.shadowing_sigma_db = 6.0;
  const auto a = make_propagation_model(spec, graph, 0.0, 9);
  const auto b = make_propagation_model(spec, graph, 0.0, 9);
  const auto c = make_propagation_model(spec, graph, 0.0, 10);
  const std::size_t i01 = nbr_index(graph, 0, 1);
  // Same seed — identical frozen PER; different seed — different shadow.
  EXPECT_DOUBLE_EQ(a->loss_prob(0, i01, 1), b->loss_prob(0, i01, 1));
  EXPECT_NE(a->loss_prob(0, i01, 1), c->loss_prob(0, i01, 1));
  // Symmetric even under shadowing (one draw per unordered pair).
  EXPECT_DOUBLE_EQ(a->loss_prob(0, i01, 1),
                   a->loss_prob(1, nbr_index(graph, 1, 0), 0));
}

TEST(Propagation, DistancePerInterpolatesTheCurve) {
  // Range 100: knots at 0 %, 50 %, 100 % of the disc.
  const net::ConnectivityGraph graph({{0, 0}, {25, 0}, {75, 0}}, 100.0);
  PropagationSpec spec;
  spec.kind = PropagationKind::kDistancePer;
  spec.per_curve = {{0.0, 0.0}, {0.5, 0.2}, {1.0, 1.0}};
  const auto model = make_propagation_model(spec, graph, 0.0, 1);
  // d = 25 → halfway to the 0.5 knot → per 0.1; d = 50 (node 1→2) → 0.2;
  // d = 75 → halfway from 0.2 to 1.0 → 0.6.
  EXPECT_NEAR(model->loss_prob(0, nbr_index(graph, 0, 1), 1), 0.1, 1e-12);
  EXPECT_NEAR(model->loss_prob(1, nbr_index(graph, 1, 2), 2), 0.2, 1e-12);
  EXPECT_NEAR(model->loss_prob(0, nbr_index(graph, 0, 2), 2), 0.6, 1e-12);
}

TEST(Propagation, RxPowerFollowsTheLinkBudget) {
  // The dBm accessor is the human-facing face of the capture power model;
  // rx_power_mw is its precomputed linear twin the Channel's hot path
  // reads. Log-distance anchors the disc edge at edge_rx_power_dbm and
  // climbs 10·n·log10(range/d) toward the transmitter.
  const net::ConnectivityGraph graph({{0, 0}, {4, 0}, {36, 0}}, 40.0);
  PropagationSpec spec;
  spec.kind = PropagationKind::kLogDistance;
  spec.shadowing_sigma_db = 0.0;  // isolate the distance term
  const auto model = make_propagation_model(spec, graph, 0.0, 1);
  // 4 m link: -80 + 30·log10(40/4) = -50 dBm; 36 m link ≈ -78.6 dBm.
  EXPECT_NEAR(model->rx_power_dbm(0, nbr_index(graph, 0, 1), 1), -50.0,
              1e-9);
  EXPECT_NEAR(model->rx_power_dbm(0, nbr_index(graph, 0, 2), 2),
              -80.0 + 30.0 * std::log10(40.0 / 36.0), 1e-9);
  EXPECT_DOUBLE_EQ(model->rx_power_mw(0, nbr_index(graph, 0, 1), 1),
                   util::dbm_to_mw(model->rx_power_dbm(
                       0, nbr_index(graph, 0, 1), 1)));
  // Unit-disc (and distance-PER) links share one fixed on/off power.
  const auto disc = make_propagation_model(PropagationSpec{}, graph, 0.0, 1);
  EXPECT_DOUBLE_EQ(disc->rx_power_dbm(0, 0, 1), -60.0);
  EXPECT_DOUBLE_EQ(disc->rx_power_mw(0, 0, 1), util::dbm_to_mw(-60.0));
}

TEST(Propagation, ExtraLossComposesIndependently) {
  const net::ConnectivityGraph graph({{0, 0}, {50, 0}}, 100.0);
  PropagationSpec spec;
  spec.kind = PropagationKind::kDistancePer;
  spec.per_curve = {{0.0, 0.5}, {1.0, 0.5}};
  const auto model = make_propagation_model(spec, graph, 0.2, 1);
  // p = per + extra − per·extra = 0.5 + 0.2 − 0.1 = 0.6.
  EXPECT_NEAR(model->loss_prob(0, 0, 1), 0.6, 1e-12);
}

TEST(Propagation, InvalidSpecsThrow) {
  const net::ConnectivityGraph graph({{0, 0}, {10, 0}}, 40.0);
  PropagationSpec spec;
  spec.kind = PropagationKind::kLogDistance;
  spec.path_loss_exponent = 0.0;
  EXPECT_THROW(make_propagation_model(spec, graph, 0.0, 1),
               std::invalid_argument);
  spec = PropagationSpec{};
  spec.kind = PropagationKind::kDistancePer;
  spec.per_curve = {{0.0, 1.5}};  // per outside [0, 1]
  EXPECT_THROW(make_propagation_model(spec, graph, 0.0, 1),
               std::invalid_argument);
  spec.per_curve = {{0.5, 0.1}, {0.2, 0.1}};  // unsorted knots
  EXPECT_THROW(make_propagation_model(spec, graph, 0.0, 1),
               std::invalid_argument);
}

TEST(Propagation, LossyChannelStillConservesDeliveries) {
  // End-to-end through the Channel: per-link PER changes who receives
  // cleanly, never whether rx_end fires.
  sim::Simulator sim;
  Channel::Params params;
  params.propagation.kind = PropagationKind::kLogDistance;
  Channel ch(sim, {{0, 0}, {38, 0}, {76, 0}}, 40.0, params, 11);
  Probe p1;
  ch.attach(1, &p1);
  const int n = 200;
  for (int i = 0; i < n; ++i)
    sim.schedule_at(i * 1.0, [&] { ch.start_tx(0, make_frame(0, 1), 0.01); });
  sim.run();
  EXPECT_EQ(ch.stats().rx_starts,
            ch.stats().deliveries_clean + ch.stats().deliveries_corrupt);
  EXPECT_EQ(ch.live_arrivals(), 0);
  ASSERT_EQ(p1.ends.size(), static_cast<std::size_t>(n));
  // A 38 m link at the 40 m disc edge under log-distance loss: some but
  // not all deliveries survive.
  int clean = 0;
  for (const auto& e : p1.ends) clean += e.clean ? 1 : 0;
  EXPECT_GT(clean, 0);
  EXPECT_LT(clean, n);
}

// ------------------------------------------------------- SINR / capture --

/// Probe that also records *when* each rx_end arrived — the abort
/// regression below asserts truncation time, not just corruption.
class TimedProbe : public ChannelListener {
 public:
  struct Rx {
    std::uint64_t id;
    bool clean;
    util::Seconds at;
  };
  void on_rx_start(std::uint64_t, const Frame&, util::Seconds) override {
    ++starts;
  }
  void on_rx_end(std::uint64_t id, const Frame&, bool clean) override {
    ends.push_back(Rx{id, clean, sim->now()});
  }
  sim::Simulator* sim = nullptr;
  int starts = 0;
  std::vector<Rx> ends;
};

/// Log-distance spec with shadowing off and a huge fade margin: per-link
/// PER is ~0 (no Bernoulli luck), leaving rx powers as the only physics —
/// node distance alone decides who wins a collision.
Channel::Params capture_params(double threshold_db = 10.0) {
  Channel::Params params;
  params.propagation.kind = PropagationKind::kLogDistance;
  params.propagation.shadowing_sigma_db = 0.0;
  params.propagation.fade_margin_db = 40.0;
  params.capture.enabled = true;
  params.capture.threshold_db = threshold_db;
  return params;
}

TEST(ChannelCapture, StrongFrameSurvivesCollisionItDominates) {
  // Receiver at the origin; a 4 m and a 36 m sender collide. Log-distance
  // powers: near = -80 + 30·log10(40/4) = -50 dBm, far ≈ -78.6 dBm. The
  // near frame clears 10 dB of SINR over the far one (+28 dB margin) and
  // survives; the far frame (-28 dB) still corrupts.
  sim::Simulator sim;
  Channel ch(sim, {{0, 0}, {4, 0}, {36, 0}}, 40.0, capture_params(), 3);
  Probe p0;
  ch.attach(0, &p0);
  ch.start_tx(1, make_frame(1, 0), 0.01);
  ch.start_tx(2, make_frame(2, 0), 0.01);
  sim.run();
  ASSERT_EQ(p0.ends.size(), 2u);
  EXPECT_TRUE(p0.ends[0].clean);    // near frame (started first)
  EXPECT_FALSE(p0.ends[1].clean);   // far frame
  // The only clean delivery anywhere: the two senders hear each other but
  // were transmitting (half-duplex is absolute, capture or not).
  EXPECT_EQ(ch.stats().deliveries_clean, 1);
  EXPECT_EQ(ch.stats().deliveries_corrupt, 3);
  EXPECT_EQ(ch.live_arrivals(), 0);
}

TEST(ChannelCapture, EqualPowerCollisionIsStillATie) {
  // Unit-disc powers are identical, so neither frame can dominate — the
  // capture switch reproduces all-overlaps-corrupt on equal-power ties.
  sim::Simulator sim;
  Channel::Params params;
  params.capture.enabled = true;
  Channel ch(sim, {{0, 0}, {50, 0}, {100, 0}}, 60.0, params, 1);
  Probe p1;
  ch.attach(1, &p1);
  ch.start_tx(0, make_frame(0, 1), 0.01);
  ch.start_tx(2, make_frame(2, 1), 0.01);
  sim.run();
  ASSERT_EQ(p1.ends.size(), 2u);
  EXPECT_FALSE(p1.ends[0].clean);
  EXPECT_FALSE(p1.ends[1].clean);
}

TEST(ChannelCapture, LenientThresholdNeverCorruptsCollisionFreeFrames) {
  // Collision-free reception must be untouched by the capture switch even
  // for weak edge links: the SINR gate applies to overlapped frames only
  // (the noise/SNR story of a lone frame is the propagation model's PER).
  sim::Simulator sim;
  Channel ch(sim, {{0, 0}, {39, 0}}, 40.0, capture_params(), 3);
  Probe p1;
  ch.attach(1, &p1);
  for (int i = 0; i < 20; ++i)
    sim.schedule_at(i * 1.0, [&] { ch.start_tx(0, make_frame(0, 1), 0.01); });
  sim.run();
  ASSERT_EQ(p1.ends.size(), 20u);
  for (const auto& e : p1.ends) EXPECT_TRUE(e.clean);
}

TEST(ChannelCapture, ThreeWayCollisionCorruptsEachFrameExactlyOnce) {
  // Three hidden terminals (pairwise ~87 m apart, range 60 m) collide at
  // the centre node: every frame is overlapped by two others, yet each
  // (frame, hearer) increments deliveries_corrupt exactly once — in both
  // collision-resolution modes.
  for (const bool capture : {false, true}) {
    sim::Simulator sim;
    Channel::Params params;
    params.capture.enabled = capture;
    Channel ch(sim, {{0, 0}, {50, 0}, {-25, 43.3}, {-25, -43.3}}, 60.0,
               params, 9);
    Probe p0;
    ch.attach(0, &p0);
    ch.start_tx(1, make_frame(1, 0), 0.01);
    ch.start_tx(2, make_frame(2, 0), 0.01);
    ch.start_tx(3, make_frame(3, 0), 0.01);
    sim.run();
    ASSERT_EQ(p0.starts, 3) << "capture=" << capture;
    ASSERT_EQ(p0.ends.size(), 3u) << "capture=" << capture;
    std::vector<std::uint64_t> seen;
    for (const auto& e : p0.ends) {
      EXPECT_FALSE(e.clean) << "capture=" << capture;
      for (const std::uint64_t id : seen)
        EXPECT_NE(id, e.id) << "duplicate rx_end, capture=" << capture;
      seen.push_back(e.id);
    }
    // Exactly one corrupt delivery per (frame, hearer); only node 0 hears
    // anything (the senders are hidden from each other).
    EXPECT_EQ(ch.stats().rx_starts, 3) << "capture=" << capture;
    EXPECT_EQ(ch.stats().deliveries_corrupt, 3) << "capture=" << capture;
    EXPECT_EQ(ch.stats().deliveries_clean, 0) << "capture=" << capture;
    EXPECT_EQ(ch.live_arrivals(), 0) << "capture=" << capture;
  }
}

TEST(ChannelCapture, InvalidCaptureParamsThrow) {
  // Mirrors the frame_loss_prob range validation: NaN thresholds and
  // NaN / zero / infinite noise powers are configuration errors whether
  // or not the capture switch is on.
  sim::Simulator sim;
  const std::vector<net::Position> pos = {{0, 0}, {10, 0}};
  Channel::Params params;
  params.capture.threshold_db = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(Channel(sim, pos, 50.0, params, 1), std::invalid_argument);
  params = Channel::Params{};
  params.capture.noise_floor_dbm = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(Channel(sim, pos, 50.0, params, 1), std::invalid_argument);
  params = Channel::Params{};
  // -inf dBm would be a zero-noise receiver: rejected as non-positive
  // noise power.
  params.capture.noise_floor_dbm = -std::numeric_limits<double>::infinity();
  EXPECT_THROW(Channel(sim, pos, 50.0, params, 1), std::invalid_argument);
  params = Channel::Params{};
  params.capture.noise_floor_dbm = std::numeric_limits<double>::infinity();
  EXPECT_THROW(Channel(sim, pos, 50.0, params, 1), std::invalid_argument);
  // Finite values — including a deliberately lenient negative threshold —
  // are legal.
  params = Channel::Params{};
  params.capture.enabled = true;
  params.capture.threshold_db = -3.0;
  params.capture.noise_floor_dbm = -90.0;
  EXPECT_NO_THROW(Channel(sim, pos, 50.0, params, 1));
}

TEST(ChannelAbort, TruncationEndsDeliveryAndMediumAtAbortTime) {
  // Crash mid-overlap: node 0's long frame is aborted while node 2's
  // short frame overlaps it at node 1. The aborted frame's rx_end must
  // arrive AT the abort time (not its originally scheduled end), the
  // medium must free immediately, and the conservation counters must
  // still balance.
  sim::Simulator sim;
  Channel ch(sim, {{0, 0}, {10, 0}, {20, 0}}, 50.0, Channel::Params{0.0}, 5);
  TimedProbe probes[3];
  for (net::NodeId i = 0; i < 3; ++i) {
    probes[i].sim = &sim;
    ch.attach(i, &probes[i]);
  }
  ch.start_tx(0, make_frame(0, 1), 0.1);                     // ends 0.1
  sim.schedule_at(0.02, [&] { ch.start_tx(2, make_frame(2, 1), 0.01); });
  sim.schedule_at(0.05, [&] {
    ch.abort_tx_of(0);
    // The aborted frame is gone from the air right now: delivered, and
    // node 1 no longer hears anything.
    EXPECT_EQ(ch.live_arrivals(), 0);
    EXPECT_FALSE(ch.busy_at(1));
    EXPECT_FALSE(ch.busy_at(0));
    // Aborting a node that is not transmitting is a no-op.
    ch.abort_tx_of(2);
  });
  sim.run();
  // Node 1 heard both frames; both overlapped, both corrupt. The aborted
  // frame's rx_end fired at 0.05, the overlapper's at its natural 0.03.
  ASSERT_EQ(probes[1].ends.size(), 2u);
  EXPECT_FALSE(probes[1].ends[0].clean);
  EXPECT_FALSE(probes[1].ends[1].clean);
  EXPECT_DOUBLE_EQ(probes[1].ends[0].at, 0.03);  // node 2's frame
  EXPECT_DOUBLE_EQ(probes[1].ends[1].at, 0.05);  // aborted frame, truncated
  // Node 2 heard only the aborted frame (it overlapped node 2's own
  // transmission — corrupt either way), truncated at 0.05 as well.
  ASSERT_EQ(probes[2].ends.size(), 1u);
  EXPECT_DOUBLE_EQ(probes[2].ends[0].at, 0.05);
  // Conservation: every rx_start got exactly one rx_end.
  EXPECT_EQ(ch.stats().rx_starts,
            ch.stats().deliveries_clean + ch.stats().deliveries_corrupt);
  EXPECT_EQ(ch.live_arrivals(), 0);
  EXPECT_EQ(ch.stats().deliveries_clean, 0);
  EXPECT_EQ(ch.stats().deliveries_corrupt, 4);
}

TEST(ChannelAbort, AbortedInterferenceDoesNotOutliveTheAbort) {
  // Capture mode: a strong frame is aborted, then a weak frame starts
  // AFTER the abort but BEFORE the strong frame's scheduled end. If the
  // aborted transmission's interference contribution leaked through to
  // its original rx_end, the weak frame would be judged against it and
  // corrupt; truncated correctly, the weak frame never overlaps anything
  // and is delivered clean.
  sim::Simulator sim;
  Channel ch(sim, {{0, 0}, {4, 0}, {36, 0}}, 40.0, capture_params(), 3);
  TimedProbe p0;
  p0.sim = &sim;
  ch.attach(0, &p0);
  ch.start_tx(1, make_frame(1, 0), 0.1);                      // strong, -50 dBm
  sim.schedule_at(0.01, [&] { ch.abort_tx_of(1); });
  sim.schedule_at(0.02, [&] { ch.start_tx(2, make_frame(2, 0), 0.01); });
  sim.run();
  ASSERT_EQ(p0.ends.size(), 2u);
  EXPECT_FALSE(p0.ends[0].clean);              // the truncated strong frame
  EXPECT_DOUBLE_EQ(p0.ends[0].at, 0.01);
  EXPECT_TRUE(p0.ends[1].clean) << "aborted frame's interference leaked "
                                   "past the abort time";
  EXPECT_EQ(ch.stats().rx_starts,
            ch.stats().deliveries_clean + ch.stats().deliveries_corrupt);
}

// ---------------------------------------------------------------- Radio --

class RadioTest : public ::testing::Test {
 protected:
  RadioTest()
      : channel_(sim_, {{0, 0}, {10, 0}, {20, 0}}, 50.0, Channel::Params{0.0},
                 7) {}
  sim::Simulator sim_;
  Channel channel_;
};

TEST_F(RadioTest, StartsOnWhenRequested) {
  Radio r(sim_, channel_, 0, energy::micaz(), OverhearMode::kNone, true);
  EXPECT_EQ(r.state(), RadioState::kIdle);
  EXPECT_TRUE(r.ready());
  EXPECT_EQ(r.meter().wakeup_count(), 0);
}

TEST_F(RadioTest, PowerOnTakesWakeupTimeAndChargesLump) {
  Radio r(sim_, channel_, 0, energy::lucent_11mbps(), OverhearMode::kNone,
          false);
  EXPECT_EQ(r.state(), RadioState::kOff);
  bool woke = false;
  r.callbacks().wake_complete = [&] { woke = true; };
  r.power_on();
  EXPECT_EQ(r.state(), RadioState::kWaking);
  EXPECT_FALSE(r.ready());
  sim_.run();
  EXPECT_TRUE(woke);
  EXPECT_EQ(r.state(), RadioState::kIdle);
  EXPECT_DOUBLE_EQ(sim_.now(), 0.1);  // 100 ms wake-up
  EXPECT_EQ(r.meter().wakeup_count(), 1);
}

TEST_F(RadioTest, DuplicatePowerOnIsNoOp) {
  Radio r(sim_, channel_, 0, energy::lucent_11mbps(), OverhearMode::kNone,
          false);
  r.power_on();
  r.power_on();
  sim_.run();
  EXPECT_EQ(r.meter().wakeup_count(), 1);
}

TEST_F(RadioTest, PowerOffDuringWakeCancelsCompletion) {
  Radio r(sim_, channel_, 0, energy::lucent_11mbps(), OverhearMode::kNone,
          false);
  bool woke = false;
  r.callbacks().wake_complete = [&] { woke = true; };
  r.power_on();
  r.power_off();
  sim_.run();
  EXPECT_FALSE(woke);
  EXPECT_EQ(r.state(), RadioState::kOff);
}

TEST_F(RadioTest, TransmitDeliversToAddressee) {
  Radio tx(sim_, channel_, 0, energy::micaz(), OverhearMode::kNone, true);
  Radio rx(sim_, channel_, 1, energy::micaz(), OverhearMode::kNone, true);
  int got = 0;
  rx.callbacks().frame_received = [&](const Frame&) { ++got; };
  bool tx_done = false;
  tx.callbacks().tx_done = [&] { tx_done = true; };
  tx.transmit(make_frame(0, 1));
  EXPECT_EQ(tx.state(), RadioState::kTx);
  sim_.run();
  EXPECT_TRUE(tx_done);
  EXPECT_EQ(got, 1);
  EXPECT_EQ(tx.state(), RadioState::kIdle);
  EXPECT_EQ(rx.state(), RadioState::kIdle);
  // 344 bits at 250 Kb/s.
  EXPECT_NEAR(sim_.now(), 344.0 / 250e3, 1e-9);
}

TEST_F(RadioTest, OffRadioHearsNothing) {
  Radio tx(sim_, channel_, 0, energy::micaz(), OverhearMode::kNone, true);
  Radio rx(sim_, channel_, 1, energy::micaz(), OverhearMode::kNone, false);
  int got = 0;
  rx.callbacks().frame_received = [&](const Frame&) { ++got; };
  tx.transmit(make_frame(0, 1));
  sim_.run();
  EXPECT_EQ(got, 0);
  EXPECT_DOUBLE_EQ(rx.meter().total(), 0.0);
}

TEST_F(RadioTest, PowerOffMidReceptionAbortsDelivery) {
  Radio tx(sim_, channel_, 0, energy::micaz(), OverhearMode::kNone, true);
  Radio rx(sim_, channel_, 1, energy::micaz(), OverhearMode::kNone, true);
  int got = 0;
  rx.callbacks().frame_received = [&](const Frame&) { ++got; };
  tx.transmit(make_frame(0, 1));
  sim_.schedule_at(0.0005, [&] { rx.power_off(); });
  sim_.run();
  EXPECT_EQ(got, 0);
}

TEST_F(RadioTest, OverhearNonePaysNothingForOthersTraffic) {
  Radio tx(sim_, channel_, 0, energy::micaz(), OverhearMode::kNone, true);
  Radio other(sim_, channel_, 2, energy::micaz(), OverhearMode::kNone, true);
  tx.transmit(make_frame(0, 1));
  sim_.run();
  other.meter().finalize(sim_.now());
  EXPECT_DOUBLE_EQ(other.meter().energy(energy::EnergyCategory::kOverhear),
                   0.0);
  EXPECT_EQ(other.state(), RadioState::kIdle);
}

TEST_F(RadioTest, OverhearFullPaysWholeFrameAndSurfacesIt) {
  Radio tx(sim_, channel_, 0, energy::micaz(), OverhearMode::kNone, true);
  Radio other(sim_, channel_, 2, energy::micaz(), OverhearMode::kFull, true);
  int overheard = 0;
  other.callbacks().frame_overheard = [&](const Frame&) { ++overheard; };
  tx.transmit(make_frame(0, 1));
  sim_.run();
  other.meter().finalize(sim_.now());
  EXPECT_EQ(overheard, 1);
  const double frame_time = 344.0 / 250e3;
  EXPECT_NEAR(other.meter().duration(energy::EnergyCategory::kOverhear),
              frame_time, 1e-9);
}

TEST_F(RadioTest, OverhearHeaderOnlyPaysJustTheHeader) {
  Radio tx(sim_, channel_, 0, energy::micaz(), OverhearMode::kNone, true);
  Radio other(sim_, channel_, 2, energy::micaz(), OverhearMode::kHeaderOnly,
              true);
  int overheard = 0;
  other.callbacks().frame_overheard = [&](const Frame&) { ++overheard; };
  tx.transmit(make_frame(0, 1));
  sim_.run();
  other.meter().finalize(sim_.now());
  EXPECT_EQ(overheard, 0);  // header-only listeners never surface frames
  const double header_time = 88.0 / 250e3;
  EXPECT_NEAR(other.meter().duration(energy::EnergyCategory::kOverhear),
              header_time, 1e-9);
}

TEST_F(RadioTest, AbortMidHeaderDoesNotTruncateTheNextOverhear) {
  // Regression: an abort-truncated frame ends BEFORE its header-only
  // timer fires. The stale timer must die with the lock — otherwise its
  // expiry (which guards on state, not tx id) clears a LATER frame's
  // overhear lock and cuts that frame's header charge short.
  Radio other(sim_, channel_, 2, energy::micaz(), OverhearMode::kHeaderOnly,
              true);
  const double header_time = 88.0 / 250e3;  // 0.352 ms at 250 Kb/s
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  sim_.schedule_at(0.0001, [&] { channel_.abort_tx_of(0); });
  // Frame B starts after the abort but before A's header timer would
  // have fired; its overhear must run its own full header.
  sim_.schedule_at(0.0002, [&] {
    channel_.start_tx(1, make_frame(1, 0), 0.01);
  });
  sim_.run();
  other.meter().finalize(sim_.now());
  EXPECT_EQ(other.state(), RadioState::kIdle);
  // A charged up to its truncation (0.1 ms), B its full header.
  EXPECT_NEAR(other.meter().duration(energy::EnergyCategory::kOverhear),
              0.0001 + header_time, 1e-9);
}

TEST_F(RadioTest, TransmitWhileNotReadyThrows) {
  Radio r(sim_, channel_, 0, energy::lucent_11mbps(), OverhearMode::kNone,
          false);
  EXPECT_THROW(r.transmit(make_frame(0, 1)), std::invalid_argument);
  r.power_on();
  EXPECT_THROW(r.transmit(make_frame(0, 1)), std::invalid_argument);
}

TEST_F(RadioTest, PowerOffWhileTransmittingThrows) {
  Radio r(sim_, channel_, 0, energy::micaz(), OverhearMode::kNone, true);
  r.transmit(make_frame(0, 1));
  EXPECT_THROW(r.power_off(), std::invalid_argument);
  sim_.run();
  EXPECT_NO_THROW(r.power_off());
}

TEST_F(RadioTest, EnergyAccountingAcrossAFullExchange) {
  Radio tx(sim_, channel_, 0, energy::micaz(), OverhearMode::kNone, true);
  Radio rx(sim_, channel_, 1, energy::micaz(), OverhearMode::kNone, true);
  tx.transmit(make_frame(0, 1));
  sim_.run();
  tx.meter().finalize(sim_.now());
  rx.meter().finalize(sim_.now());
  const double frame_time = 344.0 / 250e3;
  EXPECT_NEAR(tx.meter().energy(energy::EnergyCategory::kTx),
              0.051 * frame_time, 1e-12);
  EXPECT_NEAR(rx.meter().energy(energy::EnergyCategory::kRx),
              0.0591 * frame_time, 1e-12);
}

}  // namespace
}  // namespace bcp::phy

// Unit tests: channel semantics (range, collisions, losses, carrier sense)
// and the radio power/reception state machine.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "energy/radio_model.hpp"
#include "net/topology.hpp"
#include "phy/channel.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"

namespace bcp::phy {
namespace {

using net::NodeId;
using net::Position;

Frame make_frame(NodeId from, NodeId to, util::Bits payload = 256,
                 util::Bits header = 88) {
  Frame f;
  f.tx_node = from;
  f.rx_node = to;
  f.kind = FrameKind::kData;
  f.mac_seq = 1;
  f.payload_bits = payload;
  f.header_bits = header;
  net::Message m;
  m.src = from;
  m.dst = to;
  m.body = net::DataPacket{from, to, 1, payload, 0.0};
  f.message = net::make_message(std::move(m));
  return f;
}

/// Records every channel callback for one node.
class Probe : public ChannelListener {
 public:
  struct Rx {
    std::uint64_t id;
    bool clean;
  };
  void on_rx_start(std::uint64_t, const Frame&, util::Seconds) override {
    ++starts;
  }
  void on_rx_end(std::uint64_t id, const Frame&, bool clean) override {
    ends.push_back(Rx{id, clean});
  }
  int starts = 0;
  std::vector<Rx> ends;
};

class ChannelTest : public ::testing::Test {
 protected:
  // Line topology: 0 -- 50m -- 1 -- 50m -- 2; range 60 m, so 0 and 2 are
  // hidden terminals with respect to each other.
  ChannelTest()
      : channel_(sim_, {{0, 0}, {50, 0}, {100, 0}}, 60.0,
                 Channel::Params{0.0}, 1) {
    for (auto& p : probes_) p = std::make_unique<Probe>();
    for (NodeId i = 0; i < 3; ++i) channel_.attach(i, probes_[i].get());
  }
  sim::Simulator sim_;
  Channel channel_;
  std::unique_ptr<Probe> probes_[3];
};

TEST_F(ChannelTest, DeliversCleanWithinRange) {
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  sim_.run();
  ASSERT_EQ(probes_[1]->ends.size(), 1u);
  EXPECT_TRUE(probes_[1]->ends[0].clean);
  EXPECT_EQ(probes_[2]->starts, 0);  // out of range of node 0
}

TEST_F(ChannelTest, NeighborsHearFramesNotAddressedToThem) {
  channel_.start_tx(1, make_frame(1, 2), 0.01);
  sim_.run();
  EXPECT_EQ(probes_[0]->starts, 1);  // in range — overhears
  EXPECT_EQ(probes_[2]->starts, 1);
}

TEST_F(ChannelTest, OverlappingTransmissionsCollideAtCommonReceiver) {
  // Hidden terminals 0 and 2 transmit simultaneously: node 1 hears both,
  // both corrupted.
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  channel_.start_tx(2, make_frame(2, 1), 0.01);
  sim_.run();
  ASSERT_EQ(probes_[1]->ends.size(), 2u);
  EXPECT_FALSE(probes_[1]->ends[0].clean);
  EXPECT_FALSE(probes_[1]->ends[1].clean);
}

TEST_F(ChannelTest, PartialOverlapAlsoCollides) {
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  sim_.schedule_at(0.009, [&] {
    channel_.start_tx(2, make_frame(2, 1), 0.01);
  });
  sim_.run();
  ASSERT_EQ(probes_[1]->ends.size(), 2u);
  EXPECT_FALSE(probes_[1]->ends[0].clean);
  EXPECT_FALSE(probes_[1]->ends[1].clean);
}

TEST_F(ChannelTest, BackToBackFramesDoNotCollide) {
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  sim_.schedule_at(0.0101, [&] {
    channel_.start_tx(2, make_frame(2, 1), 0.01);
  });
  sim_.run();
  ASSERT_EQ(probes_[1]->ends.size(), 2u);
  EXPECT_TRUE(probes_[1]->ends[0].clean);
  EXPECT_TRUE(probes_[1]->ends[1].clean);
}

TEST_F(ChannelTest, TransmitterCannotHearWhileTransmitting) {
  // Node 1 transmits; node 0's frame to 1 overlaps -> corrupted at 1.
  channel_.start_tx(1, make_frame(1, 2), 0.01);
  channel_.start_tx(0, make_frame(0, 1), 0.005);
  sim_.run();
  ASSERT_EQ(probes_[1]->ends.size(), 1u);  // hears only node 0's frame
  EXPECT_FALSE(probes_[1]->ends[0].clean);
}

TEST_F(ChannelTest, CollisionIsLocalNotGlobal) {
  // 0->1 and 2->1 collide at 1, but node 2's frame... use a different
  // pattern: 0 transmits, 2 transmits; node 1 sees collision. Node 0 and 2
  // hear nothing (out of range of each other), so no corruption there.
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  channel_.start_tx(2, make_frame(2, 1), 0.01);
  sim_.run();
  EXPECT_EQ(probes_[0]->starts, 0);
  EXPECT_EQ(probes_[2]->starts, 0);
}

TEST_F(ChannelTest, CarrierSenseTracksAudibleTraffic) {
  EXPECT_FALSE(channel_.busy_at(0));
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  EXPECT_TRUE(channel_.busy_at(0));  // own transmission
  EXPECT_TRUE(channel_.busy_at(1));
  EXPECT_FALSE(channel_.busy_at(2));  // hidden from node 0
  EXPECT_DOUBLE_EQ(channel_.clear_at(1), 0.01);
  sim_.run();
  EXPECT_FALSE(channel_.busy_at(1));
  EXPECT_DOUBLE_EQ(channel_.clear_at(1), sim_.now());
}

TEST_F(ChannelTest, StatsCountCleanAndCorrupt) {
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  sim_.run();
  EXPECT_EQ(channel_.stats().frames, 1);
  EXPECT_EQ(channel_.stats().deliveries_clean, 1);
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  channel_.start_tx(2, make_frame(2, 1), 0.01);
  sim_.run();
  EXPECT_EQ(channel_.stats().deliveries_corrupt, 2);
}

TEST_F(ChannelTest, DoubleTransmitFromSameNodeThrows) {
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  EXPECT_THROW(channel_.start_tx(0, make_frame(0, 1), 0.01),
               std::invalid_argument);
}

TEST(ChannelLoss, BernoulliLossDropsRoughlyTheConfiguredFraction) {
  sim::Simulator sim;
  Channel ch(sim, {{0, 0}, {10, 0}}, 50.0, Channel::Params{0.3}, 42);
  Probe p;
  ch.attach(1, &p);
  int clean = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    sim.schedule_at(i * 1.0, [&] { ch.start_tx(0, make_frame(0, 1), 0.01); });
  }
  sim.run();
  for (const auto& e : p.ends)
    if (e.clean) ++clean;
  EXPECT_NEAR(static_cast<double>(clean) / n, 0.7, 0.04);
}

TEST(ChannelLoss, InvalidLossProbabilityThrows) {
  sim::Simulator sim;
  EXPECT_THROW(Channel(sim, {{0, 0}}, 50.0, Channel::Params{-0.1}, 1),
               std::invalid_argument);
  EXPECT_THROW(Channel(sim, {{0, 0}}, 50.0, Channel::Params{1.0}, 1),
               std::invalid_argument);
}

// ---------------------------------------------------------------- Radio --

class RadioTest : public ::testing::Test {
 protected:
  RadioTest()
      : channel_(sim_, {{0, 0}, {10, 0}, {20, 0}}, 50.0, Channel::Params{0.0},
                 7) {}
  sim::Simulator sim_;
  Channel channel_;
};

TEST_F(RadioTest, StartsOnWhenRequested) {
  Radio r(sim_, channel_, 0, energy::micaz(), OverhearMode::kNone, true);
  EXPECT_EQ(r.state(), RadioState::kIdle);
  EXPECT_TRUE(r.ready());
  EXPECT_EQ(r.meter().wakeup_count(), 0);
}

TEST_F(RadioTest, PowerOnTakesWakeupTimeAndChargesLump) {
  Radio r(sim_, channel_, 0, energy::lucent_11mbps(), OverhearMode::kNone,
          false);
  EXPECT_EQ(r.state(), RadioState::kOff);
  bool woke = false;
  r.callbacks().wake_complete = [&] { woke = true; };
  r.power_on();
  EXPECT_EQ(r.state(), RadioState::kWaking);
  EXPECT_FALSE(r.ready());
  sim_.run();
  EXPECT_TRUE(woke);
  EXPECT_EQ(r.state(), RadioState::kIdle);
  EXPECT_DOUBLE_EQ(sim_.now(), 0.1);  // 100 ms wake-up
  EXPECT_EQ(r.meter().wakeup_count(), 1);
}

TEST_F(RadioTest, DuplicatePowerOnIsNoOp) {
  Radio r(sim_, channel_, 0, energy::lucent_11mbps(), OverhearMode::kNone,
          false);
  r.power_on();
  r.power_on();
  sim_.run();
  EXPECT_EQ(r.meter().wakeup_count(), 1);
}

TEST_F(RadioTest, PowerOffDuringWakeCancelsCompletion) {
  Radio r(sim_, channel_, 0, energy::lucent_11mbps(), OverhearMode::kNone,
          false);
  bool woke = false;
  r.callbacks().wake_complete = [&] { woke = true; };
  r.power_on();
  r.power_off();
  sim_.run();
  EXPECT_FALSE(woke);
  EXPECT_EQ(r.state(), RadioState::kOff);
}

TEST_F(RadioTest, TransmitDeliversToAddressee) {
  Radio tx(sim_, channel_, 0, energy::micaz(), OverhearMode::kNone, true);
  Radio rx(sim_, channel_, 1, energy::micaz(), OverhearMode::kNone, true);
  int got = 0;
  rx.callbacks().frame_received = [&](const Frame&) { ++got; };
  bool tx_done = false;
  tx.callbacks().tx_done = [&] { tx_done = true; };
  tx.transmit(make_frame(0, 1));
  EXPECT_EQ(tx.state(), RadioState::kTx);
  sim_.run();
  EXPECT_TRUE(tx_done);
  EXPECT_EQ(got, 1);
  EXPECT_EQ(tx.state(), RadioState::kIdle);
  EXPECT_EQ(rx.state(), RadioState::kIdle);
  // 344 bits at 250 Kb/s.
  EXPECT_NEAR(sim_.now(), 344.0 / 250e3, 1e-9);
}

TEST_F(RadioTest, OffRadioHearsNothing) {
  Radio tx(sim_, channel_, 0, energy::micaz(), OverhearMode::kNone, true);
  Radio rx(sim_, channel_, 1, energy::micaz(), OverhearMode::kNone, false);
  int got = 0;
  rx.callbacks().frame_received = [&](const Frame&) { ++got; };
  tx.transmit(make_frame(0, 1));
  sim_.run();
  EXPECT_EQ(got, 0);
  EXPECT_DOUBLE_EQ(rx.meter().total(), 0.0);
}

TEST_F(RadioTest, PowerOffMidReceptionAbortsDelivery) {
  Radio tx(sim_, channel_, 0, energy::micaz(), OverhearMode::kNone, true);
  Radio rx(sim_, channel_, 1, energy::micaz(), OverhearMode::kNone, true);
  int got = 0;
  rx.callbacks().frame_received = [&](const Frame&) { ++got; };
  tx.transmit(make_frame(0, 1));
  sim_.schedule_at(0.0005, [&] { rx.power_off(); });
  sim_.run();
  EXPECT_EQ(got, 0);
}

TEST_F(RadioTest, OverhearNonePaysNothingForOthersTraffic) {
  Radio tx(sim_, channel_, 0, energy::micaz(), OverhearMode::kNone, true);
  Radio other(sim_, channel_, 2, energy::micaz(), OverhearMode::kNone, true);
  tx.transmit(make_frame(0, 1));
  sim_.run();
  other.meter().finalize(sim_.now());
  EXPECT_DOUBLE_EQ(other.meter().energy(energy::EnergyCategory::kOverhear),
                   0.0);
  EXPECT_EQ(other.state(), RadioState::kIdle);
}

TEST_F(RadioTest, OverhearFullPaysWholeFrameAndSurfacesIt) {
  Radio tx(sim_, channel_, 0, energy::micaz(), OverhearMode::kNone, true);
  Radio other(sim_, channel_, 2, energy::micaz(), OverhearMode::kFull, true);
  int overheard = 0;
  other.callbacks().frame_overheard = [&](const Frame&) { ++overheard; };
  tx.transmit(make_frame(0, 1));
  sim_.run();
  other.meter().finalize(sim_.now());
  EXPECT_EQ(overheard, 1);
  const double frame_time = 344.0 / 250e3;
  EXPECT_NEAR(other.meter().duration(energy::EnergyCategory::kOverhear),
              frame_time, 1e-9);
}

TEST_F(RadioTest, OverhearHeaderOnlyPaysJustTheHeader) {
  Radio tx(sim_, channel_, 0, energy::micaz(), OverhearMode::kNone, true);
  Radio other(sim_, channel_, 2, energy::micaz(), OverhearMode::kHeaderOnly,
              true);
  int overheard = 0;
  other.callbacks().frame_overheard = [&](const Frame&) { ++overheard; };
  tx.transmit(make_frame(0, 1));
  sim_.run();
  other.meter().finalize(sim_.now());
  EXPECT_EQ(overheard, 0);  // header-only listeners never surface frames
  const double header_time = 88.0 / 250e3;
  EXPECT_NEAR(other.meter().duration(energy::EnergyCategory::kOverhear),
              header_time, 1e-9);
}

TEST_F(RadioTest, TransmitWhileNotReadyThrows) {
  Radio r(sim_, channel_, 0, energy::lucent_11mbps(), OverhearMode::kNone,
          false);
  EXPECT_THROW(r.transmit(make_frame(0, 1)), std::invalid_argument);
  r.power_on();
  EXPECT_THROW(r.transmit(make_frame(0, 1)), std::invalid_argument);
}

TEST_F(RadioTest, PowerOffWhileTransmittingThrows) {
  Radio r(sim_, channel_, 0, energy::micaz(), OverhearMode::kNone, true);
  r.transmit(make_frame(0, 1));
  EXPECT_THROW(r.power_off(), std::invalid_argument);
  sim_.run();
  EXPECT_NO_THROW(r.power_off());
}

TEST_F(RadioTest, EnergyAccountingAcrossAFullExchange) {
  Radio tx(sim_, channel_, 0, energy::micaz(), OverhearMode::kNone, true);
  Radio rx(sim_, channel_, 1, energy::micaz(), OverhearMode::kNone, true);
  tx.transmit(make_frame(0, 1));
  sim_.run();
  tx.meter().finalize(sim_.now());
  rx.meter().finalize(sim_.now());
  const double frame_time = 344.0 / 250e3;
  EXPECT_NEAR(tx.meter().energy(energy::EnergyCategory::kTx),
              0.051 * frame_time, 1e-12);
  EXPECT_NEAR(rx.meter().energy(energy::EnergyCategory::kRx),
              0.0591 * frame_time, 1e-12);
}

}  // namespace
}  // namespace bcp::phy

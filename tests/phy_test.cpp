// Unit tests: channel semantics (range, collisions, losses, carrier sense)
// and the radio power/reception state machine.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "energy/radio_model.hpp"
#include "net/topology.hpp"
#include "phy/channel.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"

namespace bcp::phy {
namespace {

using net::NodeId;
using net::Position;

Frame make_frame(NodeId from, NodeId to, util::Bits payload = 256,
                 util::Bits header = 88) {
  Frame f;
  f.tx_node = from;
  f.rx_node = to;
  f.kind = FrameKind::kData;
  f.mac_seq = 1;
  f.payload_bits = payload;
  f.header_bits = header;
  net::Message m;
  m.src = from;
  m.dst = to;
  m.body = net::DataPacket{from, to, 1, payload, 0.0};
  f.message = net::make_message(std::move(m));
  return f;
}

/// Records every channel callback for one node.
class Probe : public ChannelListener {
 public:
  struct Rx {
    std::uint64_t id;
    bool clean;
  };
  void on_rx_start(std::uint64_t, const Frame&, util::Seconds) override {
    ++starts;
  }
  void on_rx_end(std::uint64_t id, const Frame&, bool clean) override {
    ends.push_back(Rx{id, clean});
  }
  int starts = 0;
  std::vector<Rx> ends;
};

class ChannelTest : public ::testing::Test {
 protected:
  // Line topology: 0 -- 50m -- 1 -- 50m -- 2; range 60 m, so 0 and 2 are
  // hidden terminals with respect to each other.
  ChannelTest()
      : channel_(sim_, {{0, 0}, {50, 0}, {100, 0}}, 60.0,
                 Channel::Params{0.0}, 1) {
    for (auto& p : probes_) p = std::make_unique<Probe>();
    for (NodeId i = 0; i < 3; ++i) channel_.attach(i, probes_[i].get());
  }
  sim::Simulator sim_;
  Channel channel_;
  std::unique_ptr<Probe> probes_[3];
};

TEST_F(ChannelTest, DeliversCleanWithinRange) {
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  sim_.run();
  ASSERT_EQ(probes_[1]->ends.size(), 1u);
  EXPECT_TRUE(probes_[1]->ends[0].clean);
  EXPECT_EQ(probes_[2]->starts, 0);  // out of range of node 0
}

TEST_F(ChannelTest, NeighborsHearFramesNotAddressedToThem) {
  channel_.start_tx(1, make_frame(1, 2), 0.01);
  sim_.run();
  EXPECT_EQ(probes_[0]->starts, 1);  // in range — overhears
  EXPECT_EQ(probes_[2]->starts, 1);
}

TEST_F(ChannelTest, OverlappingTransmissionsCollideAtCommonReceiver) {
  // Hidden terminals 0 and 2 transmit simultaneously: node 1 hears both,
  // both corrupted.
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  channel_.start_tx(2, make_frame(2, 1), 0.01);
  sim_.run();
  ASSERT_EQ(probes_[1]->ends.size(), 2u);
  EXPECT_FALSE(probes_[1]->ends[0].clean);
  EXPECT_FALSE(probes_[1]->ends[1].clean);
}

TEST_F(ChannelTest, PartialOverlapAlsoCollides) {
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  sim_.schedule_at(0.009, [&] {
    channel_.start_tx(2, make_frame(2, 1), 0.01);
  });
  sim_.run();
  ASSERT_EQ(probes_[1]->ends.size(), 2u);
  EXPECT_FALSE(probes_[1]->ends[0].clean);
  EXPECT_FALSE(probes_[1]->ends[1].clean);
}

TEST_F(ChannelTest, BackToBackFramesDoNotCollide) {
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  sim_.schedule_at(0.0101, [&] {
    channel_.start_tx(2, make_frame(2, 1), 0.01);
  });
  sim_.run();
  ASSERT_EQ(probes_[1]->ends.size(), 2u);
  EXPECT_TRUE(probes_[1]->ends[0].clean);
  EXPECT_TRUE(probes_[1]->ends[1].clean);
}

TEST_F(ChannelTest, TransmitterCannotHearWhileTransmitting) {
  // Node 1 transmits; node 0's frame to 1 overlaps -> corrupted at 1.
  channel_.start_tx(1, make_frame(1, 2), 0.01);
  channel_.start_tx(0, make_frame(0, 1), 0.005);
  sim_.run();
  ASSERT_EQ(probes_[1]->ends.size(), 1u);  // hears only node 0's frame
  EXPECT_FALSE(probes_[1]->ends[0].clean);
}

TEST_F(ChannelTest, CollisionIsLocalNotGlobal) {
  // 0->1 and 2->1 collide at 1, but node 2's frame... use a different
  // pattern: 0 transmits, 2 transmits; node 1 sees collision. Node 0 and 2
  // hear nothing (out of range of each other), so no corruption there.
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  channel_.start_tx(2, make_frame(2, 1), 0.01);
  sim_.run();
  EXPECT_EQ(probes_[0]->starts, 0);
  EXPECT_EQ(probes_[2]->starts, 0);
}

TEST_F(ChannelTest, CarrierSenseTracksAudibleTraffic) {
  EXPECT_FALSE(channel_.busy_at(0));
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  EXPECT_TRUE(channel_.busy_at(0));  // own transmission
  EXPECT_TRUE(channel_.busy_at(1));
  EXPECT_FALSE(channel_.busy_at(2));  // hidden from node 0
  EXPECT_DOUBLE_EQ(channel_.clear_at(1), 0.01);
  sim_.run();
  EXPECT_FALSE(channel_.busy_at(1));
  EXPECT_DOUBLE_EQ(channel_.clear_at(1), sim_.now());
}

TEST_F(ChannelTest, StatsCountCleanAndCorrupt) {
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  sim_.run();
  EXPECT_EQ(channel_.stats().frames, 1);
  EXPECT_EQ(channel_.stats().deliveries_clean, 1);
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  channel_.start_tx(2, make_frame(2, 1), 0.01);
  sim_.run();
  EXPECT_EQ(channel_.stats().deliveries_corrupt, 2);
}

TEST_F(ChannelTest, DoubleTransmitFromSameNodeThrows) {
  channel_.start_tx(0, make_frame(0, 1), 0.01);
  EXPECT_THROW(channel_.start_tx(0, make_frame(0, 1), 0.01),
               std::invalid_argument);
}

TEST(ChannelLoss, BernoulliLossDropsRoughlyTheConfiguredFraction) {
  sim::Simulator sim;
  Channel ch(sim, {{0, 0}, {10, 0}}, 50.0, Channel::Params{0.3}, 42);
  Probe p;
  ch.attach(1, &p);
  int clean = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    sim.schedule_at(i * 1.0, [&] { ch.start_tx(0, make_frame(0, 1), 0.01); });
  }
  sim.run();
  for (const auto& e : p.ends)
    if (e.clean) ++clean;
  EXPECT_NEAR(static_cast<double>(clean) / n, 0.7, 0.04);
}

TEST(ChannelLoss, InvalidLossProbabilityThrows) {
  sim::Simulator sim;
  EXPECT_THROW(Channel(sim, {{0, 0}}, 50.0, Channel::Params{-0.1}, 1),
               std::invalid_argument);
  EXPECT_THROW(Channel(sim, {{0, 0}}, 50.0, Channel::Params{1.01}, 1),
               std::invalid_argument);
  // The closed interval is valid: 1.0 is a fully lossy link, not an error.
  EXPECT_NO_THROW(Channel(sim, {{0, 0}}, 50.0, Channel::Params{1.0}, 1));
}

TEST(ChannelLoss, FullLossYieldsZeroCleanDeliveries) {
  sim::Simulator sim;
  Channel ch(sim, {{0, 0}, {10, 0}}, 50.0, Channel::Params{1.0}, 42);
  Probe p;
  ch.attach(1, &p);
  const int n = 50;
  for (int i = 0; i < n; ++i)
    sim.schedule_at(i * 1.0, [&] { ch.start_tx(0, make_frame(0, 1), 0.01); });
  sim.run();
  ASSERT_EQ(p.ends.size(), static_cast<std::size_t>(n));
  for (const auto& e : p.ends) EXPECT_FALSE(e.clean);
  EXPECT_EQ(ch.stats().deliveries_clean, 0);
  EXPECT_EQ(ch.stats().deliveries_corrupt, n);
}

// ---------------------------------------------------------- Propagation --

/// Neighbour index of `dst` in graph.neighbors(src) (asserts it exists).
std::size_t nbr_index(const net::ConnectivityGraph& graph, NodeId src,
                      NodeId dst) {
  const auto& nbrs = graph.neighbors(src);
  for (std::size_t i = 0; i < nbrs.size(); ++i)
    if (nbrs[i] == dst) return i;
  ADD_FAILURE() << dst << " not a neighbour of " << src;
  return 0;
}

TEST(Propagation, AutoResolvesToUnitDiscWithTheExtraLossKnob) {
  const net::ConnectivityGraph graph({{0, 0}, {10, 0}, {35, 0}}, 40.0);
  const auto model =
      make_propagation_model(PropagationSpec{}, graph, 0.25, 1);
  EXPECT_EQ(model->kind(), PropagationKind::kUnitDisc);
  EXPECT_TRUE(model->uniform());
  EXPECT_DOUBLE_EQ(model->loss_prob(0, 0, 1), 0.25);
  EXPECT_DOUBLE_EQ(model->loss_prob(1, 1, 2), 0.25);  // every link alike
}

TEST(Propagation, LogDistancePerGrowsWithDistanceAndIsSymmetric) {
  const net::ConnectivityGraph graph({{0, 0}, {10, 0}, {35, 0}}, 40.0);
  PropagationSpec spec;
  spec.kind = PropagationKind::kLogDistance;
  spec.shadowing_sigma_db = 0.0;  // isolate the distance term
  const auto model = make_propagation_model(spec, graph, 0.0, 1);
  EXPECT_FALSE(model->uniform());
  const double near = model->loss_prob(0, nbr_index(graph, 0, 1), 1);
  const double far = model->loss_prob(0, nbr_index(graph, 0, 2), 2);
  EXPECT_GE(near, 0.0);
  EXPECT_LE(far, 1.0);
  EXPECT_LT(near, far);  // 10 m link beats the 35 m link
  // Symmetric per link.
  EXPECT_DOUBLE_EQ(model->loss_prob(1, nbr_index(graph, 1, 0), 0), near);
  EXPECT_DOUBLE_EQ(model->loss_prob(2, nbr_index(graph, 2, 0), 0), far);
}

TEST(Propagation, LogDistanceShadowingIsFrozenPerLinkAndSeed) {
  const net::ConnectivityGraph graph({{0, 0}, {30, 0}, {30, 30}}, 50.0);
  PropagationSpec spec;
  spec.kind = PropagationKind::kLogDistance;
  spec.shadowing_sigma_db = 6.0;
  const auto a = make_propagation_model(spec, graph, 0.0, 9);
  const auto b = make_propagation_model(spec, graph, 0.0, 9);
  const auto c = make_propagation_model(spec, graph, 0.0, 10);
  const std::size_t i01 = nbr_index(graph, 0, 1);
  // Same seed — identical frozen PER; different seed — different shadow.
  EXPECT_DOUBLE_EQ(a->loss_prob(0, i01, 1), b->loss_prob(0, i01, 1));
  EXPECT_NE(a->loss_prob(0, i01, 1), c->loss_prob(0, i01, 1));
  // Symmetric even under shadowing (one draw per unordered pair).
  EXPECT_DOUBLE_EQ(a->loss_prob(0, i01, 1),
                   a->loss_prob(1, nbr_index(graph, 1, 0), 0));
}

TEST(Propagation, DistancePerInterpolatesTheCurve) {
  // Range 100: knots at 0 %, 50 %, 100 % of the disc.
  const net::ConnectivityGraph graph({{0, 0}, {25, 0}, {75, 0}}, 100.0);
  PropagationSpec spec;
  spec.kind = PropagationKind::kDistancePer;
  spec.per_curve = {{0.0, 0.0}, {0.5, 0.2}, {1.0, 1.0}};
  const auto model = make_propagation_model(spec, graph, 0.0, 1);
  // d = 25 → halfway to the 0.5 knot → per 0.1; d = 50 (node 1→2) → 0.2;
  // d = 75 → halfway from 0.2 to 1.0 → 0.6.
  EXPECT_NEAR(model->loss_prob(0, nbr_index(graph, 0, 1), 1), 0.1, 1e-12);
  EXPECT_NEAR(model->loss_prob(1, nbr_index(graph, 1, 2), 2), 0.2, 1e-12);
  EXPECT_NEAR(model->loss_prob(0, nbr_index(graph, 0, 2), 2), 0.6, 1e-12);
}

TEST(Propagation, ExtraLossComposesIndependently) {
  const net::ConnectivityGraph graph({{0, 0}, {50, 0}}, 100.0);
  PropagationSpec spec;
  spec.kind = PropagationKind::kDistancePer;
  spec.per_curve = {{0.0, 0.5}, {1.0, 0.5}};
  const auto model = make_propagation_model(spec, graph, 0.2, 1);
  // p = per + extra − per·extra = 0.5 + 0.2 − 0.1 = 0.6.
  EXPECT_NEAR(model->loss_prob(0, 0, 1), 0.6, 1e-12);
}

TEST(Propagation, InvalidSpecsThrow) {
  const net::ConnectivityGraph graph({{0, 0}, {10, 0}}, 40.0);
  PropagationSpec spec;
  spec.kind = PropagationKind::kLogDistance;
  spec.path_loss_exponent = 0.0;
  EXPECT_THROW(make_propagation_model(spec, graph, 0.0, 1),
               std::invalid_argument);
  spec = PropagationSpec{};
  spec.kind = PropagationKind::kDistancePer;
  spec.per_curve = {{0.0, 1.5}};  // per outside [0, 1]
  EXPECT_THROW(make_propagation_model(spec, graph, 0.0, 1),
               std::invalid_argument);
  spec.per_curve = {{0.5, 0.1}, {0.2, 0.1}};  // unsorted knots
  EXPECT_THROW(make_propagation_model(spec, graph, 0.0, 1),
               std::invalid_argument);
}

TEST(Propagation, LossyChannelStillConservesDeliveries) {
  // End-to-end through the Channel: per-link PER changes who receives
  // cleanly, never whether rx_end fires.
  sim::Simulator sim;
  Channel::Params params;
  params.propagation.kind = PropagationKind::kLogDistance;
  Channel ch(sim, {{0, 0}, {38, 0}, {76, 0}}, 40.0, params, 11);
  Probe p1;
  ch.attach(1, &p1);
  const int n = 200;
  for (int i = 0; i < n; ++i)
    sim.schedule_at(i * 1.0, [&] { ch.start_tx(0, make_frame(0, 1), 0.01); });
  sim.run();
  EXPECT_EQ(ch.stats().rx_starts,
            ch.stats().deliveries_clean + ch.stats().deliveries_corrupt);
  EXPECT_EQ(ch.live_arrivals(), 0);
  ASSERT_EQ(p1.ends.size(), static_cast<std::size_t>(n));
  // A 38 m link at the 40 m disc edge under log-distance loss: some but
  // not all deliveries survive.
  int clean = 0;
  for (const auto& e : p1.ends) clean += e.clean ? 1 : 0;
  EXPECT_GT(clean, 0);
  EXPECT_LT(clean, n);
}

// ---------------------------------------------------------------- Radio --

class RadioTest : public ::testing::Test {
 protected:
  RadioTest()
      : channel_(sim_, {{0, 0}, {10, 0}, {20, 0}}, 50.0, Channel::Params{0.0},
                 7) {}
  sim::Simulator sim_;
  Channel channel_;
};

TEST_F(RadioTest, StartsOnWhenRequested) {
  Radio r(sim_, channel_, 0, energy::micaz(), OverhearMode::kNone, true);
  EXPECT_EQ(r.state(), RadioState::kIdle);
  EXPECT_TRUE(r.ready());
  EXPECT_EQ(r.meter().wakeup_count(), 0);
}

TEST_F(RadioTest, PowerOnTakesWakeupTimeAndChargesLump) {
  Radio r(sim_, channel_, 0, energy::lucent_11mbps(), OverhearMode::kNone,
          false);
  EXPECT_EQ(r.state(), RadioState::kOff);
  bool woke = false;
  r.callbacks().wake_complete = [&] { woke = true; };
  r.power_on();
  EXPECT_EQ(r.state(), RadioState::kWaking);
  EXPECT_FALSE(r.ready());
  sim_.run();
  EXPECT_TRUE(woke);
  EXPECT_EQ(r.state(), RadioState::kIdle);
  EXPECT_DOUBLE_EQ(sim_.now(), 0.1);  // 100 ms wake-up
  EXPECT_EQ(r.meter().wakeup_count(), 1);
}

TEST_F(RadioTest, DuplicatePowerOnIsNoOp) {
  Radio r(sim_, channel_, 0, energy::lucent_11mbps(), OverhearMode::kNone,
          false);
  r.power_on();
  r.power_on();
  sim_.run();
  EXPECT_EQ(r.meter().wakeup_count(), 1);
}

TEST_F(RadioTest, PowerOffDuringWakeCancelsCompletion) {
  Radio r(sim_, channel_, 0, energy::lucent_11mbps(), OverhearMode::kNone,
          false);
  bool woke = false;
  r.callbacks().wake_complete = [&] { woke = true; };
  r.power_on();
  r.power_off();
  sim_.run();
  EXPECT_FALSE(woke);
  EXPECT_EQ(r.state(), RadioState::kOff);
}

TEST_F(RadioTest, TransmitDeliversToAddressee) {
  Radio tx(sim_, channel_, 0, energy::micaz(), OverhearMode::kNone, true);
  Radio rx(sim_, channel_, 1, energy::micaz(), OverhearMode::kNone, true);
  int got = 0;
  rx.callbacks().frame_received = [&](const Frame&) { ++got; };
  bool tx_done = false;
  tx.callbacks().tx_done = [&] { tx_done = true; };
  tx.transmit(make_frame(0, 1));
  EXPECT_EQ(tx.state(), RadioState::kTx);
  sim_.run();
  EXPECT_TRUE(tx_done);
  EXPECT_EQ(got, 1);
  EXPECT_EQ(tx.state(), RadioState::kIdle);
  EXPECT_EQ(rx.state(), RadioState::kIdle);
  // 344 bits at 250 Kb/s.
  EXPECT_NEAR(sim_.now(), 344.0 / 250e3, 1e-9);
}

TEST_F(RadioTest, OffRadioHearsNothing) {
  Radio tx(sim_, channel_, 0, energy::micaz(), OverhearMode::kNone, true);
  Radio rx(sim_, channel_, 1, energy::micaz(), OverhearMode::kNone, false);
  int got = 0;
  rx.callbacks().frame_received = [&](const Frame&) { ++got; };
  tx.transmit(make_frame(0, 1));
  sim_.run();
  EXPECT_EQ(got, 0);
  EXPECT_DOUBLE_EQ(rx.meter().total(), 0.0);
}

TEST_F(RadioTest, PowerOffMidReceptionAbortsDelivery) {
  Radio tx(sim_, channel_, 0, energy::micaz(), OverhearMode::kNone, true);
  Radio rx(sim_, channel_, 1, energy::micaz(), OverhearMode::kNone, true);
  int got = 0;
  rx.callbacks().frame_received = [&](const Frame&) { ++got; };
  tx.transmit(make_frame(0, 1));
  sim_.schedule_at(0.0005, [&] { rx.power_off(); });
  sim_.run();
  EXPECT_EQ(got, 0);
}

TEST_F(RadioTest, OverhearNonePaysNothingForOthersTraffic) {
  Radio tx(sim_, channel_, 0, energy::micaz(), OverhearMode::kNone, true);
  Radio other(sim_, channel_, 2, energy::micaz(), OverhearMode::kNone, true);
  tx.transmit(make_frame(0, 1));
  sim_.run();
  other.meter().finalize(sim_.now());
  EXPECT_DOUBLE_EQ(other.meter().energy(energy::EnergyCategory::kOverhear),
                   0.0);
  EXPECT_EQ(other.state(), RadioState::kIdle);
}

TEST_F(RadioTest, OverhearFullPaysWholeFrameAndSurfacesIt) {
  Radio tx(sim_, channel_, 0, energy::micaz(), OverhearMode::kNone, true);
  Radio other(sim_, channel_, 2, energy::micaz(), OverhearMode::kFull, true);
  int overheard = 0;
  other.callbacks().frame_overheard = [&](const Frame&) { ++overheard; };
  tx.transmit(make_frame(0, 1));
  sim_.run();
  other.meter().finalize(sim_.now());
  EXPECT_EQ(overheard, 1);
  const double frame_time = 344.0 / 250e3;
  EXPECT_NEAR(other.meter().duration(energy::EnergyCategory::kOverhear),
              frame_time, 1e-9);
}

TEST_F(RadioTest, OverhearHeaderOnlyPaysJustTheHeader) {
  Radio tx(sim_, channel_, 0, energy::micaz(), OverhearMode::kNone, true);
  Radio other(sim_, channel_, 2, energy::micaz(), OverhearMode::kHeaderOnly,
              true);
  int overheard = 0;
  other.callbacks().frame_overheard = [&](const Frame&) { ++overheard; };
  tx.transmit(make_frame(0, 1));
  sim_.run();
  other.meter().finalize(sim_.now());
  EXPECT_EQ(overheard, 0);  // header-only listeners never surface frames
  const double header_time = 88.0 / 250e3;
  EXPECT_NEAR(other.meter().duration(energy::EnergyCategory::kOverhear),
              header_time, 1e-9);
}

TEST_F(RadioTest, TransmitWhileNotReadyThrows) {
  Radio r(sim_, channel_, 0, energy::lucent_11mbps(), OverhearMode::kNone,
          false);
  EXPECT_THROW(r.transmit(make_frame(0, 1)), std::invalid_argument);
  r.power_on();
  EXPECT_THROW(r.transmit(make_frame(0, 1)), std::invalid_argument);
}

TEST_F(RadioTest, PowerOffWhileTransmittingThrows) {
  Radio r(sim_, channel_, 0, energy::micaz(), OverhearMode::kNone, true);
  r.transmit(make_frame(0, 1));
  EXPECT_THROW(r.power_off(), std::invalid_argument);
  sim_.run();
  EXPECT_NO_THROW(r.power_off());
}

TEST_F(RadioTest, EnergyAccountingAcrossAFullExchange) {
  Radio tx(sim_, channel_, 0, energy::micaz(), OverhearMode::kNone, true);
  Radio rx(sim_, channel_, 1, energy::micaz(), OverhearMode::kNone, true);
  tx.transmit(make_frame(0, 1));
  sim_.run();
  tx.meter().finalize(sim_.now());
  rx.meter().finalize(sim_.now());
  const double frame_time = 344.0 / 250e3;
  EXPECT_NEAR(tx.meter().energy(energy::EnergyCategory::kTx),
              0.051 * frame_time, 1e-12);
  EXPECT_NEAR(rx.meter().energy(energy::EnergyCategory::kRx),
              0.0591 * frame_time, 1e-12);
}

}  // namespace
}  // namespace bcp::phy
